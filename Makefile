GO ?= go

# The CI bench-gate workload: small, fixed, a few minutes. One
# experiment per layer — batch detection (9a), strategy comparison
# (merge), the durable serving path (e9), batched ingest (e10),
# streaming discovery (e11), WAL shipping (e12), write-path raw
# speed (e13: group-commit coalescing + tuple-store memory) and
# cluster write scaling (e14: routed fsynced writes across shard
# groups), the read path (e15: violation-view vs scan reads,
# point queries, routed standby reads) and live repair (e16:
# suggestion re-plan after a ChangeSet vs full batch repair) — at
# -quick sizes, best-of-5 so a single scheduler hiccup does not fail
# the gate. ci.yml and the checked-in baseline both go through these
# targets, so the flags live only here.
BENCH_WORKLOAD = -quick -repeat 5 -only 9a,merge,e9,e10,e11,e12,e13,e14,e15,e16
# Relative tolerance plus an absolute ns/op floor: only millisecond-scale
# drift can fail the gate; µs-scale series (single append, fsync) stay
# informational because 30% of a microsecond is scheduler jitter.
BENCH_TOLERANCE = 0.30
BENCH_FLOOR_NS = 100000

.PHONY: test race race-batch race-discovery race-failover race-cluster race-readpath race-repair metrics-smoke bench-current bench-baseline bench-batch bench-discovery bench-replication bench-groupcommit bench-cluster bench-readpath bench-repair bench-check docs-check

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/obs/ ./internal/incremental/ ./internal/wal/ ./internal/cluster/ ./cmd/cfdserve/ ./cmd/cfdrouter/

# End-to-end observability check: boot a durable cfdserve, push batches
# through /apply, scrape GET /metrics and assert the expected series and
# family count, then boot a follower and assert its lag gauge scrapes.
# CFD_SOAK scales the applied load (nightly runs it at 8).
metrics-smoke:
	sh scripts/metrics_smoke.sh

# The batch pipeline's property tests under the race detector, twice, so
# goroutine schedules vary: the randomized batched-stream oracle test and
# the mid-batch kill/recover test.
race-batch:
	$(GO) test -race -count 2 -run 'TestRandomBatchesMatchOracle|TestCrashRecoveryBatchAllOrNothing|TestApplyBatch' ./internal/incremental/

# The streaming-discovery property tests under the race detector, twice:
# the randomized miner-vs-Discover oracle equivalence and the
# concurrent-writers refresh loop.
race-discovery:
	$(GO) test -race -count 2 -run 'TestMinerMatchesDiscoverOracle|TestMinerConcurrentRefresh' ./internal/discovery/

# The failover property test under the race detector, twice: kill the
# primary at a random record boundary, promote the follower, cross-check
# the promoted state against the single-node oracle — plus the
# concurrent-stream follower test. CFD_SOAK scales the rounds (nightly).
race-failover:
	$(GO) test -race -count 2 -run 'TestFailoverPromotedMatchesOracle|TestFollowerConcurrentStream' ./internal/incremental/

# The cluster property tests under the race detector, twice: the
# cluster-vs-single-node oracle under random kills/partitions/promotions
# (a fenced deposed primary must refuse writes), plus the router's
# stale-epoch retry. CFD_SOAK scales the rounds (nightly).
race-cluster:
	$(GO) test -race -count 2 -run 'TestClusterMatchesOracleUnderFailover|TestRouterRetriesStaleEpoch' ./internal/cluster/

# The read-path property tests under the race detector, twice: the
# randomized view-vs-scan oracle (including flip-flop batches), the
# concurrent readers-vs-writers hammer on the lock-free violation view,
# and the router's standby read fan-out with its staleness guard.
race-readpath:
	$(GO) test -race -count 2 -run 'TestViewMatchesScanUnderRandomStreams|TestViewConcurrentReadersWriters|TestPickRead' ./internal/incremental/ ./internal/cluster/

# The repair-suggester property tests under the race detector, twice:
# randomized dirt streams must converge to I' |= Sigma through the
# suggest-plan-apply loop and land within the batch Repair oracle's
# cost, plus the concurrent apply-vs-refresh hammer on the live
# suggester.
race-repair:
	$(GO) test -race -count 2 -run 'TestSuggestConvergesRandomDirt|TestSuggesterConcurrentRefresh' ./internal/repair/

# One raw run of the gate workload, for eyeballing.
bench-current:
	$(GO) run ./cmd/cfdbench $(BENCH_WORKLOAD) -json > bench-current.json

# Regenerate the checked-in baseline: two independent runs, min-merged
# per series — the same estimator the gate uses. Timings are
# hardware-relative: run this on the CI runner class (ubuntu-latest)
# when the gate's machines change, or after an intentional perf change,
# and commit the resulting BENCH_baseline.json.
bench-baseline:
	$(GO) run ./cmd/cfdbench $(BENCH_WORKLOAD) -json > bench-run1.json
	$(GO) run ./cmd/cfdbench $(BENCH_WORKLOAD) -json > bench-run2.json
	$(GO) run ./cmd/cfdbenchdiff -current bench-run1.json,bench-run2.json -min-out BENCH_baseline.json
	rm -f bench-run1.json bench-run2.json

# Quick local iteration on the batched-ingest series only (E10): delta
# throughput vs batch size under 1/4/16 writers, plus the fsync
# single-vs-batch headline.
bench-batch:
	$(GO) run ./cmd/cfdbench -quick -only e10

# Quick local iteration on the streaming-discovery series only (E11):
# incremental re-score after a 1K-op ChangeSet vs full re-mine.
bench-discovery:
	$(GO) run ./cmd/cfdbench -quick -only e11

# Quick local iteration on the WAL-shipping series only (E12): follower
# catch-up (local snapshot + tail + ship the gap) vs cold CSV re-seed.
bench-replication:
	$(GO) run ./cmd/cfdbench -quick -only e12

# Quick local iteration on the write-path series only (E13): group-commit
# window coalescing under concurrent single-op writers, and the
# value-ID-column vs string-tuple memory comparison.
bench-groupcommit:
	$(GO) run ./cmd/cfdbench -quick -only e13

# Quick local iteration on the cluster series only (E14): routed fsynced
# write scaling at 1/2/4 shard groups vs the host's flush envelope.
bench-cluster:
	$(GO) run ./cmd/cfdbench -quick -only e14

# Quick local iteration on the read-path series only (E15): violation
# view vs full scan under concurrent readers, point-query latency, and
# routed reads over standbys at 1/2/4 groups.
bench-readpath:
	$(GO) run ./cmd/cfdbench -quick -only e15

# Quick local iteration on the live-repair series only (E16): cost-ranked
# suggestion re-plan after a 1K-op ChangeSet vs one full batch repair.
bench-repair:
	$(GO) run ./cmd/cfdbench -quick -only e16

# Documentation gate: vet, every *.md relative link and anchor resolves,
# and the godoc examples are gofmt-clean. ci.yml's docs job runs this.
docs-check:
	$(GO) vet ./...
	sh scripts/check_links.sh
	@out=$$(gofmt -l example_test.go doc.go); \
	if [ -n "$$out" ]; then echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# The gate itself: rerun the workload (min of 2 runs, a 3rd on
# failure), fail on a >30% ns/op regression of at least 100µs absolute,
# or on a vanished series. Prints a markdown delta table.
bench-check:
	BENCH_WORKLOAD="$(BENCH_WORKLOAD)" BENCH_TOLERANCE=$(BENCH_TOLERANCE) \
	BENCH_FLOOR_NS=$(BENCH_FLOOR_NS) sh scripts/bench_gate.sh
