package repro

import (
	"context"
	"io"

	"repro/internal/cind"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/sqlgen"
)

// Core model types.
type (
	// CFD is a conditional functional dependency (X → Y, Tp).
	CFD = core.CFD
	// Pattern is one tableau cell: a constant, '_' or '@'.
	Pattern = core.Pattern
	// PatternRow is one pattern tuple of a tableau.
	PatternRow = core.PatternRow
	// Simple is a normal-form CFD (single RHS attribute, single pattern).
	Simple = core.Simple
	// Violation is a detected inconsistency (constant or variable kind).
	Violation = core.Violation

	// Schema, Relation, Tuple, Value, Attribute and Domain form the data
	// model; see NewSchema and ReadCSV.
	Schema    = relation.Schema
	Relation  = relation.Relation
	Tuple     = relation.Tuple
	Value     = relation.Value
	Attribute = relation.Attribute
	Domain    = relation.Domain
)

// Pattern constructors.
var (
	// Const builds a constant pattern cell.
	Const = core.C
	// Wildcard builds the unnamed-variable ('_') cell.
	Wildcard = core.W
)

// Violation kinds (see Violation.Kind).
const (
	ConstViolation    = core.ConstViolation
	VariableViolation = core.VariableViolation
)

// NewCFD builds and validates a CFD from attribute lists and pattern rows.
func NewCFD(lhs, rhs []string, rows ...PatternRow) (*CFD, error) {
	return core.NewCFD(lhs, rhs, rows...)
}

// ParseCFD parses one line of the text notation, e.g.
// "[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]".
func ParseCFD(line string) (*CFD, error) { return core.ParseCFD(line) }

// ParseCFDSet parses a multi-line CFD file (one pattern row per line,
// '#' comments), merging rows that share an embedded FD into tableaux.
func ParseCFDSet(text string) ([]*CFD, error) { return core.ParseSet(text) }

// FormatCFDSet renders a CFD set in the notation ParseCFDSet accepts.
func FormatCFDSet(sigma []*CFD) string { return core.FormatSet(sigma) }

// NewSchema builds a relation schema from attribute definitions.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// Attr is shorthand for an attribute with an unbounded domain.
func Attr(name string) Attribute { return relation.Attr(name) }

// Enum builds a finite domain (the source of the paper's NP-hardness
// results, and of inference rules FD7/FD8).
func Enum(name string, values ...Value) *Domain { return relation.Enum(name, values...) }

// NewRelation returns an empty instance of a schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// ReadCSV loads a relation from CSV (first record is the header).
func ReadCSV(r io.Reader, schemaName string) (*Relation, error) {
	return relation.ReadCSV(r, schemaName)
}

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// Satisfies reports I ⊨ ϕ (Section 2 semantics).
func Satisfies(rel *Relation, cfd *CFD) (bool, error) { return core.Satisfies(rel, cfd) }

// SatisfiesSet reports I ⊨ Σ.
func SatisfiesSet(rel *Relation, sigma []*CFD) (bool, error) {
	return core.SatisfiesSet(rel, sigma)
}

// FindViolations lists every violation of ϕ in the instance using the
// indexed detector.
func FindViolations(rel *Relation, cfd *CFD) ([]Violation, error) {
	return detect.FindDetailed(rel, cfd)
}

// Consistent decides whether Σ admits a nonempty instance (Theorem 3.2
// regime) and returns a single-tuple witness when it does.
func Consistent(schema *Schema, sigma []*CFD) (bool, map[string]Value, error) {
	return core.Consistent(schema, sigma)
}

// Implies decides Σ ⊨ ϕ (Theorem 3.5 regime).
func Implies(schema *Schema, sigma []*CFD, phi *CFD) (bool, error) {
	return core.Implies(schema, sigma, phi)
}

// Equivalent decides Σ1 ≡ Σ2.
func Equivalent(schema *Schema, sigma1, sigma2 []*CFD) (bool, error) {
	return core.Equivalent(schema, sigma1, sigma2)
}

// MinimalCover computes a minimal cover of Σ (Figure 4 of the paper);
// the empty set is returned when Σ is inconsistent.
func MinimalCover(schema *Schema, sigma []*CFD) ([]*Simple, error) {
	return core.MinimalCover(schema, sigma)
}

// CoverToCFDs converts a minimal cover back to CFDs with merged tableaux.
func CoverToCFDs(cover []*Simple) []*CFD { return core.CoverToCFDs(cover) }

// Detection (Section 4).
type (
	// DetectOptions selects the strategy and SQL form.
	DetectOptions = detect.Options
	// DetectResult holds canonical per-CFD violations.
	DetectResult = detect.Result
	// CFDViolations is one CFD's detection outcome.
	CFDViolations = detect.CFDViolations
)

// Detection strategies.
const (
	// StrategyDirect is the pure-Go hash detector.
	StrategyDirect = detect.Direct
	// StrategySQLPerCFD runs one generated (QC, QV) pair per CFD.
	StrategySQLPerCFD = detect.SQLPerCFD
	// StrategySQLMerged runs the merged two-query plan of Section 4.2.
	StrategySQLMerged = detect.SQLMerged
)

// SQL WHERE-clause forms.
const (
	// FormCNF keeps the Figure 5 conjunctive form (slow under OR).
	FormCNF = sqlgen.CNF
	// FormDNF expands to hash-joinable disjuncts (the paper's
	// recommendation).
	FormDNF = sqlgen.DNF
)

// Detect finds all violations of Σ in the instance.
func Detect(rel *Relation, sigma []*CFD, opts DetectOptions) (*DetectResult, error) {
	return detect.Detect(rel, sigma, opts)
}

// GenerateQC returns the constant-violation SQL (Figure 5) for a CFD, with
// the tableau encoded as table tabTable.
func GenerateQC(cfd *CFD, dataTable, tabTable string, form sqlgen.Form) (string, error) {
	return sqlgen.QC(cfd, dataTable, tabTable, sqlgen.Default(form))
}

// GenerateQV returns the variable-violation SQL (Figure 5) for a CFD.
func GenerateQV(cfd *CFD, dataTable, tabTable string, form sqlgen.Form) (string, error) {
	return sqlgen.QV(cfd, dataTable, tabTable, sqlgen.Default(form))
}

// ExplainDetection renders the physical plans of a CFD's detection query
// pair against the instance — the optimizer's-eye view of the CNF/DNF
// effect the paper's experiments measure (nested loops vs hash joins).
func ExplainDetection(rel *Relation, cfd *CFD, form sqlgen.Form) (string, error) {
	return detect.Explain(rel, cfd, form)
}

// Repair (Section 6).
type (
	// RepairOptions configures the heuristic.
	RepairOptions = repair.Options
	// RepairResult is the outcome: repaired instance, change log, cost.
	RepairResult = repair.Result
	// RepairChange is one applied cell modification.
	RepairChange = repair.Change
	// RepairCostModel weights cell modifications.
	RepairCostModel = repair.CostModel
)

// Repair computes a heuristic repair I′ of the instance with I′ ⊨ Σ
// (certified in RepairResult.Satisfied).
func Repair(rel *Relation, sigma []*CFD, opts RepairOptions) (*RepairResult, error) {
	return repair.Repair(rel, sigma, opts)
}

// Incremental violation monitoring (the serving path; see
// internal/incremental).
type (
	// Monitor maintains a live violation set under tuple-level changes.
	// A durable Monitor (MonitorOptions.Durable) additionally offers
	// ForceSnapshot, Close, Recovered and JournalStats.
	Monitor = incremental.Monitor
	// MonitorOptions tunes the monitor: lock-shard count, plus the
	// durability knobs — Durable (the WAL directory; non-empty enables
	// write-ahead journaling and snapshot/log recovery), Fsync (sync every
	// record), GroupCommit (coalesce concurrent writers into shared
	// commit windows: one WAL record and one fsync per window; see
	// MonitorGroupCommit), SnapshotEvery (background snapshot cadence in
	// records) and RetainSegments (closed segments kept for WAL
	// shipping) — and Metrics, the observability registry the monitor
	// instruments itself into (nil: a private registry; DefaultMetrics():
	// the process-global one; DisabledMetrics(): off).
	MonitorOptions = incremental.Options
	// MonitorGroupCommit configures the group-commit window
	// (MonitorOptions.GroupCommit): MaxDelay is the leader's grace
	// period, MaxOps closes a window early. The zero value disables
	// group commit; setting either field enables it.
	MonitorGroupCommit = incremental.GroupCommit
	// MonitorJournalStats describes a monitor's durable state (generation,
	// records since last snapshot, recovery provenance).
	MonitorJournalStats = incremental.JournalStats
	// ChangeSet is an ordered vector of insert/delete/update ops applied
	// as one batch via Monitor.Apply: validated as a unit, journaled as a
	// single WAL record (one fsync per batch in durable mode, atomic
	// under crash), and applied with one pass per affected lock shard.
	// Build one with its Insert/Delete/Update methods or an Ops literal;
	// after Apply, inserted keys are in ChangeOp.Key.
	ChangeSet = incremental.ChangeSet
	// ChangeOp is one mutation within a ChangeSet.
	ChangeOp = incremental.Op
	// ChangeOpKind discriminates ChangeOp mutations.
	ChangeOpKind = incremental.OpKind
	// ViolationDelta is the net violation change caused by one operation.
	ViolationDelta = incremental.Delta
	// ViolationChange is one added or retired violation within a delta.
	ViolationChange = incremental.Change
	// MonitorState is a point-in-time snapshot of the live violation set.
	MonitorState = incremental.State
	// MonitorViolations is one CFD's entry in a MonitorState.
	MonitorViolations = incremental.CFDViolations
	// MonitorViolationsView is an immutable published snapshot of the
	// live violation set, maintained in O(Δ) from the apply path and
	// swapped atomically — Monitor.View returns the current one (a
	// pointer load at an unchanged version), Monitor.ViewVersion the
	// version counter conditional reads compare against.
	MonitorViolationsView = incremental.ViolationsView
)

// ChangeOp kinds (see ChangeOp.Kind).
const (
	OpInsert = incremental.OpInsert
	OpDelete = incremental.OpDelete
	OpUpdate = incremental.OpUpdate
)

// Observability (see the "Observability" section of the package
// documentation and internal/obs). Every Monitor instruments its apply
// pipeline, WAL and replication into a MetricsRegistry; layers on top
// (discovery miners, cfdserve's HTTP middleware) register theirs into
// the same registry, and WritePrometheus renders it all in Prometheus
// text exposition format.
type (
	// MetricsRegistry collects counters, gauges and power-of-two-bucket
	// histograms; render with its WritePrometheus method.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value pair distinguishing series within a
	// metric family.
	MetricLabel = obs.Label
	// MetricCounter is a monotonically increasing series handle.
	MetricCounter = obs.Counter
	// MetricGauge is an up/down series handle.
	MetricGauge = obs.Gauge
	// MetricHistogram is a latency/size distribution handle with
	// p50/p95/p99 extraction (Quantile).
	MetricHistogram = obs.Histogram
)

// NewMetricsRegistry returns an empty registry — pass it through
// MonitorOptions.Metrics to collect one monitor's series in isolation.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the process-global registry daemons share, so
// one /metrics scrape covers every component wired into it.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// DisabledMetrics returns the sentinel registry that turns
// instrumentation off for any component it is passed to.
func DisabledMetrics() *MetricsRegistry { return obs.Disabled() }

// WAL segment shipping and hot standby (see the "Replication" section of
// the package documentation): a durable Monitor exposes its snapshot and
// log segments as record-aligned chunks, and a MonitorFollower tails
// them into its own WAL directory as a read-only replica that can be
// promoted to a writable primary at the record boundary it has applied.
// cfdserve serves the primary side as GET /wal/snapshot and
// GET /wal/stream, and runs the follower side with -follow.
type (
	// MonitorFollower is a hot standby: a read-only Monitor tailing a
	// primary's WAL stream. See FollowMonitor.
	MonitorFollower = incremental.Follower
	// FollowOptions configures a MonitorFollower: the chunk source, poll
	// interval, chunk size, auto-promotion timeout, and resync.
	FollowOptions = incremental.FollowOptions
	// ReplicaStatus is a follower's replication position: applied
	// cursor, primary position, lag, last error.
	ReplicaStatus = incremental.ReplicaStatus
	// WALShipChunk is one record-aligned slice of a primary's WAL
	// stream, as served by Monitor.WALChunk.
	WALShipChunk = incremental.ShipChunk
	// WALChunkSource abstracts a primary's shipping surface (snapshot +
	// chunks); implemented over HTTP by cfdserve's follow mode and
	// in-process by NewMonitorChunkSource.
	WALChunkSource = incremental.ChunkSource
)

// Replication errors.
var (
	// ErrMonitorReadOnly reports a mutation against a following monitor;
	// promote it first (MonitorFollower.Promote, POST /promote).
	ErrMonitorReadOnly = incremental.ErrReadOnly
	// ErrMonitorFenced reports a write refused because the node is
	// fenced: a higher-epoch history exists (a standby was promoted),
	// so this node's appends can no longer be acknowledged. See
	// Monitor.ApplyAt, Monitor.Fence and the internal/incremental
	// fencing docs.
	ErrMonitorFenced = incremental.ErrFenced
	// ErrWALSegmentGone reports a shipping cursor below the primary's
	// retention window (MonitorOptions.RetainSegments); the follower
	// must be rebuilt with FollowOptions.Resync.
	ErrWALSegmentGone = incremental.ErrSegmentGone
	// ErrPrimaryResponded marks a WALChunkSource error where the primary
	// was reached and answered (an HTTP error status): proof of
	// liveness. Sources should wrap such errors with it so the follower
	// retries without arming auto-promotion.
	ErrPrimaryResponded = incremental.ErrPrimaryResponded
)

// FollowMonitor boots a hot-standby follower of the primary behind
// FollowOptions.Source: local WAL state (opts.Durable, required) is
// recovered and resumed when present, otherwise the primary's current
// snapshot seeds the directory. The returned follower's Monitor serves
// reads (violations, stats, discovery) and refuses writes until
// Promote; drive replication with Run (long-lived tail loop) or Sync
// (one catch-up pass).
func FollowMonitor(ctx context.Context, sigma []*CFD, opts MonitorOptions, fo FollowOptions) (*MonitorFollower, error) {
	return incremental.NewFollower(ctx, sigma, opts, fo)
}

// NewMonitorChunkSource exposes a local durable monitor's WAL stream as
// a WALChunkSource — the in-process form of the shipping protocol, for
// tests, benchmarks and same-process replicas.
func NewMonitorChunkSource(m *Monitor) WALChunkSource {
	return incremental.NewMonitorSource(m)
}

// Sharded cluster (see internal/cluster and cmd/cfdrouter): a
// consistent-hash ring partitions the tuple-key space across shard
// groups, and a ClusterRouter splits each ChangeSet by owning shard,
// fans sub-batches out in parallel under epoch stamps, and merges the
// per-shard violation deltas. Failover is fenced promotion per group.
type (
	// ClusterRouter fronts a sharded cluster; see its Apply and Promote.
	ClusterRouter = cluster.Router
	// ClusterRing is the consistent-hash ring (virtual nodes) behind a
	// router's key partition.
	ClusterRing = cluster.Ring
	// ClusterBackend is one shard-group node as the router addresses it
	// (in-process: ClusterLocalBackend; over HTTP: cfdrouter).
	ClusterBackend = cluster.Backend
	// ClusterGroupConfig declares one shard group (name, primary,
	// promotion-ordered standbys).
	ClusterGroupConfig = cluster.GroupConfig
	// ClusterOptions tunes a router (virtual-node count, read-staleness
	// bound MaxReadLag).
	ClusterOptions = cluster.Options
	// ClusterReadBackend is the read-side extension of ClusterBackend: a
	// node that reports its replication position, making it eligible for
	// ClusterReadAny fan-out (ClusterRouter.PickRead).
	ClusterReadBackend = cluster.ReadBackend
	// ClusterReadPosition is a node's replication position (epoch + WAL
	// byte lag) as the read fan-out's staleness guard evaluates it.
	ClusterReadPosition = cluster.ReadPosition
	// ClusterReadConsistency selects which nodes of a shard group may
	// serve a read: ClusterReadPrimary or ClusterReadAny.
	ClusterReadConsistency = cluster.ReadConsistency
	// ClusterLocalBackend adapts an in-process Monitor/MonitorFollower
	// to ClusterBackend.
	ClusterLocalBackend = cluster.LocalBackend
	// ClusterApplyError names the shard groups whose sub-batches failed
	// in one routed apply (per-shard atomicity; see ClusterRouter.Apply).
	ClusterApplyError = cluster.ApplyError
	// ClusterGroupStatus is one group's row in ClusterRouter.Status.
	ClusterGroupStatus = cluster.GroupStatus
)

// Read-consistency modes for ClusterRouter.PickRead.
const (
	// ClusterReadPrimary serves the read from the group's current
	// primary — the answer reflects every acknowledged write.
	ClusterReadPrimary = cluster.ReadPrimary
	// ClusterReadAny load-balances across the primary and every standby
	// within the staleness bound (same epoch, lag ≤ MaxReadLag).
	ClusterReadAny = cluster.ReadAny
)

// ParseClusterReadConsistency maps the wire form of a read-consistency
// mode ("primary", "any"; "" defaults to primary) to its constant.
func ParseClusterReadConsistency(s string) (ClusterReadConsistency, error) {
	return cluster.ParseReadConsistency(s)
}

// NewClusterRouter builds a router over the given shard groups, reading
// each primary's epoch token and key watermark.
func NewClusterRouter(ctx context.Context, groups []ClusterGroupConfig, opts ClusterOptions) (*ClusterRouter, error) {
	return cluster.NewRouter(ctx, groups, opts)
}

// NewClusterRing builds a standalone consistent-hash ring (vnodes 0
// means the default per-member count).
func NewClusterRing(vnodes int, members ...string) (*ClusterRing, error) {
	return cluster.NewRing(vnodes, members...)
}

// NewMonitor builds an empty incremental monitor for the schema and Σ;
// feed it with Monitor.Insert. With opts.Durable set, every mutation is
// journaled to a write-ahead log before it is applied, and a directory
// that already holds journaled state is recovered (latest snapshot + log
// tail) instead of starting empty.
func NewMonitor(schema *Schema, sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.New(schema, sigma, opts)
}

// LoadMonitor builds a monitor over an existing instance. Tuple keys are
// assigned 0..Len()-1 in row order, so they coincide with the batch
// detectors' row ids for the initial load.
//
// With opts.Durable set, LoadMonitor gains a recovery path: a directory
// that already holds journaled state wins over rel (the snapshot and log
// tail are replayed; the instance is ignored), while a fresh directory is
// seeded from rel and immediately snapshotted so later boots never touch
// the CSV again. Monitor.Recovered reports which path ran.
func LoadMonitor(rel *Relation, sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.Load(rel, sigma, opts)
}

// ErrNoMonitorState reports that a WAL directory holds no snapshot to
// boot from; OpenMonitor callers fall back to seeding via LoadMonitor.
var ErrNoMonitorState = incremental.ErrNoState

// OpenMonitor boots a durable monitor from its WAL directory alone
// (opts.Durable): the schema is read from the latest snapshot, so the
// original data source is neither needed nor parsed. Σ still comes from
// the caller and is verified against the journaled state. Returns
// ErrNoMonitorState when the directory has no snapshot yet.
func OpenMonitor(sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.Open(sigma, opts)
}

// Workload generation (Section 5).
type (
	// TaxConfig are the data knobs SZ and NOISE.
	TaxConfig = gen.TaxConfig
	// TaxData is a generated workload (clean, dirty, ground truth).
	TaxData = gen.TaxData
	// CFDConfig are the CFD knobs (template/NUMATTRs, TABSZ, NUMCONSTs).
	CFDConfig = gen.CFDConfig
	// CFDTemplate identifies a semantic constraint family.
	CFDTemplate = gen.Template
)

// TaxSchema returns the 15-attribute tax-records schema of Section 5.
func TaxSchema() *Schema { return gen.TaxSchema() }

// GenerateTax builds a tax-records workload (deterministic in the seed).
func GenerateTax(cfg TaxConfig) *TaxData { return gen.GenerateTax(cfg) }

// GenerateWorkloadCFD samples a CFD workload from a clean instance.
func GenerateWorkloadCFD(clean *Relation, cfg CFDConfig) (*CFD, error) {
	return gen.GenerateWorkloadCFD(clean, cfg)
}

// CFDTemplateByAttrs picks the template spanning n attributes (NUMATTRs).
func CFDTemplateByAttrs(n int) (CFDTemplate, error) { return gen.TemplateByAttrs(n) }

// SemanticTaxCFDs returns the constraint set clean tax data satisfies.
func SemanticTaxCFDs() []*CFD { return gen.SemanticCFDs() }

// CFD discovery (the Section 7 future-work item). There is one mining
// code path and it is streaming: a CFDMiner rides the Monitor's
// group-statistics substrate and re-scores only the groups each change
// touched; DiscoverCFDs is its bulk entry (seed a throwaway monitor,
// read the initial mined set).
type (
	// DiscoveryConfig tunes the miner (MaxLHS, MinSupport, MinConfidence,
	// MaxPatterns). Invalid tunables (MinConfidence > 1, negative
	// MaxPatterns) are rejected with an error.
	DiscoveryConfig = discovery.Config
	// DiscoveredCFD is one mined constraint with support metadata.
	DiscoveredCFD = discovery.Discovered
	// CFDMiner is a streaming miner attached to a live Monitor (see
	// WatchDiscovery): Refresh re-scores what changed and reports the
	// mined set's appear/update/retire deltas; Mined materializes the
	// current set.
	CFDMiner = discovery.Miner
	// MinedChange is one CFDMiner.Refresh outcome: an embedded FD that
	// appeared in, changed within, or retired from the mined set.
	MinedChange = discovery.MinedChange
	// MinedChangeKind discriminates MinedChange outcomes.
	MinedChangeKind = discovery.MinedChangeKind

	// MonitorAttrPair is one tracked pair of the Monitor's generalized
	// group-statistics substrate (Monitor.TrackGroups) — the layer the
	// miner is built on, usable directly for custom aggregations.
	MonitorAttrPair = incremental.AttrPair
	// MonitorGroupStats is a live group-statistics subscription.
	MonitorGroupStats = incremental.GroupStats
	// MonitorGroupDelta is one drained group-delta event.
	MonitorGroupDelta = incremental.GroupDelta
)

// MinedChange kinds (see MinedChange.Kind).
const (
	MinedAppeared = discovery.MinedAppeared
	MinedUpdated  = discovery.MinedUpdated
	MinedRetired  = discovery.MinedRetired
)

// DiscoverCFDs mines CFDs (global FDs and constant patterns) that hold on
// the instance.
func DiscoverCFDs(rel *Relation, cfg DiscoveryConfig) ([]DiscoveredCFD, error) {
	return discovery.Discover(rel, cfg)
}

// DiscoveredToCFDs extracts the constraint list from mining results.
func DiscoveredToCFDs(ds []DiscoveredCFD) []*CFD { return discovery.CFDs(ds) }

// WatchDiscovery attaches a streaming CFD miner to a live monitor: the
// current instance is scored once, and every subsequent ChangeSet's
// group-deltas re-score only the X-groups it touched — call Refresh
// after applying changes to fold them in and learn what appeared or
// retired, Mined for the current set. Detach with CFDMiner.Close. The
// cfdserve GET /discover endpoint and cfddetect -watch -mine are this
// path as a service.
func WatchDiscovery(m *Monitor, cfg DiscoveryConfig) (*CFDMiner, error) {
	return discovery.NewMiner(m, cfg)
}

// Conditional inclusion dependencies (the second Section 7 constraint
// class; see internal/cind).
type (
	// CIND is a conditional inclusion dependency (R1[X; Xp] ⊆ R2[Y; Yp], Tp).
	CIND = cind.CIND
	// CINDSide is one half of the embedded inclusion.
	CINDSide = cind.Side
	// CINDViolation is one failing LHS tuple.
	CINDViolation = cind.Violation
)

// ParseCIND parses one line of the CIND notation, e.g.
// "order[title | type=book] <= book[title]".
func ParseCIND(line string) (*CIND, error) { return cind.ParseCIND(line) }

// ParseCINDSet parses a multi-line CIND file, merging rows that share an
// embedded inclusion.
func ParseCINDSet(text string) ([]*CIND, error) { return cind.ParseSet(text) }

// SatisfiesCIND reports (I1, I2) ⊨ ψ.
func SatisfiesCIND(i1, i2 *Relation, psi *CIND) (bool, error) {
	return cind.Satisfies(i1, i2, psi)
}

// FindCINDViolations lists the LHS tuples violating ψ.
func FindCINDViolations(i1, i2 *Relation, psi *CIND) ([]CINDViolation, error) {
	return cind.FindViolations(i1, i2, psi)
}
