package repro

import (
	"io"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/sqlgen"
)

// The public facade is split by subsystem: this file holds the core
// model, reasoning, detection, workload generation and CINDs;
// api_monitor.go the incremental monitor, observability and replication;
// api_cluster.go the sharded cluster; api_discovery.go CFD mining; and
// api_repair.go batch repair and the live repair suggester.

// Core model types.
type (
	// CFD is a conditional functional dependency (X → Y, Tp).
	CFD = core.CFD
	// Pattern is one tableau cell: a constant, '_' or '@'.
	Pattern = core.Pattern
	// PatternRow is one pattern tuple of a tableau.
	PatternRow = core.PatternRow
	// Simple is a normal-form CFD (single RHS attribute, single pattern).
	Simple = core.Simple
	// Violation is a detected inconsistency (constant or variable kind).
	Violation = core.Violation

	// Schema, Relation, Tuple, Value, Attribute and Domain form the data
	// model; see NewSchema and ReadCSV.
	Schema    = relation.Schema
	Relation  = relation.Relation
	Tuple     = relation.Tuple
	Value     = relation.Value
	Attribute = relation.Attribute
	Domain    = relation.Domain
)

// Pattern constructors.
var (
	// Const builds a constant pattern cell.
	Const = core.C
	// Wildcard builds the unnamed-variable ('_') cell.
	Wildcard = core.W
)

// Violation kinds (see Violation.Kind).
const (
	ConstViolation    = core.ConstViolation
	VariableViolation = core.VariableViolation
)

// NewCFD builds and validates a CFD from attribute lists and pattern rows.
func NewCFD(lhs, rhs []string, rows ...PatternRow) (*CFD, error) {
	return core.NewCFD(lhs, rhs, rows...)
}

// ParseCFD parses one line of the text notation, e.g.
// "[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]".
func ParseCFD(line string) (*CFD, error) { return core.ParseCFD(line) }

// ParseCFDSet parses a multi-line CFD file (one pattern row per line,
// '#' comments), merging rows that share an embedded FD into tableaux.
func ParseCFDSet(text string) ([]*CFD, error) { return core.ParseSet(text) }

// FormatCFDSet renders a CFD set in the notation ParseCFDSet accepts.
func FormatCFDSet(sigma []*CFD) string { return core.FormatSet(sigma) }

// NewSchema builds a relation schema from attribute definitions.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// Attr is shorthand for an attribute with an unbounded domain.
func Attr(name string) Attribute { return relation.Attr(name) }

// Enum builds a finite domain (the source of the paper's NP-hardness
// results, and of inference rules FD7/FD8).
func Enum(name string, values ...Value) *Domain { return relation.Enum(name, values...) }

// NewRelation returns an empty instance of a schema.
func NewRelation(schema *Schema) *Relation { return relation.New(schema) }

// ReadCSV loads a relation from CSV (first record is the header).
func ReadCSV(r io.Reader, schemaName string) (*Relation, error) {
	return relation.ReadCSV(r, schemaName)
}

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error { return relation.WriteCSV(w, rel) }

// Satisfies reports I ⊨ ϕ (Section 2 semantics).
func Satisfies(rel *Relation, cfd *CFD) (bool, error) { return core.Satisfies(rel, cfd) }

// SatisfiesSet reports I ⊨ Σ.
func SatisfiesSet(rel *Relation, sigma []*CFD) (bool, error) {
	return core.SatisfiesSet(rel, sigma)
}

// FindViolations lists every violation of ϕ in the instance using the
// indexed detector.
func FindViolations(rel *Relation, cfd *CFD) ([]Violation, error) {
	return detect.FindDetailed(rel, cfd)
}

// Consistent decides whether Σ admits a nonempty instance (Theorem 3.2
// regime) and returns a single-tuple witness when it does.
func Consistent(schema *Schema, sigma []*CFD) (bool, map[string]Value, error) {
	return core.Consistent(schema, sigma)
}

// Implies decides Σ ⊨ ϕ (Theorem 3.5 regime).
func Implies(schema *Schema, sigma []*CFD, phi *CFD) (bool, error) {
	return core.Implies(schema, sigma, phi)
}

// Equivalent decides Σ1 ≡ Σ2.
func Equivalent(schema *Schema, sigma1, sigma2 []*CFD) (bool, error) {
	return core.Equivalent(schema, sigma1, sigma2)
}

// MinimalCover computes a minimal cover of Σ (Figure 4 of the paper);
// the empty set is returned when Σ is inconsistent.
func MinimalCover(schema *Schema, sigma []*CFD) ([]*Simple, error) {
	return core.MinimalCover(schema, sigma)
}

// CoverToCFDs converts a minimal cover back to CFDs with merged tableaux.
func CoverToCFDs(cover []*Simple) []*CFD { return core.CoverToCFDs(cover) }

// Detection (Section 4).
type (
	// DetectOptions selects the strategy and SQL form.
	DetectOptions = detect.Options
	// DetectResult holds canonical per-CFD violations.
	DetectResult = detect.Result
	// CFDViolations is one CFD's detection outcome.
	CFDViolations = detect.CFDViolations
)

// Detection strategies.
const (
	// StrategyDirect is the pure-Go hash detector.
	StrategyDirect = detect.Direct
	// StrategySQLPerCFD runs one generated (QC, QV) pair per CFD.
	StrategySQLPerCFD = detect.SQLPerCFD
	// StrategySQLMerged runs the merged two-query plan of Section 4.2.
	StrategySQLMerged = detect.SQLMerged
)

// SQL WHERE-clause forms.
const (
	// FormCNF keeps the Figure 5 conjunctive form (slow under OR).
	FormCNF = sqlgen.CNF
	// FormDNF expands to hash-joinable disjuncts (the paper's
	// recommendation).
	FormDNF = sqlgen.DNF
)

// Detect finds all violations of Σ in the instance.
func Detect(rel *Relation, sigma []*CFD, opts DetectOptions) (*DetectResult, error) {
	return detect.Detect(rel, sigma, opts)
}

// GenerateQC returns the constant-violation SQL (Figure 5) for a CFD, with
// the tableau encoded as table tabTable.
func GenerateQC(cfd *CFD, dataTable, tabTable string, form sqlgen.Form) (string, error) {
	return sqlgen.QC(cfd, dataTable, tabTable, sqlgen.Default(form))
}

// GenerateQV returns the variable-violation SQL (Figure 5) for a CFD.
func GenerateQV(cfd *CFD, dataTable, tabTable string, form sqlgen.Form) (string, error) {
	return sqlgen.QV(cfd, dataTable, tabTable, sqlgen.Default(form))
}

// ExplainDetection renders the physical plans of a CFD's detection query
// pair against the instance — the optimizer's-eye view of the CNF/DNF
// effect the paper's experiments measure (nested loops vs hash joins).
func ExplainDetection(rel *Relation, cfd *CFD, form sqlgen.Form) (string, error) {
	return detect.Explain(rel, cfd, form)
}

// Workload generation (Section 5).
type (
	// TaxConfig are the data knobs SZ and NOISE.
	TaxConfig = gen.TaxConfig
	// TaxData is a generated workload (clean, dirty, ground truth).
	TaxData = gen.TaxData
	// CFDConfig are the CFD knobs (template/NUMATTRs, TABSZ, NUMCONSTs).
	CFDConfig = gen.CFDConfig
	// CFDTemplate identifies a semantic constraint family.
	CFDTemplate = gen.Template
)

// TaxSchema returns the 15-attribute tax-records schema of Section 5.
func TaxSchema() *Schema { return gen.TaxSchema() }

// GenerateTax builds a tax-records workload (deterministic in the seed).
func GenerateTax(cfg TaxConfig) *TaxData { return gen.GenerateTax(cfg) }

// GenerateWorkloadCFD samples a CFD workload from a clean instance.
func GenerateWorkloadCFD(clean *Relation, cfg CFDConfig) (*CFD, error) {
	return gen.GenerateWorkloadCFD(clean, cfg)
}

// CFDTemplateByAttrs picks the template spanning n attributes (NUMATTRs).
func CFDTemplateByAttrs(n int) (CFDTemplate, error) { return gen.TemplateByAttrs(n) }

// SemanticTaxCFDs returns the constraint set clean tax data satisfies.
func SemanticTaxCFDs() []*CFD { return gen.SemanticCFDs() }

// Conditional inclusion dependencies (the second Section 7 constraint
// class; see internal/cind).
type (
	// CIND is a conditional inclusion dependency (R1[X; Xp] ⊆ R2[Y; Yp], Tp).
	CIND = cind.CIND
	// CINDSide is one half of the embedded inclusion.
	CINDSide = cind.Side
	// CINDViolation is one failing LHS tuple.
	CINDViolation = cind.Violation
)

// ParseCIND parses one line of the CIND notation, e.g.
// "order[title | type=book] <= book[title]".
func ParseCIND(line string) (*CIND, error) { return cind.ParseCIND(line) }

// ParseCINDSet parses a multi-line CIND file, merging rows that share an
// embedded inclusion.
func ParseCINDSet(text string) ([]*CIND, error) { return cind.ParseSet(text) }

// SatisfiesCIND reports (I1, I2) ⊨ ψ.
func SatisfiesCIND(i1, i2 *Relation, psi *CIND) (bool, error) {
	return cind.Satisfies(i1, i2, psi)
}

// FindCINDViolations lists the LHS tuples violating ψ.
func FindCINDViolations(i1, i2 *Relation, psi *CIND) ([]CINDViolation, error) {
	return cind.FindViolations(i1, i2, psi)
}
