package repro

import (
	"context"

	"repro/internal/cluster"
)

// Sharded cluster (see internal/cluster and cmd/cfdrouter): a
// consistent-hash ring partitions the tuple-key space across shard
// groups, and a ClusterRouter splits each ChangeSet by owning shard,
// fans sub-batches out in parallel under epoch stamps, and merges the
// per-shard violation deltas. Failover is fenced promotion per group.
type (
	// ClusterRouter fronts a sharded cluster; see its Apply and Promote.
	ClusterRouter = cluster.Router
	// ClusterRing is the consistent-hash ring (virtual nodes) behind a
	// router's key partition.
	ClusterRing = cluster.Ring
	// ClusterBackend is one shard-group node as the router addresses it
	// (in-process: ClusterLocalBackend; over HTTP: cfdrouter).
	ClusterBackend = cluster.Backend
	// ClusterGroupConfig declares one shard group (name, primary,
	// promotion-ordered standbys).
	ClusterGroupConfig = cluster.GroupConfig
	// ClusterOptions tunes a router (virtual-node count, read-staleness
	// bound MaxReadLag).
	ClusterOptions = cluster.Options
	// ClusterReadBackend is the read-side extension of ClusterBackend: a
	// node that reports its replication position, making it eligible for
	// ClusterReadAny fan-out (ClusterRouter.PickRead).
	ClusterReadBackend = cluster.ReadBackend
	// ClusterReadPosition is a node's replication position (epoch + WAL
	// byte lag) as the read fan-out's staleness guard evaluates it.
	ClusterReadPosition = cluster.ReadPosition
	// ClusterReadConsistency selects which nodes of a shard group may
	// serve a read: ClusterReadPrimary or ClusterReadAny.
	ClusterReadConsistency = cluster.ReadConsistency
	// ClusterLocalBackend adapts an in-process Monitor/MonitorFollower
	// to ClusterBackend.
	ClusterLocalBackend = cluster.LocalBackend
	// ClusterApplyError names the shard groups whose sub-batches failed
	// in one routed apply (per-shard atomicity; see ClusterRouter.Apply).
	ClusterApplyError = cluster.ApplyError
	// ClusterGroupStatus is one group's row in ClusterRouter.Status.
	ClusterGroupStatus = cluster.GroupStatus
)

// Read-consistency modes for ClusterRouter.PickRead.
const (
	// ClusterReadPrimary serves the read from the group's current
	// primary — the answer reflects every acknowledged write.
	ClusterReadPrimary = cluster.ReadPrimary
	// ClusterReadAny load-balances across the primary and every standby
	// within the staleness bound (same epoch, lag ≤ MaxReadLag).
	ClusterReadAny = cluster.ReadAny
)

// ParseClusterReadConsistency maps the wire form of a read-consistency
// mode ("primary", "any"; "" defaults to primary) to its constant.
func ParseClusterReadConsistency(s string) (ClusterReadConsistency, error) {
	return cluster.ParseReadConsistency(s)
}

// NewClusterRouter builds a router over the given shard groups, reading
// each primary's epoch token and key watermark.
func NewClusterRouter(ctx context.Context, groups []ClusterGroupConfig, opts ClusterOptions) (*ClusterRouter, error) {
	return cluster.NewRouter(ctx, groups, opts)
}

// NewClusterRing builds a standalone consistent-hash ring (vnodes 0
// means the default per-member count).
func NewClusterRing(vnodes int, members ...string) (*ClusterRing, error) {
	return cluster.NewRing(vnodes, members...)
}
