package repro

import (
	"repro/internal/discovery"
	"repro/internal/incremental"
)

// CFD discovery (the Section 7 future-work item). There is one mining
// code path and it is streaming: a CFDMiner rides the Monitor's
// group-statistics substrate and re-scores only the groups each change
// touched; DiscoverCFDs is its bulk entry (seed a throwaway monitor,
// read the initial mined set).
type (
	// DiscoveryConfig tunes the miner (MaxLHS, MinSupport, MinConfidence,
	// MaxPatterns). Invalid tunables (MinConfidence > 1, negative
	// MaxPatterns) are rejected with an error.
	DiscoveryConfig = discovery.Config
	// DiscoveredCFD is one mined constraint with support metadata.
	DiscoveredCFD = discovery.Discovered
	// CFDMiner is a streaming miner attached to a live Monitor (see
	// WatchDiscovery): Refresh re-scores what changed and reports the
	// mined set's appear/update/retire deltas; Mined materializes the
	// current set. Its Confidence method reports a candidate FD's live
	// agreement ratio, making the miner a RepairTrustSource for
	// WatchRepairs' relative-trust loop.
	CFDMiner = discovery.Miner
	// MinedChange is one CFDMiner.Refresh outcome: an embedded FD that
	// appeared in, changed within, or retired from the mined set.
	MinedChange = discovery.MinedChange
	// MinedChangeKind discriminates MinedChange outcomes.
	MinedChangeKind = discovery.MinedChangeKind

	// MonitorAttrPair is one tracked pair of the Monitor's generalized
	// group-statistics substrate (Monitor.TrackGroups) — the layer the
	// miner is built on, usable directly for custom aggregations.
	MonitorAttrPair = incremental.AttrPair
	// MonitorGroupStats is a live group-statistics subscription.
	MonitorGroupStats = incremental.GroupStats
	// MonitorGroupDelta is one drained group-delta event.
	MonitorGroupDelta = incremental.GroupDelta
)

// MinedChange kinds (see MinedChange.Kind).
const (
	MinedAppeared = discovery.MinedAppeared
	MinedUpdated  = discovery.MinedUpdated
	MinedRetired  = discovery.MinedRetired
)

// DiscoverCFDs mines CFDs (global FDs and constant patterns) that hold on
// the instance.
func DiscoverCFDs(rel *Relation, cfg DiscoveryConfig) ([]DiscoveredCFD, error) {
	return discovery.Discover(rel, cfg)
}

// DiscoveredToCFDs extracts the constraint list from mining results.
func DiscoveredToCFDs(ds []DiscoveredCFD) []*CFD { return discovery.CFDs(ds) }

// WatchDiscovery attaches a streaming CFD miner to a live monitor: the
// current instance is scored once, and every subsequent ChangeSet's
// group-deltas re-score only the X-groups it touched — call Refresh
// after applying changes to fold them in and learn what appeared or
// retired, Mined for the current set. Detach with CFDMiner.Close. The
// cfdserve GET /discover endpoint and cfddetect -watch -mine are this
// path as a service.
func WatchDiscovery(m *Monitor, cfg DiscoveryConfig) (*CFDMiner, error) {
	return discovery.NewMiner(m, cfg)
}
