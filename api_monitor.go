package repro

import (
	"context"

	"repro/internal/incremental"
	"repro/internal/obs"
)

// Incremental violation monitoring (the serving path; see
// internal/incremental).
type (
	// Monitor maintains a live violation set under tuple-level changes.
	// A durable Monitor (MonitorOptions.Durable) additionally offers
	// ForceSnapshot, Close, Recovered and JournalStats.
	Monitor = incremental.Monitor
	// MonitorOptions tunes the monitor: lock-shard count, plus the
	// durability knobs — Durable (the WAL directory; non-empty enables
	// write-ahead journaling and snapshot/log recovery), Fsync (sync every
	// record), GroupCommit (coalesce concurrent writers into shared
	// commit windows: one WAL record and one fsync per window; see
	// MonitorGroupCommit), SnapshotEvery (background snapshot cadence in
	// records) and RetainSegments (closed segments kept for WAL
	// shipping) — and Metrics, the observability registry the monitor
	// instruments itself into (nil: a private registry; DefaultMetrics():
	// the process-global one; DisabledMetrics(): off).
	MonitorOptions = incremental.Options
	// MonitorGroupCommit configures the group-commit window
	// (MonitorOptions.GroupCommit): MaxDelay is the leader's grace
	// period, MaxOps closes a window early. The zero value disables
	// group commit; setting either field enables it.
	MonitorGroupCommit = incremental.GroupCommit
	// MonitorJournalStats describes a monitor's durable state (generation,
	// records since last snapshot, recovery provenance).
	MonitorJournalStats = incremental.JournalStats
	// ChangeSet is an ordered vector of insert/delete/update ops applied
	// as one batch via Monitor.Apply: validated as a unit, journaled as a
	// single WAL record (one fsync per batch in durable mode, atomic
	// under crash), and applied with one pass per affected lock shard.
	// Build one with its Insert/Delete/Update methods or an Ops literal;
	// after Apply, inserted keys are in ChangeOp.Key.
	ChangeSet = incremental.ChangeSet
	// ChangeOp is one mutation within a ChangeSet.
	ChangeOp = incremental.Op
	// ChangeOpKind discriminates ChangeOp mutations.
	ChangeOpKind = incremental.OpKind
	// ViolationDelta is the net violation change caused by one operation.
	ViolationDelta = incremental.Delta
	// ViolationChange is one added or retired violation within a delta.
	ViolationChange = incremental.Change
	// MonitorState is a point-in-time snapshot of the live violation set.
	MonitorState = incremental.State
	// MonitorViolations is one CFD's entry in a MonitorState.
	MonitorViolations = incremental.CFDViolations
	// MonitorViolationsView is an immutable published snapshot of the
	// live violation set, maintained in O(Δ) from the apply path and
	// swapped atomically — Monitor.View returns the current one (a
	// pointer load at an unchanged version), Monitor.ViewVersion the
	// version counter conditional reads compare against.
	MonitorViolationsView = incremental.ViolationsView
)

// ChangeOp kinds (see ChangeOp.Kind).
const (
	OpInsert = incremental.OpInsert
	OpDelete = incremental.OpDelete
	OpUpdate = incremental.OpUpdate
)

// Observability (see the "Observability" section of the package
// documentation and internal/obs). Every Monitor instruments its apply
// pipeline, WAL and replication into a MetricsRegistry; layers on top
// (discovery miners, cfdserve's HTTP middleware) register theirs into
// the same registry, and WritePrometheus renders it all in Prometheus
// text exposition format.
type (
	// MetricsRegistry collects counters, gauges and power-of-two-bucket
	// histograms; render with its WritePrometheus method.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value pair distinguishing series within a
	// metric family.
	MetricLabel = obs.Label
	// MetricCounter is a monotonically increasing series handle.
	MetricCounter = obs.Counter
	// MetricGauge is an up/down series handle.
	MetricGauge = obs.Gauge
	// MetricHistogram is a latency/size distribution handle with
	// p50/p95/p99 extraction (Quantile).
	MetricHistogram = obs.Histogram
)

// NewMetricsRegistry returns an empty registry — pass it through
// MonitorOptions.Metrics to collect one monitor's series in isolation.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// DefaultMetrics returns the process-global registry daemons share, so
// one /metrics scrape covers every component wired into it.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// DisabledMetrics returns the sentinel registry that turns
// instrumentation off for any component it is passed to.
func DisabledMetrics() *MetricsRegistry { return obs.Disabled() }

// WAL segment shipping and hot standby (see the "Replication" section of
// the package documentation): a durable Monitor exposes its snapshot and
// log segments as record-aligned chunks, and a MonitorFollower tails
// them into its own WAL directory as a read-only replica that can be
// promoted to a writable primary at the record boundary it has applied.
// cfdserve serves the primary side as GET /wal/snapshot and
// GET /wal/stream, and runs the follower side with -follow.
type (
	// MonitorFollower is a hot standby: a read-only Monitor tailing a
	// primary's WAL stream. See FollowMonitor.
	MonitorFollower = incremental.Follower
	// FollowOptions configures a MonitorFollower: the chunk source, poll
	// interval, chunk size, auto-promotion timeout, and resync.
	FollowOptions = incremental.FollowOptions
	// ReplicaStatus is a follower's replication position: applied
	// cursor, primary position, lag, last error.
	ReplicaStatus = incremental.ReplicaStatus
	// WALShipChunk is one record-aligned slice of a primary's WAL
	// stream, as served by Monitor.WALChunk.
	WALShipChunk = incremental.ShipChunk
	// WALChunkSource abstracts a primary's shipping surface (snapshot +
	// chunks); implemented over HTTP by cfdserve's follow mode and
	// in-process by NewMonitorChunkSource.
	WALChunkSource = incremental.ChunkSource
)

// Replication errors.
var (
	// ErrMonitorReadOnly reports a mutation against a following monitor;
	// promote it first (MonitorFollower.Promote, POST /promote).
	ErrMonitorReadOnly = incremental.ErrReadOnly
	// ErrMonitorFenced reports a write refused because the node is
	// fenced: a higher-epoch history exists (a standby was promoted),
	// so this node's appends can no longer be acknowledged. See
	// Monitor.ApplyAt, Monitor.Fence and the internal/incremental
	// fencing docs.
	ErrMonitorFenced = incremental.ErrFenced
	// ErrWALSegmentGone reports a shipping cursor below the primary's
	// retention window (MonitorOptions.RetainSegments); the follower
	// must be rebuilt with FollowOptions.Resync.
	ErrWALSegmentGone = incremental.ErrSegmentGone
	// ErrPrimaryResponded marks a WALChunkSource error where the primary
	// was reached and answered (an HTTP error status): proof of
	// liveness. Sources should wrap such errors with it so the follower
	// retries without arming auto-promotion.
	ErrPrimaryResponded = incremental.ErrPrimaryResponded
)

// FollowMonitor boots a hot-standby follower of the primary behind
// FollowOptions.Source: local WAL state (opts.Durable, required) is
// recovered and resumed when present, otherwise the primary's current
// snapshot seeds the directory. The returned follower's Monitor serves
// reads (violations, stats, discovery) and refuses writes until
// Promote; drive replication with Run (long-lived tail loop) or Sync
// (one catch-up pass).
func FollowMonitor(ctx context.Context, sigma []*CFD, opts MonitorOptions, fo FollowOptions) (*MonitorFollower, error) {
	return incremental.NewFollower(ctx, sigma, opts, fo)
}

// NewMonitorChunkSource exposes a local durable monitor's WAL stream as
// a WALChunkSource — the in-process form of the shipping protocol, for
// tests, benchmarks and same-process replicas.
func NewMonitorChunkSource(m *Monitor) WALChunkSource {
	return incremental.NewMonitorSource(m)
}

// NewMonitor builds an empty incremental monitor for the schema and Σ;
// feed it with Monitor.Insert. With opts.Durable set, every mutation is
// journaled to a write-ahead log before it is applied, and a directory
// that already holds journaled state is recovered (latest snapshot + log
// tail) instead of starting empty.
func NewMonitor(schema *Schema, sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.New(schema, sigma, opts)
}

// LoadMonitor builds a monitor over an existing instance. Tuple keys are
// assigned 0..Len()-1 in row order, so they coincide with the batch
// detectors' row ids for the initial load.
//
// With opts.Durable set, LoadMonitor gains a recovery path: a directory
// that already holds journaled state wins over rel (the snapshot and log
// tail are replayed; the instance is ignored), while a fresh directory is
// seeded from rel and immediately snapshotted so later boots never touch
// the CSV again. Monitor.Recovered reports which path ran.
func LoadMonitor(rel *Relation, sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.Load(rel, sigma, opts)
}

// ErrNoMonitorState reports that a WAL directory holds no snapshot to
// boot from; OpenMonitor callers fall back to seeding via LoadMonitor.
var ErrNoMonitorState = incremental.ErrNoState

// OpenMonitor boots a durable monitor from its WAL directory alone
// (opts.Durable): the schema is read from the latest snapshot, so the
// original data source is neither needed nor parsed. Σ still comes from
// the caller and is verified against the journaled state. Returns
// ErrNoMonitorState when the directory has no snapshot yet.
func OpenMonitor(sigma []*CFD, opts MonitorOptions) (*Monitor, error) {
	return incremental.Open(sigma, opts)
}
