package repro

import (
	"repro/internal/repair"
)

// Repair (Section 6).
type (
	// RepairOptions configures the heuristic.
	RepairOptions = repair.Options
	// RepairResult is the outcome: repaired instance, change log, cost.
	RepairResult = repair.Result
	// RepairChange is one applied cell modification.
	RepairChange = repair.Change
	// RepairCostModel weights cell modifications.
	RepairCostModel = repair.CostModel
)

// Repair computes a heuristic repair I′ of the instance with I′ ⊨ Σ
// (certified in RepairResult.Satisfied).
func Repair(rel *Relation, sigma []*CFD, opts RepairOptions) (*RepairResult, error) {
	return repair.Repair(rel, sigma, opts)
}

// Incremental repair-on-stream (the live counterpart of Repair; see the
// "Live repair" section of the package documentation): a RepairSuggester
// rides the Monitor's violation-delta and group-statistics substrates
// and maintains a cost-ranked suggestion per live violation, re-planning
// only the violations each ChangeSet touched — O(Δ) per batch, not
// O(|I|). Accepted suggestions become ordinary ChangeSets via Plan, so
// applying a fix goes through the same WAL/replication/fencing path as
// any other write. cfdserve serves this surface as GET /v1/repairs and
// POST /v1/repairs/apply.
type (
	// RepairSuggester is a live suggestion engine attached to a Monitor
	// (see WatchRepairs): Refresh folds in what changed, Suggestions
	// returns the current cost-ranked set, Plan converts accepted
	// suggestions into a ChangeSet.
	RepairSuggester = repair.Suggester
	// RepairSuggestion is one live cost-ranked fix: an RHS edit, a group
	// value-merge, an LHS break, or a constraint relaxation.
	RepairSuggestion = repair.Suggestion
	// RepairSuggestionKind discriminates RepairSuggestion kinds.
	RepairSuggestionKind = repair.SuggestionKind
	// RepairCellEdit is one concrete cell modification within a planned
	// suggestion.
	RepairCellEdit = repair.CellEdit
	// SuggestOptions configures a RepairSuggester: the cost model, and
	// the relative-trust knobs (Trust, TrustThreshold) that switch a
	// low-confidence CFD from data edits to a relaxation suggestion.
	SuggestOptions = repair.SuggestOptions
	// RepairTrustSource supplies per-CFD confidence for the relative
	// trust loop; a CFDMiner satisfies it (see its Confidence method).
	RepairTrustSource = repair.TrustSource
)

// RepairSuggestion kinds (see RepairSuggestion.Kind).
const (
	// SuggestRHSEdit fixes a constant violation by editing RHS cells to
	// the pattern's constants.
	SuggestRHSEdit = repair.SuggestRHSEdit
	// SuggestValueMerge fixes a variable violation by merging the
	// group's RHS values onto the cheapest target.
	SuggestValueMerge = repair.SuggestValueMerge
	// SuggestLHSBreak dissolves a group (or detaches a tuple from its
	// pattern) by moving the cheapest LHS cell to a fresh value.
	SuggestLHSBreak = repair.SuggestLHSBreak
	// SuggestRelax proposes relaxing the CFD itself instead of editing
	// data — emitted when the trust loop finds the constraint less
	// credible than the data.
	SuggestRelax = repair.SuggestRelax
)

// ErrUnknownRepairSuggestion reports a RepairSuggester.Plan id that
// names no live suggestion (never issued, or retired by a later batch);
// re-fetch Suggestions and retry.
var ErrUnknownRepairSuggestion = repair.ErrUnknownSuggestion

// WatchRepairs attaches a live repair suggester to a monitor: the
// current violation set is planned once, and every subsequent
// ChangeSet's violation-deltas re-plan only the suggestions it touched —
// call Refresh after applying changes to fold them in, Suggestions for
// the current cost-ranked set, Plan to turn accepted suggestion IDs into
// an ordinary ChangeSet. Detach with RepairSuggester.Close. The cfdserve
// /v1/repairs endpoints serve this path over HTTP, and cmd/cfdrepair is
// the batch CLI looping it to a certified repair.
func WatchRepairs(m *Monitor, opts SuggestOptions) (*RepairSuggester, error) {
	return repair.NewSuggester(m, opts)
}
