package repro

import (
	"bytes"
	"strings"
	"testing"
)

// Facade-level integration tests: everything a downstream user touches,
// composed through the public API only.

func custFixture(t *testing.T) (*Schema, *Relation) {
	t.Helper()
	schema, err := NewSchema("cust",
		Attr("CC"), Attr("AC"), Attr("PN"), Attr("NM"), Attr("STR"), Attr("CT"), Attr("ZIP"))
	if err != nil {
		t.Fatal(err)
	}
	rel := NewRelation(schema)
	for _, row := range [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
		{"01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"},
		{"01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404"},
		{"01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"},
		{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"},
	} {
		if err := rel.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return schema, rel
}

const figure2Text = `
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
[CC=44, AC=141] -> [CT=GLA]
`

// TestEndToEndPipeline walks the full public surface: parse → reason →
// detect (all strategies) → repair → re-detect.
func TestEndToEndPipeline(t *testing.T) {
	schema, rel := custFixture(t)
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 3 {
		t.Fatalf("parsed %d CFDs, want 3", len(sigma))
	}

	ok, _, err := Consistent(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Figure 2's Σ must be consistent")
	}

	var results []*DetectResult
	for _, opts := range []DetectOptions{
		{Strategy: StrategyDirect},
		{Strategy: StrategySQLPerCFD, Form: FormCNF},
		{Strategy: StrategySQLPerCFD, Form: FormDNF, ViaDriver: true},
		{Strategy: StrategySQLMerged, Form: FormCNF},
	} {
		res, err := Detect(rel, sigma, opts)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatalf("strategy %d disagrees with the direct detector", i)
		}
	}
	if results[0].Clean() {
		t.Fatal("cust must violate ϕ2")
	}

	rep, err := Repair(rel, sigma, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("repair not satisfied after %d passes", rep.Passes)
	}
	after, err := Detect(rep.Repaired, sigma, DetectOptions{Strategy: StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Clean() {
		t.Error("repaired instance still violates Σ")
	}
}

// TestCSVRoundTripThroughFacade: write → read → same detection outcome.
func TestCSVRoundTripThroughFacade(t *testing.T) {
	_, rel := custFixture(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "cust")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Detect(rel, sigma, DetectOptions{Strategy: StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Detect(back, sigma, DetectOptions{Strategy: StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("CSV round trip changed detection results")
	}
}

// TestSQLGenerationThroughFacade: the generated queries match the Figure 5
// shape.
func TestSQLGenerationThroughFacade(t *testing.T) {
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	qc, err := GenerateQC(sigma[1], "cust", "T2", FormCNF)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"from cust t, T2 tp", "t.CC = tp.CC", "tp.CC = '_'", "t.CT <> tp.CT"} {
		if !strings.Contains(qc, want) {
			t.Errorf("QC missing %q:\n%s", want, qc)
		}
	}
	qv, err := GenerateQV(sigma[1], "cust", "T2", FormCNF)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"group by t.CC, t.AC, t.PN", "count(distinct t.STR, t.CT, t.ZIP) > 1"} {
		if !strings.Contains(qv, want) {
			t.Errorf("QV missing %q:\n%s", want, qv)
		}
	}
}

// TestWorkloadGenerationThroughFacade: the Section 5 knobs exposed on the
// facade produce usable workloads.
func TestWorkloadGenerationThroughFacade(t *testing.T) {
	data := GenerateTax(TaxConfig{Size: 500, Noise: 0.05, Seed: 3})
	if data.Dirty.Len() != 500 {
		t.Fatalf("size = %d", data.Dirty.Len())
	}
	tpl, err := CFDTemplateByAttrs(3)
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := GenerateWorkloadCFD(data.Clean, CFDConfig{Template: tpl, TabSize: 50, ConstPct: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := SatisfiesSet(data.Clean, []*CFD{cfd})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("clean data must satisfy the generated workload CFD")
	}
	if len(SemanticTaxCFDs()) == 0 {
		t.Error("semantic CFD set is empty")
	}
	if TaxSchema().Len() != 15 {
		t.Errorf("tax schema has %d attributes, want 15", TaxSchema().Len())
	}
}

// TestViolationListingThroughFacade: FindViolations exposes detailed
// violations with kinds and keys.
func TestViolationListingThroughFacade(t *testing.T) {
	_, rel := custFixture(t)
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := FindViolations(rel, sigma[1])
	if err != nil {
		t.Fatal(err)
	}
	var consts, vars int
	for _, v := range vs {
		switch v.Kind {
		case ConstViolation:
			consts++
		case VariableViolation:
			vars++
		}
	}
	if consts != 2 || vars != 2 {
		t.Errorf("got %d const, %d variable violations; want 2 and 2", consts, vars)
	}
}

// TestImplicationAndCoverThroughFacade re-checks Examples 3.2/3.3 on the
// public API.
func TestImplicationAndCoverThroughFacade(t *testing.T) {
	schema, err := NewSchema("R", Attr("A"), Attr("B"), Attr("C"))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := ParseCFDSet("[A] -> [B=b]\n[B] -> [C=c]\n")
	if err != nil {
		t.Fatal(err)
	}
	phi, err := ParseCFD("[A=a] -> [C]")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Implies(schema, sigma, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Example 3.2 implication failed on the facade")
	}
	cover, err := MinimalCover(schema, append(sigma, phi))
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Errorf("Example 3.3 cover = %v", cover)
	}
	eq, err := Equivalent(schema, append(sigma, phi), CoverToCFDs(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("cover not equivalent")
	}
}

// TestPatternConstructors: the exported Const/Wildcard helpers build CFDs
// programmatically.
func TestPatternConstructors(t *testing.T) {
	cfd, err := NewCFD([]string{"CC", "ZIP"}, []string{"STR"},
		PatternRow{X: []Pattern{Const("44"), Wildcard()}, Y: []Pattern{Wildcard()}})
	if err != nil {
		t.Fatal(err)
	}
	if cfd.String() != "[CC=44, ZIP] -> [STR]" {
		t.Errorf("String = %q", cfd.String())
	}
	back, err := ParseCFD(cfd.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != cfd.String() {
		t.Error("constructor/parser round trip failed")
	}
}

// TestMonitorThroughFacade: incremental monitoring composed through the
// public API only — load, mutate, query, and agree with batch Detect.
func TestMonitorThroughFacade(t *testing.T) {
	_, rel := custFixture(t)
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMonitor(rel, sigma, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Satisfied() {
		t.Fatal("Figure 1 instance should violate Σ")
	}
	// The live set after Load matches a batch run (keys == row ids here).
	batch, err := Detect(rel, sigma, DetectOptions{Strategy: StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	live := m.Violations()
	for i := range sigma {
		if len(live.PerCFD[i].ConstTuples) != len(batch.PerCFD[i].ConstTuples) ||
			len(live.PerCFD[i].VariableKeys) != len(batch.PerCFD[i].VariableKeys) {
			t.Fatalf("CFD %d: live (%d const, %d var) vs batch (%d const, %d var)",
				i, len(live.PerCFD[i].ConstTuples), len(live.PerCFD[i].VariableKeys),
				len(batch.PerCFD[i].ConstTuples), len(batch.PerCFD[i].VariableKeys))
		}
	}
	// Repair the Example 2.2 violations through the mutation surface and
	// watch the live set drain to empty.
	if _, err := m.Update(1, "NM", "Mike"); err != nil { // no CFD mentions NM
		t.Fatal(err)
	}
	// t1/t2 violate ϕ2's 908→MH row: set CT to MH.
	for _, key := range []int64{0, 1} {
		if _, err := m.Update(key, "CT", "MH"); err != nil {
			t.Fatal(err)
		}
	}
	// t3/t4 disagree on ZIP under ϕ2: align them.
	if _, err := m.Update(3, "ZIP", "01202"); err != nil {
		t.Fatal(err)
	}
	if !m.Satisfied() {
		t.Fatalf("expected clean instance after repairs, still have:\n%v", m.Violations().PerCFD)
	}
	// Batch agrees on the snapshot.
	res, err := Detect(m.Snapshot(), sigma, DetectOptions{Strategy: StrategyDirect})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatal("batch detector disagrees with Satisfied()")
	}
	// A fresh violating insert reports its delta.
	_, delta, err := m.Insert(Tuple{"01", "908", "1111111", "Eve", "Oak Ave.", "NYC", "07974"})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Empty() {
		t.Fatal("violating insert produced no delta")
	}
}

// TestChangeSetThroughFacade: the batched mutation path composed through
// the public API — one Apply carrying a mixed op vector, keys read back
// from the ChangeSet, net delta healing the insert above.
func TestChangeSetThroughFacade(t *testing.T) {
	_, rel := custFixture(t)
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMonitor(rel, sigma, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var cs ChangeSet
	cs.Insert(Tuple{"01", "908", "7777777", "Eve", "Oak Ave.", "MH", "07974"})
	cs.Update(0, "CT", "MH")
	cs.Update(1, "CT", "MH")
	cs.Update(3, "ZIP", "01202")
	delta, err := m.Apply(&cs)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Ops[0].Kind != OpInsert || cs.Ops[0].Key != int64(rel.Len()) {
		t.Fatalf("insert op key = %d, want %d", cs.Ops[0].Key, rel.Len())
	}
	if len(delta.Removed) == 0 {
		t.Fatalf("healing batch retired nothing: %+v", delta)
	}
	if !m.Satisfied() {
		t.Fatalf("expected clean instance after the batch:\n%v", m.Violations().PerCFD)
	}
	// An invalid op anywhere rejects the whole batch.
	bad := (&ChangeSet{}).Update(0, "CT", "NYC").Delete(999)
	if _, err := m.Apply(bad); err == nil {
		t.Fatal("batch with unknown key accepted")
	}
	if got, _ := m.Get(0); got[5] != "MH" {
		t.Fatal("rejected batch partially applied")
	}
}

// TestStreamingDiscoveryThroughFacade: WatchDiscovery rides a live
// monitor — the mined set follows changes, matches the bulk DiscoverCFDs
// on the materialized instance, and the generalized group-statistics
// substrate is reachable for custom aggregations.
func TestStreamingDiscoveryThroughFacade(t *testing.T) {
	_, rel := custFixture(t)
	sigma, err := ParseCFDSet(figure2Text)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadMonitor(rel, sigma, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DiscoveryConfig{MaxLHS: 1, MinSupport: 2}
	miner, err := WatchDiscovery(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer miner.Close()

	compare := func(step string) {
		t.Helper()
		got, err := miner.Mined()
		if err != nil {
			t.Fatal(err)
		}
		want, err := DiscoverCFDs(m.Snapshot(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: miner mined %d, Discover %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i].CFD.String() != want[i].CFD.String() || got[i].IsFD != want[i].IsFD {
				t.Fatalf("%s: entry %d differs: %v vs %v", step, i, got[i].CFD, want[i].CFD)
			}
		}
	}
	compare("seed")

	// Break a mined FD and watch the change stream report it.
	key, _, err := m.Insert(Tuple{"01", "908", "7777777", "Eve", "Oak Ave.", "LA", "99999"})
	if err != nil {
		t.Fatal(err)
	}
	changes := miner.Refresh()
	if len(changes) == 0 {
		t.Fatal("the insert must change the mined set")
	}
	compare("after insert")
	if _, err := m.Delete(key); err != nil {
		t.Fatal(err)
	}
	miner.Refresh()
	compare("after delete")

	// Invalid configs are rejected at the facade.
	if _, err := WatchDiscovery(m, DiscoveryConfig{MinConfidence: 1.5}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	if _, err := DiscoverCFDs(rel, DiscoveryConfig{MaxPatterns: -1}); err == nil {
		t.Fatal("invalid config must be rejected by DiscoverCFDs")
	}

	// The substrate below the miner: track one pair directly.
	stats, err := m.TrackGroups([]MonitorAttrPair{{X: []string{"AC"}, A: "CT"}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.UntrackGroups(stats)
	var deltas []MonitorGroupDelta
	deltas = stats.Drain(deltas)
	if len(deltas) == 0 {
		t.Fatal("the attach fold must leave every group drainable")
	}
	for _, d := range deltas {
		if d.XKey == "" || d.Support == 0 {
			t.Fatalf("bad initial delta %+v", d)
		}
	}
}
