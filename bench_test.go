package repro

// The benchmark harness regenerating every figure of the paper's
// evaluation (Section 5). Experiment ids E1–E7 refer to DESIGN.md; the
// series a figure plots appear here as sub-benchmarks (one per x-axis
// point), so
//
//	go test -bench Fig9a -benchmem
//
// prints the same series as Figure 9(a). cmd/cfdbench runs the same
// experiments and formats them as the paper's tables; EXPERIMENTS.md
// records paper-vs-measured shapes.
//
// Setup (data generation, tableau encoding, SQL generation) happens
// outside the timer: like the paper, we measure detection-query
// evaluation, not loading.

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/sqlgen"
	"repro/internal/sqlmini"
)

// benchSetup is a prepared detection workload: data and tableau tables
// registered in an engine catalog, with the query pair already generated.
type benchSetup struct {
	db *sqlmini.DB
	qc string
	qv string
}

func newSingleCFDSetup(b *testing.B, rel *Relation, cfd *CFD, form sqlgen.Form) *benchSetup {
	b.Helper()
	opts := sqlgen.Default(form)
	tab, err := sqlgen.TableauRelation(cfd, "T1", opts)
	if err != nil {
		b.Fatal(err)
	}
	db := sqlmini.NewDB()
	db.RegisterRelation("R", rel)
	db.RegisterRelation("T1", tab)
	qc, err := sqlgen.QC(cfd, "R", "T1", opts)
	if err != nil {
		b.Fatal(err)
	}
	qv, err := sqlgen.QV(cfd, "R", "T1", opts)
	if err != nil {
		b.Fatal(err)
	}
	return &benchSetup{db: db, qc: qc, qv: qv}
}

func (s *benchSetup) runQC(b *testing.B) {
	if _, err := s.db.Query(s.qc); err != nil {
		b.Fatal(err)
	}
}

func (s *benchSetup) runQV(b *testing.B) {
	if _, err := s.db.Query(s.qv); err != nil {
		b.Fatal(err)
	}
}

func (s *benchSetup) runBoth(b *testing.B) {
	s.runQC(b)
	s.runQV(b)
}

// fig9Sizes is the x-axis of Figures 9(a)–(c): SZ from 10K to 100K.
var fig9Sizes = []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 80000, 90000, 100000}

// taxData generates the dirty instance for the given SZ/NOISE.
func taxData(sz int, noise float64) *TaxData {
	return gen.GenerateTax(gen.TaxConfig{Size: sz, Noise: noise, Seed: 1})
}

// workloadCFD builds the Section 5 CFD with the given knobs from clean data.
func workloadCFD(b *testing.B, clean *Relation, numAttrs, tabsz int, constPct float64) *CFD {
	b.Helper()
	tpl, err := gen.TemplateByAttrs(numAttrs)
	if err != nil {
		b.Fatal(err)
	}
	cfd, err := gen.GenerateWorkloadCFD(clean, gen.CFDConfig{
		Template: tpl, TabSize: tabsz, ConstPct: constPct, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cfd
}

// benchCNFvsDNF runs one Figure 9(a)/9(b) series: detection time (QC+QV)
// against SZ for a fixed NUMATTRs=3, TABSZ=1K CFD.
func benchCNFvsDNF(b *testing.B, constPct float64, form sqlgen.Form) {
	for _, sz := range fig9Sizes {
		b.Run(fmt.Sprintf("SZ=%d", sz), func(b *testing.B) {
			data := taxData(sz, 0.05)
			cfd := workloadCFD(b, data.Clean, 3, 1000, constPct)
			setup := newSingleCFDSetup(b, data.Dirty, cfd, form)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				setup.runBoth(b)
			}
		})
	}
}

// E1 — Figure 9(a): CNF vs DNF, NUMCONSTs = 100%.
func BenchmarkFig9aCNF(b *testing.B) { benchCNFvsDNF(b, 1.0, sqlgen.CNF) }
func BenchmarkFig9aDNF(b *testing.B) { benchCNFvsDNF(b, 1.0, sqlgen.DNF) }

// E2 — Figure 9(b): CNF vs DNF, NUMCONSTs = 50% (half the pattern tuples
// contain variables).
func BenchmarkFig9bCNF(b *testing.B) { benchCNFvsDNF(b, 0.5, sqlgen.CNF) }
func BenchmarkFig9bDNF(b *testing.B) { benchCNFvsDNF(b, 0.5, sqlgen.DNF) }

// E3 — Figure 9(c): the detection cost split between QC and QV
// (NUMATTRs 3, TABSZ 1K, NUMCONSTs 100%, DNF evaluation).
func benchQCorQV(b *testing.B, wantQC bool) {
	for _, sz := range fig9Sizes {
		b.Run(fmt.Sprintf("SZ=%d", sz), func(b *testing.B) {
			data := taxData(sz, 0.05)
			cfd := workloadCFD(b, data.Clean, 3, 1000, 1.0)
			setup := newSingleCFDSetup(b, data.Dirty, cfd, sqlgen.DNF)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if wantQC {
					setup.runQC(b)
				} else {
					setup.runQV(b)
				}
			}
		})
	}
}

func BenchmarkFig9cQC(b *testing.B) { benchQCorQV(b, true) }
func BenchmarkFig9cQV(b *testing.B) { benchQCorQV(b, false) }

// E4 — Figure 9(d): scalability in TABSZ at SZ = 500K, NUMCONSTs 50%,
// NUMATTRs 3 vs 4. The 500K instance is generated once and shared.
var (
	big500Once sync.Once
	big500     *TaxData
)

func bigTaxData(b *testing.B) *TaxData {
	b.Helper()
	big500Once.Do(func() {
		big500 = gen.GenerateTax(gen.TaxConfig{Size: 500000, Noise: 0.05, Seed: 1})
	})
	return big500
}

func benchTabSize(b *testing.B, numAttrs int) {
	data := bigTaxData(b)
	for tabsz := 1000; tabsz <= 10000; tabsz += 1000 {
		b.Run(fmt.Sprintf("TABSZ=%d", tabsz), func(b *testing.B) {
			cfd := workloadCFD(b, data.Clean, numAttrs, tabsz, 0.5)
			setup := newSingleCFDSetup(b, data.Dirty, cfd, sqlgen.DNF)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				setup.runBoth(b)
			}
		})
	}
}

func BenchmarkFig9dAttrs3(b *testing.B) { benchTabSize(b, 3) }
func BenchmarkFig9dAttrs4(b *testing.B) { benchTabSize(b, 4) }

// E5 — Figure 9(e): scalability in NUMCONSTs at SZ = 100K, TABSZ 1K,
// NUMATTRs 3 (more variables ⇒ less index-friendly joins ⇒ slower).
func BenchmarkFig9e(b *testing.B) {
	for pct := 100; pct >= 10; pct -= 10 {
		b.Run(fmt.Sprintf("NUMCONSTS=%d", pct), func(b *testing.B) {
			data := taxData(100000, 0.05)
			cfd := workloadCFD(b, data.Clean, 3, 1000, float64(pct)/100)
			setup := newSingleCFDSetup(b, data.Dirty, cfd, sqlgen.DNF)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				setup.runBoth(b)
			}
		})
	}
}

// E6 — Figure 9(f): scalability in NOISE at SZ = 100K with the full
// zip→state tableau (TABSZ 30K, NUMATTRs 2, NUMCONSTs 100%) — "all
// possible zip to state pairs, so as not to miss a violation".
func BenchmarkFig9f(b *testing.B) {
	cfd := gen.AllZipStateCFD(gen.NumZips)
	for noise := 0; noise <= 9; noise++ {
		b.Run(fmt.Sprintf("NOISE=%d", noise), func(b *testing.B) {
			data := taxData(100000, float64(noise)/100)
			setup := newSingleCFDSetup(b, data.Dirty, cfd, sqlgen.DNF)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				setup.runBoth(b)
			}
		})
	}
}

// E7 — Section 5 "Merging CFDs": the merged two-pass plan (QCΣ, QVΣ)
// against per-CFD validation, over three highly related CFDs
// (zip→state, zip+city→state, areacode→state; TABSZ 500 each).
func mergedWorkload(b *testing.B) (*Relation, []*CFD) {
	b.Helper()
	data := taxData(20000, 0.05)
	var sigma []*CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	return data.Dirty, sigma
}

func benchDetectFull(b *testing.B, rel *Relation, sigma []*CFD, opts detect.Options) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.Detect(rel, sigma, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergedVsPerCFDMergedCNF(b *testing.B) {
	rel, sigma := mergedWorkload(b)
	benchDetectFull(b, rel, sigma, detect.Options{Strategy: detect.SQLMerged, Form: sqlgen.CNF})
}

func BenchmarkMergedVsPerCFDPerCFDCNF(b *testing.B) {
	rel, sigma := mergedWorkload(b)
	benchDetectFull(b, rel, sigma, detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.CNF})
}

func BenchmarkMergedVsPerCFDPerCFDDNF(b *testing.B) {
	rel, sigma := mergedWorkload(b)
	benchDetectFull(b, rel, sigma, detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.DNF})
}

// Ablations beyond the paper's figures: strategy comparison, reasoning
// costs, and repair throughput.

// BenchmarkStrategyDirect measures the pure-Go detector on the E7
// workload — the ceiling the SQL paths are compared against.
func BenchmarkStrategyDirect(b *testing.B) {
	rel, sigma := mergedWorkload(b)
	benchDetectFull(b, rel, sigma, detect.Options{Strategy: detect.Direct})
}

// BenchmarkDriverOverhead measures the database/sql layer on top of the
// engine (same plan, standard interface).
func BenchmarkDriverOverhead(b *testing.B) {
	rel, sigma := mergedWorkload(b)
	benchDetectFull(b, rel, sigma, detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.DNF, ViaDriver: true})
}

// BenchmarkConsistency measures the Theorem 3.2 consistency check on a
// generated 200-pattern CFD plus the semantic set.
func BenchmarkConsistency(b *testing.B) {
	data := taxData(5000, 0)
	cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
		Template: gen.StateSalaryToTax, TabSize: 200, ConstPct: 1.0, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	sigma := append(gen.SemanticCFDs(), cfd)
	schema := gen.TaxSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := core.Consistent(schema, sigma)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkImplication measures the Theorem 3.5 implication check.
func BenchmarkImplication(b *testing.B) {
	schema := gen.TaxSchema()
	sigma := gen.SemanticCFDs()
	phi := core.MustCFD([]string{"ZIP", "CT"}, []string{"ST"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := core.Implies(schema, sigma, phi)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkMinCover measures MinCover (Figure 4) on a redundant set.
func BenchmarkMinCover(b *testing.B) {
	schema := gen.TaxSchema()
	sigma := append(gen.SemanticCFDs(),
		core.MustCFD([]string{"ZIP", "CT"}, []string{"ST"},
			core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinimalCover(schema, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepair measures the Section 6 heuristic end to end on a 5K
// instance with 5% noise.
func BenchmarkRepair(b *testing.B) {
	sigma := gen.SemanticCFDs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		data := gen.GenerateTax(gen.TaxConfig{Size: 5000, Noise: 0.05, Seed: int64(i)})
		b.StartTimer()
		res, err := repair.Repair(data.Dirty, sigma, repair.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Satisfied {
			b.Fatal("repair did not satisfy Σ")
		}
	}
}

// BenchmarkDiscovery measures CFD mining (the Section 7 extension) over a
// 5K clean instance with pairs of LHS attributes.
func BenchmarkDiscovery(b *testing.B) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 5000, Noise: 0, Seed: 19})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := discovery.Discover(data.Clean, discovery.Config{MaxLHS: 2, MinSupport: 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) == 0 {
			b.Fatal("nothing discovered")
		}
	}
}

// BenchmarkCINDDetection measures conditional-inclusion checking of 100K
// tax records against the 30K-row zip directory.
func BenchmarkCINDDetection(b *testing.B) {
	data := taxData(100000, 0.05)
	zipdir := gen.ZipDirectory()
	psi, err := cind.ParseCIND("taxrecords[ZIP, ST | CC=01] <= zipdir[zip, state]")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cind.FindViolations(data.Dirty, zipdir, psi); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 — incremental monitoring (beyond the paper): the serving-path claim
// that a single-tuple change costs O(affected buckets), not a rescan of I.
// One 100K dirty instance and three Section 5 CFD families; compare
// Monitor.Update against mutate-then-full-re-detect on the same workload.

func incrementalWorkload100K(b *testing.B) (*Relation, []*CFD) {
	b.Helper()
	data := taxData(100000, 0.05)
	var sigma []*CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	return data.Dirty, sigma
}

// BenchmarkIncrementalUpdate100K: one Monitor.Update per iteration (the
// incremental path). Must come out ≥10× faster than the rescan below.
func BenchmarkIncrementalUpdate100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	m, err := incremental.Load(rel, sigma, incremental.Options{})
	if err != nil {
		b.Fatal(err)
	}
	n := int64(rel.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := "AAA"
		if i%2 == 1 {
			val = "BBB"
		}
		if _, err := m.Update(int64(i)%n, "CT", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead: the per-op price of the metrics instrumentation
// on the hottest path — single-op updates against the live 100K monitor
// — with metrics on (the default: counters, gauges and stage timers all
// firing) versus fully disabled (obs.Disabled(): no clock reads, no
// atomic adds). The "on" series must stay within ~5% of "off"; the
// PR-gate bench workload runs against the default, so a regression here
// also shows up in BENCH_baseline drift.
func BenchmarkObsOverhead(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	for _, cfg := range []struct {
		name string
		opts incremental.Options
	}{
		{"metrics=on", incremental.Options{}},
		{"metrics=off", incremental.Options{Metrics: obs.Disabled()}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m, err := incremental.Load(rel, sigma, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			n := int64(rel.Len())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val := "AAA"
				if i%2 == 1 {
					val = "BBB"
				}
				if _, err := m.Update(int64(i)%n, "CT", val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRescanAfterUpdate100K: the batch baseline — apply the same
// single-tuple change to the relation, then re-run the full direct
// detector over all 100K tuples.
func BenchmarkRescanAfterUpdate100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	ctIdx := rel.Schema.MustIndex("CT")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val := "AAA"
		if i%2 == 1 {
			val = "BBB"
		}
		rel.Tuples[i%rel.Len()][ctIdx] = val
		if _, err := detect.Detect(rel, sigma, detect.Options{Strategy: detect.Direct}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalInsertDelete100K: churn — one insert and one delete
// per iteration against the live 100K monitor.
func BenchmarkIncrementalInsertDelete100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	m, err := incremental.Load(rel, sigma, incremental.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tuple := rel.Tuples[0].Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key, _, err := m.Insert(tuple)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Delete(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorLoad100K: one-time index build cost for the serving path.
func BenchmarkMonitorLoad100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := incremental.Load(rel, sigma, incremental.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — durability (beyond the paper): the cost of the write-ahead log on
// the serving path's hot write, the cost of a full-state snapshot, and the
// payoff — cold-start recovery from snapshot + log tail vs re-parsing and
// re-indexing the CSV. cmd/cfdbench runs the same comparison as the `e9`
// experiment; CI tracks it through BENCH_baseline.json.

// durableUpdates drives n alternating CT updates through m. The value
// parity mixes in the pass number (i/tuples) so that when n exceeds the
// tuple count, revisiting a key flips its value — a same-value Update is
// not journaled, and a benchmark that degenerates into no-ops would
// understate the WAL append cost.
func durableUpdates(b *testing.B, m *incremental.Monitor, n, tuples int) {
	b.Helper()
	for i := 0; i < n; i++ {
		val := "AAA"
		if (i+i/tuples)%2 == 1 {
			val = "BBB"
		}
		if _, err := m.Update(int64(i)%int64(tuples), "CT", val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend100K: one journaled Update per iteration — the E8 hot
// write plus a buffered write-ahead record.
func BenchmarkWALAppend100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	durableUpdates(b, m, b.N, rel.Len())
}

// BenchmarkWALAppendFsync100K: the same write with per-record fsync — the
// acknowledged-write-survives-power-loss configuration.
func BenchmarkWALAppendFsync100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: b.TempDir(), Fsync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	durableUpdates(b, m, b.N, rel.Len())
}

// BenchmarkSnapshot100K: one full-state snapshot (tuples, group indexes,
// violation set) plus generation roll per iteration.
func BenchmarkSnapshot100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ForceSnapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover100K: cold-start from the latest snapshot plus a
// 1000-record log tail. Compare BenchmarkCSVColdStart100K — the ≥10×
// claim of the durable serving path.
func BenchmarkRecover100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	dir := b.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		b.Fatal(err)
	}
	durableUpdates(b, m, 1000, rel.Len())
	if err := m.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A real cold start runs once against a fresh heap; collect the
		// previous iteration's garbage outside the timer so each sample
		// is a boot, not a boot plus its predecessor's GC debt.
		b.StopTimer()
		runtime.GC()
		b.StartTimer()
		rec, err := incremental.New(rel.Schema, sigma, incremental.Options{Durable: dir})
		if err != nil {
			b.Fatal(err)
		}
		if !rec.Recovered() || rec.Len() != rel.Len() {
			b.Fatalf("recovered %d tuples (recovered=%v)", rec.Len(), rec.Recovered())
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 — batched ingest (the ChangeSet pipeline): the per-op cost of
// Monitor.Apply as a function of batch size, against the same workload
// the single-op E8/E9 series use. One batch is one shard pass and — in
// durable mode — one WAL record and one fsync, so ns/op must fall
// steeply with batch size; the fsync series carries the headline claim
// (a 1000-op ChangeSet ≥ 3× faster than 1000 single fsynced ops).
// cmd/cfdbench runs the same comparison, plus concurrent writers, as the
// `e10` experiment.

// benchApplyBatch drives b.N CT updates through m in ChangeSets of the
// given size. Values mix in the pass number so revisiting a key always
// flips it — a same-value update inside a batch journals but does not
// reindex, which would understate the apply cost.
func benchApplyBatch(b *testing.B, m *incremental.Monitor, tuples, size int) {
	b.Helper()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := size
		if rest := b.N - done; rest < n {
			n = rest
		}
		var cs incremental.ChangeSet
		for i := 0; i < n; i++ {
			op := done + i
			val := "AAA"
			if (op+op/tuples)%2 == 1 {
				val = "BBB"
			}
			cs.Update(int64(op%tuples), "CT", val)
		}
		if _, err := m.Apply(&cs); err != nil {
			b.Fatal(err)
		}
		done += n
	}
}

// BenchmarkApplyBatch100K: memory-only batches — what shard-pass
// amortization and the interned hot path buy without the WAL.
func BenchmarkApplyBatch100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	for _, size := range []int{1, 16, 256, 1000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			m, err := incremental.Load(rel, sigma, incremental.Options{})
			if err != nil {
				b.Fatal(err)
			}
			benchApplyBatch(b, m, rel.Len(), size)
		})
	}
}

// BenchmarkApplyBatchDurable100K: journaled batches, buffered — one WAL
// record per batch instead of per op.
func BenchmarkApplyBatchDurable100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	for _, size := range []int{1, 16, 256, 1000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			m, err := incremental.Load(rel, sigma, incremental.Options{Durable: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			benchApplyBatch(b, m, rel.Len(), size)
		})
	}
}

// BenchmarkApplyBatchFsync100K: the acceptance series — durable mode
// with per-record fsync, where a 1000-op batch pays one sync and 1000
// single ops pay 1000.
func BenchmarkApplyBatchFsync100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	for _, size := range []int{1, 1000} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			m, err := incremental.Load(rel, sigma, incremental.Options{Durable: b.TempDir(), Fsync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			benchApplyBatch(b, m, rel.Len(), size)
		})
	}
}

// BenchmarkCSVColdStart100K: the path Recover100K replaces — parse the
// 100K-row CSV and re-index every tuple through Load.
func BenchmarkCSVColdStart100K(b *testing.B) {
	rel, sigma := incrementalWorkload100K(b)
	var buf bytes.Buffer
	if err := relation.WriteCSV(&buf, rel); err != nil {
		b.Fatal(err)
	}
	csv := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		runtime.GC() // same cold-heap discipline as Recover100K
		b.StartTimer()
		parsed, err := relation.ReadCSV(bytes.NewReader(csv), "R")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := incremental.Load(parsed, sigma, incremental.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 — streaming discovery (beyond the paper): keeping the mined CFD
// set current after a 1K-op ChangeSet must cost the touched groups, not
// a re-mine of the instance.

// BenchmarkMinerRescore100K: apply a 1K-op ChangeSet and re-score the
// streaming miner — the incremental path GET /discover and -watch -mine
// serve from.
func BenchmarkMinerRescore100K(b *testing.B) {
	rel, _ := incrementalWorkload100K(b)
	cfg := discovery.Config{MaxLHS: 1, MinSupport: 2}
	m, err := incremental.Load(rel, nil, incremental.Options{})
	if err != nil {
		b.Fatal(err)
	}
	miner, err := discovery.NewMiner(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer miner.Close()
	sz := rel.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		vals := [2]string{fmt.Sprintf("MAA%d", i), fmt.Sprintf("MBB%d", i)}
		var cs incremental.ChangeSet
		for j := 0; j < 1000; j++ {
			cs.Update(int64(j%sz), "CT", vals[j%2])
		}
		if _, err := m.Apply(&cs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		miner.Refresh()
	}
}

// BenchmarkDiscoverFull100K: the bulk path the miner replaces per
// change-batch — mine the whole instance from scratch.
func BenchmarkDiscoverFull100K(b *testing.B) {
	rel, _ := incrementalWorkload100K(b)
	cfg := discovery.Config{MaxLHS: 1, MinSupport: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := discovery.Discover(rel, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
