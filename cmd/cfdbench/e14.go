package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incremental"
)

// sortDurations and pctl are the latency-quantile helpers shared by the
// serving driver and e14's routed-write distribution.
func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// pctl reads quantile q from an already-sorted latency slice.
func pctl(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// e14: cluster write scaling. A consistent-hash router splits keyed
// single-op updates across independent shard groups, each a durable
// fsynced monitor with its own WAL — so the fsync serialization that
// caps a single node's write rate parallelizes with the group count.
// 16 closed-loop partition-affine writers issue n single-op
// ChangeSets through the router at 1, 2 and 4 shard groups; group
// commit stays OFF so every op pays a real fsync and the journal is the
// bottleneck being sharded (with coalescing on, a fixed writer count
// hides the scaling: 16 writers sharing 1 window ≈ 4 writers × 4
// windows). Acceptance: ≥ 3× the single-shard op rate at 4 groups on
// hardware that exposes the parallelism — cores ≥ groups and a flush
// path whose concurrent-stream throughput keeps climbing at 4 streams.
//
// The "env ×" column keeps the headline honest on hardware that does
// not: it is the host's own flush-concurrency envelope, measured with
// the identical writer pattern against bare files, so the table always
// shows how much of the machine's available flush parallelism the
// cluster converts into op throughput. On a single-core VM with one
// virtio disk the envelope itself tops out near 2× at 4 streams — the
// cluster cannot scale past the denominator, and the gap between the
// two columns (not the absolute ratio) is the router's overhead.
func (b *bench) e14() {
	sz, n := 40000, 3200
	if b.quick {
		sz, n = 8000, 640
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	dir, err := os.MkdirTemp("", "cfdbench-e14-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	const writers = 16
	pass := 0
	// mutate: n CT flips as single-op ChangeSets through the router from
	// closed-loop writers (same driver shape as e13, with the router in
	// the path). Writers are partition-affine: each drives keys its own
	// shard group owns, the standard capacity-driver shape — a writer
	// whose keys scatter across groups convoys over every group's commit
	// mutex in turn and measures scheduler handoff, not capacity.
	// Writers sharing a group walk disjoint stride classes of its key
	// pool. Per-op latencies come back for the quantile columns.
	mutate := func(rt *cluster.Router, pools [][]int64) (time.Duration, []time.Duration) {
		pass++
		vals := [2]string{fmt.Sprintf("GAA%d", pass), fmt.Sprintf("GBB%d", pass)}
		perW := n / writers
		shards := len(pools)
		lats := make([]time.Duration, writers*perW)
		errs := make([]error, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pool := pools[w%shards]
				stride := writers / shards
				for i := 0; i < perW; i++ {
					key := pool[(w/shards+i*stride)%len(pool)]
					var cs incremental.ChangeSet
					cs.Update(key, "CT", vals[i%2])
					t0 := time.Now()
					if _, err := rt.Apply(ctx, &cs); err != nil {
						errs[w] = err
						return
					}
					lats[w*perW+i] = time.Since(t0)
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(start)
		for _, err := range errs {
			if err != nil {
				b.fatal(err)
			}
		}
		return d, lats
	}

	run := func(shards, rep int) (measurement, []time.Duration) {
		cfgs := make([]cluster.GroupConfig, 0, shards)
		mons := make([]*incremental.Monitor, 0, shards)
		for g := 0; g < shards; g++ {
			m, err := incremental.New(data.Clean.Schema, sigma, incremental.Options{
				Durable: filepath.Join(dir, fmt.Sprintf("s%d-r%d-g%d", shards, rep, g)), Fsync: true,
			})
			if err != nil {
				b.fatal(err)
			}
			mons = append(mons, m)
			cfgs = append(cfgs, cluster.GroupConfig{Name: fmt.Sprintf("g%d", g), Primary: &cluster.LocalBackend{M: m}})
		}
		rt, err := cluster.NewRouter(ctx, cfgs, cluster.Options{})
		if err != nil {
			b.fatal(err)
		}
		// Seed through the router so ownership matches the ring; batched,
		// so the untimed preload does not pay an fsync per tuple.
		for i := 0; i < sz; i += 512 {
			var cs incremental.ChangeSet
			for j := i; j < i+512 && j < sz; j++ {
				cs.Insert(data.Dirty.Tuples[j])
			}
			if _, err := rt.Apply(ctx, &cs); err != nil {
				b.fatal(err)
			}
		}
		// Partition the key space by ring ownership for the affine writers.
		idx := make(map[string]int, shards)
		for i, name := range rt.Groups() {
			idx[name] = i
		}
		pools := make([][]int64, shards)
		for k := int64(0); k < int64(sz); k++ {
			g := idx[rt.Owner(k)]
			pools[g] = append(pools[g], k)
		}
		// The preload allocates the resident state; collect it before the
		// clock starts so single-core GC pauses don't land in the tails.
		runtime.GC()
		d, lats := mutate(rt, pools)
		for _, m := range mons {
			if err := m.Close(); err != nil {
				b.fatal(err)
			}
		}
		return measurement{d: d / time.Duration(n)}, lats
	}

	type row struct {
		shards int
		m      measurement
		lats   []time.Duration
		env    time.Duration
	}
	var rows []row
	for _, shards := range []int{1, 2, 4} {
		out := measurement{d: time.Duration(1<<63 - 1)}
		env := time.Duration(1<<63 - 1)
		var lats []time.Duration
		for r := 0; r < b.repeat || r == 0; r++ {
			m, l := run(shards, r)
			if m.d < out.d {
				out, lats = m, l
			}
			if e := b.flushEnvelope(dir, shards, writers); e < env {
				env = e
			}
		}
		b.record(fmt.Sprintf("e14/SZ=%d/fsync/shards=%d/writers=%d", sz, shards, writers), out)
		rows = append(rows, row{shards: shards, m: out, lats: lats, env: env})
	}

	b.header(fmt.Sprintf("E14: cluster write scaling (SZ = %d, 3 CFDs, durable+fsync, %d writers, gc off)", sz, writers),
		"shards", "µs/op", "ops/sec", "p50", "p95", "p99", "× vs 1", "env ×")
	base, envBase := rows[0].m.d, rows[0].env
	for _, r := range rows {
		sortDurations(r.lats)
		scale, envScale := "-", "-"
		if r.m.d > 0 {
			scale = fmt.Sprintf("%.2f", float64(base)/float64(r.m.d))
		}
		if r.env > 0 {
			envScale = fmt.Sprintf("%.2f", float64(envBase)/float64(r.env))
		}
		b.row(fmt.Sprint(r.shards),
			fmt.Sprintf("%.1f", float64(r.m.d.Nanoseconds())/1e3),
			fmt.Sprintf("%.0f", 1e9/float64(r.m.d.Nanoseconds())),
			pctl(r.lats, 0.50).String(), pctl(r.lats, 0.95).String(), pctl(r.lats, 0.99).String(),
			scale, envScale)
	}
}

// flushEnvelope measures the host's raw flush-concurrency envelope for
// e14's "env ×" column: the same 16 closed-loop writers, the same
// per-op record size, but bare files instead of monitors — k of them,
// one per would-be shard group, each serializing its writers behind a
// mutex exactly as a WAL does. The per-op time that comes back is the
// best the hardware offers k concurrent durable streams; the cluster
// column can approach it, never beat it.
func (b *bench) flushEnvelope(dir string, k, writers int) time.Duration {
	type stream struct {
		mu sync.Mutex
		f  *os.File
	}
	streams := make([]*stream, k)
	for i := range streams {
		f, err := os.CreateTemp(dir, "env-")
		if err != nil {
			b.fatal(err)
		}
		streams[i] = &stream{f: f}
	}
	defer func() {
		for _, s := range streams {
			name := s.f.Name()
			s.f.Close()
			os.Remove(name)
		}
	}()
	buf := make([]byte, 48)
	perW := 100
	if !b.quick {
		perW = 200
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := streams[w%k]
			for i := 0; i < perW; i++ {
				s.mu.Lock()
				_, werr := s.f.Write(buf)
				serr := s.f.Sync()
				s.mu.Unlock()
				if werr != nil {
					b.fatal(werr)
				}
				if serr != nil {
					b.fatal(serr)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start) / time.Duration(writers*perW)
}

// serveBench is the serving driver behind -serve: N concurrent HTTP
// clients fire at a live cfdserve or cfdrouter base URL for a fixed
// duration and report qps plus latency quantiles. With -rate R the load
// is open-loop — admissions are paced at R req/s regardless of how fast
// responses come back, and admissions the saturated client pool cannot
// absorb are counted as shed instead of silently stretching the loop —
// with rate 0 each client runs closed-loop, back to back. A non-empty
// -insert-values row makes every request a POST /insert of that tuple
// (each gets a fresh key); empty means GET /violations, the read path.
// With both -insert-values and -read-frac F, each request is a read
// with probability F and an insert otherwise — a mixed read/write load
// against one URL, the shape a monitor dashboard plus its feed produce.
func (b *bench) serveBench(base string, clients int, rate float64, dur time.Duration, insert string, readFrac float64) {
	method, path := http.MethodGet, "/violations"
	var body []byte
	if insert != "" {
		buf, err := json.Marshal(map[string]any{"values": strings.Split(insert, ",")})
		if err != nil {
			b.fatal(err)
		}
		body, method, path = buf, http.MethodPost, "/insert"
	}
	if readFrac < 0 || readFrac > 1 {
		b.fatal(fmt.Errorf("-read-frac %v: want a fraction in [0,1]", readFrac))
	}
	mixed := insert != "" && readFrac > 0
	hc := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients},
	}

	var (
		mu    sync.Mutex
		lats  []time.Duration
		rlats []time.Duration
		nerrs int
		shed  int
		seq   atomic.Uint64
	)
	issue := func() {
		m, p, bd := method, path, body
		isRead := false
		if mixed {
			// Deterministic interleave: request i is a read when the
			// scaled counter crosses an integer boundary, giving exactly
			// the requested mix without a shared RNG.
			n := seq.Add(1)
			if uint64(float64(n)*readFrac) != uint64(float64(n-1)*readFrac) {
				m, p, bd, isRead = http.MethodGet, "/violations", nil, true
			}
		}
		req, err := http.NewRequest(m, base+p, bytes.NewReader(bd))
		if err != nil {
			b.fatal(err)
		}
		if bd != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		resp, rerr := hc.Do(req)
		d := time.Since(t0)
		ok := rerr == nil && resp.StatusCode < 400
		if rerr == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		mu.Lock()
		switch {
		case !ok:
			nerrs++
		case isRead:
			rlats = append(rlats, d)
		default:
			lats = append(lats, d)
		}
		mu.Unlock()
	}

	deadline := time.Now().Add(dur)
	var ticks chan struct{}
	if rate > 0 {
		ticks = make(chan struct{}, 1024)
		go func() {
			t := time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer t.Stop()
			for time.Now().Before(deadline) {
				<-t.C
				select {
				case ticks <- struct{}{}:
				default:
					mu.Lock()
					shed++
					mu.Unlock()
				}
			}
			close(ticks)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ticks != nil {
				for range ticks {
					issue()
				}
				return
			}
			for time.Now().Before(deadline) {
				issue()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sortDurations(lats)
	qps := float64(len(lats)+len(rlats)) / elapsed.Seconds()
	p50, p95, p99 := pctl(lats, 0.50), pctl(lats, 0.95), pctl(lats, 0.99)
	mode := "closed"
	if rate > 0 {
		mode = fmt.Sprintf("open @ %.0f/s", rate)
	}
	label := method + " " + base + path
	if mixed {
		label = fmt.Sprintf("%.0f%% reads + inserts %s", readFrac*100, base)
	}
	b.header(fmt.Sprintf("serve: %s (%s, %d clients, %s)", label, mode, clients, dur),
		"qps", "ok", "errors", "shed", "p50", "p95", "p99")
	b.row(fmt.Sprintf("%.0f", qps), fmt.Sprint(len(lats)+len(rlats)), fmt.Sprint(nerrs), fmt.Sprint(shed),
		p50.String(), p95.String(), p99.String())
	prefix := fmt.Sprintf("serve/clients=%d", clients)
	b.record(prefix+"/p50", measurement{d: p50})
	b.record(prefix+"/p95", measurement{d: p95})
	b.record(prefix+"/p99", measurement{d: p99})
	if mixed {
		sortDurations(rlats)
		rp50, rp95, rp99 := pctl(rlats, 0.50), pctl(rlats, 0.95), pctl(rlats, 0.99)
		b.header(fmt.Sprintf("serve reads: GET %s/violations (%d of %d requests)", base, len(rlats), len(lats)+len(rlats)),
			"p50", "p95", "p99")
		b.row(rp50.String(), rp95.String(), rp99.String())
		b.record(prefix+"/read/p50", measurement{d: rp50})
		b.record(prefix+"/read/p95", measurement{d: rp95})
		b.record(prefix+"/read/p99", measurement{d: rp99})
	}
	if nerrs > 0 {
		fmt.Fprintf(os.Stderr, "cfdbench: %d of %d requests failed\n", nerrs, nerrs+len(lats)+len(rlats))
		b.failed = true
	}
}
