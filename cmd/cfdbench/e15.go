package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incremental"
)

// E15: read-path scaling. Three measurements, all against a monitor
// that keeps taking writes while it is being read:
//
//   - view vs scan: 16 concurrent readers pull the full violation set
//     while a paced background writer flips tuples. The scan column
//     re-canonicalizes every CFD's state per read; the view column is
//     the O(Δ)-maintained violation view — an atomic pointer load when
//     the version is unchanged, a rebuild of only the dirty CFDs when
//     it is not. The gate asserts the view sustains at least 10x the
//     scan's read rate; anything less means the view stopped being a
//     cache and the read path regressed to the scan.
//   - point queries: ViolationsFor latency quantiles under the same
//     readers-plus-writer load — the dashboard drill-down shape.
//   - routed reads: the same 16 readers behind a cluster router with
//     ?consistency=any semantics (PickRead, ReadAny) over 1, 2 and 4
//     shard groups, each group a durable primary plus one live
//     follower standby. Reads spread over primaries and standbys, so
//     the aggregate read rate should grow with groups; the "x vs 1"
//     column is that scaling.
func (b *bench) e15() {
	sz := 100_000
	readDur := 2 * time.Second
	if b.quick {
		sz, readDur = 20_000, 300*time.Millisecond
	}
	const readers = 16
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	ctx := context.Background()

	seed := func(apply func(cs *incremental.ChangeSet) error) {
		for i := 0; i < sz; i += 512 {
			var cs incremental.ChangeSet
			for j := i; j < i+512 && j < sz; j++ {
				cs.Insert(data.Dirty.Tuples[j])
			}
			if err := apply(&cs); err != nil {
				b.fatal(err)
			}
		}
	}

	// startWriter paces single-op CT flips at ~1000 ops/s through apply
	// until the returned stop func is called — enough churn to keep the
	// view's version moving without turning the benchmark into a write
	// saturation test.
	startWriter := func(apply func(cs *incremental.ChangeSet) error) (stop func() int) {
		done := make(chan struct{})
		var n int
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					key := int64(n*7919) % int64(sz)
					var cs incremental.ChangeSet
					cs.Update(key, "CT", [2]string{"XAA", "XBB"}[n%2])
					if err := apply(&cs); err != nil {
						b.fatal(err)
					}
					n++
				}
			}
		}()
		return func() int {
			close(done)
			wg.Wait()
			return n
		}
	}

	// readRate runs 16 closed-loop readers for readDur and returns the
	// aggregate completed-read count and elapsed time. Readers check the
	// deadline every few iterations so sub-microsecond reads don't spend
	// their budget on the clock.
	readRate := func(read func(r int)) (int64, time.Duration) {
		var total atomic.Int64
		deadline := time.Now().Add(readDur)
		var wg sync.WaitGroup
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var n int64
				for time.Now().Before(deadline) {
					for i := 0; i < 8; i++ {
						read(r)
					}
					n += 8
				}
				total.Add(n)
			}(r)
		}
		wg.Wait()
		return total.Load(), time.Since(start)
	}

	// Part 1+2: view vs scan and point queries, one in-memory monitor.
	m, err := incremental.New(data.Clean.Schema, sigma, incremental.Options{})
	if err != nil {
		b.fatal(err)
	}
	seed(func(cs *incremental.ChangeSet) error { _, err := m.Apply(cs); return err })
	runtime.GC()

	stop := startWriter(func(cs *incremental.ChangeSet) error { _, err := m.Apply(cs); return err })
	scanN, scanD := readRate(func(int) { _ = m.ScanViolations() })
	viewN, viewD := readRate(func(int) { _ = m.Violations() })

	// Point queries: every reader walks its own stride of the key space.
	var (
		latMu sync.Mutex
		plats []time.Duration
	)
	perReader := make([][]time.Duration, readers)
	var pidx [readers]int64
	_, _ = readRate(func(r int) {
		k := pidx[r]*readers + int64(r)
		pidx[r]++
		t0 := time.Now()
		_, _ = m.ViolationsFor(k % int64(sz))
		d := time.Since(t0)
		latMu.Lock()
		perReader[r] = append(perReader[r], d)
		latMu.Unlock()
	})
	for _, l := range perReader {
		plats = append(plats, l...)
	}
	writes := stop()
	if err := m.Close(); err != nil {
		b.fatal(err)
	}

	scanQPS := float64(scanN) / scanD.Seconds()
	viewQPS := float64(viewN) / viewD.Seconds()
	ratio := viewQPS / scanQPS
	b.header(fmt.Sprintf("E15: violation reads, view vs scan (SZ = %d, 3 CFDs, %d readers, ~1K writes/s bg)", sz, readers),
		"path", "reads/sec", "reads", "bg writes")
	b.row("scan", fmt.Sprintf("%.0f", scanQPS), fmt.Sprint(scanN), "-")
	b.row("view", fmt.Sprintf("%.0f", viewQPS), fmt.Sprint(viewN), fmt.Sprint(writes))
	b.row("view/scan", fmt.Sprintf("%.1fx", ratio), "-", "-")
	b.record(fmt.Sprintf("e15/SZ=%d/scan", sz), measurement{d: time.Duration(float64(readers) * float64(scanD) / float64(scanN))})
	b.record(fmt.Sprintf("e15/SZ=%d/view", sz), measurement{d: time.Duration(float64(readers) * float64(viewD) / float64(viewN))})
	if ratio < 10 {
		fmt.Fprintf(os.Stderr, "cfdbench: e15 view read rate is only %.1fx scan (want >= 10x)\n", ratio)
		b.failed = true
	}

	sortDurations(plats)
	p50, p95, p99 := pctl(plats, 0.50), pctl(plats, 0.95), pctl(plats, 0.99)
	b.header(fmt.Sprintf("E15: point queries, ViolationsFor (SZ = %d, %d readers, ~1K writes/s bg)", sz, readers),
		"lookups", "p50", "p95", "p99")
	b.row(fmt.Sprint(len(plats)), p50.String(), p95.String(), p99.String())
	b.record(fmt.Sprintf("e15/SZ=%d/pointq/p50", sz), measurement{d: p50})
	b.record(fmt.Sprintf("e15/SZ=%d/pointq/p99", sz), measurement{d: p99})

	// Part 3: routed reads over 1/2/4 groups, primary + follower each.
	dir, err := os.MkdirTemp("", "cfdbench-e15-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)

	runRouted := func(groups, rep int) float64 {
		fctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var mons []*incremental.Monitor
		var fols []*incremental.Follower
		cfgs := make([]cluster.GroupConfig, 0, groups)
		for g := 0; g < groups; g++ {
			pm, err := incremental.New(data.Clean.Schema, sigma, incremental.Options{
				Durable: filepath.Join(dir, fmt.Sprintf("s%d-r%d-g%d-p", groups, rep, g)),
			})
			if err != nil {
				b.fatal(err)
			}
			f, err := incremental.NewFollower(fctx, sigma, incremental.Options{
				Durable: filepath.Join(dir, fmt.Sprintf("s%d-r%d-g%d-f", groups, rep, g)),
			}, incremental.FollowOptions{Source: incremental.NewMonitorSource(pm), PollInterval: 2 * time.Millisecond})
			if err != nil {
				b.fatal(err)
			}
			mons = append(mons, pm)
			fols = append(fols, f)
			cfgs = append(cfgs, cluster.GroupConfig{
				Name:     fmt.Sprintf("g%d", g),
				Primary:  &cluster.LocalBackend{M: pm},
				Standbys: []cluster.Backend{&cluster.LocalBackend{F: f}},
			})
		}
		rt, err := cluster.NewRouter(ctx, cfgs, cluster.Options{})
		if err != nil {
			b.fatal(err)
		}
		seed(func(cs *incremental.ChangeSet) error { _, err := rt.Apply(ctx, cs); return err })
		// Catch every standby up before the clock starts, then keep them
		// tracking the background writer from the Run loop.
		for _, f := range fols {
			for {
				if _, err := f.Sync(ctx); err != nil {
					b.fatal(err)
				}
				if st := f.Status(); st.LagBytes == 0 {
					break
				}
			}
			go func(f *incremental.Follower) { _ = f.Run(fctx) }(f)
		}
		runtime.GC()
		stop := startWriter(func(cs *incremental.ChangeSet) error { _, err := rt.Apply(ctx, cs); return err })
		names := rt.Groups()
		n, d := readRate(func(r int) {
			name := names[r%len(names)]
			be, err := rt.PickRead(ctx, name, cluster.ReadAny)
			if err != nil {
				b.fatal(err)
			}
			_ = be.(*cluster.LocalBackend).Mon().Violations()
		})
		stop()
		cancel()
		for _, f := range fols {
			_ = f.Close()
		}
		for _, pm := range mons {
			if err := pm.Close(); err != nil {
				b.fatal(err)
			}
		}
		return float64(n) / d.Seconds()
	}

	type routedRow struct {
		groups int
		qps    float64
	}
	var rows []routedRow
	for _, groups := range []int{1, 2, 4} {
		best := 0.0
		for r := 0; r < b.repeat || r == 0; r++ {
			if q := runRouted(groups, r); q > best {
				best = q
			}
		}
		rows = append(rows, routedRow{groups: groups, qps: best})
		b.record(fmt.Sprintf("e15/routed/groups=%d", groups), measurement{d: time.Duration(float64(readers) * 1e9 / best)})
	}
	b.header(fmt.Sprintf("E15: routed reads, consistency=any (SZ = %d, %d readers, primary+standby per group)", sz, readers),
		"groups", "reads/sec", "x vs 1")
	for _, r := range rows {
		b.row(fmt.Sprint(r.groups), fmt.Sprintf("%.0f", r.qps), fmt.Sprintf("%.2f", r.qps/rows[0].qps))
	}
}
