package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/repair"
)

// E16: live repair — the cost of keeping the fix list current while
// the instance changes. The batch path re-plans everything: one
// repair.Repair pass detects and resolves over the whole instance.
// The streaming path applies a 1K-op ChangeSet to a live monitor and
// re-plans only the suggestions whose violations the batch touched
// (Suggester.Refresh) — O(Δ), not O(|I|). The attach cost (the one
// full planning pass NewSuggester pays) and the cost of materializing
// the ranked set (what GET /v1/repairs serves) are reported for
// context. Acceptance: the post-batch refresh is ≥ 10× faster than
// one full batch repair at 100K tuples.
func (b *bench) e16() {
	sz := 100_000
	if b.quick {
		sz = 20_000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}

	// The full batch repair a change-then-reclean cycle would otherwise
	// pay on every batch.
	full := b.bestCold(func() {
		if _, err := repair.Repair(data.Dirty, sigma, repair.Options{}); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e16/SZ=%d/batch-repair", sz), full)

	// The live engine over a monitor on the same dirty instance.
	m, err := incremental.Load(data.Dirty, sigma, incremental.Options{})
	if err != nil {
		b.fatal(err)
	}
	defer m.Close()
	var sg *repair.Suggester
	attach := b.time(func() {
		sg, err = repair.NewSuggester(m, repair.SuggestOptions{})
		if err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e16/SZ=%d/attach", sz), attach)
	defer sg.Close()

	// Re-plan after a 1K-op ChangeSet of CT updates (CT sits on the LHS
	// of the zip+city→state CFD, so the batch moves real violations).
	// The apply itself is the serving path's cost, measured by E10; the
	// pass counter keeps every repeat a real value flip.
	const nOps = 1000
	pass := 0
	applyBatch := func() {
		pass++
		vals := [2]string{fmt.Sprintf("RAA%d", pass), fmt.Sprintf("RBB%d", pass)}
		var cs incremental.ChangeSet
		for i := 0; i < nOps; i++ {
			cs.Update(int64(i%sz), "CT", vals[i%2])
		}
		if _, err := m.Apply(&cs); err != nil {
			b.fatal(err)
		}
	}
	refresh := measurement{d: time.Duration(1<<63 - 1)}
	for r := 0; r < b.repeat || r == 0; r++ {
		applyBatch()
		if run := b.time(func() { sg.Refresh() }); run.d < refresh.d {
			refresh = run
		}
	}
	b.record(fmt.Sprintf("e16/SZ=%d/refresh-1k", sz), refresh)

	// Materializing the ranked set (what GET /v1/repairs serves).
	var live int
	ranked := b.best(func() { live = len(sg.Suggestions()) })
	b.record(fmt.Sprintf("e16/SZ=%d/suggestions", sz), ranked)

	ratio := float64(full.d) / float64(refresh.d)
	b.header(fmt.Sprintf("E16: live repair (SZ = %d, 3 CFDs, %d live suggestions)", sz, live), "metric", "value")
	b.row("full batch repair (Repair)", ms(full)+" ms")
	b.row("suggester attach (one planning pass)", ms(attach)+" ms")
	b.row("incremental re-plan, 1K-op ChangeSet", ms(refresh)+" ms")
	b.row("materialize ranked set", ms(ranked)+" ms")
	b.row("re-plan speedup", fmt.Sprintf("%.1fx (want ≥ 10x)", ratio))
	if ratio < 10 {
		fmt.Fprintf(os.Stderr, "cfdbench: e16 refresh is only %.1fx the batch repair (want >= 10x)\n", ratio)
		b.failed = true
	}
}
