// Command cfdbench reruns the paper's evaluation (Section 5, Figures
// 9(a)–(f) plus the "Merging CFDs" comparison) and prints each series as a
// table — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	cfdbench               # full paper-scale parameters
//	cfdbench -quick        # reduced sizes for a fast smoke run
//	cfdbench -only 9a,9f   # a subset of experiments
//	cfdbench -json         # machine-readable results (name, ns/op, allocs)
//
// With -json the tables are suppressed and a single JSON array of
// measurements is written to stdout, so a per-PR perf trajectory
// (BENCH_*.json) can be captured by CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/gen"
	"repro/internal/relation"
	"repro/internal/sqlgen"
	"repro/internal/sqlmini"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced sizes for a fast run")
		only    = flag.String("only", "", "comma-separated experiment ids (9a,9b,9c,9d,9e,9f,merge)")
		jsonOut = flag.Bool("json", false, "emit results as a JSON array instead of tables")
	)
	flag.Parse()
	sel := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	b := &bench{quick: *quick, jsonOut: *jsonOut}
	if want("9a") {
		b.fig9ab("9a", 1.0)
	}
	if want("9b") {
		b.fig9ab("9b", 0.5)
	}
	if want("9c") {
		b.fig9c()
	}
	if want("9d") {
		b.fig9d()
	}
	if want("9e") {
		b.fig9e()
	}
	if want("9f") {
		b.fig9f()
	}
	if want("merge") {
		b.merge()
	}
	if b.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b.results); err != nil {
			b.fatal(err)
		}
	}
	if b.failed {
		os.Exit(1)
	}
}

// result is one machine-readable measurement for the -json surface.
type result struct {
	Name   string `json:"name"`
	NsOp   int64  `json:"ns_per_op"`
	Allocs uint64 `json:"allocs"`
}

type bench struct {
	quick   bool
	jsonOut bool
	failed  bool
	results []result
}

func (b *bench) fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdbench:", err)
	b.failed = true
	os.Exit(1)
}

// measurement is a timed run with its allocation count.
type measurement struct {
	d      time.Duration
	allocs uint64
}

func (m measurement) add(o measurement) measurement {
	return measurement{d: m.d + o.d, allocs: m.allocs + o.allocs}
}

// record captures a measurement under a stable series name (JSON mode).
func (b *bench) record(name string, m measurement) {
	if b.jsonOut {
		b.results = append(b.results, result{Name: name, NsOp: m.d.Nanoseconds(), Allocs: m.allocs})
	}
}

// sizes returns the SZ axis of Figures 9(a)–(c).
func (b *bench) sizes() []int {
	if b.quick {
		return []int{10000, 20000, 30000}
	}
	out := make([]int, 0, 10)
	for sz := 10000; sz <= 100000; sz += 10000 {
		out = append(out, sz)
	}
	return out
}

func (b *bench) data(sz int, noise float64) *gen.TaxData {
	return gen.GenerateTax(gen.TaxConfig{Size: sz, Noise: noise, Seed: 1})
}

func (b *bench) cfd(clean *relation.Relation, numAttrs, tabsz int, constPct float64) *core.CFD {
	tpl, err := gen.TemplateByAttrs(numAttrs)
	if err != nil {
		b.fatal(err)
	}
	cfd, err := gen.GenerateWorkloadCFD(clean, gen.CFDConfig{Template: tpl, TabSize: tabsz, ConstPct: constPct, Seed: 2})
	if err != nil {
		b.fatal(err)
	}
	return cfd
}

type pair struct{ qc, qv string }

func (b *bench) setup(rel *relation.Relation, cfd *core.CFD, form sqlgen.Form) (*sqlmini.DB, pair) {
	opts := sqlgen.Default(form)
	tab, err := sqlgen.TableauRelation(cfd, "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	db := sqlmini.NewDB()
	db.RegisterRelation("R", rel)
	db.RegisterRelation("T1", tab)
	qc, err := sqlgen.QC(cfd, "R", "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	qv, err := sqlgen.QV(cfd, "R", "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	return db, pair{qc, qv}
}

func (b *bench) timeQuery(db *sqlmini.DB, sql string) measurement {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := db.Query(sql); err != nil {
		b.fatal(err)
	}
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	return measurement{d: d, allocs: after.Mallocs - before.Mallocs}
}

func (b *bench) timePair(db *sqlmini.DB, p pair) measurement {
	return b.timeQuery(db, p.qc).add(b.timeQuery(db, p.qv))
}

func (b *bench) header(title string, cols ...string) {
	if b.jsonOut {
		return
	}
	fmt.Printf("\n## %s\n\n| %s |\n|%s\n", title, strings.Join(cols, " | "),
		strings.Repeat("---|", len(cols)))
}

func (b *bench) row(cells ...string) {
	if b.jsonOut {
		return
	}
	fmt.Printf("| %s |\n", strings.Join(cells, " | "))
}

func ms(m measurement) string {
	return fmt.Sprintf("%.0f", float64(m.d.Microseconds())/1000)
}

// fig9ab: Figures 9(a)/(b) — CNF vs DNF over SZ, NUMATTRs 3, TABSZ 1K.
func (b *bench) fig9ab(id string, constPct float64) {
	b.header(fmt.Sprintf("Figure %s: CNF vs DNF (NUMCONSTs = %.0f%%)", id, constPct*100),
		"SZ", "CNF ms", "DNF ms", "speedup")
	for _, sz := range b.sizes() {
		data := b.data(sz, 0.05)
		cfd := b.cfd(data.Clean, 3, 1000, constPct)
		dbC, pC := b.setup(data.Dirty, cfd, sqlgen.CNF)
		cnf := b.timePair(dbC, pC)
		b.record(fmt.Sprintf("%s/SZ=%d/cnf", id, sz), cnf)
		dbD, pD := b.setup(data.Dirty, cfd, sqlgen.DNF)
		dnf := b.timePair(dbD, pD)
		b.record(fmt.Sprintf("%s/SZ=%d/dnf", id, sz), dnf)
		b.row(fmt.Sprint(sz), ms(cnf), ms(dnf), fmt.Sprintf("%.1fx", float64(cnf.d)/float64(dnf.d)))
	}
}

// fig9c: QC vs QV split over SZ (DNF).
func (b *bench) fig9c() {
	b.header("Figure 9c: QC vs QV", "SZ", "QC ms", "QV ms")
	for _, sz := range b.sizes() {
		data := b.data(sz, 0.05)
		cfd := b.cfd(data.Clean, 3, 1000, 1.0)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		qc := b.timeQuery(db, p.qc)
		b.record(fmt.Sprintf("9c/SZ=%d/qc", sz), qc)
		qv := b.timeQuery(db, p.qv)
		b.record(fmt.Sprintf("9c/SZ=%d/qv", sz), qv)
		b.row(fmt.Sprint(sz), ms(qc), ms(qv))
	}
}

// fig9d: scalability in TABSZ at SZ 500K, NUMATTRs 3 vs 4, NUMCONSTs 50%.
func (b *bench) fig9d() {
	sz := 500000
	step, max := 1000, 10000
	if b.quick {
		sz, step, max = 50000, 2000, 6000
	}
	data := b.data(sz, 0.05)
	b.header(fmt.Sprintf("Figure 9d: scalability in TABSZ (SZ = %d)", sz),
		"TABSZ", "NUMATTRs=3 ms", "NUMATTRs=4 ms")
	for tabsz := step; tabsz <= max; tabsz += step {
		cfd3 := b.cfd(data.Clean, 3, tabsz, 0.5)
		db3, p3 := b.setup(data.Dirty, cfd3, sqlgen.DNF)
		t3 := b.timePair(db3, p3)
		b.record(fmt.Sprintf("9d/TABSZ=%d/attrs=3", tabsz), t3)
		cfd4 := b.cfd(data.Clean, 4, tabsz, 0.5)
		db4, p4 := b.setup(data.Dirty, cfd4, sqlgen.DNF)
		t4 := b.timePair(db4, p4)
		b.record(fmt.Sprintf("9d/TABSZ=%d/attrs=4", tabsz), t4)
		b.row(fmt.Sprint(tabsz), ms(t3), ms(t4))
	}
}

// fig9e: scalability in NUMCONSTs at SZ 100K, TABSZ 1K.
func (b *bench) fig9e() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	b.header(fmt.Sprintf("Figure 9e: scalability in NUMCONSTs (SZ = %d)", sz),
		"NUMCONSTs", "detect ms")
	for pct := 100; pct >= 10; pct -= 10 {
		cfd := b.cfd(data.Clean, 3, 1000, float64(pct)/100)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		t := b.timePair(db, p)
		b.record(fmt.Sprintf("9e/NUMCONSTS=%d", pct), t)
		b.row(fmt.Sprintf("%d%%", pct), ms(t))
	}
}

// fig9f: scalability in NOISE with the full 30K zip→state tableau.
func (b *bench) fig9f() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	cfd := gen.AllZipStateCFD(gen.NumZips)
	b.header(fmt.Sprintf("Figure 9f: scalability in NOISE (SZ = %d, TABSZ = %d)", sz, gen.NumZips),
		"NOISE", "detect ms")
	for noise := 0; noise <= 9; noise++ {
		data := b.data(sz, float64(noise)/100)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		t := b.timePair(db, p)
		b.record(fmt.Sprintf("9f/NOISE=%d", noise), t)
		b.row(fmt.Sprintf("%d%%", noise), ms(t))
	}
}

// merge: the Section 5 "Merging CFDs" comparison.
func (b *bench) merge() {
	sz := 20000
	if b.quick {
		sz = 5000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	b.header(fmt.Sprintf("Merging CFDs (SZ = %d, 3 related CFDs, TABSZ 500)", sz),
		"plan", "passes over R", "detect ms")
	run := func(id, name string, passes string, opts detect.Options) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := detect.Detect(data.Dirty, sigma, opts); err != nil {
			b.fatal(err)
		}
		m := measurement{d: time.Since(start)}
		runtime.ReadMemStats(&after)
		m.allocs = after.Mallocs - before.Mallocs
		b.record("merge/"+id, m)
		b.row(name, passes, ms(m))
	}
	run("merged-cnf", "merged (QCΣ, QVΣ), CNF", "2", detect.Options{Strategy: detect.SQLMerged, Form: sqlgen.CNF})
	run("percfd-cnf", "per-CFD (QC, QV), CNF", "6", detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.CNF})
	run("percfd-dnf", "per-CFD (QC, QV), DNF", "6", detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.DNF})
	run("direct", "direct (no SQL)", "-", detect.Options{Strategy: detect.Direct})
}
