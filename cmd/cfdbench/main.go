// Command cfdbench reruns the paper's evaluation (Section 5, Figures
// 9(a)–(f) plus the "Merging CFDs" comparison) and prints each series as a
// table — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	cfdbench               # full paper-scale parameters
//	cfdbench -quick        # reduced sizes for a fast smoke run
//	cfdbench -only 9a,9f   # a subset of experiments
//	cfdbench -json         # machine-readable results (name, ns/op, allocs)
//	cfdbench -repeat 3     # best-of-3 timing per series (CI stability)
//
// Experiment ids: 9a–9f and merge re-run the paper's evaluation; e9
// measures the durable serving path (WAL append latency, snapshot cost,
// cold-start recovery vs the full CSV load); e10 measures batched ingest
// (ChangeSet delta throughput vs batch size under 1/4/16 concurrent
// writers, and the one-fsync-per-batch payoff against single fsynced
// ops); e11 measures streaming discovery (incremental re-score of the
// mined CFD set after a 1K-op ChangeSet vs a full re-mine of the
// instance; acceptance is a ≥20× speedup at MaxLHS = 1); e12 measures
// WAL segment shipping (a restarted follower's catch-up — local
// snapshot + log tail recovery plus shipping the records it missed — vs
// the cold CSV re-seed a standby-less shard pays; acceptance is a ≥5×
// speedup at 100K tuples); e13 measures write-path raw speed (group
// commit: fsynced single-op throughput at 1/4/16 concurrent writers
// with the commit window on vs off and vs hand-batched ChangeSets —
// acceptance is ≥4 coalesced writers within ~2× of the batched per-op
// rate — plus the tuple-store memory series: bytes/tuple of the dense
// value-ID columns vs the interned-string layout at 1M tuples;
// acceptance is a ≥2× reduction); e14 measures cluster write scaling (a
// consistent-hash router fanning keyed single-op updates across 1/2/4
// independent fsynced shard groups under 16 closed-loop writers, group
// commit off so the per-journal fsync is the bottleneck being sharded;
// acceptance is ≥3× the single-shard op rate at 4 groups); e15
// measures read-path scaling (violation reads against the incremental
// view vs a per-request rescan, snapshot-isolated pagination, and
// standby fan-out); e16 measures live repair (re-planning the
// cost-ranked suggestion set after a 1K-op ChangeSet vs one full batch
// repair of the instance; acceptance is a ≥10× speedup at 100K
// tuples).
//
// A second mode, -serve URL, turns cfdbench into a serving driver: N
// concurrent HTTP clients fire at a live cfdserve or cfdrouter for
// -duration, open-loop at -rate req/s (or closed-loop at rate 0), and
// report qps with p50/p95/p99 latency; -insert-values picks the write
// path (POST /insert) over the default read path (GET /violations).
//
// With -json the tables are suppressed and a single JSON array of
// measurements is written to stdout, so a per-PR perf trajectory
// (BENCH_baseline.json, compared by cmd/cfdbenchdiff in CI) can be
// captured.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/discovery"
	"repro/internal/gen"
	"repro/internal/incremental"
	"repro/internal/relation"
	"repro/internal/sqlgen"
	"repro/internal/sqlmini"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced sizes for a fast run")
		only    = flag.String("only", "", "comma-separated experiment ids (9a,9b,9c,9d,9e,9f,merge,e9,e10,e11,e12,e13,e14,e15,e16)")
		jsonOut = flag.Bool("json", false, "emit results as a JSON array instead of tables")
		repeat  = flag.Int("repeat", 1, "measure each series this many times and keep the fastest")

		serveURL   = flag.String("serve", "", "serving-driver mode: fire HTTP load at this cfdserve/cfdrouter base URL instead of running experiments")
		clients    = flag.Int("clients", 8, "serving driver: concurrent HTTP clients")
		rate       = flag.Float64("rate", 0, "serving driver: aggregate open-loop admission rate in req/s (0 = closed loop)")
		duration   = flag.Duration("duration", 10*time.Second, "serving driver: how long to fire")
		insertVals = flag.String("insert-values", "", "serving driver: comma-separated tuple values to POST /insert (empty: GET /violations)")
		readFrac   = flag.Float64("read-frac", 0, "serving driver: with -insert-values, fraction of requests issued as GET /violations reads (0..1)")
	)
	flag.Parse()
	sel := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	b := &bench{quick: *quick, jsonOut: *jsonOut, repeat: *repeat}
	if *serveURL != "" {
		b.serveBench(strings.TrimRight(*serveURL, "/"), *clients, *rate, *duration, *insertVals, *readFrac)
		if b.jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(b.results); err != nil {
				b.fatal(err)
			}
		}
		if b.failed {
			os.Exit(1)
		}
		return
	}
	if want("9a") {
		b.fig9ab("9a", 1.0)
	}
	if want("9b") {
		b.fig9ab("9b", 0.5)
	}
	if want("9c") {
		b.fig9c()
	}
	if want("9d") {
		b.fig9d()
	}
	if want("9e") {
		b.fig9e()
	}
	if want("9f") {
		b.fig9f()
	}
	if want("merge") {
		b.merge()
	}
	if want("e9") {
		b.e9()
	}
	if want("e10") {
		b.e10()
	}
	if want("e11") {
		b.e11()
	}
	if want("e12") {
		b.e12()
	}
	if want("e13") {
		b.e13()
	}
	if want("e14") {
		b.e14()
	}
	if want("e15") {
		b.e15()
	}
	if want("e16") {
		b.e16()
	}
	if b.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b.results); err != nil {
			b.fatal(err)
		}
	}
	if b.failed {
		os.Exit(1)
	}
}

// result is one machine-readable measurement for the -json surface.
type result struct {
	Name   string `json:"name"`
	NsOp   int64  `json:"ns_per_op"`
	Allocs uint64 `json:"allocs"`
}

type bench struct {
	quick   bool
	jsonOut bool
	repeat  int
	failed  bool
	results []result
}

func (b *bench) fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdbench:", err)
	b.failed = true
	os.Exit(1)
}

// measurement is a timed run with its allocation count.
type measurement struct {
	d      time.Duration
	allocs uint64
}

func (m measurement) add(o measurement) measurement {
	return measurement{d: m.d + o.d, allocs: m.allocs + o.allocs}
}

// record captures a measurement under a stable series name (JSON mode).
func (b *bench) record(name string, m measurement) {
	if b.jsonOut {
		b.results = append(b.results, result{Name: name, NsOp: m.d.Nanoseconds(), Allocs: m.allocs})
	}
}

// sizes returns the SZ axis of Figures 9(a)–(c).
func (b *bench) sizes() []int {
	if b.quick {
		return []int{10000, 20000, 30000}
	}
	out := make([]int, 0, 10)
	for sz := 10000; sz <= 100000; sz += 10000 {
		out = append(out, sz)
	}
	return out
}

func (b *bench) data(sz int, noise float64) *gen.TaxData {
	return gen.GenerateTax(gen.TaxConfig{Size: sz, Noise: noise, Seed: 1})
}

func (b *bench) cfd(clean *relation.Relation, numAttrs, tabsz int, constPct float64) *core.CFD {
	tpl, err := gen.TemplateByAttrs(numAttrs)
	if err != nil {
		b.fatal(err)
	}
	cfd, err := gen.GenerateWorkloadCFD(clean, gen.CFDConfig{Template: tpl, TabSize: tabsz, ConstPct: constPct, Seed: 2})
	if err != nil {
		b.fatal(err)
	}
	return cfd
}

type pair struct{ qc, qv string }

func (b *bench) setup(rel *relation.Relation, cfd *core.CFD, form sqlgen.Form) (*sqlmini.DB, pair) {
	opts := sqlgen.Default(form)
	tab, err := sqlgen.TableauRelation(cfd, "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	db := sqlmini.NewDB()
	db.RegisterRelation("R", rel)
	db.RegisterRelation("T1", tab)
	qc, err := sqlgen.QC(cfd, "R", "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	qv, err := sqlgen.QV(cfd, "R", "T1", opts)
	if err != nil {
		b.fatal(err)
	}
	return db, pair{qc, qv}
}

// time measures one run of f (duration + allocations).
func (b *bench) time(f func()) measurement {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	return measurement{d: d, allocs: after.Mallocs - before.Mallocs}
}

// best measures f -repeat times and keeps the fastest run — single-shot
// wall-clock timings on shared CI runners are noisy, and the minimum is
// the closest observable to the true cost.
func (b *bench) best(f func()) measurement {
	m := b.time(f)
	for i := 1; i < b.repeat; i++ {
		if n := b.time(f); n.d < m.d {
			m = n
		}
	}
	return m
}

// bestCold is best with a garbage collection before every attempt: each
// run starts from the same settled heap, so a cold-start measurement is
// the operation's own cost, not a predecessor's deferred GC debt.
func (b *bench) bestCold(f func()) measurement {
	m := measurement{d: time.Duration(1<<63 - 1)}
	for r := 0; r < b.repeat || r == 0; r++ {
		runtime.GC()
		if n := b.time(f); n.d < m.d {
			m = n
		}
	}
	return m
}

func (b *bench) timeQuery(db *sqlmini.DB, sql string) measurement {
	return b.best(func() {
		if _, err := db.Query(sql); err != nil {
			b.fatal(err)
		}
	})
}

func (b *bench) timePair(db *sqlmini.DB, p pair) measurement {
	return b.timeQuery(db, p.qc).add(b.timeQuery(db, p.qv))
}

func (b *bench) header(title string, cols ...string) {
	if b.jsonOut {
		return
	}
	fmt.Printf("\n## %s\n\n| %s |\n|%s\n", title, strings.Join(cols, " | "),
		strings.Repeat("---|", len(cols)))
}

func (b *bench) row(cells ...string) {
	if b.jsonOut {
		return
	}
	fmt.Printf("| %s |\n", strings.Join(cells, " | "))
}

func ms(m measurement) string {
	return fmt.Sprintf("%.0f", float64(m.d.Microseconds())/1000)
}

// fig9ab: Figures 9(a)/(b) — CNF vs DNF over SZ, NUMATTRs 3, TABSZ 1K.
func (b *bench) fig9ab(id string, constPct float64) {
	b.header(fmt.Sprintf("Figure %s: CNF vs DNF (NUMCONSTs = %.0f%%)", id, constPct*100),
		"SZ", "CNF ms", "DNF ms", "speedup")
	for _, sz := range b.sizes() {
		data := b.data(sz, 0.05)
		cfd := b.cfd(data.Clean, 3, 1000, constPct)
		dbC, pC := b.setup(data.Dirty, cfd, sqlgen.CNF)
		cnf := b.timePair(dbC, pC)
		b.record(fmt.Sprintf("%s/SZ=%d/cnf", id, sz), cnf)
		dbD, pD := b.setup(data.Dirty, cfd, sqlgen.DNF)
		dnf := b.timePair(dbD, pD)
		b.record(fmt.Sprintf("%s/SZ=%d/dnf", id, sz), dnf)
		b.row(fmt.Sprint(sz), ms(cnf), ms(dnf), fmt.Sprintf("%.1fx", float64(cnf.d)/float64(dnf.d)))
	}
}

// fig9c: QC vs QV split over SZ (DNF).
func (b *bench) fig9c() {
	b.header("Figure 9c: QC vs QV", "SZ", "QC ms", "QV ms")
	for _, sz := range b.sizes() {
		data := b.data(sz, 0.05)
		cfd := b.cfd(data.Clean, 3, 1000, 1.0)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		qc := b.timeQuery(db, p.qc)
		b.record(fmt.Sprintf("9c/SZ=%d/qc", sz), qc)
		qv := b.timeQuery(db, p.qv)
		b.record(fmt.Sprintf("9c/SZ=%d/qv", sz), qv)
		b.row(fmt.Sprint(sz), ms(qc), ms(qv))
	}
}

// fig9d: scalability in TABSZ at SZ 500K, NUMATTRs 3 vs 4, NUMCONSTs 50%.
func (b *bench) fig9d() {
	sz := 500000
	step, max := 1000, 10000
	if b.quick {
		sz, step, max = 50000, 2000, 6000
	}
	data := b.data(sz, 0.05)
	b.header(fmt.Sprintf("Figure 9d: scalability in TABSZ (SZ = %d)", sz),
		"TABSZ", "NUMATTRs=3 ms", "NUMATTRs=4 ms")
	for tabsz := step; tabsz <= max; tabsz += step {
		cfd3 := b.cfd(data.Clean, 3, tabsz, 0.5)
		db3, p3 := b.setup(data.Dirty, cfd3, sqlgen.DNF)
		t3 := b.timePair(db3, p3)
		b.record(fmt.Sprintf("9d/TABSZ=%d/attrs=3", tabsz), t3)
		cfd4 := b.cfd(data.Clean, 4, tabsz, 0.5)
		db4, p4 := b.setup(data.Dirty, cfd4, sqlgen.DNF)
		t4 := b.timePair(db4, p4)
		b.record(fmt.Sprintf("9d/TABSZ=%d/attrs=4", tabsz), t4)
		b.row(fmt.Sprint(tabsz), ms(t3), ms(t4))
	}
}

// fig9e: scalability in NUMCONSTs at SZ 100K, TABSZ 1K.
func (b *bench) fig9e() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	b.header(fmt.Sprintf("Figure 9e: scalability in NUMCONSTs (SZ = %d)", sz),
		"NUMCONSTs", "detect ms")
	for pct := 100; pct >= 10; pct -= 10 {
		cfd := b.cfd(data.Clean, 3, 1000, float64(pct)/100)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		t := b.timePair(db, p)
		b.record(fmt.Sprintf("9e/NUMCONSTS=%d", pct), t)
		b.row(fmt.Sprintf("%d%%", pct), ms(t))
	}
}

// fig9f: scalability in NOISE with the full 30K zip→state tableau.
func (b *bench) fig9f() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	cfd := gen.AllZipStateCFD(gen.NumZips)
	b.header(fmt.Sprintf("Figure 9f: scalability in NOISE (SZ = %d, TABSZ = %d)", sz, gen.NumZips),
		"NOISE", "detect ms")
	for noise := 0; noise <= 9; noise++ {
		data := b.data(sz, float64(noise)/100)
		db, p := b.setup(data.Dirty, cfd, sqlgen.DNF)
		t := b.timePair(db, p)
		b.record(fmt.Sprintf("9f/NOISE=%d", noise), t)
		b.row(fmt.Sprintf("%d%%", noise), ms(t))
	}
}

// merge: the Section 5 "Merging CFDs" comparison.
func (b *bench) merge() {
	sz := 20000
	if b.quick {
		sz = 5000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	b.header(fmt.Sprintf("Merging CFDs (SZ = %d, 3 related CFDs, TABSZ 500)", sz),
		"plan", "passes over R", "detect ms")
	run := func(id, name string, passes string, opts detect.Options) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if _, err := detect.Detect(data.Dirty, sigma, opts); err != nil {
			b.fatal(err)
		}
		m := measurement{d: time.Since(start)}
		runtime.ReadMemStats(&after)
		m.allocs = after.Mallocs - before.Mallocs
		b.record("merge/"+id, m)
		b.row(name, passes, ms(m))
	}
	run("merged-cnf", "merged (QCΣ, QVΣ), CNF", "2", detect.Options{Strategy: detect.SQLMerged, Form: sqlgen.CNF})
	run("percfd-cnf", "per-CFD (QC, QV), CNF", "6", detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.CNF})
	run("percfd-dnf", "per-CFD (QC, QV), DNF", "6", detect.Options{Strategy: detect.SQLPerCFD, Form: sqlgen.DNF})
	run("direct", "direct (no SQL)", "-", detect.Options{Strategy: detect.Direct})
}

// e9: the durable serving path (beyond the paper) — write-ahead append
// latency, full-state snapshot cost, and the payoff: cold-start recovery
// from snapshot + log tail vs parsing and re-indexing the CSV.
func (b *bench) e9() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}

	dir, err := os.MkdirTemp("", "cfdbench-e9-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)

	// Baseline: the cold start every boot pays without durability — read
	// the CSV from disk and build the monitor by evaluating Σ per tuple.
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		b.fatal(err)
	}
	if err := relation.WriteCSV(f, data.Dirty); err != nil {
		b.fatal(err)
	}
	if err := f.Close(); err != nil {
		b.fatal(err)
	}
	csvLoad := b.bestCold(func() {
		f, err := os.Open(csvPath)
		if err != nil {
			b.fatal(err)
		}
		// The serving path's load: CSV values deduplicated through the
		// pool the monitor then interns against.
		pool := relation.NewInterner()
		rel, err := relation.ReadCSVInterned(f, "R", pool)
		f.Close()
		if err != nil {
			b.fatal(err)
		}
		if _, err := incremental.Load(rel, sigma, incremental.Options{Intern: pool}); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e9/SZ=%d/coldstart-csv", sz), csvLoad)

	// The durable node: seeded once (writes the initial snapshot).
	walDir := filepath.Join(dir, "wal")
	m, err := incremental.Load(data.Dirty, sigma, incremental.Options{Durable: walDir})
	if err != nil {
		b.fatal(err)
	}
	// Each call is a distinct pass: the values carry the pass number so a
	// later pass over the same keys never repeats a tuple's current value
	// (a same-value Update is not journaled, which would turn the measured
	// appends and the recovery log tail into no-ops).
	pass := 0
	mutate := func(m *incremental.Monitor, n int) time.Duration {
		pass++
		vals := [2]string{fmt.Sprintf("AAA%d", pass), fmt.Sprintf("BBB%d", pass)}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := m.Update(int64(i%sz), "CT", vals[i%2]); err != nil {
				b.fatal(err)
			}
		}
		return time.Since(start)
	}

	// Append latency, buffered: the monitor's update cost plus the framed
	// write-ahead record.
	nAppend := 2000
	appendBuf := measurement{d: mutate(m, nAppend) / time.Duration(nAppend)}
	b.record(fmt.Sprintf("e9/SZ=%d/append-buffered", sz), appendBuf)

	// Snapshot cost: serialize the full live state and roll the log.
	snap := b.best(func() {
		if err := m.ForceSnapshot(); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e9/SZ=%d/snapshot", sz), snap)

	// Leave a realistic log tail behind the latest snapshot, then crash.
	mutate(m, 1000)
	if err := m.Close(); err != nil {
		b.fatal(err)
	}

	// Recovery: latest snapshot + 1000-record tail replay. The journal
	// close between repeats is teardown, not time-to-serving, so only the
	// open is timed.
	recover := measurement{d: time.Duration(1<<63 - 1)}
	for r := 0; r < b.repeat || r == 0; r++ {
		var rec *incremental.Monitor
		runtime.GC() // same cold-heap discipline as the CSV baseline
		run := b.time(func() {
			var err error
			rec, err = incremental.New(data.Dirty.Schema, sigma, incremental.Options{Durable: walDir})
			if err != nil {
				b.fatal(err)
			}
			if !rec.Recovered() || rec.Len() != sz {
				b.fatal(fmt.Errorf("e9: recovered %d tuples (recovered=%v)", rec.Len(), rec.Recovered()))
			}
		})
		if run.d < recover.d {
			recover = run
		}
		if err := rec.Close(); err != nil {
			b.fatal(err)
		}
	}
	b.record(fmt.Sprintf("e9/SZ=%d/coldstart-recover", sz), recover)

	// Append latency with per-record fsync (the power-loss-proof mode).
	mf, err := incremental.New(data.Dirty.Schema, sigma, incremental.Options{Durable: walDir, Fsync: true})
	if err != nil {
		b.fatal(err)
	}
	nSync := 200
	appendSync := measurement{d: mutate(mf, nSync) / time.Duration(nSync)}
	b.record(fmt.Sprintf("e9/SZ=%d/append-fsync", sz), appendSync)
	if err := mf.Close(); err != nil {
		b.fatal(err)
	}

	b.header(fmt.Sprintf("E9: durability (SZ = %d, 3 CFDs)", sz), "metric", "value")
	b.row("WAL append, buffered", fmt.Sprintf("%.1f µs/op", float64(appendBuf.d.Nanoseconds())/1e3))
	b.row("WAL append, fsync", fmt.Sprintf("%.1f µs/op", float64(appendSync.d.Nanoseconds())/1e3))
	b.row("snapshot (full state)", ms(snap)+" ms")
	b.row("cold start: CSV load", ms(csvLoad)+" ms")
	b.row("cold start: snapshot+log recovery", ms(recover)+" ms")
	b.row("recovery speedup", fmt.Sprintf("%.1fx", float64(csvLoad.d)/float64(recover.d)))
}

// e10: batched ingest — delta throughput of the ChangeSet pipeline
// against batch size under concurrent writers, and the headline fsync
// comparison: a 1000-op ChangeSet is one WAL record and one fsync, so it
// must beat 1000 single fsynced ops by well over 3×.
func (b *bench) e10() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	dir, err := os.MkdirTemp("", "cfdbench-e10-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)

	// mutateBatched drives n CT updates through m as ChangeSets of size
	// batch, split evenly across writers goroutines (each on its own key
	// range, so contention is the pipeline's — journal mutex, shard
	// locks — not artificial same-key serialization). The per-writer pass
	// counter keeps every revisit a real value flip, as in e9.
	pass := 0
	mutateBatched := func(m *incremental.Monitor, n, batch, writers int) time.Duration {
		pass++
		vals := [2]string{fmt.Sprintf("XAA%d", pass), fmt.Sprintf("XBB%d", pass)}
		perW := n / writers
		span := sz / writers
		var wg sync.WaitGroup
		errs := make([]error, writers)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := w * span
				for done := 0; done < perW; {
					sz := batch
					if rest := perW - done; rest < sz {
						sz = rest
					}
					var cs incremental.ChangeSet
					for i := 0; i < sz; i++ {
						op := done + i
						cs.Update(int64(base+op%span), "CT", vals[(op+op/span)%2])
					}
					if _, err := m.Apply(&cs); err != nil {
						errs[w] = err
						return
					}
					done += sz
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(start)
		for _, err := range errs {
			if err != nil {
				b.fatal(err)
			}
		}
		return d
	}

	// The headline pair: durable + fsync, single ops vs one 1000-op
	// ChangeSet per apply. Acceptance: batch ≥ 3× faster per op.
	mf, err := incremental.Load(data.Dirty, sigma, incremental.Options{Durable: filepath.Join(dir, "fsync"), Fsync: true})
	if err != nil {
		b.fatal(err)
	}
	nSingle, nBatch := 300, 3000
	if b.quick {
		nSingle, nBatch = 200, 2000
	}
	best := func(n, batch, writers int, m *incremental.Monitor) measurement {
		out := measurement{d: time.Duration(1<<63 - 1)}
		for r := 0; r < b.repeat || r == 0; r++ {
			if d := mutateBatched(m, n, batch, writers) / time.Duration(n); d < out.d {
				out = measurement{d: d}
			}
		}
		return out
	}
	singleFsync := best(nSingle, 1, 1, mf)
	b.record(fmt.Sprintf("e10/SZ=%d/fsync/batch=1", sz), singleFsync)
	batchFsync := best(nBatch, 1000, 1, mf)
	b.record(fmt.Sprintf("e10/SZ=%d/fsync/batch=1000", sz), batchFsync)
	if err := mf.Close(); err != nil {
		b.fatal(err)
	}

	// Delta throughput vs batch size under 1/4/16 concurrent writers,
	// durable buffered — the serving configuration.
	md, err := incremental.Load(data.Dirty, sigma, incremental.Options{Durable: filepath.Join(dir, "buf")})
	if err != nil {
		b.fatal(err)
	}
	nOps := 32000
	if b.quick {
		nOps = 8000
	}
	type cell struct {
		batch, writers int
		m              measurement
	}
	var cells []cell
	for _, writers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 16, 256, 1000} {
			m := best(nOps, batch, writers, md)
			b.record(fmt.Sprintf("e10/SZ=%d/writers=%d/batch=%d", sz, writers, batch), m)
			cells = append(cells, cell{batch, writers, m})
		}
	}
	if err := md.Close(); err != nil {
		b.fatal(err)
	}

	b.header(fmt.Sprintf("E10: batched ingest (SZ = %d, 3 CFDs, durable)", sz),
		"series", "batch", "writers", "µs/op", "ops/sec")
	us := func(m measurement) string { return fmt.Sprintf("%.1f", float64(m.d.Nanoseconds())/1e3) }
	rate := func(m measurement) string {
		if m.d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", 1e9/float64(m.d.Nanoseconds()))
	}
	b.row("fsync single-op", "1", "1", us(singleFsync), rate(singleFsync))
	b.row("fsync batched", "1000", "1", us(batchFsync), rate(batchFsync))
	b.row("fsync batch speedup", "-", "-", fmt.Sprintf("%.1fx", float64(singleFsync.d)/float64(batchFsync.d)), "-")
	for _, c := range cells {
		b.row("buffered", fmt.Sprint(c.batch), fmt.Sprint(c.writers), us(c.m), rate(c.m))
	}
}

// e11: streaming discovery — the cost of keeping the mined CFD set
// current. Full re-mine is the bulk path (Discover: seed a throwaway
// monitor, score every group); the streaming path applies a 1K-op
// ChangeSet to a live monitor and re-scores only the groups it touched
// (Miner.Refresh). Acceptance: re-score ≥ 20× faster than re-mining at
// 100K tuples, MaxLHS = 1.
func (b *bench) e11() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	cfg := discovery.Config{MaxLHS: 1, MinSupport: 2}

	// The full re-mine every batch of changes would otherwise pay.
	full := b.bestCold(func() {
		if _, err := discovery.Discover(data.Dirty, cfg); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e11/SZ=%d/full-mine", sz), full)

	// The streaming miner over a live monitor. Attach cost (the one full
	// scoring pass) is reported for context.
	m, err := incremental.Load(data.Dirty, nil, incremental.Options{})
	if err != nil {
		b.fatal(err)
	}
	var miner *discovery.Miner
	attach := b.time(func() {
		miner, err = discovery.NewMiner(m, cfg)
		if err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e11/SZ=%d/attach", sz), attach)
	defer miner.Close()

	// Re-score after a 1K-op ChangeSet of CT updates (each touches every
	// pair whose X or A mentions CT). The batch apply itself is not
	// timed: it is the serving path's cost, already measured by E10; the
	// pass counter keeps every repeat a real value flip.
	const nOps = 1000
	pass := 0
	applyBatch := func() {
		pass++
		vals := [2]string{fmt.Sprintf("MAA%d", pass), fmt.Sprintf("MBB%d", pass)}
		var cs incremental.ChangeSet
		for i := 0; i < nOps; i++ {
			cs.Update(int64(i%sz), "CT", vals[i%2])
		}
		if _, err := m.Apply(&cs); err != nil {
			b.fatal(err)
		}
	}
	rescore := measurement{d: time.Duration(1<<63 - 1)}
	for r := 0; r < b.repeat || r == 0; r++ {
		applyBatch()
		if run := b.time(func() { miner.Refresh() }); run.d < rescore.d {
			rescore = run
		}
	}
	b.record(fmt.Sprintf("e11/SZ=%d/rescore-1k", sz), rescore)

	// Materializing the current mined set (what GET /discover serves).
	mined := b.best(func() {
		if _, err := miner.Mined(); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e11/SZ=%d/mined", sz), mined)

	b.header(fmt.Sprintf("E11: streaming discovery (SZ = %d, MaxLHS = 1)", sz), "metric", "value")
	b.row("full re-mine (Discover)", ms(full)+" ms")
	b.row("miner attach (one scoring pass)", ms(attach)+" ms")
	b.row("incremental re-score, 1K-op ChangeSet", ms(rescore)+" ms")
	b.row("materialize mined set", ms(mined)+" ms")
	b.row("re-score speedup", fmt.Sprintf("%.1fx", float64(full.d)/float64(rescore.d)))
}

// e12: WAL segment shipping — the hot standby's catch-up economics.
// Without a standby, a failed shard re-seeds from the CSV: parse, build,
// re-evaluate Σ per tuple. With one, the replacement node recovers its
// own snapshot + log tail from disk and ships only the records it
// missed while down. Acceptance: catch-up ≥ 5× faster than the CSV
// re-seed at 100K tuples (a 1K-record gap).
func (b *bench) e12() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	dir, err := os.MkdirTemp("", "cfdbench-e12-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Baseline: the standby-less failover path — re-seed from the CSV.
	csvPath := filepath.Join(dir, "data.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		b.fatal(err)
	}
	if err := relation.WriteCSV(f, data.Dirty); err != nil {
		b.fatal(err)
	}
	if err := f.Close(); err != nil {
		b.fatal(err)
	}
	csvLoad := b.bestCold(func() {
		f, err := os.Open(csvPath)
		if err != nil {
			b.fatal(err)
		}
		pool := relation.NewInterner()
		rel, err := relation.ReadCSVInterned(f, "R", pool)
		f.Close()
		if err != nil {
			b.fatal(err)
		}
		if _, err := incremental.Load(rel, sigma, incremental.Options{Intern: pool}); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e12/SZ=%d/coldstart-csv", sz), csvLoad)

	// The primary, retaining closed segments for its follower.
	p, err := incremental.Load(data.Dirty, sigma, incremental.Options{
		Durable: filepath.Join(dir, "primary"), RetainSegments: 4,
	})
	if err != nil {
		b.fatal(err)
	}
	src := incremental.NewMonitorSource(p)
	fdir := filepath.Join(dir, "follower")

	// Initial sync: ship the full snapshot and replay it locally — what
	// a brand-new standby pays once, reported for context.
	var fol *incremental.Follower
	initial := b.time(func() {
		var err error
		fol, err = incremental.NewFollower(ctx, sigma, incremental.Options{Durable: fdir},
			incremental.FollowOptions{Source: src})
		if err != nil {
			b.fatal(err)
		}
		if _, err := fol.Sync(ctx); err != nil {
			b.fatal(err)
		}
		if fol.Monitor().Len() != sz {
			b.fatal(fmt.Errorf("e12: initial sync got %d tuples, want %d", fol.Monitor().Len(), sz))
		}
	})
	b.record(fmt.Sprintf("e12/SZ=%d/follower-initial-sync", sz), initial)

	// Catch-up: the standby restarts after missing tailN records. Each
	// repeat kills the follower, advances the primary, and times local
	// recovery + shipping the gap. Same cold-heap discipline as the CSV
	// baseline.
	const tailN = 1000
	pass := 0
	advance := func(n int) {
		pass++
		vals := [2]string{fmt.Sprintf("SAA%d", pass), fmt.Sprintf("SBB%d", pass)}
		for i := 0; i < n; i++ {
			if _, err := p.Update(int64(i%sz), "CT", vals[i%2]); err != nil {
				b.fatal(err)
			}
		}
	}
	catchup := measurement{d: time.Duration(1<<63 - 1)}
	for r := 0; r < b.repeat || r == 0; r++ {
		if err := fol.Close(); err != nil {
			b.fatal(err)
		}
		advance(tailN)
		runtime.GC()
		run := b.time(func() {
			var err error
			fol, err = incremental.NewFollower(ctx, sigma, incremental.Options{Durable: fdir},
				incremental.FollowOptions{Source: src})
			if err != nil {
				b.fatal(err)
			}
			applied, err := fol.Sync(ctx)
			if err != nil {
				b.fatal(err)
			}
			if applied != tailN || fol.Monitor().Len() != sz {
				b.fatal(fmt.Errorf("e12: catch-up applied %d records (len %d), want %d", applied, fol.Monitor().Len(), tailN))
			}
		})
		if run.d < catchup.d {
			catchup = run
		}
	}
	b.record(fmt.Sprintf("e12/SZ=%d/follower-catchup", sz), catchup)

	// Promotion: the failover flip itself.
	promote := b.time(func() {
		if err := fol.Promote(); err != nil {
			b.fatal(err)
		}
	})
	b.record(fmt.Sprintf("e12/SZ=%d/promote", sz), promote)
	if err := fol.Monitor().Close(); err != nil {
		b.fatal(err)
	}
	fol.Close()
	if err := p.Close(); err != nil {
		b.fatal(err)
	}

	b.header(fmt.Sprintf("E12: WAL shipping failover (SZ = %d, 3 CFDs, %d-record gap)", sz, tailN), "metric", "value")
	b.row("cold start: CSV re-seed", ms(csvLoad)+" ms")
	b.row("follower initial sync (snapshot ship)", ms(initial)+" ms")
	b.row("follower catch-up (local recovery + tail ship)", ms(catchup)+" ms")
	b.row("promotion flip", fmt.Sprintf("%.1f µs", float64(promote.d.Nanoseconds())/1e3))
	b.row("catch-up vs re-seed", fmt.Sprintf("%.1fx", float64(csvLoad.d)/float64(catchup.d)))
}

// e13: write-path raw speed. Part one is the group-commit window —
// concurrent writers issuing single fsynced ops coalesce into one
// combined WAL record and one fsync per window, so per-op cost should
// fall toward the hand-batched rate as writers grow. Acceptance: at
// ≥ 4 writers the coalesced single-op rate is within ~2× of the
// batched reference. Part two is the dense value-ID tuple store —
// bytes/tuple of the monitor's packed uint32 columns vs the
// interned-string tuple layout it replaced, at 1M tuples (200K under
// -quick). Acceptance: ≥ 2× reduction.
func (b *bench) e13() {
	sz := 100000
	if b.quick {
		sz = 20000
	}
	data := b.data(sz, 0.05)
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.AreaCodeToState} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 1.0, Seed: int64(3 + i),
		})
		if err != nil {
			b.fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	dir, err := os.MkdirTemp("", "cfdbench-e13-")
	if err != nil {
		b.fatal(err)
	}
	defer os.RemoveAll(dir)

	// Same driver as e10: n CT updates as ChangeSets of size batch split
	// across writers on disjoint key ranges, pass counter keeping every
	// revisit a real flip.
	pass := 0
	mutateBatched := func(m *incremental.Monitor, n, batch, writers int) time.Duration {
		pass++
		vals := [2]string{fmt.Sprintf("GAA%d", pass), fmt.Sprintf("GBB%d", pass)}
		perW := n / writers
		span := sz / writers
		var wg sync.WaitGroup
		errs := make([]error, writers)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := w * span
				for done := 0; done < perW; {
					sz := batch
					if rest := perW - done; rest < sz {
						sz = rest
					}
					var cs incremental.ChangeSet
					for i := 0; i < sz; i++ {
						op := done + i
						cs.Update(int64(base+op%span), "CT", vals[(op+op/span)%2])
					}
					if _, err := m.Apply(&cs); err != nil {
						errs[w] = err
						return
					}
					done += sz
				}
			}(w)
		}
		wg.Wait()
		d := time.Since(start)
		for _, err := range errs {
			if err != nil {
				b.fatal(err)
			}
		}
		return d
	}
	best := func(n, batch, writers int, m *incremental.Monitor) measurement {
		out := measurement{d: time.Duration(1<<63 - 1)}
		for r := 0; r < b.repeat || r == 0; r++ {
			if d := mutateBatched(m, n, batch, writers) / time.Duration(n); d < out.d {
				out = measurement{d: d}
			}
		}
		return out
	}

	nSingle, nBatch := 320, 3200
	if b.quick {
		nSingle, nBatch = 160, 1600
	}

	// Baseline: window off, every op pays its own append + fsync.
	moff, err := incremental.Load(data.Dirty, sigma, incremental.Options{
		Durable: filepath.Join(dir, "off"), Fsync: true,
	})
	if err != nil {
		b.fatal(err)
	}
	offSingle := best(nSingle, 1, 4, moff)
	b.record(fmt.Sprintf("e13/SZ=%d/fsync/gc=off/writers=4", sz), offSingle)
	batched := best(nBatch, 16, 4, moff)
	b.record(fmt.Sprintf("e13/SZ=%d/fsync/batch=16/writers=4", sz), batched)
	if err := moff.Close(); err != nil {
		b.fatal(err)
	}

	// Window on: op-bounded, no deliberate delay — coalescing is driven
	// by writers stacking up behind the in-flight fsync.
	mon, err := incremental.Load(data.Dirty, sigma, incremental.Options{
		Durable: filepath.Join(dir, "on"), Fsync: true,
		GroupCommit: incremental.GroupCommit{MaxOps: 512},
	})
	if err != nil {
		b.fatal(err)
	}
	onByWriters := map[int]measurement{}
	for _, writers := range []int{1, 4, 16} {
		m := best(nSingle, 1, writers, mon)
		onByWriters[writers] = m
		b.record(fmt.Sprintf("e13/SZ=%d/fsync/gc=on/writers=%d", sz, writers), m)
	}
	if err := mon.Close(); err != nil {
		b.fatal(err)
	}

	// Delay variant: a deliberate 200µs grace period fills the window to
	// the full writer population even on devices whose fsync is too fast
	// to gather company on its own (the self-tuning window's size tracks
	// the fsync duration, so cheap fsyncs mean small windows — and cheap
	// per-op costs, which is why both configurations are worth showing).
	mdl, err := incremental.Load(data.Dirty, sigma, incremental.Options{
		Durable: filepath.Join(dir, "delay"), Fsync: true,
		GroupCommit: incremental.GroupCommit{MaxDelay: 200 * time.Microsecond, MaxOps: 512},
	})
	if err != nil {
		b.fatal(err)
	}
	delay16 := best(nSingle, 1, 16, mdl)
	b.record(fmt.Sprintf("e13/SZ=%d/fsync/gc=delay/writers=16", sz), delay16)
	if err := mdl.Close(); err != nil {
		b.fatal(err)
	}

	// Part two: tuple-store memory. Build the two layouts side by side
	// from the same rows and compare live heap deltas. Byte counts (not
	// durations) are recorded, so the series are deterministic.
	nMem := 1000000
	if b.quick {
		nMem = 200000
	}
	heapBytes := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	src := data.Dirty.Tuples
	width := len(src[0])

	before := heapBytes()
	idIn := relation.NewInterner()
	idStore := make(map[int64][]uint32, nMem)
	for i := 0; i < nMem; i++ {
		idStore[int64(i)] = idIn.AppendIDs(make([]uint32, 0, width), src[i%len(src)])
	}
	idTotal := heapBytes() - before

	before = heapBytes()
	strIn := relation.NewInterner()
	strStore := make(map[int64]relation.Tuple, nMem)
	for i := 0; i < nMem; i++ {
		// The replaced layout: one []Value per tuple, each element an
		// interned string header. (InternTuple would hand back the shared
		// source slice once its values are canonical, hiding the cost.)
		tp := make(relation.Tuple, width)
		for j, v := range src[i%len(src)] {
			tp[j] = strIn.Intern(v)
		}
		strStore[int64(i)] = tp
	}
	strTotal := heapBytes() - before
	runtime.KeepAlive(idStore)
	runtime.KeepAlive(strStore)

	idPer := idTotal / uint64(nMem)
	strPer := strTotal / uint64(nMem)
	// Total bytes ride in the duration slot (1 byte = 1ns) so the CI
	// gate tracks memory regressions with the same ±tolerance as time.
	b.record(fmt.Sprintf("e13/N=%d/mem/idcols", nMem), measurement{d: time.Duration(idTotal), allocs: idPer})
	b.record(fmt.Sprintf("e13/N=%d/mem/strtuples", nMem), measurement{d: time.Duration(strTotal), allocs: strPer})

	b.header(fmt.Sprintf("E13: group commit + ID columns (SZ = %d, 3 CFDs, durable+fsync)", sz),
		"series", "writers", "µs/op", "ops/sec")
	us := func(m measurement) string { return fmt.Sprintf("%.1f", float64(m.d.Nanoseconds())/1e3) }
	rate := func(m measurement) string {
		if m.d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", 1e9/float64(m.d.Nanoseconds()))
	}
	b.row("gc off, single-op", "4", us(offSingle), rate(offSingle))
	for _, writers := range []int{1, 4, 16} {
		m := onByWriters[writers]
		b.row("gc on, single-op", fmt.Sprint(writers), us(m), rate(m))
	}
	b.row("gc delay=200µs, single-op", "16", us(delay16), rate(delay16))
	b.row("batched (batch=16)", "4", us(batched), rate(batched))
	b.row("gc on vs off (4 writers)", "-",
		fmt.Sprintf("%.1fx", float64(offSingle.d)/float64(onByWriters[4].d)), "-")
	best16 := onByWriters[16]
	if delay16.d < best16.d {
		best16 = delay16
	}
	b.row("gc best (16 writers) vs batched", "-",
		fmt.Sprintf("%.1fx (want ≤ ~2x on sync-bound devices)", float64(best16.d)/float64(batched.d)), "-")

	b.header(fmt.Sprintf("E13: tuple-store memory (N = %d, %d attrs)", nMem, width),
		"layout", "bytes/tuple", "total MB")
	mb := func(n uint64) string { return fmt.Sprintf("%.1f", float64(n)/1e6) }
	b.row("value-ID columns", fmt.Sprint(idPer), mb(idTotal))
	b.row("interned-string tuples", fmt.Sprint(strPer), mb(strTotal))
	if idPer > 0 {
		b.row("reduction", fmt.Sprintf("%.1fx (want ≥ 2x)", float64(strPer)/float64(idPer)), "-")
	}
}
