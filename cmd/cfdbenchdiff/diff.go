package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// result mirrors one cfdbench -json measurement.
type result struct {
	Name   string `json:"name"`
	NsOp   int64  `json:"ns_per_op"`
	Allocs uint64 `json:"allocs"`
}

func readResults(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// minMerge folds several runs of the same workload into one series set,
// keeping the fastest ns/op per series. Scheduler noise, GC pauses and
// shared-runner contention only ever inflate a timing, so the min across
// independent runs is the estimator closest to the code's true cost —
// and unlike a mean it converges as runs are added. Series order follows
// first appearance.
func minMerge(runs ...[]result) []result {
	var merged []result
	idx := make(map[string]int)
	for _, run := range runs {
		for _, r := range run {
			if i, ok := idx[r.Name]; ok {
				if r.NsOp < merged[i].NsOp {
					merged[i] = r
				}
				continue
			}
			idx[r.Name] = len(merged)
			merged = append(merged, r)
		}
	}
	return merged
}

// rowStatus classifies one series of the comparison.
type rowStatus int

const (
	statusOK rowStatus = iota
	statusImproved
	statusRegressed
	statusMissing // in baseline, absent from current — fails the gate
	statusNew     // in current only — informational
)

func (s rowStatus) String() string {
	switch s {
	case statusOK:
		return "ok"
	case statusImproved:
		return "improved"
	case statusRegressed:
		return "REGRESSED"
	case statusMissing:
		return "MISSING"
	case statusNew:
		return "new"
	}
	return "?"
}

type row struct {
	Name          string
	BaseNs, CurNs int64
	Delta         float64 // (cur-base)/base; NaN-free: 0 when not comparable
	Status        rowStatus
	comparable_   bool
}

// report is the full comparison, ordered by the baseline file (new
// series appended in current-file order).
type report struct {
	Rows        []row
	Tolerance   float64
	FloorNs     int64
	Regressions int
}

func (r *report) Regressed() bool { return r.Regressions > 0 }

// diff compares current against baseline: a series regresses when its
// ns/op exceeds baseline × (1 + tolerance) AND the absolute slowdown is
// at least floorNs. The floor keeps microsecond-scale series (an fsync,
// a single WAL append) from flapping the gate on scheduler jitter, where
// a ±30% swing is a few hundred nanoseconds of noise — they stay in the
// table but only millisecond-scale drift can fail CI. An improvement
// beyond the same band is labeled, everything inside it is "ok".
func diff(baseline, current []result, tolerance float64, floorNs int64) *report {
	cur := make(map[string]result, len(current))
	for _, c := range current {
		cur[c.Name] = c
	}
	rep := &report{Tolerance: tolerance, FloorNs: floorNs}
	seen := make(map[string]bool, len(baseline))
	for _, b := range baseline {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			rep.Rows = append(rep.Rows, row{Name: b.Name, BaseNs: b.NsOp, Status: statusMissing})
			rep.Regressions++
			continue
		}
		rw := row{Name: b.Name, BaseNs: b.NsOp, CurNs: c.NsOp, comparable_: true}
		if b.NsOp > 0 {
			rw.Delta = float64(c.NsOp-b.NsOp) / float64(b.NsOp)
		}
		absNs := c.NsOp - b.NsOp
		switch {
		case rw.Delta > tolerance && absNs >= floorNs:
			rw.Status = statusRegressed
			rep.Regressions++
		case rw.Delta < -tolerance && -absNs >= floorNs:
			rw.Status = statusImproved
		default:
			rw.Status = statusOK
		}
		rep.Rows = append(rep.Rows, rw)
	}
	for _, c := range current {
		if !seen[c.Name] {
			rep.Rows = append(rep.Rows, row{Name: c.Name, CurNs: c.NsOp, Status: statusNew})
		}
	}
	return rep
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// Markdown renders the comparison as a GitHub-flavored table plus a
// one-line verdict.
func (r *report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### cfdbench vs baseline (±%.0f%% ns/op tolerance, %s absolute floor)\n\n",
		r.Tolerance*100, fmtNs(r.FloorNs))
	sb.WriteString("| series | baseline | current | delta | status |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, rw := range r.Rows {
		base, cur, delta := "—", "—", "—"
		if rw.Status != statusNew {
			base = fmtNs(rw.BaseNs)
		}
		if rw.Status != statusMissing {
			cur = fmtNs(rw.CurNs)
		}
		if rw.comparable_ {
			delta = fmt.Sprintf("%+.1f%%", rw.Delta*100)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s |\n", rw.Name, base, cur, delta, rw.Status)
	}
	if r.Regressions > 0 {
		fmt.Fprintf(&sb, "\n**%d series regressed.**\n", r.Regressions)
	} else {
		sb.WriteString("\nNo regressions.\n")
	}
	return sb.String()
}
