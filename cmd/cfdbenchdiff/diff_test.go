package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiffClassification(t *testing.T) {
	baseline := []result{
		{Name: "steady", NsOp: 100_000_000},
		{Name: "slower", NsOp: 100_000_000},
		{Name: "faster", NsOp: 100_000_000},
		{Name: "gone", NsOp: 100_000_000},
	}
	current := []result{
		{Name: "steady", NsOp: 110_000_000}, // +10%: inside the band
		{Name: "slower", NsOp: 140_000_000}, // +40%: regression
		{Name: "faster", NsOp: 50_000_000},  // -50%: improvement
		{Name: "brandnew", NsOp: 1_000_000}, // baseline-less: informational
	}
	rep := diff(baseline, current, 0.30, 100_000)

	want := map[string]rowStatus{
		"steady":   statusOK,
		"slower":   statusRegressed,
		"faster":   statusImproved,
		"gone":     statusMissing,
		"brandnew": statusNew,
	}
	if len(rep.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(want))
	}
	for _, rw := range rep.Rows {
		if rw.Status != want[rw.Name] {
			t.Errorf("%s: status %v, want %v", rw.Name, rw.Status, want[rw.Name])
		}
	}
	// A missing series and a slowed series both count against the gate.
	if rep.Regressions != 2 {
		t.Errorf("Regressions = %d, want 2", rep.Regressions)
	}
	if !rep.Regressed() {
		t.Error("Regressed() = false with a regression present")
	}
}

func TestDiffAbsoluteFloor(t *testing.T) {
	// 2µs → 4µs is +100% but only 2µs absolute: jitter, not a regression.
	baseline := []result{{Name: "tiny", NsOp: 2_000}, {Name: "tinyfast", NsOp: 4_000}}
	current := []result{{Name: "tiny", NsOp: 4_000}, {Name: "tinyfast", NsOp: 2_000}}
	rep := diff(baseline, current, 0.30, 100_000)
	for _, rw := range rep.Rows {
		if rw.Status != statusOK {
			t.Errorf("%s: status %v, want ok under the 100µs floor", rw.Name, rw.Status)
		}
	}
	if rep.Regressed() {
		t.Error("sub-floor swing failed the gate")
	}
	// With the floor off, the same swing gates both ways.
	rep = diff(baseline, current, 0.30, 0)
	if rep.Regressions != 1 {
		t.Errorf("floor=0: Regressions = %d, want 1", rep.Regressions)
	}
}

func TestMinMerge(t *testing.T) {
	run1 := []result{{Name: "a", NsOp: 100, Allocs: 1}, {Name: "b", NsOp: 50, Allocs: 2}}
	run2 := []result{{Name: "b", NsOp: 80, Allocs: 3}, {Name: "a", NsOp: 60, Allocs: 4}, {Name: "c", NsOp: 9}}
	got := minMerge(run1, run2)
	want := []result{{Name: "a", NsOp: 60, Allocs: 4}, {Name: "b", NsOp: 50, Allocs: 2}, {Name: "c", NsOp: 9}}
	if len(got) != len(want) {
		t.Fatalf("got %d series, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := minMerge(run1); len(out) != 2 || out[0] != run1[0] {
		t.Errorf("single-run merge changed the input: %+v", out)
	}
}

func TestDiffOrderFollowsBaseline(t *testing.T) {
	baseline := []result{{Name: "b", NsOp: 1e6}, {Name: "a", NsOp: 1e6}}
	current := []result{{Name: "a", NsOp: 1e6}, {Name: "b", NsOp: 1e6}, {Name: "z", NsOp: 1e6}}
	rep := diff(baseline, current, 0.30, 0)
	var got []string
	for _, rw := range rep.Rows {
		got = append(got, rw.Name)
	}
	if strings.Join(got, ",") != "b,a,z" {
		t.Errorf("row order = %v, want baseline order with new series appended", got)
	}
}

func TestMarkdownReport(t *testing.T) {
	baseline := []result{{Name: "detect/direct", NsOp: 10_000_000}}
	current := []result{{Name: "detect/direct", NsOp: 20_000_000}}
	md := diff(baseline, current, 0.30, 100_000).Markdown()
	for _, frag := range []string{
		"| series | baseline | current | delta | status |",
		"| detect/direct | 10.0ms | 20.0ms | +100.0% | REGRESSED |",
		"**1 series regressed.**",
	} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
	md = diff(baseline, baseline, 0.30, 100_000).Markdown()
	if !strings.Contains(md, "No regressions.") {
		t.Errorf("clean report missing verdict:\n%s", md)
	}
}

func TestReadResults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	in := []result{{Name: "x", NsOp: 42, Allocs: 7}}
	data, _ := json.Marshal(in)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := readResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := readResults(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file: no error")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readResults(path); err == nil {
		t.Error("malformed JSON: no error")
	}
}

// TestDiffVanishedSeries pins the gate's behavior when a series
// disappears from the current run (a deleted or renamed benchmark): it
// fails the gate, renders with an em-dash current cell and no delta, and
// keeps counting alongside genuine slowdowns.
func TestDiffVanishedSeries(t *testing.T) {
	baseline := []result{
		{Name: "kept", NsOp: 10_000_000},
		{Name: "e12/SZ=20000/follower-catchup", NsOp: 20_000_000},
	}
	current := []result{{Name: "kept", NsOp: 10_000_000}}
	rep := diff(baseline, current, 0.30, 100_000)
	if rep.Regressions != 1 || !rep.Regressed() {
		t.Fatalf("vanished series: Regressions = %d, want 1", rep.Regressions)
	}
	md := rep.Markdown()
	want := "| e12/SZ=20000/follower-catchup | 20.0ms | — | — | MISSING |"
	if !strings.Contains(md, want) {
		t.Errorf("markdown missing vanished row %q:\n%s", want, md)
	}
	if !strings.Contains(md, "**1 series regressed.**") {
		t.Errorf("vanished series did not reach the verdict:\n%s", md)
	}
	// A vanished series cannot be absorbed by min-merging more runs: the
	// second run mentioning it heals the gate, as resuming the series
	// should.
	rep = diff(baseline, minMerge(current, baseline), 0.30, 100_000)
	if rep.Regressed() {
		t.Error("series present in one of the merged runs still failed the gate")
	}
}

// TestReadResultsMalformed walks the malformed-input space: truncated
// JSON, a JSON value of the wrong shape, and an empty file must all
// surface errors naming the file — never a silent empty series list the
// diff would then report as all-MISSING.
func TestReadResultsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json": `[{"name": "x", "ns_per_op": 42`,
		"object.json":    `{"name": "x", "ns_per_op": 42}`,
		"scalar.json":    `42`,
		"empty.json":     ``,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := readResults(path)
		if err == nil {
			t.Errorf("%s: malformed input accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error %q does not name the file", name, err)
		}
	}
	// A JSON null parses to an empty-but-valid run; the diff layer then
	// reports every baseline series as vanished rather than erroring.
	path := filepath.Join(dir, "null.json")
	if err := os.WriteFile(path, []byte("null"), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := readResults(path)
	if err != nil || len(rs) != 0 {
		t.Fatalf("null run: %v, %d series", err, len(rs))
	}
	rep := diff([]result{{Name: "a", NsOp: 1}}, rs, 0.30, 0)
	if rep.Regressions != 1 {
		t.Errorf("null run vs baseline: Regressions = %d, want 1", rep.Regressions)
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[int64]string{
		999:           "999ns",
		1_500:         "1.5µs",
		2_300_000:     "2.3ms",
		1_250_000_000: "1.25s",
	}
	for ns, want := range cases {
		if got := fmtNs(ns); got != want {
			t.Errorf("fmtNs(%d) = %q, want %q", ns, got, want)
		}
	}
}
