// Command cfdbenchdiff compares cfdbench -json result files and fails
// when a series regressed beyond a tolerance — the CI gate behind
// BENCH_baseline.json.
//
// Usage:
//
//	cfdbenchdiff -baseline BENCH_baseline.json -current bench.json
//	cfdbenchdiff -baseline ... -current run1.json,run2.json
//	cfdbenchdiff -current run1.json,run2.json -min-out BENCH_baseline.json
//
// -current takes one or more comma-separated result files; several runs
// are min-merged per series before comparing, because noise only ever
// inflates a timing. With -min-out the merged series are written as JSON
// to the given path instead of compared (how `make bench-baseline`
// folds repeated runs into a steadier baseline).
//
// The comparison output is a GitHub-flavored markdown table of
// per-series deltas (suitable for $GITHUB_STEP_SUMMARY). The exit
// status is 1 when any series present in the baseline is slower than
// baseline × (1 + tolerance) by at least -floor nanoseconds, or
// disappeared from the current run; series that are new in the current
// run are listed but never fail the gate. The absolute floor (default
// 100µs) keeps microsecond-scale series — where a 30% swing is
// scheduler noise — informational rather than gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline cfdbench -json file (checked in)")
		currentPath  = flag.String("current", "", "comma-separated cfdbench -json files to compare, min-merged per series (required)")
		tolerance    = flag.Float64("tolerance", 0.30, "allowed ns/op slowdown fraction before a series counts as regressed")
		floorNs      = flag.Int64("floor", 100_000, "minimum absolute ns/op slowdown to count as a regression (keeps µs-scale series from gating on jitter)")
		minOut       = flag.String("min-out", "", "write the min-merged current series as JSON to this path and exit (no comparison)")
	)
	flag.Parse()
	if *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var runs [][]result
	for _, path := range strings.Split(*currentPath, ",") {
		rs, err := readResults(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfdbenchdiff:", err)
			os.Exit(2)
		}
		runs = append(runs, rs)
	}
	current := minMerge(runs...)

	if *minOut != "" {
		data, err := json.MarshalIndent(current, "", "  ")
		if err == nil {
			err = os.WriteFile(*minOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfdbenchdiff:", err)
			os.Exit(2)
		}
		return
	}

	baseline, err := readResults(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdbenchdiff:", err)
		os.Exit(2)
	}
	report := diff(baseline, current, *tolerance, *floorNs)
	fmt.Print(report.Markdown())
	if report.Regressed() {
		fmt.Fprintf(os.Stderr, "cfdbenchdiff: %d series regressed beyond %.0f%% tolerance\n",
			report.Regressions, *tolerance*100)
		os.Exit(1)
	}
}
