// Command cfddetect finds CFD violations in a CSV instance — the paper's
// Section 4 detection pipeline as a tool.
//
// Usage:
//
//	cfddetect -data tax.csv -cfds cfds.txt
//	cfddetect -data tax.csv -cfds cfds.txt -strategy merged -form cnf
//	cfddetect -data tax.csv -cfds cfds.txt -show-sql
//	cfddetect -data tax.csv -cfds cfds.txt -watch changes.csv
//
// With -watch, the instance is loaded into an incremental Monitor and the
// named CSV change stream ('-' for stdin) is tailed: each record is
// op,args... — "insert,v1,...,vn", "delete,KEY" or "update,KEY,ATTR,VALUE"
// — and the violation delta each change causes is printed as it happens,
// instead of re-detecting from scratch. Adding -wal-dir journals the
// stream: every applied change is written ahead to a durable change log,
// and a later -watch run over the same directory resumes from the logged
// state instead of re-loading the CSV.
//
// With -batch N (N > 1), stream records are coalesced into ChangeSets of
// up to N ops applied through one Monitor.Apply each: one shard pass and
// one WAL record (one fsync) per batch instead of per change, at the
// cost of per-op delta attribution — the printed delta is the batch's
// combined net change.
//
// With -mine (requires -watch), a streaming CFD miner rides the same
// monitor: after every applied change the mined set is re-scored
// incrementally, and embedded FDs are printed as they appear (+),
// change form (~) and retire (-); the final mined set is dumped after
// the stream. -mine-maxlhs, -mine-support and -mine-confidence tune it.
//
// Diagnostics go to stderr through log/slog: -log-level sets the
// threshold (debug, info, warn, error) and -log-json switches the
// stream to JSON lines; results stay on stdout.
//
// Exit status is 2 on error, 1 when violations were found (for -watch:
// when violations remain live after the stream), 0 when clean.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV instance to check (required)")
		cfdPath  = flag.String("cfds", "", "CFD file in text notation (required)")
		strategy = flag.String("strategy", "direct", "detection strategy: direct | sql | merged")
		form     = flag.String("form", "dnf", "SQL WHERE form: cnf | dnf")
		showSQL  = flag.Bool("show-sql", false, "print the generated detection queries")
		explain  = flag.Bool("explain", false, "print the physical query plans (nested loop vs hash join)")
		maxShow  = flag.Int("max", 10, "max violations to print per CFD")
		watch    = flag.String("watch", "", "apply a CSV change stream incrementally ('-' = stdin) instead of one-shot detection")
		walDir   = flag.String("wal-dir", "", "with -watch: journal the stream to this durable WAL directory and resume from it on later runs")
		batch    = flag.Int("batch", 1, "with -watch: coalesce up to this many stream records into one ChangeSet per apply (1 = per-op deltas)")
		mine     = flag.Bool("mine", false, "with -watch: stream CFD discovery alongside monitoring, printing mined CFDs as they appear and retire")
		mineLHS  = flag.Int("mine-maxlhs", 1, "with -mine: bound on candidate LHS size")
		mineSup  = flag.Int("mine-support", 2, "with -mine: minimum pattern support")
		mineConf = flag.Float64("mine-confidence", 1, "with -mine: minimum pattern confidence (1 = exact)")
		logLevel = flag.String("log-level", "info", "log threshold: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "write logs to stderr as JSON lines instead of text")
	)
	flag.Parse()
	lg, err := cliutil.NewLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfddetect:", err)
		os.Exit(2)
	}
	if *walDir != "" && *watch == "" {
		lg.Error("-wal-dir only applies to -watch mode")
		os.Exit(2)
	}
	if *mine && *watch == "" {
		lg.Error("-mine only applies to -watch mode")
		os.Exit(2)
	}
	if *batch < 1 {
		lg.Error("-batch must be >= 1")
		os.Exit(2)
	}
	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var code int
	if *watch != "" {
		var mineCfg *repro.DiscoveryConfig
		if *mine {
			mineCfg = &repro.DiscoveryConfig{MaxLHS: *mineLHS, MinSupport: *mineSup, MinConfidence: *mineConf}
		}
		code, err = runWatch(*dataPath, *cfdPath, *watch, *walDir, *batch, mineCfg, os.Stdout)
	} else {
		code, err = run(*dataPath, *cfdPath, *strategy, *form, *showSQL, *explain, *maxShow)
	}
	if err != nil {
		lg.Error("run failed", "error", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// runWatch loads the instance into an incremental Monitor (recovering
// from walDir when it holds previous state) and tails the change stream,
// printing each change's violation delta. With batch > 1, records are
// coalesced into ChangeSets of up to that many ops, each applied (and
// journaled, and fsynced) as one unit. A non-nil mineCfg attaches a
// streaming miner whose appear/retire changes print after every delta.
func runWatch(dataPath, cfdPath, watchPath, walDir string, batch int, mineCfg *repro.DiscoveryConfig, out io.Writer) (code int, err error) {
	sigma, err := cliutil.LoadCFDs(cfdPath)
	if err != nil {
		return 2, err
	}
	var m *repro.Monitor
	if walDir != "" {
		// A previous run's state lives in the WAL directory: the CSV is
		// not parsed (or required) again.
		m, err = repro.OpenMonitor(sigma, repro.MonitorOptions{Durable: walDir})
		if err != nil && !errors.Is(err, repro.ErrNoMonitorState) {
			return 2, err
		}
	}
	if m == nil {
		// Seed load and monitor share one value pool (see cliutil).
		rel, pool, err := cliutil.LoadCSVPooled(dataPath)
		if err != nil {
			return 2, err
		}
		m, err = repro.LoadMonitor(rel, sigma, repro.MonitorOptions{Durable: walDir, Intern: pool})
		if err != nil {
			return 2, err
		}
	}
	// A failed Close means journaled records never reached the disk — the
	// printed deltas would silently vanish from the next resume, so it
	// must override a success exit.
	defer func() {
		if cerr := m.Close(); cerr != nil && err == nil {
			code, err = 2, fmt.Errorf("flushing journal: %w", cerr)
		}
	}()
	source := ""
	if m.Recovered() {
		source = fmt.Sprintf(" (resumed from %s)", walDir)
	}
	fmt.Fprintf(out, "monitoring %d tuples against %d CFDs; %d live violations%s\n",
		m.Len(), len(sigma), m.ViolationCount(), source)
	var miner *repro.CFDMiner
	if mineCfg != nil {
		miner, err = repro.WatchDiscovery(m, *mineCfg)
		if err != nil {
			return 2, err
		}
		ds, err := miner.Mined()
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "mining: %d CFDs hold on the loaded instance (max LHS %d, min support %d)\n",
			len(ds), miner.Config().MaxLHS, miner.Config().MinSupport)
	}

	var src io.Reader = os.Stdin
	if watchPath != "-" {
		f, err := os.Open(watchPath)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	cr := csv.NewReader(src)
	cr.FieldsPerRecord = -1
	// printDelta is the per-apply report hook: the violation delta, then —
	// when mining — the incremental re-score's mined-set changes.
	printDelta := func(d *repro.ViolationDelta) {
		for _, c := range d.Added {
			fmt.Fprintf(out, "  + %s\n", c)
		}
		for _, c := range d.Removed {
			fmt.Fprintf(out, "  - %s\n", c)
		}
		if miner != nil {
			for _, ch := range miner.Refresh() {
				fmt.Fprintf(out, "  mine %s\n", ch)
			}
		}
	}
	if batch > 1 {
		if err := watchBatched(m, cr, batch, out, printDelta); err != nil {
			return 2, err
		}
		return watchEpilogue(m, miner, walDir, out)
	}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 2, fmt.Errorf("change stream line %d: %w", line, err)
		}
		if len(rec) == 0 || rec[0] == "" || strings.HasPrefix(rec[0], "#") {
			continue
		}
		op, err := parseStreamRecord(rec, line)
		if err != nil {
			return 2, err
		}
		switch op.Kind {
		case repro.OpInsert:
			key, d, err := m.Insert(op.Tuple)
			if err != nil {
				return 2, fmt.Errorf("change stream line %d: %w", line, err)
			}
			fmt.Fprintf(out, "insert -> key %d\n", key)
			printDelta(d)
		case repro.OpDelete:
			d, err := m.Delete(op.Key)
			if err != nil {
				return 2, fmt.Errorf("change stream line %d: %w", line, err)
			}
			fmt.Fprintf(out, "delete key %d\n", op.Key)
			printDelta(d)
		case repro.OpUpdate:
			d, err := m.Update(op.Key, op.Attr, op.Value)
			if err != nil {
				return 2, fmt.Errorf("change stream line %d: %w", line, err)
			}
			fmt.Fprintf(out, "update key %d: %s = %s\n", op.Key, op.Attr, op.Value)
			printDelta(d)
		}
	}
	return watchEpilogue(m, miner, walDir, out)
}

// parseStreamRecord parses one change-stream record — the grammar shared
// by the per-op and batched watch loops — into a ChangeSet op.
func parseStreamRecord(rec []string, line int) (repro.ChangeOp, error) {
	switch rec[0] {
	case "insert":
		return repro.ChangeOp{Kind: repro.OpInsert, Tuple: repro.Tuple(rec[1:])}, nil
	case "delete":
		if len(rec) != 2 {
			return repro.ChangeOp{}, fmt.Errorf("change stream line %d: delete wants 1 argument", line)
		}
		key, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return repro.ChangeOp{}, fmt.Errorf("change stream line %d: bad key %q", line, rec[1])
		}
		return repro.ChangeOp{Kind: repro.OpDelete, Key: key}, nil
	case "update":
		if len(rec) != 4 {
			return repro.ChangeOp{}, fmt.Errorf("change stream line %d: update wants 3 arguments", line)
		}
		key, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return repro.ChangeOp{}, fmt.Errorf("change stream line %d: bad key %q", line, rec[1])
		}
		return repro.ChangeOp{Kind: repro.OpUpdate, Key: key, Attr: rec[2], Value: rec[3]}, nil
	default:
		return repro.ChangeOp{}, fmt.Errorf("change stream line %d: unknown op %q", line, rec[0])
	}
}

// watchEpilogue prints the final tally (and, when mining, the final
// mined set), folds a journaled stream into a fresh generation, and maps
// satisfaction onto the exit code.
func watchEpilogue(m *repro.Monitor, miner *repro.CFDMiner, walDir string, out io.Writer) (int, error) {
	fmt.Fprintf(out, "final: %d tuples, %d live violations, satisfied=%v\n",
		m.Len(), m.ViolationCount(), m.Satisfied())
	if miner != nil {
		miner.Refresh()
		ds, err := miner.Mined()
		if err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "final mined set: %d CFDs\n", len(ds))
		if len(ds) > 0 {
			fmt.Fprint(out, repro.FormatCFDSet(repro.DiscoveredToCFDs(ds)))
		}
	}
	if walDir != "" {
		// Fold the stream into a fresh generation: without this, every
		// resume would replay the concatenation of all previous runs.
		if serr := m.ForceSnapshot(); serr != nil {
			return 2, fmt.Errorf("final snapshot: %w", serr)
		}
	}
	if m.Satisfied() {
		return 0, nil
	}
	return 1, nil
}

// watchBatched coalesces stream records into ChangeSets of up to batch
// ops, each applied through one Monitor.Apply: one shard pass, one WAL
// record, one fsync. The printed delta is the batch's combined net
// change; inserted keys are echoed in op order.
func watchBatched(m *repro.Monitor, cr *csv.Reader, batch int, out io.Writer, printDelta func(*repro.ViolationDelta)) error {
	var cs repro.ChangeSet
	flush := func(endLine int) error {
		if cs.Len() == 0 {
			return nil
		}
		d, err := m.Apply(&cs)
		if err != nil {
			return fmt.Errorf("change stream batch ending at line %d: %w", endLine, err)
		}
		fmt.Fprintf(out, "batch of %d ops", cs.Len())
		for i := range cs.Ops {
			if cs.Ops[i].Kind == repro.OpInsert {
				fmt.Fprintf(out, " +key %d", cs.Ops[i].Key)
			}
		}
		fmt.Fprintln(out)
		printDelta(d)
		cs = repro.ChangeSet{}
		return nil
	}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return flush(line)
		}
		if err != nil {
			return fmt.Errorf("change stream line %d: %w", line, err)
		}
		if len(rec) == 0 || rec[0] == "" || strings.HasPrefix(rec[0], "#") {
			continue
		}
		op, err := parseStreamRecord(rec, line)
		if err != nil {
			return err
		}
		cs.Ops = append(cs.Ops, op)
		if cs.Len() >= batch {
			if err := flush(line); err != nil {
				return err
			}
		}
	}
}

func run(dataPath, cfdPath, strategy, form string, showSQL, explain bool, maxShow int) (int, error) {
	rel, sigma, err := cliutil.LoadInputs(dataPath, cfdPath)
	if err != nil {
		return 2, err
	}
	fmt.Printf("loaded %d tuples, %d CFDs\n", rel.Len(), len(sigma))

	// Consistency first — the paper's point: inconsistent Σ needs no data
	// validation at all.
	ok, _, err := repro.Consistent(rel.Schema, sigma)
	if err != nil {
		return 2, err
	}
	if !ok {
		fmt.Println("the CFD set is INCONSISTENT: no nonempty instance can satisfy it; fix the constraints first")
		return 1, nil
	}

	opts := repro.DetectOptions{}
	switch strategy {
	case "direct":
		opts.Strategy = repro.StrategyDirect
	case "sql":
		opts.Strategy = repro.StrategySQLPerCFD
	case "merged":
		opts.Strategy = repro.StrategySQLMerged
	default:
		return 2, fmt.Errorf("unknown strategy %q", strategy)
	}
	switch form {
	case "cnf":
		opts.Form = repro.FormCNF
	case "dnf":
		opts.Form = repro.FormDNF
	default:
		return 2, fmt.Errorf("unknown form %q", form)
	}

	if showSQL {
		for i, c := range sigma {
			qc, err := repro.GenerateQC(c, "R", fmt.Sprintf("T%d", i), opts.Form)
			if err != nil {
				return 2, err
			}
			qv, err := repro.GenerateQV(c, "R", fmt.Sprintf("T%d", i), opts.Form)
			if err != nil {
				return 2, err
			}
			fmt.Printf("-- CFD %d: QC\n%s\n-- CFD %d: QV\n%s\n\n", i, qc, i, qv)
		}
	}
	if explain {
		for i, c := range sigma {
			plan, err := repro.ExplainDetection(rel, c, opts.Form)
			if err != nil {
				return 2, err
			}
			fmt.Printf("-- CFD %d plans:\n%s\n", i, plan)
		}
	}

	res, err := repro.Detect(rel, sigma, opts)
	if err != nil {
		return 2, err
	}
	if res.Clean() {
		fmt.Println("no violations: the instance satisfies Σ")
		return 0, nil
	}
	for i, v := range res.PerCFD {
		if len(v.ConstTuples) == 0 && len(v.VariableKeys) == 0 {
			continue
		}
		fmt.Printf("CFD %d violated: %d constant-violating tuples, %d conflicting groups\n",
			i, len(v.ConstTuples), len(v.VariableKeys))
		for j, t := range v.ConstTuples {
			if j >= maxShow {
				fmt.Printf("  ... %d more tuples\n", len(v.ConstTuples)-maxShow)
				break
			}
			fmt.Printf("  tuple %d: %s\n", t, strings.Join(rel.Tuples[t], ", "))
		}
		for j, k := range v.VariableKeys {
			if j >= maxShow {
				fmt.Printf("  ... %d more groups\n", len(v.VariableKeys)-maxShow)
				break
			}
			fmt.Printf("  group X = (%s)\n", strings.Join(k, ", "))
		}
	}
	return 1, nil
}
