// Command cfddetect finds CFD violations in a CSV instance — the paper's
// Section 4 detection pipeline as a tool.
//
// Usage:
//
//	cfddetect -data tax.csv -cfds cfds.txt
//	cfddetect -data tax.csv -cfds cfds.txt -strategy merged -form cnf
//	cfddetect -data tax.csv -cfds cfds.txt -show-sql
//
// Exit status is 2 on error, 1 when violations were found, 0 when clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV instance to check (required)")
		cfdPath  = flag.String("cfds", "", "CFD file in text notation (required)")
		strategy = flag.String("strategy", "direct", "detection strategy: direct | sql | merged")
		form     = flag.String("form", "dnf", "SQL WHERE form: cnf | dnf")
		showSQL  = flag.Bool("show-sql", false, "print the generated detection queries")
		explain  = flag.Bool("explain", false, "print the physical query plans (nested loop vs hash join)")
		maxShow  = flag.Int("max", 10, "max violations to print per CFD")
	)
	flag.Parse()
	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(*dataPath, *cfdPath, *strategy, *form, *showSQL, *explain, *maxShow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfddetect:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(dataPath, cfdPath, strategy, form string, showSQL, explain bool, maxShow int) (int, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return 2, err
	}
	rel, err := repro.ReadCSV(f, "R")
	f.Close()
	if err != nil {
		return 2, err
	}
	text, err := os.ReadFile(cfdPath)
	if err != nil {
		return 2, err
	}
	sigma, err := repro.ParseCFDSet(string(text))
	if err != nil {
		return 2, err
	}
	fmt.Printf("loaded %d tuples, %d CFDs\n", rel.Len(), len(sigma))

	// Consistency first — the paper's point: inconsistent Σ needs no data
	// validation at all.
	ok, _, err := repro.Consistent(rel.Schema, sigma)
	if err != nil {
		return 2, err
	}
	if !ok {
		fmt.Println("the CFD set is INCONSISTENT: no nonempty instance can satisfy it; fix the constraints first")
		return 1, nil
	}

	opts := repro.DetectOptions{}
	switch strategy {
	case "direct":
		opts.Strategy = repro.StrategyDirect
	case "sql":
		opts.Strategy = repro.StrategySQLPerCFD
	case "merged":
		opts.Strategy = repro.StrategySQLMerged
	default:
		return 2, fmt.Errorf("unknown strategy %q", strategy)
	}
	switch form {
	case "cnf":
		opts.Form = repro.FormCNF
	case "dnf":
		opts.Form = repro.FormDNF
	default:
		return 2, fmt.Errorf("unknown form %q", form)
	}

	if showSQL {
		for i, c := range sigma {
			qc, err := repro.GenerateQC(c, "R", fmt.Sprintf("T%d", i), opts.Form)
			if err != nil {
				return 2, err
			}
			qv, err := repro.GenerateQV(c, "R", fmt.Sprintf("T%d", i), opts.Form)
			if err != nil {
				return 2, err
			}
			fmt.Printf("-- CFD %d: QC\n%s\n-- CFD %d: QV\n%s\n\n", i, qc, i, qv)
		}
	}
	if explain {
		for i, c := range sigma {
			plan, err := repro.ExplainDetection(rel, c, opts.Form)
			if err != nil {
				return 2, err
			}
			fmt.Printf("-- CFD %d plans:\n%s\n", i, plan)
		}
	}

	res, err := repro.Detect(rel, sigma, opts)
	if err != nil {
		return 2, err
	}
	if res.Clean() {
		fmt.Println("no violations: the instance satisfies Σ")
		return 0, nil
	}
	for i, v := range res.PerCFD {
		if len(v.ConstTuples) == 0 && len(v.VariableKeys) == 0 {
			continue
		}
		fmt.Printf("CFD %d violated: %d constant-violating tuples, %d conflicting groups\n",
			i, len(v.ConstTuples), len(v.VariableKeys))
		for j, t := range v.ConstTuples {
			if j >= maxShow {
				fmt.Printf("  ... %d more tuples\n", len(v.ConstTuples)-maxShow)
				break
			}
			fmt.Printf("  tuple %d: %s\n", t, strings.Join(rel.Tuples[t], ", "))
		}
		for j, k := range v.VariableKeys {
			if j >= maxShow {
				fmt.Printf("  ... %d more groups\n", len(v.VariableKeys)-maxShow)
				break
			}
			fmt.Printf("  group X = (%s)\n", strings.Join(k, ", "))
		}
	}
	return 1, nil
}
