package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

const custCSV = `CC,AC,PN,NM,STR,CT,ZIP
01,908,1111111,Mike,Tree Ave.,NYC,07974
01,908,1111111,Rick,Tree Ave.,NYC,07974
01,212,2222222,Joe,Elm Str.,NYC,01202
01,212,2222222,Jim,Elm Str.,NYC,02404
01,215,3333333,Ben,Oak Ave.,PHI,02394
44,131,4444444,Ian,High St.,EDI,EH4 1DT
`

const figure2CFDs = `
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
`

func writeFixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte(figure2CFDs), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, cfds
}

func TestRunFindsViolations(t *testing.T) {
	data, cfds := writeFixtures(t)
	for _, strategy := range []string{"direct", "sql", "merged"} {
		for _, form := range []string{"cnf", "dnf"} {
			code, err := run(data, cfds, strategy, form, false, false, 10)
			if err != nil {
				t.Fatalf("%s/%s: %v", strategy, form, err)
			}
			if code != 1 {
				t.Errorf("%s/%s: exit = %d, want 1 (violations found)", strategy, form, code)
			}
		}
	}
}

func TestRunCleanInstance(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	// ϕ3 holds on the instance.
	if err := os.WriteFile(cfds, []byte("[CC=01, AC=215] -> [CT=PHI]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(data, cfds, "direct", "dnf", false, false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 for a satisfied set", code)
	}
}

func TestRunInconsistentSigma(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte("[CC] -> [CT=x]\n[CC] -> [CT=y]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(data, cfds, "direct", "dnf", false, false, 10)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 for an inconsistent Σ", code)
	}
}

func TestRunShowSQL(t *testing.T) {
	data, cfds := writeFixtures(t)
	if _, err := run(data, cfds, "sql", "dnf", true, true, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	data, cfds := writeFixtures(t)
	if _, err := run("missing.csv", cfds, "direct", "dnf", false, false, 10); err == nil {
		t.Error("missing data file must error")
	}
	if _, err := run(data, "missing.txt", "direct", "dnf", false, false, 10); err == nil {
		t.Error("missing CFD file must error")
	}
	if _, err := run(data, cfds, "warp", "dnf", false, false, 10); err == nil {
		t.Error("unknown strategy must error")
	}
	if _, err := run(data, cfds, "direct", "xnf", false, false, 10); err == nil {
		t.Error("unknown form must error")
	}
}

func TestRunWatch(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	changes := filepath.Join(dir, "changes.csv")
	// Heal the seeded violations, then introduce and retire a fresh one.
	stream := `update,0,CT,MH
update,1,CT,MH
update,3,ZIP,01202
insert,01,908,5555555,Eve,Oak Ave.,NYC,07974
update,6,CT,MH
delete,6
`
	if err := os.WriteFile(changes, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runWatch(data, cfds, changes, "", 1, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (stream ends clean):\n%s", code, out.String())
	}
	for _, want := range []string{
		"monitoring 6 tuples against 2 CFDs",
		"- cfd 1 variable key", // healing t1/t2's CT conflict
		"insert -> key 6",
		"+ cfd 1 const tuple 6", // Eve's 908 number is not in MH
		"update key 6: CT = MH",
		"final: 6 tuples, 0 live violations, satisfied=true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("watch output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWatchDirtyFinal(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	changes := filepath.Join(dir, "changes.csv")
	if err := os.WriteFile(changes, []byte("insert,01,908,9999999,Zed,Elsewhere,NYC,00000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runWatch(data, cfds, changes, "", 1, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (violations remain):\n%s", code, out.String())
	}
}

// TestRunWatchBatched: with -batch > 1 the stream coalesces into
// ChangeSets — same final state and exit code as the per-op run, with
// batch-level combined-delta reporting.
func TestRunWatchBatched(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	changes := filepath.Join(dir, "changes.csv")
	stream := `update,0,CT,MH
update,1,CT,MH
update,3,ZIP,01202
insert,01,908,5555555,Eve,Oak Ave.,NYC,07974
update,6,CT,MH
delete,6
`
	if err := os.WriteFile(changes, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runWatch(data, cfds, changes, "", 4, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (stream ends clean):\n%s", code, out.String())
	}
	for _, want := range []string{
		"batch of 4 ops +key 6", // the coalesced first window, insert key echoed
		"batch of 2 ops",        // the tail window
		"- cfd 1 variable key",  // healing the seeded conflicts
		"final: 6 tuples, 0 live violations, satisfied=true",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("batched watch output missing %q:\n%s", want, out.String())
		}
	}
	// A journaled batched run recovers to the same state as per-op.
	walDir := filepath.Join(dir, "wal")
	out.Reset()
	if code, err = runWatch(data, cfds, changes, walDir, 3, nil, &out); err != nil || code != 0 {
		t.Fatalf("journaled batched run: code=%d err=%v\n%s", code, err, out.String())
	}
	out.Reset()
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err = runWatch(data, cfds, empty, walDir, 3, nil, &out); err != nil || code != 0 {
		t.Fatalf("resume after batched run: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "resumed from") || !strings.Contains(out.String(), "monitoring 6 tuples") {
		t.Errorf("batched journal did not resume:\n%s", out.String())
	}
}

// TestRunWatchJournaled: with -wal-dir, a second watch run resumes from
// the journaled state — the first stream's changes persist across runs.
func TestRunWatchJournaled(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	changes1 := filepath.Join(dir, "c1.csv")
	if err := os.WriteFile(changes1, []byte("insert,01,908,9999999,Zed,Elsewhere,NYC,00000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runWatch(data, cfds, changes1, walDir, 1, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || strings.Contains(out.String(), "resumed from") {
		t.Fatalf("first journaled run: code=%d\n%s", code, out.String())
	}

	// Second run: Zed's dirty tuple (key 6) is still there, and can be
	// deleted by key — proof the state survived the restart.
	changes2 := filepath.Join(dir, "c2.csv")
	if err := os.WriteFile(changes2, []byte("delete,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if _, err = runWatch(data, cfds, changes2, walDir, 1, nil, &out); err != nil {
		t.Fatal(err)
	}
	// The seed's own violations remain; what matters is that Zed's tuple
	// and his constant violation survived the restart and retire on delete.
	for _, want := range []string{"resumed from", "monitoring 7 tuples", "delete key 6", "- cfd 1 const tuple 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("journaled watch output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWatchErrors(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var out bytes.Buffer
	if _, err := runWatch(data, cfds, filepath.Join(dir, "missing.csv"), "", 1, nil, &out); err == nil {
		t.Error("missing change stream must error")
	}
	for name, content := range map[string]string{
		"badop.csv":     "upsert,1,CT,NYC\n",
		"badkey.csv":    "delete,notakey\n",
		"badarity.csv":  "insert,justone\n",
		"badupdate.csv": "update,0,CT\n",
		"nokey.csv":     "delete,999\n",
	} {
		p := write(name, content)
		if _, err := runWatch(data, cfds, p, "", 1, nil, &out); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunWatchMine: -mine rides the watch loop — the mined set is
// reported on load, re-scored after every change (form changes print as
// mine lines), and dumped after the stream.
func TestRunWatchMine(t *testing.T) {
	data, cfds := writeFixtures(t)
	dir := t.TempDir()
	changes := filepath.Join(dir, "changes.csv")
	// AC → CT holds as an FD on the fixture (908 and 212 are supported
	// pure groups). Breaking the 908 group demotes it to pattern form;
	// healing restores the FD.
	stream := `update,0,CT,MH
update,0,CT,NYC
`
	if err := os.WriteFile(changes, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg := repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2, MinConfidence: 1}
	code, err := runWatch(data, cfds, changes, "", 1, &cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1 (fixture violations remain):\n%s", code, out.String())
	}
	for _, want := range []string{
		"mining:",
		"mine ~ [AC] -> CT (1 patterns)", // 908 group breaks: FD demotes to the 212 pattern
		"mine ~ [AC] -> CT (fd)",         // healed: FD form returns
		"final mined set:",
		"[AC] -> [CT]", // the dumped set contains the FD
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("mine output missing %q:\n%s", want, out.String())
		}
	}
}
