// Command cfdgen emits the paper's experimental workload (Section 5):
// a synthetic tax-records CSV with injected noise, and a CFD file in the
// library's text notation.
//
// Usage:
//
//	cfdgen -sz 10000 -noise 0.05 -out tax.csv -cfdout cfds.txt
//	cfdgen -sz 100000 -noise 0.05 -numattrs 3 -tabsz 1000 -constpct 1.0 ...
//
// Without -numattrs the semantic constraint set (zip→state, state+salary→
// tax rate, …) is written; with it, a single workload CFD with the paper's
// TABSZ / NUMCONSTs knobs is generated instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		sz       = flag.Int("sz", 10000, "number of tax records (SZ)")
		noise    = flag.Float64("noise", 0.05, "fraction of tuples corrupted (NOISE)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "tax.csv", "output CSV for the (dirty) instance")
		cleanOut = flag.String("clean", "", "optional output CSV for the clean instance")
		cfdOut   = flag.String("cfdout", "cfds.txt", "output file for the CFD set")
		numAttrs = flag.Int("numattrs", 0, "NUMATTRs for a single workload CFD (0 = semantic set)")
		tabsz    = flag.Int("tabsz", 1000, "TABSZ: pattern tuples in the workload CFD")
		constPct = flag.Float64("constpct", 1.0, "NUMCONSTs: fraction of all-constant pattern tuples")
	)
	flag.Parse()
	if err := run(*sz, *noise, *seed, *out, *cleanOut, *cfdOut, *numAttrs, *tabsz, *constPct); err != nil {
		fmt.Fprintln(os.Stderr, "cfdgen:", err)
		os.Exit(1)
	}
}

func run(sz int, noise float64, seed int64, out, cleanOut, cfdOut string, numAttrs, tabsz int, constPct float64) error {
	data := repro.GenerateTax(repro.TaxConfig{Size: sz, Noise: noise, Seed: seed})

	if err := writeCSV(out, data.Dirty); err != nil {
		return err
	}
	fmt.Printf("wrote %d dirty records to %s (%d cells corrupted)\n", data.Dirty.Len(), out, len(data.Changes))
	if cleanOut != "" {
		if err := writeCSV(cleanOut, data.Clean); err != nil {
			return err
		}
		fmt.Printf("wrote clean records to %s\n", cleanOut)
	}

	var sigma []*repro.CFD
	if numAttrs == 0 {
		sigma = repro.SemanticTaxCFDs()
	} else {
		tpl, err := repro.CFDTemplateByAttrs(numAttrs)
		if err != nil {
			return err
		}
		cfd, err := repro.GenerateWorkloadCFD(data.Clean, repro.CFDConfig{
			Template: tpl, TabSize: tabsz, ConstPct: constPct, Seed: seed + 1,
		})
		if err != nil {
			return err
		}
		sigma = []*repro.CFD{cfd}
	}
	f, err := os.Create(cfdOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString(repro.FormatCFDSet(sigma)); err != nil {
		return err
	}
	rows := 0
	for _, c := range sigma {
		rows += len(c.Tableau)
	}
	fmt.Printf("wrote %d CFDs (%d pattern tuples) to %s\n", len(sigma), rows, cfdOut)
	return nil
}

func writeCSV(path string, rel *repro.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return repro.WriteCSV(f, rel)
}
