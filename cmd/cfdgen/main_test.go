package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunSemanticSet(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tax.csv")
	clean := filepath.Join(dir, "clean.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := run(500, 0.05, 1, out, clean, cfds, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out, clean, cfds} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing output %s: %v", p, err)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rel, err := repro.ReadCSV(f, "tax")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 500 {
		t.Errorf("CSV has %d rows, want 500", rel.Len())
	}
	text, err := os.ReadFile(cfds)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := repro.ParseCFDSet(string(text))
	if err != nil {
		t.Fatalf("emitted CFD file does not parse: %v", err)
	}
	if len(sigma) != len(repro.SemanticTaxCFDs()) {
		t.Errorf("emitted %d CFDs, want the semantic set", len(sigma))
	}
}

func TestRunWorkloadCFD(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tax.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := run(800, 0.0, 2, out, "", cfds, 3, 50, 1.0); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(cfds)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := repro.ParseCFDSet(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 1 {
		t.Fatalf("want a single workload CFD, got %d", len(sigma))
	}
	if len(sigma[0].Tableau) != 50 {
		t.Errorf("tableau = %d rows, want 50", len(sigma[0].Tableau))
	}
	if got := strings.Join(sigma[0].LHS, ","); got != "ZIP,CT" {
		t.Errorf("NUMATTRs=3 template LHS = %s", got)
	}
}

func TestRunBadNumAttrs(t *testing.T) {
	dir := t.TempDir()
	err := run(10, 0, 1, filepath.Join(dir, "t.csv"), "", filepath.Join(dir, "c.txt"), 5, 10, 1)
	if err == nil {
		t.Error("NUMATTRs=5 has no template and must fail")
	}
}
