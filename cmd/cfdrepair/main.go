// Command cfdrepair repairs a CSV instance with respect to a CFD set
// (the paper's Section 6, NP-complete by Theorem 6.1) and writes the
// repaired instance.
//
// Usage:
//
//	cfdrepair -data tax.csv -cfds cfds.txt -out repaired.csv
//
// cfdrepair is a thin client of the live repair engine: the instance
// is loaded into an in-memory monitor, a repair suggester plans one
// cost-ranked fix per live violation, and each round the planned fixes
// are applied as an ordinary ChangeSet and the suggester re-plans only
// what the batch touched — the same engine cfdserve serves over HTTP
// as GET /v1/repairs and POST /v1/repairs/apply, so what this command
// does offline a client of a running node can do one suggestion at a
// time against live data.
//
// Exit status is 2 on error, 1 when the suggest-apply loop could not
// certify I′ ⊨ Σ within its round budget, 0 on a certified repair.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV instance to repair (required)")
		cfdPath   = flag.String("cfds", "", "CFD file in text notation (required)")
		outPath   = flag.String("out", "repaired.csv", "output CSV for the repaired instance")
		maxPasses = flag.Int("maxpasses", 0, "suggest-apply round budget (0 = default)")
		verbose   = flag.Bool("v", false, "print every applied change")
	)
	flag.Parse()
	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(*dataPath, *cfdPath, *outPath, *maxPasses, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdrepair:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(dataPath, cfdPath, outPath string, maxPasses int, verbose bool) (int, error) {
	rel, sigma, err := cliutil.LoadInputs(dataPath, cfdPath)
	if err != nil {
		return 2, err
	}
	// An inconsistent Σ has no repair at all (Section 3): refuse up
	// front rather than looping toward an impossible certificate.
	if ok, _, err := repro.Consistent(rel.Schema, sigma); err != nil {
		return 2, err
	} else if !ok {
		return 2, fmt.Errorf("the CFD set is inconsistent: no instance can satisfy it")
	}

	m, err := repro.LoadMonitor(rel, sigma, repro.MonitorOptions{})
	if err != nil {
		return 2, err
	}
	defer m.Close()
	sg, err := repro.WatchRepairs(m, repro.SuggestOptions{})
	if err != nil {
		return 2, err
	}
	defer sg.Close()

	// Each round plans every live suggestion and applies the merged
	// ChangeSet; the suggester re-plans only the violations that batch
	// touched. The budget bounds rounds, not edits — one round usually
	// clears every independent violation at once.
	if maxPasses <= 0 {
		maxPasses = int(m.ViolationCount()/8) + 16
	}
	edits, rounds := 0, 0
	cost := 0.0
	for ; rounds < maxPasses; rounds++ {
		sg.Refresh()
		sugs := sg.Suggestions()
		if len(sugs) == 0 {
			break
		}
		ids := make([]string, 0, len(sugs))
		for _, s := range sugs {
			ids = append(ids, s.ID)
			cost += s.Cost
		}
		cs, ces, err := sg.Plan(ids)
		if err != nil {
			return 2, err
		}
		if verbose {
			for _, ce := range ces {
				fmt.Printf("key %d: %s: %q -> %q\n", ce.Key, ce.Attr, ce.From, ce.To)
			}
		}
		edits += len(ces)
		if cs.Len() == 0 {
			break
		}
		if _, err := m.Apply(cs); err != nil {
			return 2, err
		}
	}
	satisfied := m.Satisfied()
	fmt.Printf("repair: %d changes over %d rounds, cost %.0f, satisfied=%v\n",
		edits, rounds, cost, satisfied)

	out, err := os.Create(outPath)
	if err != nil {
		return 2, err
	}
	defer out.Close()
	if err := repro.WriteCSV(out, m.Snapshot()); err != nil {
		return 2, err
	}
	fmt.Printf("wrote repaired instance to %s\n", outPath)
	if !satisfied {
		return 1, nil
	}
	return 0, nil
}
