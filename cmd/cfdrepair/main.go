// Command cfdrepair computes a heuristic repair of a CSV instance with
// respect to a CFD set (the paper's Section 6, NP-complete by
// Theorem 6.1) and writes the repaired instance.
//
// Usage:
//
//	cfdrepair -data tax.csv -cfds cfds.txt -out repaired.csv
//
// Exit status is 2 on error, 1 when the heuristic could not certify
// I′ ⊨ Σ within its pass budget, 0 on a certified repair.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "CSV instance to repair (required)")
		cfdPath   = flag.String("cfds", "", "CFD file in text notation (required)")
		outPath   = flag.String("out", "repaired.csv", "output CSV for the repaired instance")
		maxPasses = flag.Int("maxpasses", 0, "detect-resolve pass budget (0 = default)")
		verbose   = flag.Bool("v", false, "print every applied change")
	)
	flag.Parse()
	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(*dataPath, *cfdPath, *outPath, *maxPasses, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdrepair:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(dataPath, cfdPath, outPath string, maxPasses int, verbose bool) (int, error) {
	rel, sigma, err := cliutil.LoadInputs(dataPath, cfdPath)
	if err != nil {
		return 2, err
	}

	res, err := repro.Repair(rel, sigma, repro.RepairOptions{MaxPasses: maxPasses})
	if err != nil {
		return 2, err
	}
	if verbose {
		for _, ch := range res.Changes {
			fmt.Printf("row %d: %s: %q -> %q\n", ch.Row, ch.Attr, ch.From, ch.To)
		}
	}
	fmt.Printf("repair: %d changes over %d passes, cost %.0f, satisfied=%v\n",
		len(res.Changes), res.Passes, res.Cost, res.Satisfied)

	out, err := os.Create(outPath)
	if err != nil {
		return 2, err
	}
	defer out.Close()
	if err := repro.WriteCSV(out, res.Repaired); err != nil {
		return 2, err
	}
	fmt.Printf("wrote repaired instance to %s\n", outPath)
	if !res.Satisfied {
		return 1, nil
	}
	return 0, nil
}
