package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

const dirtyCSV = `AC,CT
908,NYC
908,MH
908,MH
212,NYC
`

func TestRunRepairsAndWrites(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	out := filepath.Join(dir, "repaired.csv")
	if err := os.WriteFile(data, []byte(dirtyCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte("[AC=908] -> [CT=MH]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(data, cfds, out, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (certified repair)", code)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rel, err := repro.ReadCSV(f, "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Tuples[0][1] != "MH" {
		t.Errorf("repaired CT = %q, want MH", rel.Tuples[0][1])
	}
	// Re-detect: must be clean now.
	sigma, err := repro.ParseCFDSet("[AC=908] -> [CT=MH]\n")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := repro.SatisfiesSet(rel, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("repaired CSV still violates Σ")
	}
}

func TestRunRejectsInconsistentSigma(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(dirtyCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte("[AC] -> [CT=x]\n[AC] -> [CT=y]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(data, cfds, filepath.Join(dir, "out.csv"), 0, false); err == nil {
		t.Error("inconsistent Σ must be rejected")
	}
}

func TestRunMissingInputs(t *testing.T) {
	dir := t.TempDir()
	if _, err := run(filepath.Join(dir, "no.csv"), filepath.Join(dir, "no.txt"), filepath.Join(dir, "out.csv"), 0, false); err == nil {
		t.Error("missing inputs must error")
	}
}
