package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// TestRouterErrorEnvelope is the router half of the uniform error
// contract: every non-2xx response is {"error": {"code", "message"}}
// with the documented code, on the /v1 spellings and the legacy
// aliases alike.
func TestRouterErrorEnvelope(t *testing.T) {
	schema, sigma := custFixture(t)
	m, err := repro.NewMonitor(schema, sigma, repro.MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	node := &stubNode{m: m}
	nts := httptest.NewServer(node.handler())
	defer nts.Close()
	_, url := startRouter(t, []repro.ClusterGroupConfig{
		{Name: "g0", Primary: newHTTPBackend(nts.URL, 10*time.Second)},
	})

	do := func(method, path, body string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(method, url+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return resp.StatusCode, v
	}

	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"method not allowed", http.MethodGet, "/v1/insert", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad JSON body", http.MethodPost, "/v1/apply", "{", http.StatusBadRequest, "bad_request"},
		{"bad JSON on legacy alias", http.MethodPost, "/apply", "{", http.StatusBadRequest, "bad_request"},
		{"keyless delete op", http.MethodPost, "/v1/apply", `{"ops":[{"op":"delete"}]}`, http.StatusBadRequest, "bad_request"},
		{"unknown op", http.MethodPost, "/v1/apply", `{"ops":[{"op":"merge"}]}`, http.StatusBadRequest, "bad_request"},
		{"bad ring key", http.MethodGet, "/v1/ring?key=zap", "", http.StatusBadRequest, "bad_request"},
		{"bad read consistency", http.MethodGet, "/v1/violations?consistency=quorum", "", http.StatusBadRequest, "bad_request"},
		{"repairs method not allowed", http.MethodPost, "/v1/repairs", "{}", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"repairs bad consistency", http.MethodGet, "/v1/repairs?consistency=quorum", "", http.StatusBadRequest, "bad_request"},
		{"promote unknown group", http.MethodPost, "/v1/promote", `{"group":"g9"}`, http.StatusConflict, "conflict"},
		{"metrics method not allowed", http.MethodPost, "/v1/metrics", "{}", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, res := do(tc.method, tc.path, tc.body)
			if code != tc.wantStatus {
				t.Fatalf("status = %d %v, want %d", code, res, tc.wantStatus)
			}
			env, ok := res["error"].(map[string]any)
			if !ok {
				t.Fatalf("no error envelope: %v", res)
			}
			if env["code"] != tc.wantCode {
				t.Fatalf("code = %v, want %q", env["code"], tc.wantCode)
			}
			if msg, _ := env["message"].(string); msg == "" {
				t.Fatalf("empty message: %v", env)
			}
		})
	}

	// The partial-failure shape keeps its envelope alongside the named
	// groups: fence the node so a routed write fails, and the 502 body
	// carries code bad_gateway plus the per-group failure map.
	m.Fence(7)
	code, res := do(http.MethodPost, "/v1/insert", `{"values":["01","908","1111111","Mike","Tree Ave.","MH","07974"]}`)
	env, _ := res["error"].(map[string]any)
	if code != http.StatusBadGateway || env == nil || env["code"] != "bad_gateway" {
		t.Fatalf("routed write onto fenced shard: %d %v, want 502 bad_gateway", code, res)
	}
	failed, ok := res["failed"].(map[string]any)
	if !ok || fmt.Sprint(failed["g0"]) == "" {
		t.Fatalf("502 body names no failed groups: %v", res)
	}
}
