// cfdrouter fronts a sharded cfdserve cluster: a consistent-hash ring
// partitions the tuple key space across independent shard groups (each
// a cfdserve primary plus optional hot standbys), every incoming
// ChangeSet is split by owning shard and fanned out in parallel, and
// the per-shard violation deltas merge into one response. Writes scale
// with the number of groups because each group commits to its own WAL.
//
// Usage:
//
//	cfdrouter -http :8100 \
//	    -shard g0=http://p0:8081,http://f0:8085 \
//	    -shard g1=http://p1:8082
//
// Every mutation the router sends is stamped with the epoch it believes
// current for that group (X-Cfd-Epoch), so a deposed primary refuses
// the write instead of forking history; a 403 whose envelope carries
// code "fenced" makes the router re-query the node's epoch and retry
// once, which heals the case where an operator promoted a standby
// behind a stable primary address. POST /promote fails a group over to
// its first standby and re-points writes with no re-seeding: the
// standby already holds the replicated state.
//
// Endpoints live under /v1 with deprecated unversioned aliases (kept
// one release; see docs/operations.md): /v1/insert /v1/delete
// /v1/update /v1/apply (the cfdserve mutation shapes, minus the choice
// of node), /v1/violations (cluster-wide total), /v1/repairs (per-group
// fan-out of the shards' live repair suggestions; /v1 only), /v1/stats
// (router view; ?shards=1 fans out per-group node stats), /v1/ring
// (ownership probe), /v1/promote, /v1/metrics. Failures use the same
// error envelope as cfdserve: {"error": {"code", "message", ...}}.
//
// Reads fan out: /violations and /stats?shards=1 accept
// ?consistency=primary|any. "primary" (the default) serves every
// group's read from its current primary; "any" round-robins the primary
// and the group's standbys, skipping any standby that is fenced behind
// the group's epoch or lagging the primary's WAL tail by more than
// -max-read-lag bytes — so hot standbys absorb read traffic without
// ever serving a stale-beyond-bound or deposed history.
//
// Atomicity is per shard group: a batch spanning groups may commit on
// some and fail on others, in which case the response names the failed
// groups and the delta covers the committed ones. Variable (multi-
// tuple) violations are likewise detected within each group's key
// range; keep tuples that must be compared on one shard group, or run
// a single cfdserve.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

var processStart = time.Now()

// --- wire shapes shared with cfdserve ---

type wireOp struct {
	Op     string   `json:"op"`
	Values []string `json:"values,omitempty"`
	Key    *int64   `json:"key,omitempty"`
	Attr   string   `json:"attr,omitempty"`
	Value  string   `json:"value,omitempty"`
}

type wireChange struct {
	CFD   int      `json:"cfd"`
	Kind  string   `json:"kind"`
	Tuple *int64   `json:"tuple,omitempty"`
	Key   []string `json:"key,omitempty"`
}

type wireDelta struct {
	Added   []wireChange `json:"added"`
	Removed []wireChange `json:"removed"`
}

func toWireDelta(d *repro.ViolationDelta) wireDelta {
	conv := func(cs []repro.ViolationChange) []wireChange {
		out := make([]wireChange, 0, len(cs))
		for _, c := range cs {
			wc := wireChange{CFD: c.CFD, Kind: c.Kind.String()}
			if c.Kind == repro.ConstViolation {
				tuple := c.Tuple
				wc.Tuple = &tuple
			} else {
				wc.Key = c.Key
			}
			out = append(out, wc)
		}
		return out
	}
	return wireDelta{Added: conv(d.Added), Removed: conv(d.Removed)}
}

func fromWireDelta(w wireDelta) (*repro.ViolationDelta, error) {
	conv := func(in []wireChange) ([]repro.ViolationChange, error) {
		out := make([]repro.ViolationChange, 0, len(in))
		for _, c := range in {
			vc := repro.ViolationChange{CFD: c.CFD}
			switch c.Kind {
			case "const":
				if c.Tuple == nil {
					return nil, fmt.Errorf("const change without tuple key")
				}
				vc.Kind = repro.ConstViolation
				vc.Tuple = *c.Tuple
			case "variable":
				vc.Kind = repro.VariableViolation
				vc.Key = c.Key
			default:
				return nil, fmt.Errorf("unknown change kind %q", c.Kind)
			}
			out = append(out, vc)
		}
		return out, nil
	}
	added, err := conv(w.Added)
	if err != nil {
		return nil, err
	}
	removed, err := conv(w.Removed)
	if err != nil {
		return nil, err
	}
	return &repro.ViolationDelta{Added: added, Removed: removed}, nil
}

// --- httpBackend: one shard-group node over the cfdserve wire ---

// httpBackend adapts a cfdserve node to the router's ClusterBackend:
// mutations go through POST /v1/apply stamped with X-Cfd-Epoch, the
// epoch and key watermark come from GET /v1/stats, failover runs over
// POST /v1/promote and POST /v1/fence. An error envelope carrying the
// machine-readable code "fenced" (or "read_only") is mapped back onto
// the sentinel error the router dispatches on.
type httpBackend struct {
	base string
	hc   *http.Client
}

func newHTTPBackend(base string, timeout time.Duration) *httpBackend {
	return &httpBackend{base: strings.TrimRight(base, "/"), hc: &http.Client{Timeout: timeout}}
}

// call runs one JSON exchange. A nil body means a bare request (GET or
// an empty POST); a non-2xx response is decoded for its error message
// and machine code.
func (b *httpBackend) call(ctx context.Context, method, path string, body any, epoch *uint64, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if epoch != nil {
		req.Header.Set("X-Cfd-Epoch", strconv.FormatUint(*epoch, 10))
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return fmt.Errorf("shard %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// The uniform envelope {"error": {"code", "message"}}; a pre-/v1
		// node's flat {"error": "...", "code": "..."} is still understood.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		ecode, emsg := "", ""
		if err := json.Unmarshal(raw, &env); err == nil {
			ecode, emsg = env.Error.Code, env.Error.Message
		} else {
			var flat struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if json.Unmarshal(raw, &flat) == nil {
				ecode, emsg = flat.Code, flat.Error
			}
		}
		switch ecode {
		case "fenced":
			return fmt.Errorf("shard %s: %w", b.base, repro.ErrMonitorFenced)
		case "read_only":
			return fmt.Errorf("shard %s: %w", b.base, repro.ErrMonitorReadOnly)
		}
		if emsg == "" {
			emsg = fmt.Sprintf("status %d", resp.StatusCode)
		}
		return fmt.Errorf("shard %s%s: %s", b.base, path, emsg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (b *httpBackend) Apply(ctx context.Context, epoch uint64, cs *repro.ChangeSet) (*repro.ViolationDelta, error) {
	ops := make([]wireOp, 0, len(cs.Ops))
	for i := range cs.Ops {
		op := &cs.Ops[i]
		key := op.Key
		switch op.Kind {
		case repro.OpInsert:
			// The router assigned every insert's key before splitting, so
			// the shard must honor it rather than allocate its own.
			ops = append(ops, wireOp{Op: "insert", Key: &key, Values: op.Tuple})
		case repro.OpDelete:
			ops = append(ops, wireOp{Op: "delete", Key: &key})
		case repro.OpUpdate:
			ops = append(ops, wireOp{Op: "update", Key: &key, Attr: op.Attr, Value: op.Value})
		default:
			return nil, fmt.Errorf("unknown op kind %v", op.Kind)
		}
	}
	var res struct {
		Delta wireDelta `json:"delta"`
	}
	if err := b.call(ctx, http.MethodPost, "/v1/apply", map[string]any{"ops": ops}, &epoch, &res); err != nil {
		return nil, err
	}
	return fromWireDelta(res.Delta)
}

func (b *httpBackend) stats(ctx context.Context) (epoch uint64, nextKey int64, err error) {
	var st struct {
		Epoch   uint64 `json:"epoch"`
		NextKey int64  `json:"next_key"`
	}
	if err := b.call(ctx, http.MethodGet, "/v1/stats", nil, nil, &st); err != nil {
		return 0, 0, err
	}
	return st.Epoch, st.NextKey, nil
}

func (b *httpBackend) Epoch(ctx context.Context) (uint64, error) {
	epoch, _, err := b.stats(ctx)
	return epoch, err
}

func (b *httpBackend) NextKey(ctx context.Context) (int64, error) {
	_, next, err := b.stats(ctx)
	return next, err
}

func (b *httpBackend) Promote(ctx context.Context) (uint64, error) {
	var res struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := b.call(ctx, http.MethodPost, "/v1/promote", nil, nil, &res); err != nil {
		return 0, err
	}
	return res.Epoch, nil
}

func (b *httpBackend) Fence(ctx context.Context, epoch uint64) error {
	return b.call(ctx, http.MethodPost, "/v1/fence", map[string]any{"epoch": epoch}, nil, nil)
}

// violationTotal reads the node's live violation count, for the
// router's cluster-wide /violations aggregate.
func (b *httpBackend) violationTotal(ctx context.Context) (int, error) {
	var res struct {
		Total int `json:"total"`
	}
	if err := b.call(ctx, http.MethodGet, "/v1/violations", nil, nil, &res); err != nil {
		return 0, err
	}
	return res.Total, nil
}

// shardRepairs is one node's GET /v1/repairs response as the router
// re-serves it: the suggestions pass through untouched.
type shardRepairs struct {
	Suggestions []json.RawMessage `json:"suggestions"`
	Total       int               `json:"total"`
	Version     uint64            `json:"version"`
}

// repairs reads the node's live repair suggestions, for the router's
// per-group fan-out of GET /v1/repairs. query carries the forwarded
// trust_threshold/limit parameters ("" for none).
func (b *httpBackend) repairs(ctx context.Context, query string) (shardRepairs, error) {
	var res shardRepairs
	if err := b.call(ctx, http.MethodGet, "/v1/repairs"+query, nil, nil, &res); err != nil {
		return shardRepairs{}, err
	}
	return res, nil
}

// ReadPosition implements the read fan-out's staleness probe over the
// wire: the node's epoch and — for a following standby — its replication
// byte lag, both straight from GET /stats. A primary (no replica block,
// or one already promoted) is its own tail: lag 0.
func (b *httpBackend) ReadPosition(ctx context.Context) (repro.ClusterReadPosition, error) {
	var st struct {
		Epoch   uint64 `json:"epoch"`
		Replica *struct {
			Following bool  `json:"following"`
			LagBytes  int64 `json:"lag_bytes"`
		} `json:"replica"`
	}
	if err := b.call(ctx, http.MethodGet, "/v1/stats", nil, nil, &st); err != nil {
		return repro.ClusterReadPosition{}, err
	}
	pos := repro.ClusterReadPosition{Epoch: st.Epoch}
	if st.Replica != nil && st.Replica.Following {
		pos.LagBytes = st.Replica.LagBytes
	}
	return pos, nil
}

// --- the daemon ---

// apiError is the uniform machine-readable error envelope shared with
// cfdserve: every non-2xx response is {"error": {"code", "message"}}.
type apiError struct {
	Code    string  `json:"code"`
	Message string  `json:"message"`
	Epoch   *uint64 `json:"epoch,omitempty"`
}

// codeFor maps an HTTP status to its envelope code; statuses with a
// more specific cause (fenced, stale_cursor) are stamped at the call
// site instead.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "fenced"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "stale_cursor"
	case http.StatusBadGateway:
		return "bad_gateway"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]apiError{"error": {Code: codeFor(status), Message: err.Error()}})
}

type routerServer struct {
	rt     *repro.ClusterRouter
	vnodes int
	reg    *repro.MetricsRegistry
}

func (s *routerServer) handler() http.Handler {
	mux := http.NewServeMux()
	reg := s.reg
	handle := func(path string, h http.HandlerFunc) {
		reqs := reg.Counter("cfdrouter_http_requests_total", "HTTP requests served, by endpoint.", obs.L("path", path))
		errs := reg.Counter("cfdrouter_http_errors_total", "HTTP responses with status >= 400, by endpoint.", obs.L("path", path))
		dur := reg.DurationHistogram("cfdrouter_http_request_seconds", "HTTP request latency, by endpoint.", obs.L("path", path))
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := statusWriter{ResponseWriter: w}
			h(&sw, r)
			reqs.Inc()
			if sw.status >= 400 {
				errs.Inc()
			}
			dur.ObserveSince(start)
		})
	}
	// route registers the versioned spelling and its deprecated
	// unversioned alias (kept one release; see docs/operations.md).
	// Each spelling gets its own metric series, so alias traffic stays
	// visible during the migration.
	route := func(path string, h http.HandlerFunc) {
		handle("/v1"+path, h)
		handle(path, h)
	}
	routedOps := reg.Counter("cfdrouter_routed_ops_total", "Mutation ops routed to shard groups.")
	shardFails := reg.Counter("cfdrouter_shard_failures_total", "Sub-batches refused or failed by a shard group.")
	readViolDur := reg.DurationHistogram("cfdrouter_read_seconds", "Fan-out read latency against shard nodes, by endpoint.", obs.L("endpoint", "/violations"))
	readStatsDur := reg.DurationHistogram("cfdrouter_read_seconds", "Fan-out read latency against shard nodes, by endpoint.", obs.L("endpoint", "/stats"))
	readRepairDur := reg.DurationHistogram("cfdrouter_read_seconds", "Fan-out read latency against shard nodes, by endpoint.", obs.L("endpoint", "/repairs"))
	readErrs := reg.Counter("cfdrouter_read_errors_total", "Fan-out reads against shard nodes that failed.")
	// pickRead resolves one group's read target honoring ?consistency=.
	pickRead := func(ctx context.Context, name string, mode repro.ClusterReadConsistency) (*httpBackend, error) {
		be, err := s.rt.PickRead(ctx, name, mode)
		if err != nil {
			return nil, fmt.Errorf("group %s: %w", name, err)
		}
		hb, ok := be.(*httpBackend)
		if !ok {
			return nil, fmt.Errorf("group %s: read target is not an HTTP backend", name)
		}
		return hb, nil
	}
	readBody := func(w http.ResponseWriter, r *http.Request, v any) bool {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return false
		}
		return true
	}
	// routeErr maps a routed apply's failure. A partial failure (some
	// groups committed, some refused) is the router's defining error
	// shape: 502 naming the failed groups, with the delta of the
	// committed ones alongside so the caller can reconcile.
	routeErr := func(w http.ResponseWriter, err error, delta *repro.ViolationDelta) {
		var ae *repro.ClusterApplyError
		if errors.As(err, &ae) {
			shardFails.Add(uint64(len(ae.Failed)))
			failed := make(map[string]string, len(ae.Failed))
			for name, ferr := range ae.Failed {
				failed[name] = ferr.Error()
			}
			body := map[string]any{
				"error":  apiError{Code: codeFor(http.StatusBadGateway), Message: err.Error()},
				"failed": failed,
			}
			if delta != nil {
				body["delta"] = toWireDelta(delta)
			}
			writeJSON(w, http.StatusBadGateway, body)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
	}
	apply := func(w http.ResponseWriter, r *http.Request, cs *repro.ChangeSet) (*repro.ViolationDelta, bool) {
		delta, err := s.rt.Apply(r.Context(), cs)
		if err != nil {
			routeErr(w, err, delta)
			return nil, false
		}
		routedOps.Add(uint64(cs.Len()))
		return delta, true
	}

	route("/insert", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Values []string `json:"values"`
			Key    *int64   `json:"key"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		if req.Key != nil {
			cs.InsertKeyed(*req.Key, repro.Tuple(req.Values))
		} else {
			cs.Insert(repro.Tuple(req.Values))
		}
		delta, ok := apply(w, r, &cs)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"key": cs.Ops[0].Key, "shard": s.rt.Owner(cs.Ops[0].Key), "delta": toWireDelta(delta),
		})
	})
	route("/delete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key int64 `json:"key"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		cs.Delete(req.Key)
		if delta, ok := apply(w, r, &cs); ok {
			writeJSON(w, http.StatusOK, map[string]any{"delta": toWireDelta(delta)})
		}
	})
	route("/update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key   int64  `json:"key"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		cs.Update(req.Key, req.Attr, req.Value)
		if delta, ok := apply(w, r, &cs); ok {
			writeJSON(w, http.StatusOK, map[string]any{"delta": toWireDelta(delta)})
		}
	})
	route("/apply", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []wireOp `json:"ops"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		for i, o := range req.Ops {
			switch o.Op {
			case "insert":
				if o.Key != nil {
					cs.InsertKeyed(*o.Key, repro.Tuple(o.Values))
				} else {
					cs.Insert(repro.Tuple(o.Values))
				}
			case "delete":
				if o.Key == nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: delete requires a key", i))
					return
				}
				cs.Delete(*o.Key)
			case "update":
				if o.Key == nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: update requires a key", i))
					return
				}
				cs.Update(*o.Key, o.Attr, o.Value)
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: unknown op %q", i, o.Op))
				return
			}
		}
		delta, ok := apply(w, r, &cs)
		if !ok {
			return
		}
		keys := make([]int64, 0, len(cs.Ops))
		for i := range cs.Ops {
			if cs.Ops[i].Kind == repro.OpInsert {
				keys = append(keys, cs.Ops[i].Key)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ops": cs.Len(), "keys": keys, "delta": toWireDelta(delta),
		})
	})
	// Cluster-wide violation count: the sum of one read per group.
	// Totals are disjoint because each group owns its key range. With
	// ?consistency=any the per-group read may land on a fresh standby
	// instead of the primary.
	route("/violations", func(w http.ResponseWriter, r *http.Request) {
		mode, err := repro.ParseClusterReadConsistency(r.URL.Query().Get("consistency"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		groups := make(map[string]int)
		total := 0
		for _, name := range s.rt.Groups() {
			hb, err := pickRead(r.Context(), name, mode)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			start := time.Now()
			n, err := hb.violationTotal(r.Context())
			readViolDur.ObserveSince(start)
			if err != nil {
				readErrs.Inc()
				writeErr(w, http.StatusBadGateway, fmt.Errorf("group %s: %w", name, err))
				return
			}
			groups[name] = n
			total += n
		}
		writeJSON(w, http.StatusOK, map[string]any{"groups": groups, "total": total, "consistency": mode.String()})
	})
	// Cluster-wide live repair suggestions: one GET /v1/repairs per
	// group, merged under per-group labels (?consistency= applies, and
	// ?trust_threshold=/?limit= are forwarded to every node). The merged
	// view is deliberately unpaginated — suggestion IDs and versions are
	// per-node, so each group's list arrives whole (or ?limit-truncated)
	// and accepted IDs must be applied against the owning group's node,
	// named in its "node" field. New in /v1; no unversioned alias.
	handle("/v1/repairs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		mode, err := repro.ParseClusterReadConsistency(r.URL.Query().Get("consistency"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		fwd := url.Values{}
		for _, k := range []string{"trust_threshold", "limit"} {
			if v := r.URL.Query().Get(k); v != "" {
				fwd.Set(k, v)
			}
		}
		query := ""
		if len(fwd) > 0 {
			query = "?" + fwd.Encode()
		}
		groups := make(map[string]any)
		total := 0
		for _, name := range s.rt.Groups() {
			hb, err := pickRead(r.Context(), name, mode)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			start := time.Now()
			res, err := hb.repairs(r.Context(), query)
			readRepairDur.ObserveSince(start)
			if err != nil {
				readErrs.Inc()
				writeErr(w, http.StatusBadGateway, fmt.Errorf("group %s: %w", name, err))
				return
			}
			if res.Suggestions == nil {
				res.Suggestions = []json.RawMessage{}
			}
			groups[name] = map[string]any{
				"suggestions": res.Suggestions,
				"total":       res.Total,
				"version":     res.Version,
				"node":        hb.base,
			}
			total += res.Total
		}
		writeJSON(w, http.StatusOK, map[string]any{"groups": groups, "total": total, "consistency": mode.String()})
	})
	route("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{
			"groups":         s.rt.Status(),
			"next_key":       s.rt.NextKey(),
			"vnodes":         s.vnodes,
			"uptime_seconds": time.Since(processStart).Seconds(),
		}
		// ?shards=1 additionally fans out one GET /stats per group,
		// routed like any other read (?consistency= applies).
		if sq := r.URL.Query().Get("shards"); sq != "" && sq != "0" && sq != "false" {
			mode, err := repro.ParseClusterReadConsistency(r.URL.Query().Get("consistency"))
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			shards := make(map[string]any)
			for _, name := range s.rt.Groups() {
				hb, err := pickRead(r.Context(), name, mode)
				if err != nil {
					shards[name] = map[string]any{"error": err.Error()}
					continue
				}
				start := time.Now()
				var raw map[string]any
				err = hb.call(r.Context(), http.MethodGet, "/v1/stats", nil, nil, &raw)
				readStatsDur.ObserveSince(start)
				if err != nil {
					readErrs.Inc()
					shards[name] = map[string]any{"error": err.Error()}
					continue
				}
				raw["node"] = hb.base
				shards[name] = raw
			}
			out["shards"] = shards
		}
		writeJSON(w, http.StatusOK, out)
	})
	// Ownership probe: which group would serve a key.
	route("/ring", func(w http.ResponseWriter, r *http.Request) {
		if kq := r.URL.Query().Get("key"); kq != "" {
			key, err := strconv.ParseInt(kq, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad key %q: %w", kq, err))
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"key": key, "owner": s.rt.Owner(key)})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"members": s.rt.Groups(), "vnodes": s.vnodes})
	})
	// Failover: promote the group's first standby and re-point writes.
	route("/promote", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Group string `json:"group"`
		}
		if !readBody(w, r, &req) {
			return
		}
		epoch, err := s.rt.Promote(r.Context(), req.Group)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"group": req.Group, "epoch": epoch, "promoted": true})
	})
	route("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	return mux
}

// statusWriter records the response status so the middleware can count
// error responses; an implicit 200 (first Write without WriteHeader) is
// recorded too.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// shardFlag accumulates repeated -shard name=primaryURL[,standbyURL...]
// definitions in declaration order.
type shardDef struct {
	name     string
	primary  string
	standbys []string
}

func parseShard(v string) (shardDef, error) {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" || urls == "" {
		return shardDef{}, fmt.Errorf("bad -shard %q: want name=primaryURL[,standbyURL...]", v)
	}
	parts := strings.Split(urls, ",")
	for _, p := range parts {
		if !strings.HasPrefix(p, "http://") && !strings.HasPrefix(p, "https://") {
			return shardDef{}, fmt.Errorf("bad -shard %q: %q is not an http(s) URL", v, p)
		}
	}
	return shardDef{name: name, primary: parts[0], standbys: parts[1:]}, nil
}

func main() {
	var shards []shardDef
	var (
		httpAddr  = flag.String("http", "", "serve the router API on this address (required)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per shard group on the hash ring (0 = default)")
		timeout   = flag.Duration("shard-timeout", 30*time.Second, "per-request timeout talking to a shard node")
		maxLag    = flag.Int64("max-read-lag", 0, "max WAL byte lag before ?consistency=any skips a standby (0 = default 4MiB)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this second, private address (off when empty)")
		logLevel  = flag.String("log-level", "info", "log threshold: debug, info, warn or error")
		logJSON   = flag.Bool("log-json", false, "write logs to stderr as JSON lines instead of text")
	)
	flag.Func("shard", "shard group as name=primaryURL[,standbyURL...]; repeat per group (required)", func(v string) error {
		def, err := parseShard(v)
		if err != nil {
			return err
		}
		shards = append(shards, def)
		return nil
	})
	flag.Parse()
	lg, err := cliutil.NewLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdrouter:", err)
		os.Exit(2)
	}
	if *httpAddr == "" || len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "cfdrouter: -http and at least one -shard are required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		go func() {
			lg.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				lg.Error("pprof server failed", "error", err)
			}
		}()
	}

	groups := make([]repro.ClusterGroupConfig, 0, len(shards))
	for _, def := range shards {
		cfg := repro.ClusterGroupConfig{Name: def.name, Primary: newHTTPBackend(def.primary, *timeout)}
		for _, u := range def.standbys {
			cfg.Standbys = append(cfg.Standbys, newHTTPBackend(u, *timeout))
		}
		groups = append(groups, cfg)
	}
	// The router reads each primary's epoch and key watermark at boot,
	// so every shard must be reachable here.
	rt, err := repro.NewClusterRouter(ctx, groups, repro.ClusterOptions{VNodes: *vnodes, MaxReadLag: *maxLag})
	if err != nil {
		lg.Error("startup failed", "error", err)
		os.Exit(2)
	}
	srv := &routerServer{rt: rt, vnodes: *vnodes, reg: repro.DefaultMetrics()}

	lis, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		lg.Error("listen failed", "error", err)
		os.Exit(2)
	}
	fmt.Printf("routing %d shard groups on %s (next key %d)\n", len(groups), lis.Addr(), rt.NextKey())
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	select {
	case err = <-errc:
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err = hs.Shutdown(sctx)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Error("server failed", "error", err)
		os.Exit(1)
	}
}
