package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro"
)

// The daemon is tested against stub shard nodes that speak the cfdserve
// wire subset the router programs against (/v1/apply with X-Cfd-Epoch,
// /v1/stats, /v1/violations, /v1/repairs, /v1/promote, /v1/fence), each
// backed by a real monitor. The cfdserve side of the same contract is
// pinned by its own fencing wire test.

func custFixture(t *testing.T) (*repro.Schema, []*repro.CFD) {
	t.Helper()
	schema, err := repro.NewSchema("cust",
		repro.Attr("CC"), repro.Attr("AC"), repro.Attr("PN"),
		repro.Attr("NM"), repro.Attr("STR"), repro.Attr("CT"), repro.Attr("ZIP"))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := repro.ParseCFDSet(`
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
`)
	if err != nil {
		t.Fatal(err)
	}
	return schema, sigma
}

// stubNode is one shard-group node: a monitor (or a follower wrapping
// one) behind the wire endpoints the router's httpBackend uses.
type stubNode struct {
	mu sync.Mutex
	m  *repro.Monitor
	f  *repro.MonitorFollower
}

func (n *stubNode) mon() *repro.Monitor {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.f != nil {
		return n.f.Monitor()
	}
	return n.m
}

func (n *stubNode) handler() http.Handler {
	mux := http.NewServeMux()
	// Like cfdserve, every endpoint lives under /v1 with an unversioned
	// alias.
	handle := func(path string, h http.HandlerFunc) {
		mux.HandleFunc("/v1"+path, h)
		mux.HandleFunc(path, h)
	}
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	envelope := func(code, msg string) map[string]any {
		return map[string]any{"error": map[string]string{"code": code, "message": msg}}
	}
	handle("/apply", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []wireOp `json:"ops"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		var cs repro.ChangeSet
		for _, o := range req.Ops {
			switch o.Op {
			case "insert":
				if o.Key != nil {
					cs.InsertKeyed(*o.Key, repro.Tuple(o.Values))
				} else {
					cs.Insert(repro.Tuple(o.Values))
				}
			case "delete":
				cs.Delete(*o.Key)
			case "update":
				cs.Update(*o.Key, o.Attr, o.Value)
			}
		}
		var delta *repro.ViolationDelta
		var err error
		if h := r.Header.Get("X-Cfd-Epoch"); h != "" {
			epoch, perr := strconv.ParseUint(h, 10, 64)
			if perr != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": perr.Error()})
				return
			}
			delta, err = n.mon().ApplyAt(&cs, epoch)
		} else {
			delta, err = n.mon().Apply(&cs)
		}
		switch {
		case errors.Is(err, repro.ErrMonitorFenced):
			writeJSON(w, http.StatusForbidden, envelope("fenced", err.Error()))
		case errors.Is(err, repro.ErrMonitorReadOnly):
			writeJSON(w, http.StatusConflict, envelope("read_only", err.Error()))
		case err != nil:
			writeJSON(w, http.StatusBadRequest, envelope("bad_request", err.Error()))
		default:
			writeJSON(w, http.StatusOK, map[string]any{"delta": toWireDelta(delta)})
		}
	})
	handle("/stats", func(w http.ResponseWriter, r *http.Request) {
		stats := map[string]any{
			"epoch": n.mon().Epoch(), "next_key": n.mon().NextKey(),
		}
		n.mu.Lock()
		f := n.f
		n.mu.Unlock()
		if f != nil {
			st := f.Status()
			stats["replica"] = map[string]any{
				"following": st.Following, "lag_bytes": st.LagBytes,
			}
		}
		writeJSON(w, http.StatusOK, stats)
	})
	handle("/violations", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"total": n.mon().ViolationCount()})
	})
	// The cfdserve GET /v1/repairs shape, minus ETag/cursor machinery:
	// a throwaway suggester over the node's live violation set.
	handle("/repairs", func(w http.ResponseWriter, r *http.Request) {
		sg, err := repro.WatchRepairs(n.mon(), repro.SuggestOptions{})
		if err != nil {
			writeJSON(w, http.StatusBadRequest, envelope("bad_request", err.Error()))
			return
		}
		defer sg.Close()
		sg.Refresh()
		sugs := sg.Suggestions()
		out := make([]map[string]any, 0, len(sugs))
		for _, s := range sugs {
			out = append(out, map[string]any{"id": s.ID, "kind": s.Kind.String(), "cost": s.Cost})
		}
		writeJSON(w, http.StatusOK, map[string]any{"suggestions": out, "total": len(sugs), "version": sg.Version()})
	})
	handle("/promote", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		f := n.f
		n.mu.Unlock()
		if f == nil {
			writeJSON(w, http.StatusConflict, envelope("conflict", "not a follower"))
			return
		}
		if err := f.Promote(); err != nil {
			writeJSON(w, http.StatusConflict, envelope("conflict", err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "epoch": f.Monitor().Epoch()})
	})
	handle("/fence", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, envelope("bad_request", err.Error()))
			return
		}
		n.mon().Fence(req.Epoch)
		writeJSON(w, http.StatusOK, map[string]any{"epoch": n.mon().Epoch(), "fenced": n.mon().Fenced()})
	})
	return mux
}

func postBody(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func getBody(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

// startRouter builds a routerServer over the given shard groups and
// serves it from an httptest server.
func startRouter(t *testing.T, groups []repro.ClusterGroupConfig) (*routerServer, string) {
	t.Helper()
	rt, err := repro.NewClusterRouter(context.Background(), groups, repro.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := &routerServer{rt: rt, reg: repro.NewMetricsRegistry()}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func TestDaemonRoutesAcrossShards(t *testing.T) {
	schema, sigma := custFixture(t)
	nodes := make(map[string]*stubNode, 3)
	var groups []repro.ClusterGroupConfig
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%d", i)
		m, err := repro.NewMonitor(schema, sigma, repro.MonitorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		node := &stubNode{m: m}
		ts := httptest.NewServer(node.handler())
		t.Cleanup(ts.Close)
		nodes[name] = node
		groups = append(groups, repro.ClusterGroupConfig{Name: name, Primary: newHTTPBackend(ts.URL, 10*time.Second)})
	}
	srv, url := startRouter(t, groups)

	// A routed batch: keys are allocated by the router and every tuple
	// lands on the shard the ring names — and nowhere else.
	code, res := postBody(t, url+"/apply", `{"ops":[
		{"op":"insert","values":["01","908","1111111","Mike","Tree Ave.","MH","07974"]},
		{"op":"insert","values":["01","212","2222222","Joe","Elm Str.","NYC","01202"]},
		{"op":"insert","values":["01","215","3333333","Ben","Oak Ave.","PHI","19014"]}]}`)
	if code != http.StatusOK || fmt.Sprint(res["ops"]) != "3" {
		t.Fatalf("apply: %d %v", code, res)
	}
	keys := res["keys"].([]any)
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for _, kv := range keys {
		key := int64(kv.(float64))
		_, ringRes := getBody(t, fmt.Sprintf("%s/ring?key=%d", url, key))
		owner, _ := ringRes["owner"].(string)
		for name, node := range nodes {
			_, ok := node.mon().Get(key)
			if want := name == owner; ok != want {
				t.Fatalf("key %d: present=%v on %s, owner %s", key, ok, name, owner)
			}
		}
	}

	// A const-violating insert: the shard's delta comes back through the
	// router, and the cluster-wide /violations aggregate sees it.
	code, res = postBody(t, url+"/insert", `{"values":["01","908","4444444","Eve","Elm Str.","NYC","01202"]}`)
	if code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, res)
	}
	badKey := int64(res["key"].(float64))
	delta := res["delta"].(map[string]any)
	if added := delta["added"].([]any); len(added) == 0 {
		t.Fatalf("violating insert produced no delta: %v", res)
	}
	code, res = getBody(t, url+"/violations")
	var wantTotal int64
	for _, node := range nodes {
		wantTotal += node.mon().ViolationCount()
	}
	if code != http.StatusOK || fmt.Sprint(res["total"]) != fmt.Sprint(wantTotal) || wantTotal == 0 {
		t.Fatalf("violations: %d %v, nodes hold %d", code, res, wantTotal)
	}

	// The live-repair fan-out merges each group's suggestions under its
	// name; the violating tuple's owner contributes at least one.
	code, res = getBody(t, url+"/v1/repairs")
	if code != http.StatusOK || res["total"].(float64) == 0 {
		t.Fatalf("repairs: %d %v, want a non-zero total", code, res)
	}
	rg := res["groups"].(map[string]any)
	if len(rg) != 3 {
		t.Fatalf("repairs groups = %v", rg)
	}
	owner := srv.rt.Owner(badKey)
	og := rg[owner].(map[string]any)
	if sugs := og["suggestions"].([]any); len(sugs) == 0 || og["node"] == "" {
		t.Fatalf("owner group %s repairs = %v", owner, og)
	}
	// The alias-free endpoint: the unversioned spelling 404s.
	if code, _ = getBody(t, url+"/repairs"); code != http.StatusNotFound {
		t.Fatalf("unversioned /repairs: %d, want 404", code)
	}

	// A routed update heals it; a routed delete removes the tuple from
	// its owner.
	code, res = postBody(t, url+"/update", fmt.Sprintf(`{"key":%d,"attr":"CT","value":"MH"}`, badKey))
	if code != http.StatusOK {
		t.Fatalf("update: %d %v", code, res)
	}
	if removed := res["delta"].(map[string]any)["removed"].([]any); len(removed) == 0 {
		t.Fatalf("healing update removed nothing: %v", res)
	}
	code, _ = postBody(t, url+"/delete", fmt.Sprintf(`{"key":%d}`, badKey))
	if code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if _, ok := nodes[srv.rt.Owner(badKey)].mon().Get(badKey); ok {
		t.Fatal("deleted key still on its owner shard")
	}

	// Wire validation: delete with no key is refused up front.
	if code, _ = postBody(t, url+"/apply", `{"ops":[{"op":"delete"}]}`); code != http.StatusBadRequest {
		t.Fatalf("keyless delete: %d, want 400", code)
	}

	// /stats reflects the allocator watermark and every group.
	_, st := getBody(t, url+"/stats")
	if fmt.Sprint(st["next_key"]) != "4" {
		t.Fatalf("next_key = %v, want 4", st["next_key"])
	}
	if gs := st["groups"].([]any); len(gs) != 3 {
		t.Fatalf("stats groups = %v", gs)
	}
	_, ring := getBody(t, url+"/ring")
	if members := ring["members"].([]any); len(members) != 3 {
		t.Fatalf("ring members = %v", members)
	}
}

func TestDaemonPromoteFailover(t *testing.T) {
	_, sigma := custFixture(t)
	schema, _ := custFixture(t)
	ctx := context.Background()
	p, err := repro.NewMonitor(schema, sigma, repro.MonitorOptions{Durable: t.TempDir(), RetainSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := repro.FollowMonitor(ctx, sigma, repro.MonitorOptions{Durable: t.TempDir()},
		repro.FollowOptions{Source: repro.NewMonitorChunkSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pnode := &stubNode{m: p}
	fnode := &stubNode{f: f}
	pts := httptest.NewServer(pnode.handler())
	defer pts.Close()
	fts := httptest.NewServer(fnode.handler())
	defer fts.Close()
	_, url := startRouter(t, []repro.ClusterGroupConfig{{
		Name:     "g0",
		Primary:  newHTTPBackend(pts.URL, 10*time.Second),
		Standbys: []repro.ClusterBackend{newHTTPBackend(fts.URL, 10*time.Second)},
	}})

	code, res := postBody(t, url+"/insert", `{"values":["01","908","1111111","Mike","Tree Ave.","MH","07974"]}`)
	if code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, res)
	}
	for { // the standby catches up before failover
		n, err := f.Sync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}

	// Failover: the standby takes over under a bumped epoch, and the
	// router re-points writes with no re-seeding.
	code, res = postBody(t, url+"/promote", `{"group":"g0"}`)
	if code != http.StatusOK || fmt.Sprint(res["epoch"]) != "1" {
		t.Fatalf("promote: %d %v", code, res)
	}
	code, res = postBody(t, url+"/insert", `{"values":["01","212","2222222","Joe","Elm Str.","NYC","01202"]}`)
	if code != http.StatusOK {
		t.Fatalf("post-failover insert: %d %v", code, res)
	}
	newKey := int64(res["key"].(float64))
	if _, ok := f.Monitor().Get(newKey); !ok {
		t.Fatal("post-failover write did not land on the promoted standby")
	}

	// The deposed primary was fenced over the wire: direct writes are
	// refused, so its history can never fork.
	if !p.Fenced() {
		t.Fatal("deposed primary is not fenced")
	}
	var cs repro.ChangeSet
	cs.Insert(repro.Tuple{"01", "908", "9999999", "X", "Y", "MH", "07974"})
	if _, err := p.Apply(&cs); !errors.Is(err, repro.ErrMonitorFenced) {
		t.Fatalf("deposed primary accepted a write: %v", err)
	}

	// No standbys remain, so a second failover is refused.
	if code, _ = postBody(t, url+"/promote", `{"group":"g0"}`); code != http.StatusConflict {
		t.Fatalf("second promote: %d, want 409", code)
	}
	_, st := getBody(t, url+"/stats")
	g0 := st["groups"].([]any)[0].(map[string]any)
	if fmt.Sprint(g0["epoch"]) != "1" || fmt.Sprint(g0["standbys"]) != "0" {
		t.Fatalf("group status after failover = %v", g0)
	}
}
