package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// countingNode wraps a stubNode's handler and counts /violations hits,
// so the test can see which node actually served each routed read.
type countingNode struct {
	node  *stubNode
	reads atomic.Int64
}

func (c *countingNode) handler() http.Handler {
	inner := c.node.handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/violations" || r.URL.Path == "/violations" {
			c.reads.Add(1)
		}
		inner.ServeHTTP(w, r)
	})
}

// TestDaemonReadFanout: consistency=primary pins every routed read to
// the primary; consistency=any spreads reads over the synced standby
// too, and both paths agree on the violation total.
func TestDaemonReadFanout(t *testing.T) {
	schema, sigma := custFixture(t)
	ctx := context.Background()
	p, err := repro.NewMonitor(schema, sigma, repro.MonitorOptions{Durable: t.TempDir(), RetainSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := repro.FollowMonitor(ctx, sigma, repro.MonitorOptions{Durable: t.TempDir()},
		repro.FollowOptions{Source: repro.NewMonitorChunkSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pc := &countingNode{node: &stubNode{m: p}}
	fc := &countingNode{node: &stubNode{f: f}}
	pts := httptest.NewServer(pc.handler())
	defer pts.Close()
	fts := httptest.NewServer(fc.handler())
	defer fts.Close()
	_, url := startRouter(t, []repro.ClusterGroupConfig{{
		Name:     "g0",
		Primary:  newHTTPBackend(pts.URL, 10*time.Second),
		Standbys: []repro.ClusterBackend{newHTTPBackend(fts.URL, 10*time.Second)},
	}})

	// Two tuples in one (CC, AC, PN) group with differing CT: one
	// variable violation, replicated to the standby before any read.
	for _, body := range []string{
		`{"values":["01","908","1111111","Mike","Tree Ave.","MH","07974"]}`,
		`{"values":["01","908","1111111","Rick","Tree Ave.","NYC","07974"]}`,
	} {
		if code, res := postBody(t, url+"/insert", body); code != http.StatusOK {
			t.Fatalf("insert: %d %v", code, res)
		}
	}
	for {
		if _, err := f.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if st := f.Status(); st.LagBytes == 0 {
			break
		}
	}
	want := p.ViolationCount()
	if want == 0 {
		t.Fatal("fixture produced no violations")
	}

	// Pinned to the primary: the standby serves nothing.
	for i := 0; i < 4; i++ {
		code, res := getBody(t, url+"/violations?consistency=primary")
		if code != http.StatusOK || fmt.Sprint(res["total"]) != fmt.Sprint(want) {
			t.Fatalf("primary read %d: %d %v", i, code, res)
		}
	}
	if n := fc.reads.Load(); n != 0 {
		t.Fatalf("consistency=primary sent %d reads to the standby", n)
	}

	// Round-robined: both nodes serve, and every answer is the total.
	for i := 0; i < 6; i++ {
		code, res := getBody(t, url+"/violations?consistency=any")
		if code != http.StatusOK || fmt.Sprint(res["total"]) != fmt.Sprint(want) {
			t.Fatalf("any read %d: %d %v", i, code, res)
		}
	}
	if fc.reads.Load() == 0 {
		t.Fatal("consistency=any never used the synced standby")
	}
	if pc.reads.Load() == 0 {
		t.Fatal("consistency=any never used the primary")
	}

	// Junk mode is refused up front.
	if code, _ := getBody(t, url+"/violations?consistency=quorum"); code != http.StatusBadRequest {
		t.Fatalf("junk consistency: %d, want 400", code)
	}

	// /stats?shards=1 fans per-group node stats out through the same
	// read routing.
	code, st := getBody(t, url+"/stats?shards=1&consistency=any")
	if code != http.StatusOK {
		t.Fatalf("stats fanout: %d", code)
	}
	shards, ok := st["shards"].(map[string]any)
	if !ok {
		t.Fatalf("stats fanout has no shards block: %v", st)
	}
	g0, ok := shards["g0"].(map[string]any)
	if !ok || g0["epoch"] == nil {
		t.Fatalf("shards.g0 = %v", shards["g0"])
	}
	// Without ?shards the router answers from its own state alone.
	_, st = getBody(t, url+"/stats")
	if _, ok := st["shards"]; ok {
		t.Fatalf("plain /stats grew a shards block: %v", st)
	}
}
