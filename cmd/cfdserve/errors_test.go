package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestErrorEnvelope pins the uniform error surface: every non-2xx
// response from cfdserve is {"error": {"code", "message"}} with the
// documented code for its status, across the versioned endpoints and
// their legacy aliases, and across node roles (primary, read-only
// standby, fenced).
func TestErrorEnvelope(t *testing.T) {
	// Three nodes, one per role. The standby follows the primary
	// in-process; the fenced node is latched by an epoch-1 stamp.
	data, cfds := writeInputs(t)
	psrv, err := newServer(data, cfds, repro.MonitorOptions{Durable: t.TempDir(), RetainSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.close()
	pts := httptest.NewServer(psrv.handler())
	defer pts.Close()

	sigma, err := repro.ParseCFDSet(figure2CFDs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := repro.FollowMonitor(context.Background(), sigma, repro.MonitorOptions{Durable: t.TempDir()},
		repro.FollowOptions{Source: repro.NewMonitorChunkSource(psrv.mon())})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := &server{}
	fsrv.setReplica(f.Monitor(), f)
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()
	defer fsrv.closeReplica()

	xsrv := newTestServer(t)
	xsrv.mon().Fence(1)
	xts := httptest.NewServer(xsrv.handler())
	defer xts.Close()

	do := func(base, method, path, body string) (int, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return resp.StatusCode, v
	}

	tests := []struct {
		name       string
		base       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"method not allowed", pts.URL, http.MethodGet, "/v1/insert", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad JSON body", pts.URL, http.MethodPost, "/v1/insert", "{", http.StatusBadRequest, "bad_request"},
		{"bad JSON on legacy alias", pts.URL, http.MethodPost, "/insert", "{", http.StatusBadRequest, "bad_request"},
		{"delete unknown key", pts.URL, http.MethodPost, "/v1/delete", `{"key":99999}`, http.StatusNotFound, "not_found"},
		{"violations unknown key", pts.URL, http.MethodGet, "/v1/violations?key=99999", "", http.StatusNotFound, "not_found"},
		{"violations bad cursor", pts.URL, http.MethodGet, "/v1/violations?cursor=zap", "", http.StatusBadRequest, "bad_request"},
		{"violations stale cursor", pts.URL, http.MethodGet, "/v1/violations?cursor=v999:0", "", http.StatusGone, "stale_cursor"},
		{"repairs method not allowed", pts.URL, http.MethodPost, "/v1/repairs", "{}", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"repairs bad trust threshold", pts.URL, http.MethodGet, "/v1/repairs?trust_threshold=2", "", http.StatusBadRequest, "bad_request"},
		{"repairs bad cursor", pts.URL, http.MethodGet, "/v1/repairs?cursor=zap", "", http.StatusBadRequest, "bad_request"},
		{"repairs stale cursor", pts.URL, http.MethodGet, "/v1/repairs?cursor=r999:0", "", http.StatusGone, "stale_cursor"},
		{"apply unknown suggestion", pts.URL, http.MethodPost, "/v1/repairs/apply", `{"ids":["zap"]}`, http.StatusNotFound, "not_found"},
		{"apply no ids", pts.URL, http.MethodPost, "/v1/repairs/apply", `{}`, http.StatusBadRequest, "bad_request"},
		{"promote a primary", pts.URL, http.MethodPost, "/v1/promote", "", http.StatusConflict, "conflict"},
		{"standby refuses writes", fts.URL, http.MethodPost, "/v1/insert", `{"values":["01","908","1111111","Eve","Tree Ave.","MH","07974"]}`, http.StatusConflict, "read_only"},
		{"standby refuses snapshot", fts.URL, http.MethodPost, "/v1/snapshot", "", http.StatusConflict, "conflict"},
		{"fenced node refuses writes", xts.URL, http.MethodPost, "/v1/insert", `{"values":["01","908","1111111","Eve","Tree Ave.","MH","07974"]}`, http.StatusForbidden, "fenced"},
		{"fenced node legacy alias", xts.URL, http.MethodPost, "/update", `{"key":0,"attr":"CT","value":"MH"}`, http.StatusForbidden, "fenced"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, res := do(tc.base, tc.method, tc.path, tc.body)
			if code != tc.wantStatus {
				t.Fatalf("status = %d %v, want %d", code, res, tc.wantStatus)
			}
			env, ok := res["error"].(map[string]any)
			if !ok {
				t.Fatalf("no error envelope: %v", res)
			}
			if env["code"] != tc.wantCode {
				t.Fatalf("code = %v, want %q", env["code"], tc.wantCode)
			}
			if msg, _ := env["message"].(string); msg == "" {
				t.Fatalf("empty message: %v", env)
			}
			// Only the fenced refusal carries an epoch, so a router can
			// re-sync its view of the group without a second round trip.
			if _, hasEpoch := env["epoch"]; hasEpoch != (tc.wantCode == "fenced") {
				t.Fatalf("epoch presence = %v for code %v: %v", hasEpoch, tc.wantCode, env)
			}
		})
	}
}
