package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro"
)

// The fencing wire surface: epoch-stamped mutations, POST /fence, the
// machine-readable "fenced" conflict code, caller-chosen insert keys,
// and the X-Wal-Epoch ship header. This is the contract cfdrouter
// programs against.

// postJSONEpoch posts a JSON body with an X-Cfd-Epoch stamp.
func postJSONEpoch(t *testing.T, url, body, epoch string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Cfd-Epoch", epoch)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func TestFencingWire(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// A fresh node is an unfenced primary at epoch 0.
	code, st := getJSONCode(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if fmt.Sprint(st["epoch"]) != "0" || st["fenced"] != false || st["role"] != "primary" {
		t.Fatalf("fresh node stats = epoch %v fenced %v role %v", st["epoch"], st["fenced"], st["role"])
	}

	// A write stamped with the node's current epoch is accepted.
	row := `{"values":["01","908","1111111","Rick","Tree Ave.","NYC","07974"]}`
	if code, res := postJSONEpoch(t, ts.URL+"/insert", row, "0"); code != http.StatusOK {
		t.Fatalf("epoch-0 insert: %d %v", code, res)
	}
	// A garbage stamp is the caller's bad request, not a conflict.
	if code, res := postJSONEpoch(t, ts.URL+"/update", `{"key":0,"attr":"CT","value":"MH"}`, "zap"); code != http.StatusBadRequest {
		t.Fatalf("bad epoch stamp: %d %v, want 400", code, res)
	}

	// Caller-chosen insert keys are honored and echoed back; reusing a
	// live key is a bad request, not a silent overwrite.
	code, res := postJSON(t, ts.URL+"/insert", `{"key":100,"values":["01","908","1111111","Eve","Tree Ave.","NYC","07974"]}`)
	if code != http.StatusOK || fmt.Sprint(res["key"]) != "100" {
		t.Fatalf("keyed insert: %d %v, want key 100", code, res)
	}
	if code, res = postJSON(t, ts.URL+"/insert", `{"key":100,"values":["01","908","1111111","Dup","Tree Ave.","NYC","07974"]}`); code != http.StatusBadRequest {
		t.Fatalf("colliding keyed insert: %d %v, want 400", code, res)
	}
	// Batched keyed inserts flow through /apply the same way, and a
	// delete with no key is rejected instead of targeting key 0.
	code, res = postJSON(t, ts.URL+"/apply", `{"ops":[{"op":"insert","key":200,"values":["01","908","1111111","Ada","Tree Ave.","NYC","07974"]}]}`)
	if code != http.StatusOK || fmt.Sprint(res["keys"]) != "[200]" {
		t.Fatalf("apply keyed insert: %d %v, want keys [200]", code, res)
	}
	if code, res = postJSON(t, ts.URL+"/apply", `{"ops":[{"op":"delete"}]}`); code != http.StatusBadRequest {
		t.Fatalf("keyless delete: %d %v, want 400", code, res)
	}

	// A write stamped AHEAD of the node proves it was deposed: refused
	// with the envelope's "fenced" code and the node's current epoch,
	// and the stamp itself fences the node against all further writes.
	fencedEnv := func(res map[string]any) map[string]any {
		env, _ := res["error"].(map[string]any)
		return env
	}
	code, res = postJSONEpoch(t, ts.URL+"/insert", row, "7")
	if env := fencedEnv(res); code != http.StatusForbidden || env["code"] != "fenced" || fmt.Sprint(env["epoch"]) != "0" {
		t.Fatalf("epoch-7 insert: %d %v, want 403 code=fenced epoch=0", code, res)
	}
	if code, res = postJSON(t, ts.URL+"/insert", row); code != http.StatusForbidden || fencedEnv(res)["code"] != "fenced" {
		t.Fatalf("unstamped insert on fenced node: %d %v, want 403 code=fenced", code, res)
	}
	if _, st = getJSONCode(t, ts.URL+"/stats"); st["fenced"] != true {
		t.Fatalf("stats after fencing stamp = %v", st["fenced"])
	}
	// POST /fence is the explicit form of the same latch: monotonic, so
	// a lower term is a no-op; the node's own epoch never moves (only
	// promotion raises it).
	code, res = postJSON(t, ts.URL+"/fence", `{"epoch":1}`)
	if code != http.StatusOK || fmt.Sprint(res["epoch"]) != "0" || res["fenced"] != true {
		t.Fatalf("fence: %d %v", code, res)
	}
}

// TestWALStreamEpochHeader: shipped chunks carry the writer's epoch so
// a follower can refuse a deposed primary's history.
func TestWALStreamEpochHeader(t *testing.T) {
	data, cfds := writeInputs(t)
	srv, err := newServer(data, cfds, repro.MonitorOptions{Durable: filepath.Join(t.TempDir(), "wal"), RetainSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	_, st := getJSONCode(t, ts.URL+"/stats")
	wal, ok := st["wal"].(map[string]any)
	if !ok {
		t.Fatalf("no wal block in stats: %v", st)
	}
	resp, err := http.Get(fmt.Sprintf("%s/wal/stream?from=%v,0", ts.URL, wal["generation"]))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Wal-Epoch"); got != "0" {
		t.Fatalf("X-Wal-Epoch = %q, want 0", got)
	}
}
