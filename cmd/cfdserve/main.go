// Command cfdserve turns the incremental Monitor into a long-lived
// service: it loads a CSV instance and a CFD set once, then accepts
// tuple-level changes and violation queries over a line-oriented protocol
// (stdin/stdout) or an HTTP/JSON API — every write answered with the exact
// violation delta it caused.
//
// Usage:
//
//	cfdserve -data tax.csv -cfds cfds.txt                # line loop on stdin
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080    # HTTP API
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080 -wal-dir /var/lib/cfd
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080 -wal-dir /var/lib/cfd \
//	         -fsync -group-commit-ops 512                # durable + group commit
//	cfdserve -cfds cfds.txt -http :8081 -wal-dir /var/lib/cfd2 \
//	         -follow http://primary:8080                 # hot standby
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080 \
//	         -pprof-addr localhost:6060 -log-level debug -log-json
//
// See docs/operations.md for the full runbook: topology recipes,
// promotion/failover procedure, the metrics catalog and tuning.
//
// With -wal-dir the node is durable: every accepted change is appended to
// a write-ahead log before it is applied, background snapshots bound the
// log, and a restart recovers the last acknowledged state from the
// directory — the CSV is only read on the very first boot. SIGTERM/SIGINT
// shut the server down gracefully: in-flight HTTP responses are flushed
// (http.Server.Shutdown), a final snapshot is taken and the journal is
// synced before the process exits.
//
// A durable node ships its WAL: GET /wal/snapshot streams the newest
// snapshot image and GET /wal/stream serves record-aligned segment
// chunks — closed segments (keep some with -retain-segments so a
// briefly-disconnected follower can resume instead of resyncing) and the
// flushed live tail. With -follow <primary-url> the node runs as a hot
// standby instead: it tails the primary's stream into its own -wal-dir,
// serves /violations, /stats and /discover from the replicated state,
// refuses mutations (409 with an explanatory error), and reports its
// replication lag under "replica" in /stats. POST /promote — or
// -promote-after, which does it automatically once the primary has been
// unreachable for that long — flips the standby into a writable primary
// at the exact record boundary it has applied; a follower restart
// resumes from its local snapshot + log tail, and a follower whose
// cursor fell below the primary's retention window resyncs from the
// current snapshot automatically. Follow mode requires -http (the line
// protocol cannot mutate a replica anyway); -data is not used.
//
// Line protocol (one command per line):
//
//	insert v1,v2,...        add a tuple (CSV values, schema order)
//	delete KEY              remove a tuple by key
//	update KEY ATTR VALUE   change one attribute
//	batch                   start collecting a ChangeSet...
//	  insert/delete/update    ...of ops (same syntax), applied by
//	end                     ...END as ONE batch: all-or-nothing,
//	                        one WAL record, one fsync
//	abort                   discard the open batch
//	violations              dump the live violation set
//	satisfied               print true/false
//	stats                   print tuples=N violations=M satisfied=B
//	snapshot                force a snapshot (durable mode)
//	quit                    exit
//
// HTTP API (JSON). Every endpoint lives under the /v1 prefix; the
// unversioned spellings below it are deprecated aliases kept for one
// release (see the versioning policy in docs/operations.md). New
// surface — the repair endpoints — exists under /v1 only.
//
//	POST /v1/insert  {"values": ["01","908",...]}    → {"key": K, "delta": {...}}
//	POST /v1/delete  {"key": 3}                      → {"delta": {...}}
//	POST /v1/update  {"key": 3, "attr": "CT", "value": "NYC"}
//	POST /v1/apply   {"ops": [{"op":"insert","values":[...]},
//	               {"op":"insert","key":7,"values":[...]},   (keyed: router-owned key spaces)
//	               {"op":"update","key":3,"attr":"CT","value":"NYC"},
//	               {"op":"delete","key":4}, ...]}    → {"keys": [K,...], "delta": {...}}
//	POST /v1/snapshot                                → {"generation": N} (admin; durable mode)
//	POST /v1/promote                                 → {"promoted": true, "epoch": E, ...} (follow mode)
//	POST /v1/fence   {"epoch": E}                    → {"epoch": ..., "fenced": true/false} (admin)
//	GET  /v1/violations                              → the live set (paginated, ETag "v<version>")
//	GET  /v1/repairs                                 → live cost-ranked repair suggestions
//	                                                   (paginated, ETag "r<version>"; ?trust_threshold=F
//	                                                   wires the streaming miner as the trust source)
//	POST /v1/repairs/apply {"ids": ["c0:3",...]}     → applies accepted suggestions as one ChangeSet
//	GET  /v1/stats                                   → {"tuples":N,...,"epoch":E,"role":"primary",...}
//	GET  /v1/metrics                                 → Prometheus text exposition of the node's metrics
//	GET  /v1/discover                                → the streaming miner's current CFD set
//	GET  /v1/wal/snapshot                            → snapshot image (binary; X-Wal-Seq header)
//	GET  /v1/wal/stream?from=SEQ,OFF[&max=BYTES]     → framed WAL records (binary; X-Wal-* headers,
//	                                                   X-Wal-Epoch carries the fencing epoch)
//
// Errors: every endpoint answers failures with the uniform envelope
// {"error": {"code": "...", "message": "...", "epoch": E?}} — among the
// codes, "fenced" (403, with the node's current epoch), "read_only"
// (409, the node is a standby), "stale_cursor" (410, the paginated set
// changed under the cursor) and "not_found" (404, unknown key or
// suggestion id) are machine-dispatched by routers and clients; the
// rest ("bad_request", "method_not_allowed", "conflict", "internal")
// classify the failure.
//
// GET /v1/repairs serves the live repair suggester (see WatchRepairs):
// the first call attaches it to the monitor's violation-delta and
// group-statistics feeds (one full planning pass); every later call
// re-plans only the violations the interleaving writes touched.
// Suggestions are cost-ranked; POST /v1/repairs/apply turns accepted
// ids into an ordinary fenced ChangeSet through the same apply path as
// POST /v1/apply. With ?trust_threshold=F the streaming miner becomes
// the suggester's trust source: a CFD whose live confidence falls below
// F suggests constraint relaxation instead of data edits.
//
// Fencing: every mutation may carry an X-Cfd-Epoch header stamping the
// epoch the caller believes this node's history is at (routers do; see
// cmd/cfdrouter). A mismatch is refused with 403 and {"error":{"code":
// "fenced", "epoch": E}} — the node either was deposed by a promotion
// (its epoch is lower than the cluster's) or has already moved past the
// caller's stale token.
// POST /v1/promote durably bumps the epoch before the first write is
// accepted, and followers refuse /v1/wal/stream chunks whose X-Wal-Epoch
// is below their own — a deposed primary cannot ship a forked history.
//
// Observability: every endpoint is wrapped in request/error counters and
// a latency histogram (cfdserve_http_* series, labeled by path), and the
// monitor's own instrumentation — apply-stage timings, WAL append/fsync
// latencies, replication lag, miner refresh cost — is exposed through
// GET /metrics in the Prometheus text format, no client library
// required. -pprof-addr serves net/http/pprof on a second, private
// listener for CPU/heap profiles. Diagnostics go through log/slog:
// -log-level picks the threshold (debug, info, warn, error) and
// -log-json switches the stderr stream to JSON lines; the startup
// banner stays on stdout for scripts that parse the bound address.
//
// GET /discover serves streaming CFD discovery over the live instance:
// the first call attaches a miner to the monitor's group indexes (one
// full scoring pass); every later call re-scores only the groups the
// interleaving writes touched. Config query params — max_lhs (serving
// limit 3: the lattice is exponential in it and an attach quiesces
// writers), min_support, min_confidence, max_patterns — select the
// mining configuration; a call with a different config re-attaches the
// miner (another full pass), so clients should settle on one.
//
// POST /apply and BATCH…END apply the op vector through Monitor.Apply:
// the batch is validated as a unit (an invalid op rejects all of it),
// journaled as a single WAL record, and answered with the combined net
// violation delta plus the keys assigned to its inserts, in op order.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof-addr serves the DefaultServeMux handlers
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

// processStart anchors the uptime reported by GET /stats.
var processStart = time.Now()

func main() {
	var (
		dataPath     = flag.String("data", "", "CSV instance to monitor (required, except in follow mode)")
		cfdPath      = flag.String("cfds", "", "CFD file in text notation (required)")
		httpAddr     = flag.String("http", "", "serve the HTTP API on this address instead of the line protocol")
		shards       = flag.Int("shards", 0, "lock shards per index (0 = default)")
		walDir       = flag.String("wal-dir", "", "durable mode: write-ahead log + snapshots in this directory; restarts recover from it instead of reloading the CSV")
		fsync        = flag.Bool("fsync", false, "fsync the WAL after every record (acknowledged writes survive OS crash; slower)")
		gcDelay      = flag.Duration("group-commit-delay", 0, "group commit: window leader waits this long for more writers before committing (0 = no deliberate wait)")
		gcOps        = flag.Int("group-commit-ops", 0, "group commit: close a window early once this many ops are queued; setting either -group-commit-* flag enables coalescing concurrent writers into one WAL record + fsync per window")
		snapRecords  = flag.Int("snapshot-records", 10000, "roll a background snapshot after this many WAL records (0 = off)")
		snapInterval = flag.Duration("snapshot-interval", 0, "also snapshot on this wall-clock period, e.g. 5m (0 = off)")
		retainSegs   = flag.Int("retain-segments", 2, "durable mode: closed WAL segments kept behind the current one, so a briefly-disconnected follower resumes its cursor instead of resyncing (0 = none)")
		follow       = flag.String("follow", "", "run as a hot standby of this primary URL, tailing its WAL into -wal-dir (requires -http and -wal-dir; -data is not used)")
		followPoll   = flag.Duration("follow-poll", 200*time.Millisecond, "follow mode: idle wait between tail polls once caught up")
		promoteAfter = flag.Duration("promote-after", 0, "follow mode: auto-promote to a writable primary once the primary has been unreachable this long (0 = manual POST /promote)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this second, private address (off when empty)")
		logLevel     = flag.String("log-level", "info", "log threshold: debug, info, warn or error")
		logJSON      = flag.Bool("log-json", false, "write logs to stderr as JSON lines instead of text")
	)
	flag.Parse()
	lg, err := cliutil.NewLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdserve:", err)
		os.Exit(2)
	}
	opts := repro.MonitorOptions{
		Shards:         *shards,
		Durable:        *walDir,
		Fsync:          *fsync,
		GroupCommit:    repro.MonitorGroupCommit{MaxDelay: *gcDelay, MaxOps: *gcOps},
		SnapshotEvery:  *snapRecords,
		RetainSegments: *retainSegs,
		// The daemon publishes on the process-global registry, so the
		// monitor's series and the HTTP middleware's land in one scrape.
		Metrics: repro.DefaultMetrics(),
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			lg.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				lg.Error("pprof server failed", "error", err)
			}
		}()
	}

	if *follow != "" {
		if *cfdPath == "" || *walDir == "" || *httpAddr == "" {
			lg.Error("-follow requires -cfds, -wal-dir and -http")
			os.Exit(2)
		}
		fo := repro.FollowOptions{
			Source:       newHTTPSource(strings.TrimRight(*follow, "/")),
			PollInterval: *followPoll,
			PromoteAfter: *promoteAfter,
		}
		if err := runFollower(ctx, lg, *cfdPath, *httpAddr, opts, fo); err != nil {
			lg.Error("follower failed", "error", err)
			os.Exit(2)
		}
		return
	}

	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	srv, err := newServer(*dataPath, *cfdPath, opts)
	if err != nil {
		lg.Error("startup failed", "error", err)
		os.Exit(2)
	}
	srv.log = lg
	if *snapInterval > 0 && srv.mon().JournalStats().Durable {
		go srv.snapshotLoop(ctx, *snapInterval)
	}
	source := "loaded from CSV"
	if srv.mon().Recovered() {
		source = fmt.Sprintf("recovered from %s (generation %d)", *walDir, srv.mon().JournalStats().Generation)
	}

	if *httpAddr != "" {
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			lg.Error("listen failed", "error", err)
			os.Exit(2)
		}
		fmt.Printf("monitoring %d tuples against %d CFDs on %s (%s)\n",
			srv.mon().Len(), len(srv.mon().Sigma()), lis.Addr(), source)
		err = srv.serveHTTP(ctx, lis)
		if cerr := srv.close(); err == nil {
			err = cerr
		}
		if err != nil {
			lg.Error("server failed", "error", err)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("monitoring %d tuples against %d CFDs (%s); type 'help' for commands\n",
		srv.mon().Len(), len(srv.mon().Sigma()), source)
	done := make(chan error, 1)
	go func() { done <- srv.lineLoop(os.Stdin, os.Stdout) }()
	var loopErr error
	select {
	case loopErr = <-done:
	case <-ctx.Done():
		fmt.Println("signal received, shutting down")
	}
	if cerr := srv.close(); loopErr == nil {
		loopErr = cerr
	}
	if loopErr != nil {
		lg.Error("line loop failed", "error", loopErr)
		os.Exit(2)
	}
}

// runFollower is follow mode: boot (or resume) the standby, serve the
// read API, and supervise the tail loop until shutdown or promotion.
// After a promotion the same process keeps serving — now accepting
// writes — so failover does not even drop the listener.
func runFollower(ctx context.Context, lg *slog.Logger, cfdPath, httpAddr string, opts repro.MonitorOptions, fo repro.FollowOptions) error {
	sigma, err := cliutil.LoadCFDs(cfdPath)
	if err != nil {
		return err
	}
	f, err := repro.FollowMonitor(ctx, sigma, opts, fo)
	if err != nil {
		return err
	}
	srv := &server{log: lg}
	srv.setReplica(f.Monitor(), f)
	lis, err := net.Listen("tcp", httpAddr)
	if err != nil {
		f.Close()
		return err
	}
	st := f.Status()
	fmt.Printf("following %s from generation %d offset %d; serving %d tuples read-only on %s\n",
		fo.Source.(*httpSource).base, st.Seq, st.Offset, f.Monitor().Len(), lis.Addr())

	fctx, fcancel := context.WithCancel(ctx)
	defer fcancel()
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		srv.followLoop(fctx, sigma, opts, fo)
	}()
	err = srv.serveHTTP(ctx, lis)
	fcancel()
	<-tailDone
	if cerr := srv.closeReplica(); err == nil {
		err = cerr
	}
	return err
}

// followLoop supervises the tail loop: transient fetch errors retry
// inside Run, a cursor below the primary's retention window rebuilds the
// follower with a full resync (swapping the served monitor atomically),
// and promotion — POST /promote or -promote-after — ends the loop with
// the monitor writable.
func (s *server) followLoop(ctx context.Context, sigma []*repro.CFD, opts repro.MonitorOptions, fo repro.FollowOptions) {
	for {
		f := s.fol()
		err := f.Run(ctx)
		if err == nil || ctx.Err() != nil {
			if f.Status().Promoted {
				s.logger().Info("promoted: accepting writes at the last applied record boundary")
			}
			return
		}
		if errors.Is(err, repro.ErrWALSegmentGone) {
			s.logger().Warn("cursor below primary retention window; resyncing from snapshot")
			// The old follower must close first: the rebuild wipes and
			// re-locks the same local directory. Reads keep serving the
			// (now frozen) old monitor while the resync retries — a
			// transient failure must not leave a permanently dead
			// replica behind a live listener.
			f.Close()
			resync := fo
			resync.Resync = true
			for {
				nf, rerr := repro.FollowMonitor(ctx, sigma, opts, resync)
				if rerr == nil {
					s.setReplica(nf.Monitor(), nf)
					break
				}
				s.logger().Error("resync failed, will retry", "error", rerr)
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Second):
				}
			}
			continue
		}
		// A local failure (full disk, poisoned journal): the tail loop
		// cannot safely continue, and promotion onto broken storage is
		// worse. Keep serving reads; the operator sees this and the
		// replica block's last_error.
		s.logger().Error("follower stopped", "error", err)
		return
	}
}

type server struct {
	// mv is the served monitor and fv the follower driving it (nil on a
	// primary). Both are atomic: a retention-window resync rebuilds the
	// replica and swaps them under live request traffic.
	mv atomic.Pointer[repro.Monitor]
	fv atomic.Pointer[repro.MonitorFollower]

	// log is the diagnostic logger; nil (tests building a bare server)
	// falls back to slog.Default via logger().
	log *slog.Logger

	// The lazily-attached discovery miner behind GET /discover, cached
	// per config: re-attaching costs a full scoring pass, so the one
	// live miner is kept until a request names a different config.
	mineMu   sync.Mutex
	miner    *repro.CFDMiner
	minerCfg repro.DiscoveryConfig

	// The lazily-attached repair suggester behind GET /v1/repairs,
	// cached per trust threshold: re-attaching pays a full planning
	// pass, so the one live suggester is kept until a request names a
	// different threshold.
	sugMu  sync.Mutex
	sug    *repro.RepairSuggester
	sugThr float64
}

// mon returns the currently served monitor.
func (s *server) mon() *repro.Monitor { return s.mv.Load() }

// fol returns the follower, nil on a primary.
func (s *server) fol() *repro.MonitorFollower { return s.fv.Load() }

// logger never returns nil.
func (s *server) logger() *slog.Logger {
	if s.log != nil {
		return s.log
	}
	return slog.Default()
}

// metrics is the registry the HTTP surface publishes on: the served
// monitor's (the process-global one when main wired opts.Metrics, a
// private one in tests — so httptest servers scrape hermetically).
func (s *server) metrics() *obs.Registry {
	if m := s.mon(); m != nil {
		return m.Metrics()
	}
	return obs.Disabled()
}

// setReplica swaps in a (new) replicated monitor + follower pair. The
// whole swap — miner retirement included — happens under mineMu, so a
// concurrent /discover cannot read the old monitor and cache a fresh
// miner against it after the swap (minerFor reads s.mon() under the
// same mutex). The follower is stored before the monitor so a reader
// that sees the new monitor also sees its follower.
func (s *server) setReplica(m *repro.Monitor, f *repro.MonitorFollower) {
	s.mineMu.Lock()
	defer s.mineMu.Unlock()
	if s.miner != nil {
		s.miner.Close()
		s.miner = nil
	}
	// The suggester is retired the same way, under its own mutex —
	// suggesterFor reads s.mon() under sugMu, so it either caches
	// against the new monitor or has its stale suggester closed here.
	s.sugMu.Lock()
	if s.sug != nil {
		s.sug.Close()
		s.sug = nil
	}
	s.fv.Store(f)
	s.mv.Store(m)
	s.sugMu.Unlock()
}

func newServer(dataPath, cfdPath string, opts repro.MonitorOptions) (*server, error) {
	sigma, err := cliutil.LoadCFDs(cfdPath)
	if err != nil {
		return nil, err
	}
	srv := &server{}
	// A durable node that has booted before carries its state (schema
	// included) in the WAL directory — the CSV is not parsed, or even
	// required to exist, after the first boot.
	if opts.Durable != "" {
		m, err := repro.OpenMonitor(sigma, opts)
		if err == nil {
			srv.mv.Store(m)
			return srv, nil
		}
		if !errors.Is(err, repro.ErrNoMonitorState) {
			return nil, err
		}
	}
	// The seed load and the monitor share one value pool: the CSV's
	// categorical values are deduplicated once and the monitor interns
	// against the same copies.
	rel, pool, err := cliutil.LoadCSVPooled(dataPath)
	if err != nil {
		return nil, err
	}
	opts.Intern = pool
	m, err := repro.LoadMonitor(rel, sigma, opts)
	if err != nil {
		return nil, err
	}
	srv.mv.Store(m)
	return srv, nil
}

// serveHTTP serves the API until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight responses are flushed, and
// only then does the call return.
func (s *server) serveHTTP(ctx context.Context, lis net.Listener) error {
	hs := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// snapshotLoop forces a snapshot on a wall-clock cadence, alongside the
// record-count trigger of -snapshot-records.
func (s *server) snapshotLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.mon().ForceSnapshot(); err != nil {
				s.logger().Error("periodic snapshot failed", "error", err)
			}
		}
	}
}

// close flushes the durable state on the way out: a final snapshot (so
// the next boot recovers instantly) and a synced journal. A still-
// following replica must not roll its own generations, so only writable
// monitors snapshot here.
func (s *server) close() error {
	m := s.mon()
	if m.JournalStats().Durable && !m.ReadOnly() {
		if err := m.ForceSnapshot(); err != nil {
			s.logger().Error("final snapshot failed", "error", err)
		}
	}
	return m.Close()
}

// closeReplica shuts follow mode down: the follower's journal closes
// through Follower.Close while still following; a promoted monitor is a
// primary now and takes the primary's close path (final snapshot).
func (s *server) closeReplica() error {
	f := s.fol()
	if f == nil {
		return s.close()
	}
	if f.Status().Promoted {
		if err := f.Close(); err != nil {
			return err
		}
		return s.close()
	}
	return f.Close()
}

// --- line protocol ---

// lineLoop runs the text protocol until quit/EOF; a scanner failure (line
// over the buffer cap, read error) is returned so the caller can report it
// instead of exiting as if the stream ended cleanly.
//
// BATCH…END frames are collected here: between the two markers every
// insert/delete/update line lands in one ChangeSet, applied by END as a
// single Monitor.Apply — all-or-nothing, one WAL record. A malformed op
// line poisons the frame: the framing still runs to END (a pipelining
// client's remaining op lines must not escape into immediate execution),
// but the whole frame is then discarded — nothing in it is applied.
func (s *server) lineLoop(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var batch *repro.ChangeSet
	batchDead := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if batch != nil {
			verb, rest, _ := strings.Cut(line, " ")
			switch strings.ToLower(verb) {
			case "end":
				if batchDead {
					fmt.Fprintln(out, "batch discarded: earlier op was malformed, nothing applied")
				} else {
					s.applyBatch(batch, out)
				}
				batch, batchDead = nil, false
			case "abort":
				fmt.Fprintln(out, "batch discarded")
				batch, batchDead = nil, false
			default:
				if batchDead {
					continue // swallow the rest of the poisoned frame
				}
				if err := parseOp(strings.ToLower(verb), rest, batch); err != nil {
					fmt.Fprintln(out, "error:", err)
					batchDead = true
				}
			}
			continue
		}
		if low := strings.ToLower(line); low == "quit" || low == "exit" {
			return nil
		}
		if strings.ToLower(line) == "batch" {
			batch = &repro.ChangeSet{}
			fmt.Fprintln(out, "batch open: insert/delete/update ops, then 'end' (or 'abort')")
			continue
		}
		s.execLine(line, out)
	}
	if batch != nil {
		fmt.Fprintln(out, "error: unterminated batch discarded")
	}
	return sc.Err()
}

// parseOp parses one mutation line into the open ChangeSet.
func parseOp(verb, rest string, cs *repro.ChangeSet) error {
	switch verb {
	case "insert":
		rec, err := csv.NewReader(strings.NewReader(rest)).Read()
		if err != nil {
			return fmt.Errorf("bad CSV values: %w", err)
		}
		cs.Insert(repro.Tuple(rec))
	case "delete":
		key, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		cs.Delete(key)
	case "update":
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			return fmt.Errorf("usage: update KEY ATTR VALUE")
		}
		key, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		cs.Update(key, parts[1], parts[2])
	default:
		return fmt.Errorf("unknown op %q in batch (insert/delete/update, then 'end' — or 'abort' to discard)", verb)
	}
	return nil
}

// applyBatch runs the collected frame as one Monitor.Apply and reports
// the inserted keys (in op order) plus the combined net delta.
func (s *server) applyBatch(cs *repro.ChangeSet, out io.Writer) {
	delta, err := s.mon().Apply(cs)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "applied %d ops\n", cs.Len())
	for i := range cs.Ops {
		if cs.Ops[i].Kind == repro.OpInsert {
			fmt.Fprintf(out, "key %d\n", cs.Ops[i].Key)
		}
	}
	printDelta(out, delta)
}

func (s *server) execLine(line string, out io.Writer) {
	verb, rest, _ := strings.Cut(line, " ")
	// One casing rule everywhere: verbs fold like the BATCH…END markers.
	switch strings.ToLower(verb) {
	case "help":
		fmt.Fprintln(out, "commands: insert v1,v2,... | delete KEY | update KEY ATTR VALUE | batch ... end | violations | satisfied | stats | snapshot | quit")
	case "insert":
		rec, err := csv.NewReader(strings.NewReader(rest)).Read()
		if err != nil {
			fmt.Fprintln(out, "error: bad CSV values:", err)
			return
		}
		key, delta, err := s.mon().Insert(repro.Tuple(rec))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintf(out, "key %d\n", key)
		printDelta(out, delta)
	case "delete":
		key, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad key:", err)
			return
		}
		delta, err := s.mon().Delete(key)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, "deleted", key)
		printDelta(out, delta)
	case "update":
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			fmt.Fprintln(out, "error: usage: update KEY ATTR VALUE")
			return
		}
		key, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad key:", err)
			return
		}
		delta, err := s.mon().Update(key, parts[1], parts[2])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, "updated", key)
		printDelta(out, delta)
	case "violations":
		st := s.mon().Violations()
		if st.Clean() {
			fmt.Fprintln(out, "no violations")
			return
		}
		for i, v := range st.PerCFD {
			if v.Total() == 0 {
				continue
			}
			fmt.Fprintf(out, "cfd %d: %d constant-violating tuples, %d conflicting groups\n",
				i, len(v.ConstTuples), len(v.VariableKeys))
			for _, k := range v.ConstTuples {
				fmt.Fprintf(out, "  tuple %d\n", k)
			}
			for _, x := range v.VariableKeys {
				fmt.Fprintf(out, "  group X = (%s)\n", strings.Join(x, ", "))
			}
		}
	case "satisfied":
		fmt.Fprintln(out, s.mon().Satisfied())
	case "stats":
		fmt.Fprintf(out, "tuples=%d violations=%d satisfied=%v\n",
			s.mon().Len(), s.mon().ViolationCount(), s.mon().Satisfied())
		if js := s.mon().JournalStats(); js.Durable {
			fmt.Fprintf(out, "wal dir=%s generation=%d segment_records=%d recovered=%v\n",
				js.Dir, js.Generation, js.SegmentRecords, js.Recovered)
		}
	case "snapshot":
		if err := s.mon().ForceSnapshot(); err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintf(out, "snapshot done, generation %d\n", s.mon().JournalStats().Generation)
	default:
		fmt.Fprintf(out, "error: unknown command %q (try 'help')\n", verb)
	}
}

// maxDiscoverLHS bounds max_lhs on the serving endpoint: the candidate
// lattice is exponential in it, and a config change pays a full
// scoring pass under the monitor's write locks — an unbounded value
// would let one cheap GET stall every writer for minutes.
const maxDiscoverLHS = 3

// discoverConfig parses the /discover query params into a mining config,
// normalized to the miner's documented defaults so that an explicit
// "?max_lhs=1" (or a zero value the miner would default) and a bare
// request share one cached miner.
func discoverConfig(q url.Values) (repro.DiscoveryConfig, error) {
	cfg := repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2, MinConfidence: 1}
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s %q: %w", name, v, err)
			}
			*dst = n
		}
		return nil
	}
	if err := intParam("max_lhs", &cfg.MaxLHS); err != nil {
		return cfg, err
	}
	if err := intParam("min_support", &cfg.MinSupport); err != nil {
		return cfg, err
	}
	if err := intParam("max_patterns", &cfg.MaxPatterns); err != nil {
		return cfg, err
	}
	if v := q.Get("min_confidence"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad min_confidence %q: %w", v, err)
		}
		cfg.MinConfidence = f
	}
	if cfg.MaxLHS > maxDiscoverLHS {
		return cfg, fmt.Errorf("max_lhs %d above the serving limit %d", cfg.MaxLHS, maxDiscoverLHS)
	}
	// Normalize the values the miner would default, so every spelling of
	// the same effective config hits the same cached miner instead of
	// paying a re-attach.
	if cfg.MaxLHS <= 0 {
		cfg.MaxLHS = 1
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 2
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 1
	}
	return cfg, nil
}

// minerFor returns the cached miner when the config matches, otherwise
// attaches a fresh one (full scoring pass) and retires the old.
func (s *server) minerFor(cfg repro.DiscoveryConfig) (*repro.CFDMiner, error) {
	s.mineMu.Lock()
	defer s.mineMu.Unlock()
	if s.miner != nil && s.minerCfg == cfg {
		return s.miner, nil
	}
	mi, err := repro.WatchDiscovery(s.mon(), cfg)
	if err != nil {
		return nil, err
	}
	if s.miner != nil {
		s.miner.Close()
	}
	s.miner, s.minerCfg = mi, cfg
	return mi, nil
}

// suggesterFor returns the cached repair suggester when the trust
// threshold matches, otherwise attaches a fresh one (full planning
// pass) and retires the old. A positive threshold wires the cached
// streaming miner in as the trust source — its candidate confidences
// are refreshed here so the suggester's trust pass reads live values.
func (s *server) suggesterFor(thr float64) (*repro.RepairSuggester, error) {
	var trust repro.RepairTrustSource
	if thr > 0 {
		mi, err := s.minerFor(repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2, MinConfidence: 1})
		if err != nil {
			return nil, err
		}
		mi.Refresh()
		trust = mi
	}
	s.sugMu.Lock()
	defer s.sugMu.Unlock()
	if s.sug != nil && s.sugThr == thr {
		return s.sug, nil
	}
	sg, err := repro.WatchRepairs(s.mon(), repro.SuggestOptions{Trust: trust, TrustThreshold: thr})
	if err != nil {
		return nil, err
	}
	if s.sug != nil {
		s.sug.Close()
	}
	s.sug, s.sugThr = sg, thr
	return sg, nil
}

// --- error envelope ---

// apiError is the uniform error envelope every endpoint (here and in
// cmd/cfdrouter) answers failures with:
//
//	{"error": {"code": "...", "message": "...", "epoch": E?}}
//
// Code is the machine-dispatched classification; Epoch rides along on
// "fenced" errors so the caller can refresh its token without another
// round trip.
type apiError struct {
	Code    string  `json:"code"`
	Message string  `json:"message"`
	Epoch   *uint64 `json:"epoch,omitempty"`
}

// codeFor maps a response status to the envelope code; role errors
// ("fenced", "read_only") are stamped explicitly by mutErr instead.
func codeFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "fenced"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "stale_cursor"
	case http.StatusBadGateway:
		return "bad_gateway"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]apiError{"error": {Code: codeFor(status), Message: err.Error()}})
}

func printDelta(out io.Writer, d *repro.ViolationDelta) {
	for _, c := range d.Added {
		fmt.Fprintf(out, "+ %s\n", c)
	}
	for _, c := range d.Removed {
		fmt.Fprintf(out, "- %s\n", c)
	}
	if d.Empty() {
		fmt.Fprintln(out, "no violation change")
	}
}

// --- HTTP API ---

type jsonChange struct {
	CFD   int      `json:"cfd"`
	Kind  string   `json:"kind"`
	Tuple *int64   `json:"tuple,omitempty"`
	Key   []string `json:"key,omitempty"`
}

type jsonDelta struct {
	Added   []jsonChange `json:"added"`
	Removed []jsonChange `json:"removed"`
}

func toJSONDelta(d *repro.ViolationDelta) jsonDelta {
	conv := func(cs []repro.ViolationChange) []jsonChange {
		out := make([]jsonChange, 0, len(cs))
		for _, c := range cs {
			jc := jsonChange{CFD: c.CFD, Kind: c.Kind.String()}
			if c.Kind == repro.ConstViolation {
				tuple := c.Tuple
				jc.Tuple = &tuple
			} else {
				jc.Key = c.Key
			}
			out = append(out, jc)
		}
		return out
	}
	return jsonDelta{Added: conv(d.Added), Removed: conv(d.Removed)}
}

type jsonEdit struct {
	Key  int64  `json:"key"`
	Attr string `json:"attr"`
	From string `json:"from"`
	To   string `json:"to"`
}

type jsonSuggestion struct {
	ID   string  `json:"id"`
	CFD  int     `json:"cfd"`
	Kind string  `json:"kind"`
	Cost float64 `json:"cost"`
	// Key is set on tuple-level suggestions (constant violations), X on
	// group-level ones (variable violations).
	Key        *int64     `json:"key,omitempty"`
	X          []string   `json:"x,omitempty"`
	Attr       string     `json:"attr,omitempty"`
	To         string     `json:"to,omitempty"`
	Tuples     int        `json:"tuples,omitempty"`
	Confidence float64    `json:"confidence,omitempty"`
	Reason     string     `json:"reason,omitempty"`
	Edits      []jsonEdit `json:"edits,omitempty"`
}

func toJSONSuggestion(sg *repro.RepairSuggestion) jsonSuggestion {
	out := jsonSuggestion{
		ID: sg.ID, CFD: sg.CFD, Kind: sg.Kind.String(), Cost: sg.Cost,
		X: sg.X, Attr: sg.Attr, To: sg.To, Tuples: sg.Tuples,
		Confidence: sg.Confidence, Reason: sg.Reason,
	}
	if sg.X == nil && sg.Kind != repro.SuggestRelax {
		key := sg.Key
		out.Key = &key
	}
	for _, e := range sg.Edits {
		out.Edits = append(out.Edits, jsonEdit{Key: e.Key, Attr: e.Attr, From: e.From, To: e.To})
	}
	return out
}

// statusWriter records the response status so the middleware can count
// error responses; an implicit 200 (first Write without WriteHeader) is
// recorded too.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// buildInfo is the binary's identity for GET /stats, computed once: the
// Go version is always present, the rest as the build embedded it.
var buildInfo = sync.OnceValue(func() map[string]any {
	info := map[string]any{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info["module"] = bi.Main.Path
	if bi.Main.Version != "" {
		info["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			info["revision"] = kv.Value
		}
	}
	return info
})

// applyMut applies one HTTP mutation's ChangeSet, honoring the
// X-Cfd-Epoch fencing stamp when the caller (a router) sent one: the
// write is refused unless this node's history is at exactly that epoch.
// Requests without the header take the plain path — single-node
// clients, for whom the node's own epoch is trivially current.
func (s *server) applyMut(r *http.Request, cs *repro.ChangeSet) (*repro.ViolationDelta, error) {
	if h := r.Header.Get("X-Cfd-Epoch"); h != "" {
		epoch, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad X-Cfd-Epoch %q: %w", h, err)
		}
		return s.mon().ApplyAt(cs, epoch)
	}
	return s.mon().Apply(cs)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	reg := s.metrics()
	// handle wraps every endpoint in its per-path request metrics: a
	// request counter, an error counter (status >= 400), and a latency
	// histogram. The handles are registered up front so the hot path
	// only does atomic adds.
	handle := func(path string, h http.HandlerFunc) {
		reqs := reg.Counter("cfdserve_http_requests_total", "HTTP requests served, by endpoint.", obs.L("path", path))
		errs := reg.Counter("cfdserve_http_errors_total", "HTTP responses with status >= 400, by endpoint.", obs.L("path", path))
		dur := reg.DurationHistogram("cfdserve_http_request_seconds", "HTTP request latency, by endpoint.", obs.L("path", path))
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := statusWriter{ResponseWriter: w}
			h(&sw, r)
			reqs.Inc()
			if sw.status >= 400 {
				errs.Inc()
			}
			dur.ObserveSince(start)
		})
	}
	// route registers an endpoint under /v1 and at its deprecated
	// unversioned alias (kept one release; see docs/operations.md). Each
	// spelling carries its own per-path metric series, so alias traffic
	// is visible during the migration window. New endpoints (the repair
	// surface) register via handle("/v1/...") only.
	route := func(path string, h http.HandlerFunc) {
		handle("/v1"+path, h)
		handle(path, h)
	}
	readBody := func(w http.ResponseWriter, r *http.Request, v any) bool {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return false
		}
		return true
	}
	// mutErr maps a refused mutation onto the envelope's role codes: a
	// fenced node answers 403 "fenced" with its current epoch (the
	// caller's token is stale — re-query and retry), a read-only standby
	// answers 409 "read_only" (promote it or write to the primary), and
	// anything else is the caller's bad request at the fallback status.
	mutErr := func(w http.ResponseWriter, err error, fallback int) {
		switch {
		case errors.Is(err, repro.ErrMonitorFenced):
			epoch := s.mon().Epoch()
			writeJSON(w, http.StatusForbidden, map[string]apiError{"error": {Code: "fenced", Message: err.Error(), Epoch: &epoch}})
		case errors.Is(err, repro.ErrMonitorReadOnly):
			writeJSON(w, http.StatusConflict, map[string]apiError{"error": {Code: "read_only", Message: err.Error()}})
		default:
			writeErr(w, fallback, err)
		}
	}

	route("/insert", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Values []string `json:"values"`
			// Key, when present, is a caller-chosen key (a router that
			// owns the key space); absent means the node allocates.
			Key *int64 `json:"key"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		if req.Key != nil {
			cs.InsertKeyed(*req.Key, repro.Tuple(req.Values))
		} else {
			cs.Insert(repro.Tuple(req.Values))
		}
		delta, err := s.applyMut(r, &cs)
		if err != nil {
			mutErr(w, err, http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"key": cs.Ops[0].Key, "delta": toJSONDelta(delta)})
	})
	route("/delete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key int64 `json:"key"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		cs.Delete(req.Key)
		delta, err := s.applyMut(r, &cs)
		if err != nil {
			mutErr(w, err, http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"delta": toJSONDelta(delta)})
	})
	route("/update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key   int64  `json:"key"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		cs.Update(req.Key, req.Attr, req.Value)
		delta, err := s.applyMut(r, &cs)
		if err != nil {
			mutErr(w, err, http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"delta": toJSONDelta(delta)})
	})
	// Batched ingest: one ChangeSet per request, applied atomically as a
	// single WAL record. Inserted keys come back in op order.
	route("/apply", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []struct {
				Op string `json:"op"`
				// Key targets delete/update; on an insert it is the
				// optional caller-chosen key (routed writes).
				Values []string `json:"values,omitempty"`
				Key    *int64   `json:"key,omitempty"`
				Attr   string   `json:"attr,omitempty"`
				Value  string   `json:"value,omitempty"`
			} `json:"ops"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		for i, o := range req.Ops {
			switch o.Op {
			case "insert":
				if o.Key != nil {
					cs.InsertKeyed(*o.Key, repro.Tuple(o.Values))
				} else {
					cs.Insert(repro.Tuple(o.Values))
				}
			case "delete":
				if o.Key == nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: delete requires a key", i))
					return
				}
				cs.Delete(*o.Key)
			case "update":
				if o.Key == nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: update requires a key", i))
					return
				}
				cs.Update(*o.Key, o.Attr, o.Value)
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: unknown op %q", i, o.Op))
				return
			}
		}
		delta, err := s.applyMut(r, &cs)
		if err != nil {
			mutErr(w, err, http.StatusBadRequest)
			return
		}
		keys := make([]int64, 0, len(cs.Ops))
		for i := range cs.Ops {
			if cs.Ops[i].Kind == repro.OpInsert {
				keys = append(keys, cs.Ops[i].Key)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ops": cs.Len(), "keys": keys, "delta": toJSONDelta(delta),
		})
	})
	// GET /violations serves the maintained violation view (a pointer
	// load at an unchanged version, never a shard scan). Query surface:
	//   ?key=K            point lookup — the violations tuple K is in
	//   ?cfd=I            only CFD I's violations (total follows the filter)
	//   ?limit=N&cursor=C cursor pagination; cursors are stable within a
	//                     view version ("v<version>:<offset>") and expire
	//                     (410) when the set changes
	// The response carries ETag "v<version>"; a poll with If-None-Match
	// at the current version is answered 304 from the version counter
	// alone, without materializing anything.
	route("/violations", func(w http.ResponseWriter, r *http.Request) {
		type perCFD struct {
			CFD          int        `json:"cfd"`
			ConstTuples  []int64    `json:"const_tuples"`
			VariableKeys [][]string `json:"variable_keys"`
		}
		q := r.URL.Query()
		if ks := q.Get("key"); ks != "" {
			key, err := strconv.ParseInt(ks, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad key %q", ks))
				return
			}
			st, ok := s.mon().ViolationsFor(key)
			if !ok {
				writeErr(w, http.StatusNotFound, fmt.Errorf("no tuple with key %d", key))
				return
			}
			out := make([]perCFD, 0, len(st.PerCFD))
			for i, v := range st.PerCFD {
				if v.Total() > 0 {
					out = append(out, perCFD{CFD: i, ConstTuples: v.ConstTuples, VariableKeys: v.VariableKeys})
				}
			}
			writeJSON(w, http.StatusOK, map[string]any{"key": key, "per_cfd": out, "total": st.Total()})
			return
		}
		etag := fmt.Sprintf("%q", fmt.Sprintf("v%d", s.mon().ViewVersion()))
		if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etag {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		view := s.mon().View()
		st := view.State()
		w.Header().Set("ETag", fmt.Sprintf("%q", fmt.Sprintf("v%d", view.Version())))
		cfdSel := -1
		if cs := q.Get("cfd"); cs != "" {
			i, err := strconv.Atoi(cs)
			if err != nil || i < 0 || i >= len(st.PerCFD) {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cfd %q (have %d)", cs, len(st.PerCFD)))
				return
			}
			cfdSel = i
		}
		limit := 0
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
				return
			}
			limit = n
		}
		offset := 0
		if cur := q.Get("cursor"); cur != "" {
			var cv uint64
			if _, err := fmt.Sscanf(cur, "v%d:%d", &cv, &offset); err != nil || offset < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q", cur))
				return
			}
			if cv != view.Version() {
				writeErr(w, http.StatusGone, fmt.Errorf("cursor %q expired (view is at v%d)", cur, view.Version()))
				return
			}
		}
		room := limit
		if limit <= 0 {
			room = int(^uint(0) >> 1)
		}
		skip := offset
		total, emitted := 0, 0
		out := make([]perCFD, 0, len(st.PerCFD))
		for i, v := range st.PerCFD {
			if cfdSel >= 0 && i != cfdSel {
				continue
			}
			total += v.Total()
			if room == 0 && skip == 0 && limit > 0 {
				continue
			}
			p := perCFD{CFD: i}
			if n := len(v.ConstTuples); skip < n {
				take := min(room, n-skip)
				p.ConstTuples = v.ConstTuples[skip : skip+take]
				room -= take
				skip = 0
			} else {
				skip -= n
			}
			if n := len(v.VariableKeys); room > 0 && skip < n {
				take := min(room, n-skip)
				p.VariableKeys = v.VariableKeys[skip : skip+take]
				room -= take
				skip = 0
			} else if room > 0 {
				skip -= n
			}
			if len(p.ConstTuples) > 0 || len(p.VariableKeys) > 0 || (limit <= 0 && cfdSel < 0) {
				emitted += len(p.ConstTuples) + len(p.VariableKeys)
				out = append(out, p)
			}
		}
		resp := map[string]any{"per_cfd": out, "total": total, "version": view.Version()}
		if limit > 0 && emitted > 0 && offset+emitted < total {
			resp["next_cursor"] = fmt.Sprintf("v%d:%d", view.Version(), offset+emitted)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// GET /v1/repairs serves the live repair suggester: cost-ranked fix
	// suggestions for the current violation set, re-planned in O(Δ)
	// between calls. Query surface mirrors /violations:
	//   ?limit=N&cursor=C   cursor pagination; cursors are stable within
	//                       a suggestion version ("r<version>:<offset>")
	//                       and expire (410) when the set changes
	//   ?trust_threshold=F  wire the streaming miner as the trust
	//                       source: CFDs below confidence F suggest
	//                       relaxation instead of data edits
	// The response carries ETag "r<version>"; a poll with If-None-Match
	// at the current version is answered 304. /v1 only — no legacy alias.
	handle("/v1/repairs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		q := r.URL.Query()
		thr := 0.0
		if v := q.Get("trust_threshold"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad trust_threshold %q (want 0..1)", v))
				return
			}
			thr = f
		}
		limit := 0
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", ls))
				return
			}
			limit = n
		}
		sg, err := s.suggesterFor(thr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sg.Refresh()
		version := sg.Version()
		etag := fmt.Sprintf("%q", fmt.Sprintf("r%d", version))
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		offset := 0
		if cur := q.Get("cursor"); cur != "" {
			var cv uint64
			if _, err := fmt.Sscanf(cur, "r%d:%d", &cv, &offset); err != nil || offset < 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q", cur))
				return
			}
			if cv != version {
				writeErr(w, http.StatusGone, fmt.Errorf("cursor %q expired (suggestions are at r%d)", cur, version))
				return
			}
		}
		sugs := sg.Suggestions()
		end := len(sugs)
		if offset > end {
			offset = end
		}
		if limit > 0 && offset+limit < end {
			end = offset + limit
		}
		out := make([]jsonSuggestion, 0, end-offset)
		for i := offset; i < end; i++ {
			out = append(out, toJSONSuggestion(&sugs[i]))
		}
		resp := map[string]any{"suggestions": out, "total": len(sugs), "version": version}
		if end < len(sugs) {
			resp["next_cursor"] = fmt.Sprintf("r%d:%d", version, end)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// POST /v1/repairs/apply converts accepted suggestion ids into one
	// ordinary ChangeSet and applies it through the same path as
	// POST /apply — fencing (X-Cfd-Epoch), WAL, group commit and
	// replication all unchanged. Unknown or retired ids answer 404; the
	// client re-fetches /v1/repairs and retries.
	handle("/v1/repairs/apply", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			IDs []string `json:"ids"`
			// TrustThreshold selects the same cached suggester a prior
			// GET /v1/repairs?trust_threshold=F attached.
			TrustThreshold float64 `json:"trust_threshold"`
		}
		if !readBody(w, r, &req) {
			return
		}
		if len(req.IDs) == 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("ids is empty"))
			return
		}
		sg, err := s.suggesterFor(req.TrustThreshold)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sg.Refresh()
		cs, edits, err := sg.Plan(req.IDs)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, repro.ErrUnknownRepairSuggestion) {
				status = http.StatusNotFound
			}
			writeErr(w, status, err)
			return
		}
		jes := make([]jsonEdit, 0, len(edits))
		for _, e := range edits {
			jes = append(jes, jsonEdit{Key: e.Key, Attr: e.Attr, From: e.From, To: e.To})
		}
		if cs.Len() == 0 {
			// Every accepted edit already holds (another client fixed the
			// data first); nothing to journal.
			writeJSON(w, http.StatusOK, map[string]any{"ops": 0, "edits": jes, "delta": toJSONDelta(&repro.ViolationDelta{})})
			return
		}
		delta, err := s.applyMut(r, cs)
		if err != nil {
			mutErr(w, err, http.StatusBadRequest)
			return
		}
		sg.Refresh()
		writeJSON(w, http.StatusOK, map[string]any{"ops": cs.Len(), "edits": jes, "delta": toJSONDelta(delta)})
	})
	route("/stats", func(w http.ResponseWriter, r *http.Request) {
		role := "primary"
		if s.mon().ReadOnly() {
			role = "follower"
		}
		stats := map[string]any{
			"tuples":         s.mon().Len(),
			"violations":     s.mon().ViolationCount(),
			"satisfied":      s.mon().Satisfied(),
			"epoch":          s.mon().Epoch(),
			"fenced":         s.mon().Fenced(),
			"role":           role,
			"next_key":       s.mon().NextKey(),
			"uptime_seconds": time.Since(processStart).Seconds(),
			"build":          buildInfo(),
		}
		if js := s.mon().JournalStats(); js.Durable {
			wal := map[string]any{
				"dir":             js.Dir,
				"generation":      js.Generation,
				"segment_records": js.SegmentRecords,
				"recovered":       js.Recovered,
			}
			if js.LastSnapshotErr != "" {
				wal["last_snapshot_error"] = js.LastSnapshotErr
			}
			stats["wal"] = wal
		}
		if f := s.fol(); f != nil {
			st := f.Status()
			replica := map[string]any{
				"following":       st.Following,
				"promoted":        st.Promoted,
				"seq":             st.Seq,
				"offset":          st.Offset,
				"applied_records": st.AppliedRecords,
				"primary_seq":     st.PrimarySeq,
				"primary_offset":  st.PrimaryOffset,
				"lag_bytes":       st.LagBytes,
				"lag_segments":    st.LagSegments,
			}
			if !st.LastSync.IsZero() {
				replica["last_sync"] = st.LastSync.Format(time.RFC3339Nano)
			}
			if st.LastError != "" {
				replica["last_error"] = st.LastError
			}
			stats["replica"] = replica
		}
		writeJSON(w, http.StatusOK, stats)
	})
	// Prometheus text exposition of everything on the node's registry:
	// the monitor's hot-path series plus the middleware's own.
	route("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			s.logger().Error("metrics scrape failed", "error", err)
		}
	})
	// Streaming discovery: the current mined CFD set under the config the
	// query params select. The miner re-scores incrementally between
	// calls; only a config change pays a full pass.
	route("/discover", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		cfg, err := discoverConfig(r.URL.Query())
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mi, err := s.minerFor(cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mi.Refresh()
		ds, err := mi.Mined()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		type mined struct {
			LHS     []string `json:"lhs"`
			RHS     []string `json:"rhs"`
			IsFD    bool     `json:"is_fd"`
			Support []int    `json:"support"`
			CFD     string   `json:"cfd"`
		}
		out := make([]mined, len(ds))
		for i, d := range ds {
			out[i] = mined{LHS: d.CFD.LHS, RHS: d.CFD.RHS, IsFD: d.IsFD, Support: d.Support, CFD: d.CFD.String()}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"config": map[string]any{
				"max_lhs":        cfg.MaxLHS,
				"min_support":    cfg.MinSupport,
				"min_confidence": cfg.MinConfidence,
				"max_patterns":   cfg.MaxPatterns,
			},
			"tuples": s.mon().Len(),
			"count":  len(out),
			"mined":  out,
		})
	})
	// Admin: force a snapshot now — roll the WAL generation without
	// waiting for the record-count or interval triggers.
	route("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		if err := s.mon().ForceSnapshot(); err != nil {
			// Not-durable and read-only are the caller's mistake (409); a
			// failed write on a durable node is a server-side disk
			// problem (500).
			status := http.StatusInternalServerError
			if !s.mon().JournalStats().Durable || errors.Is(err, repro.ErrMonitorReadOnly) {
				status = http.StatusConflict
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"generation": s.mon().JournalStats().Generation})
	})
	// Admin: flip a follower into a writable primary at the record
	// boundary it has applied. Idempotent; 409 on a node that is not
	// following anything.
	route("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		f := s.fol()
		if f == nil {
			writeErr(w, http.StatusConflict, fmt.Errorf("not a follower"))
			return
		}
		if err := f.Promote(); err != nil {
			// A closed follower (mid-resync) cannot be promoted — the
			// node's state conflicts with the request; retry once the
			// resync lands.
			writeErr(w, http.StatusConflict, err)
			return
		}
		st := f.Status()
		writeJSON(w, http.StatusOK, map[string]any{
			"promoted": true, "seq": st.Seq, "offset": st.Offset,
			"applied_records": st.AppliedRecords, "epoch": f.Monitor().Epoch(),
		})
	})
	// Admin: fence this node at an epoch — it refuses every write under
	// a lower term from now on. A router calls this on the deposed
	// primary right after promoting a standby; idempotent (Fence only
	// ever raises the watermark), safe on any role.
	route("/fence", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Epoch uint64 `json:"epoch"`
		}
		if !readBody(w, r, &req) {
			return
		}
		s.mon().Fence(req.Epoch)
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch": s.mon().Epoch(), "fenced": s.mon().Fenced(),
		})
	})
	// WAL shipping: the newest snapshot image, for a follower's initial
	// sync (or resync after falling below the retention window).
	route("/wal/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		seq, rc, size, err := s.mon().ShipSnapshot()
		if err != nil {
			status := http.StatusInternalServerError
			if !s.mon().JournalStats().Durable {
				status = http.StatusConflict
			}
			writeErr(w, status, err)
			return
		}
		defer rc.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.Header().Set("X-Wal-Seq", strconv.FormatUint(seq, 10))
		_, _ = io.Copy(w, rc)
	})
	// WAL shipping: record-aligned chunks of a segment, from a
	// (generation, offset) cursor. The body is raw framed records; the
	// cursor protocol lives in the X-Wal-* headers. 410 Gone tells the
	// follower its cursor fell below the retention window.
	route("/wal/stream", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		q := r.URL.Query()
		var seq uint64
		var off int64
		if _, err := fmt.Sscanf(q.Get("from"), "%d,%d", &seq, &off); err != nil || off < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q (want from=SEQ,OFFSET)", q.Get("from")))
			return
		}
		maxBytes := 1 << 20
		if v := q.Get("max"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
				return
			}
			maxBytes = n
		}
		ch, err := s.mon().WALChunk(seq, off, maxBytes)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, repro.ErrWALSegmentGone):
				status = http.StatusGone
			case !s.mon().JournalStats().Durable:
				status = http.StatusConflict
			}
			writeErr(w, status, err)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("X-Wal-Seq", strconv.FormatUint(ch.Seq, 10))
		h.Set("X-Wal-Offset", strconv.FormatInt(ch.Offset, 10))
		h.Set("X-Wal-Records", strconv.Itoa(ch.Records))
		h.Set("X-Wal-Closed", strconv.FormatBool(ch.Closed))
		h.Set("X-Wal-Next-Seq", strconv.FormatUint(ch.NextSeq, 10))
		h.Set("X-Wal-End-Seq", strconv.FormatUint(ch.EndSeq, 10))
		h.Set("X-Wal-End-Offset", strconv.FormatInt(ch.EndOffset, 10))
		h.Set("X-Wal-Epoch", strconv.FormatUint(ch.Epoch, 10))
		_, _ = w.Write(ch.Data)
	})
	return mux
}

// --- the follower's HTTP chunk source ---

// httpSource implements the follower side of the shipping protocol over
// a primary cfdserve's /wal endpoints.
type httpSource struct {
	base string
	c    http.Client
}

// newHTTPSource builds the source with bounded network waits: a primary
// that dies silently (power loss, partition with no RST) must surface
// as a fetch failure within seconds — not the kernel's many-minute TCP
// retransmission timeout — or -promote-after can never fire. Bodies are
// not deadline-bounded here (a snapshot ship is legitimately long);
// dial/header timeouts plus TCP keepalives bound the silent-death case,
// and Chunk adds its own per-call deadline.
func newHTTPSource(base string) *httpSource {
	return &httpSource{
		base: base,
		c: http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout:   10 * time.Second,
					KeepAlive: 15 * time.Second,
				}).DialContext,
				ResponseHeaderTimeout: 30 * time.Second,
			},
		},
	}
}

func (h *httpSource) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+path, nil)
	if err != nil {
		return nil, err
	}
	return h.c.Do(req)
}

// httpErr folds a non-200 response into an error, preserving
// ErrWALSegmentGone across the wire via 410. The body is the uniform
// envelope {"error": {"code", "message"}}; the legacy flat form
// {"error": "msg"} from a pre-/v1 primary is still understood. Every
// other error STATUS still proves the primary is alive and answering,
// so it carries ErrPrimaryResponded — the follower retries on it but
// never arms -promote-after (only transport-level failures may).
func httpErr(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env struct {
		Error apiError `json:"error"`
	}
	msg := ""
	if err := json.Unmarshal(raw, &env); err == nil {
		msg = env.Error.Message
	} else {
		var flat struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &flat) == nil {
			msg = flat.Error
		}
	}
	if msg == "" {
		msg = resp.Status
	}
	if resp.StatusCode == http.StatusGone {
		return fmt.Errorf("primary: %s: %w", msg, repro.ErrWALSegmentGone)
	}
	return fmt.Errorf("primary: %s (%s): %w", msg, resp.Status, repro.ErrPrimaryResponded)
}

func (h *httpSource) Snapshot(ctx context.Context) (uint64, io.ReadCloser, error) {
	resp, err := h.get(ctx, "/v1/wal/snapshot")
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return 0, nil, httpErr(resp)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Wal-Seq"), 10, 64)
	if err != nil {
		resp.Body.Close()
		return 0, nil, fmt.Errorf("primary snapshot: bad X-Wal-Seq %q", resp.Header.Get("X-Wal-Seq"))
	}
	return seq, resp.Body, nil
}

func (h *httpSource) Chunk(ctx context.Context, seq uint64, offset int64, maxBytes int) (repro.WALShipChunk, error) {
	var ch repro.WALShipChunk
	// A chunk body is at most maxBytes plus framing; if it cannot arrive
	// within this deadline the connection is dead or useless, and the
	// tail loop should learn that rather than block.
	ctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	resp, err := h.get(ctx, fmt.Sprintf("/v1/wal/stream?from=%d,%d&max=%d", seq, offset, maxBytes))
	if err != nil {
		return ch, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ch, httpErr(resp)
	}
	hd := resp.Header
	fail := func(name string, err error) (repro.WALShipChunk, error) {
		return ch, fmt.Errorf("primary chunk: bad %s %q: %v", name, hd.Get(name), err)
	}
	if ch.Seq, err = strconv.ParseUint(hd.Get("X-Wal-Seq"), 10, 64); err != nil {
		return fail("X-Wal-Seq", err)
	}
	if ch.Offset, err = strconv.ParseInt(hd.Get("X-Wal-Offset"), 10, 64); err != nil {
		return fail("X-Wal-Offset", err)
	}
	if ch.Records, err = strconv.Atoi(hd.Get("X-Wal-Records")); err != nil {
		return fail("X-Wal-Records", err)
	}
	if ch.Closed, err = strconv.ParseBool(hd.Get("X-Wal-Closed")); err != nil {
		return fail("X-Wal-Closed", err)
	}
	if ch.NextSeq, err = strconv.ParseUint(hd.Get("X-Wal-Next-Seq"), 10, 64); err != nil {
		return fail("X-Wal-Next-Seq", err)
	}
	if ch.EndSeq, err = strconv.ParseUint(hd.Get("X-Wal-End-Seq"), 10, 64); err != nil {
		return fail("X-Wal-End-Seq", err)
	}
	if ch.EndOffset, err = strconv.ParseInt(hd.Get("X-Wal-End-Offset"), 10, 64); err != nil {
		return fail("X-Wal-End-Offset", err)
	}
	// X-Wal-Epoch is the fencing term; a pre-fencing primary does not
	// send it, which parses as epoch 0 — the legacy unfenced history.
	if v := hd.Get("X-Wal-Epoch"); v != "" {
		if ch.Epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			return fail("X-Wal-Epoch", err)
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// A connection torn mid-chunk is a retryable fetch failure; what
		// DID arrive still ends on a record boundary at the scan layer,
		// but simplest is to drop the partial chunk and re-request.
		return ch, fmt.Errorf("primary chunk: %w", err)
	}
	ch.Data = data
	return ch, nil
}
