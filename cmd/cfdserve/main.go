// Command cfdserve turns the incremental Monitor into a long-lived
// service: it loads a CSV instance and a CFD set once, then accepts
// tuple-level changes and violation queries over a line-oriented protocol
// (stdin/stdout) or an HTTP/JSON API — every write answered with the exact
// violation delta it caused.
//
// Usage:
//
//	cfdserve -data tax.csv -cfds cfds.txt                # line loop on stdin
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080    # HTTP API
//	cfdserve -data tax.csv -cfds cfds.txt -http :8080 -wal-dir /var/lib/cfd
//
// With -wal-dir the node is durable: every accepted change is appended to
// a write-ahead log before it is applied, background snapshots bound the
// log, and a restart recovers the last acknowledged state from the
// directory — the CSV is only read on the very first boot. SIGTERM/SIGINT
// shut the server down gracefully: in-flight HTTP responses are flushed
// (http.Server.Shutdown), a final snapshot is taken and the journal is
// synced before the process exits.
//
// Line protocol (one command per line):
//
//	insert v1,v2,...        add a tuple (CSV values, schema order)
//	delete KEY              remove a tuple by key
//	update KEY ATTR VALUE   change one attribute
//	batch                   start collecting a ChangeSet...
//	  insert/delete/update    ...of ops (same syntax), applied by
//	end                     ...END as ONE batch: all-or-nothing,
//	                        one WAL record, one fsync
//	abort                   discard the open batch
//	violations              dump the live violation set
//	satisfied               print true/false
//	stats                   print tuples=N violations=M satisfied=B
//	snapshot                force a snapshot (durable mode)
//	quit                    exit
//
// HTTP API (JSON):
//
//	POST /insert  {"values": ["01","908",...]}       → {"key": K, "delta": {...}}
//	POST /delete  {"key": 3}                         → {"delta": {...}}
//	POST /update  {"key": 3, "attr": "CT", "value": "NYC"}
//	POST /apply   {"ops": [{"op":"insert","values":[...]},
//	               {"op":"update","key":3,"attr":"CT","value":"NYC"},
//	               {"op":"delete","key":4}, ...]}    → {"keys": [K,...], "delta": {...}}
//	POST /snapshot                                   → {"generation": N} (admin; durable mode)
//	GET  /violations                                 → the live set
//	GET  /stats                                      → {"tuples":N,...,"wal":{...}}
//	GET  /discover                                   → the streaming miner's current CFD set
//
// GET /discover serves streaming CFD discovery over the live instance:
// the first call attaches a miner to the monitor's group indexes (one
// full scoring pass); every later call re-scores only the groups the
// interleaving writes touched. Config query params — max_lhs (serving
// limit 3: the lattice is exponential in it and an attach quiesces
// writers), min_support, min_confidence, max_patterns — select the
// mining configuration; a call with a different config re-attaches the
// miner (another full pass), so clients should settle on one.
//
// POST /apply and BATCH…END apply the op vector through Monitor.Apply:
// the batch is validated as a unit (an invalid op rejects all of it),
// journaled as a single WAL record, and answered with the combined net
// violation delta plus the keys assigned to its inserts, in op order.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		dataPath     = flag.String("data", "", "CSV instance to monitor (required)")
		cfdPath      = flag.String("cfds", "", "CFD file in text notation (required)")
		httpAddr     = flag.String("http", "", "serve the HTTP API on this address instead of the line protocol")
		shards       = flag.Int("shards", 0, "lock shards per index (0 = default)")
		walDir       = flag.String("wal-dir", "", "durable mode: write-ahead log + snapshots in this directory; restarts recover from it instead of reloading the CSV")
		fsync        = flag.Bool("fsync", false, "fsync the WAL after every record (acknowledged writes survive OS crash; slower)")
		snapRecords  = flag.Int("snapshot-records", 10000, "roll a background snapshot after this many WAL records (0 = off)")
		snapInterval = flag.Duration("snapshot-interval", 0, "also snapshot on this wall-clock period, e.g. 5m (0 = off)")
	)
	flag.Parse()
	if *dataPath == "" || *cfdPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	srv, err := newServer(*dataPath, *cfdPath, repro.MonitorOptions{
		Shards:        *shards,
		Durable:       *walDir,
		Fsync:         *fsync,
		SnapshotEvery: *snapRecords,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfdserve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *snapInterval > 0 && srv.m.JournalStats().Durable {
		go srv.snapshotLoop(ctx, *snapInterval)
	}
	source := "loaded from CSV"
	if srv.m.Recovered() {
		source = fmt.Sprintf("recovered from %s (generation %d)", *walDir, srv.m.JournalStats().Generation)
	}

	if *httpAddr != "" {
		lis, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfdserve:", err)
			os.Exit(2)
		}
		fmt.Printf("monitoring %d tuples against %d CFDs on %s (%s)\n",
			srv.m.Len(), len(srv.m.Sigma()), lis.Addr(), source)
		err = srv.serveHTTP(ctx, lis)
		if cerr := srv.close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfdserve:", err)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("monitoring %d tuples against %d CFDs (%s); type 'help' for commands\n",
		srv.m.Len(), len(srv.m.Sigma()), source)
	done := make(chan error, 1)
	go func() { done <- srv.lineLoop(os.Stdin, os.Stdout) }()
	var loopErr error
	select {
	case loopErr = <-done:
	case <-ctx.Done():
		fmt.Println("signal received, shutting down")
	}
	if cerr := srv.close(); loopErr == nil {
		loopErr = cerr
	}
	if loopErr != nil {
		fmt.Fprintln(os.Stderr, "cfdserve:", loopErr)
		os.Exit(2)
	}
}

type server struct {
	m *repro.Monitor

	// The lazily-attached discovery miner behind GET /discover, cached
	// per config: re-attaching costs a full scoring pass, so the one
	// live miner is kept until a request names a different config.
	mineMu   sync.Mutex
	miner    *repro.CFDMiner
	minerCfg repro.DiscoveryConfig
}

func newServer(dataPath, cfdPath string, opts repro.MonitorOptions) (*server, error) {
	sigma, err := cliutil.LoadCFDs(cfdPath)
	if err != nil {
		return nil, err
	}
	// A durable node that has booted before carries its state (schema
	// included) in the WAL directory — the CSV is not parsed, or even
	// required to exist, after the first boot.
	if opts.Durable != "" {
		m, err := repro.OpenMonitor(sigma, opts)
		if err == nil {
			return &server{m: m}, nil
		}
		if !errors.Is(err, repro.ErrNoMonitorState) {
			return nil, err
		}
	}
	// The seed load and the monitor share one value pool: the CSV's
	// categorical values are deduplicated once and the monitor interns
	// against the same copies.
	rel, pool, err := cliutil.LoadCSVPooled(dataPath)
	if err != nil {
		return nil, err
	}
	opts.Intern = pool
	m, err := repro.LoadMonitor(rel, sigma, opts)
	if err != nil {
		return nil, err
	}
	return &server{m: m}, nil
}

// serveHTTP serves the API until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight responses are flushed, and
// only then does the call return.
func (s *server) serveHTTP(ctx context.Context, lis net.Listener) error {
	hs := &http.Server{Handler: s.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// snapshotLoop forces a snapshot on a wall-clock cadence, alongside the
// record-count trigger of -snapshot-records.
func (s *server) snapshotLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.m.ForceSnapshot(); err != nil {
				fmt.Fprintln(os.Stderr, "cfdserve: periodic snapshot:", err)
			}
		}
	}
}

// close flushes the durable state on the way out: a final snapshot (so
// the next boot recovers instantly) and a synced journal.
func (s *server) close() error {
	if s.m.JournalStats().Durable {
		if err := s.m.ForceSnapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "cfdserve: final snapshot:", err)
		}
	}
	return s.m.Close()
}

// --- line protocol ---

// lineLoop runs the text protocol until quit/EOF; a scanner failure (line
// over the buffer cap, read error) is returned so the caller can report it
// instead of exiting as if the stream ended cleanly.
//
// BATCH…END frames are collected here: between the two markers every
// insert/delete/update line lands in one ChangeSet, applied by END as a
// single Monitor.Apply — all-or-nothing, one WAL record. A malformed op
// line poisons the frame: the framing still runs to END (a pipelining
// client's remaining op lines must not escape into immediate execution),
// but the whole frame is then discarded — nothing in it is applied.
func (s *server) lineLoop(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var batch *repro.ChangeSet
	batchDead := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if batch != nil {
			verb, rest, _ := strings.Cut(line, " ")
			switch strings.ToLower(verb) {
			case "end":
				if batchDead {
					fmt.Fprintln(out, "batch discarded: earlier op was malformed, nothing applied")
				} else {
					s.applyBatch(batch, out)
				}
				batch, batchDead = nil, false
			case "abort":
				fmt.Fprintln(out, "batch discarded")
				batch, batchDead = nil, false
			default:
				if batchDead {
					continue // swallow the rest of the poisoned frame
				}
				if err := parseOp(strings.ToLower(verb), rest, batch); err != nil {
					fmt.Fprintln(out, "error:", err)
					batchDead = true
				}
			}
			continue
		}
		if low := strings.ToLower(line); low == "quit" || low == "exit" {
			return nil
		}
		if strings.ToLower(line) == "batch" {
			batch = &repro.ChangeSet{}
			fmt.Fprintln(out, "batch open: insert/delete/update ops, then 'end' (or 'abort')")
			continue
		}
		s.execLine(line, out)
	}
	if batch != nil {
		fmt.Fprintln(out, "error: unterminated batch discarded")
	}
	return sc.Err()
}

// parseOp parses one mutation line into the open ChangeSet.
func parseOp(verb, rest string, cs *repro.ChangeSet) error {
	switch verb {
	case "insert":
		rec, err := csv.NewReader(strings.NewReader(rest)).Read()
		if err != nil {
			return fmt.Errorf("bad CSV values: %w", err)
		}
		cs.Insert(repro.Tuple(rec))
	case "delete":
		key, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		cs.Delete(key)
	case "update":
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			return fmt.Errorf("usage: update KEY ATTR VALUE")
		}
		key, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad key: %w", err)
		}
		cs.Update(key, parts[1], parts[2])
	default:
		return fmt.Errorf("unknown op %q in batch (insert/delete/update, then 'end' — or 'abort' to discard)", verb)
	}
	return nil
}

// applyBatch runs the collected frame as one Monitor.Apply and reports
// the inserted keys (in op order) plus the combined net delta.
func (s *server) applyBatch(cs *repro.ChangeSet, out io.Writer) {
	delta, err := s.m.Apply(cs)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "applied %d ops\n", cs.Len())
	for i := range cs.Ops {
		if cs.Ops[i].Kind == repro.OpInsert {
			fmt.Fprintf(out, "key %d\n", cs.Ops[i].Key)
		}
	}
	printDelta(out, delta)
}

func (s *server) execLine(line string, out io.Writer) {
	verb, rest, _ := strings.Cut(line, " ")
	// One casing rule everywhere: verbs fold like the BATCH…END markers.
	switch strings.ToLower(verb) {
	case "help":
		fmt.Fprintln(out, "commands: insert v1,v2,... | delete KEY | update KEY ATTR VALUE | batch ... end | violations | satisfied | stats | snapshot | quit")
	case "insert":
		rec, err := csv.NewReader(strings.NewReader(rest)).Read()
		if err != nil {
			fmt.Fprintln(out, "error: bad CSV values:", err)
			return
		}
		key, delta, err := s.m.Insert(repro.Tuple(rec))
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintf(out, "key %d\n", key)
		printDelta(out, delta)
	case "delete":
		key, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad key:", err)
			return
		}
		delta, err := s.m.Delete(key)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, "deleted", key)
		printDelta(out, delta)
	case "update":
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) != 3 {
			fmt.Fprintln(out, "error: usage: update KEY ATTR VALUE")
			return
		}
		key, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			fmt.Fprintln(out, "error: bad key:", err)
			return
		}
		delta, err := s.m.Update(key, parts[1], parts[2])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintln(out, "updated", key)
		printDelta(out, delta)
	case "violations":
		st := s.m.Violations()
		if st.Clean() {
			fmt.Fprintln(out, "no violations")
			return
		}
		for i, v := range st.PerCFD {
			if v.Total() == 0 {
				continue
			}
			fmt.Fprintf(out, "cfd %d: %d constant-violating tuples, %d conflicting groups\n",
				i, len(v.ConstTuples), len(v.VariableKeys))
			for _, k := range v.ConstTuples {
				fmt.Fprintf(out, "  tuple %d\n", k)
			}
			for _, x := range v.VariableKeys {
				fmt.Fprintf(out, "  group X = (%s)\n", strings.Join(x, ", "))
			}
		}
	case "satisfied":
		fmt.Fprintln(out, s.m.Satisfied())
	case "stats":
		fmt.Fprintf(out, "tuples=%d violations=%d satisfied=%v\n",
			s.m.Len(), s.m.ViolationCount(), s.m.Satisfied())
		if js := s.m.JournalStats(); js.Durable {
			fmt.Fprintf(out, "wal dir=%s generation=%d segment_records=%d recovered=%v\n",
				js.Dir, js.Generation, js.SegmentRecords, js.Recovered)
		}
	case "snapshot":
		if err := s.m.ForceSnapshot(); err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprintf(out, "snapshot done, generation %d\n", s.m.JournalStats().Generation)
	default:
		fmt.Fprintf(out, "error: unknown command %q (try 'help')\n", verb)
	}
}

// maxDiscoverLHS bounds max_lhs on the serving endpoint: the candidate
// lattice is exponential in it, and a config change pays a full
// scoring pass under the monitor's write locks — an unbounded value
// would let one cheap GET stall every writer for minutes.
const maxDiscoverLHS = 3

// discoverConfig parses the /discover query params into a mining config,
// normalized to the miner's documented defaults so that an explicit
// "?max_lhs=1" (or a zero value the miner would default) and a bare
// request share one cached miner.
func discoverConfig(q url.Values) (repro.DiscoveryConfig, error) {
	cfg := repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2, MinConfidence: 1}
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s %q: %w", name, v, err)
			}
			*dst = n
		}
		return nil
	}
	if err := intParam("max_lhs", &cfg.MaxLHS); err != nil {
		return cfg, err
	}
	if err := intParam("min_support", &cfg.MinSupport); err != nil {
		return cfg, err
	}
	if err := intParam("max_patterns", &cfg.MaxPatterns); err != nil {
		return cfg, err
	}
	if v := q.Get("min_confidence"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad min_confidence %q: %w", v, err)
		}
		cfg.MinConfidence = f
	}
	if cfg.MaxLHS > maxDiscoverLHS {
		return cfg, fmt.Errorf("max_lhs %d above the serving limit %d", cfg.MaxLHS, maxDiscoverLHS)
	}
	// Normalize the values the miner would default, so every spelling of
	// the same effective config hits the same cached miner instead of
	// paying a re-attach.
	if cfg.MaxLHS <= 0 {
		cfg.MaxLHS = 1
	}
	if cfg.MinSupport <= 0 {
		cfg.MinSupport = 2
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 1
	}
	return cfg, nil
}

// minerFor returns the cached miner when the config matches, otherwise
// attaches a fresh one (full scoring pass) and retires the old.
func (s *server) minerFor(cfg repro.DiscoveryConfig) (*repro.CFDMiner, error) {
	s.mineMu.Lock()
	defer s.mineMu.Unlock()
	if s.miner != nil && s.minerCfg == cfg {
		return s.miner, nil
	}
	mi, err := repro.WatchDiscovery(s.m, cfg)
	if err != nil {
		return nil, err
	}
	if s.miner != nil {
		s.miner.Close()
	}
	s.miner, s.minerCfg = mi, cfg
	return mi, nil
}

func printDelta(out io.Writer, d *repro.ViolationDelta) {
	for _, c := range d.Added {
		fmt.Fprintf(out, "+ %s\n", c)
	}
	for _, c := range d.Removed {
		fmt.Fprintf(out, "- %s\n", c)
	}
	if d.Empty() {
		fmt.Fprintln(out, "no violation change")
	}
}

// --- HTTP API ---

type jsonChange struct {
	CFD   int      `json:"cfd"`
	Kind  string   `json:"kind"`
	Tuple *int64   `json:"tuple,omitempty"`
	Key   []string `json:"key,omitempty"`
}

type jsonDelta struct {
	Added   []jsonChange `json:"added"`
	Removed []jsonChange `json:"removed"`
}

func toJSONDelta(d *repro.ViolationDelta) jsonDelta {
	conv := func(cs []repro.ViolationChange) []jsonChange {
		out := make([]jsonChange, 0, len(cs))
		for _, c := range cs {
			jc := jsonChange{CFD: c.CFD, Kind: c.Kind.String()}
			if c.Kind == repro.ConstViolation {
				tuple := c.Tuple
				jc.Tuple = &tuple
			} else {
				jc.Key = c.Key
			}
			out = append(out, jc)
		}
		return out
	}
	return jsonDelta{Added: conv(d.Added), Removed: conv(d.Removed)}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	readBody := func(w http.ResponseWriter, r *http.Request, v any) bool {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return false
		}
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return false
		}
		return true
	}

	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Values []string `json:"values"`
		}
		if !readBody(w, r, &req) {
			return
		}
		key, delta, err := s.m.Insert(repro.Tuple(req.Values))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"key": key, "delta": toJSONDelta(delta)})
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key int64 `json:"key"`
		}
		if !readBody(w, r, &req) {
			return
		}
		delta, err := s.m.Delete(req.Key)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"delta": toJSONDelta(delta)})
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Key   int64  `json:"key"`
			Attr  string `json:"attr"`
			Value string `json:"value"`
		}
		if !readBody(w, r, &req) {
			return
		}
		delta, err := s.m.Update(req.Key, req.Attr, req.Value)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"delta": toJSONDelta(delta)})
	})
	// Batched ingest: one ChangeSet per request, applied atomically as a
	// single WAL record. Inserted keys come back in op order.
	mux.HandleFunc("/apply", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Ops []struct {
				Op     string   `json:"op"`
				Values []string `json:"values,omitempty"`
				Key    int64    `json:"key,omitempty"`
				Attr   string   `json:"attr,omitempty"`
				Value  string   `json:"value,omitempty"`
			} `json:"ops"`
		}
		if !readBody(w, r, &req) {
			return
		}
		var cs repro.ChangeSet
		for i, o := range req.Ops {
			switch o.Op {
			case "insert":
				cs.Insert(repro.Tuple(o.Values))
			case "delete":
				cs.Delete(o.Key)
			case "update":
				cs.Update(o.Key, o.Attr, o.Value)
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("ops[%d]: unknown op %q", i, o.Op))
				return
			}
		}
		delta, err := s.m.Apply(&cs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		keys := make([]int64, 0, len(cs.Ops))
		for i := range cs.Ops {
			if cs.Ops[i].Kind == repro.OpInsert {
				keys = append(keys, cs.Ops[i].Key)
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ops": cs.Len(), "keys": keys, "delta": toJSONDelta(delta),
		})
	})
	mux.HandleFunc("/violations", func(w http.ResponseWriter, r *http.Request) {
		st := s.m.Violations()
		type perCFD struct {
			CFD          int        `json:"cfd"`
			ConstTuples  []int64    `json:"const_tuples"`
			VariableKeys [][]string `json:"variable_keys"`
		}
		out := make([]perCFD, len(st.PerCFD))
		for i, v := range st.PerCFD {
			out[i] = perCFD{CFD: i, ConstTuples: v.ConstTuples, VariableKeys: v.VariableKeys}
		}
		writeJSON(w, http.StatusOK, map[string]any{"per_cfd": out, "total": st.Total()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		stats := map[string]any{
			"tuples":     s.m.Len(),
			"violations": s.m.ViolationCount(),
			"satisfied":  s.m.Satisfied(),
		}
		if js := s.m.JournalStats(); js.Durable {
			wal := map[string]any{
				"dir":             js.Dir,
				"generation":      js.Generation,
				"segment_records": js.SegmentRecords,
				"recovered":       js.Recovered,
			}
			if js.LastSnapshotErr != "" {
				wal["last_snapshot_error"] = js.LastSnapshotErr
			}
			stats["wal"] = wal
		}
		writeJSON(w, http.StatusOK, stats)
	})
	// Streaming discovery: the current mined CFD set under the config the
	// query params select. The miner re-scores incrementally between
	// calls; only a config change pays a full pass.
	mux.HandleFunc("/discover", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET required"))
			return
		}
		cfg, err := discoverConfig(r.URL.Query())
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mi, err := s.minerFor(cfg)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mi.Refresh()
		ds, err := mi.Mined()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		type mined struct {
			LHS     []string `json:"lhs"`
			RHS     []string `json:"rhs"`
			IsFD    bool     `json:"is_fd"`
			Support []int    `json:"support"`
			CFD     string   `json:"cfd"`
		}
		out := make([]mined, len(ds))
		for i, d := range ds {
			out[i] = mined{LHS: d.CFD.LHS, RHS: d.CFD.RHS, IsFD: d.IsFD, Support: d.Support, CFD: d.CFD.String()}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"config": map[string]any{
				"max_lhs":        cfg.MaxLHS,
				"min_support":    cfg.MinSupport,
				"min_confidence": cfg.MinConfidence,
				"max_patterns":   cfg.MaxPatterns,
			},
			"tuples": s.m.Len(),
			"count":  len(out),
			"mined":  out,
		})
	})
	// Admin: force a snapshot now — roll the WAL generation without
	// waiting for the record-count or interval triggers.
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
			return
		}
		if err := s.m.ForceSnapshot(); err != nil {
			// Not-durable is the caller's mistake (409); a failed write
			// on a durable node is a server-side disk problem (500).
			status := http.StatusInternalServerError
			if !s.m.JournalStats().Durable {
				status = http.StatusConflict
			}
			writeErr(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"generation": s.m.JournalStats().Generation})
	})
	return mux
}
