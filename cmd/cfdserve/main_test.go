package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const custCSV = `CC,AC,PN,NM,STR,CT,ZIP
01,908,1111111,Mike,Tree Ave.,MH,07974
01,212,2222222,Joe,Elm Str.,NYC,01202
`

const figure2CFDs = `
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
`

func newTestServer(t *testing.T) *server {
	t.Helper()
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	cfds := filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte(figure2CFDs), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(data, cfds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestLineProtocol(t *testing.T) {
	srv := newTestServer(t)
	in := strings.NewReader(strings.Join([]string{
		"stats",
		"satisfied",
		`insert 01,908,1111111,Rick,"Tree Ave.",NYC,07974`, // disagrees with Mike on CT and violates 908→MH
		"violations",
		"update 2 CT MH", // heal both violations
		"satisfied",
		"delete 2",
		"delete 2", // double delete errors
		"bogus",
		"quit",
		"stats", // never reached
	}, "\n"))
	var out bytes.Buffer
	srv.lineLoop(in, &out)
	text := out.String()
	for _, want := range []string{
		"tuples=2 violations=0 satisfied=true",
		"true",
		"key 2",
		"+ cfd 1 const tuple 2",
		"+ cfd 1 variable key (01, 908, 1111111)",
		"cfd 1: 1 constant-violating tuples, 1 conflicting groups",
		"updated 2",
		"- cfd 1 const tuple 2",
		"- cfd 1 variable key (01, 908, 1111111)",
		"deleted 2",
		"error: incremental: no tuple with key 2",
		`unknown command "bogus"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "tuples=") != 1 {
		t.Errorf("quit did not stop the loop:\n%s", text)
	}
}

func TestLineProtocolErrors(t *testing.T) {
	srv := newTestServer(t)
	in := strings.NewReader(strings.Join([]string{
		"insert onlyone",
		"delete notakey",
		"update 0",
		"update x CT NYC",
		"update 0 NOPE x",
	}, "\n"))
	var out bytes.Buffer
	srv.lineLoop(in, &out)
	if got := strings.Count(out.String(), "error:"); got != 5 {
		t.Errorf("want 5 errors, got %d:\n%s", got, out.String())
	}
}

func TestHTTPAPI(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	postJSON := func(path string, body any, v any) int {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var stats struct {
		Tuples     int   `json:"tuples"`
		Violations int64 `json:"violations"`
		Satisfied  bool  `json:"satisfied"`
	}
	getJSON("/stats", &stats)
	if stats.Tuples != 2 || !stats.Satisfied {
		t.Fatalf("initial stats = %+v", stats)
	}

	var ins struct {
		Key   int64     `json:"key"`
		Delta jsonDelta `json:"delta"`
	}
	code := postJSON("/insert", map[string]any{
		"values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
	}, &ins)
	if code != http.StatusOK || ins.Key != 2 {
		t.Fatalf("insert: code=%d resp=%+v", code, ins)
	}
	if len(ins.Delta.Added) != 2 {
		t.Fatalf("insert delta = %+v, want 2 added", ins.Delta)
	}

	var viol struct {
		Total int `json:"total"`
	}
	getJSON("/violations", &viol)
	if viol.Total != 2 {
		t.Fatalf("violations total = %d, want 2", viol.Total)
	}

	var upd struct {
		Delta jsonDelta `json:"delta"`
	}
	if code := postJSON("/update", map[string]any{"key": 2, "attr": "CT", "value": "MH"}, &upd); code != http.StatusOK {
		t.Fatalf("update: code=%d", code)
	}
	if len(upd.Delta.Removed) != 2 {
		t.Fatalf("update delta = %+v, want 2 removed", upd.Delta)
	}

	if code := postJSON("/delete", map[string]any{"key": 2}, nil); code != http.StatusOK {
		t.Fatalf("delete: code=%d", code)
	}
	if code := postJSON("/delete", map[string]any{"key": 2}, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: code=%d, want 404", code)
	}
	if code := postJSON("/insert", map[string]any{"values": []string{"x"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad arity insert: code=%d, want 400", code)
	}
	// GET on a POST endpoint is rejected.
	resp, err := http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: code=%d, want 405", resp.StatusCode)
	}

	getJSON("/stats", &stats)
	if stats.Tuples != 2 || !stats.Satisfied {
		t.Fatalf("final stats = %+v", stats)
	}
}

func TestNewServerErrors(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer("missing.csv", "missing.txt", 0); err == nil {
		t.Error("missing data file must error")
	}
	if _, err := newServer(data, "missing.txt", 0); err == nil {
		t.Error("missing CFD file must error")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not a cfd"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(data, bad, 0); err == nil {
		t.Error("bad CFD file must error")
	}
}
