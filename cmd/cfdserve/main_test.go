package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro"
)

const custCSV = `CC,AC,PN,NM,STR,CT,ZIP
01,908,1111111,Mike,Tree Ave.,MH,07974
01,212,2222222,Joe,Elm Str.,NYC,01202
`

const figure2CFDs = `
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
`

// writeInputs drops the cust fixture into a temp dir and returns the paths.
func writeInputs(t *testing.T) (data, cfds string) {
	t.Helper()
	dir := t.TempDir()
	data = filepath.Join(dir, "cust.csv")
	cfds = filepath.Join(dir, "cfds.txt")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfds, []byte(figure2CFDs), 0o644); err != nil {
		t.Fatal(err)
	}
	return data, cfds
}

func newTestServer(t *testing.T) *server {
	t.Helper()
	data, cfds := writeInputs(t)
	srv, err := newServer(data, cfds, repro.MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestLineProtocol(t *testing.T) {
	srv := newTestServer(t)
	in := strings.NewReader(strings.Join([]string{
		"stats",
		"satisfied",
		`insert 01,908,1111111,Rick,"Tree Ave.",NYC,07974`, // disagrees with Mike on CT and violates 908→MH
		"violations",
		"update 2 CT MH", // heal both violations
		"satisfied",
		"delete 2",
		"delete 2", // double delete errors
		"bogus",
		"quit",
		"stats", // never reached
	}, "\n"))
	var out bytes.Buffer
	srv.lineLoop(in, &out)
	text := out.String()
	for _, want := range []string{
		"tuples=2 violations=0 satisfied=true",
		"true",
		"key 2",
		"+ cfd 1 const tuple 2",
		"+ cfd 1 variable key (01, 908, 1111111)",
		"cfd 1: 1 constant-violating tuples, 1 conflicting groups",
		"updated 2",
		"- cfd 1 const tuple 2",
		"- cfd 1 variable key (01, 908, 1111111)",
		"deleted 2",
		"error: incremental: no tuple with key 2",
		`unknown command "bogus"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "tuples=") != 1 {
		t.Errorf("quit did not stop the loop:\n%s", text)
	}
}

func TestLineProtocolErrors(t *testing.T) {
	srv := newTestServer(t)
	in := strings.NewReader(strings.Join([]string{
		"insert onlyone",
		"delete notakey",
		"update 0",
		"update x CT NYC",
		"update 0 NOPE x",
	}, "\n"))
	var out bytes.Buffer
	srv.lineLoop(in, &out)
	if got := strings.Count(out.String(), "error:"); got != 5 {
		t.Errorf("want 5 errors, got %d:\n%s", got, out.String())
	}
}

func TestHTTPAPI(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	postJSON := func(path string, body any, v any) int {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var stats struct {
		Tuples     int   `json:"tuples"`
		Violations int64 `json:"violations"`
		Satisfied  bool  `json:"satisfied"`
	}
	getJSON("/stats", &stats)
	if stats.Tuples != 2 || !stats.Satisfied {
		t.Fatalf("initial stats = %+v", stats)
	}

	var ins struct {
		Key   int64     `json:"key"`
		Delta jsonDelta `json:"delta"`
	}
	code := postJSON("/insert", map[string]any{
		"values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
	}, &ins)
	if code != http.StatusOK || ins.Key != 2 {
		t.Fatalf("insert: code=%d resp=%+v", code, ins)
	}
	if len(ins.Delta.Added) != 2 {
		t.Fatalf("insert delta = %+v, want 2 added", ins.Delta)
	}

	var viol struct {
		Total int `json:"total"`
	}
	getJSON("/violations", &viol)
	if viol.Total != 2 {
		t.Fatalf("violations total = %d, want 2", viol.Total)
	}

	var upd struct {
		Delta jsonDelta `json:"delta"`
	}
	if code := postJSON("/update", map[string]any{"key": 2, "attr": "CT", "value": "MH"}, &upd); code != http.StatusOK {
		t.Fatalf("update: code=%d", code)
	}
	if len(upd.Delta.Removed) != 2 {
		t.Fatalf("update delta = %+v, want 2 removed", upd.Delta)
	}

	if code := postJSON("/delete", map[string]any{"key": 2}, nil); code != http.StatusOK {
		t.Fatalf("delete: code=%d", code)
	}
	if code := postJSON("/delete", map[string]any{"key": 2}, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: code=%d, want 404", code)
	}
	if code := postJSON("/insert", map[string]any{"values": []string{"x"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad arity insert: code=%d, want 400", code)
	}
	// GET on a POST endpoint is rejected.
	resp, err := http.Get(ts.URL + "/insert")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /insert: code=%d, want 405", resp.StatusCode)
	}

	getJSON("/stats", &stats)
	if stats.Tuples != 2 || !stats.Satisfied {
		t.Fatalf("final stats = %+v", stats)
	}
}

// TestLineProtocolBatch: a BATCH…END frame applies as one ChangeSet —
// inserted keys echoed in op order, one combined delta, all-or-nothing
// on bad frames.
func TestLineProtocolBatch(t *testing.T) {
	srv := newTestServer(t)
	in := strings.NewReader(strings.Join([]string{
		"batch",
		`insert 01,908,1111111,Rick,"Tree Ave.",NYC,07974`, // violates 908→MH + group
		"update 2 CT MH", // ...healed within the same batch
		`insert 01,212,9999999,Pam,"Elm Str.",NYC,11111`,
		"end",
		"stats",
		"batch", // a frame with an invalid op is discarded whole...
		"delete 0",
		"bogus op",
		"delete 1", // ...and later op lines stay inside the dead frame
		"end",
		"batch",
		"delete 3",
		"abort",
		"stats",
		"quit",
	}, "\n"))
	var out bytes.Buffer
	if err := srv.lineLoop(in, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"batch open",
		"applied 3 ops",
		"key 2",
		"key 3",
		"no violation change", // insert+heal in one batch nets to zero
		"tuples=4 violations=0 satisfied=true",
		`unknown op "bogus" in batch`,
		"batch discarded: earlier op was malformed, nothing applied",
		"batch discarded",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The discarded frames applied nothing: still 4 tuples at the end.
	if strings.Count(text, "tuples=4") != 2 {
		t.Errorf("aborted/invalid batches changed state:\n%s", text)
	}
}

// TestHTTPApply: POST /apply runs a ChangeSet atomically and reports the
// inserted keys and the combined delta.
func TestHTTPApply(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	post := func(body any) (int, map[string]json.RawMessage) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/apply", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := post(map[string]any{"ops": []map[string]any{
		{"op": "insert", "values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"}},
		{"op": "update", "key": 2, "attr": "CT", "value": "MH"},
		{"op": "delete", "key": 1},
	}})
	if code != http.StatusOK {
		t.Fatalf("apply: code=%d body=%v", code, out)
	}
	var keys []int64
	if err := json.Unmarshal(out["keys"], &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != 2 {
		t.Fatalf("keys = %v, want [2]", keys)
	}
	if srv.mon().Len() != 2 || !srv.mon().Satisfied() {
		t.Fatalf("after batch: len=%d satisfied=%v", srv.mon().Len(), srv.mon().Satisfied())
	}

	// An invalid op rejects the whole vector.
	code, _ = post(map[string]any{"ops": []map[string]any{
		{"op": "update", "key": 2, "attr": "CT", "value": "NYC"},
		{"op": "delete", "key": 999},
	}})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid batch: code=%d, want 400", code)
	}
	if got, _ := srv.mon().Get(2); got[5] != "MH" {
		t.Fatal("rejected batch partially applied")
	}
	// Unknown op name.
	code, _ = post(map[string]any{"ops": []map[string]any{{"op": "upsert"}}})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown op: code=%d, want 400", code)
	}
}

func TestNewServerErrors(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "cust.csv")
	if err := os.WriteFile(data, []byte(custCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer("missing.csv", "missing.txt", repro.MonitorOptions{}); err == nil {
		t.Error("missing data file must error")
	}
	if _, err := newServer(data, "missing.txt", repro.MonitorOptions{}); err == nil {
		t.Error("missing CFD file must error")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not a cfd"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(data, bad, repro.MonitorOptions{}); err == nil {
		t.Error("bad CFD file must error")
	}
}

// TestDurableServerRestart: a -wal-dir server journals its writes, and a
// restarted server resumes the acknowledged state instead of reloading
// the CSV.
func TestDurableServerRestart(t *testing.T) {
	data, cfds := writeInputs(t)
	walDir := filepath.Join(t.TempDir(), "wal")
	opts := repro.MonitorOptions{Durable: walDir}

	srv, err := newServer(data, cfds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	srv.lineLoop(strings.NewReader(strings.Join([]string{
		`insert 01,908,1111111,Rick,"Tree Ave.",NYC,07974`,
		"snapshot",
		`insert 01,908,1111111,Ann,"Tree Ave.",MH,07974`,
		"stats",
	}, "\n")), &out)
	if !strings.Contains(out.String(), "snapshot done, generation 2") {
		t.Fatalf("snapshot command failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "wal dir=") {
		t.Fatalf("stats missing wal line:\n%s", out.String())
	}
	wantViolations := srv.mon().ViolationCount()
	wantLen := srv.mon().Len()
	if err := srv.close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := newServer(data, cfds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.close()
	if !srv2.mon().Recovered() {
		t.Fatal("restarted server did not recover from the WAL dir")
	}
	if srv2.mon().Len() != wantLen || srv2.mon().ViolationCount() != wantViolations {
		t.Fatalf("recovered %d tuples / %d violations, want %d / %d",
			srv2.mon().Len(), srv2.mon().ViolationCount(), wantLen, wantViolations)
	}
}

// TestSnapshotEndpoint: the admin endpoint rolls the generation on a
// durable server and 409s on a memory-only one.
func TestSnapshotEndpoint(t *testing.T) {
	data, cfds := writeInputs(t)
	srv, err := newServer(data, cfds, repro.MonitorOptions{Durable: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || snap.Generation != 2 {
		t.Fatalf("POST /snapshot: code=%d generation=%d", resp.StatusCode, snap.Generation)
	}

	resp, err = http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /snapshot: code=%d, want 405", resp.StatusCode)
	}

	var stats struct {
		WAL *struct {
			Generation uint64 `json:"generation"`
		} `json:"wal"`
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.WAL == nil || stats.WAL.Generation != 2 {
		t.Fatalf("stats.wal = %+v, want generation 2", stats.WAL)
	}

	plain := newTestServer(t)
	tsPlain := httptest.NewServer(plain.handler())
	defer tsPlain.Close()
	resp, err = http.Post(tsPlain.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /snapshot on memory-only server: code=%d, want 409", resp.StatusCode)
	}
}

// TestGracefulShutdown: cancelling the serve context must flush in-flight
// responses and return cleanly instead of dropping connections.
func TestGracefulShutdown(t *testing.T) {
	srv := newTestServer(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.serveHTTP(ctx, lis) }()

	url := "http://" + lis.Addr().String()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats before shutdown: code=%d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveHTTP did not return after context cancellation")
	}
	if _, err := http.Get(url + "/stats"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestDiscoverEndpoint: GET /discover serves the streaming miner —
// mined CFDs follow the live instance across writes, config query
// params select (and re-select) the mining configuration, and invalid
// configs are rejected.
func TestDiscoverEndpoint(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	type minedEntry struct {
		LHS     []string `json:"lhs"`
		RHS     []string `json:"rhs"`
		IsFD    bool     `json:"is_fd"`
		Support []int    `json:"support"`
		CFD     string   `json:"cfd"`
	}
	type discoverResp struct {
		Tuples int          `json:"tuples"`
		Count  int          `json:"count"`
		Mined  []minedEntry `json:"mined"`
	}
	get := func(path string, wantCode int) discoverResp {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: code=%d, want %d", path, resp.StatusCode, wantCode)
		}
		var out discoverResp
		if wantCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	hasFD := func(r discoverResp, lhs, rhs string) bool {
		for _, m := range r.Mined {
			if m.IsFD && len(m.LHS) == 1 && m.LHS[0] == lhs && m.RHS[0] == rhs {
				return true
			}
		}
		return false
	}

	// Two singleton groups per pair: nothing has enough evidence yet.
	first := get("/discover", http.StatusOK)
	if first.Tuples != 2 {
		t.Fatalf("tuples = %d, want 2", first.Tuples)
	}
	if hasFD(first, "AC", "CT") {
		t.Fatalf("AC → CT mined from singleton groups: %+v", first.Mined)
	}

	// A second 908/MH tuple gives AC → CT a supported testing group; the
	// next /discover re-scores incrementally and mines it as an FD.
	body := strings.NewReader(`{"values":["01","908","1111111","Rick","Tree Ave.","MH","07974"]}`)
	resp, err := http.Post(ts.URL+"/insert", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	second := get("/discover", http.StatusOK)
	if !hasFD(second, "AC", "CT") {
		t.Fatalf("AC → CT should be mined after the insert: %+v", second.Mined)
	}
	if second.Count <= first.Count {
		t.Errorf("count did not grow: %d -> %d", first.Count, second.Count)
	}

	// A stricter config re-attaches the miner: evidence 2 < min_support 3.
	strict := get("/discover?min_support=3", http.StatusOK)
	if hasFD(strict, "AC", "CT") {
		t.Errorf("min_support=3 should drop the evidence-2 FD: %+v", strict.Mined)
	}

	// Invalid configs and methods are rejected; max_lhs is capped on the
	// serving surface (an attach quiesces writers).
	get("/discover?min_confidence=2", http.StatusBadRequest)
	get("/discover?max_patterns=-1", http.StatusBadRequest)
	get("/discover?max_lhs=zap", http.StatusBadRequest)
	get("/discover?max_lhs=9", http.StatusBadRequest)
	// Zero values normalize to the defaults (same cached miner, not a
	// re-attach) and serve fine.
	if norm := get("/discover?max_lhs=0&min_support=0", http.StatusOK); norm.Count != strict.Count && norm.Tuples != 3 {
		t.Errorf("normalized default config should serve: %+v", norm)
	}
	if resp, err := http.Post(ts.URL+"/discover", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /discover: code=%d, want 405", resp.StatusCode)
		}
	}
}

// TestStatsShape pins the full JSON shape of GET /stats: the exact
// top-level key set for memory and durable nodes, the wal sub-document,
// and the build identity block.
func TestStatsShape(t *testing.T) {
	keysOf := func(m map[string]any) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}
	fetch := func(srv *server) map[string]any {
		t.Helper()
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := fetch(newTestServer(t))
	want := []string{"build", "epoch", "fenced", "next_key", "role", "satisfied", "tuples", "uptime_seconds", "violations"}
	if got := keysOf(st); !reflect.DeepEqual(got, want) {
		t.Fatalf("memory /stats keys = %v, want %v", got, want)
	}
	if up, ok := st["uptime_seconds"].(float64); !ok || up <= 0 {
		t.Fatalf("uptime_seconds = %v", st["uptime_seconds"])
	}
	build, ok := st["build"].(map[string]any)
	if !ok {
		t.Fatalf("build = %v", st["build"])
	}
	if v, _ := build["go"].(string); !strings.HasPrefix(v, "go1") {
		t.Fatalf("build.go = %v", build["go"])
	}
	if v, _ := build["module"].(string); v != "repro" {
		t.Fatalf("build.module = %v", build["module"])
	}

	data, cfds := writeInputs(t)
	dsrv, err := newServer(data, cfds, repro.MonitorOptions{Durable: filepath.Join(t.TempDir(), "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer dsrv.close()
	st = fetch(dsrv)
	want = []string{"build", "epoch", "fenced", "next_key", "role", "satisfied", "tuples", "uptime_seconds", "violations", "wal"}
	if got := keysOf(st); !reflect.DeepEqual(got, want) {
		t.Fatalf("durable /stats keys = %v, want %v", got, want)
	}
	wal, ok := st["wal"].(map[string]any)
	if !ok {
		t.Fatalf("wal = %v", st["wal"])
	}
	wantWal := []string{"dir", "generation", "recovered", "segment_records"}
	if got := keysOf(wal); !reflect.DeepEqual(got, wantWal) {
		t.Fatalf("stats.wal keys = %v, want %v", got, wantWal)
	}
}

// TestMetricsEndpoint: GET /metrics serves the node's registry in the
// Prometheus text format — the monitor's hot-path series, the HTTP
// middleware's per-endpoint series, and enough distinct families for a
// dashboard to work with.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := strings.NewReader(`{"values":["01","908","1111111","Rick","Tree Ave.","NYC","07974"]}`)
	resp, err := http.Post(ts.URL+"/insert", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// A first scrape, so the second sees /metrics' own request counted.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: code=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	// The CSV seed is itself one Apply batch of two inserts, so the
	// counters start at the seed's values.
	for _, want := range []string{
		`cfd_apply_ops_total{op="insert"} 3`,
		"cfd_apply_batches_total 2",
		"cfd_apply_seconds_count 2",
		"cfd_violations_added_total 2",
		"cfd_tuples 3",
		"cfd_violations 2",
		`cfdserve_http_requests_total{path="/insert"} 1`,
		`cfdserve_http_requests_total{path="/metrics"} 1`,
		`cfdserve_http_request_seconds_count{path="/insert"} 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	if families := strings.Count(text, "# TYPE "); families < 15 {
		t.Errorf("scrape has %d families, want >= 15:\n%s", families, text)
	}

	resp, err = http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: code=%d, want 405", resp.StatusCode)
	}
}

// TestHTTPErrorCounter: the middleware counts >= 400 responses.
func TestHTTPErrorCounter(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/delete", "application/json", strings.NewReader(`{"key": 999}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `cfdserve_http_errors_total{path="/delete"} 1`+"\n") {
		t.Errorf("404 not counted as an error:\n%s", raw)
	}
}
