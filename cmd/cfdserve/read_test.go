package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// violResp is the /violations wire shape the read-path endpoints serve.
type violResp struct {
	PerCFD []struct {
		CFD          int        `json:"cfd"`
		ConstTuples  []int64    `json:"const_tuples"`
		VariableKeys [][]string `json:"variable_keys"`
	} `json:"per_cfd"`
	Total      int    `json:"total"`
	Version    uint64 `json:"version"`
	NextCursor string `json:"next_cursor"`
}

func readViolations(t *testing.T, ts *httptest.Server, path, ifNoneMatch string) (int, string, *violResp) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header.Get("ETag"), nil
	}
	var vr violResp
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatalf("GET %s: %v in %q", path, err, body)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), &vr
}

func mutate(t *testing.T, ts *httptest.Server, path string, body any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
}

// TestViolationsETag: the violation view's version backs an ETag, so a
// poller that passes If-None-Match gets a bodyless 304 until a write
// actually changes the violation set — and gets fresh content after.
func TestViolationsETag(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	code, etag, _ := readViolations(t, ts, "/violations", "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("first read: code=%d etag=%q", code, etag)
	}
	code, etag2, _ := readViolations(t, ts, "/violations", etag)
	if code != http.StatusNotModified {
		t.Fatalf("conditional re-read: code=%d, want 304", code)
	}
	if etag2 != etag {
		t.Fatalf("304 carried ETag %q, want %q", etag2, etag)
	}

	// A write that changes the violation set invalidates the tag.
	mutate(t, ts, "/insert", map[string]any{
		"values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
	})
	code, etag3, vr := readViolations(t, ts, "/violations", etag)
	if code != http.StatusOK || vr == nil || vr.Total != 2 {
		t.Fatalf("post-write conditional read: code=%d resp=%+v", code, vr)
	}
	if etag3 == etag {
		t.Fatal("ETag unchanged across a violation-changing write")
	}
}

// TestViolationsPagination: pages under ?limit= cover exactly the
// unpaginated set, cursors are version-pinned, and a cursor from before
// a write is refused with 410 Gone rather than silently skewed.
func TestViolationsPagination(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	mutate(t, ts, "/insert", map[string]any{
		"values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
	})

	_, _, all := readViolations(t, ts, "/violations", "")
	if all.Total != 2 {
		t.Fatalf("unpaginated total = %d, want 2", all.Total)
	}

	var got int
	cursor := ""
	for page := 0; ; page++ {
		path := "/violations?limit=1"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		code, _, vr := readViolations(t, ts, path, "")
		if code != http.StatusOK {
			t.Fatalf("page %d: code=%d", page, code)
		}
		for _, p := range vr.PerCFD {
			got += len(p.ConstTuples) + len(p.VariableKeys)
		}
		if vr.NextCursor == "" {
			break
		}
		cursor = vr.NextCursor
		if page > 4 {
			t.Fatal("pagination did not terminate")
		}
	}
	if got != all.Total {
		t.Fatalf("pages covered %d violations, unpaginated has %d", got, all.Total)
	}

	// First page again, then write: its cursor must now be refused.
	_, _, first := readViolations(t, ts, "/violations?limit=1", "")
	if first.NextCursor == "" {
		t.Fatal("limit=1 page has no next_cursor")
	}
	mutate(t, ts, "/update", map[string]any{"key": 2, "attr": "CT", "value": "MH"})
	code, _, _ := readViolations(t, ts, "/violations?limit=1&cursor="+first.NextCursor, "")
	if code != http.StatusGone {
		t.Fatalf("stale cursor: code=%d, want 410", code)
	}
}

// TestViolationsPointLookup: ?key= is the drill-down path — it answers
// from the per-key stores without materializing the full view.
func TestViolationsPointLookup(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	mutate(t, ts, "/insert", map[string]any{
		"values": []string{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
	})

	get := func(path string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	code, m := get("/violations?key=2")
	if code != http.StatusOK {
		t.Fatalf("point lookup: code=%d", code)
	}
	var total int
	if err := json.Unmarshal(m["total"], &total); err != nil || total != 2 {
		t.Fatalf("point lookup total = %s, want 2", m["total"])
	}
	// Mike (key 0) shares Rick's (CC, AC, PN) group, so the lookup must
	// surface the variable violation from the member's side too.
	code, m = get("/violations?key=0")
	if code != http.StatusOK {
		t.Fatalf("group member: code=%d", code)
	}
	if err := json.Unmarshal(m["total"], &total); err != nil || total != 1 {
		t.Fatalf("group member total = %s, want 1", m["total"])
	}
	// Joe (key 1) exists but violates nothing.
	code, m = get("/violations?key=1")
	if code != http.StatusOK {
		t.Fatalf("clean key: code=%d", code)
	}
	if err := json.Unmarshal(m["total"], &total); err != nil || total != 0 {
		t.Fatalf("clean key total = %s, want 0", m["total"])
	}
	if code, _ := get("/violations?key=999"); code != http.StatusNotFound {
		t.Fatalf("absent key: code=%d, want 404", code)
	}
	if code, _ := get("/violations?key=abc"); code != http.StatusBadRequest {
		t.Fatalf("junk key: code=%d, want 400", code)
	}
	if code, _ := get("/violations?cfd=99"); code != http.StatusBadRequest {
		t.Fatalf("out-of-range cfd filter: code=%d, want 400", code)
	}
}
