package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro"
)

// The end-to-end replication test: a durable primary serving /wal over
// real HTTP, a follower tailing it through the httpSource, reads on
// both, promotion over POST /promote, writes after.

func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func getJSONCode(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return resp.StatusCode, v
}

func TestHTTPReplication(t *testing.T) {
	data, cfds := writeInputs(t)
	pdir := filepath.Join(t.TempDir(), "pwal")
	psrv, err := newServer(data, cfds, repro.MonitorOptions{Durable: pdir, RetainSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.close()
	pts := httptest.NewServer(psrv.handler())
	defer pts.Close()

	// Boot the follower over the wire exactly as -follow does.
	ctx := context.Background()
	fdir := filepath.Join(t.TempDir(), "fwal")
	src := newHTTPSource(pts.URL)
	sigma, err := repro.ParseCFDSet(figure2CFDs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := repro.FollowMonitor(ctx, sigma, repro.MonitorOptions{Durable: fdir}, repro.FollowOptions{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := &server{}
	fsrv.setReplica(f.Monitor(), f)
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	// A dirty write on the primary ships to the follower.
	code, res := postJSON(t, pts.URL+"/insert", `{"values":["01","908","1111111","Rick","Tree Ave.","NYC","07974"]}`)
	if code != http.StatusOK {
		t.Fatalf("primary insert: %d %v", code, res)
	}
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	code, fv := getJSONCode(t, fts.URL+"/violations")
	if code != http.StatusOK {
		t.Fatalf("follower violations: %d", code)
	}
	_, pv := getJSONCode(t, pts.URL+"/violations")
	if fmt.Sprint(fv["total"]) != fmt.Sprint(pv["total"]) || fmt.Sprint(fv["total"]) == "0" {
		t.Fatalf("follower total %v, primary %v", fv["total"], pv["total"])
	}

	// Replica stats: present, caught up, following.
	code, st := getJSONCode(t, fts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("follower stats: %d", code)
	}
	rep, ok := st["replica"].(map[string]any)
	if !ok {
		t.Fatalf("follower stats has no replica block: %v", st)
	}
	if rep["following"] != true || rep["promoted"] != false || fmt.Sprint(rep["lag_bytes"]) != "0" {
		t.Fatalf("replica block = %v", rep)
	}
	if _, hasRep := getStats(t, pts.URL); hasRep {
		t.Fatal("primary stats has a replica block")
	}

	// Mutations and snapshot rolls are conflicts on a follower.
	if code, res = postJSON(t, fts.URL+"/insert", `{"values":["01","908","1111111","Eve","Tree Ave.","MH","07974"]}`); code != http.StatusConflict {
		t.Fatalf("follower insert: %d %v, want 409", code, res)
	}
	if code, res = postJSON(t, fts.URL+"/apply", `{"ops":[{"op":"delete","key":0}]}`); code != http.StatusConflict {
		t.Fatalf("follower apply: %d %v, want 409", code, res)
	}
	if code, res = postJSON(t, fts.URL+"/snapshot", ``); code != http.StatusConflict {
		t.Fatalf("follower snapshot: %d %v, want 409", code, res)
	}
	// /promote on a primary is a conflict too.
	if code, res = postJSON(t, pts.URL+"/promote", ``); code != http.StatusConflict {
		t.Fatalf("primary promote: %d %v, want 409", code, res)
	}

	// Stream cursor validation.
	if code, _ = getJSONCode(t, pts.URL+"/wal/stream?from=zap"); code != http.StatusBadRequest {
		t.Fatalf("bad cursor: %d, want 400", code)
	}
	if code, _ = getJSONCode(t, pts.URL+"/wal/stream?from=99,0"); code != http.StatusInternalServerError {
		t.Fatalf("future cursor: %d, want 500", code)
	}

	// Promote the follower; it starts accepting writes at its boundary.
	code, res = postJSON(t, fts.URL+"/promote", ``)
	if code != http.StatusOK || res["promoted"] != true {
		t.Fatalf("promote: %d %v", code, res)
	}
	code, res = postJSON(t, fts.URL+"/promote", ``) // idempotent
	if code != http.StatusOK {
		t.Fatalf("re-promote: %d %v", code, res)
	}
	code, res = postJSON(t, fts.URL+"/update", `{"key":2,"attr":"CT","value":"MH"}`)
	if code != http.StatusOK {
		t.Fatalf("post-promotion update: %d %v", code, res)
	}
	if fsrv.mon().ViolationCount() != 0 {
		t.Fatalf("healing update left %d violations", fsrv.mon().ViolationCount())
	}
	if code, _ = getJSONCode(t, fts.URL+"/stats"); code != http.StatusOK {
		t.Fatal("stats after promotion failed")
	}
	if err := fsrv.closeReplica(); err != nil {
		t.Fatal(err)
	}
}

// getStats fetches /stats and reports whether a replica block exists.
func getStats(t *testing.T, base string) (map[string]any, bool) {
	t.Helper()
	_, st := getJSONCode(t, base+"/stats")
	_, ok := st["replica"]
	return st, ok
}

// TestWALEndpointsRequireDurable: a memory-only node has nothing to ship.
func TestWALEndpointsRequireDurable(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	if code, _ := getJSONCode(t, ts.URL+"/wal/snapshot"); code != http.StatusConflict {
		t.Fatalf("/wal/snapshot on memory node: %d, want 409", code)
	}
	if code, _ := getJSONCode(t, ts.URL+"/wal/stream?from=0,0"); code != http.StatusConflict {
		t.Fatalf("/wal/stream on memory node: %d, want 409", code)
	}
}

// TestHTTPSourceGone: a 410 from the primary surfaces as
// ErrWALSegmentGone through the wire, which is what triggers a resync.
func TestHTTPSourceGone(t *testing.T) {
	data, cfds := writeInputs(t)
	pdir := filepath.Join(t.TempDir(), "pwal")
	// Zero retention: one roll strands any older cursor.
	psrv, err := newServer(data, cfds, repro.MonitorOptions{Durable: pdir})
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.close()
	pts := httptest.NewServer(psrv.handler())
	defer pts.Close()
	if err := psrv.mon().ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	src := newHTTPSource(pts.URL)
	_, err = src.Chunk(context.Background(), 1, 0, 1<<20)
	if !errors.Is(err, repro.ErrWALSegmentGone) {
		t.Fatalf("stale cursor error = %v, want ErrWALSegmentGone", err)
	}
}
