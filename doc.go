// Package repro is a complete Go implementation of Conditional Functional
// Dependencies (CFDs) for data cleaning, reproducing
//
//	P. Bohannon, W. Fan, F. Geerts, X. Jia, A. Kementsietsidis.
//	"Conditional Functional Dependencies for Data Cleaning". ICDE 2007.
//
// A CFD couples a standard functional dependency X → Y with a pattern
// tableau that binds semantically related data values, e.g.
//
//	[CC=44, ZIP] -> [STR]          // in the UK, zip code determines street
//	[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
//
// The library provides, through this package's facade:
//
//   - The CFD model: pattern tableaux, the match operator, satisfaction
//     checking and a text notation (ParseCFD / ParseCFDSet).
//   - Reasoning (Section 3 of the paper): consistency analysis, a sound
//     and complete implication test, and minimal covers (Consistent,
//     Implies, MinimalCover). The inference system FD1–FD8 lives in
//     internal/core for programmatic derivations.
//   - Violation detection (Section 4): a pure-Go detector plus the
//     paper's SQL technique — generated (QC, QV) query pairs in CNF or
//     DNF, and the merged two-pass variant — executed on an embedded SQL
//     engine, optionally through database/sql (driver "cfdmem").
//   - Incremental violation monitoring (beyond the paper; see
//     internal/incremental): a stateful Monitor that keeps the violation
//     set live under tuple inserts, deletes and updates in time
//     proportional to the affected index buckets, emitting the exact
//     violation delta of every change (NewMonitor, LoadMonitor). The
//     cfdserve command exposes it as a line-oriented or HTTP service, and
//     cfddetect -watch tails a CSV change stream through it.
//   - A heuristic repair algorithm (Section 6): cost-based value
//     modification with the CFD-specific LHS-breaking move.
//   - The paper's experimental workload generator (Section 5): tax
//     records with SZ/NOISE knobs and CFD workloads with NUMATTRs, TABSZ
//     and NUMCONSTs knobs.
//
// See README.md for a walkthrough, DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduction of every figure in the paper.
package repro
