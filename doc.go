// Package repro is a complete Go implementation of Conditional Functional
// Dependencies (CFDs) for data cleaning, reproducing
//
//	P. Bohannon, W. Fan, F. Geerts, X. Jia, A. Kementsietsidis.
//	"Conditional Functional Dependencies for Data Cleaning". ICDE 2007.
//
// A CFD couples a standard functional dependency X → Y with a pattern
// tableau that binds semantically related data values, e.g.
//
//	[CC=44, ZIP] -> [STR]          // in the UK, zip code determines street
//	[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
//
// The library provides, through this package's facade:
//
//   - The CFD model: pattern tableaux, the match operator, satisfaction
//     checking and a text notation (ParseCFD / ParseCFDSet).
//   - Reasoning (Section 3 of the paper): consistency analysis, a sound
//     and complete implication test, and minimal covers (Consistent,
//     Implies, MinimalCover). The inference system FD1–FD8 lives in
//     internal/core for programmatic derivations.
//   - Violation detection (Section 4): a pure-Go detector plus the
//     paper's SQL technique — generated (QC, QV) query pairs in CNF or
//     DNF, and the merged two-pass variant — executed on an embedded SQL
//     engine, optionally through database/sql (driver "cfdmem").
//   - Incremental violation monitoring (beyond the paper; see
//     internal/incremental): a stateful Monitor that keeps the violation
//     set live under tuple inserts, deletes and updates in time
//     proportional to the affected index buckets, emitting the exact
//     violation delta of every change (NewMonitor, LoadMonitor). Changes
//     batch as ChangeSets through Monitor.Apply — see "Batched ingest"
//     below. The cfdserve command exposes it as a line-oriented or HTTP
//     service (POST /apply, BATCH…END framing), and cfddetect -watch
//     tails a CSV change stream through it (-batch coalescing).
//   - Durability for the serving path (internal/wal): with
//     MonitorOptions.Durable set to a directory, the Monitor journals
//     every mutation to a write-ahead log and periodically snapshots its
//     full state, so a restart recovers in milliseconds instead of
//     re-loading and re-indexing the source CSV. See "Durability
//     guarantees" below.
//   - WAL segment shipping and hot standby (see "Replication" below): a
//     durable Monitor serves its snapshot and log segments as
//     record-aligned chunks, and a MonitorFollower (FollowMonitor) tails
//     them into its own WAL directory as a read-only replica, promotable
//     to a writable primary at the record boundary it has applied.
//     cfdserve exposes both sides: GET /wal/snapshot + GET /wal/stream
//     on the primary, -follow / POST /promote on the standby.
//   - Scale-out writes (internal/cluster; see "Replication" below): a
//     consistent-hash ring partitions tuple keys across independent
//     shard groups, each a primary with optional followers; a Router
//     splits every ChangeSet by owning group, fans the sub-batches out
//     in parallel under epoch-stamped fencing, and merges the violation
//     deltas (NewClusterRouter, ClusterLocalBackend). The cfdrouter
//     command is the HTTP daemon over cfdserve shard nodes, and the E14
//     benchmark plus cfdbench -serve measure the scaling.
//   - Streaming CFD discovery (the Section 7 future-work item; see
//     internal/discovery): one mining code path over the Monitor's
//     generalized group-statistics substrate — DiscoverCFDs mines an
//     instance from scratch by seeding a miner, WatchDiscovery keeps
//     the mined set current under changes. See "Streaming discovery"
//     below. cfdserve serves it as GET /discover and cfddetect -watch
//     -mine prints mined CFDs as they appear and retire.
//   - A heuristic repair algorithm (Section 6): cost-based value
//     modification with the CFD-specific LHS-breaking move (Repair),
//     plus a live variant on the Monitor — WatchRepairs keeps a
//     cost-ranked fix suggestion per live violation current under
//     changes. See "Live repair" below. cfdserve serves the ranked set
//     as GET /v1/repairs and applies picked fixes through POST
//     /v1/repairs/apply; cfdrepair is the batch CLI over the same
//     engine.
//   - The paper's experimental workload generator (Section 5): tax
//     records with SZ/NOISE knobs and CFD workloads with NUMATTRs, TABSZ
//     and NUMCONSTs knobs.
//
// # Batched ingest
//
// Every mutation of a Monitor flows through one path: Monitor.Apply
// takes a ChangeSet — an ordered vector of insert/delete/update ops —
// and the single-op Insert, Delete and Update are one-element wrappers
// over it.
//
// Ordering: ops on the same tuple key take effect in vector order, so a
// batch may insert a tuple and update or delete it later in the same
// ChangeSet (validation simulates existence through the batch prefix).
// Ops on different keys commute; the returned delta is the batch's net
// effect on the violation set — a violation raised and retired within
// one batch does not appear at all — and is the same under any
// interleaving. Inserted keys are assigned in vector order and written
// back into the ChangeSet's ops.
//
// Validation is all-or-nothing: arity, domain, attribute-name and
// key-existence checks run for the entire vector before any op is
// applied, and one invalid op rejects the whole ChangeSet with its op
// position; nothing is applied and nothing journaled.
//
// Atomicity under crash: a durable Monitor journals a ChangeSet as ONE
// length-prefixed, CRC-framed WAL record. A crash mid-write tears the
// record as a unit, so recovery replays all of the batch or none of it
// — never a prefix of its ops. The mid-batch kill property test
// (internal/incremental) truncates logs inside batch records and checks
// recovery lands exactly on a batch boundary.
//
// Fsync-per-batch: with MonitorOptions.Fsync, a batch costs one disk
// sync regardless of its length — the E10 benchmarks (cmd/cfdbench
// -only e10, make bench-batch) measure the resulting throughput curve
// against batch size under concurrent writers; a 1000-op ChangeSet
// lands an order of magnitude faster than 1000 single fsynced ops.
// Apply also amortizes the in-memory work: ops are bucketed by lock
// shard, each affected shard is visited once per batch, and disjoint
// shards apply in parallel.
//
// # Streaming discovery
//
// A Monitor maintains, on request (Monitor.TrackGroups), group
// statistics for arbitrary attribute pairs (X → A): every live X-group's
// support and A-value distribution, updated inside the same ChangeSet
// apply path that maintains the violation indexes. Each apply leaves
// coalesced group-delta events behind — group created or destroyed,
// support ±, distinct ± collapse to one delta per touched group — which
// a subscriber drains on its own schedule.
//
// WatchDiscovery builds CFD discovery on that substrate: a CFDMiner
// holds the candidate lattice of embedded FDs (|X| ≤ MaxLHS) as
// incremental scores. CFDMiner.Refresh drains the deltas and re-scores
// exactly the groups the interleaving changes touched — milliseconds
// per 1K-op ChangeSet against seconds for a full re-mine at 100K tuples
// (the E11 benchmark) — and reports the mined set's net changes.
//
// Delta semantics: a mined CFD appears when its embedded FD first
// qualifies (as a global FD with enough evidence, or with its first
// supported pattern), updates when it flips between FD and pattern form
// or its pattern count moves, and retires when the last pattern loses
// support, the FD breaks without minable patterns, or a newly-holding
// subset FD prunes it (minimality pruning is dynamic — deletions can
// resurrect a subset FD and retire its supersets). Under deletions,
// confidence is recomputed from the surviving members only: a group
// whose dissenting tuples are deleted becomes pure again and its
// pattern returns.
//
// There is exactly one mining code path: DiscoverCFDs seeds a throwaway
// monitor with the instance as one bulk batch and reads the miner's
// initial state, so bulk and streaming discovery cannot disagree — a
// randomized property test drives a miner with random ChangeSet streams
// and checks it lands exactly on DiscoverCFDs' output at every
// checkpoint.
//
// # Durability guarantees
//
// A durable Monitor (MonitorOptions.Durable = dir) appends one
// length-prefixed, CRC-checked record per mutation — per ChangeSet, for
// batches — to the generation's log segment (dir/wal-N, zero-padded)
// before touching the in-memory state, under a single journal mutex, so
// log order always equals apply order and a replay rebuilds the exact
// pre-crash state.
//
// What is fsynced when: with MonitorOptions.Fsync, the log is fsynced
// after every record — an acknowledged mutation then survives OS crash
// and power loss, at the cost of one disk sync per write. Without it
// (the default), records are buffered and reach the OS when the buffer
// fills, on snapshot rotation, and on Close; a process crash loses at
// most the unflushed tail, never an fsynced prefix. Snapshots are always
// fully durable regardless of Fsync: each one goes to a temp file that
// is fsynced and renamed into place, followed by a directory fsync.
//
// Snapshot cadence: MonitorOptions.SnapshotEvery rolls a background,
// single-flight snapshot after that many journaled records (0 disables;
// Monitor.ForceSnapshot rolls one synchronously — cfdserve exposes this
// as POST /snapshot). A snapshot advances the generation: snap-(N+1) is
// written, an empty wal-(N+1) is started, and only then is generation N
// garbage-collected, so at every crash point the directory holds one
// complete recovery path.
//
// Recovery semantics: NewMonitor/LoadMonitor on a directory with
// existing state ignore any seed relation and instead load the latest
// snapshot, replay the log tail on top, and truncate a torn final
// record at the last intact boundary (a crash mid-append is expected,
// not an error). Monitor.Recovered reports which path ran, and
// Monitor.JournalStats exposes the generation, segment length and last
// snapshot error. The crash-recovery property test in
// internal/incremental kills the journal at arbitrary record boundaries
// and cross-checks the recovered violation set against the batch Direct
// detector.
//
// # Replication
//
// Segment lifecycle: a durable directory is a sequence of generations —
// snap-N is a full state image, wal-N the records applied since it. A
// snapshot roll closes wal-N and opens generation N+1; with
// MonitorOptions.RetainSegments > 0 the last K closed segments survive
// the roll (snapshots below the newest are always collected), which is
// what lets a briefly-disconnected follower resume its cursor instead of
// re-shipping a snapshot. The shipping surface (Monitor.WALChunk,
// Monitor.ShipSnapshot; cfdserve GET /wal/stream and /wal/snapshot)
// serves closed segments in full and the live segment up to its flushed
// boundary, always cut at record boundaries — a chunk never splits a
// framed record, so a connection torn mid-record leaves the cursor
// exactly where a crashed append would.
//
// Follower consistency: a MonitorFollower's state is, at every instant,
// a record-boundary prefix of the primary's journaled stream — never a
// partial record, and (because a ChangeSet is one record) never part of
// a batch. Chunks are appended to the follower's own WAL directory
// before they are applied, re-framed byte-identically, and the follower
// mirrors the primary's segment numbers by snapshotting its own state at
// every segment boundary; its directory is therefore a valid single-node
// recovery image of exactly the applied prefix, and a follower restart
// reuses the ordinary torn-tail-tolerant recovery before resuming the
// stream (the E12 benchmark measures this catch-up against a CSV
// re-seed). Replication is asynchronous: an acknowledged primary write
// may not have reached the follower yet and — with Fsync off — a crashed
// primary can even recover behind a follower that already applied its
// unsynced tail; promotion, not re-subscription, is the intended
// response to a dead primary (see the fencing note below). Reads
// (Violations, stats, discovery
// miners) serve on the follower throughout; mutations and ForceSnapshot
// return ErrMonitorReadOnly. A follower whose cursor falls below the
// primary's retention window gets ErrWALSegmentGone and must resync
// from the current snapshot (FollowOptions.Resync; cfdserve does this
// automatically).
//
// Promotion semantics: MonitorFollower.Promote (cfdserve POST /promote,
// or -promote-after on sustained primary loss) stops the tail loop,
// lets any in-flight chunk finish under the journal mutex, and lifts
// the read-only gate — an atomic flip at the exact record boundary the
// follower has applied. From then on the monitor journals its own
// mutations into the same directory and behaves as a primary in every
// way, including serving /wal to its own followers.
//
// Fencing: promotion bumps the node's epoch — a monotonic term number
// journaled as a WAL record before the first post-promotion write and
// echoed on /wal/stream chunks (X-Wal-Epoch), in /stats, and as the
// cfd_epoch gauge. A mutation can be stamped with the epoch the caller
// believes the history is at (Monitor.ApplyAt; X-Cfd-Epoch on cfdserve
// mutations): a node whose epoch differs refuses it with
// ErrMonitorFenced, and a stamp from a NEWER epoch permanently fences
// the node — the deposed primary learns of its deposition from the
// very write that would have forked history, with no coordination
// channel needed. POST /fence (Monitor.Fence) delivers the same verdict
// eagerly, and cluster.Router.Promote calls it on the old primary
// best-effort after every failover. A merely-partitioned old primary
// therefore cannot accept a routed write into a diverged history:
// cfdrouter stamps every fan-out with the group's epoch, so the two
// sides of a partition cannot both be writable. docs/operations.md
// walks through the failover procedure; the failover and cluster
// property tests kill primaries at random record boundaries, promote,
// and cross-check the survivors against the single-node oracle while
// asserting the deposed primary refuses writes.
//
// # Observability
//
// Everything on the serving path is instrumented through internal/obs,
// a zero-dependency metrics core: atomic counters and gauges, lock-free
// power-of-two-bucket histograms (Quantile extracts p50/p95/p99), and a
// hand-rolled Prometheus text-exposition writer — no client library. A
// Monitor takes its registry from MonitorOptions.Metrics: nil gives it
// a private registry (hermetic tests; read it back via Monitor.Metrics),
// DefaultMetrics() shares the process-global one (what cfdserve does),
// DisabledMetrics() turns instrumentation off entirely — the disabled
// path never reads the clock. The instrumentation adds only atomic
// stores to the hot path; the BenchmarkObsOverhead gate holds it within
// noise of the disabled baseline.
//
// The metric catalog, all registered by the monitor (histograms are
// *_bucket/_sum/_count families in seconds):
//
//	cfd_apply_ops_total{op}         mutations applied, by insert/delete/update
//	cfd_apply_batches_total         ChangeSets applied through Monitor.Apply
//	cfd_apply_rejected_total        ChangeSets rejected by validation
//	cfd_apply_seconds               whole-batch apply latency
//	cfd_apply_validate_seconds      the validation stage
//	cfd_apply_wal_append_seconds    the journal stage (append + any fsync)
//	cfd_apply_shard_seconds         the shard-apply stage
//	cfd_group_commit_window_ops     ops journaled per commit window
//	cfd_group_commit_window_writers writers coalesced per commit window
//	cfd_group_commit_wait_seconds   follower wait for the leader's fsync
//	cfd_violations_added_total      violation-delta entries raised
//	cfd_violations_removed_total    violation-delta entries retired
//	cfd_tuples, cfd_violations      live set sizes (gauges)
//	cfd_wal_append_seconds          WAL record framing + buffering
//	cfd_wal_fsync_seconds           WAL flush + fsync
//	cfd_wal_records_total           WAL records appended
//	cfd_wal_append_bytes_total      WAL bytes appended, framing included
//	cfd_wal_snapshot_seconds        snapshot write
//	cfd_wal_segment_roll_seconds    whole generation roll
//	cfd_wal_snapshots_total         generation rolls
//	cfd_replica_*                   follower only: chunks/records/bytes
//	                                shipped, fetch errors, apply latency,
//	                                lag in bytes and segments
//	cfd_miner_refresh_seconds       incremental re-score latency
//	cfd_miner_groups_rescored_total groups the re-scores touched
//	cfd_miner_candidates            candidate lattice size (gauge)
//	cfd_miner_mined_cfds            currently mined CFDs (gauge)
//
// cfdserve serves its registry — the monitor series above plus
// per-endpoint cfdserve_http_requests_total / cfdserve_http_errors_total
// / cfdserve_http_request_seconds — as GET /metrics in the Prometheus
// text format, points Prometheus at itself with a plain scrape config,
// and reports uptime and build identity in GET /stats. -pprof-addr
// opens a second, private listener with net/http/pprof for CPU and heap
// profiles (go tool pprof http://host:port/debug/pprof/profile).
// Diagnostics in both CLIs flow through log/slog: -log-level picks the
// threshold (debug, info, warn, error), -log-json switches stderr to
// JSON lines.
//
// # Write-path raw speed
//
// Two mechanisms serve unbatched write traffic (see ARCHITECTURE.md for
// the full write-path walk-through). Group commit
// (MonitorOptions.GroupCommit) coalesces concurrent single-op writers
// into shared commit windows — one combined WAL record and one fsync
// per window, with per-writer validation and deltas — closing most of
// the gap to hand-batched ChangeSets without asking callers to batch.
// And the monitor stores tuples and group keys as dense value IDs
// (4-byte columns interned through one value pool) rather than string
// maps, so group probes hash and compare integers and resident memory
// per tuple drops accordingly; the E13 benchmarks (cmd/cfdbench -only
// e13) measure both.
//
// # Live repair
//
// The batch Repair of Section 6 re-plans the whole instance on every
// run. WatchRepairs is its streaming counterpart: a RepairSuggester
// attaches to a Monitor, plans one cost-ranked fix per live violation —
// an RHS edit for a constant violation; for a variable violation
// whichever of merging the group onto its cheapest representative or
// breaking the cheapest LHS cell costs less under the CostModel and the
// Monitor's group distributions — and on every Refresh re-plans only
// the suggestions whose violations the intervening ChangeSets touched,
// O(Δ) per batch rather than O(|I|). With SuggestOptions.Trust wired to
// a miner's Confidence (the relative-trust loop), a CFD whose support
// has eroded below TrustThreshold stops generating data edits and
// instead surfaces one constraint-relaxation suggestion, on the
// principle that low-trust constraints should bend before high-trust
// data.
//
// Accepted suggestions never bypass the write path: Plan turns a set of
// suggestion IDs into an ordinary ChangeSet (plus the per-cell edit
// list for display), which flows through Monitor.Apply — and therefore
// through group commit, the WAL, replication and fencing — like any
// other write. cfdserve serves the ranked set as GET /v1/repairs
// (cost-ascending, paginated, version-tagged for If-None-Match) and
// applies picked IDs via POST /v1/repairs/apply; cfdrouter fans
// GET /v1/repairs out across shard groups; cmd/cfdrepair is the batch
// CLI that loops suggest-plan-apply to a certified repair. The E16
// benchmark (cmd/cfdbench -only e16, make bench-repair) gates the
// incremental claim: re-planning after a 1K-op batch must beat a full
// batch repair by ≥10× at 100K tuples.
//
// See README.md for a walkthrough, ARCHITECTURE.md for the subsystem
// map and data-flow diagrams, docs/operations.md for the cfdserve
// runbook, DESIGN.md for design rationale and EXPERIMENTS.md for the
// reproduction of every figure in the paper.
package repro
