package repro_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

// custExample builds the paper's Figure 1 cust instance and the ϕ2
// constraint of Figure 2 (phone determines address, with the 908→MH
// constant binding) behind a loaded monitor.
func custExample(opts repro.MonitorOptions) (*repro.Monitor, *repro.Schema, []*repro.CFD) {
	schema, err := repro.NewSchema("cust",
		repro.Attr("CC"), repro.Attr("AC"), repro.Attr("PN"),
		repro.Attr("NM"), repro.Attr("STR"), repro.Attr("CT"), repro.Attr("ZIP"))
	if err != nil {
		log.Fatal(err)
	}
	cust := repro.NewRelation(schema)
	for _, t := range [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"},
		{"01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"},
	} {
		if err := cust.Insert(t); err != nil {
			log.Fatal(err)
		}
	}
	sigma, err := repro.ParseCFDSet(`
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
`)
	if err != nil {
		log.Fatal(err)
	}
	m, err := repro.LoadMonitor(cust, sigma, opts)
	if err != nil {
		log.Fatal(err)
	}
	return m, schema, sigma
}

// A monitor keeps the violation set of Σ current while the instance
// changes, answering every mutation with its exact violation delta —
// no rescans.
func ExampleNewMonitor() {
	m, _, _ := custExample(repro.MonitorOptions{})
	fmt.Printf("loaded %d tuples, satisfied = %v\n", m.Len(), m.Satisfied())

	// Eve shares Mike's phone number but reports NYC: that breaks the
	// 908→MH constant binding AND makes her phone group disagree on CT.
	key, delta, err := m.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty insert: %d new violations, satisfied = %v\n", len(delta.Added), m.Satisfied())

	// Fixing her city retires both; the delta is the proof.
	delta, err = m.Update(key, "CT", "MH")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fix: %d violations retired, satisfied = %v\n", len(delta.Removed), m.Satisfied())
	// Output:
	// loaded 3 tuples, satisfied = true
	// dirty insert: 2 new violations, satisfied = false
	// fix: 2 violations retired, satisfied = true
}

// A ChangeSet is an ordered op vector applied by one Monitor.Apply:
// validated as a unit (an invalid op rejects all of it), applied in one
// shard pass, and — on a durable monitor — journaled as one WAL record
// with one fsync. The delta is the batch's net effect.
func ExampleChangeSet() {
	m, _, _ := custExample(repro.MonitorOptions{})

	var cs repro.ChangeSet
	cs.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	cs.Update(0, "NM", "Michael") // no CFD mentions NM: contributes no delta
	delta, err := m.Apply(&cs)
	if err != nil {
		log.Fatal(err)
	}
	eveKey := cs.Ops[0].Key // inserted keys come back in the ops
	fmt.Printf("batch of %d ops: %d violations added\n", cs.Len(), len(delta.Added))

	// A second batch heals her city through the returned key.
	delta, err = m.Apply((&repro.ChangeSet{}).Update(eveKey, "CT", "MH"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healing batch: %d violations retired\n", len(delta.Removed))

	// Batches are atomic: one bad op rejects the whole ChangeSet.
	bad := (&repro.ChangeSet{}).Update(999, "CT", "MH").Update(eveKey, "NM", "Eva")
	if _, err := m.Apply(bad); err != nil {
		fmt.Printf("rejected: %v\n", err)
	}
	fmt.Printf("monitor unchanged: %d tuples, satisfied = %v\n", m.Len(), m.Satisfied())
	// Output:
	// batch of 2 ops: 2 violations added
	// healing batch: 2 violations retired
	// rejected: incremental: changeset op 0: no tuple with key 999
	// monitor unchanged: 4 tuples, satisfied = true
}

// A follower is a hot standby: it tails the primary's WAL — snapshot
// first, then record-aligned chunks — into its own directory, serves
// reads while refusing writes, and promotes to a writable primary at
// the record boundary it has applied. In production the chunks travel
// over cfdserve's /wal endpoints; in-process the same protocol runs
// through NewMonitorChunkSource.
func ExampleFollowMonitor() {
	pdir, err := os.MkdirTemp("", "example-primary-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(pdir)
	fdir, err := os.MkdirTemp("", "example-follower-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(fdir)

	primary, _, sigma := custExample(repro.MonitorOptions{Durable: pdir})
	ctx := context.Background()
	follower, err := repro.FollowMonitor(ctx, sigma,
		repro.MonitorOptions{Durable: fdir},
		repro.FollowOptions{Source: repro.NewMonitorChunkSource(primary)})
	if err != nil {
		log.Fatal(err)
	}

	// A write lands on the primary and ships on the next catch-up pass.
	if _, _, err := primary.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}); err != nil {
		log.Fatal(err)
	}
	if _, err := follower.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	standby := follower.Monitor()
	fmt.Printf("standby: %d tuples, %d violations, read-only = %v\n",
		standby.Len(), standby.ViolationCount(), standby.ReadOnly())

	// The primary dies; promotion flips the standby into a writable
	// primary — no re-seed, no replay from scratch.
	if err := primary.Close(); err != nil {
		log.Fatal(err)
	}
	if err := follower.Promote(); err != nil {
		log.Fatal(err)
	}
	if _, err := standby.Update(0, "NM", "Michael"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted: read-only = %v, %d tuples\n", standby.ReadOnly(), standby.Len())
	if err := standby.Close(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// standby: 4 tuples, 2 violations, read-only = true
	// promoted: read-only = false, 4 tuples
}

// WatchDiscovery attaches a miner to a live monitor's group indexes:
// Mined reports the CFDs that currently hold, and each Refresh
// re-scores only the groups the interleaved changes touched — never
// the whole instance.
func ExampleWatchDiscovery() {
	m, _, _ := custExample(repro.MonitorOptions{})
	miner, err := repro.WatchDiscovery(m, repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer miner.Close()
	mined, err := miner.Mined()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined: %d CFDs hold\n", len(mined))

	// A tuple contradicting phone→city degrades the mined set; Refresh
	// reports exactly what changed.
	key, _, err := m.Insert(repro.Tuple{"01", "908", "1111111", "Sam", "Tree Ave.", "LA", "07974"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a contradicting insert: %d mined-set changes\n", len(miner.Refresh()))

	// Deleting it heals the instance and the set recovers.
	if _, err := m.Delete(key); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after healing: %d mined-set changes\n", len(miner.Refresh()))
	// Output:
	// mined: 25 CFDs hold
	// after a contradicting insert: 4 mined-set changes
	// after healing: 4 mined-set changes
}
