// Discovery: the paper's Section 7 future-work item — mine CFDs from
// data instead of writing them by hand, then use them to clean a later,
// dirtier batch.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A trusted reference batch (clean) and a new incoming batch (noisy).
	reference := repro.GenerateTax(repro.TaxConfig{Size: 3000, Noise: 0, Seed: 10})
	incoming := repro.GenerateTax(repro.TaxConfig{Size: 3000, Noise: 0.05, Seed: 11})

	// Mine constraints from the reference batch: global FDs plus
	// constant patterns with decent support.
	ds, err := repro.DiscoverCFDs(reference.Clean, repro.DiscoveryConfig{
		MaxLHS: 1, MinSupport: 3, MaxPatterns: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d constraints from the reference batch\n", len(ds))
	var fds []*repro.CFD
	for _, d := range ds {
		if d.IsFD {
			fds = append(fds, d.CFD)
			fmt.Printf("  FD   %s\n", d.CFD)
		}
	}
	fmt.Println()

	// The mined FDs hold on the reference but flag the incoming batch.
	okRef, err := repro.SatisfiesSet(reference.Clean, fds)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Detect(incoming.Dirty, fds, repro.DetectOptions{Strategy: repro.StrategyDirect})
	if err != nil {
		log.Fatal(err)
	}
	violated := len(res.ViolatingCFDs())
	fmt.Printf("mined FDs hold on reference: %v; violated by incoming batch: %d of %d\n",
		okRef, violated, len(fds))

	// Clean the incoming batch with the mined constraints.
	rep, err := repro.Repair(incoming.Dirty, fds, repro.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	restored := 0
	for _, ch := range incoming.Changes {
		col := incoming.Dirty.Schema.MustIndex(ch.Attr)
		if rep.Repaired.Tuples[ch.Row][col] == ch.From {
			restored++
		}
	}
	fmt.Printf("repair with mined constraints: %d changes, certified: %v, restored %d/%d injected errors\n",
		len(rep.Changes), rep.Satisfied, restored, len(incoming.Changes))
}
