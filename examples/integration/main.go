// Data integration: the motivation from the paper's introduction —
// "dependencies that hold only in a subset of sources will hold only
// conditionally in the integrated data".
//
// Two customer databases are merged: a US source where area code
// determines city, and a UK source where zip code determines street.
// Neither FD holds globally on the integrated table, but both hold as
// CFDs conditioned on the country code — and those CFDs catch errors the
// global FDs would miss entirely.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	schema, err := repro.NewSchema("cust",
		repro.Attr("SRC"), repro.Attr("CC"), repro.Attr("AC"),
		repro.Attr("CT"), repro.Attr("STR"), repro.Attr("ZIP"))
	if err != nil {
		log.Fatal(err)
	}
	merged := repro.NewRelation(schema)
	insert := func(vals ...string) {
		if err := merged.Insert(vals); err != nil {
			log.Fatal(err)
		}
	}
	// US source: [AC] → [CT] holds locally.
	insert("us", "01", "908", "MH", "Tree Ave.", "07974")
	insert("us", "01", "908", "MH", "Oak Ave.", "07974")
	insert("us", "01", "212", "NYC", "5th Ave.", "01202")
	// UK source: [ZIP] → [STR] holds locally; area codes reuse US numbers!
	insert("uk", "44", "908", "EDI", "High St.", "EH4 1DT")
	insert("uk", "44", "908", "GLA", "Firth Rd.", "G1 1AA") // same AC, different city: fine in the UK
	insert("uk", "44", "131", "EDI", "High St.", "EH4 1DT")

	// The source-local FDs, read globally, FAIL on the integrated table:
	globalFD, err := repro.ParseCFD("[AC] -> [CT]")
	if err != nil {
		log.Fatal(err)
	}
	ok, err := repro.Satisfies(merged, globalFD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global FD [AC] -> [CT] holds on the integrated table: %v (the 908 area code exists in both countries)\n", ok)

	// Conditioned on the country code, they hold — the CFD formulation:
	sigma, err := repro.ParseCFDSet(`
[CC=01, AC] -> [CT]
[CC=44, ZIP] -> [STR]
`)
	if err != nil {
		log.Fatal(err)
	}
	ok, err = repro.SatisfiesSet(merged, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conditional versions hold: %v\n\n", ok)

	// Reasoning across the integrated constraint set (Section 3): adding
	// the UK rule for a specific zip is implied and would be redundant.
	redundant, err := repro.ParseCFD("[CC=44, ZIP='EH4 1DT'] -> [STR]")
	if err != nil {
		log.Fatal(err)
	}
	implied, err := repro.Implies(schema, sigma, redundant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ implies [CC=44, ZIP='EH4 1DT'] -> [STR]: %v\n", implied)

	cover, err := repro.MinimalCover(schema, append(sigma, redundant))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimal cover of Σ + the redundant CFD has %d constraints (back to the originals):\n", len(cover))
	for _, s := range cover {
		fmt.Printf("  %s\n", s)
	}
	fmt.Println()

	// Now corrupt the feed: a UK record arrives with a US-style city for
	// its zip — the global FDs are silent, the CFD catches it.
	insert("uk", "44", "908", "EDI", "WRONG St.", "EH4 1DT")
	res, err := repro.Detect(merged, sigma, repro.DetectOptions{Strategy: repro.StrategyDirect})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range res.PerCFD {
		if len(v.ConstTuples) > 0 || len(v.VariableKeys) > 0 {
			fmt.Printf("CFD %d (%s) violated by groups %v\n", i, sigma[i], v.VariableKeys)
		}
	}
	fmt.Println()

	// Referential cleaning across the sources needs the OTHER Section 7
	// constraint class — a conditional INCLUSION dependency: UK records
	// must reference the UK postcode directory (US records are exempt).
	ukzips, err := repro.NewSchema("ukzips", repro.Attr("zip"))
	if err != nil {
		log.Fatal(err)
	}
	directory := repro.NewRelation(ukzips)
	_ = directory.Insert([]string{"EH4 1DT"})
	_ = directory.Insert([]string{"G1 1AA"})

	psi, err := repro.ParseCIND("cust[ZIP | CC=44] <= ukzips[zip]")
	if err != nil {
		log.Fatal(err)
	}
	ok, err = repro.SatisfiesCIND(merged, directory, psi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CIND %s holds: %v\n", psi, ok)

	insert("uk", "44", "131", "EDI", "High St.", "ZZ9 9ZZ") // postcode not in the directory
	vs, err := repro.FindCINDViolations(merged, directory, psi)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("CIND violated by tuple %d: %v\n", v.Tuple, merged.Tuples[v.Tuple])
	}
}
