// Monitoring: the incremental serving path. The batch detectors of
// Section 4 answer "does I satisfy Σ?" by scanning I; the Monitor answers
// the production follow-up — keep that answer current while I changes —
// in time proportional to the affected tuples, emitting the exact
// violation delta of every insert, delete and update. The second act
// batches changes: one ChangeSet through Monitor.Apply is validated as a
// unit, applied in one shard pass, and answered with its net delta. The
// third act queries the read path: the O(delta)-maintained violation
// view, whose version moves only when the violation set does (cfdserve's
// ETag), and per-key point lookups that skip the view entirely. The
// fourth act repairs on-stream: WatchRepairs attaches the live repair
// engine, which keeps one cost-ranked fix suggestion per live violation
// and turns accepted suggestions into an ordinary ChangeSet — the
// GET /v1/repairs and POST /v1/repairs/apply path of cfdserve. The
// fifth act streams discovery: a CFDMiner rides the monitor's group
// indexes and re-scores the mined constraint set after every change,
// reporting CFDs as they appear and retire. The sixth act makes the
// monitor durable: journaled to a write-ahead log (a ChangeSet is one
// record and one fsync), snapshotted, closed, and resumed from disk
// without touching the original instance. The seventh act replicates it:
// a hot-standby follower tails the durable node's WAL segments into its
// own directory, serves reads while refusing writes, and is promoted to
// a writable primary at the exact record boundary it has applied — the
// failover path cfdserve runs with -follow and POST /promote. The
// eighth act scrapes the observability surface: every monitor carries a metrics
// registry (apply-stage latencies, WAL timings, violation-delta
// counters) that renders in the Prometheus text format — cfdserve serves
// the same thing as GET /metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

func main() {
	// The cust schema and Figure 1 instance of the paper.
	schema, err := repro.NewSchema("cust",
		repro.Attr("CC"), repro.Attr("AC"), repro.Attr("PN"),
		repro.Attr("NM"), repro.Attr("STR"), repro.Attr("CT"), repro.Attr("ZIP"))
	if err != nil {
		log.Fatal(err)
	}
	cust := repro.NewRelation(schema)
	for _, t := range [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "MH", "07974"},
		{"01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"},
	} {
		if err := cust.Insert(t); err != nil {
			log.Fatal(err)
		}
	}

	// ϕ2 of Figure 2: phone determines address, with the 908→MH and
	// 212→NYC bindings.
	sigma, err := repro.ParseCFDSet(`
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
`)
	if err != nil {
		log.Fatal(err)
	}

	// Load the instance once; the monitor builds its persistent indexes
	// and the live violation set.
	m, err := repro.LoadMonitor(cust, sigma, repro.MonitorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d tuples; satisfied = %v\n\n", m.Len(), m.Satisfied())

	show := func(what string, d *repro.ViolationDelta) {
		fmt.Println(what)
		for _, c := range d.Added {
			fmt.Printf("  + %s\n", c)
		}
		for _, c := range d.Removed {
			fmt.Printf("  - %s\n", c)
		}
		if d.Empty() {
			fmt.Println("  (no violation change)")
		}
		fmt.Printf("  satisfied = %v, live violations = %d\n\n", m.Satisfied(), m.ViolationCount())
	}

	// A dirty insert: Eve shares Mike's phone number but reports NYC —
	// that breaks the 908→MH constant binding AND makes the phone group
	// disagree on CT. One operation, two new violations, zero rescans.
	key, delta, err := m.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("insert Eve (key %d):", key), delta)

	// Fixing her city retires both violations — the delta is the proof.
	delta, err = m.Update(key, "CT", "MH")
	if err != nil {
		log.Fatal(err)
	}
	show("update Eve's CT to MH:", delta)

	// Deleting a tuple from a clean group changes nothing.
	delta, err = m.Delete(key)
	if err != nil {
		log.Fatal(err)
	}
	show("delete Eve:", delta)

	// The live set can be snapshotted at any time; here it is empty, and
	// the batch detector agrees on the materialized instance.
	res, err := repro.Detect(m.Snapshot(), sigma, repro.DetectOptions{Strategy: repro.StrategyDirect})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch detector on the snapshot agrees: clean = %v\n\n", res.Clean())

	// --- batched ingest ---
	//
	// Changes that arrive together should land together: a ChangeSet is
	// an ordered op vector applied by ONE Monitor.Apply — validated as a
	// unit (an invalid op rejects all of it), one pass per lock shard,
	// and in durable mode one WAL record and one fsync. The delta is the
	// batch's net effect across all its ops.
	var cs repro.ChangeSet
	cs.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	evePos := len(cs.Ops) - 1
	cs.Update(0, "NM", "Michael") // no CFD mentions NM: no delta
	batchDelta, err := m.Apply(&cs)
	if err != nil {
		log.Fatal(err)
	}
	eveKey := cs.Ops[evePos].Key // inserted keys come back in the ops
	show(fmt.Sprintf("batch of %d ops (Eve's key %d):", cs.Len(), eveKey), batchDelta)
	// Heal her city in a second batch referencing the returned key.
	healDelta, err := m.Apply((&repro.ChangeSet{}).Update(eveKey, "CT", "MH"))
	if err != nil {
		log.Fatal(err)
	}
	show("healing batch:", healDelta)

	// --- read queries: the violation view ---
	//
	// Serving reads never rescans: Violations() answers from an
	// O(delta)-maintained view — an atomic pointer load whose version
	// advances only when the violation set actually changes. That
	// version is the ETag cfdserve hands to GET /violations pollers: an
	// unchanged version is a guaranteed 304.
	fmt.Printf("view version %d: %d live violation(s)\n", m.ViewVersion(), m.Violations().Total())
	// A write no CFD cares about leaves the version alone...
	if _, err := m.Update(eveKey, "NM", "Eva"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a CFD-irrelevant update: version %d — pollers keep their 304\n", m.ViewVersion())
	// ...while a dirty write moves it, and only the CFDs the delta
	// touched are re-canonicalized on the next read.
	if _, err := m.Update(eveKey, "CT", "NYC"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after a dirty update: version %d, %d violation(s)\n", m.ViewVersion(), m.Violations().Total())
	// Point lookups skip the view entirely and probe the per-key
	// stores — the GET /violations?key=N path.
	per, ok := m.ViolationsFor(eveKey)
	fmt.Printf("ViolationsFor(Eve, key %d): exists = %v, %d violation(s) touch her\n\n", eveKey, ok, per.Total())

	// --- live repair ---
	//
	// Eve is still dirty — and the monitor can say how to fix her.
	// WatchRepairs attaches the live repair engine: one cost-ranked
	// suggestion per live violation (an RHS edit for a broken constant
	// binding, a value merge or LHS break for a disagreeing group),
	// re-planned only for the violations each batch touches. Accepted
	// suggestion IDs become an ordinary ChangeSet through Plan, so the
	// fix takes the same Apply path as any other write — this is what
	// cfdserve serves as GET /v1/repairs and POST /v1/repairs/apply.
	sg, err := repro.WatchRepairs(m, repro.SuggestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sugs := sg.Suggestions()
	fmt.Printf("live repair: %d suggestion(s), cheapest first:\n", len(sugs))
	ids := make([]string, 0, len(sugs))
	for _, s := range sugs {
		fmt.Printf("  [%s] %s, cost %.0f: %s\n", s.ID, s.Kind, s.Cost, s.Reason)
		ids = append(ids, s.ID)
	}
	planCS, cellEdits, err := sg.Plan(ids)
	if err != nil {
		log.Fatal(err)
	}
	for _, ce := range cellEdits {
		fmt.Printf("  plan: key %d %s: %q -> %q\n", ce.Key, ce.Attr, ce.From, ce.To)
	}
	repairDelta, err := m.Apply(planCS)
	if err != nil {
		log.Fatal(err)
	}
	show("applying the planned repair:", repairDelta)
	sg.Refresh()
	fmt.Printf("suggestions after the fix: %d — discovery below sees the clean instance\n\n", len(sg.Suggestions()))
	sg.Close()

	// --- streaming discovery ---
	//
	// The same monitor can mine its own constraints: WatchDiscovery
	// attaches a miner to the live group indexes, and each Refresh
	// re-scores only the groups the interleaving changes touched —
	// never the whole instance.
	miner, err := repro.WatchDiscovery(m, repro.DiscoveryConfig{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		log.Fatal(err)
	}
	mined, err := miner.Mined()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d CFDs hold on the current instance, e.g.:\n", len(mined))
	for i, d := range mined {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", d.CFD)
	}
	// A tuple that contradicts phone→city: the mined FD degrades (or
	// retires) and Refresh says so — then returns once the data heals.
	breakKey, _, err := m.Insert(repro.Tuple{"01", "908", "1111111", "Sam", "Tree Ave.", "LA", "07974"})
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range miner.Refresh() {
		fmt.Printf("  mine %s\n", ch)
	}
	if _, err := m.Delete(breakKey); err != nil {
		log.Fatal(err)
	}
	for _, ch := range miner.Refresh() {
		fmt.Printf("  mine %s\n", ch)
	}
	miner.Close()
	fmt.Println()

	// --- restart and resume ---
	//
	// A production node must not re-parse and re-index its CSV on every
	// boot. With Durable set, the monitor journals each mutation to a
	// write-ahead log in the directory before applying it, and recovery
	// is snapshot + log-tail replay (see "Durability guarantees" in the
	// package docs; cfdserve -wal-dir is this exact path).
	dir, err := os.MkdirTemp("", "monitoring-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	durable, err := repro.LoadMonitor(cust, sigma, repro.MonitorOptions{Durable: dir})
	if err != nil {
		log.Fatal(err)
	}
	// The first boot seeds from cust and snapshots; the CSV-equivalent
	// is never needed again. A dirty insert lands in the log before it
	// lands in the indexes.
	if _, _, err := durable.Insert(repro.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}); err != nil {
		log.Fatal(err)
	}
	stats := durable.JournalStats()
	fmt.Printf("durable node: generation %d, %d journaled record(s), %d live violation(s)\n",
		stats.Generation, stats.SegmentRecords, durable.ViolationCount())
	if err := durable.Close(); err != nil { // flush; a crash here loses nothing fsynced
		log.Fatal(err)
	}

	// "Restart": same directory, no instance. The journaled state wins —
	// the relation, indexes and live violations come back from disk.
	resumed, err := repro.NewMonitor(schema, sigma, repro.MonitorOptions{Durable: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	fmt.Printf("resumed from %s: recovered = %v, %d tuples, %d live violation(s)\n",
		dir, resumed.Recovered(), resumed.Len(), resumed.ViolationCount())

	// ForceSnapshot folds the log into a fresh generation — what cfdserve
	// does on POST /snapshot and on every graceful shutdown.
	if err := resumed.ForceSnapshot(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after snapshot: generation %d, %d record(s) in the new segment\n\n",
		resumed.JournalStats().Generation, resumed.JournalStats().SegmentRecords)

	// --- replication and failover ---
	//
	// One durable node is still one machine. A follower tails the
	// primary's WAL — snapshot first, then record-aligned segment chunks
	// — into its OWN directory, applying each record through the same
	// replay path recovery uses. In production the chunks travel over
	// cfdserve's GET /wal/snapshot and /wal/stream; in-process the same
	// protocol runs through NewMonitorChunkSource.
	ctx := context.Background()
	fdir, err := os.MkdirTemp("", "monitoring-follower-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(fdir)
	follower, err := repro.FollowMonitor(ctx, sigma,
		repro.MonitorOptions{Durable: fdir},
		repro.FollowOptions{Source: repro.NewMonitorChunkSource(resumed)})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := follower.Sync(ctx); err != nil { // one catch-up pass
		log.Fatal(err)
	}
	standby := follower.Monitor()
	fmt.Printf("follower synced: %d tuples, %d live violation(s), read-only = %v\n",
		standby.Len(), standby.ViolationCount(), standby.ReadOnly())

	// Writes keep landing on the primary and ship on the next Sync; the
	// standby's own mutation surface is gated.
	if _, _, err := resumed.Insert(repro.Tuple{"01", "212", "2222222", "Amy", "Elm Str.", "LA", "01202"}); err != nil {
		log.Fatal(err)
	}
	if _, err := follower.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	st := follower.Status()
	fmt.Printf("after one more primary write: follower at generation %d offset %d, lag %d bytes\n",
		st.Seq, st.Offset, st.LagBytes)
	if _, _, err := standby.Insert(repro.Tuple{"01", "908", "1111111", "Zoe", "Tree Ave.", "MH", "07974"}); err != nil {
		fmt.Printf("write on the standby refused: %v\n", err)
	}

	// The primary dies; promotion flips the standby into a writable
	// primary at the record boundary it has applied — no re-seed, no
	// replay from scratch. cfdserve does this on POST /promote (or
	// automatically with -promote-after).
	if err := resumed.Close(); err != nil {
		log.Fatal(err)
	}
	if err := follower.Promote(); err != nil {
		log.Fatal(err)
	}
	_, _, err = standby.Insert(repro.Tuple{"01", "908", "1111111", "Zoe", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("promoted: read-only = %v, %d tuples, %d live violation(s) after a failover write\n",
		standby.ReadOnly(), standby.Len(), standby.ViolationCount())

	// Every monitor carries a metrics registry (a private one unless
	// MonitorOptions.Metrics shares the process-global DefaultMetrics).
	// The promoted standby's scrape below shows the whole serving path
	// it lived through — replica ship counters included — in the same
	// Prometheus text format cfdserve serves on GET /metrics.
	var scrape strings.Builder
	if err := standby.Metrics().WritePrometheus(&scrape); err != nil {
		log.Fatal(err)
	}
	families := strings.Count(scrape.String(), "# TYPE ")
	fmt.Printf("\nmetrics scrape: %d families\n", families)
	for _, line := range strings.Split(scrape.String(), "\n") {
		if strings.HasPrefix(line, "cfd_apply_ops_total") ||
			strings.HasPrefix(line, "cfd_replica_records_total") ||
			strings.HasPrefix(line, "cfd_wal_records_total") {
			fmt.Println("  " + line)
		}
	}
	if err := standby.Close(); err != nil {
		log.Fatal(err)
	}
}
