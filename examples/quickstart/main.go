// Quickstart: the paper's running example end to end — the cust relation
// of Figure 1, the CFDs of Figure 2, detection of the Example 2.2 /
// Example 4.1 violations, and a look at the generated SQL (Figure 5).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// The cust schema: country code, area code, phone, name, street,
	// city, zip (Example 1.1).
	schema, err := repro.NewSchema("cust",
		repro.Attr("CC"), repro.Attr("AC"), repro.Attr("PN"),
		repro.Attr("NM"), repro.Attr("STR"), repro.Attr("CT"), repro.Attr("ZIP"))
	if err != nil {
		log.Fatal(err)
	}
	cust := repro.NewRelation(schema)
	for _, t := range [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"}, // t1
		{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"}, // t2
		{"01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"},   // t3
		{"01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404"},   // t4
		{"01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"},   // t5
		{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"}, // t6
	} {
		if err := cust.Insert(t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("The cust instance (Figure 1):")
	fmt.Println(cust)

	// The CFDs of Figure 2, in the text notation: ϕ1 refines nothing (the
	// UK zip→street rule), ϕ2 refines the FD f1 with the 908→MH and
	// 212→NYC bindings, ϕ3 refines f2.
	sigma, err := repro.ParseCFDSet(`
# ϕ1: in the UK, zip determines street
[CC=44, ZIP] -> [STR]

# ϕ2: phone determines address; 908 numbers are in MH, 212 numbers in NYC
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]

# ϕ3: country+area code determine city
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
[CC=44, AC=141] -> [CT=GLA]
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded %d CFDs:\n%s\n", len(sigma), repro.FormatCFDSet(sigma))

	// Reasoning first (Section 3): is the set consistent?
	ok, _, err := repro.Consistent(schema, sigma)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ consistent: %v\n\n", ok)

	// Detection (Section 4): the pure-Go detector.
	res, err := repro.Detect(cust, sigma, repro.DetectOptions{Strategy: repro.StrategyDirect})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range res.PerCFD {
		fmt.Printf("ϕ%d: %d constant-violating tuples %v, %d conflicting groups\n",
			i+1, len(v.ConstTuples), v.ConstTuples, len(v.VariableKeys))
		for _, key := range v.VariableKeys {
			fmt.Printf("     group X = (%s)\n", strings.Join(key, ", "))
		}
	}
	fmt.Println()

	// The same through the SQL technique (Figure 5): print QC for ϕ2 and
	// run all CFDs through the embedded engine via database/sql.
	qc, err := repro.GenerateQC(sigma[1], "cust", "T2", repro.FormCNF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated QC for ϕ2 (Figure 5):\n%s\n\n", qc)

	sqlRes, err := repro.Detect(cust, sigma, repro.DetectOptions{
		Strategy: repro.StrategySQLMerged, Form: repro.FormCNF, ViaDriver: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Merged SQL detection agrees with the direct detector: %v\n", res.Equal(sqlRes))
}
