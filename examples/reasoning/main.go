// Reasoning: the worked examples of Section 3 — consistency of CFD sets
// (Example 3.1, including the finite-domain subtlety), implication
// (Example 3.2) and minimal covers (Example 3.3).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// ---- Example 3.1: consistency -------------------------------------
	schema, err := repro.NewSchema("R",
		repro.Attr("A"), repro.Attr("B"), repro.Attr("C"))
	if err != nil {
		log.Fatal(err)
	}

	// ψ1 = ([A] → [B], {(_, b), (_, c)}): no nonempty instance can have
	// B = b and B = c at once.
	psi1, err := repro.ParseCFDSet(`
[A] -> [B=b]
[A] -> [B=c]
`)
	if err != nil {
		log.Fatal(err)
	}
	ok, _, err := repro.Consistent(schema, psi1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 3.1, ψ1 consistent: %v (expected false)\n", ok)

	// The finite-domain case: over dom(A) = bool, ψ2 and ψ3 jointly force
	// A to flip — inconsistent; over an unbounded domain they are fine.
	schemaBool, err := repro.NewSchema("R",
		repro.Attribute{Name: "A", Domain: repro.Enum("bool", "true", "false")},
		repro.Attr("B"))
	if err != nil {
		log.Fatal(err)
	}
	psi23, err := repro.ParseCFDSet(`
[A=true] -> [B=b1]
[A=false] -> [B=b2]
[B=b1] -> [A=false]
[B=b2] -> [A=true]
`)
	if err != nil {
		log.Fatal(err)
	}
	ok, _, err = repro.Consistent(schemaBool, psi23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 3.1, {ψ2, ψ3} over bool consistent: %v (expected false)\n", ok)

	schemaInf, err := repro.NewSchema("R", repro.Attr("A"), repro.Attr("B"))
	if err != nil {
		log.Fatal(err)
	}
	ok, witness, err := repro.Consistent(schemaInf, psi23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same set over an unbounded dom(A): %v, witness %v\n\n", ok, witness)

	// ---- Example 3.2: implication -------------------------------------
	sigma, err := repro.ParseCFDSet(`
[A] -> [B=b]
[B] -> [C=c]
`)
	if err != nil {
		log.Fatal(err)
	}
	phi, err := repro.ParseCFD("[A=a] -> [C]")
	if err != nil {
		log.Fatal(err)
	}
	implied, err := repro.Implies(schema, sigma, phi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 3.2: {ψ1, ψ2} ⊨ (A → C, (a, _)): %v (expected true)\n", implied)

	notImplied, err := repro.ParseCFD("[C] -> [A]")
	if err != nil {
		log.Fatal(err)
	}
	implied, err = repro.Implies(schema, sigma, notImplied)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("               {ψ1, ψ2} ⊨ (C → A, (_, _)): %v (expected false)\n\n", implied)

	// ---- Example 3.3: minimal cover -----------------------------------
	// Σ = {ψ1, ψ2, ϕ}; the cover drops ϕ (implied) and the redundant LHS
	// attributes, leaving (∅ → B, (b)) and (∅ → C, (c)).
	full := append(sigma, phi)
	cover, err := repro.MinimalCover(schema, full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 3.3: minimal cover of {ψ1, ψ2, ϕ} (%d constraints):\n", len(cover))
	for _, s := range cover {
		fmt.Printf("  %s\n", s)
	}
	equal, err := repro.Equivalent(schema, full, repro.CoverToCFDs(cover))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover ≡ Σ: %v\n", equal)
}
