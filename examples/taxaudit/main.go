// Tax audit: the paper's Section 5/6 scenario end to end — generate a
// noisy tax-records instance, detect inconsistencies with the SQL
// technique, repair them with the Section 6 heuristic, and measure how
// much of the injected damage was undone.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 10K tax records, 4% of them corrupted on a CFD right-hand side
	// (a wrong state for a zip, a wrong tax rate for a bracket, ...).
	data := repro.GenerateTax(repro.TaxConfig{Size: 10000, Noise: 0.04, Seed: 42})
	fmt.Printf("generated %d records, %d cells corrupted\n", data.Dirty.Len(), len(data.Changes))

	// The constraints: zip→state, zip+city→state, state+salary→tax rate,
	// state+marital→exemptions, state+dependents→exemption, area→state.
	sigma := repro.SemanticTaxCFDs()
	fmt.Printf("checking %d CFDs:\n%s\n", len(sigma), repro.FormatCFDSet(sigma))

	// Detect with the paper's SQL technique (DNF — the fast form per
	// Figure 9(a)), through database/sql.
	res, err := repro.Detect(data.Dirty, sigma, repro.DetectOptions{
		Strategy: repro.StrategySQLPerCFD, Form: repro.FormDNF, ViaDriver: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	totalGroups := 0
	for i, v := range res.PerCFD {
		if len(v.VariableKeys) > 0 {
			fmt.Printf("CFD %d: %d conflicting groups\n", i, len(v.VariableKeys))
			totalGroups += len(v.VariableKeys)
		}
	}
	fmt.Printf("total conflicting groups: %d\n\n", totalGroups)

	// Repair (Section 6): cost-based value modification. ZIP and SA are
	// weighted up — identifiers are more trustworthy than derived fields.
	weights := &repro.RepairCostModel{Weight: func(row int, attr string) float64 {
		switch attr {
		case "ZIP", "SA":
			return 5
		default:
			return 1
		}
	}}
	rep, err := repro.Repair(data.Dirty, sigma, repro.RepairOptions{Cost: weights})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d changes over %d passes, cost %.0f, certified I′ ⊨ Σ: %v\n",
		len(rep.Changes), rep.Passes, rep.Cost, rep.Satisfied)

	// Score against the generator's ground truth.
	restored := 0
	for _, ch := range data.Changes {
		col := data.Dirty.Schema.MustIndex(ch.Attr)
		if rep.Repaired.Tuples[ch.Row][col] == ch.From {
			restored++
		}
	}
	fmt.Printf("restored %d of %d injected errors (%.0f%%)\n",
		restored, len(data.Changes), 100*float64(restored)/float64(len(data.Changes)))

	// Certify with an independent detection pass.
	after, err := repro.Detect(rep.Repaired, sigma, repro.DetectOptions{Strategy: repro.StrategyDirect})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations after repair: %v\n", !after.Clean())
}
