// Package cind implements conditional inclusion dependencies — the second
// constraint class the paper's Section 7 announces as ongoing work ("we
// are studying data cleaning based on both CFDs and conditional inclusion
// dependencies"), later published as Bravo, Fan & Ma (VLDB 2007).
//
// A CIND ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp) conditions an inclusion
// dependency on pattern bindings: for every tuple t1 of I1 and pattern
// tuple tp ∈ Tp, if t1[Xp] ≍ tp[Xp] then some tuple t2 of I2 has
// t2[Y] = t1[X] and t2[Yp] ≍ tp[Yp]. The classic example: every order of
// type "book" must reference a title in the book catalog —
//
//	order[title; type=book] <= book[title; ]
//
// Detection is the semijoin analogue of the paper's QC query: one pass
// over I1 with a hash index on I2.
package cind

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// Side is one half of the embedded inclusion R[X; Xp]: the relation name,
// the inclusion columns X and the pattern columns Xp.
type Side struct {
	Relation string
	Cols     []string
	PatCols  []string
}

// PatternRow is one pattern tuple over Xp ∪ Yp.
type PatternRow struct {
	XP []core.Pattern // aligned with LHS.PatCols
	YP []core.Pattern // aligned with RHS.PatCols
}

// Clone deep-copies the row.
func (r PatternRow) Clone() PatternRow {
	return PatternRow{XP: append([]core.Pattern(nil), r.XP...), YP: append([]core.Pattern(nil), r.YP...)}
}

// CIND is a conditional inclusion dependency (R1[X; Xp] ⊆ R2[Y; Yp], Tp).
type CIND struct {
	LHS     Side
	RHS     Side
	Tableau []PatternRow
}

// NewCIND builds and validates a CIND.
func NewCIND(lhs, rhs Side, rows ...PatternRow) (*CIND, error) {
	c := &CIND{LHS: lhs, RHS: rhs}
	for _, r := range rows {
		c.Tableau = append(c.Tableau, r.Clone())
	}
	if err := c.check(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCIND is NewCIND but panics on error.
func MustCIND(lhs, rhs Side, rows ...PatternRow) *CIND {
	c, err := NewCIND(lhs, rhs, rows...)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *CIND) check() error {
	if c.LHS.Relation == "" || c.RHS.Relation == "" {
		return fmt.Errorf("cind: both sides need relation names")
	}
	if len(c.LHS.Cols) == 0 {
		return fmt.Errorf("cind: empty inclusion column list")
	}
	if len(c.LHS.Cols) != len(c.RHS.Cols) {
		return fmt.Errorf("cind: inclusion arity mismatch: %d vs %d", len(c.LHS.Cols), len(c.RHS.Cols))
	}
	if err := noDuplicates(append(append([]string(nil), c.LHS.Cols...), c.LHS.PatCols...)); err != nil {
		return fmt.Errorf("cind: LHS: %w", err)
	}
	if err := noDuplicates(append(append([]string(nil), c.RHS.Cols...), c.RHS.PatCols...)); err != nil {
		return fmt.Errorf("cind: RHS: %w", err)
	}
	for i, r := range c.Tableau {
		if len(r.XP) != len(c.LHS.PatCols) || len(r.YP) != len(c.RHS.PatCols) {
			return fmt.Errorf("cind: tableau row %d has arity (%d,%d), want (%d,%d)",
				i, len(r.XP), len(r.YP), len(c.LHS.PatCols), len(c.RHS.PatCols))
		}
		for _, p := range append(append([]core.Pattern(nil), r.XP...), r.YP...) {
			if p.Kind == core.DontCare {
				return fmt.Errorf("cind: tableau row %d contains '@'", i)
			}
		}
	}
	return nil
}

func noDuplicates(names []string) error {
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" {
			return fmt.Errorf("empty attribute name")
		}
		if seen[n] {
			return fmt.Errorf("duplicate attribute %q", n)
		}
		seen[n] = true
	}
	return nil
}

// IsStandardIND reports whether the CIND is a plain inclusion dependency:
// no pattern columns, or a single all-'_' pattern row.
func (c *CIND) IsStandardIND() bool {
	if len(c.LHS.PatCols) == 0 && len(c.RHS.PatCols) == 0 {
		return true
	}
	if len(c.Tableau) != 1 {
		return false
	}
	for _, p := range append(append([]core.Pattern(nil), c.Tableau[0].XP...), c.Tableau[0].YP...) {
		if p.Kind != core.Wildcard {
			return false
		}
	}
	return true
}

// String renders the CIND in the text notation, one line per pattern row:
// "R1[A, B | C=01] <= R2[E, F | G=x]".
func (c *CIND) String() string {
	if len(c.Tableau) == 0 {
		return c.formatRow(PatternRow{XP: wildcards(len(c.LHS.PatCols)), YP: wildcards(len(c.RHS.PatCols))})
	}
	lines := make([]string, 0, len(c.Tableau))
	for _, r := range c.Tableau {
		lines = append(lines, c.formatRow(r))
	}
	return strings.Join(lines, "\n")
}

func wildcards(n int) []core.Pattern {
	out := make([]core.Pattern, n)
	for i := range out {
		out[i] = core.W()
	}
	return out
}

func (c *CIND) formatRow(r PatternRow) string {
	return fmt.Sprintf("%s <= %s",
		formatSide(c.LHS, r.XP), formatSide(c.RHS, r.YP))
}

func formatSide(s Side, pats []core.Pattern) string {
	var b strings.Builder
	b.WriteString(s.Relation)
	b.WriteByte('[')
	b.WriteString(strings.Join(s.Cols, ", "))
	if len(s.PatCols) > 0 {
		b.WriteString(" | ")
		parts := make([]string, len(s.PatCols))
		for i, a := range s.PatCols {
			if pats[i].Kind == core.Wildcard {
				parts[i] = a
			} else {
				parts[i] = a + "=" + pats[i].String()
			}
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteByte(']')
	return b.String()
}

// Validate checks both sides against their schemas.
func (c *CIND) Validate(lhs, rhs *relation.Schema) error {
	if err := c.check(); err != nil {
		return err
	}
	for _, a := range append(append([]string(nil), c.LHS.Cols...), c.LHS.PatCols...) {
		if _, ok := lhs.Index(a); !ok {
			return fmt.Errorf("cind: attribute %q not in schema %q", a, lhs.Name)
		}
	}
	for _, a := range append(append([]string(nil), c.RHS.Cols...), c.RHS.PatCols...) {
		if _, ok := rhs.Index(a); !ok {
			return fmt.Errorf("cind: attribute %q not in schema %q", a, rhs.Name)
		}
	}
	return nil
}

// Violation is one failing LHS tuple: no RHS tuple provides the required
// inclusion under the pattern row.
type Violation struct {
	Row   int // tableau row index
	Tuple int // LHS data row id
}

// FindViolations returns every violation of ψ for instances I1 (of the
// LHS relation) and I2 (of the RHS relation), in deterministic order.
func FindViolations(i1, i2 *relation.Relation, c *CIND) ([]Violation, error) {
	if err := c.Validate(i1.Schema, i2.Schema); err != nil {
		return nil, err
	}
	xIdx, err := i1.Schema.Indexes(c.LHS.Cols)
	if err != nil {
		return nil, err
	}
	xpIdx, err := i1.Schema.Indexes(c.LHS.PatCols)
	if err != nil {
		return nil, err
	}
	ypIdx, err := i2.Schema.Indexes(c.RHS.PatCols)
	if err != nil {
		return nil, err
	}
	// Hash I2 on the inclusion columns Y once; pattern checks on Yp are
	// per-candidate (Yp lists are short).
	ix, err := relation.BuildIndex(i2, c.RHS.Cols)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for ri, row := range c.Tableau {
		for t1 := range i1.Tuples {
			if !core.MatchCells(i1.Project(t1, xpIdx), row.XP) {
				continue
			}
			found := false
			for _, t2 := range ix.Lookup(i1.Project(t1, xIdx)) {
				if core.MatchCells(i2.Project(t2, ypIdx), row.YP) {
					found = true
					break
				}
			}
			if !found {
				out = append(out, Violation{Row: ri, Tuple: t1})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Row != out[b].Row {
			return out[a].Row < out[b].Row
		}
		return out[a].Tuple < out[b].Tuple
	})
	return out, nil
}

// Satisfies reports (I1, I2) ⊨ ψ.
func Satisfies(i1, i2 *relation.Relation, c *CIND) (bool, error) {
	vs, err := FindViolations(i1, i2, c)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}
