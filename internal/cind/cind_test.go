package cind

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
)

// The running example of the CIND literature: orders reference catalogs
// conditionally on their type.
func orderBookFixture(t *testing.T) (*relation.Relation, *relation.Relation) {
	t.Helper()
	orders := relation.New(relation.MustSchema("order",
		relation.Attr("title"), relation.Attr("type"), relation.Attr("price")))
	orders.MustInsert("Harry Potter", "book", "17.99")
	orders.MustInsert("Snow White", "CD", "7.99")
	orders.MustInsert("Unknown Novel", "book", "8.99") // not in the catalog
	books := relation.New(relation.MustSchema("book",
		relation.Attr("title"), relation.Attr("isbn")))
	books.MustInsert("Harry Potter", "1111")
	books.MustInsert("War and Peace", "2222")
	return orders, books
}

func bookCIND() *CIND {
	return MustCIND(
		Side{Relation: "order", Cols: []string{"title"}, PatCols: []string{"type"}},
		Side{Relation: "book", Cols: []string{"title"}},
		PatternRow{XP: []core.Pattern{core.C("book")}},
	)
}

func TestBookOrderExample(t *testing.T) {
	orders, books := orderBookFixture(t)
	psi := bookCIND()
	vs, err := FindViolations(orders, books, psi)
	if err != nil {
		t.Fatal(err)
	}
	// Only the "Unknown Novel" book order violates; the CD order is not
	// constrained (pattern type=book does not match it).
	if want := []Violation{{Row: 0, Tuple: 2}}; !reflect.DeepEqual(vs, want) {
		t.Errorf("violations = %v, want %v", vs, want)
	}
	ok, err := Satisfies(orders, books, psi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("instance must violate the CIND")
	}
	// Adding the missing title repairs it.
	books.MustInsert("Unknown Novel", "3333")
	ok, err = Satisfies(orders, books, psi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("after inserting the catalog row the CIND must hold")
	}
}

func TestStandardINDAsCIND(t *testing.T) {
	orders, books := orderBookFixture(t)
	ind := MustCIND(
		Side{Relation: "order", Cols: []string{"title"}},
		Side{Relation: "book", Cols: []string{"title"}},
		PatternRow{},
	)
	if !ind.IsStandardIND() {
		t.Error("no pattern columns means a plain IND")
	}
	vs, err := FindViolations(orders, books, ind)
	if err != nil {
		t.Fatal(err)
	}
	// Unconditionally, both the CD order and the unknown novel violate.
	if len(vs) != 2 {
		t.Errorf("violations = %v, want 2", vs)
	}
	if bookCIND().IsStandardIND() {
		t.Error("a constant-pattern CIND is not a plain IND")
	}
}

func TestRHSPatternColumns(t *testing.T) {
	orders, books := orderBookFixture(t)
	// Require the catalog row to carry a specific isbn prefix value: with
	// Yp = isbn bound to a constant, only exact matches count.
	psi := MustCIND(
		Side{Relation: "order", Cols: []string{"title"}, PatCols: []string{"type"}},
		Side{Relation: "book", Cols: []string{"title"}, PatCols: []string{"isbn"}},
		PatternRow{XP: []core.Pattern{core.C("book")}, YP: []core.Pattern{core.C("9999")}},
	)
	vs, err := FindViolations(orders, books, psi)
	if err != nil {
		t.Fatal(err)
	}
	// No book row has isbn 9999, so every type=book order violates.
	if len(vs) != 2 {
		t.Errorf("violations = %v, want both book orders", vs)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCIND(
		Side{Relation: "a", Cols: []string{"x", "y"}},
		Side{Relation: "b", Cols: []string{"z"}},
	); err == nil {
		t.Error("inclusion arity mismatch must be rejected")
	}
	if _, err := NewCIND(
		Side{Relation: "a", Cols: []string{"x", "x"}},
		Side{Relation: "b", Cols: []string{"z", "w"}},
	); err == nil {
		t.Error("duplicate columns must be rejected")
	}
	if _, err := NewCIND(
		Side{Cols: []string{"x"}},
		Side{Relation: "b", Cols: []string{"z"}},
	); err == nil {
		t.Error("missing relation name must be rejected")
	}
	orders, books := orderBookFixture(t)
	bad := MustCIND(
		Side{Relation: "order", Cols: []string{"NOPE"}},
		Side{Relation: "book", Cols: []string{"title"}},
		PatternRow{},
	)
	if _, err := FindViolations(orders, books, bad); err == nil {
		t.Error("unknown attribute must be rejected")
	}
}

func TestParseCIND(t *testing.T) {
	c, err := ParseCIND("order[title | type=book] <= book[title]")
	if err != nil {
		t.Fatal(err)
	}
	want := bookCIND()
	if c.String() != want.String() {
		t.Errorf("parsed %q, want %q", c, want)
	}
	// Round trip.
	back, err := ParseCIND(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != c.String() {
		t.Errorf("round trip: %q != %q", back, c)
	}
}

func TestParseCINDQuotedAndWildcards(t *testing.T) {
	c, err := ParseCIND("r[A, B | C='New York', D] <= s[E, F | G]")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LHS.Cols) != 2 || len(c.LHS.PatCols) != 2 || len(c.RHS.PatCols) != 1 {
		t.Fatalf("shape wrong: %+v", c)
	}
	row := c.Tableau[0]
	if row.XP[0] != core.C("New York") || row.XP[1] != (core.W()) || row.YP[0] != (core.W()) {
		t.Errorf("patterns = %v / %v", row.XP, row.YP)
	}
}

func TestParseCINDErrors(t *testing.T) {
	bad := []string{
		"",
		"order[title]",
		"order[title] < book[title]",
		"order title <= book[title]",
		"[title] <= book[title]",
		"order[title | ='x'] <= book[title]",
	}
	for _, line := range bad {
		if _, err := ParseCIND(line); err == nil {
			t.Errorf("ParseCIND(%q) should fail", line)
		}
	}
}

func TestParseSetMerges(t *testing.T) {
	text := `
# orders reference catalogs by type
order[title | type=book] <= book[title]
order[title | type=CD]   <= album[title]
order[title | type=book] <= book[title]
`
	set, err := ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("got %d CINDs, want 2 (book rows merged)", len(set))
	}
	if len(set[0].Tableau) != 2 {
		t.Errorf("book CIND has %d rows, want 2", len(set[0].Tableau))
	}
	round, err := ParseSet(FormatSet(set))
	if err != nil {
		t.Fatal(err)
	}
	if FormatSet(round) != FormatSet(set) {
		t.Error("FormatSet/ParseSet round trip failed")
	}
}

// TestTaxZipDirectory: the data-cleaning use over the Section 5 workload —
// every US tax record's zip must exist in the zip directory.
func TestTaxZipDirectory(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 2000, Noise: 0, Seed: 5})
	zipdir := gen.ZipDirectory()
	psi, err := ParseCIND("taxrecords[ZIP, ST | CC=01] <= zipdir[zip, state]")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Satisfies(data.Clean, zipdir, psi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("clean tax data must satisfy the zip-directory CIND")
	}
	// Corrupt one state: the (zip, state) pair leaves the directory.
	data.Clean.Tuples[7][data.Clean.Schema.MustIndex("ST")] = "??"
	vs, err := FindViolations(data.Clean, zipdir, psi)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Tuple != 7 {
		t.Errorf("violations = %v, want tuple 7", vs)
	}
}
