package cind

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// The text notation for CINDs mirrors the CFD notation:
//
//	order[title | type=book] <= book[title | ]
//	cust[ZIP | CC=44] <= ukzips[zip]
//
// Inclusion columns come first; an optional " | " separates the pattern
// columns, written like CFD items (bare name = '_', name=value = constant,
// quoted values as in CFDs). Lines starting with '#' are comments;
// consecutive rows over the same embedded inclusion merge into one
// tableau.

// ParseCIND parses a single line of the notation into a one-row CIND.
func ParseCIND(line string) (*CIND, error) {
	parts := strings.SplitN(line, "<=", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("cind: parsing %q: expected 'lhs <= rhs'", line)
	}
	lhs, xp, err := parseSide(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("cind: parsing %q: %w", line, err)
	}
	rhs, yp, err := parseSide(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, fmt.Errorf("cind: parsing %q: %w", line, err)
	}
	return NewCIND(lhs, rhs, PatternRow{XP: xp, YP: yp})
}

// ParseSet parses a multi-line CIND file.
func ParseSet(text string) ([]*CIND, error) {
	var singles []*CIND
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := ParseCIND(line)
		if err != nil {
			return nil, fmt.Errorf("cind: line %d: %w", i+1, err)
		}
		singles = append(singles, c)
	}
	return MergeSameInclusion(singles), nil
}

// FormatSet renders a CIND set in the notation ParseSet accepts.
func FormatSet(cinds []*CIND) string {
	var b strings.Builder
	for i, c := range cinds {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.String())
	}
	b.WriteByte('\n')
	return b.String()
}

// MergeSameInclusion groups CINDs sharing the same embedded inclusion
// (relations, columns and pattern columns) into multi-row tableaux.
func MergeSameInclusion(cinds []*CIND) []*CIND {
	type key struct{ l, r string }
	sideKey := func(s Side) string {
		return s.Relation + "\x00" + strings.Join(s.Cols, "\x00") + "\x01" + strings.Join(s.PatCols, "\x00")
	}
	order := make([]key, 0, len(cinds))
	groups := make(map[key]*CIND)
	for _, c := range cinds {
		k := key{sideKey(c.LHS), sideKey(c.RHS)}
		if g, ok := groups[k]; ok {
			for _, r := range c.Tableau {
				g.Tableau = append(g.Tableau, r.Clone())
			}
			continue
		}
		cp := *c
		cp.Tableau = nil
		for _, r := range c.Tableau {
			cp.Tableau = append(cp.Tableau, r.Clone())
		}
		groups[k] = &cp
		order = append(order, k)
	}
	out := make([]*CIND, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// parseSide parses "rel[A, B | C=01, D]" into the Side and its patterns.
func parseSide(s string) (Side, []core.Pattern, error) {
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return Side{}, nil, fmt.Errorf("expected rel[...], got %q", s)
	}
	side := Side{Relation: strings.TrimSpace(s[:open])}
	if side.Relation == "" {
		return Side{}, nil, fmt.Errorf("missing relation name in %q", s)
	}
	body := s[open+1 : len(s)-1]
	colPart, patPart := body, ""
	if i := strings.IndexByte(body, '|'); i >= 0 {
		colPart, patPart = body[:i], body[i+1:]
	}
	for _, c := range strings.Split(colPart, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		side.Cols = append(side.Cols, c)
	}
	var pats []core.Pattern
	if strings.TrimSpace(patPart) != "" {
		// Reuse the CFD item syntax by parsing "[items] -> [X]" and
		// discarding the dummy RHS.
		probe, err := core.ParseCFD("[" + patPart + "] -> [DUMMY_]")
		if err != nil {
			return Side{}, nil, fmt.Errorf("bad pattern list %q: %w", patPart, err)
		}
		side.PatCols = probe.LHS
		pats = probe.Tableau[0].X
	}
	return side, pats, nil
}
