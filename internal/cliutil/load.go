// Package cliutil holds small helpers shared by the cfd* command-line
// tools.
package cliutil

import (
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

// LoadInputs reads the standard input pair of the cfd* commands: a CSV
// instance (header row becomes the schema) and a CFD set in the text
// notation.
func LoadInputs(dataPath, cfdPath string) (*relation.Relation, []*core.CFD, error) {
	rel, err := LoadCSV(dataPath)
	if err != nil {
		return nil, nil, err
	}
	sigma, err := LoadCFDs(cfdPath)
	if err != nil {
		return nil, nil, err
	}
	return rel, sigma, nil
}

// LoadCSV reads a CSV instance; the header row becomes the schema. It
// does not intern — the right call for one-shot commands that scan and
// exit. Long-lived monitors seed through LoadCSVPooled.
func LoadCSV(dataPath string) (*relation.Relation, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadCSV(f, "R")
}

// LoadCSVPooled reads a CSV instance through a shared value pool and
// returns the pool alongside — hand it to MonitorOptions.Intern and the
// monitor seeded from the load adopts the same pool instead of cloning
// every distinct value into a second one.
func LoadCSVPooled(dataPath string) (*relation.Relation, *relation.Interner, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	pool := relation.NewInterner()
	rel, err := relation.ReadCSVInterned(f, "R", pool)
	if err != nil {
		return nil, nil, err
	}
	return rel, pool, nil
}

// LoadCFDs reads a CFD set in the text notation. Durable commands use it
// alone when the monitor state comes from a WAL directory and the CSV is
// not needed.
func LoadCFDs(cfdPath string) ([]*core.CFD, error) {
	text, err := os.ReadFile(cfdPath)
	if err != nil {
		return nil, err
	}
	return core.ParseSet(string(text))
}
