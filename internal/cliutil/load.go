// Package cliutil holds small helpers shared by the cfd* command-line
// tools.
package cliutil

import (
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

// LoadInputs reads the standard input pair of the cfd* commands: a CSV
// instance (header row becomes the schema) and a CFD set in the text
// notation.
func LoadInputs(dataPath, cfdPath string) (*relation.Relation, []*core.CFD, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, nil, err
	}
	rel, err := relation.ReadCSV(f, "R")
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	text, err := os.ReadFile(cfdPath)
	if err != nil {
		return nil, nil, err
	}
	sigma, err := core.ParseSet(string(text))
	if err != nil {
		return nil, nil, err
	}
	return rel, sigma, nil
}
