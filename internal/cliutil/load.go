// Package cliutil holds small helpers shared by the cfd* command-line
// tools.
package cliutil

import (
	"os"

	"repro/internal/core"
	"repro/internal/relation"
)

// LoadInputs reads the standard input pair of the cfd* commands: a CSV
// instance (header row becomes the schema) and a CFD set in the text
// notation.
func LoadInputs(dataPath, cfdPath string) (*relation.Relation, []*core.CFD, error) {
	rel, err := LoadCSV(dataPath)
	if err != nil {
		return nil, nil, err
	}
	sigma, err := LoadCFDs(cfdPath)
	if err != nil {
		return nil, nil, err
	}
	return rel, sigma, nil
}

// LoadCSV reads a CSV instance; the header row becomes the schema.
func LoadCSV(dataPath string) (*relation.Relation, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadCSV(f, "R")
}

// LoadCFDs reads a CFD set in the text notation. Durable commands use it
// alone when the monitor state comes from a WAL directory and the CSV is
// not needed.
func LoadCFDs(cfdPath string) ([]*core.CFD, error) {
	text, err := os.ReadFile(cfdPath)
	if err != nil {
		return nil, err
	}
	return core.ParseSet(string(text))
}
