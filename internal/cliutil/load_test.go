package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodCSV = "CC,AC,PN\n01,908,1111111\n01,212,2222222\n"
const goodCFD = "[CC=01, AC] -> [PN]\n"

func TestLoadInputs(t *testing.T) {
	rel, sigma, err := LoadInputs(write(t, "data.csv", goodCSV), write(t, "sigma.cfd", goodCFD))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("relation has %d tuples, want 2", rel.Len())
	}
	if len(sigma) != 1 {
		t.Errorf("parsed %d CFDs, want 1", len(sigma))
	}
}

func TestLoadInputsMissingData(t *testing.T) {
	_, _, err := LoadInputs(filepath.Join(t.TempDir(), "absent.csv"), write(t, "sigma.cfd", goodCFD))
	if err == nil {
		t.Fatal("missing data file: no error")
	}
	if !os.IsNotExist(err) {
		t.Errorf("error %v does not report a missing file", err)
	}
}

func TestLoadInputsMissingCFD(t *testing.T) {
	_, _, err := LoadInputs(write(t, "data.csv", goodCSV), filepath.Join(t.TempDir(), "absent.cfd"))
	if err == nil {
		t.Fatal("missing CFD file: no error")
	}
	if !os.IsNotExist(err) {
		t.Errorf("error %v does not report a missing file", err)
	}
}

func TestLoadInputsMalformedCFD(t *testing.T) {
	for _, bad := range []string{
		"this is not a cfd\n",
		"[CC=01, AC] ->\n",        // no RHS
		"[CC=01, AC] -> [PN]\n]x", // trailing garbage line
	} {
		_, _, err := LoadInputs(write(t, "data.csv", goodCSV), write(t, "sigma.cfd", bad))
		if err == nil {
			t.Errorf("malformed CFD %q: no error", bad)
		}
	}
}

func TestLoadInputsRaggedCSV(t *testing.T) {
	ragged := "CC,AC,PN\n01,908,1111111\n01,212\n"
	_, _, err := LoadInputs(write(t, "data.csv", ragged), write(t, "sigma.cfd", goodCFD))
	if err == nil {
		t.Fatal("ragged CSV: no error")
	}
	// The error must name the offending line so the CLI message is usable.
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("ragged-row error %q does not name line 3", err)
	}
}

func TestLoadInputsEmptyCSV(t *testing.T) {
	_, _, err := LoadInputs(write(t, "data.csv", ""), write(t, "sigma.cfd", goodCFD))
	if err == nil {
		t.Fatal("empty CSV (no header): no error")
	}
}

// TestLoadCSVPooled: the returned pool holds the relation's distinct
// values, ready to hand to MonitorOptions.Intern.
func TestLoadCSVPooled(t *testing.T) {
	csv := "CC,CT\n01,NYC\n01,NYC\n44,EDI\n"
	rel, pool, err := LoadCSVPooled(write(t, "data.csv", csv))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d", rel.Len())
	}
	if pool == nil || pool.Len() != 4 {
		t.Fatalf("pool holds %v values, want the 4 distinct", pool.Len())
	}
	if got := pool.Intern("NYC"); got != rel.Tuples[0][1] {
		t.Error("pool copy is not the relation's backing copy")
	}
	if _, _, err := LoadCSVPooled("missing.csv"); err == nil {
		t.Error("missing file must error")
	}
}
