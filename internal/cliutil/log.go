package cliutil

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds the structured logger the CLIs share: slog to stderr,
// text or JSON lines, filtered at the named level. Level names follow
// slog: debug, info, warn (or warning), error.
func NewLogger(level string, jsonOut bool) (*slog.Logger, error) {
	return newLoggerTo(os.Stderr, level, jsonOut)
}

// newLoggerTo is NewLogger with the destination injectable for tests.
func newLoggerTo(w io.Writer, level string, jsonOut bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}
