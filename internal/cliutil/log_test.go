package cliutil

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	var sb strings.Builder
	lg, err := newLoggerTo(&sb, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "k", "v")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=v") {
		t.Errorf("warn line missing:\n%s", out)
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var sb strings.Builder
	lg, err := newLoggerTo(&sb, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "answer", 42)
	var rec map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("not a JSON line: %v\n%s", err, sb.String())
	}
	if rec["msg"] != "hello" || rec["answer"] != float64(42) || rec["level"] != "INFO" {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerBadLevel(t *testing.T) {
	if _, err := NewLogger("loud", false); err == nil {
		t.Fatal("unknown level must error")
	}
	for _, lv := range []string{"", "debug", "info", "warn", "warning", "error", "ERROR"} {
		if _, err := NewLogger(lv, true); err != nil {
			t.Errorf("level %q: %v", lv, err)
		}
	}
}
