package cluster

import (
	"context"
	"fmt"

	"repro/internal/incremental"
)

// LocalBackend adapts an in-process node to the Backend interface: a
// primary is a *incremental.Monitor, a standby a *incremental.Follower
// (whose embedded monitor serves the reads until promotion). The E14
// bench and the cluster property tests drive whole clusters through
// this adapter with zero HTTP in the loop; cfdrouter swaps in an HTTP
// backend with identical semantics.
type LocalBackend struct {
	// M is the node's monitor when it is (or started as) a primary.
	M *incremental.Monitor
	// F is set when the node is a standby; its monitor is used for
	// reads and Promote turns it into a primary.
	F *incremental.Follower
}

func (b *LocalBackend) mon() *incremental.Monitor {
	if b.F != nil {
		return b.F.Monitor()
	}
	return b.M
}

// Mon returns the monitor currently serving this backend's reads — the
// follower's embedded monitor until promotion. Read fan-out callers use
// it to query violation views and stats in-process after PickRead.
func (b *LocalBackend) Mon() *incremental.Monitor { return b.mon() }

// ReadPosition reports the node's replication position for the read
// fan-out's staleness guard: a primary is its own tail (lag 0); a
// standby reports its follower's epoch and byte lag as of the last
// exchange with the primary (-1 while whole segments behind).
func (b *LocalBackend) ReadPosition(context.Context) (ReadPosition, error) {
	if b.F != nil {
		st := b.F.Status()
		return ReadPosition{Epoch: b.F.Monitor().Epoch(), LagBytes: st.LagBytes}, nil
	}
	return ReadPosition{Epoch: b.M.Epoch(), LagBytes: 0}, nil
}

// Apply applies the batch under the caller's epoch stamp (see
// Monitor.ApplyAt).
func (b *LocalBackend) Apply(_ context.Context, epoch uint64, cs *incremental.ChangeSet) (*incremental.Delta, error) {
	return b.mon().ApplyAt(cs, epoch)
}

// Epoch reports the node's current fencing epoch.
func (b *LocalBackend) Epoch(context.Context) (uint64, error) {
	return b.mon().Epoch(), nil
}

// NextKey reports the node's key-allocator watermark.
func (b *LocalBackend) NextKey(context.Context) (int64, error) {
	return b.mon().NextKey(), nil
}

// Promote promotes the standby (Follower.Promote: durably journals the
// epoch bump, then lifts the read-only gate) and returns the new epoch.
func (b *LocalBackend) Promote(context.Context) (uint64, error) {
	if b.F == nil {
		return 0, fmt.Errorf("cluster: local backend is not a standby")
	}
	if err := b.F.Promote(); err != nil {
		return 0, err
	}
	return b.F.Monitor().Epoch(), nil
}

// Fence marks the node fenced at the given epoch (Monitor.Fence).
func (b *LocalBackend) Fence(_ context.Context, epoch uint64) error {
	b.mon().Fence(epoch)
	return nil
}
