package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// The cluster-vs-single-node oracle property test. A Router fronts K
// shard groups (each a durable fsync-less primary plus a hot standby
// tailing its WAL) and is driven through a random mutation stream while
// followers sync concurrently. Mid-stream, one group's primary is
// KILLED (closed dead, standby promoted from whatever prefix it had
// replicated) and another group's primary is PARTITIONED (left running,
// standby promoted, old primary fenced). The invariant: at every
// checkpoint, each shard group's live state and violation set equal a
// single-node oracle monitor replaying exactly the sub-batches that
// group durably accepted — truncated, at a failover, to the promoted
// standby's replicated prefix. The deposed primaries must refuse
// writes with ErrFenced, both direct and stamped with their stale
// epoch: a partition cannot yield two writable histories.

// soakFactor scales the randomized rounds; nightly CI sets CFD_SOAK.
func soakFactor() int {
	if s := os.Getenv("CFD_SOAK"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

func custSchema() *relation.Schema {
	return relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"), relation.Attr("ZIP"))
}

func custSigma(t testing.TB) []*core.CFD {
	t.Helper()
	sigma, err := core.ParseSet(`
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
`)
	if err != nil {
		t.Fatal(err)
	}
	return sigma
}

// randTuple draws from small value pools so conflicting pairs (shared
// CC/AC/PN with differing right-hand sides) appear constantly.
func randTuple(rng *rand.Rand) relation.Tuple {
	pick := func(vals ...string) string { return vals[rng.Intn(len(vals))] }
	return relation.Tuple{
		pick("01", "44"),
		pick("908", "212", "215", "131"),
		pick("1111111", "2222222", "3333333"),
		fmt.Sprintf("N%d", rng.Intn(6)),
		pick("Tree Ave.", "Elm Str.", "Oak Ave.", "High St."),
		pick("NYC", "PHI", "MH", "EDI"),
		pick("07974", "01202", "02404", "EH4 1DT"),
	}
}

// cloneCS rebuilds a ChangeSet from its exported fields: a fresh,
// never-applied copy safe to replay on another monitor.
func cloneCS(cs *incremental.ChangeSet) *incremental.ChangeSet {
	out := &incremental.ChangeSet{}
	for i := range cs.Ops {
		op := &cs.Ops[i]
		switch op.Kind {
		case incremental.OpInsert:
			out.InsertKeyed(op.Key, append(relation.Tuple(nil), op.Tuple...))
		case incremental.OpDelete:
			out.Delete(op.Key)
		case incremental.OpUpdate:
			out.Update(op.Key, op.Attr, op.Value)
		}
	}
	return out
}

// splitByOwner mirrors the router's partition of a key-resolved
// ChangeSet (every insert already carries its assigned key).
func splitByOwner(rt *cluster.Router, cs *incremental.ChangeSet) map[string]*incremental.ChangeSet {
	sub := make(map[string]*incremental.ChangeSet)
	for i := range cs.Ops {
		op := &cs.Ops[i]
		owner := rt.Owner(op.Key)
		scs := sub[owner]
		if scs == nil {
			scs = &incremental.ChangeSet{}
			sub[owner] = scs
		}
		switch op.Kind {
		case incremental.OpInsert:
			scs.InsertKeyed(op.Key, op.Tuple)
		case incremental.OpDelete:
			scs.Delete(op.Key)
		case incremental.OpUpdate:
			scs.Update(op.Key, op.Attr, op.Value)
		}
	}
	return sub
}

// testGroup is one shard group plus its oracle bookkeeping.
type testGroup struct {
	name     string
	primary  *incremental.Monitor
	old      *incremental.Monitor // deposed primary after a failover event
	follower *incremental.Follower
	accepted []*incremental.ChangeSet // durably accepted sub-batches, in order
	oracle   *incremental.Monitor     // memory monitor in lockstep with accepted
	stop     chan struct{}
	done     chan struct{}
	promoted bool
}

// replayOracle builds a fresh single-node oracle from an accepted-batch
// prefix.
func replayOracle(t *testing.T, sigma []*core.CFD, accepted []*incremental.ChangeSet) *incremental.Monitor {
	t.Helper()
	m, err := incremental.New(custSchema(), sigma, incremental.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, cs := range accepted {
		if _, err := m.Apply(cloneCS(cs)); err != nil {
			t.Fatalf("oracle replay batch %d: %v", i, err)
		}
	}
	return m
}

// checkGroup compares a group's primary against its oracle: size, key
// set, per-key tuples, violation state — and, when deep is set, the
// batch Direct detector over the primary's own image.
func checkGroup(t *testing.T, g *testGroup, deep bool) {
	t.Helper()
	p, o := g.primary, g.oracle
	if p.Len() != o.Len() {
		t.Fatalf("group %s: cluster holds %d tuples, oracle %d", g.name, p.Len(), o.Len())
	}
	keys := p.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	okeys := o.Keys()
	sort.Slice(okeys, func(i, j int) bool { return okeys[i] < okeys[j] })
	for i, k := range keys {
		if okeys[i] != k {
			t.Fatalf("group %s: key set diverges at %d: cluster %d, oracle %d", g.name, i, k, okeys[i])
		}
		pt, _ := p.Get(k)
		ot, _ := o.Get(k)
		if len(pt) != len(ot) {
			t.Fatalf("group %s key %d: arity %d vs %d", g.name, k, len(pt), len(ot))
		}
		for a := range pt {
			if pt[a] != ot[a] {
				t.Fatalf("group %s key %d attr %d: %q vs %q", g.name, k, a, pt[a], ot[a])
			}
		}
	}
	if !p.Violations().Equal(o.Violations()) {
		t.Fatalf("group %s: violation state diverges from single-node oracle", g.name)
	}
	if !deep {
		return
	}
	// Belt and braces: the batch Direct detector over the shard's image.
	rel := relation.New(custSchema())
	for _, k := range keys {
		tp, _ := p.Get(k)
		if err := rel.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	res, err := detect.Detect(rel, custSigma(t), detect.Options{Strategy: detect.Direct})
	if err != nil {
		t.Fatal(err)
	}
	want := &incremental.State{PerCFD: make([]incremental.CFDViolations, len(res.PerCFD))}
	for i, v := range res.PerCFD {
		for _, row := range v.ConstTuples {
			want.PerCFD[i].ConstTuples = append(want.PerCFD[i].ConstTuples, keys[row])
		}
		for _, k := range v.VariableKeys {
			want.PerCFD[i].VariableKeys = append(want.PerCFD[i].VariableKeys, append([]relation.Value(nil), k...))
		}
	}
	if !p.Violations().Equal(want) {
		t.Fatalf("group %s: violation state diverges from batch Direct detector", g.name)
	}
}

// assertFenced: a deposed primary refuses writes — direct, and stamped
// with the stale epoch it was deposed at.
func assertFenced(t *testing.T, m *incremental.Monitor, staleEpoch uint64, rng *rand.Rand) {
	t.Helper()
	if !m.Fenced() {
		t.Fatal("deposed primary does not report Fenced()")
	}
	cs := (&incremental.ChangeSet{}).Insert(randTuple(rng))
	if _, err := m.Apply(cs); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("deposed primary accepted a direct write: err=%v", err)
	}
	cs = (&incremental.ChangeSet{}).Insert(randTuple(rng))
	if _, err := m.ApplyAt(cs, staleEpoch); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("deposed primary accepted a stale-epoch write: err=%v", err)
	}
}

func TestClusterMatchesOracleUnderFailover(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("CFD_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = n
		}
	}
	t.Logf("seed %d (re-run with CFD_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	ctx := context.Background()
	sigma := custSigma(t)
	names := []string{"g0", "g1", "g2"}
	groups := make(map[string]*testGroup, len(names))
	var cfgs []cluster.GroupConfig
	for _, name := range names {
		p, err := incremental.New(custSchema(), sigma, incremental.Options{
			Shards: 2, Durable: t.TempDir(), RetainSegments: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := incremental.NewFollower(ctx, sigma, incremental.Options{
			Shards: 2, Durable: t.TempDir(),
		}, incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := incremental.New(custSchema(), sigma, incremental.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		g := &testGroup{
			name: name, primary: p, follower: f, oracle: oracle,
			stop: make(chan struct{}), done: make(chan struct{}),
		}
		groups[name] = g
		cfgs = append(cfgs, cluster.GroupConfig{
			Name:     name,
			Primary:  &cluster.LocalBackend{M: p},
			Standbys: []cluster.Backend{&cluster.LocalBackend{F: f}},
		})
	}
	defer func() {
		for _, g := range groups {
			_ = g.follower.Close()
			_ = g.primary.Close()
			if g.old != nil {
				_ = g.old.Close()
			}
		}
	}()

	rt, err := cluster.NewRouter(ctx, cfgs, cluster.Options{VNodes: 32})
	if err != nil {
		t.Fatal(err)
	}

	// Followers tail concurrently with routed writes (the race the WAL
	// shipping protocol must survive), plus concurrent readers.
	var readers sync.WaitGroup
	stopRead := make(chan struct{})
	for _, g := range groups {
		g := g
		go func() {
			defer close(g.done)
			for {
				select {
				case <-g.stop:
					return
				default:
				}
				_, _ = g.follower.Sync(ctx)
				time.Sleep(500 * time.Microsecond)
			}
		}()
		readers.Add(1)
		// Pin the boot-time primary: failover swaps g.primary, and the
		// reader's point is concurrent reads against a node taking writes
		// (reads on a deposed monitor stay valid — its memory image lives).
		go func(p *incremental.Monitor) {
			defer readers.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				_ = p.Violations()
				_ = p.Len()
				time.Sleep(time.Millisecond)
			}
		}(g.primary)
	}
	defer func() {
		close(stopRead)
		readers.Wait()
		for _, g := range groups {
			select {
			case <-g.done:
			default:
				close(g.stop)
				<-g.done
			}
		}
	}()

	stopSyncer := func(g *testGroup) {
		close(g.stop)
		<-g.done
	}

	// Live keys across the cluster, for generating updates and deletes.
	liveSet := make(map[int64]bool)
	var liveKeys []int64
	compactLive := func() {
		out := liveKeys[:0]
		for _, k := range liveKeys {
			if liveSet[k] {
				out = append(out, k)
			}
		}
		liveKeys = out
	}
	randLive := func(used map[int64]bool) (int64, bool) {
		for tries := 0; tries < 32 && len(liveKeys) > 0; tries++ {
			k := liveKeys[rng.Intn(len(liveKeys))]
			if liveSet[k] && !used[k] {
				return k, true
			}
		}
		compactLive()
		for _, k := range liveKeys {
			if !used[k] {
				return k, true
			}
		}
		return 0, false
	}
	// dropGroupKeys rewinds the live-key view of one group to its
	// promoted primary's actual key set (a failover may lose the tail).
	dropGroupKeys := func(g *testGroup) {
		for k := range liveSet {
			if rt.Owner(k) == g.name {
				delete(liveSet, k)
			}
		}
		for _, k := range g.primary.Keys() {
			liveSet[k] = true
		}
		liveKeys = liveKeys[:0]
		for k := range liveSet {
			liveKeys = append(liveKeys, k)
		}
	}

	// accept records one committed sub-batch: oracle lockstep + live keys.
	accept := func(g *testGroup, sub *incremental.ChangeSet) *incremental.Delta {
		g.accepted = append(g.accepted, sub)
		od, err := g.oracle.Apply(cloneCS(sub))
		if err != nil {
			t.Fatalf("group %s: oracle rejects an accepted sub-batch: %v", g.name, err)
		}
		for i := range sub.Ops {
			op := &sub.Ops[i]
			switch op.Kind {
			case incremental.OpInsert:
				if !liveSet[op.Key] {
					liveSet[op.Key] = true
					liveKeys = append(liveKeys, op.Key)
				}
			case incremental.OpDelete:
				delete(liveSet, op.Key)
			}
		}
		return od
	}

	failover := func(g *testGroup, kill bool) {
		stopSyncer(g)
		if kill {
			// Dead primary: close it, then show the router surfaces the
			// failed group while others keep committing.
			if err := g.primary.Close(); err != nil {
				t.Fatal(err)
			}
			if used := map[int64]bool{}; len(liveKeys) > 0 {
				if key, ok := randLive(used); ok && rt.Owner(key) == g.name {
					cs := (&incremental.ChangeSet{}).Update(key, "NM", "X")
					_, err := rt.Apply(ctx, cs)
					var ae *cluster.ApplyError
					if !errors.As(err, &ae) || ae.Failed[g.name] == nil {
						t.Fatalf("routed write to dead group %s: err=%v, want ApplyError naming it", g.name, err)
					}
				}
			}
		} else {
			// Partition: primary stays up; drain the follower fully first
			// so this failover is lossless (the kill path exercises loss).
			for {
				n, err := g.follower.Sync(ctx)
				if err != nil {
					t.Fatalf("group %s: final sync: %v", g.name, err)
				}
				if n == 0 {
					break
				}
			}
		}
		staleEpoch := g.primary.Epoch()
		epoch, err := rt.Promote(ctx, g.name)
		if err != nil {
			t.Fatalf("promoting group %s: %v", g.name, err)
		}
		if epoch == staleEpoch {
			t.Fatalf("promotion of group %s did not bump the epoch (%d)", g.name, epoch)
		}
		applied := int(g.follower.Status().AppliedRecords)
		if applied > len(g.accepted) {
			t.Fatalf("group %s: follower applied %d records but only %d batches were accepted", g.name, applied, len(g.accepted))
		}
		if !kill && applied != len(g.accepted) {
			t.Fatalf("group %s: fully drained follower applied %d of %d accepted batches", g.name, applied, len(g.accepted))
		}
		g.accepted = g.accepted[:applied]
		g.old = g.primary
		g.primary = g.follower.Monitor()
		g.promoted = true
		g.oracle = replayOracle(t, sigma, g.accepted)
		dropGroupKeys(g)
		// The acceptance criterion itself: a fenced deposed primary
		// refuses writes, so no partition yields two writable histories.
		assertFenced(t, g.old, staleEpoch, rng)
	}

	rounds := 60 * soakFactor()
	killRound := rounds/4 + rng.Intn(rounds/4)
	partRound := rounds/2 + rng.Intn(rounds/4)
	killGroup := names[rng.Intn(len(names))]
	partGroup := names[rng.Intn(len(names))]
	for partGroup == killGroup {
		partGroup = names[rng.Intn(len(names))]
	}

	attrs := []struct {
		name string
		vals []string
	}{
		{"NM", []string{"N0", "N1", "N2"}},
		{"STR", []string{"Tree Ave.", "Elm Str.", "Oak Ave."}},
		{"CT", []string{"NYC", "PHI", "MH", "EDI"}},
		{"ZIP", []string{"07974", "01202", "02404"}},
		{"AC", []string{"908", "212", "215"}},
	}

	for round := 0; round < rounds; round++ {
		if round == killRound {
			failover(groups[killGroup], true)
		}
		if round == partRound {
			failover(groups[partGroup], false)
		}

		cs := &incremental.ChangeSet{}
		used := make(map[int64]bool)
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			r := rng.Float64()
			if r < 0.5 || len(liveKeys) == 0 {
				cs.Insert(randTuple(rng))
				continue
			}
			key, ok := randLive(used)
			if !ok {
				cs.Insert(randTuple(rng))
				continue
			}
			used[key] = true
			if r < 0.8 {
				a := attrs[rng.Intn(len(attrs))]
				cs.Update(key, a.name, a.vals[rng.Intn(len(a.vals))])
			} else {
				cs.Delete(key)
			}
		}

		merged, err := rt.Apply(ctx, cs)
		if err != nil {
			t.Fatalf("round %d: routed apply: %v", round, err)
		}
		subs := splitByOwner(rt, cs)

		// Oracle lockstep, and the merged delta must be exactly the
		// concatenation of the per-group deltas in sorted group order.
		var subNames []string
		for name := range subs {
			subNames = append(subNames, name)
		}
		sort.Strings(subNames)
		var wantAdded, wantRemoved []string
		for _, name := range subNames {
			od := accept(groups[name], subs[name])
			for _, c := range od.Added {
				wantAdded = append(wantAdded, c.String())
			}
			for _, c := range od.Removed {
				wantRemoved = append(wantRemoved, c.String())
			}
		}
		gotAdded := make([]string, 0, len(merged.Added))
		for _, c := range merged.Added {
			gotAdded = append(gotAdded, c.String())
		}
		gotRemoved := make([]string, 0, len(merged.Removed))
		for _, c := range merged.Removed {
			gotRemoved = append(gotRemoved, c.String())
		}
		sort.Strings(wantAdded)
		sort.Strings(wantRemoved)
		sort.Strings(gotAdded)
		sort.Strings(gotRemoved)
		if fmt.Sprint(gotAdded) != fmt.Sprint(wantAdded) || fmt.Sprint(gotRemoved) != fmt.Sprint(wantRemoved) {
			t.Fatalf("round %d: merged delta diverges from per-group oracle deltas\ngot  +%v -%v\nwant +%v -%v",
				round, gotAdded, gotRemoved, wantAdded, wantRemoved)
		}

		if round%10 == 9 {
			for _, name := range names {
				checkGroup(t, groups[name], false)
			}
		}
	}

	if !groups[killGroup].promoted || !groups[partGroup].promoted {
		t.Fatal("failover events did not fire")
	}
	for _, name := range names {
		checkGroup(t, groups[name], true)
	}
	// Cluster-wide sanity: shard sizes sum to the live-key count.
	total := 0
	for _, name := range names {
		total += groups[name].primary.Len()
	}
	compactLive()
	if total != len(liveKeys) {
		t.Fatalf("cluster holds %d tuples, bookkeeping says %d", total, len(liveKeys))
	}
}
