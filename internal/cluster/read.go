package cluster

import (
	"context"
	"fmt"
	"time"
)

// This file is the router's read side: writes always go to a group's
// primary (Apply), but reads — violation views, stats — can be served by
// any sufficiently-fresh replica. PickRead round-robins a group's
// primary and standbys, guarded by a bounded-staleness check built from
// the same signals the fencing protocol uses: a standby whose epoch is
// behind the group's routing term belongs to a deposed history, and one
// whose WAL cursor trails the primary by more than Options.MaxReadLag
// bytes (or by whole segments) is too stale to answer for "now". Both
// are skipped; the primary is always eligible, so a read never fails
// just because every standby is lagging.

// ReadConsistency selects which nodes of a shard group may serve a read.
type ReadConsistency int

const (
	// ReadPrimary serves the read from the group's current primary —
	// the strongest mode: the answer reflects every acknowledged write.
	ReadPrimary ReadConsistency = iota
	// ReadAny load-balances across the primary and every standby that
	// passes the bounded-staleness guard: same-epoch and within
	// Options.MaxReadLag bytes of the primary's tail. The answer may
	// trail the primary by up to that many bytes of WAL.
	ReadAny
)

// ParseReadConsistency maps the wire form of a consistency mode
// ("primary", "any"; "" defaults to primary) to its constant.
func ParseReadConsistency(s string) (ReadConsistency, error) {
	switch s {
	case "", "primary":
		return ReadPrimary, nil
	case "any":
		return ReadAny, nil
	}
	return ReadPrimary, fmt.Errorf("cluster: unknown read consistency %q (want primary or any)", s)
}

// String renders the mode in its wire form.
func (c ReadConsistency) String() string {
	if c == ReadAny {
		return "any"
	}
	return "primary"
}

// ReadPosition is a node's replication position as the read fan-out
// evaluates it.
type ReadPosition struct {
	// Epoch is the fencing epoch the node's history is written under.
	Epoch uint64
	// LagBytes is the node's byte distance to its primary's WAL tail:
	// 0 for a primary, -1 when the node is whole segments behind (the
	// byte distance is unknown, and the node is skipped regardless of
	// MaxReadLag).
	LagBytes int64
}

// ReadBackend is the read-side extension of Backend: a node that can
// report its replication position, making it eligible for ReadAny
// fan-out. A Backend that does not implement it only ever serves reads
// as a primary.
type ReadBackend interface {
	Backend
	// ReadPosition reports the node's current epoch and replication lag.
	ReadPosition(ctx context.Context) (ReadPosition, error)
}

// DefaultMaxReadLag is the staleness bound when Options.MaxReadLag is 0:
// a standby more than 4 MiB of WAL behind the primary's tail is skipped.
const DefaultMaxReadLag = 4 << 20

// readPosTTL bounds how often the router re-queries one node's position:
// within the window a cached answer (including a cached failure) is
// reused, so position probes never dominate a hot read path.
const readPosTTL = 500 * time.Millisecond

// posEntry is one cached position probe.
type posEntry struct {
	pos ReadPosition
	err error
	at  time.Time
}

// PickRead returns the backend the next read of the named group should
// hit. ReadPrimary (and any group without standbys) returns the current
// primary. ReadAny round-robins the primary and the standbys, skipping
// any standby that fails the staleness guard — lower epoch than the
// group's routing term, lag outside [0, MaxReadLag], or an unreachable
// position probe — and falls back to the primary when every standby is
// skipped.
func (rt *Router) PickRead(ctx context.Context, name string, mode ReadConsistency) (Backend, error) {
	g, ok := rt.groups[name]
	if !ok {
		return nil, fmt.Errorf("cluster: no shard group %q", name)
	}
	g.mu.Lock()
	primary, epoch := g.primary, g.epoch
	standbys := append([]Backend(nil), g.standbys...)
	g.mu.Unlock()
	if mode != ReadAny || len(standbys) == 0 {
		return primary, nil
	}
	cands := make([]Backend, 0, len(standbys)+1)
	cands = append(cands, primary)
	cands = append(cands, standbys...)
	start := int(g.rr.Add(1)) % len(cands)
	for i := range cands {
		c := cands[(start+i)%len(cands)]
		if c == primary {
			return primary, nil
		}
		if rt.standbyFresh(ctx, g, c, epoch) {
			return c, nil
		}
	}
	return primary, nil
}

// standbyFresh applies the bounded-staleness guard to one standby.
func (rt *Router) standbyFresh(ctx context.Context, g *shardGroup, b Backend, epoch uint64) bool {
	rb, ok := b.(ReadBackend)
	if !ok {
		return false
	}
	pos, err := g.readPos(ctx, rb)
	if err != nil {
		return false
	}
	maxLag := rt.maxReadLag
	if maxLag <= 0 {
		maxLag = DefaultMaxReadLag
	}
	return pos.Epoch >= epoch && pos.LagBytes >= 0 && pos.LagBytes <= maxLag
}

// readPos probes one node's position through the group's TTL cache.
func (g *shardGroup) readPos(ctx context.Context, rb ReadBackend) (ReadPosition, error) {
	now := time.Now()
	g.posMu.Lock()
	if e, ok := g.pos[rb]; ok && now.Sub(e.at) < readPosTTL {
		g.posMu.Unlock()
		return e.pos, e.err
	}
	g.posMu.Unlock()
	pos, err := rb.ReadPosition(ctx)
	g.posMu.Lock()
	if g.pos == nil {
		g.pos = make(map[Backend]posEntry)
	}
	g.pos[rb] = posEntry{pos: pos, err: err, at: now}
	g.posMu.Unlock()
	return pos, err
}
