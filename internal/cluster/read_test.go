package cluster_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// posBackend is a standby whose read position the test controls: the
// wire-level ReadBackend contract without the replication machinery.
type posBackend struct {
	epoch uint64
	lag   int64
	err   error
}

func (p *posBackend) Apply(context.Context, uint64, *incremental.ChangeSet) (*incremental.Delta, error) {
	return nil, errors.New("posBackend: read-only")
}
func (p *posBackend) Epoch(context.Context) (uint64, error)   { return p.epoch, nil }
func (p *posBackend) NextKey(context.Context) (int64, error)  { return 0, nil }
func (p *posBackend) Promote(context.Context) (uint64, error) { return 0, errors.New("no") }
func (p *posBackend) Fence(context.Context, uint64) error     { return nil }
func (p *posBackend) ReadPosition(context.Context) (cluster.ReadPosition, error) {
	if p.err != nil {
		return cluster.ReadPosition{}, p.err
	}
	return cluster.ReadPosition{Epoch: p.epoch, LagBytes: p.lag}, nil
}

// readCluster builds one group: a live in-memory primary plus the given
// standbys, with the given staleness bound. A fresh router per scenario
// keeps the 500ms read-position cache from bleeding between cases.
func readCluster(t *testing.T, maxLag int64, standbys ...cluster.Backend) (*cluster.Router, *incremental.Monitor) {
	t.Helper()
	m, err := incremental.New(custSchema(), custSigma(t), incremental.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	rt, err := cluster.NewRouter(context.Background(), []cluster.GroupConfig{{
		Name: "g", Primary: &cluster.LocalBackend{M: m}, Standbys: standbys,
	}}, cluster.Options{MaxReadLag: maxLag})
	if err != nil {
		t.Fatal(err)
	}
	return rt, m
}

// pickSpread runs n picks and counts how many land on each backend.
func pickSpread(t *testing.T, rt *cluster.Router, mode cluster.ReadConsistency, n int) map[cluster.Backend]int {
	t.Helper()
	got := make(map[cluster.Backend]int)
	for i := 0; i < n; i++ {
		be, err := rt.PickRead(context.Background(), "g", mode)
		if err != nil {
			t.Fatal(err)
		}
		got[be]++
	}
	return got
}

func TestPickReadPrimaryOnly(t *testing.T) {
	fresh := &posBackend{epoch: 0, lag: 0}
	rt, _ := readCluster(t, 0, fresh)
	// consistency=primary never touches a standby, however fresh.
	for be, n := range pickSpread(t, rt, cluster.ReadPrimary, 8) {
		if _, ok := be.(*cluster.LocalBackend); !ok {
			t.Fatalf("ReadPrimary returned standby %T %d times", be, n)
		}
	}
}

func TestPickReadSpreadsOverFreshStandby(t *testing.T) {
	fresh := &posBackend{epoch: 0, lag: 0}
	rt, _ := readCluster(t, 0, fresh)
	got := pickSpread(t, rt, cluster.ReadAny, 8)
	if got[fresh] == 0 {
		t.Fatalf("ReadAny never used the fresh standby: %v", got)
	}
	if got[fresh] == 8 {
		t.Fatal("ReadAny never used the primary")
	}
}

func TestPickReadSkipsStaleStandby(t *testing.T) {
	cases := []struct {
		name    string
		standby *posBackend
		maxLag  int64
	}{
		{name: "lag-over-bound", standby: &posBackend{epoch: 0, lag: 1 << 30}, maxLag: 1024},
		{name: "segments-behind", standby: &posBackend{epoch: 0, lag: -1}, maxLag: 0},
		{name: "position-error", standby: &posBackend{err: errors.New("down")}, maxLag: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, _ := readCluster(t, tc.maxLag, tc.standby)
			got := pickSpread(t, rt, cluster.ReadAny, 8)
			if got[tc.standby] != 0 {
				t.Fatalf("ReadAny used a stale standby %d of 8 times", got[tc.standby])
			}
		})
	}
}

// TestPickReadSkipsDeposedEpoch: a standby whose epoch is behind the
// group's is a leftover from before a failover; its history may diverge,
// so reads must never land there even if its byte lag looks small.
func TestPickReadSkipsDeposedEpoch(t *testing.T) {
	primary := &posBackend{epoch: 5}
	deposed := &posBackend{epoch: 4, lag: 0}
	current := &posBackend{epoch: 5, lag: 0}
	rt, err := cluster.NewRouter(context.Background(), []cluster.GroupConfig{{
		Name: "g", Primary: primary, Standbys: []cluster.Backend{deposed, current},
	}}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := pickSpread(t, rt, cluster.ReadAny, 9)
	if got[deposed] != 0 {
		t.Fatalf("ReadAny used an epoch-deposed standby %d of 9 times", got[deposed])
	}
	if got[current] == 0 {
		t.Fatalf("ReadAny never used the at-epoch standby: %v", got)
	}
}

// TestPickReadFollowerIntegration wires a real follower standby: once it
// has fully synced, consistency=any serves some reads from it and those
// reads see the replicated violations.
func TestPickReadFollowerIntegration(t *testing.T) {
	ctx := context.Background()
	sigma := custSigma(t)
	p, err := incremental.New(custSchema(), sigma, incremental.Options{Shards: 2, Durable: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := incremental.NewFollower(ctx, sigma, incremental.Options{Shards: 2, Durable: t.TempDir()},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fb := &cluster.LocalBackend{F: f}
	rt, err := cluster.NewRouter(ctx, []cluster.GroupConfig{{
		Name: "g", Primary: &cluster.LocalBackend{M: p}, Standbys: []cluster.Backend{fb},
	}}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A [CC=01, AC=215] -> [CT=PHI] constant violation on the primary.
	cs := &incremental.ChangeSet{}
	cs.Insert(relation.Tuple{"01", "215", "1111111", "Mike", "Tree Ave.", "NYC", "07974"})
	if _, err := rt.Apply(ctx, cs); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := f.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if st := f.Status(); st.LagBytes == 0 {
			break
		}
	}

	got := pickSpread(t, rt, cluster.ReadAny, 8)
	if got[fb] == 0 {
		t.Fatalf("ReadAny never used the synced follower: %v", got)
	}
	if fb.Mon().ViolationCount() != p.ViolationCount() {
		t.Fatalf("follower read sees %d violations, primary %d", fb.Mon().ViolationCount(), p.ViolationCount())
	}
}

func TestPickReadUnknownGroup(t *testing.T) {
	rt, _ := readCluster(t, 0)
	if _, err := rt.PickRead(context.Background(), "nope", cluster.ReadAny); err == nil {
		t.Fatal("PickRead on unknown group succeeded")
	}
}

func TestParseReadConsistency(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want cluster.ReadConsistency
		ok   bool
	}{
		{"", cluster.ReadPrimary, true},
		{"primary", cluster.ReadPrimary, true},
		{"any", cluster.ReadAny, true},
		{"quorum", 0, false},
	} {
		got, err := cluster.ParseReadConsistency(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("ParseReadConsistency(%q) = %v, %v", tc.in, got, err)
		}
	}
}
