// Package cluster scales the write path horizontally: a consistent-hash
// ring partitions the tuple-key space across independent shard groups
// (each a durable primary with optional hot standbys, see
// internal/incremental), and a Router splits every incoming ChangeSet
// by owning shard, fans the sub-batches out in parallel, and merges the
// per-shard violation deltas into one response. Each shard group keeps
// its own WAL, fsync cadence and group-commit window, so aggregate
// fsynced write throughput grows near-linearly with shard groups (E14
// measures it); failover inside a group is the fenced promotion of
// internal/incremental, and the router re-points at the promoted
// standby without re-seeding anything.
//
// The partition is by tuple key, so the cluster is exactly N
// independent monitors over a key partition — the data-partitioned
// form of the paper's detection queries. Constant violations are local
// to a tuple and therefore exact. Variable violations are detected
// within each shard: a conflicting group whose tuples land on one
// shard is reported exactly, while an X-group scattered across shards
// is checked per shard only — the trade every hash-partitioned
// detector makes. Callers that need cross-shard grouping route by
// group key instead (a future routing mode); the oracle property test
// pins the per-shard semantics.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over shard-group names. Each member
// contributes vnodes points (hashes of "name#i"); a key is owned by the
// member whose point follows the key's hash clockwise. Adding or
// removing one member moves only the keys in the arcs its points
// covered — about 1/N of the space — which is what lets a cluster grow
// without reshuffling every shard (the ring test pins both properties).
//
// Ring is not safe for concurrent mutation; the Router guards its ring
// with a lock and callers that share a Ring do the same. Reads
// (Owner) are safe concurrently with each other.
type Ring struct {
	vnodes  int
	members map[string]bool
	// points is the sorted vnode list: hashes with their owners,
	// rebuilt on every membership change. Ties (astronomically rare
	// with 64-bit hashes) break by owner name so every rebuild is
	// deterministic.
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	owner string
}

// DefaultVNodes is the per-member vnode count when NewRing is given 0:
// enough points that the ring test's load-balance bound (each member
// within 2× of the mean over random keys) holds comfortably.
const DefaultVNodes = 64

// NewRing builds a ring with the given vnode count per member (0 means
// DefaultVNodes) and initial members.
func NewRing(vnodes int, members ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, members: make(map[string]bool, len(members))}
	for _, m := range members {
		if err := r.Add(m); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add inserts a member; duplicate or empty names error.
func (r *Ring) Add(name string) error {
	if name == "" {
		return fmt.Errorf("cluster: empty ring member name")
	}
	if r.members[name] {
		return fmt.Errorf("cluster: ring member %q already present", name)
	}
	r.members[name] = true
	r.rebuild()
	return nil
}

// Remove deletes a member; unknown names error.
func (r *Ring) Remove(name string) error {
	if !r.members[name] {
		return fmt.Errorf("cluster: ring member %q not present", name)
	}
	delete(r.members, name)
	r.rebuild()
	return nil
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// rebuild recomputes the sorted point list from the member set.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m, i), owner: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
}

// Owner returns the member owning the given tuple key. Panics on an
// empty ring — routing against zero shards is a construction bug, not
// a runtime condition.
func (r *Ring) Owner(key int64) string {
	if len(r.points) == 0 {
		panic("cluster: Owner on empty ring")
	}
	h := mix64(uint64(key))
	// First point at or after h, wrapping to the first point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// vnodeHash places one virtual node: FNV-1a over "name#i".
func vnodeHash(name string, i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", name, i)
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: tuple keys are small sequential
// integers, and without a strong bit mix they would all land in one
// arc of the ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
