package cluster_test

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

// TestRingBalance: with the default vnode count, random keys spread
// across members within a 2× band of the fair share — the bound the
// router relies on for write scaling (a hot shard would serialize the
// cluster on one journal).
func TestRingBalance(t *testing.T) {
	members := []string{"g0", "g1", "g2", "g3"}
	r, err := cluster.NewRing(0, members...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const keys = 100_000
	counts := make(map[string]int, len(members))
	for i := 0; i < keys; i++ {
		// Mix of the sequential keys a router allocates and arbitrary ones.
		k := int64(i)
		if i%2 == 1 {
			k = rng.Int63()
		}
		counts[r.Owner(k)]++
	}
	mean := float64(keys) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < mean/2 || got > mean*2 {
			t.Errorf("member %s owns %.0f keys, outside [%.0f, %.0f] (mean %.0f)",
				m, got, mean/2, mean*2, mean)
		}
	}
}

// TestRingMinimalMovement: adding a member steals keys only FOR the new
// member (no key moves between surviving members), in roughly a fair
// share; removing it restores the exact original assignment. This is
// the property that lets a cluster grow without reshuffling shards
// wholesale.
func TestRingMinimalMovement(t *testing.T) {
	members := []string{"g0", "g1", "g2", "g3"}
	r, err := cluster.NewRing(0, members...)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 50_000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(int64(i))
	}

	if err := r.Add("g4"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := r.Owner(int64(i))
		if after == before[i] {
			continue
		}
		if after != "g4" {
			t.Fatalf("key %d moved %s -> %s: keys may only move to the added member", i, before[i], after)
		}
		moved++
	}
	// Fair share would be 1/5 of the keys; accept a wide band around it,
	// but never zero and never a wholesale reshuffle.
	if lo, hi := keys/10, keys/2; moved < lo || moved > hi {
		t.Errorf("adding a member moved %d of %d keys, outside [%d, %d]", moved, keys, lo, hi)
	}

	if err := r.Remove("g4"); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := r.Owner(int64(i)); got != before[i] {
			t.Fatalf("key %d owned by %s after add+remove, was %s", i, got, before[i])
		}
	}
}

// TestRingDeterministic: membership insertion order does not affect
// ownership — two routers booted from differently-ordered configs must
// route identically.
func TestRingDeterministic(t *testing.T) {
	a, err := cluster.NewRing(32, "g0", "g1", "g2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.NewRing(32, "g2", "g0", "g1")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10_000; i++ {
		if a.Owner(i) != b.Owner(i) {
			t.Fatalf("key %d: owner %s vs %s under different insertion orders", i, a.Owner(i), b.Owner(i))
		}
	}
}

// TestRingErrors: duplicate add, unknown remove, empty name.
func TestRingErrors(t *testing.T) {
	r, err := cluster.NewRing(8, "g0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add("g0"); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := r.Add(""); err == nil {
		t.Error("empty member name accepted")
	}
	if err := r.Remove("nope"); err == nil {
		t.Error("Remove of unknown member accepted")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "g0" {
		t.Errorf("Members() = %v, want [g0]", got)
	}
}
