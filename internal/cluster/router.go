package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/incremental"
)

// Backend is one node of a shard group as the router sees it: a durable
// monitor reachable either in-process (LocalBackend) or over HTTP
// (cfdrouter's serve-node client). Every write carries the epoch the
// router believes the group's history is at; a node whose epoch differs
// refuses the write with incremental.ErrFenced — the fencing handshake
// that keeps a deposed primary from accepting post-partition appends.
type Backend interface {
	// Apply applies the ChangeSet stamped at the given epoch and returns
	// the violation delta. A mismatched epoch fails with an error wrapping
	// incremental.ErrFenced.
	Apply(ctx context.Context, epoch uint64, cs *incremental.ChangeSet) (*incremental.Delta, error)
	// Epoch reports the epoch the node's history is currently written
	// under.
	Epoch(ctx context.Context) (uint64, error)
	// NextKey reports the node's key-allocator watermark; the router
	// seeds its own allocator above every shard's watermark.
	NextKey(ctx context.Context) (int64, error)
	// Promote turns a standby into a writable primary under a bumped,
	// durably-journaled epoch and returns that epoch.
	Promote(ctx context.Context) (uint64, error)
	// Fence tells the node a history with the given epoch exists, so it
	// refuses further writes under any lower epoch. Best-effort: a
	// partitioned node cannot be reached, which is exactly why Apply
	// carries the epoch too.
	Fence(ctx context.Context, epoch uint64) error
}

// GroupConfig declares one shard group: a name (its ring identity), the
// current primary, and promotion-ordered standbys.
type GroupConfig struct {
	Name     string
	Primary  Backend
	Standbys []Backend
}

// Options configures a Router.
type Options struct {
	// VNodes is the per-group virtual-node count on the hash ring
	// (0 means DefaultVNodes).
	VNodes int

	// MaxReadLag bounds the staleness a ReadAny read tolerates: a
	// standby whose WAL cursor trails the primary's tail by more than
	// this many bytes (or by whole segments) is skipped by PickRead.
	// 0 means DefaultMaxReadLag.
	MaxReadLag int64
}

// shardGroup is the router's live view of one shard group. The mutex
// guards the primary/standby roles and the epoch token; Apply holds it
// only long enough to read them, so fan-out I/O never serializes
// across groups.
type shardGroup struct {
	name string

	mu       sync.Mutex
	primary  Backend
	standbys []Backend
	epoch    uint64

	// rr sequences PickRead's round-robin over primary + standbys; posMu
	// and pos cache per-node position probes for readPosTTL so the
	// staleness guard costs at most one probe per node per window.
	rr    atomic.Uint32
	posMu sync.Mutex
	pos   map[Backend]posEntry
}

// Router fronts a sharded cluster: it owns the key space (allocating
// tuple keys above every shard's watermark), splits each ChangeSet into
// per-group sub-batches by ring ownership, fans them out in parallel
// with the group's epoch stamped on, and merges the per-group violation
// deltas into one response. Promote fails a group over to its first
// standby and fences the deposed primary.
//
// Cross-shard batches are NOT atomic: each sub-batch is one atomic
// all-or-nothing batch on its shard, but a batch spanning groups can
// commit on some and fail on others — Apply then returns the merged
// delta of the groups that committed alongside an *ApplyError naming
// the ones that did not. Callers retry only the failed sub-batches
// (inserted keys are written back, so a retry routes identically).
type Router struct {
	ring       *Ring
	groups     map[string]*shardGroup
	names      []string // sorted; deterministic merge order
	nextKey    atomic.Int64
	maxReadLag int64
}

// NewRouter builds a router over the given shard groups, querying each
// primary for its epoch token and key watermark.
func NewRouter(ctx context.Context, groups []GroupConfig, opts Options) (*Router, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard group")
	}
	ring, err := NewRing(opts.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{ring: ring, groups: make(map[string]*shardGroup, len(groups)), maxReadLag: opts.MaxReadLag}
	var next int64
	for _, gc := range groups {
		if gc.Primary == nil {
			return nil, fmt.Errorf("cluster: group %q has no primary", gc.Name)
		}
		if rt.groups[gc.Name] != nil {
			return nil, fmt.Errorf("cluster: duplicate group %q", gc.Name)
		}
		if err := ring.Add(gc.Name); err != nil {
			return nil, err
		}
		epoch, err := gc.Primary.Epoch(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster: group %q epoch: %w", gc.Name, err)
		}
		nk, err := gc.Primary.NextKey(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster: group %q next key: %w", gc.Name, err)
		}
		if nk > next {
			next = nk
		}
		rt.groups[gc.Name] = &shardGroup{
			name:     gc.Name,
			primary:  gc.Primary,
			standbys: append([]Backend(nil), gc.Standbys...),
			epoch:    epoch,
		}
		rt.names = append(rt.names, gc.Name)
	}
	sort.Strings(rt.names)
	rt.nextKey.Store(next)
	return rt, nil
}

// Groups returns the shard-group names in sorted order.
func (rt *Router) Groups() []string { return append([]string(nil), rt.names...) }

// Owner returns the shard group owning a tuple key.
func (rt *Router) Owner(key int64) string { return rt.ring.Owner(key) }

// Primary returns the backend currently serving the named group's
// writes (it changes on Promote), or nil for an unknown group. Callers
// needing richer access than the Backend interface — a daemon proxying
// reads to its HTTP backends, say — type-assert the result.
func (rt *Router) Primary(name string) Backend {
	g, ok := rt.groups[name]
	if !ok {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.primary
}

// ApplyError reports the shard groups whose sub-batches failed in one
// routed Apply. Groups absent from Failed committed their sub-batches;
// the merged delta the router returned alongside covers exactly those.
type ApplyError struct {
	Failed map[string]error
}

func (e *ApplyError) Error() string {
	names := make([]string, 0, len(e.Failed))
	for n := range e.Failed {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d shard group(s) failed:", len(e.Failed))
	for _, n := range names {
		fmt.Fprintf(&b, " %s: %v;", n, e.Failed[n])
	}
	return strings.TrimSuffix(b.String(), ";")
}

// Apply routes one ChangeSet across the cluster. Unkeyed inserts are
// assigned keys from the router's allocator (written back into cs, like
// a single monitor would); keyed inserts and existing-key ops route by
// their key. The split preserves op order within each group, so
// same-key sequences (insert then update in one batch) stay ordered on
// their shard. Sub-batches run in parallel; deltas merge in sorted
// group order. See Router's doc for cross-shard atomicity.
func (rt *Router) Apply(ctx context.Context, cs *incremental.ChangeSet) (*incremental.Delta, error) {
	if cs == nil || len(cs.Ops) == 0 {
		return &incremental.Delta{}, nil
	}
	// Assign keys up front: routing needs every op's key, and writing
	// assigned keys back before fan-out means even a partly-failed batch
	// reports where each insert was headed.
	for i := range cs.Ops {
		op := &cs.Ops[i]
		if op.Kind == incremental.OpInsert && !op.Keyed() {
			op.Key = rt.nextKey.Add(1) - 1
		}
	}
	sub := make(map[string]*incremental.ChangeSet)
	for i := range cs.Ops {
		op := &cs.Ops[i]
		owner := rt.ring.Owner(op.Key)
		scs := sub[owner]
		if scs == nil {
			scs = &incremental.ChangeSet{}
			sub[owner] = scs
		}
		switch op.Kind {
		case incremental.OpInsert:
			scs.InsertKeyed(op.Key, op.Tuple)
		case incremental.OpDelete:
			scs.Delete(op.Key)
		case incremental.OpUpdate:
			scs.Update(op.Key, op.Attr, op.Value)
		default:
			return nil, fmt.Errorf("cluster: unknown op kind %d", op.Kind)
		}
	}

	// Single-group batches (every single-op ChangeSet, and any batch
	// whose keys happen to share an owner) skip the fan-out machinery:
	// no goroutine, no WaitGroup, no merge. This is the routed write
	// path's common case under key-partitioned load, so the router adds
	// only the ring lookup to the shard's own cost.
	if len(sub) == 1 {
		for name, scs := range sub {
			g := rt.groups[name]
			if g == nil {
				return nil, fmt.Errorf("cluster: no shard group %q", name)
			}
			d, err := rt.applyGroup(ctx, g, scs)
			if err != nil {
				return &incremental.Delta{}, &ApplyError{Failed: map[string]error{name: err}}
			}
			return d, nil
		}
	}

	type result struct {
		name  string
		delta *incremental.Delta
		err   error
	}
	results := make([]result, 0, len(sub))
	for name := range sub {
		results = append(results, result{name: name})
	}
	var wg sync.WaitGroup
	for i := range results {
		r := &results[i]
		g := rt.groups[r.name]
		if g == nil {
			r.err = fmt.Errorf("cluster: no shard group %q", r.name)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.delta, r.err = rt.applyGroup(ctx, g, sub[r.name])
		}()
	}
	wg.Wait()

	// Deterministic merge order: sorted by group name. Key spaces are
	// disjoint across groups, so concatenation is the exact union.
	sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })
	merged := &incremental.Delta{}
	var failed map[string]error
	for _, r := range results {
		if r.err != nil {
			if failed == nil {
				failed = make(map[string]error)
			}
			failed[r.name] = r.err
			continue
		}
		merged.Added = append(merged.Added, r.delta.Added...)
		merged.Removed = append(merged.Removed, r.delta.Removed...)
	}
	if failed != nil {
		return merged, &ApplyError{Failed: failed}
	}
	return merged, nil
}

// applyGroup sends one sub-batch to a group's primary under the
// router's epoch token. On a fencing refusal it re-queries the node's
// epoch and retries once: the stable-address case where the node behind
// the primary endpoint was promoted (operator /promote, VIP re-pointed)
// and the router's token is merely stale. If the node still refuses —
// a genuinely deposed primary — the error surfaces and the operator
// (or the caller's failover policy) promotes via Router.Promote.
func (rt *Router) applyGroup(ctx context.Context, g *shardGroup, cs *incremental.ChangeSet) (*incremental.Delta, error) {
	g.mu.Lock()
	primary, epoch := g.primary, g.epoch
	g.mu.Unlock()
	d, err := primary.Apply(ctx, epoch, cs)
	if err == nil || !errors.Is(err, incremental.ErrFenced) {
		return d, err
	}
	cur, eerr := primary.Epoch(ctx)
	if eerr != nil || cur <= epoch {
		return nil, err
	}
	g.mu.Lock()
	if g.epoch < cur {
		g.epoch = cur
	}
	g.mu.Unlock()
	return primary.Apply(ctx, cur, cs)
}

// Promote fails a shard group over: its first standby is promoted to
// primary under a bumped epoch, the router re-points writes at it (no
// re-seeding — the standby already holds the replicated state), and the
// deposed primary is fenced best-effort. A partitioned old primary that
// cannot be reached is still harmless: its epoch is now stale, so
// followers refuse its chunks and routed writes carry the new epoch it
// cannot match.
func (rt *Router) Promote(ctx context.Context, group string) (uint64, error) {
	g := rt.groups[group]
	if g == nil {
		return 0, fmt.Errorf("cluster: no shard group %q", group)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.standbys) == 0 {
		return 0, fmt.Errorf("cluster: group %q has no standby to promote", group)
	}
	next := g.standbys[0]
	epoch, err := next.Promote(ctx)
	if err != nil {
		return 0, fmt.Errorf("cluster: promoting standby of group %q: %w", group, err)
	}
	deposed := g.primary
	g.primary = next
	g.standbys = g.standbys[1:]
	g.epoch = epoch
	// Best-effort: a reachable deposed primary learns it is fenced right
	// away instead of at its next refused write.
	_ = deposed.Fence(ctx, epoch)
	return epoch, nil
}

// GroupStatus is one shard group's row in Status.
type GroupStatus struct {
	Name     string `json:"name"`
	Epoch    uint64 `json:"epoch"`
	Standbys int    `json:"standbys"`
}

// Status reports every group's routing view in sorted name order.
func (rt *Router) Status() []GroupStatus {
	out := make([]GroupStatus, 0, len(rt.names))
	for _, name := range rt.names {
		g := rt.groups[name]
		g.mu.Lock()
		out = append(out, GroupStatus{Name: name, Epoch: g.epoch, Standbys: len(g.standbys)})
		g.mu.Unlock()
	}
	return out
}

// NextKey exposes the router's key-allocator watermark (diagnostics and
// tests).
func (rt *Router) NextKey() int64 { return rt.nextKey.Load() }
