package cluster_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/incremental"
)

// memCluster builds K memory-backed groups and a router over them.
func memCluster(t *testing.T, k int) (*cluster.Router, map[string]*incremental.Monitor) {
	t.Helper()
	sigma := custSigma(t)
	mons := make(map[string]*incremental.Monitor, k)
	var cfgs []cluster.GroupConfig
	for i := 0; i < k; i++ {
		name := string(rune('a' + i))
		m, err := incremental.New(custSchema(), sigma, incremental.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		mons[name] = m
		cfgs = append(cfgs, cluster.GroupConfig{Name: name, Primary: &cluster.LocalBackend{M: m}})
	}
	rt, err := cluster.NewRouter(context.Background(), cfgs, cluster.Options{VNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	return rt, mons
}

// TestRouterSplitAndWriteback: inserted keys are assigned by the router,
// written back into the caller's ChangeSet, and each tuple lands on the
// shard the ring names as its owner — and nowhere else.
func TestRouterSplitAndWriteback(t *testing.T) {
	rt, mons := memCluster(t, 3)
	rng := rand.New(rand.NewSource(3))
	cs := &incremental.ChangeSet{}
	const n = 64
	for i := 0; i < n; i++ {
		cs.Insert(randTuple(rng))
	}
	if _, err := rt.Apply(context.Background(), cs); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, n)
	for i := range cs.Ops {
		key := cs.Ops[i].Key
		if seen[key] {
			t.Fatalf("key %d assigned twice", key)
		}
		seen[key] = true
		owner := rt.Owner(key)
		for name, m := range mons {
			_, ok := m.Get(key)
			if want := name == owner; ok != want {
				t.Fatalf("key %d: present=%v on shard %s, owner is %s", key, ok, name, owner)
			}
		}
	}
	total := 0
	for _, m := range mons {
		total += m.Len()
	}
	if total != n {
		t.Fatalf("cluster holds %d tuples, inserted %d", total, n)
	}
	// A follow-up batch mixing keyed ops routes by the written-back keys.
	var anyKey int64 = cs.Ops[0].Key
	cs2 := (&incremental.ChangeSet{}).Update(anyKey, "CT", "PHI").Delete(cs.Ops[1].Key)
	if _, err := rt.Apply(context.Background(), cs2); err != nil {
		t.Fatal(err)
	}
	got, ok := mons[rt.Owner(anyKey)].Get(anyKey)
	if !ok || got[5] != "PHI" {
		t.Fatalf("update did not land on owner shard: %v %v", got, ok)
	}
	if _, ok := mons[rt.Owner(cs.Ops[1].Key)].Get(cs.Ops[1].Key); ok {
		t.Fatal("delete did not land on owner shard")
	}
}

// swapBackend is a mutable indirection: the "stable primary address"
// whose serving node changes identity when an operator promotes out of
// band (VIP re-point). The router only ever talks to the address.
type swapBackend struct {
	mu    sync.Mutex
	inner cluster.Backend
}

func (s *swapBackend) get() cluster.Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

func (s *swapBackend) set(b cluster.Backend) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner = b
}

func (s *swapBackend) Apply(ctx context.Context, epoch uint64, cs *incremental.ChangeSet) (*incremental.Delta, error) {
	return s.get().Apply(ctx, epoch, cs)
}
func (s *swapBackend) Epoch(ctx context.Context) (uint64, error)   { return s.get().Epoch(ctx) }
func (s *swapBackend) NextKey(ctx context.Context) (int64, error)  { return s.get().NextKey(ctx) }
func (s *swapBackend) Promote(ctx context.Context) (uint64, error) { return s.get().Promote(ctx) }
func (s *swapBackend) Fence(ctx context.Context, epoch uint64) error {
	return s.get().Fence(ctx, epoch)
}

// TestRouterRetriesStaleEpoch: after an out-of-band promotion behind
// the primary address, the router's first write is refused as fenced,
// and it recovers by re-querying the epoch and retrying once — no
// operator intervention, no Router.Promote.
func TestRouterRetriesStaleEpoch(t *testing.T) {
	ctx := context.Background()
	sigma := custSigma(t)
	p, err := incremental.New(custSchema(), sigma, incremental.Options{Shards: 2, Durable: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := incremental.NewFollower(ctx, sigma, incremental.Options{Shards: 2, Durable: t.TempDir()},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	addr := &swapBackend{inner: &cluster.LocalBackend{M: p}}
	rt, err := cluster.NewRouter(ctx, []cluster.GroupConfig{{Name: "g", Primary: addr}}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	if _, err := rt.Apply(ctx, (&incremental.ChangeSet{}).Insert(randTuple(rng))); err != nil {
		t.Fatal(err)
	}
	for { // drain the standby, then promote it behind the router's back
		n, err := f.Sync(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	p.Fence(f.Monitor().Epoch())
	addr.set(&cluster.LocalBackend{M: f.Monitor()})

	// The router's token still says epoch 0; the write must succeed via
	// the re-query-and-retry path, on the new primary.
	cs := (&incremental.ChangeSet{}).Insert(randTuple(rng))
	if _, err := rt.Apply(ctx, cs); err != nil {
		t.Fatalf("routed write after out-of-band promotion: %v", err)
	}
	if _, ok := f.Monitor().Get(cs.Ops[0].Key); !ok {
		t.Fatal("write did not land on the promoted primary")
	}
	if got := rt.Status()[0].Epoch; got != f.Monitor().Epoch() {
		t.Fatalf("router token not refreshed: %d, node at %d", got, f.Monitor().Epoch())
	}
}
