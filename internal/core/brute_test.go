package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// Brute-force completeness checks: the consistency and implication
// analyses are compared against exhaustive enumeration of small witness
// instances. The enumeration alphabet per attribute is the set of
// constants Σ mentions plus two fresh symbols — exactly the completeness
// argument of the chase-based checkers, validated independently here.

// bruteAlphabet builds the enumeration alphabet per attribute.
func bruteAlphabet(schema *relation.Schema, simples []*Simple) map[string][]relation.Value {
	consts := Constants(simples)
	out := make(map[string][]relation.Value)
	for _, a := range AttrsOf(simples) {
		dom := schema.Domain(a)
		if dom.Finite() {
			out[a] = append([]relation.Value(nil), dom.Values...)
			continue
		}
		vals := append([]relation.Value(nil), consts[a]...)
		vals = append(vals, "\x00f1:"+a, "\x00f2:"+a)
		out[a] = vals
	}
	return out
}

// enumerate calls visit with every assignment of the alphabet to attrs.
func enumerate(attrs []string, alphabet map[string][]relation.Value,
	assign map[string]relation.Value, visit func(map[string]relation.Value) bool) bool {
	if len(attrs) == 0 {
		return visit(assign)
	}
	a := attrs[0]
	for _, v := range alphabet[a] {
		assign[a] = v
		if enumerate(attrs[1:], alphabet, assign, visit) {
			return true
		}
	}
	delete(assign, a)
	return false
}

// satisfiesSimples checks {tuples} ⊨ simples directly from the semantics.
func satisfiesSimples(tuples []map[string]relation.Value, simples []*Simple) bool {
	for _, s := range simples {
		for _, t1 := range tuples {
			for _, t2 := range tuples {
				matches := true
				for i, a := range s.X {
					if t1[a] != t2[a] || !s.TX[i].Matches(t1[a]) {
						matches = false
						break
					}
				}
				if !matches {
					continue
				}
				if t1[s.A] != t2[s.A] || !s.PA.Matches(t1[s.A]) {
					return false
				}
			}
		}
	}
	return true
}

func randomSimpleOver(rng *rand.Rand, attrs []string, vals []relation.Value) *Simple {
	perm := rng.Perm(len(attrs))
	nx := rng.Intn(3) // 0, 1 or 2 LHS attributes
	s := &Simple{}
	for i := 0; i < nx; i++ {
		s.X = append(s.X, attrs[perm[i]])
		if rng.Intn(2) == 0 {
			s.TX = append(s.TX, W())
		} else {
			s.TX = append(s.TX, C(vals[rng.Intn(len(vals))]))
		}
	}
	s.A = attrs[perm[nx]]
	if rng.Intn(2) == 0 {
		s.PA = W()
	} else {
		s.PA = C(vals[rng.Intn(len(vals))])
	}
	return s
}

// TestConsistencyAgainstBruteForce: Consistent agrees with exhaustive
// single-tuple search on random CFD sets, over unbounded AND finite
// domains.
func TestConsistencyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	attrs := []string{"A", "B", "C"}
	vals := []relation.Value{"0", "1"}
	schemas := []*relation.Schema{
		relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"), relation.Attr("C")),
		relation.MustSchema("R",
			relation.Attribute{Name: "A", Domain: relation.Enum("bin", "0", "1")},
			relation.Attribute{Name: "B", Domain: relation.Enum("bin", "0", "1")},
			relation.Attr("C")),
	}
	for iter := 0; iter < 400; iter++ {
		schema := schemas[iter%2]
		n := 1 + rng.Intn(4)
		var sigma []*CFD
		var simples []*Simple
		for i := 0; i < n; i++ {
			s := randomSimpleOver(rng, attrs, vals)
			simples = append(simples, s)
			sigma = append(sigma, s.CFD())
		}
		got, witness, err := Consistent(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		alphabet := bruteAlphabet(schema, simples)
		attrList := AttrsOf(simples)
		want := enumerate(attrList, alphabet, map[string]relation.Value{},
			func(assign map[string]relation.Value) bool {
				return satisfiesSimples([]map[string]relation.Value{assign}, simples)
			})
		if got != want {
			t.Fatalf("iter %d: Consistent = %v, brute force = %v\nΣ: %v", iter, got, want, simples)
		}
		if got && !satisfiesSimples([]map[string]relation.Value{witness}, simples) {
			t.Fatalf("iter %d: witness %v does not satisfy Σ", iter, witness)
		}
	}
}

// TestImplicationAgainstBruteForce: Implies agrees with exhaustive
// two-tuple counterexample search on random premise sets and targets.
func TestImplicationAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	attrs := []string{"A", "B", "C"}
	vals := []relation.Value{"0", "1"}
	schemas := []*relation.Schema{
		relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"), relation.Attr("C")),
		relation.MustSchema("R",
			relation.Attribute{Name: "A", Domain: relation.Enum("bin", "0", "1")},
			relation.Attr("B"), relation.Attr("C")),
	}
	for iter := 0; iter < 150; iter++ {
		schema := schemas[iter%2]
		n := 1 + rng.Intn(3)
		var sigma []*CFD
		var premises []*Simple
		for i := 0; i < n; i++ {
			s := randomSimpleOver(rng, attrs, vals)
			premises = append(premises, s)
			sigma = append(sigma, s.CFD())
		}
		target := randomSimpleOver(rng, attrs, vals)
		got, err := Implies(schema, sigma, target.CFD())
		if err != nil {
			t.Fatal(err)
		}

		all := append(append([]*Simple(nil), premises...), target)
		alphabet := bruteAlphabet(schema, all)
		attrList := AttrsOf(all)
		// Brute force: search a ≤2-tuple instance satisfying Σ and
		// violating the target.
		foundCounter := enumerate(attrList, alphabet, map[string]relation.Value{},
			func(t1 map[string]relation.Value) bool {
				t1c := make(map[string]relation.Value, len(t1))
				for k, v := range t1 {
					t1c[k] = v
				}
				return enumerate(attrList, alphabet, map[string]relation.Value{},
					func(t2 map[string]relation.Value) bool {
						inst := []map[string]relation.Value{t1c, t2}
						return satisfiesSimples(inst, append([]*Simple(nil), premises...)) &&
							!satisfiesSimples(inst, []*Simple{target})
					})
			})
		if got != !foundCounter {
			t.Fatalf("iter %d: Implies = %v, brute force counterexample = %v\nΣ: %v\nϕ: %v",
				iter, got, foundCounter, premises, target)
		}
	}
}
