package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// CFD is a conditional functional dependency ϕ = (R: X → Y, Tp): a standard
// embedded FD X → Y together with a pattern tableau Tp (Section 2 of the
// paper). Attribute names refer to a relation schema supplied at use sites;
// a CFD value itself is schema-independent so the same constraint can be
// checked against any instance carrying the named attributes.
type CFD struct {
	// LHS and RHS are the attribute lists X and Y of the embedded FD.
	LHS []string
	RHS []string
	// Tableau is the pattern tableau Tp; every row has len(LHS) X-cells and
	// len(RHS) Y-cells.
	Tableau []PatternRow
}

// NewCFD builds a CFD and validates its internal shape (non-empty RHS,
// row arities, no duplicate attributes within a side).
func NewCFD(lhs, rhs []string, rows ...PatternRow) (*CFD, error) {
	c := &CFD{LHS: append([]string(nil), lhs...), RHS: append([]string(nil), rhs...)}
	for _, r := range rows {
		c.Tableau = append(c.Tableau, r.Clone())
	}
	if err := c.check(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCFD is NewCFD but panics on error; for fixed literal constraints.
func MustCFD(lhs, rhs []string, rows ...PatternRow) *CFD {
	c, err := NewCFD(lhs, rhs, rows...)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *CFD) check() error {
	if len(c.RHS) == 0 {
		return fmt.Errorf("core: CFD must have a non-empty RHS")
	}
	seen := make(map[string]bool)
	for _, a := range c.LHS {
		if a == "" {
			return fmt.Errorf("core: CFD has an empty LHS attribute name")
		}
		if seen[a] {
			return fmt.Errorf("core: duplicate LHS attribute %q", a)
		}
		seen[a] = true
	}
	seen = make(map[string]bool)
	for _, a := range c.RHS {
		if a == "" {
			return fmt.Errorf("core: CFD has an empty RHS attribute name")
		}
		if seen[a] {
			return fmt.Errorf("core: duplicate RHS attribute %q", a)
		}
		seen[a] = true
	}
	for i, r := range c.Tableau {
		if len(r.X) != len(c.LHS) || len(r.Y) != len(c.RHS) {
			return fmt.Errorf("core: tableau row %d has arity (%d,%d), want (%d,%d)",
				i, len(r.X), len(r.Y), len(c.LHS), len(c.RHS))
		}
	}
	return nil
}

// Clone deep-copies the CFD.
func (c *CFD) Clone() *CFD {
	out := &CFD{LHS: append([]string(nil), c.LHS...), RHS: append([]string(nil), c.RHS...)}
	for _, r := range c.Tableau {
		out.Tableau = append(out.Tableau, r.Clone())
	}
	return out
}

// Attrs returns the set X ∪ Y in deterministic order (LHS order then new
// RHS attributes).
func (c *CFD) Attrs() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range c.LHS {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range c.RHS {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// Validate checks the CFD against a schema: every attribute must exist and
// every constant must lie in its attribute's domain.
func (c *CFD) Validate(schema *relation.Schema) error {
	if err := c.check(); err != nil {
		return err
	}
	checkSide := func(names []string, cell func(PatternRow) []Pattern) error {
		for i, a := range names {
			if _, ok := schema.Index(a); !ok {
				return fmt.Errorf("core: CFD attribute %q not in schema %q", a, schema.Name)
			}
			dom := schema.Domain(a)
			for ri, r := range c.Tableau {
				p := cell(r)[i]
				if p.Kind == Const && !dom.Contains(p.Val) {
					return fmt.Errorf("core: tableau row %d: constant %q outside domain of %q", ri, p.Val, a)
				}
			}
		}
		return nil
	}
	if err := checkSide(c.LHS, func(r PatternRow) []Pattern { return r.X }); err != nil {
		return err
	}
	return checkSide(c.RHS, func(r PatternRow) []Pattern { return r.Y })
}

// IsStandardFD reports whether the CFD is a classical FD in CFD clothing:
// a single all-'_' pattern row (first special case of Section 2).
func (c *CFD) IsStandardFD() bool {
	if len(c.Tableau) != 1 {
		return false
	}
	for _, p := range c.Tableau[0].X {
		if p.Kind != Wildcard {
			return false
		}
	}
	for _, p := range c.Tableau[0].Y {
		if p.Kind != Wildcard {
			return false
		}
	}
	return true
}

// IsInstanceFD reports whether the CFD is an instance-level FD (second
// special case of Section 2): a single all-constant pattern row.
func (c *CFD) IsInstanceFD() bool {
	if len(c.Tableau) != 1 {
		return false
	}
	for _, p := range c.Tableau[0].X {
		if p.Kind != Const {
			return false
		}
	}
	for _, p := range c.Tableau[0].Y {
		if p.Kind != Const {
			return false
		}
	}
	return true
}

// String renders the CFD in the library's text notation, one line per
// pattern row, e.g. "[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]".
func (c *CFD) String() string {
	if len(c.Tableau) == 0 {
		return fmt.Sprintf("[%s] -> [%s]  # empty tableau", strings.Join(c.LHS, ", "), strings.Join(c.RHS, ", "))
	}
	lines := make([]string, 0, len(c.Tableau))
	for _, r := range c.Tableau {
		lines = append(lines, formatRow(c.LHS, c.RHS, r))
	}
	return strings.Join(lines, "\n")
}

func formatRow(lhs, rhs []string, r PatternRow) string {
	side := func(names []string, pats []Pattern) string {
		parts := make([]string, len(names))
		for i, a := range names {
			switch pats[i].Kind {
			case Wildcard:
				parts[i] = a
			case DontCare:
				parts[i] = a + "=@"
			default:
				parts[i] = a + "=" + pats[i].String()
			}
		}
		return strings.Join(parts, ", ")
	}
	return fmt.Sprintf("[%s] -> [%s]", side(lhs, r.X), side(rhs, r.Y))
}

// Simple is a CFD in the normal form of Section 3.2: a single RHS attribute
// A and a single pattern tuple tp, written (R: X → A, tp). The inference
// system, the consistency/implication analyses and MinCover all operate on
// Simple values; a general CFD is equivalent to the set of its simples.
type Simple struct {
	X  []string
	A  string
	TX []Pattern // pattern over X, aligned with X
	PA Pattern   // pattern over A
}

// Clone deep-copies the simple CFD.
func (s *Simple) Clone() *Simple {
	return &Simple{
		X:  append([]string(nil), s.X...),
		A:  s.A,
		TX: append([]Pattern(nil), s.TX...),
		PA: s.PA,
	}
}

// String renders the simple CFD in text notation.
func (s *Simple) String() string {
	return formatRow(s.X, []string{s.A}, PatternRow{X: s.TX, Y: []Pattern{s.PA}})
}

// Equal reports structural equality (same attribute lists, same patterns).
func (s *Simple) Equal(t *Simple) bool {
	if s.A != t.A || len(s.X) != len(t.X) {
		return false
	}
	for i := range s.X {
		if s.X[i] != t.X[i] || s.TX[i] != t.TX[i] {
			return false
		}
	}
	return s.PA == t.PA
}

// CFD converts the simple back to a general, single-row CFD.
func (s *Simple) CFD() *CFD {
	return MustCFD(s.X, []string{s.A}, PatternRow{X: append([]Pattern(nil), s.TX...), Y: []Pattern{s.PA}})
}

// Normalize decomposes ϕ = (X → Y, Tp) into the equivalent set Σϕ of
// normal-form CFDs: one Simple per (RHS attribute, pattern row) pair, as in
// Section 3.2. '@' cells cannot occur in user CFDs and cause an error.
func (c *CFD) Normalize() ([]*Simple, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	var out []*Simple
	for ri, r := range c.Tableau {
		for _, p := range r.X {
			if p.Kind == DontCare {
				return nil, fmt.Errorf("core: tableau row %d contains '@'; don't-care cells only arise in merged tableaux", ri)
			}
		}
		for yi, a := range c.RHS {
			if r.Y[yi].Kind == DontCare {
				return nil, fmt.Errorf("core: tableau row %d contains '@'; don't-care cells only arise in merged tableaux", ri)
			}
			out = append(out, &Simple{
				X:  append([]string(nil), c.LHS...),
				A:  a,
				TX: append([]Pattern(nil), r.X...),
				PA: r.Y[yi],
			})
		}
	}
	return out, nil
}

// NormalizeSet normalizes every CFD of Σ into one flat list of simples.
func NormalizeSet(sigma []*CFD) ([]*Simple, error) {
	var out []*Simple
	for i, c := range sigma {
		ss, err := c.Normalize()
		if err != nil {
			return nil, fmt.Errorf("core: CFD %d: %w", i, err)
		}
		out = append(out, ss...)
	}
	return out, nil
}

// MergeSameFD groups CFDs that share the same embedded FD (same LHS and RHS
// lists, order-sensitive) into single CFDs with multi-row tableaux. The
// text-notation loader uses it so that consecutive single-row constraints
// over one FD form one tableau, as in the paper's Figure 2.
func MergeSameFD(sigma []*CFD) []*CFD {
	type key struct{ lhs, rhs string }
	order := make([]key, 0, len(sigma))
	groups := make(map[key]*CFD)
	for _, c := range sigma {
		k := key{strings.Join(c.LHS, "\x00"), strings.Join(c.RHS, "\x00")}
		if g, ok := groups[k]; ok {
			for _, r := range c.Tableau {
				g.Tableau = append(g.Tableau, r.Clone())
			}
			continue
		}
		groups[k] = c.Clone()
		order = append(order, k)
	}
	out := make([]*CFD, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// Constants returns, per attribute, the sorted set of constants that Σ
// mentions on that attribute. The consistency and implication analyses use
// it to bound their witness search.
func Constants(simples []*Simple) map[string][]relation.Value {
	sets := make(map[string]map[relation.Value]bool)
	add := func(attr string, p Pattern) {
		if p.Kind != Const {
			return
		}
		if sets[attr] == nil {
			sets[attr] = make(map[relation.Value]bool)
		}
		sets[attr][p.Val] = true
	}
	for _, s := range simples {
		for i, a := range s.X {
			add(a, s.TX[i])
		}
		add(s.A, s.PA)
	}
	out := make(map[string][]relation.Value, len(sets))
	for a, set := range sets {
		vals := make([]relation.Value, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[a] = vals
	}
	return out
}

// AttrsOf returns the sorted set of attributes mentioned by the simples.
func AttrsOf(simples []*Simple) []string {
	set := make(map[string]bool)
	for _, s := range simples {
		for _, a := range s.X {
			set[a] = true
		}
		set[s.A] = true
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
