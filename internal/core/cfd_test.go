package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestNewCFDValidation(t *testing.T) {
	if _, err := NewCFD([]string{"A"}, nil); err == nil {
		t.Error("empty RHS must be rejected")
	}
	if _, err := NewCFD([]string{"A", "A"}, []string{"B"}); err == nil {
		t.Error("duplicate LHS attributes must be rejected")
	}
	if _, err := NewCFD([]string{"A"}, []string{"B", "B"}); err == nil {
		t.Error("duplicate RHS attributes must be rejected")
	}
	if _, err := NewCFD([]string{""}, []string{"B"}); err == nil {
		t.Error("empty attribute names must be rejected")
	}
	if _, err := NewCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}}); err == nil {
		t.Error("row arity mismatch must be rejected")
	}
	// A on both sides is legal (the t[AL]/t[AR] case).
	if _, err := NewCFD([]string{"A"}, []string{"A"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("x")}}); err != nil {
		t.Errorf("attribute on both sides should be legal: %v", err)
	}
}

func TestCFDCloneIsDeep(t *testing.T) {
	orig := phi2()
	c := orig.Clone()
	c.Tableau[1].X[0] = C("99")
	c.LHS[0] = "XX"
	if orig.Tableau[1].X[0] != C("01") || orig.LHS[0] != "CC" {
		t.Error("Clone must not share storage")
	}
}

func TestCFDAttrs(t *testing.T) {
	c := MustCFD([]string{"A", "B"}, []string{"B", "C"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W(), W()}})
	if got := c.Attrs(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("Attrs = %v", got)
	}
}

func TestValidateDomainConstants(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attr("B"))
	good := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("true")}, Y: []Pattern{C("anything")}})
	if err := good.Validate(schema); err != nil {
		t.Errorf("in-domain constant rejected: %v", err)
	}
	bad := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("maybe")}, Y: []Pattern{W()}})
	if err := bad.Validate(schema); err == nil {
		t.Error("out-of-domain constant must be rejected")
	}
}

func TestNormalize(t *testing.T) {
	// ϕ2: 3 rows × 3 RHS attributes = 9 simples.
	simples, err := phi2().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(simples) != 9 {
		t.Fatalf("got %d simples, want 9", len(simples))
	}
	// Each preserves the LHS and one RHS attribute.
	for _, s := range simples {
		if strings.Join(s.X, ",") != "CC,AC,PN" {
			t.Errorf("simple LHS = %v", s.X)
		}
		if s.A != "STR" && s.A != "CT" && s.A != "ZIP" {
			t.Errorf("simple RHS = %s", s.A)
		}
	}
	// Semantics preserved: the instance violates ϕ2 iff it violates some
	// simple.
	rel := custInstance()
	direct, err := Satisfies(rel, phi2())
	if err != nil {
		t.Fatal(err)
	}
	viaSimples := true
	for _, s := range simples {
		ok, err := Satisfies(rel, s.CFD())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			viaSimples = false
		}
	}
	if direct != viaSimples {
		t.Errorf("normalization changed semantics: direct=%v simples=%v", direct, viaSimples)
	}
}

func TestNormalizeRejectsDontCare(t *testing.T) {
	c := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{AtSign()}, Y: []Pattern{W()}})
	if _, err := c.Normalize(); err == nil {
		t.Error("'@' in a user CFD must be rejected by Normalize")
	}
}

func TestMergeSameFD(t *testing.T) {
	a := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("1")}, Y: []Pattern{W()}})
	b := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("2")}, Y: []Pattern{W()}})
	c := MustCFD([]string{"B"}, []string{"A"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	merged := MergeSameFD([]*CFD{a, b, c})
	if len(merged) != 2 {
		t.Fatalf("merged %d CFDs, want 2", len(merged))
	}
	if len(merged[0].Tableau) != 2 {
		t.Errorf("first CFD has %d rows, want 2", len(merged[0].Tableau))
	}
	// Attribute ORDER matters for merging: [A,B]→C and [B,A]→C stay apart.
	d := MustCFD([]string{"A", "B"}, []string{"C"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}})
	e := MustCFD([]string{"B", "A"}, []string{"C"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}})
	if got := MergeSameFD([]*CFD{d, e}); len(got) != 2 {
		t.Errorf("order-different FDs merged: %d", len(got))
	}
}

func TestConstantsAndAttrsOf(t *testing.T) {
	simples, err := NormalizeSet([]*CFD{phi2(), phi3()})
	if err != nil {
		t.Fatal(err)
	}
	consts := Constants(simples)
	if !reflect.DeepEqual(consts["CC"], []relation.Value{"01", "44"}) {
		t.Errorf("CC constants = %v", consts["CC"])
	}
	if !reflect.DeepEqual(consts["CT"], []relation.Value{"GLA", "MH", "NYC", "PHI"}) {
		t.Errorf("CT constants = %v", consts["CT"])
	}
	if _, ok := consts["PN"]; ok {
		t.Error("PN has no constants")
	}
	attrs := AttrsOf(simples)
	if !reflect.DeepEqual(attrs, []string{"AC", "CC", "CT", "PN", "STR", "ZIP"}) {
		t.Errorf("AttrsOf = %v", attrs)
	}
}

func TestSimpleEqualAndString(t *testing.T) {
	s := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{C("a")}, PA: W()}
	if !s.Equal(s.Clone()) {
		t.Error("clone must be Equal")
	}
	other := s.Clone()
	other.PA = C("b")
	if s.Equal(other) {
		t.Error("different PA must not be Equal")
	}
	if s.String() != "[A=a] -> [B]" {
		t.Errorf("String = %q", s.String())
	}
	// Round trip through CFD().
	back, err := s.CFD().Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !back[0].Equal(s) {
		t.Errorf("CFD() round trip = %v", back)
	}
}

func TestIsStandardAndInstanceFD(t *testing.T) {
	multi := phi2()
	if multi.IsStandardFD() || multi.IsInstanceFD() {
		t.Error("ϕ2 is neither a standard nor an instance FD")
	}
	empty := &CFD{LHS: []string{"A"}, RHS: []string{"B"}}
	if empty.IsStandardFD() || empty.IsInstanceFD() {
		t.Error("empty tableau is neither")
	}
}
