package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// Cross-implementation properties tying the reasoning machinery together.

// TestSatisfactionClosedUnderSubinstances validates the foundation both
// the consistency and implication analyses rest on: CFDs are universal
// constraints, so any sub-instance of a satisfying instance satisfies too.
func TestSatisfactionClosedUnderSubinstances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	schema := abSchema()
	vals := []relation.Value{"0", "1", "2"}
	for iter := 0; iter < 120; iter++ {
		var sigma []*CFD
		for i := 0; i < 2; i++ {
			s := randomSimpleOver(rng, []string{"A", "B", "C"}, vals[:2])
			sigma = append(sigma, s.CFD())
		}
		rel := relation.New(schema)
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			rel.MustInsert(vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)])
		}
		ok, err := SatisfiesSet(rel, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		// Every sub-instance must satisfy too.
		sub := relation.New(schema)
		for i := 0; i < rel.Len(); i++ {
			if rng.Intn(2) == 0 {
				sub.Tuples = append(sub.Tuples, rel.Tuples[i])
			}
		}
		okSub, err := SatisfiesSet(sub, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !okSub {
			t.Fatalf("sub-instance violates Σ that the full instance satisfies\nΣ: %v %v\nfull:\n%v\nsub:\n%v",
				sigma[0], sigma[1], rel, sub)
		}
	}
}

// TestImpliedCFDsHoldOnSatisfyingInstances: semantic soundness of Implies
// against instance-level satisfaction (complements the brute-force tests).
func TestImpliedCFDsHoldOnSatisfyingInstances(t *testing.T) {
	schema := custSchema()
	sigma := []*CFD{phi1(), phi2(), phi3()}
	// ϕ2 implies its own weakenings, e.g. dropping the 908 row.
	weakened := MustCFD([]string{"CC", "AC", "PN"}, []string{"STR", "CT", "ZIP"},
		phi2().Tableau[0].Clone(), phi2().Tableau[2].Clone())
	ok, err := Implies(schema, sigma, weakened)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a CFD must imply its row-subset weakening")
	}
	// Conversely the weakening does not imply ϕ2.
	ok, err = Implies(schema, []*CFD{weakened}, phi2())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("row-subset weakening must not imply the original")
	}
}

// TestWitnessInstanceRespectsDomains: witness materialization picks
// domain values for finite-domain attributes it did not constrain.
func TestWitnessInstanceRespectsDomains(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attr("B"))
	sigma := []*CFD{MustCFD(nil, []string{"B"}, PatternRow{Y: []Pattern{C("b")}})}
	ok, witness, err := Consistent(schema, sigma)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	inst := WitnessInstance(schema, witness)
	if got := inst.Tuples[0][0]; got != "true" && got != "false" {
		t.Errorf("finite-domain attribute filled with %q", got)
	}
	if inst.Tuples[0][1] != "b" {
		t.Errorf("constrained attribute = %q, want b", inst.Tuples[0][1])
	}
}

// TestMinCoverNeverGrows: |cover| ≤ |normalized Σ| on random inputs, and
// the cover is always equivalent to Σ.
func TestMinCoverNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	schema := abSchema()
	vals := []relation.Value{"0", "1"}
	for iter := 0; iter < 25; iter++ {
		var sigma []*CFD
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			sigma = append(sigma, randomSimpleOver(rng, []string{"A", "B", "C"}, vals).CFD())
		}
		consistent, _, err := Consistent(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		cover, err := MinimalCover(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !consistent {
			if len(cover) != 0 {
				t.Fatalf("inconsistent Σ must give the empty cover, got %v", cover)
			}
			continue
		}
		simples, err := NormalizeSet(sigma)
		if err != nil {
			t.Fatal(err)
		}
		if len(cover) > len(simples) {
			t.Fatalf("cover grew: %d > %d", len(cover), len(simples))
		}
		eq, err := Equivalent(schema, sigma, CoverToCFDs(cover))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("cover not equivalent to Σ\nΣ: %v\ncover: %v", sigma, cover)
		}
	}
}
