package core

import (
	"fmt"

	"repro/internal/relation"
)

// Consistency analysis (Section 3.1 of the paper).
//
// A set Σ of CFDs is consistent iff some nonempty instance satisfies it.
// CFD satisfaction is a universal constraint, so any nonempty sub-instance
// of a satisfying instance also satisfies Σ; hence Σ is consistent iff a
// SINGLE-TUPLE witness exists. For a single tuple t the semantics collapses
// to: for every normal-form (X → A, tp):  t[X] ≍ tp[X]  ⟹  t[A] ≍ tp[A].
//
// The witness search enumerates, per attribute, the constants Σ mentions on
// that attribute plus one fresh value (or the whole domain when the
// attribute's domain is finite — the source of the NP-completeness of
// Theorem 3.1). Fresh-first value ordering makes the common consistent case
// effectively linear in |Σ|, matching the practical O(|Σ|²) regime of
// Theorem 3.2 for predefined schemas.

// freshValue returns the i-th synthetic value for an attribute. It embeds a
// NUL byte so it can never collide with a real data constant.
func freshValue(attr string, i int) relation.Value {
	return fmt.Sprintf("\x00fresh:%s:%d", attr, i)
}

// candidateValues builds the per-attribute candidate sets for witness
// search: fresh values first, then every constant Σ mentions; attributes
// with finite domains enumerate the domain instead.
func candidateValues(schema *relation.Schema, simples []*Simple, freshPerAttr int) map[string][]relation.Value {
	consts := Constants(simples)
	out := make(map[string][]relation.Value)
	for _, a := range AttrsOf(simples) {
		var dom *relation.Domain
		if schema != nil {
			dom = schema.Domain(a)
		}
		if dom.Finite() {
			// Finite domain: fresh values are unavailable; order the domain
			// with non-mentioned values first (they behave like fresh ones).
			mentioned := make(map[relation.Value]bool)
			for _, v := range consts[a] {
				mentioned[v] = true
			}
			var vals []relation.Value
			for _, v := range dom.Values {
				if !mentioned[v] {
					vals = append(vals, v)
				}
			}
			for _, v := range dom.Values {
				if mentioned[v] {
					vals = append(vals, v)
				}
			}
			out[a] = vals
			continue
		}
		vals := make([]relation.Value, 0, freshPerAttr+len(consts[a]))
		for i := 0; i < freshPerAttr; i++ {
			vals = append(vals, freshValue(a, i))
		}
		vals = append(vals, consts[a]...)
		out[a] = vals
	}
	return out
}

// Consistent determines whether Σ admits a nonempty instance (Theorem 3.2
// regime: predefined schema). On success it returns a single-tuple witness
// as an attribute→value map over the attributes Σ mentions (values not
// constrained by Σ are fresh placeholders).
//
// schema may be nil, in which case every attribute is treated as having an
// unbounded domain (the "no finite-domain attributes" case of Theorem 3.2).
func Consistent(schema *relation.Schema, sigma []*CFD) (bool, map[string]relation.Value, error) {
	simples, err := NormalizeSet(sigma)
	if err != nil {
		return false, nil, err
	}
	if schema != nil {
		for _, c := range sigma {
			if err := c.Validate(schema); err != nil {
				return false, nil, err
			}
		}
	}
	return consistentSimples(schema, simples, nil)
}

// ConsistentWith decides the (Σ, B = b) consistency question of Section 3.2
// (used by inference rules FD7 and FD8): does some instance I ⊨ Σ contain a
// tuple t with t[B] = b?
func ConsistentWith(schema *relation.Schema, sigma []*CFD, attr string, val relation.Value) (bool, error) {
	simples, err := NormalizeSet(sigma)
	if err != nil {
		return false, err
	}
	if schema != nil {
		if dom := schema.Domain(attr); !dom.Contains(val) {
			return false, nil
		}
	}
	ok, _, err := consistentSimples(schema, simples, map[string]relation.Value{attr: val})
	return ok, err
}

func consistentSimples(schema *relation.Schema, simples []*Simple, pre map[string]relation.Value) (bool, map[string]relation.Value, error) {
	attrs := AttrsOf(simples)
	for a := range pre {
		found := false
		for _, b := range attrs {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			attrs = append(attrs, a)
		}
	}
	cand := candidateValues(schema, simples, 1)
	for _, a := range attrs {
		if _, ok := cand[a]; !ok {
			cand[a] = []relation.Value{freshValue(a, 0)}
		}
	}
	s := &witnessSearch{attrs: attrs, cand: cand, cons: simples, assign: make(map[string]relation.Value)}
	for a, v := range pre {
		s.assign[a] = v
		s.cand[a] = []relation.Value{v}
	}
	if !s.checkPartial() {
		return false, nil, nil
	}
	if s.solve(0) {
		witness := make(map[string]relation.Value, len(s.assign))
		for a, v := range s.assign {
			witness[a] = v
		}
		return true, witness, nil
	}
	return false, nil, nil
}

type witnessSearch struct {
	attrs  []string
	cand   map[string][]relation.Value
	cons   []*Simple
	assign map[string]relation.Value
}

func (s *witnessSearch) solve(i int) bool {
	for i < len(s.attrs) {
		if _, done := s.assign[s.attrs[i]]; !done {
			break
		}
		i++
	}
	if i == len(s.attrs) {
		return s.checkPartial() // everything assigned: full check
	}
	a := s.attrs[i]
	for _, v := range s.cand[a] {
		s.assign[a] = v
		if s.checkPartial() && s.solve(i+1) {
			return true
		}
		delete(s.assign, a)
	}
	return false
}

// checkPartial reports whether the current partial assignment is still
// extendable: no constraint is determined-violated. A constraint
// (X → A, tp) is determined-violated when the X-match is already forced
// (every constant X-cell is assigned and equal) and the A-conclusion is
// already refuted (tp[A] is a constant and t[A] is assigned to a different
// value).
func (s *witnessSearch) checkPartial() bool {
	for _, c := range s.cons {
		if s.violated(c) {
			return false
		}
	}
	return true
}

func (s *witnessSearch) violated(c *Simple) bool {
	for i, a := range c.X {
		p := c.TX[i]
		if p.Kind != Const {
			continue // wildcard matches whatever the value becomes
		}
		v, ok := s.assign[a]
		if !ok {
			return false // match undetermined
		}
		if v != p.Val {
			return false // match determined-false: constraint satisfied
		}
	}
	// X-match is forced.
	if c.PA.Kind != Const {
		return false
	}
	v, ok := s.assign[c.A]
	return ok && v != c.PA.Val
}
