package core

import (
	"testing"

	"repro/internal/relation"
)

func abSchema() *relation.Schema {
	return relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"), relation.Attr("C"))
}

// TestExample31Conflict reproduces the first half of Example 3.1:
// ψ1 = ([A] → [B], {(_, b), (_, c)}) admits no nonempty instance.
func TestExample31Conflict(t *testing.T) {
	psi1 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("b")}},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}},
	)
	ok, _, err := Consistent(abSchema(), []*CFD{psi1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ψ1 must be inconsistent: tp forces B = b and B = c simultaneously")
	}
}

// TestExample31FiniteDomain reproduces the second half of Example 3.1:
// with dom(A) = bool, ψ2 = ([A]→[B], {(true,b1),(false,b2)}) and
// ψ3 = ([B]→[A], {(b1,false),(b2,true)}) are separately consistent but
// jointly inconsistent.
func TestExample31FiniteDomain(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attr("B"),
	)
	psi2 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("true")}, Y: []Pattern{C("b1")}},
		PatternRow{X: []Pattern{C("false")}, Y: []Pattern{C("b2")}},
	)
	psi3 := MustCFD([]string{"B"}, []string{"A"},
		PatternRow{X: []Pattern{C("b1")}, Y: []Pattern{C("false")}},
		PatternRow{X: []Pattern{C("b2")}, Y: []Pattern{C("true")}},
	)
	if ok, _, err := Consistent(schema, []*CFD{psi2}); err != nil || !ok {
		t.Errorf("ψ2 alone should be consistent (err=%v)", err)
	}
	if ok, _, err := Consistent(schema, []*CFD{psi3}); err != nil || !ok {
		t.Errorf("ψ3 alone should be consistent (err=%v)", err)
	}
	ok, _, err := Consistent(schema, []*CFD{psi2, psi3})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{ψ2, ψ3} must be inconsistent over dom(A) = bool")
	}
	// The same pair IS consistent when dom(A) is unbounded: pick a fresh A.
	schemaInf := relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"))
	ok, witness, err := Consistent(schemaInf, []*CFD{psi2, psi3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("{ψ2, ψ3} should be consistent when dom(A) is unbounded")
	}
	if ok {
		// The witness must avoid both bound A-values and both B-values'
		// forced complements; sanity check it satisfies the set.
		inst := WitnessInstance(schemaInf, witness)
		if sat, _ := SatisfiesSet(inst, []*CFD{psi2, psi3}); !sat {
			t.Errorf("witness %v does not satisfy the set", witness)
		}
	}
}

// TestConsistentWitnessSatisfies: whenever Consistent says yes, the witness
// instance it returns must actually satisfy Σ.
func TestConsistentWitnessSatisfies(t *testing.T) {
	sets := [][]*CFD{
		{phi1()}, {phi2()}, {phi3()},
		{phi1(), phi2(), phi3()},
		{MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{C("a1")}, Y: []Pattern{C("b1")}},
			PatternRow{X: []Pattern{C("a2")}, Y: []Pattern{C("b2")}},
		)},
	}
	for i, sigma := range sets {
		schema := custSchema()
		if i == len(sets)-1 {
			schema = abSchema()
		}
		ok, witness, err := Consistent(schema, sigma)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("set %d should be consistent", i)
			continue
		}
		inst := WitnessInstance(schema, witness)
		if sat, err := SatisfiesSet(inst, sigma); err != nil || !sat {
			t.Errorf("set %d: witness %v does not satisfy Σ (err=%v)", i, witness, err)
		}
	}
}

// TestConsistentWith checks the (Σ, B = b) side condition used by FD7/FD8,
// on the finite-domain set of Example 3.1: neither (Σ, A=true) nor
// (Σ, A=false) is consistent.
func TestConsistentWith(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attr("B"),
	)
	psi2 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("true")}, Y: []Pattern{C("b1")}},
		PatternRow{X: []Pattern{C("false")}, Y: []Pattern{C("b2")}},
	)
	psi3 := MustCFD([]string{"B"}, []string{"A"},
		PatternRow{X: []Pattern{C("b1")}, Y: []Pattern{C("false")}},
		PatternRow{X: []Pattern{C("b2")}, Y: []Pattern{C("true")}},
	)
	sigma := []*CFD{psi2, psi3}
	for _, v := range []relation.Value{"true", "false"} {
		ok, err := ConsistentWith(schema, sigma, "A", v)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("(Σ, A=%s) should be inconsistent (Example 3.1)", v)
		}
	}
	// With ψ2 alone, both values are fine.
	for _, v := range []relation.Value{"true", "false"} {
		ok, err := ConsistentWith(schema, []*CFD{psi2}, "A", v)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("({ψ2}, A=%s) should be consistent", v)
		}
	}
	// A value outside a finite domain is never consistent.
	ok, err := ConsistentWith(schema, []*CFD{psi2}, "A", "maybe")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("(Σ, A=maybe) must be inconsistent: 'maybe' ∉ bool")
	}
}

// TestEmptySetConsistent: the empty CFD set is trivially consistent.
func TestEmptySetConsistent(t *testing.T) {
	ok, _, err := Consistent(abSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("∅ must be consistent")
	}
}

// TestConstantForcing: (∅ → A, (a)) together with (∅ → A, (b)) is the
// minimal inconsistent pair.
func TestConstantForcing(t *testing.T) {
	ca := MustCFD(nil, []string{"A"}, PatternRow{Y: []Pattern{C("a")}})
	cb := MustCFD(nil, []string{"A"}, PatternRow{Y: []Pattern{C("b")}})
	if ok, _, _ := Consistent(abSchema(), []*CFD{ca}); !ok {
		t.Error("a single forced constant is consistent")
	}
	if ok, _, _ := Consistent(abSchema(), []*CFD{ca, cb}); ok {
		t.Error("two different forced constants on one attribute are inconsistent")
	}
}

// TestChainedForcing: forcing propagates through constant patterns:
// A=a forces B=b forces C=c, and a conflicting C=c' makes the set
// inconsistent only when a tuple with A=a must exist.
func TestChainedForcing(t *testing.T) {
	schema := abSchema()
	chain := []*CFD{
		MustCFD([]string{"A"}, []string{"B"}, PatternRow{X: []Pattern{C("a")}, Y: []Pattern{C("b")}}),
		MustCFD([]string{"B"}, []string{"C"}, PatternRow{X: []Pattern{C("b")}, Y: []Pattern{C("c")}}),
		MustCFD([]string{"A"}, []string{"C"}, PatternRow{X: []Pattern{C("a")}, Y: []Pattern{C("d")}}),
	}
	// Still consistent: a witness simply avoids A=a.
	ok, witness, err := Consistent(schema, chain)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("chain should be consistent (avoid A=a)")
	}
	if witness["A"] == "a" {
		t.Errorf("witness must avoid A=a, got %v", witness)
	}
	// But (Σ, A=a) is inconsistent: C would need to be both c and d.
	okWith, err := ConsistentWith(schema, chain, "A", "a")
	if err != nil {
		t.Fatal(err)
	}
	if okWith {
		t.Error("(Σ, A=a) must be inconsistent")
	}
	// With a finite domain dom(A) = {a}, the whole set becomes inconsistent.
	schemaFin := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Enum("justA", "a")},
		relation.Attr("B"), relation.Attr("C"),
	)
	ok, _, err = Consistent(schemaFin, chain)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("with dom(A)={a} the chain must be inconsistent")
	}
}
