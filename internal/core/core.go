package core
