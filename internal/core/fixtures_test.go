package core

import (
	"repro/internal/relation"
)

// Shared fixtures: the cust relation of Figure 1 and the CFDs of Figure 2.
//
// Note on the instance: the paper's Example 4.1 states that QV over ϕ2
// returns tuples t3 and t4, which requires t3 and t4 to disagree on a RHS
// attribute of ϕ2; the published figure gives t4 the ZIP 02404 (the
// plain-text extraction of the figure collapses this). We encode the
// instance that makes every worked example of the paper (2.2 and 4.1) come
// out as printed.

func custSchema() *relation.Schema {
	return relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"),
		relation.Attr("ZIP"),
	)
}

func custInstance() *relation.Relation {
	rel := relation.New(custSchema())
	rel.MustInsert("01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974") // t1
	rel.MustInsert("01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974") // t2
	rel.MustInsert("01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202")   // t3
	rel.MustInsert("01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404")   // t4
	rel.MustInsert("01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394")   // t5
	rel.MustInsert("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT") // t6
	return rel
}

// phi1 is ϕ1 = (cust: [CC, ZIP] → [STR], T1) with T1 = {(44, _ ‖ _)},
// expressing φ0 of Example 1.1.
func phi1() *CFD {
	return MustCFD([]string{"CC", "ZIP"}, []string{"STR"},
		PatternRow{X: []Pattern{C("44"), W()}, Y: []Pattern{W()}},
	)
}

// phi2 is ϕ2 = (cust: [CC, AC, PN] → [STR, CT, ZIP], T2) expressing f1, φ1
// and φ2 of Example 1.1, one pattern row per constraint.
func phi2() *CFD {
	return MustCFD([]string{"CC", "AC", "PN"}, []string{"STR", "CT", "ZIP"},
		PatternRow{X: []Pattern{W(), W(), W()}, Y: []Pattern{W(), W(), W()}},
		PatternRow{X: []Pattern{C("01"), C("908"), W()}, Y: []Pattern{W(), C("MH"), W()}},
		PatternRow{X: []Pattern{C("01"), C("212"), W()}, Y: []Pattern{W(), C("NYC"), W()}},
	)
}

// phi3 is ϕ3 = (cust: [CC, AC] → [CT], T3) expressing f2, φ3 and the
// additional [CC=44, AC=141] → [CT=GLA] used in Section 4.
func phi3() *CFD {
	return MustCFD([]string{"CC", "AC"}, []string{"CT"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}},
		PatternRow{X: []Pattern{C("01"), C("215")}, Y: []Pattern{C("PHI")}},
		PatternRow{X: []Pattern{C("44"), C("141")}, Y: []Pattern{C("GLA")}},
	)
}

// phi5 is ϕ5 = (cust: [CT] → [AC], T5) with a single all-wildcard row,
// used in Section 4.2 (Figure 7) to exercise tableau merging.
func phi5() *CFD {
	return MustCFD([]string{"CT"}, []string{"AC"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}},
	)
}
