package core

import (
	"repro/internal/relation"
)

// Implication analysis (Section 3.2 of the paper).
//
// Σ ⊨ ϕ iff every instance satisfying Σ satisfies ϕ. Because CFDs are
// universal constraints closed under sub-instances, Σ ⊭ ϕ iff there is a
// counterexample instance with AT MOST TWO tuples: a violation of ϕ
// involves one or two tuples, and the sub-instance formed by those tuples
// still satisfies Σ. Moreover CFD semantics only ever compares values
// within one attribute (between the two tuples, or against constants), so a
// counterexample can be renamed so that every value is either a constant
// mentioned by Σ ∪ {ϕ} or one of two designated fresh values per attribute
// (whole domains are enumerated for finite-domain attributes). The search
// below is therefore sound and complete; it runs in time polynomial in
// |Σ| for a predefined schema — the regime of Theorem 3.5.

// Implies reports whether Σ ⊨ ϕ.
func Implies(schema *relation.Schema, sigma []*CFD, phi *CFD) (bool, error) {
	premises, err := NormalizeSet(sigma)
	if err != nil {
		return false, err
	}
	targets, err := phi.Normalize()
	if err != nil {
		return false, err
	}
	for _, t := range targets {
		ok, err := impliesSimple(schema, premises, t)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent reports Σ1 ≡ Σ2 (mutual implication).
func Equivalent(schema *relation.Schema, sigma1, sigma2 []*CFD) (bool, error) {
	for _, phi := range sigma2 {
		ok, err := Implies(schema, sigma1, phi)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, phi := range sigma1 {
		ok, err := Implies(schema, sigma2, phi)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func impliesSimple(schema *relation.Schema, premises []*Simple, target *Simple) (bool, error) {
	// If Σ is inconsistent it implies everything.
	ok, _, err := consistentSimples(schema, premises, nil)
	if err != nil {
		return false, err
	}
	if !ok {
		return true, nil
	}
	all := append(append([]*Simple(nil), premises...), target)
	attrs := AttrsOf(all)
	cand := candidateValues(schema, all, 2)
	s := &pairSearch{
		attrs:    attrs,
		cand:     cand,
		premises: premises,
		target:   target,
		assign:   [2]map[string]relation.Value{make(map[string]relation.Value), make(map[string]relation.Value)},
	}
	return !s.solve(0), nil
}

// pairSearch looks for a two-tuple counterexample (t1, t2), possibly with
// t1 = t2, such that {t1, t2} ⊨ Σ but the pair violates the target.
type pairSearch struct {
	attrs    []string
	cand     map[string][]relation.Value
	premises []*Simple
	target   *Simple
	assign   [2]map[string]relation.Value
}

// solve assigns variables in the interleaved order
// t1[a0], t2[a0], t1[a1], t2[a1], ... and returns true iff a counterexample
// exists.
func (s *pairSearch) solve(v int) bool {
	if v == 2*len(s.attrs) {
		return true // checkPartial pruned everything determinable; all assigned
	}
	tup, a := v%2, s.attrs[v/2]
	for _, val := range s.cand[a] {
		s.assign[tup][a] = val
		if s.checkPartial() && s.solve(v+1) {
			return true
		}
		delete(s.assign[tup], a)
	}
	return false
}

// checkPartial prunes branches where either (a) some premise is
// determined-violated by {t1,t2}, or (b) the target is determined to be
// satisfied (match refuted, or conclusion established).
func (s *pairSearch) checkPartial() bool {
	for _, p := range s.premises {
		if s.singleViolated(0, p) || s.singleViolated(1, p) || s.pairViolated(p) {
			return false
		}
	}
	// The target must be violated: its pair X-match must not be refuted and
	// its conclusion must not be established.
	if s.pairMatchRefuted(s.target) {
		return false
	}
	if s.conclusionEstablished(s.target) {
		return false
	}
	return true
}

// singleViolated reports whether tuple i on its own is determined to
// violate the premise (QC-style constant violation).
func (s *pairSearch) singleViolated(i int, c *Simple) bool {
	t := s.assign[i]
	for j, a := range c.X {
		p := c.TX[j]
		if p.Kind != Const {
			continue
		}
		v, ok := t[a]
		if !ok {
			return false
		}
		if v != p.Val {
			return false
		}
	}
	if c.PA.Kind != Const {
		return false
	}
	v, ok := t[c.A]
	return ok && v != c.PA.Val
}

// pairViolated reports whether (t1, t2) jointly are determined to violate
// the premise: X-equality-and-match forced, conclusion refuted.
func (s *pairSearch) pairViolated(c *Simple) bool {
	if !s.pairMatchForced(c) {
		return false
	}
	t1, t2 := s.assign[0], s.assign[1]
	v1, ok1 := t1[c.A]
	v2, ok2 := t2[c.A]
	if ok1 && ok2 && v1 != v2 {
		return true
	}
	if c.PA.Kind == Const {
		if ok1 && v1 != c.PA.Val {
			return true
		}
		if ok2 && v2 != c.PA.Val {
			return true
		}
	}
	return false
}

// pairMatchForced reports t1[X] = t2[X] ≍ tp[X] fully determined-true.
func (s *pairSearch) pairMatchForced(c *Simple) bool {
	t1, t2 := s.assign[0], s.assign[1]
	for j, a := range c.X {
		v1, ok1 := t1[a]
		v2, ok2 := t2[a]
		if !ok1 || !ok2 {
			return false
		}
		if v1 != v2 || !c.TX[j].Matches(v1) {
			return false
		}
	}
	return true
}

// pairMatchRefuted reports t1[X] = t2[X] ≍ tp[X] determined-false.
func (s *pairSearch) pairMatchRefuted(c *Simple) bool {
	t1, t2 := s.assign[0], s.assign[1]
	for j, a := range c.X {
		v1, ok1 := t1[a]
		v2, ok2 := t2[a]
		if ok1 && ok2 && v1 != v2 {
			return true
		}
		if ok1 && !c.TX[j].Matches(v1) {
			return true
		}
		if ok2 && !c.TX[j].Matches(v2) {
			return true
		}
	}
	return false
}

// conclusionEstablished reports t1[A] = t2[A] ≍ tp[A] determined-true,
// which would make the target satisfied on this branch.
func (s *pairSearch) conclusionEstablished(c *Simple) bool {
	v1, ok1 := s.assign[0][c.A]
	v2, ok2 := s.assign[1][c.A]
	if !ok1 || !ok2 || v1 != v2 {
		return false
	}
	return c.PA.Matches(v1)
}
