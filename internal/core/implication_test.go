package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestExample32Implication: Σ = {ψ1 = (A→B, (_, b)), ψ2 = (B→C, (_, c))}
// implies ϕ = (A→C, (a, _)) — the statement proved by derivation in
// Example 3.2, checked here semantically.
func TestExample32Implication(t *testing.T) {
	schema := abSchema()
	psi1 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("b")}})
	psi2 := MustCFD([]string{"B"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}})
	phi := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{W()}})

	ok, err := Implies(schema, []*CFD{psi1, psi2}, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("{ψ1, ψ2} ⊨ (A→C, (a, _)) per Example 3.2")
	}
	// The even stronger (A→C, (_, c)) — step (3) of the derivation.
	phiStrong := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}})
	ok, err = Implies(schema, []*CFD{psi1, psi2}, phiStrong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("{ψ1, ψ2} ⊨ (A→C, (_, c)) per Example 3.2 step (3)")
	}
	// But NOT (C→A, (_, _)): nothing constrains A from C.
	notImplied := MustCFD([]string{"C"}, []string{"A"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	ok, err = Implies(schema, []*CFD{psi1, psi2}, notImplied)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{ψ1, ψ2} ⊭ (C→A, (_, _))")
	}
}

// TestFDTransitivityAsImplication: classical Armstrong transitivity is the
// all-wildcard special case.
func TestFDTransitivityAsImplication(t *testing.T) {
	schema := abSchema()
	ab := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	bc := MustCFD([]string{"B"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	ac := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	ok, err := Implies(schema, []*CFD{ab, bc}, ac)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("{A→B, B→C} ⊨ A→C")
	}
	ok, err = Implies(schema, []*CFD{ab}, ac)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{A→B} ⊭ A→C")
	}
}

// TestReflexivityAndAugmentation: FD1/FD2-shaped implications hold
// semantically.
func TestReflexivityAndAugmentation(t *testing.T) {
	schema := abSchema()
	// Reflexivity: ∅ ⊨ ([A,B] → A, all '_').
	refl := MustCFD([]string{"A", "B"}, []string{"A"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}})
	ok, err := Implies(schema, nil, refl)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("∅ ⊨ ([A,B] → A, (_, _ ‖ _))")
	}
	// Augmentation: (A→C, (a ‖ c)) ⊨ ([A,B]→C, (a, _ ‖ c)).
	base := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{C("c")}})
	aug := MustCFD([]string{"A", "B"}, []string{"C"},
		PatternRow{X: []Pattern{C("a"), W()}, Y: []Pattern{C("c")}})
	ok, err = Implies(schema, []*CFD{base}, aug)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("augmentation implication should hold")
	}
	// The converse ALSO holds here — with a constant RHS pattern the added
	// '_' attribute is redundant; this is exactly inference rule FD4.
	ok, err = Implies(schema, []*CFD{aug}, base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("([A,B]→C, (a,_ ‖ c)) ⊨ (A→C, (a ‖ c)) by FD4")
	}
	// With a WILDCARD RHS pattern the converse genuinely fails: two tuples
	// differing on B escape the augmented CFD but not the base one.
	baseW := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{W()}})
	augW := MustCFD([]string{"A", "B"}, []string{"C"},
		PatternRow{X: []Pattern{C("a"), W()}, Y: []Pattern{W()}})
	ok, err = Implies(schema, []*CFD{augW}, baseW)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("([A,B]→C, (a,_ ‖ _)) ⊭ (A→C, (a ‖ _))")
	}
}

// TestPatternRefinementImplication: a CFD implies every pattern refinement
// of itself (FD5 direction) and every constant-to-'_' RHS relaxation is NOT
// implied in reverse.
func TestPatternRefinementImplication(t *testing.T) {
	schema := abSchema()
	general := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	refined := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{W()}})
	ok, err := Implies(schema, []*CFD{general}, refined)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(A→B, (_ ‖ _)) ⊨ (A→B, (a ‖ _)) (FD5)")
	}
	ok, err = Implies(schema, []*CFD{refined}, general)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("(A→B, (a ‖ _)) ⊭ (A→B, (_ ‖ _))")
	}
}

// TestInconsistentImpliesEverything: an inconsistent Σ implies any CFD.
func TestInconsistentImpliesEverything(t *testing.T) {
	schema := abSchema()
	sigma := []*CFD{
		MustCFD(nil, []string{"A"}, PatternRow{Y: []Pattern{C("x")}}),
		MustCFD(nil, []string{"A"}, PatternRow{Y: []Pattern{C("y")}}),
	}
	anyCFD := MustCFD([]string{"C"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("whatever")}})
	ok, err := Implies(schema, sigma, anyCFD)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("an inconsistent Σ implies every CFD")
	}
}

// TestFiniteDomainImplication: with dom(B) = {b1, b2}, the two
// constant-LHS CFDs ([B=b1]→A=a) and ([B=b2]→A=a) jointly imply the
// unconditional (B→A, (_, a)) — an implication that needs FD7-style
// finite-domain reasoning and fails over unbounded domains.
func TestFiniteDomainImplication(t *testing.T) {
	schemaFin := relation.MustSchema("R",
		relation.Attr("A"),
		relation.Attribute{Name: "B", Domain: relation.Enum("b2", "b1", "b2")},
	)
	sigma := []*CFD{
		MustCFD([]string{"B"}, []string{"A"},
			PatternRow{X: []Pattern{C("b1")}, Y: []Pattern{C("a")}}),
		MustCFD([]string{"B"}, []string{"A"},
			PatternRow{X: []Pattern{C("b2")}, Y: []Pattern{C("a")}}),
	}
	phi := MustCFD([]string{"B"}, []string{"A"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("a")}})
	ok, err := Implies(schemaFin, sigma, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("over dom(B)={b1,b2} the upgrade to '_' is implied (FD7)")
	}
	schemaInf := relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"))
	ok, err = Implies(schemaInf, sigma, phi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("over an unbounded dom(B) the upgrade is NOT implied")
	}
}

// TestImplicationVsInstances (property): whenever Implies says yes, no
// randomly generated two-tuple instance can satisfy Σ and violate ϕ;
// whenever it says no, the violating-pair search must agree with a brute
// check on random instances often enough to catch asymmetries. We exercise
// it with randomized small CFDs over a 3-attribute schema.
func TestImplicationVsInstances(t *testing.T) {
	schema := abSchema()
	rng := rand.New(rand.NewSource(7))
	attrs := []string{"A", "B", "C"}
	vals := []relation.Value{"0", "1", "2"}

	randomSimpleCFD := func() *CFD {
		// One or two LHS attributes, one RHS attribute, random patterns.
		perm := rng.Perm(3)
		nx := 1 + rng.Intn(2)
		lhs := make([]string, nx)
		xp := make([]Pattern, nx)
		for i := 0; i < nx; i++ {
			lhs[i] = attrs[perm[i]]
			if rng.Intn(2) == 0 {
				xp[i] = W()
			} else {
				xp[i] = C(vals[rng.Intn(len(vals))])
			}
		}
		rhs := attrs[perm[nx]]
		var yp Pattern
		if rng.Intn(2) == 0 {
			yp = W()
		} else {
			yp = C(vals[rng.Intn(len(vals))])
		}
		return MustCFD(lhs, []string{rhs}, PatternRow{X: xp, Y: []Pattern{yp}})
	}

	randomInstance := func() *relation.Relation {
		rel := relation.New(schema)
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			rel.MustInsert(vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)])
		}
		return rel
	}

	for iter := 0; iter < 150; iter++ {
		sigma := []*CFD{randomSimpleCFD(), randomSimpleCFD()}
		phi := randomSimpleCFD()
		implied, err := Implies(schema, sigma, phi)
		if err != nil {
			t.Fatal(err)
		}
		if !implied {
			continue
		}
		// Soundness of "yes": hammer with random instances.
		for k := 0; k < 60; k++ {
			inst := randomInstance()
			satSigma, err := SatisfiesSet(inst, sigma)
			if err != nil {
				t.Fatal(err)
			}
			if !satSigma {
				continue
			}
			satPhi, err := Satisfies(inst, phi)
			if err != nil {
				t.Fatal(err)
			}
			if !satPhi {
				t.Fatalf("Implies said Σ ⊨ ϕ but instance\n%v\nsatisfies Σ=%v, %v and violates ϕ=%v",
					inst, sigma[0], sigma[1], phi)
			}
		}
	}
}

// TestEquivalent checks Σ1 ≡ Σ2 on the MinCover example (Example 3.3).
func TestEquivalent(t *testing.T) {
	schema := abSchema()
	psi1 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("b")}})
	psi2 := MustCFD([]string{"B"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}})
	phi := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{W()}})
	sigma := []*CFD{psi1, psi2, phi}
	cover := []*CFD{
		MustCFD(nil, []string{"B"}, PatternRow{Y: []Pattern{C("b")}}),
		MustCFD(nil, []string{"C"}, PatternRow{Y: []Pattern{C("c")}}),
	}
	ok, err := Equivalent(schema, sigma, cover)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Σ ≡ {(∅→B, (b)), (∅→C, (c))} per Example 3.3")
	}
	ok, err = Equivalent(schema, sigma, cover[:1])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("dropping (∅→C, (c)) must break the equivalence")
	}
}
