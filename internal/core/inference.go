package core

import (
	"fmt"

	"repro/internal/relation"
)

// The inference system I of Section 3.2 (Figure 3). Each rule is a
// constructive function: given premises it validates the rule's side
// conditions and returns the derived normal-form CFD. Theorem 3.3 states
// that I is sound and complete for CFD implication; the test suite checks
// soundness of every rule against the implication oracle of this package,
// and reproduces the derivation of Example 3.2.

// FD1 (extends reflexivity): if A ∈ X then (X → A, tp) with tp all '_'.
func FD1(x []string, a string) (*Simple, error) {
	found := false
	for _, b := range x {
		if b == a {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: FD1: %q not in X %v", a, x)
	}
	tx := make([]Pattern, len(x))
	for i := range tx {
		tx[i] = W()
	}
	return &Simple{X: append([]string(nil), x...), A: a, TX: tx, PA: W()}, nil
}

// FD2 (extends augmentation): from (X → A, tp) derive ([X,B] → A, t'p)
// with t'p[B] = '_'. B may equal A (the embedded FD then has A on both
// sides, the paper's t[AL]/t[AR] case), but must not already be in X.
func FD2(s *Simple, b string) (*Simple, error) {
	for _, c := range s.X {
		if c == b {
			return nil, fmt.Errorf("core: FD2: %q already in X %v", b, s.X)
		}
	}
	out := s.Clone()
	out.X = append(out.X, b)
	out.TX = append(out.TX, W())
	return out, nil
}

// FD3 (extends transitivity): from (X → Ai, ti) for i ∈ [1,k] with all
// ti[X] equal, and ([A1,…,Ak] → B, tp) with (t1[A1],…,tk[Ak]) ⪯
// tp[A1,…,Ak], derive (X → B, t'p) with t'p[X] = t1[X], t'p[B] = tp[B].
func FD3(firsts []*Simple, second *Simple) (*Simple, error) {
	if len(firsts) == 0 {
		return nil, fmt.Errorf("core: FD3: no premises")
	}
	if len(second.X) != len(firsts) {
		return nil, fmt.Errorf("core: FD3: second premise has %d LHS attributes, want %d", len(second.X), len(firsts))
	}
	base := firsts[0]
	for i, f := range firsts {
		if len(f.X) != len(base.X) {
			return nil, fmt.Errorf("core: FD3: premise %d has different X arity", i)
		}
		for j := range f.X {
			if f.X[j] != base.X[j] || f.TX[j] != base.TX[j] {
				return nil, fmt.Errorf("core: FD3: premise %d disagrees with premise 0 on X", i)
			}
		}
		if f.A != second.X[i] {
			return nil, fmt.Errorf("core: FD3: premise %d concludes %q, want %q", i, f.A, second.X[i])
		}
		// Side condition (3): ti[Ai] ⪯ tp[Ai].
		if !f.PA.Leq(second.TX[i]) {
			return nil, fmt.Errorf("core: FD3: premise %d pattern %s not ⪯ %s", i, f.PA, second.TX[i])
		}
	}
	return &Simple{
		X:  append([]string(nil), base.X...),
		A:  second.A,
		TX: append([]Pattern(nil), base.TX...),
		PA: second.PA,
	}, nil
}

// FD4 (reduction): from ([B,X] → A, tp) with tp[B] = '_' and tp[A] a
// constant, derive (X → A, t'p) by dropping B from the LHS.
func FD4(s *Simple, b string) (*Simple, error) {
	bi := -1
	for i, c := range s.X {
		if c == b {
			bi = i
			break
		}
	}
	if bi < 0 {
		return nil, fmt.Errorf("core: FD4: %q not in X %v", b, s.X)
	}
	if s.TX[bi].Kind != Wildcard {
		return nil, fmt.Errorf("core: FD4: tp[%s] must be '_', got %s", b, s.TX[bi])
	}
	if s.PA.Kind != Const {
		return nil, fmt.Errorf("core: FD4: tp[%s] must be a constant, got %s", s.A, s.PA)
	}
	out := &Simple{A: s.A, PA: s.PA}
	for i, c := range s.X {
		if i == bi {
			continue
		}
		out.X = append(out.X, c)
		out.TX = append(out.TX, s.TX[i])
	}
	return out, nil
}

// FD5 (upgrade '_' to a constant on the LHS): from ([B,X] → A, tp) with
// tp[B] = '_', derive the same CFD with tp[B] = 'b'.
func FD5(s *Simple, b string, val relation.Value) (*Simple, error) {
	bi := -1
	for i, c := range s.X {
		if c == b {
			bi = i
			break
		}
	}
	if bi < 0 {
		return nil, fmt.Errorf("core: FD5: %q not in X %v", b, s.X)
	}
	if s.TX[bi].Kind != Wildcard {
		return nil, fmt.Errorf("core: FD5: tp[%s] must be '_', got %s", b, s.TX[bi])
	}
	out := s.Clone()
	out.TX[bi] = C(val)
	return out, nil
}

// FD6 (downgrade a RHS constant to '_'): from (X → A, tp) with tp[A] = 'a'
// derive (X → A, t'p) with t'p[A] = '_'.
func FD6(s *Simple) (*Simple, error) {
	if s.PA.Kind != Const {
		return nil, fmt.Errorf("core: FD6: tp[%s] must be a constant, got %s", s.A, s.PA)
	}
	out := s.Clone()
	out.PA = W()
	return out, nil
}

// FD7 (finite-domain upgrade): if Σ ⊢ ([X,B] → A, ti) for i ∈ [1,k], the
// ti agree on X, ti[B] = bi, and b1,…,bk are EXACTLY the values of the
// finite dom(B) for which (Σ, B = b) is consistent, then
// Σ ⊢ ([X,B] → A, tp) with tp[B] = '_' and tp[X] = t1[X].
//
// The caller supplies Σ (for the (Σ, B = b) consistency side condition) and
// the schema carrying dom(B). Each premise is checked to be implied by Σ —
// the rule is stated w.r.t. provability, and implication is equivalent by
// Theorem 3.3.
func FD7(schema *relation.Schema, sigma []*CFD, premises []*Simple, b string) (*Simple, error) {
	if len(premises) == 0 {
		return nil, fmt.Errorf("core: FD7: no premises")
	}
	dom := schema.Domain(b)
	if !dom.Finite() {
		return nil, fmt.Errorf("core: FD7: dom(%s) is not finite", b)
	}
	base := premises[0]
	bi := -1
	for i, c := range base.X {
		if c == b {
			bi = i
			break
		}
	}
	if bi < 0 {
		return nil, fmt.Errorf("core: FD7: %q not in X %v", b, base.X)
	}
	covered := make(map[relation.Value]bool)
	for i, p := range premises {
		if p.A != base.A || len(p.X) != len(base.X) {
			return nil, fmt.Errorf("core: FD7: premise %d shape differs from premise 0", i)
		}
		for j := range p.X {
			if p.X[j] != base.X[j] {
				return nil, fmt.Errorf("core: FD7: premise %d attribute list differs", i)
			}
			if j != bi && p.TX[j] != base.TX[j] {
				return nil, fmt.Errorf("core: FD7: premise %d disagrees on X pattern", i)
			}
		}
		if p.PA != base.PA {
			return nil, fmt.Errorf("core: FD7: premise %d disagrees on RHS pattern", i)
		}
		if p.TX[bi].Kind != Const {
			return nil, fmt.Errorf("core: FD7: premise %d has non-constant tp[%s]", i, b)
		}
		// Side condition (1): Σ implies each premise.
		ok, err := Implies(schema, sigma, p.CFD())
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("core: FD7: premise %d (%s) is not implied by Σ", i, p)
		}
		covered[p.TX[bi].Val] = true
	}
	// Side condition (2): the premises' constants are exactly the
	// consistent values of dom(B).
	for _, v := range dom.Values {
		ok, err := ConsistentWith(schema, sigma, b, v)
		if err != nil {
			return nil, err
		}
		if ok && !covered[v] {
			return nil, fmt.Errorf("core: FD7: consistent value %s=%q not covered by any premise", b, v)
		}
		if !ok && covered[v] {
			return nil, fmt.Errorf("core: FD7: premise covers %s=%q but (Σ, %s=%q) is inconsistent", b, v, b, v)
		}
	}
	out := base.Clone()
	out.TX[bi] = W()
	return out, nil
}

// FD8 (finite-domain forcing): if exactly one value b1 of the finite
// dom(B) keeps (Σ, B = b1) consistent, then Σ ⊢ (B → B, ('_', b1)).
func FD8(schema *relation.Schema, sigma []*CFD, b string) (*Simple, error) {
	dom := schema.Domain(b)
	if !dom.Finite() {
		return nil, fmt.Errorf("core: FD8: dom(%s) is not finite", b)
	}
	var consistent []relation.Value
	for _, v := range dom.Values {
		ok, err := ConsistentWith(schema, sigma, b, v)
		if err != nil {
			return nil, err
		}
		if ok {
			consistent = append(consistent, v)
		}
	}
	if len(consistent) != 1 {
		return nil, fmt.Errorf("core: FD8: %d consistent values for %s, want exactly 1", len(consistent), b)
	}
	return &Simple{X: []string{b}, A: b, TX: []Pattern{W()}, PA: C(consistent[0])}, nil
}
