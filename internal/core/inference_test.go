package core

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestExample32Derivation replays the five-step derivation of Example 3.2
// using the constructive inference rules:
//
//	(1) (A → B, (_, b))            ψ1
//	(2) (B → C, (_, c))            ψ2
//	(3) (A → C, (_, c))            (1), (2) and FD3
//	(4) (A → C, (a, c))            (3) and FD5
//	(5) (A → C, (a, _))            (4) and FD6
func TestExample32Derivation(t *testing.T) {
	psi1 := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{W()}, PA: C("b")}
	psi2 := &Simple{X: []string{"B"}, A: "C", TX: []Pattern{W()}, PA: C("c")}

	step3, err := FD3([]*Simple{psi1}, psi2)
	if err != nil {
		t.Fatalf("FD3: %v", err)
	}
	want3 := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{W()}, PA: C("c")}
	if !step3.Equal(want3) {
		t.Fatalf("step (3) = %s, want %s", step3, want3)
	}

	step4, err := FD5(step3, "A", "a")
	if err != nil {
		t.Fatalf("FD5: %v", err)
	}
	want4 := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{C("a")}, PA: C("c")}
	if !step4.Equal(want4) {
		t.Fatalf("step (4) = %s, want %s", step4, want4)
	}

	step5, err := FD6(step4)
	if err != nil {
		t.Fatalf("FD6: %v", err)
	}
	want5 := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{C("a")}, PA: W()}
	if !step5.Equal(want5) {
		t.Fatalf("step (5) = %s, want %s", step5, want5)
	}
}

func TestFD1(t *testing.T) {
	s, err := FD1([]string{"A", "B"}, "A")
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"A", "B"}, A: "A", TX: []Pattern{W(), W()}, PA: W()}
	if !s.Equal(want) {
		t.Errorf("FD1 = %s, want %s", s, want)
	}
	if _, err := FD1([]string{"A", "B"}, "C"); err == nil {
		t.Error("FD1 must reject A ∉ X")
	}
	// Soundness: implied by the empty set.
	ok, err := Implies(abSchema(), nil, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD1 conclusion must be implied by ∅")
	}
}

func TestFD2(t *testing.T) {
	base := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{C("a")}, PA: C("c")}
	s, err := FD2(base, "B")
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"A", "B"}, A: "C", TX: []Pattern{C("a"), W()}, PA: C("c")}
	if !s.Equal(want) {
		t.Errorf("FD2 = %s, want %s", s, want)
	}
	if _, err := FD2(base, "A"); err == nil {
		t.Error("FD2 must reject B already in X")
	}
	// B = A is allowed: the embedded FD then has C on... B may equal the
	// RHS attribute (t[AL]/t[AR] case).
	if _, err := FD2(base, "C"); err != nil {
		t.Errorf("FD2 with B = RHS attribute should be allowed: %v", err)
	}
	ok, err := Implies(abSchema(), []*CFD{base.CFD()}, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD2 conclusion must be implied by its premise")
	}
}

func TestFD3SideCondition(t *testing.T) {
	// Premise patterns must satisfy (t1[A1],…) ⪯ tp[A1,…].
	psi1 := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{W()}, PA: C("b")}
	second := &Simple{X: []string{"B"}, A: "C", TX: []Pattern{C("OTHER")}, PA: C("c")}
	if _, err := FD3([]*Simple{psi1}, second); err == nil {
		t.Error("FD3 must reject b ⋠ OTHER")
	}
	// Constant-to-constant: b ⪯ b is fine.
	secondOK := &Simple{X: []string{"B"}, A: "C", TX: []Pattern{C("b")}, PA: C("c")}
	s, err := FD3([]*Simple{psi1}, secondOK)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Implies(abSchema(), []*CFD{psi1.CFD(), secondOK.CFD()}, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD3 conclusion must be implied by its premises")
	}
}

func TestFD3MultiPremise(t *testing.T) {
	// Two premises (X → A1), (X → A2) feeding ([A1,A2] → B).
	p1 := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{C("a")}, PA: C("b")}
	p2 := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{C("a")}, PA: W()}
	second := &Simple{X: []string{"B", "C"}, A: "A", TX: []Pattern{W(), W()}, PA: W()}
	s, err := FD3([]*Simple{p1, p2}, second)
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"A"}, A: "A", TX: []Pattern{C("a")}, PA: W()}
	if !s.Equal(want) {
		t.Errorf("FD3 = %s, want %s", s, want)
	}
	ok, err := Implies(abSchema(), []*CFD{p1.CFD(), p2.CFD(), second.CFD()}, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("multi-premise FD3 conclusion must be implied")
	}
}

func TestFD4(t *testing.T) {
	// ([B,X] → A, tp), tp[B] = '_', tp[A] constant ⇒ drop B.
	base := &Simple{X: []string{"B", "A"}, A: "C", TX: []Pattern{W(), C("a")}, PA: C("c")}
	s, err := FD4(base, "B")
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"A"}, A: "C", TX: []Pattern{C("a")}, PA: C("c")}
	if !s.Equal(want) {
		t.Errorf("FD4 = %s, want %s", s, want)
	}
	// Rejections: constant tp[B], or non-constant tp[A].
	if _, err := FD4(base, "A"); err == nil {
		t.Error("FD4 must reject dropping an attribute with a constant pattern")
	}
	noConst := &Simple{X: []string{"B"}, A: "C", TX: []Pattern{W()}, PA: W()}
	if _, err := FD4(noConst, "B"); err == nil {
		t.Error("FD4 must reject a non-constant RHS pattern")
	}
	ok, err := Implies(abSchema(), []*CFD{base.CFD()}, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD4 conclusion must be implied by its premise")
	}
	// And vice versa (FD4 + FD2 are inverse here): the premise follows from
	// the conclusion by augmentation.
	ok, err = Implies(abSchema(), []*CFD{s.CFD()}, base.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD4 premise should follow from the conclusion by FD2/FD5")
	}
}

func TestFD5Rejections(t *testing.T) {
	base := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{C("a")}, PA: W()}
	if _, err := FD5(base, "A", "x"); err == nil {
		t.Error("FD5 must reject substitution into a constant cell")
	}
	if _, err := FD5(base, "Z", "x"); err == nil {
		t.Error("FD5 must reject an attribute outside X")
	}
}

func TestFD6Rejections(t *testing.T) {
	base := &Simple{X: []string{"A"}, A: "B", TX: []Pattern{W()}, PA: W()}
	if _, err := FD6(base); err == nil {
		t.Error("FD6 must reject a non-constant RHS pattern")
	}
}

// TestFD8 uses Example 3.1's machinery: with dom(A)=bool and a CFD set
// that rules out A=true, FD8 derives (A → A, (_, false)).
func TestFD8(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attr("B"),
	)
	// (A=true → B=b1) and (A=true → B=b2): A=true is impossible.
	sigma := []*CFD{
		MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{C("true")}, Y: []Pattern{C("b1")}}),
		MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{C("true")}, Y: []Pattern{C("b2")}}),
	}
	s, err := FD8(schema, sigma, "A")
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"A"}, A: "A", TX: []Pattern{W()}, PA: C("false")}
	if !s.Equal(want) {
		t.Errorf("FD8 = %s, want %s", s, want)
	}
	ok, err := Implies(schema, sigma, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD8 conclusion must be implied by Σ")
	}
	// FD8 requires EXACTLY one consistent value.
	if _, err := FD8(schema, nil, "A"); err == nil {
		t.Error("FD8 must fail when both bool values are consistent")
	}
	if _, err := FD8(schema, sigma, "B"); err == nil {
		t.Error("FD8 must fail on a non-finite domain")
	}
}

// TestFD7 exercises the finite-domain upgrade: with dom(B) = {b1, b2} and
// premises ([X,B]→A, ti) for ti[B] = b1 and b2, derive tp[B] = '_'.
func TestFD7(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("A"),
		relation.Attribute{Name: "B", Domain: relation.Enum("b12", "b1", "b2")},
		relation.Attr("C"),
	)
	sigma := []*CFD{
		MustCFD([]string{"C", "B"}, []string{"A"},
			PatternRow{X: []Pattern{W(), C("b1")}, Y: []Pattern{C("a")}}),
		MustCFD([]string{"C", "B"}, []string{"A"},
			PatternRow{X: []Pattern{W(), C("b2")}, Y: []Pattern{C("a")}}),
	}
	premises := []*Simple{
		{X: []string{"C", "B"}, A: "A", TX: []Pattern{W(), C("b1")}, PA: C("a")},
		{X: []string{"C", "B"}, A: "A", TX: []Pattern{W(), C("b2")}, PA: C("a")},
	}
	s, err := FD7(schema, sigma, premises, "B")
	if err != nil {
		t.Fatal(err)
	}
	want := &Simple{X: []string{"C", "B"}, A: "A", TX: []Pattern{W(), W()}, PA: C("a")}
	if !s.Equal(want) {
		t.Errorf("FD7 = %s, want %s", s, want)
	}
	ok, err := Implies(schema, sigma, s.CFD())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("FD7 conclusion must be implied by Σ")
	}
	// Missing coverage of a consistent value must be rejected.
	if _, err := FD7(schema, sigma, premises[:1], "B"); err == nil {
		t.Error("FD7 must reject premises that do not cover all consistent values")
	}
}

// TestInferenceSoundnessRandom (property): randomly constructed FD2/FD5/FD6
// applications always yield implied CFDs — the soundness half of
// Theorem 3.3 for the pattern-manipulation rules.
func TestInferenceSoundnessRandom(t *testing.T) {
	schema := abSchema()
	rng := rand.New(rand.NewSource(11))
	attrs := []string{"A", "B", "C"}
	vals := []relation.Value{"0", "1"}
	for iter := 0; iter < 80; iter++ {
		perm := rng.Perm(3)
		var xp Pattern
		if rng.Intn(2) == 0 {
			xp = W()
		} else {
			xp = C(vals[rng.Intn(2)])
		}
		var yp Pattern
		if rng.Intn(2) == 0 {
			yp = W()
		} else {
			yp = C(vals[rng.Intn(2)])
		}
		base := &Simple{X: []string{attrs[perm[0]]}, A: attrs[perm[1]], TX: []Pattern{xp}, PA: yp}

		var derived *Simple
		var err error
		switch rng.Intn(3) {
		case 0:
			derived, err = FD2(base, attrs[perm[2]])
		case 1:
			if base.TX[0].Kind != Wildcard {
				continue
			}
			derived, err = FD5(base, base.X[0], vals[rng.Intn(2)])
		default:
			if base.PA.Kind != Const {
				continue
			}
			derived, err = FD6(base)
		}
		if err != nil {
			t.Fatalf("rule application failed: %v", err)
		}
		ok, err := Implies(schema, []*CFD{base.CFD()}, derived.CFD())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("unsound derivation: %s ⊭ %s", base, derived)
		}
	}
}
