package core

import (
	"repro/internal/relation"
)

// MinCover (Section 3.3, Figure 4 of the paper): compute a minimal cover
// Σmc of a set Σ of CFDs — equivalent to Σ, in normal form, with no
// redundant CFDs and no redundant LHS attributes. A non-redundant, smaller
// cover reduces validation and repair cost, so MinCover is the paper's
// optimization step before detection.

// MinimalCover returns a minimal cover of Σ as normal-form CFDs. Following
// the paper's algorithm it returns the empty set when Σ is inconsistent
// (lines 1–2 of Figure 4).
func MinimalCover(schema *relation.Schema, sigma []*CFD) ([]*Simple, error) {
	ok, _, err := Consistent(schema, sigma)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	work, err := NormalizeSet(sigma)
	if err != nil {
		return nil, err
	}
	// Lines 3–6: remove redundant LHS attributes. For each CFD and each
	// LHS attribute B, test whether Σ implies the CFD with B dropped; if
	// so, replace it in the working set and keep shrinking.
	for i := 0; i < len(work); i++ {
		for bi := 0; bi < len(work[i].X); {
			cand := dropAttr(work[i], bi)
			ok, err := impliesWorking(schema, work, cand)
			if err != nil {
				return nil, err
			}
			if ok {
				work[i] = cand
				// Restart attribute scan on the shortened LHS.
				bi = 0
				continue
			}
			bi++
		}
	}
	// Lines 7–10: remove redundant CFDs. Check each CFD against the
	// CURRENT remaining set minus itself, so the result stays equivalent.
	cover := append([]*Simple(nil), work...)
	for i := 0; i < len(cover); {
		rest := make([]*Simple, 0, len(cover)-1)
		rest = append(rest, cover[:i]...)
		rest = append(rest, cover[i+1:]...)
		ok, err := impliesWorking(schema, rest, cover[i])
		if err != nil {
			return nil, err
		}
		if ok {
			cover = rest
			continue
		}
		i++
	}
	return cover, nil
}

func dropAttr(s *Simple, bi int) *Simple {
	out := &Simple{A: s.A, PA: s.PA}
	for i := range s.X {
		if i == bi {
			continue
		}
		out.X = append(out.X, s.X[i])
		out.TX = append(out.TX, s.TX[i])
	}
	return out
}

func impliesWorking(schema *relation.Schema, premises []*Simple, target *Simple) (bool, error) {
	return impliesSimple(schema, premises, target)
}

// CoverToCFDs converts a minimal cover back to general CFDs (one per
// simple), merging rows that share an embedded FD for readability.
func CoverToCFDs(cover []*Simple) []*CFD {
	singles := make([]*CFD, 0, len(cover))
	for _, s := range cover {
		singles = append(singles, s.CFD())
	}
	return MergeSameFD(singles)
}

// SizeOf measures |Σ| as the total number of pattern cells, the size metric
// the paper's complexity bounds are stated in.
func SizeOf(sigma []*CFD) int {
	n := 0
	for _, c := range sigma {
		n += len(c.Tableau) * (len(c.LHS) + len(c.RHS))
	}
	return n
}

// WitnessInstance materializes a single-tuple witness (as returned by
// Consistent) into a relation over the given schema, filling attributes the
// witness does not mention with fresh placeholder values.
func WitnessInstance(schema *relation.Schema, witness map[string]relation.Value) *relation.Relation {
	rel := relation.New(schema)
	t := make(relation.Tuple, schema.Len())
	for i, a := range schema.Attrs {
		if v, ok := witness[a.Name]; ok {
			t[i] = v
			continue
		}
		if a.Domain.Finite() && len(a.Domain.Values) > 0 {
			t[i] = a.Domain.Values[0]
		} else {
			t[i] = freshValue(a.Name, 0)
		}
	}
	rel.Tuples = append(rel.Tuples, t)
	return rel
}
