package core

import (
	"testing"
)

// TestExample33MinCover reproduces Example 3.3: for Σ = {ψ1, ψ2, ϕ} the
// minimal cover is {ψ1' = (∅ → B, (b)), ψ2' = (∅ → C, (c))}: ϕ is implied
// (Example 3.2), and the LHS attributes of ψ1, ψ2 are redundant (FD4).
func TestExample33MinCover(t *testing.T) {
	schema := abSchema()
	psi1 := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("b")}})
	psi2 := MustCFD([]string{"B"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}})
	phi := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{C("a")}, Y: []Pattern{W()}})
	sigma := []*CFD{psi1, psi2, phi}

	cover, err := MinimalCover(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2; cover: %v", len(cover), cover)
	}
	wantB := &Simple{X: nil, A: "B", TX: nil, PA: C("b")}
	wantC := &Simple{X: nil, A: "C", TX: nil, PA: C("c")}
	foundB, foundC := false, false
	for _, s := range cover {
		if s.Equal(wantB) {
			foundB = true
		}
		if s.Equal(wantC) {
			foundC = true
		}
	}
	if !foundB || !foundC {
		t.Errorf("cover = %v, want {(∅→B, (b)), (∅→C, (c))}", cover)
	}

	// The cover must be equivalent to Σ.
	ok, err := Equivalent(schema, sigma, CoverToCFDs(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("minimal cover must be equivalent to Σ")
	}
}

// TestMinCoverInconsistent: per Figure 4 lines 1–2, an inconsistent Σ
// yields the empty cover.
func TestMinCoverInconsistent(t *testing.T) {
	schema := abSchema()
	sigma := []*CFD{
		MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{W()}, Y: []Pattern{C("b")}},
			PatternRow{X: []Pattern{W()}, Y: []Pattern{C("c")}},
		),
	}
	cover, err := MinimalCover(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 0 {
		t.Errorf("cover of inconsistent Σ = %v, want ∅", cover)
	}
}

// TestMinCoverRemovesRedundantCFD: a transitively implied CFD disappears,
// non-redundant ones survive.
func TestMinCoverRemovesRedundantCFD(t *testing.T) {
	schema := abSchema()
	ab := MustCFD([]string{"A"}, []string{"B"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	bc := MustCFD([]string{"B"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	ac := MustCFD([]string{"A"}, []string{"C"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	cover, err := MinimalCover(schema, []*CFD{ab, bc, ac})
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want the two generators", cover)
	}
	ok, err := Equivalent(schema, []*CFD{ab, bc, ac}, CoverToCFDs(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("cover must remain equivalent")
	}
}

// TestMinCoverIdempotentOnMinimal: a set that is already minimal passes
// through unchanged in size and stays equivalent.
func TestMinCoverIdempotentOnMinimal(t *testing.T) {
	schema := abSchema()
	sigma := []*CFD{
		MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{C("a1")}, Y: []Pattern{C("b1")}}),
		MustCFD([]string{"A"}, []string{"B"},
			PatternRow{X: []Pattern{C("a2")}, Y: []Pattern{C("b2")}}),
	}
	cover, err := MinimalCover(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("cover size = %d, want 2", len(cover))
	}
	ok, err := Equivalent(schema, sigma, CoverToCFDs(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("cover must be equivalent")
	}
}

// TestMinCoverRemovesRedundantAttribute: lines 3–6 of Figure 4 — an LHS
// attribute whose pattern is '_' and whose RHS is a forced constant gets
// dropped (the FD4 simplification of Example 3.3).
func TestMinCoverRemovesRedundantAttribute(t *testing.T) {
	schema := abSchema()
	sigma := []*CFD{
		MustCFD([]string{"A", "B"}, []string{"C"},
			PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{C("c")}}),
	}
	cover, err := MinimalCover(schema, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 1 {
		t.Fatalf("cover = %v, want a single CFD", cover)
	}
	if len(cover[0].X) != 0 {
		t.Errorf("cover = %v, want empty LHS (∅ → C, (c))", cover[0])
	}
	ok, err := Equivalent(schema, sigma, CoverToCFDs(cover))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("cover must be equivalent")
	}
}

func TestSizeOf(t *testing.T) {
	if got := SizeOf([]*CFD{phi2()}); got != 18 {
		t.Errorf("SizeOf(ϕ2) = %d, want 18 (3 rows × 6 cells)", got)
	}
	if got := SizeOf(nil); got != 0 {
		t.Errorf("SizeOf(∅) = %d, want 0", got)
	}
}
