package core

import (
	"fmt"
	"strings"
)

// The text notation for CFDs, used by the CLI tools and examples:
//
//	[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
//
// Each line is one pattern row over an embedded FD. An attribute written
// bare ("PN") carries the unnamed variable '_'; "A=v" binds the constant v;
// values containing spaces, commas or special characters are single-quoted
// ('New York', with '' escaping a quote). An empty LHS is written "[]".
// Lines starting with '#' and blank lines are ignored. ParseSet merges
// consecutive rows sharing one embedded FD into multi-row tableaux, so the
// paper's Figure 2 tableaux round-trip through this notation.

// ParseCFD parses a single line of the text notation into a one-row CFD.
func ParseCFD(line string) (*CFD, error) {
	p := &lineParser{in: line}
	cfd, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("core: parsing %q: %w", line, err)
	}
	return cfd, nil
}

// ParseSet parses a multi-line CFD file: one pattern row per line, comments
// with '#', consecutive rows over the same embedded FD merged into one CFD.
func ParseSet(text string) ([]*CFD, error) {
	var singles []*CFD
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := ParseCFD(line)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %w", i+1, err)
		}
		singles = append(singles, c)
	}
	return MergeSameFD(singles), nil
}

// FormatSet renders a CFD set in the text notation accepted by ParseSet.
func FormatSet(sigma []*CFD) string {
	var b strings.Builder
	for i, c := range sigma {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c.String())
	}
	b.WriteByte('\n')
	return b.String()
}

type lineParser struct {
	in  string
	pos int
}

func (p *lineParser) parse() (*CFD, error) {
	lhs, xpats, err := p.side()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.literal("->") {
		return nil, fmt.Errorf("expected '->' at offset %d", p.pos)
	}
	rhs, ypats, err := p.side()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '#' {
		p.pos = len(p.in)
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return NewCFD(lhs, rhs, PatternRow{X: xpats, Y: ypats})
}

func (p *lineParser) side() ([]string, []Pattern, error) {
	p.skipSpace()
	if !p.literal("[") {
		return nil, nil, fmt.Errorf("expected '[' at offset %d", p.pos)
	}
	var names []string
	var pats []Pattern
	p.skipSpace()
	if p.literal("]") {
		return names, pats, nil // empty attribute list: "[]"
	}
	for {
		name, pat, err := p.item()
		if err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		pats = append(pats, pat)
		p.skipSpace()
		if p.literal(",") {
			continue
		}
		if p.literal("]") {
			return names, pats, nil
		}
		return nil, nil, fmt.Errorf("expected ',' or ']' at offset %d", p.pos)
	}
}

func (p *lineParser) item() (string, Pattern, error) {
	p.skipSpace()
	name := p.ident()
	if name == "" {
		return "", Pattern{}, fmt.Errorf("expected attribute name at offset %d", p.pos)
	}
	p.skipSpace()
	if !p.literal("=") {
		return name, W(), nil
	}
	p.skipSpace()
	val, quoted, err := p.value()
	if err != nil {
		return "", Pattern{}, err
	}
	if !quoted {
		// Only the bare markers are special; '_' and '@' in quotes are the
		// literal one-character constants.
		switch val {
		case "_":
			return name, W(), nil
		case "@":
			return name, AtSign(), nil
		}
	}
	return name, C(val), nil
}

func (p *lineParser) value() (string, bool, error) {
	if p.pos < len(p.in) && p.in[p.pos] == '\'' {
		v, err := p.quoted()
		return v, true, err
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ',' || c == ']' || c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", false, fmt.Errorf("expected value at offset %d", start)
	}
	return p.in[start:p.pos], false, nil
}

func (p *lineParser) quoted() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '\'' {
			if p.pos+1 < len(p.in) && p.in[p.pos+1] == '\'' {
				b.WriteByte('\'')
				p.pos += 2
				continue
			}
			p.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return "", fmt.Errorf("unterminated quoted value")
}

func (p *lineParser) ident() string {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '=' || c == ',' || c == ']' || c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	return p.in[start:p.pos]
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) literal(s string) bool {
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}
