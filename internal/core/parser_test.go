package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseCFDBasic(t *testing.T) {
	c, err := ParseCFD("[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(c.LHS, ",") != "CC,AC,PN" || strings.Join(c.RHS, ",") != "STR,CT,ZIP" {
		t.Fatalf("attribute lists wrong: %v -> %v", c.LHS, c.RHS)
	}
	row := c.Tableau[0]
	if row.X[0] != C("01") || row.X[1] != C("908") || row.X[2] != (W()) {
		t.Errorf("X patterns wrong: %v", row.X)
	}
	if row.Y[0] != (W()) || row.Y[1] != C("MH") || row.Y[2] != (W()) {
		t.Errorf("Y patterns wrong: %v", row.Y)
	}
}

func TestParseCFDQuoted(t *testing.T) {
	c, err := ParseCFD("[CT='New York'] -> [STR='O''Hare Blvd']")
	if err != nil {
		t.Fatal(err)
	}
	if c.Tableau[0].X[0] != C("New York") {
		t.Errorf("quoted LHS constant = %v", c.Tableau[0].X[0])
	}
	if c.Tableau[0].Y[0] != C("O'Hare Blvd") {
		t.Errorf("escaped quote constant = %v", c.Tableau[0].Y[0])
	}
}

func TestParseCFDUnderscoreForms(t *testing.T) {
	// "A" bare and "A=_" both mean the wildcard; "A='_'" is the literal.
	c, err := ParseCFD("[A, B=_, C='_'] -> [D=@]")
	if err != nil {
		t.Fatal(err)
	}
	r := c.Tableau[0]
	if r.X[0] != (W()) || r.X[1] != (W()) {
		t.Errorf("bare and =_ should be wildcards: %v", r.X)
	}
	if r.X[2] != C("_") {
		t.Errorf("'_' quoted should be the literal underscore constant: %v", r.X[2])
	}
	if r.Y[0] != (AtSign()) {
		t.Errorf("=@ should be the don't-care cell: %v", r.Y[0])
	}
}

func TestParseCFDEmptyLHS(t *testing.T) {
	c, err := ParseCFD("[] -> [B=b]")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LHS) != 0 || len(c.RHS) != 1 {
		t.Fatalf("arities wrong: %v -> %v", c.LHS, c.RHS)
	}
	if c.Tableau[0].Y[0] != C("b") {
		t.Errorf("Y pattern = %v", c.Tableau[0].Y[0])
	}
}

func TestParseCFDTrailingComment(t *testing.T) {
	c, err := ParseCFD("[A] -> [B=b]   # enforce b")
	if err != nil {
		t.Fatal(err)
	}
	if c.Tableau[0].Y[0] != C("b") {
		t.Errorf("Y pattern = %v", c.Tableau[0].Y[0])
	}
}

func TestParseCFDErrors(t *testing.T) {
	bad := []string{
		"",
		"[A] [B]",
		"[A] -> ",
		"[A -> [B]",
		"[A] -> [B] trailing",
		"[A,] -> [B]",
		"[A] -> []", // empty RHS is invalid
		"[A='unclosed] -> [B]",
		"[A, A] -> [B]", // duplicate LHS attribute
	}
	for _, line := range bad {
		if _, err := ParseCFD(line); err == nil {
			t.Errorf("ParseCFD(%q) should fail", line)
		}
	}
}

// TestParseSetMergesTableaux: the Figure 2 tableau T2 round-trips as three
// lines that merge into one CFD with three pattern rows.
func TestParseSetMergesTableaux(t *testing.T) {
	text := `
# ϕ2 of Figure 2
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]

# ϕ3 of Figure 2
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
[CC=44, AC=141] -> [CT=GLA]
`
	set, err := ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("got %d CFDs, want 2", len(set))
	}
	if len(set[0].Tableau) != 3 || len(set[1].Tableau) != 3 {
		t.Fatalf("tableau sizes = %d, %d; want 3, 3", len(set[0].Tableau), len(set[1].Tableau))
	}
	// Must be semantically identical to the programmatic fixtures.
	rel := custInstance()
	gotSat, err := Satisfies(rel, set[0])
	if err != nil {
		t.Fatal(err)
	}
	wantSat, err := Satisfies(rel, phi2())
	if err != nil {
		t.Fatal(err)
	}
	if gotSat != wantSat {
		t.Error("parsed ϕ2 disagrees with the programmatic ϕ2")
	}
}

// TestFormatParseRoundTrip (property): String() output re-parses to a
// structurally identical CFD, over randomized CFDs including quoted values.
func TestFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	values := []string{"a", "b", "New York", "O'Hare", "_", "@", "", "x,y", "[z]"}
	attrs := []string{"A", "B", "C", "D", "E"}
	randPattern := func() Pattern {
		switch rng.Intn(3) {
		case 0:
			return W()
		default:
			return C(values[rng.Intn(len(values))])
		}
	}
	for iter := 0; iter < 300; iter++ {
		perm := rng.Perm(len(attrs))
		nx, ny := rng.Intn(3), 1+rng.Intn(2)
		var lhs, rhs []string
		for i := 0; i < nx; i++ {
			lhs = append(lhs, attrs[perm[i]])
		}
		for i := 0; i < ny; i++ {
			rhs = append(rhs, attrs[perm[nx+i]])
		}
		row := PatternRow{}
		for range lhs {
			row.X = append(row.X, randPattern())
		}
		for range rhs {
			row.Y = append(row.Y, randPattern())
		}
		orig := MustCFD(lhs, rhs, row)
		parsed, err := ParseCFD(orig.String())
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", orig.String(), err)
		}
		if parsed.String() != orig.String() {
			t.Fatalf("round trip mismatch:\n  orig:   %s\n  parsed: %s", orig, parsed)
		}
	}
}

// TestFormatSetRoundTrip: a whole set round-trips through FormatSet/ParseSet.
func TestFormatSetRoundTrip(t *testing.T) {
	sigma := []*CFD{phi1(), phi2(), phi3()}
	text := FormatSet(sigma)
	back, err := ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Fatalf("set size %d, want %d", len(back), len(sigma))
	}
	for i := range sigma {
		if back[i].String() != sigma[i].String() {
			t.Errorf("CFD %d mismatch:\n%s\nvs\n%s", i, back[i], sigma[i])
		}
	}
}
