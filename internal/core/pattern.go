// Package core implements the paper's primary contribution: conditional
// functional dependencies (CFDs) — their syntax (pattern tableaux), semantics
// (the match operator ≍), and the reasoning machinery of Section 3:
// consistency, the inference system FD1–FD8, implication, and MinCover.
package core

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// PatternKind classifies a pattern-tableau cell.
type PatternKind uint8

const (
	// Const is a constant 'a' from the attribute's domain.
	Const PatternKind = iota
	// Wildcard is the unnamed variable '_' of the paper, matching any value.
	Wildcard
	// DontCare is the '@' symbol of Section 4.2, introduced when tableaux of
	// different CFDs are made union-compatible. A DontCare cell is excluded
	// from matching and from grouping (the attribute is outside the embedded
	// FD of the pattern's originating CFD).
	DontCare
)

// Pattern is one cell of a pattern tuple: a constant, '_' or '@'.
type Pattern struct {
	Kind PatternKind
	Val  relation.Value // meaningful only when Kind == Const
}

// C returns a constant pattern cell.
func C(v relation.Value) Pattern { return Pattern{Kind: Const, Val: v} }

// W returns the unnamed-variable ('_') pattern cell.
func W() Pattern { return Pattern{Kind: Wildcard} }

// AtSign returns the don't-care ('@') pattern cell of Section 4.2.
func AtSign() Pattern { return Pattern{Kind: DontCare} }

// Matches reports whether a data value matches this pattern cell
// (the per-cell component of the ≍ relation): a constant matches only
// itself; '_' and '@' match everything.
func (p Pattern) Matches(v relation.Value) bool {
	return p.Kind != Const || p.Val == v
}

// Leq reports the order relation p ⪯ q used by inference rule FD3:
// p ⪯ q iff q is '_', or p and q are the same constant. ('@' cells never
// participate in FD3; they order like '_' for symmetry.)
func (p Pattern) Leq(q Pattern) bool {
	if q.Kind != Const {
		return true
	}
	return p.Kind == Const && p.Val == q.Val
}

// String renders the cell in the paper's notation.
func (p Pattern) String() string {
	switch p.Kind {
	case Wildcard:
		return "_"
	case DontCare:
		return "@"
	default:
		if needsQuoting(p.Val) {
			return "'" + strings.ReplaceAll(p.Val, "'", "''") + "'"
		}
		return p.Val
	}
}

func needsQuoting(v string) bool {
	if v == "" || v == "_" || v == "@" {
		return true
	}
	return strings.ContainsAny(v, " ,'[]()=|#\t\n")
}

// PatternRow is one pattern tuple tc of a tableau. Cells are stored
// positionally against the CFD's LHS and RHS attribute lists, so an
// attribute occurring on both sides (the paper's t[AL] / t[AR]) simply has
// one cell in X and one in Y.
type PatternRow struct {
	X []Pattern
	Y []Pattern
}

// Clone deep-copies the row.
func (r PatternRow) Clone() PatternRow {
	return PatternRow{X: append([]Pattern(nil), r.X...), Y: append([]Pattern(nil), r.Y...)}
}

// MatchCells reports whether the data values vals (positionally aligned with
// pats) match every pattern cell: vals ≍ pats.
func MatchCells(vals []relation.Value, pats []Pattern) bool {
	for i, p := range pats {
		if !p.Matches(vals[i]) {
			return false
		}
	}
	return true
}

// LeqCells reports the pointwise order relation vals-as-patterns ⪯ pats.
func LeqCells(a, b []Pattern) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Leq(b[i]) {
			return false
		}
	}
	return true
}

func cellsString(pats []Pattern) string {
	parts := make([]string, len(pats))
	for i, p := range pats {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// String renders the row as "(x1, ..., xn || y1, ..., ym)".
func (r PatternRow) String() string {
	return fmt.Sprintf("(%s || %s)", cellsString(r.X), cellsString(r.Y))
}
