package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestPatternMatches(t *testing.T) {
	tests := []struct {
		p    Pattern
		v    relation.Value
		want bool
	}{
		{C("a"), "a", true},
		{C("a"), "b", false},
		{C(""), "", true},
		{W(), "anything", true},
		{W(), "", true},
		{AtSign(), "anything", true},
	}
	for _, tt := range tests {
		if got := tt.p.Matches(tt.v); got != tt.want {
			t.Errorf("%s.Matches(%q) = %v, want %v", tt.p, tt.v, got, tt.want)
		}
	}
}

func TestPatternLeq(t *testing.T) {
	// The order relation of FD3: η1 ⪯ η2 iff η1 = η2 = a, or η2 = '_'.
	tests := []struct {
		a, b Pattern
		want bool
	}{
		{C("a"), C("a"), true},
		{C("a"), C("b"), false},
		{C("a"), W(), true},  // (a) ⪯ (_) — the paper's example
		{W(), W(), true},     // _ ⪯ _
		{W(), C("a"), false}, // '_' is not below a constant
	}
	for _, tt := range tests {
		if got := tt.a.Leq(tt.b); got != tt.want {
			t.Errorf("%s.Leq(%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// genPattern draws a random pattern cell over a tiny constant alphabet.
func genPattern(r *rand.Rand) Pattern {
	switch r.Intn(4) {
	case 0:
		return W()
	default:
		return C(string(rune('a' + r.Intn(3))))
	}
}

func genValue(r *rand.Rand) relation.Value {
	return string(rune('a' + r.Intn(4)))
}

// Property: ⪯ is reflexive and transitive (a partial order on cells).
func TestLeqIsPartialOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(genPattern(r))
		vs[1] = reflect.ValueOf(genPattern(r))
		vs[2] = reflect.ValueOf(genPattern(r))
	}}
	if err := quick.Check(func(a, b, c Pattern) bool {
		if !a.Leq(a) {
			return false
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: if a data value matches p and p ⪯ q, the value matches q
// (matching is monotone in the pattern order — the fact FD3 relies on).
func TestMatchMonotoneInLeq(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(genValue(r))
		vs[1] = reflect.ValueOf(genPattern(r))
		vs[2] = reflect.ValueOf(genPattern(r))
	}}
	if err := quick.Check(func(v relation.Value, p, q Pattern) bool {
		if p.Matches(v) && p.Leq(q) && !q.Matches(v) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatchCells(t *testing.T) {
	vals := []relation.Value{"01", "908", "1111111"}
	if !MatchCells(vals, []Pattern{C("01"), C("908"), W()}) {
		t.Error("t1[CC,AC,PN] should match (01, 908, _)")
	}
	if MatchCells(vals, []Pattern{C("01"), C("212"), W()}) {
		t.Error("t1[CC,AC,PN] should not match (01, 212, _)")
	}
	if !MatchCells(nil, nil) {
		t.Error("empty cell lists must match (empty LHS case)")
	}
}

func TestLeqCells(t *testing.T) {
	if !LeqCells([]Pattern{C("a"), C("b")}, []Pattern{W(), C("b")}) {
		t.Error("(a, b) ⪯ (_, b) expected")
	}
	if LeqCells([]Pattern{C("a")}, []Pattern{C("b")}) {
		t.Error("(a) ⪯ (b) unexpected")
	}
	if LeqCells([]Pattern{C("a")}, []Pattern{C("a"), W()}) {
		t.Error("arity mismatch must not be ⪯")
	}
}

func TestPatternString(t *testing.T) {
	tests := []struct {
		p    Pattern
		want string
	}{
		{W(), "_"},
		{AtSign(), "@"},
		{C("NYC"), "NYC"},
		{C("New York"), "'New York'"},
		{C("O'Hare"), "'O''Hare'"},
		{C("_"), "'_'"}, // a literal underscore value must be quoted
		{C("@"), "'@'"},
		{C(""), "''"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
