package core

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file is the reference (specification-level) implementation of CFD
// satisfaction: a direct transcription of the paper's Section 2 semantics.
// It is deliberately simple — internal/detect holds the production
// detectors (hash-based and SQL-based) that are cross-checked against it.

// ViolationKind distinguishes the two ways a CFD can be violated
// (Example 2.2 of the paper).
type ViolationKind uint8

const (
	// ConstViolation is a single-tuple violation: t matches tc[X] but some
	// constant Y-cell disagrees with t (what query QC detects).
	ConstViolation ViolationKind = iota
	// VariableViolation is a multi-tuple violation: two tuples agree on X,
	// both match tc[X], but disagree on Y (what query QV detects).
	VariableViolation
)

func (k ViolationKind) String() string {
	if k == ConstViolation {
		return "const"
	}
	return "variable"
}

// Violation describes one detected inconsistency of a relation w.r.t. a CFD.
type Violation struct {
	Kind ViolationKind
	// Row is the tableau row index of the pattern tuple being violated.
	Row int
	// Tuples holds the violating data row ids: exactly one for a
	// ConstViolation; the whole conflicting group for a VariableViolation.
	Tuples []int
	// Key holds the shared X-values of a VariableViolation group (what the
	// paper's QV query returns); nil for ConstViolations.
	Key []relation.Value
}

// Satisfies reports I ⊨ ϕ by direct application of the Section 2 semantics.
func Satisfies(rel *relation.Relation, cfd *CFD) (bool, error) {
	vs, err := FindViolations(rel, cfd)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// SatisfiesSet reports I ⊨ Σ.
func SatisfiesSet(rel *relation.Relation, sigma []*CFD) (bool, error) {
	for _, c := range sigma {
		ok, err := Satisfies(rel, c)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// FindViolations returns every violation of ϕ in the instance, in
// deterministic order (tableau row, then data row / group key).
//
// This is the naive O(|Tp| · |I|) reference algorithm; use
// internal/detect for large inputs.
func FindViolations(rel *relation.Relation, cfd *CFD) ([]Violation, error) {
	if err := cfd.Validate(rel.Schema); err != nil {
		return nil, err
	}
	xIdx, err := rel.Schema.Indexes(cfd.LHS)
	if err != nil {
		return nil, err
	}
	yIdx, err := rel.Schema.Indexes(cfd.RHS)
	if err != nil {
		return nil, err
	}
	var out []Violation
	for ri, row := range cfd.Tableau {
		out = append(out, violationsOfRow(rel, ri, row, xIdx, yIdx)...)
	}
	return out, nil
}

func violationsOfRow(rel *relation.Relation, ri int, row PatternRow, xIdx, yIdx []int) []Violation {
	var out []Violation
	// Group the tuples matching tc[X] by their X-projection, tracking
	// single-tuple constant violations along the way.
	groups := make(map[string][]int)
	var keyOrder []string
	keyVals := make(map[string][]relation.Value)
	for t := range rel.Tuples {
		xv := rel.Project(t, xIdx)
		if !MatchCells(xv, row.X) {
			continue
		}
		yv := rel.Project(t, yIdx)
		if !MatchCells(yv, row.Y) {
			// Only constant Y-cells can fail a single-tuple match.
			out = append(out, Violation{Kind: ConstViolation, Row: ri, Tuples: []int{t}})
		}
		k := relation.EncodeKey(xv)
		if _, ok := groups[k]; !ok {
			keyOrder = append(keyOrder, k)
			keyVals[k] = xv
		}
		groups[k] = append(groups[k], t)
	}
	for _, k := range keyOrder {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		distinct := make(map[string]bool)
		for _, t := range rows {
			distinct[relation.EncodeKey(rel.Project(t, yIdx))] = true
		}
		if len(distinct) > 1 {
			out = append(out, Violation{
				Kind:   VariableViolation,
				Row:    ri,
				Tuples: append([]int(nil), rows...),
				Key:    keyVals[k],
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if len(out[i].Tuples) > 0 && len(out[j].Tuples) > 0 {
			return out[i].Tuples[0] < out[j].Tuples[0]
		}
		return false
	})
	return out
}

// ViolatingTuples returns the sorted set of data row ids involved in any
// violation of any CFD in Σ ("the inconsistent tuples" of Section 4).
func ViolatingTuples(rel *relation.Relation, sigma []*CFD) ([]int, error) {
	set := make(map[int]bool)
	for _, c := range sigma {
		vs, err := FindViolations(rel, c)
		if err != nil {
			return nil, err
		}
		for _, v := range vs {
			for _, t := range v.Tuples {
				set[t] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out, nil
}

// String renders a violation for diagnostics.
func (v Violation) String() string {
	if v.Kind == ConstViolation {
		return fmt.Sprintf("const violation of pattern row %d by tuple %d", v.Row, v.Tuples[0])
	}
	return fmt.Sprintf("variable violation of pattern row %d by tuples %v (X=%v)", v.Row, v.Tuples, v.Key)
}
