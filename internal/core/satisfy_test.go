package core

import (
	"reflect"
	"testing"
)

// TestExample22 reproduces Example 2.2: cust satisfies ϕ1 and ϕ3 but not
// ϕ2, and the ϕ2 violations are those of Example 4.1 — t1, t2 as constant
// (QC-style) violations, t3, t4 as a variable (QV-style) violation group.
func TestExample22(t *testing.T) {
	rel := custInstance()

	if ok, err := Satisfies(rel, phi1()); err != nil || !ok {
		t.Fatalf("cust should satisfy ϕ1 (err=%v)", err)
	}
	if ok, err := Satisfies(rel, phi3()); err != nil || !ok {
		t.Fatalf("cust should satisfy ϕ3 (err=%v)", err)
	}
	ok, err := Satisfies(rel, phi2())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cust should violate ϕ2")
	}

	vs, err := FindViolations(rel, phi2())
	if err != nil {
		t.Fatal(err)
	}
	var constRows, varGroups [][]int
	for _, v := range vs {
		switch v.Kind {
		case ConstViolation:
			constRows = append(constRows, v.Tuples)
		case VariableViolation:
			varGroups = append(varGroups, v.Tuples)
		}
	}
	if want := [][]int{{0}, {1}}; !reflect.DeepEqual(constRows, want) {
		t.Errorf("const violations = %v, want %v (tuples t1, t2)", constRows, want)
	}
	// t3, t4 violate via BOTH the all-wildcard row of T2 (f1) and the
	// (01, 212, _) row: they match both patterns and differ on ZIP. The
	// reference detector reports one group per tableau row.
	if want := [][]int{{2, 3}, {2, 3}}; !reflect.DeepEqual(varGroups, want) {
		t.Errorf("variable violation groups = %v, want %v (tuples t3, t4)", varGroups, want)
	}
}

// TestSingleTupleViolation checks the observation of Section 2: "while
// violation of a standard FD requires two tuples, a single tuple may
// violate a CFD".
func TestSingleTupleViolation(t *testing.T) {
	rel := custInstance()
	rel.Tuples = rel.Tuples[:1] // just t1
	ok, err := Satisfies(rel, phi2())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a single tuple (t1) should violate ϕ2's (01, 908, _ ‖ _, MH, _) row")
	}
}

// TestStandardFDAsCFD checks the first special case of Section 2: a
// standard FD is a CFD with a single all-'_' pattern row, and classical FD
// semantics is recovered.
func TestStandardFDAsCFD(t *testing.T) {
	f2 := MustCFD([]string{"CC", "AC"}, []string{"CT"},
		PatternRow{X: []Pattern{W(), W()}, Y: []Pattern{W()}})
	if !f2.IsStandardFD() {
		t.Error("f2 should be recognized as a standard FD")
	}
	rel := custInstance()
	if ok, _ := Satisfies(rel, f2); !ok {
		t.Error("cust should satisfy the FD [CC,AC] → [CT] (the paper: FDs hold on Fig. 1)")
	}
	// Break it: two tuples with equal (CC,AC) but different CT.
	rel.MustInsert("01", "908", "9999999", "Eve", "Elm Str.", "PHI", "00000")
	if ok, _ := Satisfies(rel, f2); ok {
		t.Error("after inserting a (01,908,PHI) tuple the FD must fail")
	}
	vs, _ := FindViolations(rel, f2)
	if len(vs) != 1 || vs[0].Kind != VariableViolation {
		t.Errorf("want exactly one variable violation, got %v", vs)
	}
}

// TestInstanceFDAsCFD checks the second special case of Section 2: an
// instance-level FD (Lim & Prabhakar) is a CFD whose tableau is one
// all-constant row.
func TestInstanceFDAsCFD(t *testing.T) {
	ifd := MustCFD([]string{"CC", "AC"}, []string{"CT"},
		PatternRow{X: []Pattern{C("01"), C("215")}, Y: []Pattern{C("PHI")}})
	if !ifd.IsInstanceFD() {
		t.Error("should be recognized as an instance-level FD")
	}
	if ifd.IsStandardFD() {
		t.Error("an all-constant row is not a standard FD")
	}
	rel := custInstance()
	if ok, _ := Satisfies(rel, ifd); !ok {
		t.Error("cust satisfies [CC=01, AC=215] → [CT=PHI] (tuple t5)")
	}
	rel.Tuples[4][rel.Schema.MustIndex("CT")] = "NYC"
	if ok, _ := Satisfies(rel, ifd); ok {
		t.Error("changing t5's city must violate the instance-level FD")
	}
}

// TestAttributeOnBothSides exercises the t[AL]/t[AR] case: attribute CT on
// both sides of the embedded FD, with differing patterns.
func TestAttributeOnBothSides(t *testing.T) {
	c := MustCFD([]string{"CT"}, []string{"CT"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{C("NYC")}})
	rel := custInstance()
	vs, err := FindViolations(rel, c)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple whose CT is not NYC is a constant violation: t5, t6.
	var rows []int
	for _, v := range vs {
		if v.Kind == ConstViolation {
			rows = append(rows, v.Tuples[0])
		}
	}
	if want := []int{4, 5}; !reflect.DeepEqual(rows, want) {
		t.Errorf("const violations = %v, want %v", rows, want)
	}
}

// TestEmptyLHS: constraints of the form (∅ → A, (a)) — produced by
// MinCover in Example 3.3 — require every tuple to carry the constant.
func TestEmptyLHS(t *testing.T) {
	c := MustCFD(nil, []string{"CC"}, PatternRow{Y: []Pattern{C("01")}})
	rel := custInstance()
	vs, err := FindViolations(rel, c)
	if err != nil {
		t.Fatal(err)
	}
	// t6 has CC=44: one const violation. All six tuples share the empty
	// X-projection, and CC differs, so one variable violation group too.
	var consts, vars int
	for _, v := range vs {
		if v.Kind == ConstViolation {
			consts++
		} else {
			vars++
		}
	}
	if consts != 1 || vars != 1 {
		t.Errorf("got %d const, %d variable violations; want 1 and 1", consts, vars)
	}
}

func TestViolatingTuples(t *testing.T) {
	rel := custInstance()
	got, err := ViolatingTuples(rel, []*CFD{phi1(), phi2(), phi3()})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("violating tuples = %v, want %v", got, want)
	}
}

func TestSatisfiesSet(t *testing.T) {
	rel := custInstance()
	if ok, _ := SatisfiesSet(rel, []*CFD{phi1(), phi3()}); !ok {
		t.Error("cust ⊨ {ϕ1, ϕ3}")
	}
	if ok, _ := SatisfiesSet(rel, []*CFD{phi1(), phi2(), phi3()}); ok {
		t.Error("cust ⊭ {ϕ1, ϕ2, ϕ3}")
	}
}

func TestValidateErrors(t *testing.T) {
	rel := custInstance()
	bad := MustCFD([]string{"NOPE"}, []string{"CT"},
		PatternRow{X: []Pattern{W()}, Y: []Pattern{W()}})
	if _, err := FindViolations(rel, bad); err == nil {
		t.Error("unknown attribute must be rejected")
	}
}
