// Package detect finds CFD violations in relation instances — the paper's
// Section 4 pipeline, end to end. Three interchangeable strategies are
// provided and cross-checked against each other in the test suite:
//
//   - Direct: a pure-Go hash-index detector (the oracle; no SQL involved).
//   - SQLPerCFD: one (QC, QV) query pair per CFD (Section 4.1), 2·|Σ|
//     passes over the data.
//   - SQLMerged: the single merged pair (QCΣ, QVΣ) of Section 4.2, two
//     passes regardless of |Σ|.
//
// The SQL strategies run the generated text through the sqlmini engine,
// optionally via the standard database/sql interface (driver "cfdmem").
package detect

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqlgen"
)

// Strategy selects the detection implementation.
type Strategy int

const (
	// Direct is the pure-Go hash detector.
	Direct Strategy = iota
	// SQLPerCFD generates and runs one query pair per CFD.
	SQLPerCFD
	// SQLMerged generates and runs the merged two-query plan.
	SQLMerged
)

func (s Strategy) String() string {
	switch s {
	case Direct:
		return "direct"
	case SQLPerCFD:
		return "sql-per-cfd"
	default:
		return "sql-merged"
	}
}

// Options configures detection.
type Options struct {
	Strategy Strategy
	// Form is the WHERE-clause presentation for the SQL strategies.
	Form sqlgen.Form
	// ViaDriver routes SQL through database/sql instead of calling the
	// engine directly. Results are identical; this exercises the standard
	// interface a production deployment would use.
	ViaDriver bool
	// SQLGen overrides marker/alias settings (zero value = defaults).
	SQLGen sqlgen.Options
}

func (o Options) sqlOptions() sqlgen.Options {
	opts := o.SQLGen
	opts.Form = o.Form
	opts.IncludeRowid = true
	return opts
}

// CFDViolations is the canonical per-CFD detection outcome, comparable
// across strategies:
//
//   - ConstTuples: row ids with a single-tuple (constant) violation — what
//     QC returns.
//   - VariableKeys: the distinct X-projections of multi-tuple violation
//     groups — what QV returns.
type CFDViolations struct {
	ConstTuples  []int
	VariableKeys [][]relation.Value
}

// Result holds one CFDViolations per input CFD, positionally.
type Result struct {
	PerCFD []CFDViolations
}

// ViolatingCFDs returns the indexes of CFDs with at least one violation.
func (r *Result) ViolatingCFDs() []int {
	var out []int
	for i, v := range r.PerCFD {
		if len(v.ConstTuples) > 0 || len(v.VariableKeys) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Clean reports whether no CFD is violated.
func (r *Result) Clean() bool { return len(r.ViolatingCFDs()) == 0 }

// Equal compares two results (used by the cross-check tests).
func (r *Result) Equal(o *Result) bool {
	if len(r.PerCFD) != len(o.PerCFD) {
		return false
	}
	for i := range r.PerCFD {
		a, b := r.PerCFD[i], o.PerCFD[i]
		if len(a.ConstTuples) != len(b.ConstTuples) || len(a.VariableKeys) != len(b.VariableKeys) {
			return false
		}
		for j := range a.ConstTuples {
			if a.ConstTuples[j] != b.ConstTuples[j] {
				return false
			}
		}
		for j := range a.VariableKeys {
			if relation.EncodeKey(a.VariableKeys[j]) != relation.EncodeKey(b.VariableKeys[j]) {
				return false
			}
		}
	}
	return true
}

// Detect runs violation detection for Σ over the instance.
func Detect(rel *relation.Relation, sigma []*core.CFD, opts Options) (*Result, error) {
	for i, c := range sigma {
		if err := c.Validate(rel.Schema); err != nil {
			return nil, fmt.Errorf("detect: CFD %d: %w", i, err)
		}
	}
	switch opts.Strategy {
	case Direct:
		return detectDirect(rel, sigma)
	case SQLPerCFD:
		return detectPerCFD(rel, sigma, opts)
	case SQLMerged:
		return detectMerged(rel, sigma, opts)
	}
	return nil, fmt.Errorf("detect: unknown strategy %d", opts.Strategy)
}

// canonicalize sorts and dedupes the raw per-CFD accumulations.
func canonicalize(constSet map[int]bool, keySet map[string][]relation.Value) CFDViolations {
	out := CFDViolations{}
	for t := range constSet {
		out.ConstTuples = append(out.ConstTuples, t)
	}
	sort.Ints(out.ConstTuples)
	encoded := make([]string, 0, len(keySet))
	for k := range keySet {
		encoded = append(encoded, k)
	}
	sort.Strings(encoded)
	for _, k := range encoded {
		out.VariableKeys = append(out.VariableKeys, keySet[k])
	}
	return out
}

func atoiOrErr(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("detect: bad rowid %q from SQL result: %w", s, err)
	}
	return n, nil
}
