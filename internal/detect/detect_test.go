package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqlgen"
)

func custRelation() *relation.Relation {
	schema := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"),
		relation.Attr("ZIP"))
	rel := relation.New(schema)
	rel.MustInsert("01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974")
	rel.MustInsert("01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974")
	rel.MustInsert("01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202")
	rel.MustInsert("01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404")
	rel.MustInsert("01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394")
	rel.MustInsert("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT")
	return rel
}

func figure2CFDs() []*core.CFD {
	phi1 := core.MustCFD([]string{"CC", "ZIP"}, []string{"STR"},
		core.PatternRow{X: []core.Pattern{core.C("44"), core.W()}, Y: []core.Pattern{core.W()}})
	phi2 := core.MustCFD([]string{"CC", "AC", "PN"}, []string{"STR", "CT", "ZIP"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W(), core.W()}, Y: []core.Pattern{core.W(), core.W(), core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("908"), core.W()}, Y: []core.Pattern{core.W(), core.C("MH"), core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("212"), core.W()}, Y: []core.Pattern{core.W(), core.C("NYC"), core.W()}})
	phi3 := core.MustCFD([]string{"CC", "AC"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("215")}, Y: []core.Pattern{core.C("PHI")}},
		core.PatternRow{X: []core.Pattern{core.C("44"), core.C("141")}, Y: []core.Pattern{core.C("GLA")}})
	return []*core.CFD{phi1, phi2, phi3}
}

func allStrategies() []Options {
	return []Options{
		{Strategy: Direct},
		{Strategy: SQLPerCFD, Form: sqlgen.CNF},
		{Strategy: SQLPerCFD, Form: sqlgen.DNF},
		{Strategy: SQLPerCFD, Form: sqlgen.DNF, ViaDriver: true},
		{Strategy: SQLMerged, Form: sqlgen.CNF},
		{Strategy: SQLMerged, Form: sqlgen.DNF},
		{Strategy: SQLMerged, Form: sqlgen.CNF, ViaDriver: true},
	}
}

// TestAllStrategiesOnFigure2 checks every strategy against the known ground
// truth of Example 4.1 and Example 2.2.
func TestAllStrategiesOnFigure2(t *testing.T) {
	rel := custRelation()
	sigma := figure2CFDs()
	for _, opts := range allStrategies() {
		name := fmt.Sprintf("%s/%s/driver=%v", opts.Strategy, opts.Form, opts.ViaDriver)
		res, err := Detect(rel, sigma, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// ϕ1 (index 0) and ϕ3 (index 2) hold.
		for _, i := range []int{0, 2} {
			v := res.PerCFD[i]
			if len(v.ConstTuples) != 0 || len(v.VariableKeys) != 0 {
				t.Errorf("%s: CFD %d should be satisfied, got %+v", name, i, v)
			}
		}
		// ϕ2: const violations t1, t2; variable group (01, 212, 2222222).
		v := res.PerCFD[1]
		if want := []int{0, 1}; !reflect.DeepEqual(v.ConstTuples, want) {
			t.Errorf("%s: const tuples = %v, want %v", name, v.ConstTuples, want)
		}
		if len(v.VariableKeys) != 1 || relation.EncodeKey(v.VariableKeys[0]) != relation.EncodeKey([]relation.Value{"01", "212", "2222222"}) {
			t.Errorf("%s: variable keys = %v", name, v.VariableKeys)
		}
		if res.Clean() {
			t.Errorf("%s: result should not be clean", name)
		}
		if want := []int{1}; !reflect.DeepEqual(res.ViolatingCFDs(), want) {
			t.Errorf("%s: violating CFDs = %v, want %v", name, res.ViolatingCFDs(), want)
		}
	}
}

// TestStrategiesAgreeOnRandomInstances (property): all strategies return
// identical canonical results on randomized instances and CFDs.
func TestStrategiesAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := relation.MustSchema("R",
		relation.Attr("A"), relation.Attr("B"), relation.Attr("C"), relation.Attr("D"))
	attrs := []string{"A", "B", "C", "D"}
	vals := []relation.Value{"0", "1", "2"}

	randomCFD := func() *core.CFD {
		perm := rng.Perm(4)
		nx := 1 + rng.Intn(2)
		ny := 1 + rng.Intn(2)
		lhs := make([]string, nx)
		rhs := make([]string, ny)
		for i := range lhs {
			lhs[i] = attrs[perm[i]]
		}
		for i := range rhs {
			rhs[i] = attrs[perm[nx+i]]
		}
		nrows := 1 + rng.Intn(3)
		rows := make([]core.PatternRow, nrows)
		for r := range rows {
			rows[r] = core.PatternRow{X: make([]core.Pattern, nx), Y: make([]core.Pattern, ny)}
			for i := range rows[r].X {
				if rng.Intn(2) == 0 {
					rows[r].X[i] = core.W()
				} else {
					rows[r].X[i] = core.C(vals[rng.Intn(3)])
				}
			}
			for i := range rows[r].Y {
				if rng.Intn(2) == 0 {
					rows[r].Y[i] = core.W()
				} else {
					rows[r].Y[i] = core.C(vals[rng.Intn(3)])
				}
			}
		}
		return core.MustCFD(lhs, rhs, rows...)
	}

	for iter := 0; iter < 40; iter++ {
		rel := relation.New(schema)
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			rel.MustInsert(vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)])
		}
		sigma := []*core.CFD{randomCFD(), randomCFD()}

		var first *Result
		var firstName string
		for _, opts := range allStrategies() {
			name := fmt.Sprintf("%s/%s/driver=%v", opts.Strategy, opts.Form, opts.ViaDriver)
			res, err := Detect(rel, sigma, opts)
			if err != nil {
				t.Fatalf("iter %d %s: %v\nCFDs:\n%s\n%s", iter, name, err, sigma[0], sigma[1])
			}
			if first == nil {
				first, firstName = res, name
				continue
			}
			if !first.Equal(res) {
				t.Fatalf("iter %d: %s and %s disagree\n%s: %+v\n%s: %+v\nCFDs:\n%s\n%s\ndata:\n%s",
					iter, firstName, name, firstName, first.PerCFD, name, res.PerCFD, sigma[0], sigma[1], rel)
			}
		}
	}
}

// TestFindDetailedMatchesReference: the indexed detector agrees with the
// naive reference implementation in core, as violation sets.
func TestFindDetailedMatchesReference(t *testing.T) {
	rel := custRelation()
	for i, c := range figure2CFDs() {
		fast, err := FindDetailed(rel, c)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := core.FindViolations(rel, c)
		if err != nil {
			t.Fatal(err)
		}
		if !sameViolationSet(fast, slow) {
			t.Errorf("CFD %d: indexed %v != reference %v", i, fast, slow)
		}
	}
}

func sameViolationSet(a, b []core.Violation) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(v core.Violation) string {
		return fmt.Sprintf("%d|%d|%v|%v", v.Kind, v.Row, v.Tuples, v.Key)
	}
	count := make(map[string]int)
	for _, v := range a {
		count[key(v)]++
	}
	for _, v := range b {
		count[key(v)]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestDetectValidatesCFDs(t *testing.T) {
	rel := custRelation()
	bad := core.MustCFD([]string{"NOPE"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	for _, opts := range allStrategies() {
		if _, err := Detect(rel, []*core.CFD{bad}, opts); err == nil {
			t.Errorf("%v: unknown attribute must be rejected", opts.Strategy)
		}
	}
}

func TestDetectEmptyRelation(t *testing.T) {
	rel := relation.New(custRelation().Schema)
	for _, opts := range allStrategies() {
		res, err := Detect(rel, figure2CFDs(), opts)
		if err != nil {
			t.Fatalf("%v: %v", opts.Strategy, err)
		}
		if !res.Clean() {
			t.Errorf("%v: empty instance must be clean", opts.Strategy)
		}
	}
}

// TestEmptyLHSAcrossStrategies: constraints (∅ → A, (a)) — the MinCover
// output shape — must agree across all strategies.
func TestEmptyLHSAcrossStrategies(t *testing.T) {
	rel := custRelation()
	sigma := []*core.CFD{
		core.MustCFD(nil, []string{"CC"}, core.PatternRow{Y: []core.Pattern{core.C("01")}}),
		core.MustCFD(nil, []string{"CT"}, core.PatternRow{Y: []core.Pattern{core.W()}}),
	}
	var first *Result
	for _, opts := range allStrategies() {
		res, err := Detect(rel, sigma, opts)
		if err != nil {
			t.Fatalf("%v/%v: %v", opts.Strategy, opts.Form, err)
		}
		if first == nil {
			first = res
			// CFD 0: t6 (CC=44) is a const violation; the six tuples also
			// form a conflicting group on CC. CFD 1: all tuples share the
			// empty X and differ on CT: one conflicting group.
			if !reflect.DeepEqual(res.PerCFD[0].ConstTuples, []int{5}) {
				t.Errorf("const tuples = %v, want [5]", res.PerCFD[0].ConstTuples)
			}
			if len(res.PerCFD[0].VariableKeys) != 1 || len(res.PerCFD[1].VariableKeys) != 1 {
				t.Errorf("variable keys = %v / %v, want one empty-key group each",
					res.PerCFD[0].VariableKeys, res.PerCFD[1].VariableKeys)
			}
			continue
		}
		if !first.Equal(res) {
			t.Errorf("%v/%v disagrees on empty-LHS CFDs: %+v vs %+v",
				opts.Strategy, opts.Form, first.PerCFD, res.PerCFD)
		}
	}
}

func TestDetectEmptySigma(t *testing.T) {
	res, err := Detect(custRelation(), nil, Options{Strategy: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() || len(res.PerCFD) != 0 {
		t.Errorf("empty Σ: %+v", res)
	}
	// The merged strategy needs at least one CFD.
	if _, err := Detect(custRelation(), nil, Options{Strategy: SQLMerged}); err == nil {
		t.Error("merged detection of an empty Σ should error (nothing to merge)")
	}
}
