package detect

import (
	"repro/internal/core"
	"repro/internal/relation"
)

// The direct strategy: a pure-Go detector over hash indexes. It serves two
// roles — the oracle the SQL paths are verified against, and the fast path
// for embedding the library without any SQL surface.
//
// Pattern rows are bucketed by their constant-position mask so that one
// index on the data (keyed by those positions) serves every pattern row in
// the bucket; candidate sets then shrink to the tuples matching the row's
// constants, giving O(Σ_p |cand(p)|) instead of O(|Tp| · |I|).

func detectDirect(rel *relation.Relation, sigma []*core.CFD) (*Result, error) {
	res := &Result{PerCFD: make([]CFDViolations, len(sigma))}
	for i, c := range sigma {
		v, err := directOne(rel, c)
		if err != nil {
			return nil, err
		}
		res.PerCFD[i] = v
	}
	return res, nil
}

// FindDetailed returns the full violation list of one CFD (tableau row,
// kind, tuples, keys) using the indexed algorithm; it is the detector the
// repair heuristic builds on.
func FindDetailed(rel *relation.Relation, cfd *core.CFD) ([]core.Violation, error) {
	xIdx, err := rel.Schema.Indexes(cfd.LHS)
	if err != nil {
		return nil, err
	}
	yIdx, err := rel.Schema.Indexes(cfd.RHS)
	if err != nil {
		return nil, err
	}
	var out []core.Violation
	err = scanPatterns(rel, cfd, xIdx, yIdx, func(ri int, row core.PatternRow, cand []int) {
		// Constant violations plus grouping for variable violations.
		groups := make(map[string][]int)
		var order []string
		keys := make(map[string][]relation.Value)
		for _, t := range cand {
			yv := rel.Project(t, yIdx)
			if !core.MatchCells(yv, row.Y) {
				out = append(out, core.Violation{Kind: core.ConstViolation, Row: ri, Tuples: []int{t}})
			}
			xv := rel.Project(t, xIdx)
			k := relation.EncodeKey(xv)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
				keys[k] = xv
			}
			groups[k] = append(groups[k], t)
		}
		for _, k := range order {
			rows := groups[k]
			if len(rows) < 2 {
				continue
			}
			distinct := make(map[string]bool)
			for _, t := range rows {
				distinct[relation.EncodeKey(rel.Project(t, yIdx))] = true
			}
			if len(distinct) > 1 {
				out = append(out, core.Violation{
					Kind: core.VariableViolation, Row: ri,
					Tuples: append([]int(nil), rows...),
					Key:    keys[k],
				})
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func directOne(rel *relation.Relation, cfd *core.CFD) (CFDViolations, error) {
	constSet := make(map[int]bool)
	keySet := make(map[string][]relation.Value)
	vs, err := FindDetailed(rel, cfd)
	if err != nil {
		return CFDViolations{}, err
	}
	for _, v := range vs {
		switch v.Kind {
		case core.ConstViolation:
			constSet[v.Tuples[0]] = true
		case core.VariableViolation:
			keySet[relation.EncodeKey(v.Key)] = v.Key
		}
	}
	return canonicalize(constSet, keySet), nil
}

// scanPatterns calls visit once per tableau row with the candidate tuple
// ids whose X-projection matches the row's X pattern. Pattern rows sharing
// a constant-position mask share one hash index over the data.
func scanPatterns(rel *relation.Relation, cfd *core.CFD, xIdx, yIdx []int,
	visit func(ri int, row core.PatternRow, cand []int)) error {

	// Bucket rows by constant mask.
	type bucket struct {
		constPos []int // positions within LHS that are constants
		rows     []int // tableau row indexes
	}
	buckets := make(map[string]*bucket)
	var order []string
	for ri, row := range cfd.Tableau {
		maskKey := ""
		var constPos []int
		for i, p := range row.X {
			if p.Kind == core.Const {
				constPos = append(constPos, i)
				maskKey += "1"
			} else {
				maskKey += "0"
			}
		}
		b, ok := buckets[maskKey]
		if !ok {
			b = &bucket{constPos: constPos}
			buckets[maskKey] = b
			order = append(order, maskKey)
		}
		b.rows = append(b.rows, ri)
	}

	allRows := func() []int {
		out := make([]int, rel.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}

	for _, mk := range order {
		b := buckets[mk]
		if len(b.constPos) == 0 {
			// All-wildcard X: every tuple is a candidate for each row.
			cand := allRows()
			for _, ri := range b.rows {
				visit(ri, cfd.Tableau[ri], cand)
			}
			continue
		}
		// Index the data on the constant positions of this mask.
		attrs := make([]string, len(b.constPos))
		for i, p := range b.constPos {
			attrs[i] = cfd.LHS[p]
		}
		ix, err := relation.BuildIndex(rel, attrs)
		if err != nil {
			return err
		}
		key := make([]relation.Value, len(b.constPos))
		for _, ri := range b.rows {
			row := cfd.Tableau[ri]
			for i, p := range b.constPos {
				key[i] = row.X[p].Val
			}
			cand := ix.Lookup(key)
			if len(cand) == 0 {
				continue
			}
			visit(ri, row, cand)
		}
	}
	return nil
}
