package detect

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqlgen"
	"repro/internal/sqlmini"
)

// Explain renders the physical plans the engine would use for one CFD's
// (QC, QV) pair in the given form — how a DBA would diagnose the CNF/DNF
// effect of the paper's Section 5.
func Explain(rel *relation.Relation, cfd *core.CFD, form sqlgen.Form) (string, error) {
	opts := sqlgen.Default(form)
	tab, err := sqlgen.TableauRelation(cfd, "T1", opts)
	if err != nil {
		return "", err
	}
	db := sqlmini.NewDB()
	db.RegisterRelation(DataTable, rel)
	db.RegisterRelation("T1", tab)

	qc, err := sqlgen.QC(cfd, DataTable, "T1", opts)
	if err != nil {
		return "", err
	}
	qv, err := sqlgen.QV(cfd, DataTable, "T1", opts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- QC (%s)\n", form)
	planQC, err := db.Explain(qc)
	if err != nil {
		return "", err
	}
	b.WriteString(planQC)
	fmt.Fprintf(&b, "-- QV (%s)\n", form)
	planQV, err := db.Explain(qv)
	if err != nil {
		return "", err
	}
	b.WriteString(planQV)
	return b.String(), nil
}
