package detect

import (
	"strings"
	"testing"

	"repro/internal/sqlgen"
)

// TestExplainShowsOptimizerEffect is the paper's CNF-vs-DNF finding as a
// functional assertion on generated detection queries: the CNF pair plans
// nested loops, the DNF pair plans hash joins wherever a disjunct carries
// an equality conjunct.
func TestExplainShowsOptimizerEffect(t *testing.T) {
	rel := custRelation()
	phi2 := figure2CFDs()[1] // [CC,AC,PN] → [STR,CT,ZIP], 3 pattern rows

	cnf, err := Explain(rel, phi2, sqlgen.CNF)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cnf, "nested loop tp") {
		t.Errorf("CNF detection must plan nested loops:\n%s", cnf)
	}
	if strings.Contains(cnf, "hash join") {
		t.Errorf("CNF detection must not find join keys:\n%s", cnf)
	}

	dnf, err := Explain(rel, phi2, sqlgen.DNF)
	if err != nil {
		t.Fatal(err)
	}
	// QC expands to 2^3 X-choices × 3 Y attributes = 24 disjuncts; QV to
	// 2^3 = 8. The all-wildcard X-choice has no equality conjunct and
	// legitimately nested-loops (3 occurrences in QC — one per Y — and 1
	// in QV); every other disjunct must hash join.
	if !strings.Contains(dnf, "DNF, 24 disjuncts") {
		t.Errorf("QC DNF should expand to 24 disjuncts:\n%s", dnf)
	}
	if !strings.Contains(dnf, "DNF, 8 disjuncts") {
		t.Errorf("QV DNF should expand to 8 disjuncts:\n%s", dnf)
	}
	if n := strings.Count(dnf, "hash join tp"); n != 21+7 {
		t.Errorf("DNF should hash join in 28 disjuncts, got %d:\n%s", n, dnf)
	}
	if n := strings.Count(dnf, "nested loop tp"); n != 3+1 {
		t.Errorf("DNF should nested-loop only the 4 keyless disjuncts, got %d:\n%s", n, dnf)
	}
}
