package detect

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/sqlgen"
)

// TestScaleCrossCheck runs the paper-scale workload (50K tuples, three
// Section 5 CFD families with 500-pattern tableaux, 5% noise) through the
// direct detector and both SQL forms, asserting identical results. Gated
// behind -short because it takes a couple of seconds.
func TestScaleCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	data := gen.GenerateTax(gen.TaxConfig{Size: 50000, Noise: 0.05, Seed: 17})
	var sigma []*core.CFD
	for i, tpl := range []gen.Template{gen.ZipToState, gen.ZipCityToState, gen.StateSalaryToTax} {
		cfd, err := gen.GenerateWorkloadCFD(data.Clean, gen.CFDConfig{
			Template: tpl, TabSize: 500, ConstPct: 0.8, Seed: int64(20 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		sigma = append(sigma, cfd)
	}
	data.Clean = nil // release

	direct, err := Detect(data.Dirty, sigma, Options{Strategy: Direct})
	if err != nil {
		t.Fatal(err)
	}
	// With 5% noise some CFD must be violated.
	if direct.Clean() {
		t.Fatal("expected violations at 5% noise")
	}
	for _, opts := range []Options{
		{Strategy: SQLPerCFD, Form: sqlgen.DNF},
		{Strategy: SQLMerged, Form: sqlgen.CNF},
	} {
		res, err := Detect(data.Dirty, sigma, opts)
		if err != nil {
			t.Fatalf("%v/%v: %v", opts.Strategy, opts.Form, err)
		}
		if !direct.Equal(res) {
			for i := range direct.PerCFD {
				t.Logf("CFD %d: direct const=%d keys=%d vs %v const=%d keys=%d",
					i, len(direct.PerCFD[i].ConstTuples), len(direct.PerCFD[i].VariableKeys),
					opts.Strategy, len(res.PerCFD[i].ConstTuples), len(res.PerCFD[i].VariableKeys))
			}
			t.Fatalf("%v/%v disagrees with the direct detector at scale", opts.Strategy, opts.Form)
		}
	}
}

// TestFig9fWorkloadGroundTruth: with the full zip→state tableau and no
// noise nothing is flagged; at 5% noise exactly the tuples whose ST or
// ZIP was corrupted (or their group partners) show up.
func TestFig9fWorkloadGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cfd := gen.AllZipStateCFD(gen.NumZips)
	clean := gen.GenerateTax(gen.TaxConfig{Size: 20000, Noise: 0, Seed: 18})
	res, err := Detect(clean.Dirty, []*core.CFD{cfd}, Options{Strategy: Direct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Error("clean data flagged by the full zip→state tableau")
	}
	noisy := gen.GenerateTax(gen.TaxConfig{Size: 20000, Noise: 0.05, Seed: 18})
	res, err = Detect(noisy.Dirty, []*core.CFD{cfd}, Options{Strategy: Direct})
	if err != nil {
		t.Fatal(err)
	}
	// Every const violation must be a tuple whose ST was corrupted.
	corrupted := make(map[int]bool)
	for _, ch := range noisy.Changes {
		if ch.Attr == "ST" {
			corrupted[ch.Row] = true
		}
	}
	for _, tu := range res.PerCFD[0].ConstTuples {
		if !corrupted[tu] {
			t.Errorf("tuple %d flagged but its ST was not corrupted", tu)
		}
	}
	if len(res.PerCFD[0].ConstTuples) == 0 {
		t.Error("no const violations despite ST corruption")
	}
}
