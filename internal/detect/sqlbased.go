package detect

import (
	"database/sql"
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqldriver"
	"repro/internal/sqlgen"
	"repro/internal/sqlmini"
)

// DataTable is the name the instance is registered under in the catalog.
const DataTable = "R"

// queryRunner abstracts "run SQL, get rows of strings" so the detector can
// either call the engine directly or go through database/sql.
type queryRunner interface {
	query(sqlText string) ([][]relation.Value, error)
	close() error
}

type engineRunner struct{ db *sqlmini.DB }

func (r engineRunner) query(sqlText string) ([][]relation.Value, error) {
	res, err := r.db.Query(sqlText)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

func (r engineRunner) close() error { return nil }

type driverRunner struct {
	handle *sql.DB
	dsn    string
}

func (r driverRunner) query(sqlText string) ([][]relation.Value, error) {
	rows, err := r.handle.Query(sqlText)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	var out [][]relation.Value
	for rows.Next() {
		vals := make([]relation.Value, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		out = append(out, vals)
	}
	return out, rows.Err()
}

func (r driverRunner) close() error {
	err := r.handle.Close()
	sqldriver.Unregister(r.dsn)
	return err
}

var dsnCounter int

func newRunner(db *sqlmini.DB, opts Options) (queryRunner, error) {
	if !opts.ViaDriver {
		return engineRunner{db: db}, nil
	}
	dsnCounter++
	dsn := fmt.Sprintf("detect-%d", dsnCounter)
	sqldriver.Register(dsn, db)
	handle, err := sql.Open(sqldriver.DriverName, dsn)
	if err != nil {
		sqldriver.Unregister(dsn)
		return nil, err
	}
	return driverRunner{handle: handle, dsn: dsn}, nil
}

// detectPerCFD runs one (QC, QV) pair per CFD — Section 4.1.
func detectPerCFD(rel *relation.Relation, sigma []*core.CFD, opts Options) (*Result, error) {
	db := sqlmini.NewDB()
	db.RegisterRelation(DataTable, rel)
	genOpts := opts.sqlOptions()

	tabNames := make([]string, len(sigma))
	for i, c := range sigma {
		name := fmt.Sprintf("T%d", i)
		tab, err := sqlgen.TableauRelation(c, name, genOpts)
		if err != nil {
			return nil, err
		}
		db.RegisterRelation(name, tab)
		tabNames[i] = name
	}
	runner, err := newRunner(db, opts)
	if err != nil {
		return nil, err
	}
	defer runner.close()

	res := &Result{PerCFD: make([]CFDViolations, len(sigma))}
	for i, c := range sigma {
		qc, err := sqlgen.QC(c, DataTable, tabNames[i], genOpts)
		if err != nil {
			return nil, err
		}
		qcRows, err := runner.query(qc)
		if err != nil {
			return nil, fmt.Errorf("detect: QC for CFD %d: %w", i, err)
		}
		constSet := make(map[int]bool)
		for _, r := range qcRows {
			id, err := atoiOrErr(r[0])
			if err != nil {
				return nil, err
			}
			constSet[id] = true
		}

		qv, err := sqlgen.QV(c, DataTable, tabNames[i], genOpts)
		if err != nil {
			return nil, err
		}
		qvRows, err := runner.query(qv)
		if err != nil {
			return nil, fmt.Errorf("detect: QV for CFD %d: %w", i, err)
		}
		keySet := make(map[string][]relation.Value)
		for _, r := range qvRows {
			key := append([]relation.Value(nil), r...)
			if len(c.LHS) == 0 {
				// Empty-LHS QV groups by pattern row; canonical key is the
				// empty X projection.
				key = nil
			}
			keySet[relation.EncodeKey(key)] = key
		}
		res.PerCFD[i] = canonicalize(constSet, keySet)
	}
	return res, nil
}

// detectMerged runs the single merged pair (QCΣ, QVΣ) — Section 4.2 —
// and demultiplexes results back to their originating CFDs through the
// pattern-tuple ids.
func detectMerged(rel *relation.Relation, sigma []*core.CFD, opts Options) (*Result, error) {
	genOpts := opts.sqlOptions()
	m, err := sqlgen.Merge(sigma, genOpts)
	if err != nil {
		return nil, err
	}
	db := sqlmini.NewDB()
	db.RegisterRelation(DataTable, rel)
	db.RegisterRelation("TX", m.TX)
	db.RegisterRelation("TY", m.TY)
	runner, err := newRunner(db, opts)
	if err != nil {
		return nil, err
	}
	defer runner.close()

	constSets := make([]map[int]bool, len(sigma))
	keySets := make([]map[string][]relation.Value, len(sigma))
	for i := range sigma {
		constSets[i] = make(map[int]bool)
		keySets[i] = make(map[string][]relation.Value)
	}

	qc, err := m.QC(DataTable, "TX", "TY", genOpts)
	if err != nil {
		return nil, err
	}
	qcRows, err := runner.query(qc)
	if err != nil {
		return nil, fmt.Errorf("detect: merged QC: %w", err)
	}
	for _, r := range qcRows {
		pid, err := atoiOrErr(r[0])
		if err != nil {
			return nil, err
		}
		rowid, err := atoiOrErr(r[1])
		if err != nil {
			return nil, err
		}
		constSets[m.Rows[pid].CFD][rowid] = true
	}

	qv, err := m.QV(DataTable, "TX", "TY", genOpts)
	if err != nil {
		return nil, err
	}
	qvRows, err := runner.query(qv)
	if err != nil {
		return nil, fmt.Errorf("detect: merged QV: %w", err)
	}
	// QVΣ columns: pid, then the masked union-X attributes in m.XAttrs
	// order. Project back to the originating CFD's own LHS order.
	xPos := make(map[string]int, len(m.XAttrs))
	for i, a := range m.XAttrs {
		xPos[a] = i
	}
	for _, r := range qvRows {
		pid, err := atoiOrErr(r[0])
		if err != nil {
			return nil, err
		}
		ci := m.Rows[pid].CFD
		c := sigma[ci]
		key := make([]relation.Value, len(c.LHS))
		for i, a := range c.LHS {
			key[i] = r[1+xPos[a]]
		}
		keySets[ci][relation.EncodeKey(key)] = key
	}

	res := &Result{PerCFD: make([]CFDViolations, len(sigma))}
	for i := range sigma {
		res.PerCFD[i] = canonicalize(constSets[i], keySets[i])
	}
	return res, nil
}
