// Package discovery implements automated CFD discovery from data — the
// future-work item of the paper's Section 7 ("we are developing automated
// methods for discovering CFDs"), in the style the follow-up literature
// later standardized (constant-pattern mining à la CFDMiner plus
// FD-style candidate search).
//
// For every candidate embedded FD X → A with |X| ≤ MaxLHS the miner:
//
//  1. emits the all-wildcard CFD when the FD holds on the whole instance
//     (with classic minimality pruning: X is not emitted when some proper
//     subset already determines A);
//  2. otherwise mines constant patterns: X-groups of at least MinSupport
//     tuples whose A-values agree with confidence ≥ MinConfidence become
//     pattern tuples (x̄ → a), merged into one CFD per embedded FD.
//
// Discovered CFDs with MinConfidence = 1 are guaranteed to hold on the
// input instance (property-tested). The search is exponential in MaxLHS
// only, matching the fixed-schema regime of the paper's analyses.
//
// There is exactly one mining code path, and it is streaming: a Miner
// (see miner.go) subscribes to the group-statistics substrate of an
// incremental.Monitor and re-scores only the X-groups each ChangeSet
// touched. Discover is the from-scratch entry point — it seeds a
// throwaway Monitor with the instance as one bulk batch and reads the
// Miner's initial state — so batch and streaming discovery cannot
// drift apart.
package discovery

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// Config tunes the miner.
type Config struct {
	// MaxLHS bounds the LHS size of candidate FDs (default 1).
	MaxLHS int
	// MinSupport is the minimum number of tuples an X-group needs before
	// it may yield a constant pattern (default 2, so single-tuple groups
	// never generalize).
	MinSupport int
	// MinConfidence is the fraction of a group's tuples that must agree
	// on the RHS value (default 1: exact CFDs only).
	MinConfidence float64
	// MaxPatterns caps the tableau size per embedded FD, keeping the most
	// supported patterns (0 = unlimited).
	MaxPatterns int
}

// Validate rejects tunables no default can repair: a confidence above 1
// can never be met by any group, and a negative pattern cap is
// meaningless (0 already means unlimited). Discover and NewMiner
// validate on entry.
func (c Config) Validate() error {
	if c.MinConfidence > 1 {
		return fmt.Errorf("discovery: MinConfidence %g is above 1 and can never be met", c.MinConfidence)
	}
	if c.MaxPatterns < 0 {
		return fmt.Errorf("discovery: negative MaxPatterns %d (0 means unlimited)", c.MaxPatterns)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxLHS <= 0 {
		c.MaxLHS = 1
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 1
	}
	return c
}

// Discovered is one mined CFD with its mining metadata.
type Discovered struct {
	CFD *core.CFD
	// IsFD reports that the CFD is an all-wildcard (standard FD) find.
	IsFD bool
	// Support holds, per tableau row, the number of matching tuples.
	Support []int
}

// Discover mines CFDs from the instance. It is the bulk entry of the
// one streaming code path: the instance is loaded into a throwaway
// monitor as a single batch, a Miner is seeded over it, and its initial
// mined set is returned.
func Discover(rel *relation.Relation, cfg Config) ([]Discovered, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rel.Len() == 0 {
		return nil, fmt.Errorf("discovery: empty instance")
	}
	m, err := incremental.Load(rel, nil, incremental.Options{})
	if err != nil {
		return nil, err
	}
	mi, err := NewMiner(m, cfg)
	if err != nil {
		return nil, err
	}
	defer mi.Close()
	return mi.Mined()
}

// CFDs extracts just the constraint list.
func CFDs(ds []Discovered) []*core.CFD {
	out := make([]*core.CFD, len(ds))
	for i, d := range ds {
		out[i] = d.CFD
	}
	return out
}

// subsetsUpTo enumerates nonempty subsets of attrs with size ≤ k, smaller
// sizes first (so minimality pruning sees subsets before supersets).
func subsetsUpTo(attrs []string, k int) [][]string {
	var out [][]string
	var build func(start int, cur []string)
	for size := 1; size <= k && size <= len(attrs); size++ {
		build = func(start int, cur []string) {
			if len(cur) == size {
				out = append(out, append([]string(nil), cur...))
				return
			}
			for i := start; i < len(attrs); i++ {
				build(i+1, append(cur, attrs[i]))
			}
		}
		build(0, nil)
	}
	return out
}

func contains(xs []string, a string) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}
