// Package discovery implements automated CFD discovery from data — the
// future-work item of the paper's Section 7 ("we are developing automated
// methods for discovering CFDs"), in the style the follow-up literature
// later standardized (constant-pattern mining à la CFDMiner plus
// FD-style candidate search).
//
// For every candidate embedded FD X → A with |X| ≤ MaxLHS the miner:
//
//  1. emits the all-wildcard CFD when the FD holds on the whole instance
//     (with classic minimality pruning: X is not emitted when some proper
//     subset already determines A);
//  2. otherwise mines constant patterns: X-groups of at least MinSupport
//     tuples whose A-values agree with confidence ≥ MinConfidence become
//     pattern tuples (x̄ → a), merged into one CFD per embedded FD.
//
// Discovered CFDs with MinConfidence = 1 are guaranteed to hold on the
// input instance (property-tested). The search is exponential in MaxLHS
// only, matching the fixed-schema regime of the paper's analyses.
package discovery

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// Config tunes the miner.
type Config struct {
	// MaxLHS bounds the LHS size of candidate FDs (default 1).
	MaxLHS int
	// MinSupport is the minimum number of tuples an X-group needs before
	// it may yield a constant pattern (default 2, so single-tuple groups
	// never generalize).
	MinSupport int
	// MinConfidence is the fraction of a group's tuples that must agree
	// on the RHS value (default 1: exact CFDs only).
	MinConfidence float64
	// MaxPatterns caps the tableau size per embedded FD, keeping the most
	// supported patterns (0 = unlimited).
	MaxPatterns int
}

func (c Config) withDefaults() Config {
	if c.MaxLHS <= 0 {
		c.MaxLHS = 1
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 2
	}
	if c.MinConfidence <= 0 {
		c.MinConfidence = 1
	}
	return c
}

// Discovered is one mined CFD with its mining metadata.
type Discovered struct {
	CFD *core.CFD
	// IsFD reports that the CFD is an all-wildcard (standard FD) find.
	IsFD bool
	// Support holds, per tableau row, the number of matching tuples.
	Support []int
}

// Discover mines CFDs from the instance.
func Discover(rel *relation.Relation, cfg Config) ([]Discovered, error) {
	cfg = cfg.withDefaults()
	if rel.Len() == 0 {
		return nil, fmt.Errorf("discovery: empty instance")
	}
	attrs := rel.Schema.Names()
	var out []Discovered

	// holdsAsFD[key] records embedded FDs that hold globally, for
	// minimality pruning of supersets.
	holdsAsFD := make(map[string]bool)
	fdKey := func(x []string, a string) string {
		return relation.EncodeKey(append(append([]relation.Value{}, x...), "->", a))
	}

	subsets := subsetsUpTo(attrs, cfg.MaxLHS)
	for _, a := range attrs {
		for _, x := range subsets {
			if contains(x, a) {
				continue
			}
			// Minimality pruning: if any proper subset of X already
			// determines A, skip (the subset FD implies this one).
			if prunedBySubset(x, a, holdsAsFD, fdKey) {
				continue
			}
			d, isFD, err := mineOne(rel, x, a, cfg)
			if err != nil {
				return nil, err
			}
			if isFD {
				holdsAsFD[fdKey(x, a)] = true
			}
			if d != nil {
				out = append(out, *d)
			}
		}
	}
	return out, nil
}

// CFDs extracts just the constraint list.
func CFDs(ds []Discovered) []*core.CFD {
	out := make([]*core.CFD, len(ds))
	for i, d := range ds {
		out[i] = d.CFD
	}
	return out
}

func mineOne(rel *relation.Relation, x []string, a string, cfg Config) (*Discovered, bool, error) {
	xIdx, err := rel.Schema.Indexes(x)
	if err != nil {
		return nil, false, err
	}
	aIdx := rel.Schema.MustIndex(a)

	type group struct {
		key    []relation.Value
		counts map[relation.Value]int
		total  int
	}
	groups := make(map[string]*group)
	var order []string
	for row := range rel.Tuples {
		kv := rel.Project(row, xIdx)
		k := relation.EncodeKey(kv)
		g, ok := groups[k]
		if !ok {
			g = &group{key: kv, counts: make(map[relation.Value]int)}
			groups[k] = g
			order = append(order, k)
		}
		g.counts[rel.Tuples[row][aIdx]]++
		g.total++
	}

	// Does the FD hold globally? Evidence counts the tuples in
	// non-singleton groups — the tuples that actually TEST the FD. An FD
	// over a near-unique LHS (say, phone numbers) holds vacuously and
	// would pollute the output, so it is only emitted when evidence
	// reaches MinSupport (it still participates in minimality pruning:
	// supersets of a vacuous key are more vacuous yet).
	isFD := true
	evidence := 0
	for _, k := range order {
		g := groups[k]
		if len(g.counts) > 1 {
			isFD = false
			break
		}
		if g.total >= 2 {
			evidence += g.total
		}
	}
	if isFD {
		if evidence < cfg.MinSupport {
			return nil, true, nil
		}
		row := core.PatternRow{X: make([]core.Pattern, len(x)), Y: []core.Pattern{core.W()}}
		for i := range row.X {
			row.X[i] = core.W()
		}
		cfd, err := core.NewCFD(x, []string{a}, row)
		if err != nil {
			return nil, false, err
		}
		return &Discovered{CFD: cfd, IsFD: true, Support: []int{evidence}}, true, nil
	}

	// Mine constant patterns from supported, (near-)pure groups.
	type cand struct {
		row     core.PatternRow
		support int
	}
	var cands []cand
	for _, k := range order {
		g := groups[k]
		if g.total < cfg.MinSupport {
			continue
		}
		bestVal, bestN := relation.Value(""), 0
		for v, n := range g.counts {
			if n > bestN || (n == bestN && v < bestVal) {
				bestVal, bestN = v, n
			}
		}
		if float64(bestN)/float64(g.total) < cfg.MinConfidence {
			continue
		}
		row := core.PatternRow{X: make([]core.Pattern, len(x)), Y: []core.Pattern{core.C(bestVal)}}
		for i := range row.X {
			row.X[i] = core.C(g.key[i])
		}
		cands = append(cands, cand{row: row, support: g.total})
	}
	if len(cands) == 0 {
		return nil, false, nil
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].support > cands[j].support })
	if cfg.MaxPatterns > 0 && len(cands) > cfg.MaxPatterns {
		cands = cands[:cfg.MaxPatterns]
	}
	rows := make([]core.PatternRow, len(cands))
	support := make([]int, len(cands))
	for i, c := range cands {
		rows[i] = c.row
		support[i] = c.support
	}
	cfd, err := core.NewCFD(x, []string{a}, rows...)
	if err != nil {
		return nil, false, err
	}
	return &Discovered{CFD: cfd, Support: support}, false, nil
}

// subsetsUpTo enumerates nonempty subsets of attrs with size ≤ k, smaller
// sizes first (so minimality pruning sees subsets before supersets).
func subsetsUpTo(attrs []string, k int) [][]string {
	var out [][]string
	var build func(start int, cur []string)
	for size := 1; size <= k && size <= len(attrs); size++ {
		build = func(start int, cur []string) {
			if len(cur) == size {
				out = append(out, append([]string(nil), cur...))
				return
			}
			for i := start; i < len(attrs); i++ {
				build(i+1, append(cur, attrs[i]))
			}
		}
		build(0, nil)
	}
	return out
}

func contains(xs []string, a string) bool {
	for _, x := range xs {
		if x == a {
			return true
		}
	}
	return false
}

func prunedBySubset(x []string, a string, holds map[string]bool, key func([]string, string) string) bool {
	if len(x) <= 1 {
		return false
	}
	// Check all (|X|-1)-subsets; transitivity covers smaller ones because
	// they were visited first.
	for drop := range x {
		sub := make([]string, 0, len(x)-1)
		for i, v := range x {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if holds[key(sub, a)] {
			return true
		}
	}
	return false
}
