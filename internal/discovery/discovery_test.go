package discovery

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
)

func findBy(ds []Discovered, lhs, rhs string) *Discovered {
	for i := range ds {
		if strings.Join(ds[i].CFD.LHS, ",") == lhs && strings.Join(ds[i].CFD.RHS, ",") == rhs {
			return &ds[i]
		}
	}
	return nil
}

// TestDiscoverFindsFDs: on clean tax data, zip→state and areacode→state
// hold globally and are discovered as all-wildcard CFDs.
func TestDiscoverFindsFDs(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 1500, Noise: 0, Seed: 1})
	ds, err := Discover(data.Clean, Config{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	zipST := findBy(ds, "ZIP", "ST")
	if zipST == nil || !zipST.IsFD {
		t.Errorf("ZIP → ST should be discovered as an FD; got %+v", zipST)
	}
	acST := findBy(ds, "AC", "ST")
	if acST == nil || !acST.IsFD {
		t.Errorf("AC → ST should be discovered as an FD; got %+v", acST)
	}
	ctST := findBy(ds, "CT", "ST")
	if ctST == nil || !ctST.IsFD {
		t.Errorf("CT → ST should be discovered as an FD (cities are state-unique); got %+v", ctST)
	}
	// ST does NOT determine CT (many cities per state).
	if d := findBy(ds, "ST", "CT"); d != nil && d.IsFD {
		t.Error("ST → CT must not be a global FD")
	}
}

// TestDiscoverFindsConditionalPatterns: when the FD is broken for part of
// the data, constant patterns are mined for the part where it holds.
func TestDiscoverFindsConditionalPatterns(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("AC"), relation.Attr("CT"))
	rel := relation.New(schema)
	// 908 always maps to MH (4 supporting tuples); 212 is ambiguous.
	for i := 0; i < 4; i++ {
		rel.MustInsert("908", "MH")
	}
	rel.MustInsert("212", "NYC")
	rel.MustInsert("212", "LA")
	ds, err := Discover(rel, Config{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := findBy(ds, "AC", "CT")
	if d == nil {
		t.Fatal("no AC → CT constraint discovered")
	}
	if d.IsFD {
		t.Fatal("AC → CT does not hold globally")
	}
	if len(d.CFD.Tableau) != 1 {
		t.Fatalf("tableau = %v, want just the 908 pattern", d.CFD.Tableau)
	}
	row := d.CFD.Tableau[0]
	if row.X[0] != core.C("908") || row.Y[0] != core.C("MH") {
		t.Errorf("pattern = %v, want (908 ‖ MH)", row)
	}
	if d.Support[0] != 4 {
		t.Errorf("support = %d, want 4", d.Support[0])
	}
}

// TestDiscoveredExactCFDsHold (property): with MinConfidence = 1, every
// discovered CFD holds on the mined instance — on noisy data too.
func TestDiscoveredExactCFDsHold(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 600, Noise: 0.05, Seed: 2})
	ds, err := Discover(data.Dirty, Config{MaxLHS: 2, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("nothing discovered")
	}
	for _, d := range ds {
		ok, err := core.Satisfies(data.Dirty, d.CFD)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("discovered CFD does not hold:\n%s", d.CFD)
		}
	}
}

// TestMinimalityPruning: when X → A holds, [X,B] → A is not emitted.
func TestMinimalityPruning(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 800, Noise: 0, Seed: 3})
	ds, err := Discover(data.Clean, Config{MaxLHS: 2, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// ZIP → ST holds, so ZIP,CT → ST (and any ZIP,٭ → ST) must be pruned.
	for _, d := range ds {
		if d.CFD.RHS[0] == "ST" && len(d.CFD.LHS) == 2 && contains(d.CFD.LHS, "ZIP") {
			t.Errorf("non-minimal FD emitted: %v -> ST", d.CFD.LHS)
		}
	}
}

// TestMinConfidenceApproximate: lowering confidence mines patterns whose
// dominant value covers most (not all) of a group.
func TestMinConfidenceApproximate(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("Z"), relation.Attr("S"))
	rel := relation.New(schema)
	for i := 0; i < 9; i++ {
		rel.MustInsert("07974", "NJ")
	}
	rel.MustInsert("07974", "IL") // one dirty tuple
	exact, err := Discover(rel, Config{MaxLHS: 1, MinSupport: 2, MinConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := findBy(exact, "Z", "S"); d != nil {
		t.Errorf("exact mining should find nothing for Z → S, got %v", d.CFD)
	}
	approx, err := Discover(rel, Config{MaxLHS: 1, MinSupport: 2, MinConfidence: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	d := findBy(approx, "Z", "S")
	if d == nil || len(d.CFD.Tableau) != 1 || d.CFD.Tableau[0].Y[0] != core.C("NJ") {
		t.Errorf("approximate mining should recover (07974 ‖ NJ), got %+v", d)
	}
}

// TestMaxPatternsCap: the tableau is capped at the most supported rows.
func TestMaxPatternsCap(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("Z"), relation.Attr("S"))
	rel := relation.New(schema)
	// Three pure groups of decreasing support, one impure group (so the
	// FD does not hold globally and patterns are mined).
	for i := 0; i < 5; i++ {
		rel.MustInsert("z1", "s1")
	}
	for i := 0; i < 3; i++ {
		rel.MustInsert("z2", "s2")
	}
	for i := 0; i < 2; i++ {
		rel.MustInsert("z3", "s3")
	}
	rel.MustInsert("z4", "a")
	rel.MustInsert("z4", "b")
	ds, err := Discover(rel, Config{MaxLHS: 1, MinSupport: 2, MaxPatterns: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := findBy(ds, "Z", "S")
	if d == nil {
		t.Fatal("nothing mined")
	}
	if len(d.CFD.Tableau) != 2 {
		t.Fatalf("tableau = %d rows, want capped 2", len(d.CFD.Tableau))
	}
	if d.Support[0] != 5 || d.Support[1] != 3 {
		t.Errorf("kept supports %v, want [5 3]", d.Support)
	}
}

func TestDiscoverEmptyInstance(t *testing.T) {
	rel := relation.New(relation.MustSchema("R", relation.Attr("A")))
	if _, err := Discover(rel, Config{}); err == nil {
		t.Error("empty instance must be rejected")
	}
}

// TestDiscoverThenDetectRoundTrip: constraints mined from clean data
// detect exactly the noise when applied to the dirty version.
func TestDiscoverThenDetectRoundTrip(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 1000, Noise: 0.05, Seed: 4})
	ds, err := Discover(data.Clean, Config{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	var fds []*core.CFD
	for _, d := range ds {
		if d.IsFD {
			fds = append(fds, d.CFD)
		}
	}
	if len(fds) == 0 {
		t.Fatal("no FDs mined from clean data")
	}
	cleanOK, err := core.SatisfiesSet(data.Clean, fds)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanOK {
		t.Fatal("mined FDs must hold on the clean instance")
	}
	dirtyOK, err := core.SatisfiesSet(data.Dirty, fds)
	if err != nil {
		t.Fatal(err)
	}
	if dirtyOK {
		t.Error("mined FDs should flag the injected noise")
	}
}
