package discovery

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Miner is streaming CFD discovery over a live incremental.Monitor: the
// candidate lattice of embedded FDs X → A (|X| ≤ MaxLHS) is held as
// stateful per-group scores, fed by the monitor's group-statistics
// substrate (Monitor.TrackGroups). Refresh drains the group-deltas the
// applied ChangeSets left behind and re-scores exactly the groups they
// touched; the full instance is scanned once, at attach time, and never
// again.
//
// A Miner is safe for concurrent use with monitor mutations: Refresh
// and Mined serialize on the miner's own mutex and observe the
// substrate shard by shard, so under concurrent writers the mined set
// is eventually consistent — every change is re-scored by some later
// Refresh, and a quiescent monitor always yields exactly Discover's
// output on the same instance (property-tested).
type Miner struct {
	mu     sync.Mutex
	cfg    Config
	m      *incremental.Monitor
	hub    *incremental.GroupStats
	cands  []candidate
	index  map[string]int32 // fdKey -> candidate, for Confidence lookups
	det    []bool           // scratch of the per-emit pruning pass
	drain  []incremental.GroupDelta
	closed bool

	// Metric handles, registered on the monitor's registry at attach
	// time (nil-safe no-ops when its instrumentation is disabled).
	metRefresh  *obs.Histogram
	metRescored *obs.Counter
	metCands    *obs.Gauge
	metMined    *obs.Gauge
}

// MinedChangeKind discriminates the outcome of a Refresh for one
// embedded FD.
type MinedChangeKind uint8

const (
	// MinedAppeared reports an embedded FD that newly entered the mined
	// set (as a global FD or with its first pattern rows).
	MinedAppeared MinedChangeKind = iota
	// MinedUpdated reports an embedded FD that stayed mined but changed
	// form: it flipped between FD and pattern form, or its pattern count
	// moved. Support drift alone is not reported.
	MinedUpdated
	// MinedRetired reports an embedded FD that left the mined set — its
	// last pattern lost support, the FD broke without minable patterns,
	// or a newly-holding subset FD now prunes it.
	MinedRetired
)

func (k MinedChangeKind) String() string {
	switch k {
	case MinedAppeared:
		return "appeared"
	case MinedUpdated:
		return "updated"
	case MinedRetired:
		return "retired"
	}
	return fmt.Sprintf("MinedChangeKind(%d)", uint8(k))
}

// MinedChange is one Refresh outcome: the embedded FD it concerns and
// the form it currently takes.
type MinedChange struct {
	Kind MinedChangeKind
	// LHS and RHS identify the embedded FD.
	LHS []string
	RHS string
	// IsFD reports the current form (all-wildcard FD vs pattern tableau);
	// for MinedRetired it is the form that was lost.
	IsFD bool
	// Patterns is the current pattern-row count (0 in FD form).
	Patterns int
}

// String renders the change for logs and the CLI surfaces.
func (c MinedChange) String() string {
	form := fmt.Sprintf("%d patterns", c.Patterns)
	if c.IsFD {
		form = "fd"
	}
	sign := map[MinedChangeKind]string{MinedAppeared: "+", MinedUpdated: "~", MinedRetired: "-"}[c.Kind]
	return fmt.Sprintf("%s %v -> %s (%s)", sign, c.LHS, c.RHS, form)
}

// emitKind is a candidate's current place in the mined set.
type emitKind uint8

const (
	emitNone emitKind = iota
	emitFD
	emitPatterns
)

// mgroup is the miner's score of one X-group: the mirror of the
// substrate's statistics plus the group's current pattern contribution.
type mgroup struct {
	x              []relation.Value
	size, distinct int
	// agree is the dominant A-value's member count — size for a pure
	// group, the distribution's top count for a mixed one. Aggregated
	// per candidate, it is the live-confidence numerator.
	agree int
	// hasPat marks a supported group whose dominant A-value clears
	// MinConfidence; patVal/patSup are the mined pattern's RHS constant
	// and support (the group size, as in CFDMiner-style mining).
	hasPat bool
	patVal relation.Value
	patSup int
}

// candidate is one embedded FD of the lattice with its aggregate scores,
// maintained incrementally by folding group mirrors in and out.
type candidate struct {
	pair incremental.AttrPair
	// subs indexes the (|X|-1)-subset candidates with the same RHS;
	// pruning consults only these — determination is transitive.
	subs   []int32
	groups map[string]*mgroup
	// impure counts groups whose members disagree on A; the FD holds
	// globally iff it is zero.
	impure int
	// evidence counts the tuples in groups of size ≥ 2 — the tuples that
	// actually test the FD. An FD over a near-unique LHS holds vacuously
	// and is only emitted once evidence reaches MinSupport.
	evidence int
	// patterns counts groups currently contributing a pattern row.
	patterns int
	// agree/total aggregate the groups' dominant-value counts and sizes:
	// total-agree is the number of tuples a minimal A-edit repair of the
	// FD would touch, making agree/total the live confidence Confidence
	// exports (the relative-trust signal of Beskales et al.).
	agree, total int
	// cur/curPatterns are the candidate's emission state as of the last
	// Refresh, diffed to produce MinedChanges.
	cur         emitKind
	curPatterns int
}

func (c *candidate) fold(g *mgroup) {
	if g.distinct > 1 {
		c.impure++
	}
	if g.size >= 2 {
		c.evidence += g.size
	}
	if g.hasPat {
		c.patterns++
	}
	c.agree += g.agree
	c.total += g.size
}

func (c *candidate) unfold(g *mgroup) {
	if g.distinct > 1 {
		c.impure--
	}
	if g.size >= 2 {
		c.evidence -= g.size
	}
	if g.hasPat {
		c.patterns--
	}
	c.agree -= g.agree
	c.total -= g.size
}

// fdKey canonically names an embedded FD.
func fdKey(x []string, a string) string {
	vals := make([]relation.Value, 0, len(x)+2)
	vals = append(vals, x...)
	vals = append(vals, "->", a)
	return relation.EncodeKey(vals)
}

// NewMiner attaches a streaming miner to the monitor: the candidate
// lattice over the monitor's schema is registered with the
// group-statistics substrate, the current instance is folded in, and
// the initial scores are computed. Detach with Close; a closed miner
// keeps serving its last state but no longer follows the monitor.
func NewMiner(m *incremental.Monitor, cfg Config) (*Miner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	attrs := m.Schema().Names()
	subsets := subsetsUpTo(attrs, cfg.MaxLHS)

	// Enumeration order (RHS-major, subsets smaller-first) is the output
	// order of Mined and the processing order of the pruning pass: every
	// candidate's subset candidates precede it.
	var pairs []incremental.AttrPair
	var cands []candidate
	index := make(map[string]int32)
	for _, a := range attrs {
		for _, x := range subsets {
			if contains(x, a) {
				continue
			}
			index[fdKey(x, a)] = int32(len(cands))
			pairs = append(pairs, incremental.AttrPair{X: x, A: a})
			cands = append(cands, candidate{
				pair:   incremental.AttrPair{X: x, A: a},
				groups: make(map[string]*mgroup),
			})
		}
	}
	for ci := range cands {
		x, a := cands[ci].pair.X, cands[ci].pair.A
		if len(x) <= 1 {
			continue
		}
		for drop := range x {
			sub := make([]string, 0, len(x)-1)
			for i, v := range x {
				if i != drop {
					sub = append(sub, v)
				}
			}
			if si, ok := index[fdKey(sub, a)]; ok {
				cands[ci].subs = append(cands[ci].subs, si)
			}
		}
	}

	hub, err := m.TrackGroups(pairs)
	if err != nil {
		return nil, err
	}
	mi := &Miner{cfg: cfg, m: m, hub: hub, cands: cands, index: index, det: make([]bool, len(cands))}
	reg := m.Metrics()
	mi.metRefresh = reg.DurationHistogram("cfd_miner_refresh_seconds", "Duration of one Miner.Refresh pass (drain + re-score + emit).")
	mi.metRescored = reg.Counter("cfd_miner_groups_rescored_total", "Touched groups re-scored across Refresh passes.")
	mi.metCands = reg.Gauge("cfd_miner_candidates", "Embedded-FD candidates in the miner's lattice.")
	mi.metMined = reg.Gauge("cfd_miner_mined_cfds", "Embedded FDs currently in the mined set (FD or pattern form).")
	mi.metCands.Set(int64(len(cands)))
	mi.Refresh() // the fold left every group dirty: score the initial state
	return mi, nil
}

// Config returns the miner's configuration with defaults applied.
func (mi *Miner) Config() Config { return mi.cfg }

// Close detaches the miner from the monitor's apply path. The last
// refreshed state stays readable.
func (mi *Miner) Close() {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if mi.closed {
		return
	}
	mi.closed = true
	mi.m.UntrackGroups(mi.hub)
}

// Refresh drains the group-deltas accumulated since the last call and
// re-scores exactly the touched groups, then re-evaluates the lattice's
// emission set (including minimality pruning, which is dynamic: a
// subset FD breaking un-prunes its supersets). It returns the mined
// set's net changes — embedded FDs that appeared, changed form, or
// retired. Cost is proportional to the groups the interleaving
// ChangeSets touched, not to the instance.
func (mi *Miner) Refresh() []MinedChange {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	start := time.Now()
	mi.drain = mi.hub.Drain(mi.drain[:0])
	mi.metRescored.Add(uint64(len(mi.drain)))
	for i := range mi.drain {
		d := &mi.drain[i]
		c := &mi.cands[d.Pair]
		g, ok := c.groups[d.XKey]
		if ok {
			c.unfold(g)
		}
		if d.Support == 0 {
			if ok {
				delete(c.groups, d.XKey)
			}
			continue
		}
		if !ok {
			g = &mgroup{}
			c.groups[d.XKey] = g
		}
		g.x, g.size, g.distinct = d.X, d.Support, d.Distinct
		mi.score(d, g)
		c.fold(g)
	}
	out := mi.emit()
	var mined int64
	for ci := range mi.cands {
		if mi.cands[ci].cur != emitNone {
			mined++
		}
	}
	mi.metMined.Set(mined)
	mi.metRefresh.ObserveSince(start)
	return out
}

// score recomputes one group's pattern contribution and its dominant
// count. The single-value case reads both straight off the delta; a
// mixed group consults the substrate for its distribution top (an
// O(distinct) scan, paid only for touched mixed groups).
func (mi *Miner) score(d *incremental.GroupDelta, g *mgroup) {
	g.hasPat, g.patVal, g.patSup = false, "", 0
	if d.Distinct == 1 {
		g.agree = d.Support
		if d.Support >= mi.cfg.MinSupport {
			g.hasPat, g.patVal, g.patSup = true, d.Top, d.Support
		}
		return
	}
	st, ok := mi.hub.Stat(d.Pair, d.XKey)
	if !ok {
		// The group died between the drain and the probe; its death delta
		// is already pending, so any value is transient. Lower bound.
		g.agree = d.Support - (d.Distinct - 1)
		return
	}
	g.agree = st.TopCount
	if d.Support >= mi.cfg.MinSupport && mi.cfg.MinConfidence < 1 &&
		float64(st.TopCount)/float64(st.Support) >= mi.cfg.MinConfidence {
		g.hasPat, g.patVal, g.patSup = true, st.Top, st.Support
	}
}

// emit re-evaluates every candidate's place in the mined set and diffs
// it against the previous pass. O(candidates) — group work happened in
// Refresh's delta loop.
func (mi *Miner) emit() []MinedChange {
	var out []MinedChange
	for ci := range mi.cands {
		c := &mi.cands[ci]
		pruned := false
		for _, si := range c.subs {
			if mi.det[si] {
				pruned = true
				break
			}
		}
		// A pruned candidate is itself determining — its LHS contains a
		// determining subset — so determination closes transitively and
		// supersets of a pruned candidate prune too.
		mi.det[ci] = pruned || c.impure == 0
		kind := emitNone
		if !pruned {
			if c.impure == 0 {
				if c.evidence >= mi.cfg.MinSupport {
					kind = emitFD
				}
			} else if c.patterns > 0 {
				kind = emitPatterns
			}
		}
		// Report (and diff on) the pattern count Mined actually emits —
		// the MaxPatterns cap applies here too, so contributing groups
		// beyond the cap neither inflate the count nor fire updates.
		patterns := c.patterns
		if mi.cfg.MaxPatterns > 0 && patterns > mi.cfg.MaxPatterns {
			patterns = mi.cfg.MaxPatterns
		}
		switch {
		case kind != emitNone && c.cur == emitNone:
			out = append(out, minedChange(MinedAppeared, c, kind, patterns))
		case kind == emitNone && c.cur != emitNone:
			out = append(out, minedChange(MinedRetired, c, c.cur, c.curPatterns))
		case kind != emitNone && (kind != c.cur || (kind == emitPatterns && patterns != c.curPatterns)):
			out = append(out, minedChange(MinedUpdated, c, kind, patterns))
		}
		c.cur, c.curPatterns = kind, patterns
	}
	return out
}

// Confidence reports the miner's live confidence in the embedded FD
// X → A, as of the last Refresh: the fraction of tuples whose A-value
// agrees with their X-group's dominant value. 1.0 on an instance the
// FD satisfies; lower the more cells a minimal RHS-edit repair would
// have to touch — the relative-trust signal (Beskales et al.) a repair
// engine compares against its threshold to decide between data edits
// and constraint relaxation. The attribute order of x is irrelevant.
// The second result is false when the FD is outside the miner's
// lattice (|X| > MaxLHS, or unknown attributes).
func (mi *Miner) Confidence(x []string, a string) (float64, bool) {
	// Candidates are keyed with X in schema-attribute order; accept any
	// caller order by canonicalizing against the monitor's schema.
	schema := mi.m.Schema()
	canon := make([]string, len(x))
	copy(canon, x)
	sort.Slice(canon, func(i, j int) bool {
		ii, iok := schema.Index(canon[i])
		jj, jok := schema.Index(canon[j])
		if iok != jok {
			return iok
		}
		return ii < jj
	})
	mi.mu.Lock()
	defer mi.mu.Unlock()
	ci, ok := mi.index[fdKey(canon, a)]
	if !ok {
		return 0, false
	}
	c := &mi.cands[ci]
	if c.total <= 0 {
		return 1, true
	}
	return float64(c.agree) / float64(c.total), true
}

func minedChange(k MinedChangeKind, c *candidate, form emitKind, patterns int) MinedChange {
	ch := MinedChange{Kind: k, LHS: c.pair.X, RHS: c.pair.A, IsFD: form == emitFD}
	if form == emitPatterns {
		ch.Patterns = patterns
	}
	return ch
}

// Mined materializes the current mined set, in the candidate lattice's
// canonical order, as of the last Refresh. Pattern rows are ordered by
// support (descending), ties by encoded X-projection, and capped at
// MaxPatterns.
func (mi *Miner) Mined() ([]Discovered, error) {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	var out []Discovered
	for ci := range mi.cands {
		c := &mi.cands[ci]
		switch c.cur {
		case emitFD:
			row := core.PatternRow{X: make([]core.Pattern, len(c.pair.X)), Y: []core.Pattern{core.W()}}
			for i := range row.X {
				row.X[i] = core.W()
			}
			cfd, err := core.NewCFD(c.pair.X, []string{c.pair.A}, row)
			if err != nil {
				return nil, err
			}
			out = append(out, Discovered{CFD: cfd, IsFD: true, Support: []int{c.evidence}})
		case emitPatterns:
			d, err := c.buildPatterns(mi.cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, *d)
		}
	}
	return out, nil
}

// buildPatterns assembles one pattern-form Discovered from the
// candidate's contributing groups.
func (c *candidate) buildPatterns(cfg Config) (*Discovered, error) {
	type pat struct {
		key string
		g   *mgroup
	}
	pats := make([]pat, 0, c.patterns)
	for _, g := range c.groups {
		if g.hasPat {
			// Tie-break on the value-encoded X, not the store's opaque
			// XKey: the latter is built from interner IDs, whose order
			// depends on arrival order, while the mined set must be
			// deterministic for a given instance (and match Discover).
			pats = append(pats, pat{key: relation.EncodeKey(g.x), g: g})
		}
	}
	sort.Slice(pats, func(i, j int) bool {
		if pats[i].g.patSup != pats[j].g.patSup {
			return pats[i].g.patSup > pats[j].g.patSup
		}
		return pats[i].key < pats[j].key
	})
	if cfg.MaxPatterns > 0 && len(pats) > cfg.MaxPatterns {
		pats = pats[:cfg.MaxPatterns]
	}
	rows := make([]core.PatternRow, len(pats))
	support := make([]int, len(pats))
	for i, p := range pats {
		row := core.PatternRow{X: make([]core.Pattern, len(p.g.x)), Y: []core.Pattern{core.C(p.g.patVal)}}
		for j, v := range p.g.x {
			row.X[j] = core.C(v)
		}
		rows[i] = row
		support[i] = p.g.patSup
	}
	cfd, err := core.NewCFD(c.pair.X, []string{c.pair.A}, rows...)
	if err != nil {
		return nil, err
	}
	return &Discovered{CFD: cfd, Support: support}, nil
}
