package discovery

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/incremental"
	"repro/internal/relation"
)

// The miner property harness: drive a Monitor-attached Miner with a
// randomized ChangeSet stream and cross-check, at checkpoints and at the
// end, that its mined set equals a from-scratch Discover over the live
// instance — oracle equivalence between the streaming path and the bulk
// seed path. Value pools are tiny so groups collide, flip between pure
// and mixed, and patterns appear and retire throughout the stream.

func minerSchema() *relation.Schema {
	return relation.MustSchema("R",
		relation.Attr("A"), relation.Attr("B"), relation.Attr("C"), relation.Attr("D"))
}

var minerPools = [][]relation.Value{
	{"a1", "a2", "a3"},
	{"b1", "b2"},
	{"c1", "c2", "c3", "c4"},
	{"d1", "d2"},
}

// minedFingerprint renders a mined set into a comparable shape.
type minedFingerprint struct {
	CFD     string
	IsFD    bool
	Support []int
}

func fingerprint(t *testing.T, ds []Discovered, err error) []minedFingerprint {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]minedFingerprint, len(ds))
	for i, d := range ds {
		out[i] = minedFingerprint{CFD: d.CFD.String(), IsFD: d.IsFD, Support: d.Support}
	}
	return out
}

// checkOracle compares the miner's current state against Discover over
// the monitor's materialized instance.
func checkOracle(t *testing.T, m *incremental.Monitor, mi *Miner, cfg Config, step int) {
	t.Helper()
	snap := m.Snapshot()
	if snap.Len() == 0 {
		return // Discover rejects empty instances by contract
	}
	wantDs, wantErr := Discover(snap, cfg)
	want := fingerprint(t, wantDs, wantErr)
	gotDs, gotErr := mi.Mined()
	got := fingerprint(t, gotDs, gotErr)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d (%d tuples): miner diverged from Discover\n got: %v\nwant: %v",
			step, snap.Len(), got, want)
	}
}

func randTuple(rng *rand.Rand) relation.Tuple {
	t := make(relation.Tuple, len(minerPools))
	for i, pool := range minerPools {
		t[i] = pool[rng.Intn(len(pool))]
	}
	return t
}

// TestMinerMatchesDiscoverOracle is the randomized equivalence property:
// a Miner driven by a random ChangeSet stream equals from-scratch
// Discover on the instance it converged to, across configs (LHS width,
// support, fractional confidence, pattern cap).
func TestMinerMatchesDiscoverOracle(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"lhs1-exact", Config{MaxLHS: 1, MinSupport: 2}},
		{"lhs2-exact", Config{MaxLHS: 2, MinSupport: 2}},
		{"lhs2-approx", Config{MaxLHS: 2, MinSupport: 3, MinConfidence: 0.7, MaxPatterns: 3}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			m, err := incremental.New(minerSchema(), nil, incremental.Options{})
			if err != nil {
				t.Fatal(err)
			}
			mi, err := NewMiner(m, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer mi.Close()
			var live []int64
			const batches = 30
			for step := 0; step < batches; step++ {
				var cs incremental.ChangeSet
				for n := rng.Intn(12) + 4; n > 0; n-- {
					switch op := rng.Intn(10); {
					case op < 5 || len(live) == 0: // insert-heavy so the instance grows
						cs.Insert(randTuple(rng))
					case op < 7:
						i := rng.Intn(len(live))
						cs.Delete(live[i])
						live = append(live[:i], live[i+1:]...)
					default:
						key := live[rng.Intn(len(live))]
						ai := rng.Intn(len(minerPools))
						attr := m.Schema().Attrs[ai].Name
						cs.Update(key, attr, minerPools[ai][rng.Intn(len(minerPools[ai]))])
					}
				}
				if _, err := m.Apply(&cs); err != nil {
					t.Fatal(err)
				}
				for i := range cs.Ops {
					if cs.Ops[i].Kind == incremental.OpInsert {
						live = append(live, cs.Ops[i].Key)
					}
				}
				mi.Refresh()
				if step%5 == 4 || step == batches-1 {
					checkOracle(t, m, mi, tc.cfg, step)
				}
			}
		})
	}
}

// TestMinerConcurrentRefresh exercises the substrate's locking under the
// race detector: writers mutate while a reader drains and materializes,
// then a final quiescent Refresh must land exactly on the oracle.
func TestMinerConcurrentRefresh(t *testing.T) {
	cfg := Config{MaxLHS: 1, MinSupport: 2}
	m, err := incremental.New(minerSchema(), nil, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := NewMiner(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // the refreshing reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				mi.Refresh()
				if _, err := mi.Mined(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var werr [writers]error
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var live []int64
			for i := 0; i < 60; i++ {
				var cs incremental.ChangeSet
				for n := rng.Intn(8) + 1; n > 0; n-- {
					if len(live) == 0 || rng.Intn(3) > 0 {
						cs.Insert(randTuple(rng))
					} else {
						i := rng.Intn(len(live))
						cs.Delete(live[i])
						live = append(live[:i], live[i+1:]...)
					}
				}
				if _, err := m.Apply(&cs); err != nil {
					werr[w] = err
					return
				}
				for i := range cs.Ops {
					if cs.Ops[i].Kind == incremental.OpInsert {
						live = append(live, cs.Ops[i].Key)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	for _, err := range werr {
		if err != nil {
			t.Fatal(err)
		}
	}
	mi.Refresh()
	checkOracle(t, m, mi, cfg, -1)
}

// TestMinerChangeStream checks the appear/retire/update deltas Refresh
// reports as a mined FD degrades into patterns and retires.
func TestMinerChangeStream(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("AC"), relation.Attr("CT"))
	rel := relation.New(schema)
	for i := 0; i < 3; i++ {
		rel.MustInsert("908", "MH")
	}
	m, err := incremental.Load(rel, nil, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := NewMiner(m, Config{MaxLHS: 1, MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()

	find := func(chs []MinedChange, rhs string) *MinedChange {
		for i := range chs {
			if chs[i].RHS == rhs && len(chs[i].LHS) == 1 && chs[i].LHS[0] == "AC" {
				return &chs[i]
			}
		}
		return nil
	}

	// Seeded state: AC → CT holds as an FD (one pure group of 3).
	ds, err := mi.Mined()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("nothing mined from the seed")
	}

	// Breaking the group degrades the FD into pattern form... but the
	// only group is now mixed, so AC → CT retires outright.
	if _, _, err := m.Insert(relation.Tuple{"908", "NYC"}); err != nil {
		t.Fatal(err)
	}
	chs := mi.Refresh()
	ch := find(chs, "CT")
	if ch == nil || ch.Kind != MinedRetired {
		t.Fatalf("breaking the only group should retire AC → CT, got %v", chs)
	}

	// A fresh pure supported group brings it back in pattern form.
	for i := 0; i < 2; i++ {
		if _, _, err := m.Insert(relation.Tuple{"212", "NYC"}); err != nil {
			t.Fatal(err)
		}
	}
	chs = mi.Refresh()
	ch = find(chs, "CT")
	if ch == nil || ch.Kind != MinedAppeared || ch.IsFD || ch.Patterns != 1 {
		t.Fatalf("supported pure group should re-mine AC → CT as 1 pattern, got %v", chs)
	}

	// Another supported pure group: still mined, pattern count moves.
	for i := 0; i < 2; i++ {
		if _, _, err := m.Insert(relation.Tuple{"215", "PHI"}); err != nil {
			t.Fatal(err)
		}
	}
	chs = mi.Refresh()
	ch = find(chs, "CT")
	if ch == nil || ch.Kind != MinedUpdated || ch.Patterns != 2 {
		t.Fatalf("second pattern should report an update, got %v", chs)
	}

	// Quiet refresh: no changes.
	if chs := mi.Refresh(); len(chs) != 0 {
		t.Fatalf("idle refresh reported %v", chs)
	}
}

// TestMinerDynamicPruning: a superset FD is pruned while its subset
// holds, surfaces the moment the subset breaks, and is re-pruned when
// the subset heals — Discover agrees at every plateau (via the oracle
// check) and the transitions surface as appear/retire changes.
func TestMinerDynamicPruning(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"), relation.Attr("C"))
	rel := relation.New(schema)
	// A → C holds; A,B → C therefore pruned.
	rel.MustInsert("a1", "b1", "c1")
	rel.MustInsert("a1", "b2", "c1")
	rel.MustInsert("a2", "b1", "c2")
	rel.MustInsert("a2", "b2", "c2")
	cfg := Config{MaxLHS: 2, MinSupport: 2}
	m, err := incremental.Load(rel, nil, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := NewMiner(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mi.Close()
	checkOracle(t, m, mi, cfg, 0)
	// find reports whether LHS → C is currently mined, and in FD form.
	find := func(lhs ...string) (mined, isFD bool) {
		ds, err := mi.Mined()
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if d.CFD.RHS[0] == "C" && reflect.DeepEqual(d.CFD.LHS, lhs) {
				return true, d.IsFD
			}
		}
		return false, false
	}
	if mined, isFD := find("A"); !mined || !isFD {
		t.Fatal("seed: want A → C mined as an FD")
	}
	if mined, _ := find("A", "B"); mined {
		t.Fatal("seed: A,B → C must be pruned under A → C")
	}

	// Break A → C: the a1 group splits on C, so the FD degrades to its
	// pattern form (the pure a2 group), and A,B → C is no longer pruned
	// — though it stays vacuous here (all (a,b) groups are singletons).
	key, _, err := m.Insert(relation.Tuple{"a1", "b3", "c9"})
	if err != nil {
		t.Fatal(err)
	}
	mi.Refresh()
	checkOracle(t, m, mi, cfg, 1)
	if mined, isFD := find("A"); !mined || isFD {
		t.Fatal("broken: want A → C demoted to pattern form")
	}

	// Heal it: the subset FD returns, the superset is pruned again.
	if _, err := m.Delete(key); err != nil {
		t.Fatal(err)
	}
	mi.Refresh()
	checkOracle(t, m, mi, cfg, 2)
	if mined, isFD := find("A"); !mined || !isFD {
		t.Fatal("healed: want A → C back as an FD")
	}
	if mined, _ := find("A", "B"); mined {
		t.Fatal("healed: A,B → C must be re-pruned")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{MinConfidence: 1.2}).Validate(); err == nil {
		t.Error("MinConfidence > 1 must be rejected")
	}
	if err := (Config{MaxPatterns: -1}).Validate(); err == nil {
		t.Error("negative MaxPatterns must be rejected")
	}
	if err := (Config{MaxLHS: 2, MinSupport: 5, MinConfidence: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Discover and NewMiner both refuse on entry.
	rel := relation.New(relation.MustSchema("R", relation.Attr("A"), relation.Attr("B")))
	rel.MustInsert("x", "y")
	if _, err := Discover(rel, Config{MinConfidence: 2}); err == nil {
		t.Error("Discover must validate the config")
	}
	m, err := incremental.Load(rel, nil, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMiner(m, Config{MaxPatterns: -3}); err == nil {
		t.Error("NewMiner must validate the config")
	}
}
