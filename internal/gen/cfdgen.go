package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/relation"
)

// Template identifies one of the semantic constraint families of
// Section 5 "CFDs". The attribute counts (NUMATTRs) match the families the
// paper describes: zip→state (2), zip+city→state (3), state+salary→tax
// rate (3), etc.
type Template int

const (
	// ZipToState: [ZIP] → [ST] (2 attributes — the Figure 9(f) CFD).
	ZipToState Template = iota
	// ZipCityToState: [ZIP, CT] → [ST] (3 attributes, constraint (b)).
	ZipCityToState
	// StateSalaryToTax: [ST, SA] → [TX] (3 attributes, constraint (c)).
	StateSalaryToTax
	// StateMaritalToExemptions: [ST, MR] → [EXS, EXM] (4 attributes).
	StateMaritalToExemptions
	// StateChildToExemption: [ST, CH] → [EXC] (3 attributes).
	StateChildToExemption
	// AreaCodeToState: [CC, AC] → [ST] (3 attributes, the f2 refinement).
	AreaCodeToState
	// PhoneToAddress: [CC, AC, PN] → [STR, CT, ZIP] (6 attributes, f1).
	PhoneToAddress
	// PhoneToStreet: [CC, AC, PN] → [STR] (4 attributes). Phone numbers
	// are near-unique, so this family supports very large tableaux — the
	// NUMATTRs=4 series of Figure 9(d) sweeps TABSZ up to 10K.
	PhoneToStreet
)

func (tp Template) String() string {
	switch tp {
	case ZipToState:
		return "zip->state"
	case ZipCityToState:
		return "zip,city->state"
	case StateSalaryToTax:
		return "state,salary->tax"
	case StateMaritalToExemptions:
		return "state,marital->exemptions"
	case StateChildToExemption:
		return "state,child->exemption"
	case AreaCodeToState:
		return "areacode->state"
	case PhoneToStreet:
		return "phone->street"
	default:
		return "phone->address"
	}
}

// Attrs returns the embedded FD of the template.
func (tp Template) Attrs() (lhs, rhs []string) {
	switch tp {
	case ZipToState:
		return []string{"ZIP"}, []string{"ST"}
	case ZipCityToState:
		return []string{"ZIP", "CT"}, []string{"ST"}
	case StateSalaryToTax:
		return []string{"ST", "SA"}, []string{"TX"}
	case StateMaritalToExemptions:
		return []string{"ST", "MR"}, []string{"EXS", "EXM"}
	case StateChildToExemption:
		return []string{"ST", "CH"}, []string{"EXC"}
	case AreaCodeToState:
		return []string{"CC", "AC"}, []string{"ST"}
	case PhoneToStreet:
		return []string{"CC", "AC", "PN"}, []string{"STR"}
	default:
		return []string{"CC", "AC", "PN"}, []string{"STR", "CT", "ZIP"}
	}
}

// TemplateByAttrs picks the template whose CFD spans n attributes
// (NUMATTRs of the paper: LHS + RHS attribute count). The chosen families
// have enough distinct projections to fill the paper's TABSZ sweeps
// (zip+city pairs and phone numbers are plentiful; state-level families
// like [ST,SA]→[TX] cap at a few hundred patterns).
func TemplateByAttrs(n int) (Template, error) {
	switch n {
	case 2:
		return ZipToState, nil
	case 3:
		return ZipCityToState, nil
	case 4:
		return PhoneToStreet, nil
	case 6:
		return PhoneToAddress, nil
	}
	return 0, fmt.Errorf("gen: no CFD template with %d attributes (have 2, 3, 4, 6)", n)
}

// CFDConfig are the CFD knobs of Section 5: which constraint (NUMATTRs via
// Template), TABSZ (pattern-tuple count) and NUMCONSTs (fraction of
// pattern tuples made of constants only; the rest contain variables).
type CFDConfig struct {
	Template Template
	TabSize  int
	// ConstPct ∈ [0,1]: fraction of all-constant pattern tuples
	// (NUMCONSTs; 1.0 = "100%" in the figures).
	ConstPct float64
	Seed     int64
}

// GenerateWorkloadCFD builds a CFD over the template's embedded FD whose
// pattern tuples are sampled from the CLEAN instance's distinct
// projections, so constants are semantically correct and every pattern
// matches real data. With probability 1−ConstPct a pattern tuple gets
// variables: a random PROPER nonempty subset of its LHS cells — and all
// its RHS cells — become '_' (keeping the row a true constraint on clean
// data). At least one LHS constant is kept (for single-attribute LHS the
// variables go to the RHS only): an all-'_' LHS row matches every tuple,
// and a workload full of duplicated all-wildcard rows is pathological —
// any minimal cover would collapse them to one. Duplicate rows produced
// by wildcarding are removed, so the tableau can be slightly smaller than
// TabSize when ConstPct < 1.
func GenerateWorkloadCFD(clean *relation.Relation, cfg CFDConfig) (*core.CFD, error) {
	lhs, rhs := cfg.Template.Attrs()
	if cfg.TabSize <= 0 {
		return nil, fmt.Errorf("gen: TabSize must be positive")
	}
	all := append(append([]string(nil), lhs...), rhs...)
	proj, err := clean.DistinctProjection(all)
	if err != nil {
		return nil, err
	}
	if len(proj) == 0 {
		return nil, fmt.Errorf("gen: instance has no tuples to sample patterns from")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(proj), func(i, j int) { proj[i], proj[j] = proj[j], proj[i] })
	n := cfg.TabSize
	if n > len(proj) {
		n = len(proj)
	}

	rows := make([]core.PatternRow, 0, n)
	seen := make(map[string]bool, n)
	for _, t := range proj[:n] {
		row := core.PatternRow{X: make([]core.Pattern, len(lhs)), Y: make([]core.Pattern, len(rhs))}
		for i := range lhs {
			row.X[i] = core.C(t[i])
		}
		for i := range rhs {
			row.Y[i] = core.C(t[len(lhs)+i])
		}
		if rng.Float64() >= cfg.ConstPct {
			// A "tuple with variables": wildcard a proper nonempty LHS
			// subset (none when |LHS| = 1) and the whole RHS.
			if len(lhs) >= 2 {
				wc := 1 + rng.Intn(1<<uint(len(lhs))-2) // in [1, 2^n-2]
				for i := range lhs {
					if wc&(1<<uint(i)) != 0 {
						row.X[i] = core.W()
					}
				}
			}
			for i := range rhs {
				row.Y[i] = core.W()
			}
		}
		key := row.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		rows = append(rows, row)
	}
	return core.NewCFD(lhs, rhs, rows...)
}

// AllZipStateCFD is the Figure 9(f) CFD: [ZIP] → [ST] with ALL zip→state
// pairs of the reference universe as constant pattern tuples ("we used all
// possible zip to state pairs, so as not to miss a violation"). tabSize
// caps the tableau (≤ NumZips); pass NumZips for the full 30K.
func AllZipStateCFD(tabSize int) *core.CFD {
	if tabSize <= 0 || tabSize > NumZips {
		tabSize = NumZips
	}
	rows := make([]core.PatternRow, 0, tabSize)
	for i := 0; i < tabSize; i++ {
		rows = append(rows, core.PatternRow{
			X: []core.Pattern{core.C(Zip(i))},
			Y: []core.Pattern{core.C(ZipState(i).Code)},
		})
	}
	return core.MustCFD([]string{"ZIP"}, []string{"ST"}, rows...)
}

// ZipDirectory materializes the zip→state reference universe as a
// relation (schema: zip, state) — the lookup table used by inclusion
// constraints ("every record's zip must exist in the directory") and by
// the Figure 9(f) experiment's full tableau.
func ZipDirectory() *relation.Relation {
	rel := relation.New(relation.MustSchema("zipdir",
		relation.Attr("zip"), relation.Attr("state")))
	for i := 0; i < NumZips; i++ {
		rel.Tuples = append(rel.Tuples, relation.Tuple{Zip(i), ZipState(i).Code})
	}
	return rel
}

// SemanticCFDs returns the full constraint set that clean tax data
// satisfies — one standard-FD-style CFD per template — used by the repair
// example and tests.
func SemanticCFDs() []*core.CFD {
	templates := []Template{
		ZipToState, ZipCityToState, StateSalaryToTax,
		StateMaritalToExemptions, StateChildToExemption, AreaCodeToState,
	}
	var out []*core.CFD
	for _, tp := range templates {
		lhs, rhs := tp.Attrs()
		row := core.PatternRow{X: make([]core.Pattern, len(lhs)), Y: make([]core.Pattern, len(rhs))}
		for i := range row.X {
			row.X[i] = core.W()
		}
		for i := range row.Y {
			row.Y[i] = core.W()
		}
		out = append(out, core.MustCFD(lhs, rhs, row))
	}
	return out
}
