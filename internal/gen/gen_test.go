package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/relation"
)

func TestStatesReferenceIntegrity(t *testing.T) {
	states := States()
	if len(states) != NumStates {
		t.Fatalf("states = %d, want %d", len(states), NumStates)
	}
	seenCodes := make(map[string]bool)
	seenAC := make(map[string]bool)
	seenCities := make(map[string]bool)
	for i, s := range states {
		if seenCodes[s.Code] {
			t.Errorf("duplicate state code %s", s.Code)
		}
		seenCodes[s.Code] = true
		if s.ZipLo != i*ZipsPerState || s.ZipHi != (i+1)*ZipsPerState {
			t.Errorf("%s zip range [%d,%d)", s.Code, s.ZipLo, s.ZipHi)
		}
		for _, ac := range s.AreaCodes {
			if seenAC[ac] {
				t.Errorf("area code %s owned by two states", ac)
			}
			seenAC[ac] = true
		}
		for _, c := range s.Cities {
			if seenCities[c] {
				t.Errorf("city %q owned by two states", c)
			}
			seenCities[c] = true
		}
	}
}

func TestZipHelpers(t *testing.T) {
	if Zip(0) != "10000" || Zip(NumZips-1) != "39999" {
		t.Errorf("zip formatting: %s, %s", Zip(0), Zip(NumZips-1))
	}
	if ZipState(0).Code != "AL" || ZipState(NumZips-1).Code != "WY" {
		t.Errorf("zip ownership: %s, %s", ZipState(0).Code, ZipState(NumZips-1).Code)
	}
	if StateByCode("NY") == nil || StateByCode("ZZ") != nil {
		t.Error("StateByCode misbehaves")
	}
	if BracketIndex("35000") != 1 || BracketIndex("1") != -1 {
		t.Error("BracketIndex misbehaves")
	}
}

// TestCleanDataSatisfiesSemantics: the generator's clean output satisfies
// every semantic CFD — the paper's premise that noise alone introduces
// violations.
func TestCleanDataSatisfiesSemantics(t *testing.T) {
	data := GenerateTax(TaxConfig{Size: 2000, Noise: 0, Seed: 1})
	if data.Clean.Len() != 2000 {
		t.Fatalf("size = %d", data.Clean.Len())
	}
	if len(data.Changes) != 0 {
		t.Fatalf("noise=0 produced %d changes", len(data.Changes))
	}
	res, err := detect.Detect(data.Dirty, SemanticCFDs(), detect.Options{Strategy: detect.Direct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Errorf("clean data violates semantic CFDs: %v", res.ViolatingCFDs())
	}
	// And the full zip→state tableau CFD holds as well.
	res, err = detect.Detect(data.Dirty, []*core.CFD{AllZipStateCFD(NumZips)}, detect.Options{Strategy: detect.Direct})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Error("clean data violates the all-zips CFD")
	}
}

// TestNoiseCreatesViolations: with noise, detection finds dirty tuples and
// the injected changes are recorded.
func TestNoiseCreatesViolations(t *testing.T) {
	data := GenerateTax(TaxConfig{Size: 2000, Noise: 0.05, Seed: 2})
	if len(data.Changes) == 0 {
		t.Fatal("5% noise over 2000 tuples should record changes")
	}
	// Roughly 5%: between 1% and 10% is fine for a sanity bound.
	if n := len(data.Changes); n < 20 || n > 200 {
		t.Errorf("changes = %d, expected around 100", n)
	}
	for _, ch := range data.Changes {
		if ch.From == ch.To {
			t.Errorf("degenerate change %+v", ch)
		}
		col := data.Dirty.Schema.MustIndex(ch.Attr)
		if data.Dirty.Tuples[ch.Row][col] != ch.To {
			t.Errorf("change %+v not applied", ch)
		}
		if data.Clean.Tuples[ch.Row][col] != ch.From {
			t.Errorf("change %+v does not match clean data", ch)
		}
	}
	res, err := detect.Detect(data.Dirty, SemanticCFDs(), detect.Options{Strategy: detect.Direct})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean() {
		t.Error("noisy data should violate the semantic CFDs")
	}
}

func TestGenerateTaxDeterministic(t *testing.T) {
	a := GenerateTax(TaxConfig{Size: 100, Noise: 0.1, Seed: 7})
	b := GenerateTax(TaxConfig{Size: 100, Noise: 0.1, Seed: 7})
	for i := range a.Dirty.Tuples {
		if !a.Dirty.Tuples[i].Equal(b.Dirty.Tuples[i]) {
			t.Fatalf("row %d differs across runs with the same seed", i)
		}
	}
	c := GenerateTax(TaxConfig{Size: 100, Noise: 0.1, Seed: 8})
	same := true
	for i := range a.Dirty.Tuples {
		if !a.Dirty.Tuples[i].Equal(c.Dirty.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different data")
	}
}

func TestTemplateByAttrs(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want Template
	}{{2, ZipToState}, {3, ZipCityToState}, {4, PhoneToStreet}, {6, PhoneToAddress}} {
		tp, err := TemplateByAttrs(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if tp != tc.want {
			t.Errorf("TemplateByAttrs(%d) = %v, want %v", tc.n, tp, tc.want)
		}
		lhs, rhs := tp.Attrs()
		if len(lhs)+len(rhs) != tc.n {
			t.Errorf("%v spans %d attributes, want %d", tp, len(lhs)+len(rhs), tc.n)
		}
	}
	if _, err := TemplateByAttrs(5); err == nil {
		t.Error("unsupported NUMATTRs must error")
	}
}

// TestWorkloadCFDHoldsOnCleanData: generated pattern tableaux are sampled
// from clean projections, so the clean instance satisfies them — for every
// template and for mixed constant/variable tableaux.
func TestWorkloadCFDHoldsOnCleanData(t *testing.T) {
	data := GenerateTax(TaxConfig{Size: 3000, Noise: 0, Seed: 3})
	for _, tpl := range []Template{ZipToState, ZipCityToState, StateSalaryToTax, StateMaritalToExemptions, StateChildToExemption, AreaCodeToState, PhoneToAddress, PhoneToStreet} {
		for _, constPct := range []float64{1.0, 0.5, 0.0} {
			cfd, err := GenerateWorkloadCFD(data.Clean, CFDConfig{
				Template: tpl, TabSize: 200, ConstPct: constPct, Seed: 4,
			})
			if err != nil {
				t.Fatalf("%v: %v", tpl, err)
			}
			if len(cfd.Tableau) == 0 {
				t.Fatalf("%v: empty tableau", tpl)
			}
			res, err := detect.Detect(data.Clean, []*core.CFD{cfd}, detect.Options{Strategy: detect.Direct})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Clean() {
				t.Errorf("%v constPct=%.1f: clean data violates the generated CFD", tpl, constPct)
			}
		}
	}
}

// TestWorkloadCFDConstPct: NUMCONSTs controls the fraction of all-constant
// pattern tuples.
func TestWorkloadCFDConstPct(t *testing.T) {
	data := GenerateTax(TaxConfig{Size: 5000, Noise: 0, Seed: 5})
	countConstRows := func(c *core.CFD) int {
		n := 0
		for _, row := range c.Tableau {
			all := true
			for _, p := range row.X {
				if p.Kind != core.Const {
					all = false
				}
			}
			for _, p := range row.Y {
				if p.Kind != core.Const {
					all = false
				}
			}
			if all {
				n++
			}
		}
		return n
	}
	full, err := GenerateWorkloadCFD(data.Clean, CFDConfig{Template: StateSalaryToTax, TabSize: 150, ConstPct: 1.0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := countConstRows(full); got != len(full.Tableau) {
		t.Errorf("ConstPct=1.0: %d of %d rows constant", got, len(full.Tableau))
	}
	half, err := GenerateWorkloadCFD(data.Clean, CFDConfig{Template: StateSalaryToTax, TabSize: 150, ConstPct: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := countConstRows(half); got < 40 || got > 110 {
		t.Errorf("ConstPct=0.5: %d of %d rows constant, want roughly half", got, len(half.Tableau))
	}
}

func TestAllZipStateCFD(t *testing.T) {
	c := AllZipStateCFD(0)
	if len(c.Tableau) != NumZips {
		t.Errorf("full tableau = %d rows, want %d", len(c.Tableau), NumZips)
	}
	c = AllZipStateCFD(1000)
	if len(c.Tableau) != 1000 {
		t.Errorf("capped tableau = %d rows, want 1000", len(c.Tableau))
	}
	// Spot-check semantic correctness of a pattern row.
	row := c.Tableau[999]
	if row.X[0].Val != Zip(999) || row.Y[0].Val != ZipState(999).Code {
		t.Errorf("row 999 = %v", row)
	}
}

func TestZipDirectory(t *testing.T) {
	dir := ZipDirectory()
	if dir.Len() != NumZips {
		t.Fatalf("directory has %d rows, want %d", dir.Len(), NumZips)
	}
	if !dir.Tuples[0].Equal(relation.Tuple{Zip(0), "AL"}) {
		t.Errorf("row 0 = %v", dir.Tuples[0])
	}
	last := dir.Tuples[NumZips-1]
	if !last.Equal(relation.Tuple{Zip(NumZips - 1), "WY"}) {
		t.Errorf("last row = %v", last)
	}
}

func TestWorkloadCFDErrors(t *testing.T) {
	empty := relation.New(TaxSchema())
	if _, err := GenerateWorkloadCFD(empty, CFDConfig{Template: ZipToState, TabSize: 10, ConstPct: 1}); err == nil {
		t.Error("empty instance must be rejected")
	}
	data := GenerateTax(TaxConfig{Size: 10, Noise: 0, Seed: 1})
	if _, err := GenerateWorkloadCFD(data.Clean, CFDConfig{Template: ZipToState, TabSize: 0, ConstPct: 1}); err == nil {
		t.Error("zero TabSize must be rejected")
	}
}
