package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// TaxConfig are the data knobs of Section 5: SZ (tuple count) and NOISE
// (probability that a tuple gets one RHS attribute corrupted).
type TaxConfig struct {
	Size  int
	Noise float64
	Seed  int64
}

// CellChange records one injected error (the ground truth for repair
// experiments).
type CellChange struct {
	Row  int
	Attr string
	From relation.Value
	To   relation.Value
}

// TaxData is a generated workload: the clean instance, the noisy instance
// actually handed to detection, and the injected changes.
type TaxData struct {
	Clean   *relation.Relation
	Dirty   *relation.Relation
	Changes []CellChange
}

// corruptibleAttrs are the attributes noise may hit — RHS attributes of
// the workload CFDs, as in the paper ("with probability NOISE, an
// attribute on the RHS of a CFD is changed from a correct to incorrect
// value").
var corruptibleAttrs = []string{"ST", "CT", "TX", "EXS", "EXM", "EXC", "STR"}

// GenerateTax builds a tax-records workload. Generation is deterministic
// in the seed.
func GenerateTax(cfg TaxConfig) *TaxData {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := TaxSchema()
	clean := relation.New(schema)
	states := States()

	for i := 0; i < cfg.Size; i++ {
		s := &states[rng.Intn(len(states))]
		zipIdx := s.ZipLo + rng.Intn(s.ZipHi-s.ZipLo)
		bracket := rng.Intn(len(SalaryBrackets))
		mr := "S"
		if rng.Intn(2) == 1 {
			mr = "M"
		}
		ch := "N"
		if rng.Intn(2) == 1 {
			ch = "Y"
		}
		exs, exm := "0", "0"
		if mr == "S" {
			exs = s.ExSingle
		} else {
			exm = s.ExMarried
		}
		exc := "0"
		if ch == "Y" {
			exc = s.ExChild
		}
		t := relation.Tuple{
			"01",                                    // CC
			s.AreaCodes[rng.Intn(len(s.AreaCodes))], // AC
			fmt.Sprintf("%07d", rng.Intn(10000000)), // PN
			firstNames[rng.Intn(len(firstNames))],   // NM
			fmt.Sprintf("%d %s", 1+rng.Intn(999), streetStems[rng.Intn(len(streetStems))]), // STR
			s.Cities[rng.Intn(len(s.Cities))],                                              // CT
			Zip(zipIdx),                                                                    // ZIP
			s.Code,                                                                         // ST
			mr,                                                                             // MR
			ch,                                                                             // CH
			SalaryBrackets[bracket],                                                        // SA
			s.Rates[bracket],                                                               // TX
			exs,                                                                            // EXS
			exm,                                                                            // EXM
			exc,                                                                            // EXC
		}
		if err := clean.Insert(t); err != nil {
			panic(fmt.Sprintf("gen: internal: %v", err)) // generator bug, not user error
		}
	}

	dirty := clean.Clone()
	data := &TaxData{Clean: clean, Dirty: dirty}
	for row := range dirty.Tuples {
		if rng.Float64() >= cfg.Noise {
			continue
		}
		attr := corruptibleAttrs[rng.Intn(len(corruptibleAttrs))]
		col := schema.MustIndex(attr)
		from := dirty.Tuples[row][col]
		to := corruptValue(rng, attr, from)
		if to == from {
			continue
		}
		dirty.Tuples[row][col] = to
		data.Changes = append(data.Changes, CellChange{Row: row, Attr: attr, From: from, To: to})
	}
	return data
}

// corruptValue picks a DIFFERENT but well-formed value for the attribute —
// the paper's "changed from a correct to incorrect value (e.g., a tax
// record for a NYC resident with a Chicago area code)".
func corruptValue(rng *rand.Rand, attr string, from relation.Value) relation.Value {
	states := States()
	for tries := 0; tries < 10; tries++ {
		s := &states[rng.Intn(len(states))]
		var v relation.Value
		switch attr {
		case "ST":
			v = s.Code
		case "CT":
			v = s.Cities[rng.Intn(len(s.Cities))]
		case "TX":
			v = s.Rates[rng.Intn(len(s.Rates))]
		case "EXS":
			v = s.ExSingle
		case "EXM":
			v = s.ExMarried
		case "EXC":
			v = s.ExChild
		case "STR":
			v = fmt.Sprintf("%d %s", 1+rng.Intn(999), streetStems[rng.Intn(len(streetStems))])
		default:
			return from
		}
		if v != from {
			return v
		}
	}
	return from
}
