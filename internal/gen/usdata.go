// Package gen generates the paper's experimental workload (Section 5
// "Setup"): a tax-records relation over real-life-shaped reference data
// (states, zip ranges, area codes, cities, bracketed tax rates and
// exemptions), a tunable noise process, and the CFD workload knobs
// NUMATTRs, TABSZ and NUMCONSTs.
//
// The reference data is synthetic but structurally faithful (see DESIGN.md
// substitutions): every state owns a disjoint zip range and area-code
// block, city names are unique to their state, and tax rates are a
// function of (state, salary bracket) — so the paper's constraints
// ("zip codes determine states", "states and salary brackets determine tax
// rates", …) hold exactly on clean data.
package gen

import (
	"fmt"

	"repro/internal/relation"
)

// ZipsPerState is the number of zip codes owned by each state; with 50
// states the zip universe has exactly 30K elements, matching the paper's
// TABSZ=30K "all possible zip to state pairs" experiment (Figure 9(f)).
const ZipsPerState = 600

// NumStates is the number of US states in the reference data.
const NumStates = 50

// NumZips is the total zip universe size (30,000).
const NumZips = NumStates * ZipsPerState

// AreaCodesPerState is the number of area codes owned by each state.
const AreaCodesPerState = 4

// CitiesPerState is the number of cities listed for each state.
const CitiesPerState = 8

// SalaryBrackets are the categorical salary values the generator draws
// from — the paper's "salary brackets" (tax rates depend on state AND
// bracket).
var SalaryBrackets = []relation.Value{"15000", "35000", "75000", "150000"}

var stateCodes = []string{
	"AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
	"HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
	"MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
	"NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
	"SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
}

var cityStems = []string{
	"Springfield", "Riverton", "Fairview", "Georgetown", "Madison",
	"Clinton", "Arlington", "Ashland", "Dover", "Hudson",
	"Kingston", "Milton", "Newport", "Oxford", "Salem", "Winchester",
}

var firstNames = []string{
	"Mike", "Rick", "Joe", "Jim", "Ben", "Ian", "Ann", "Sue",
	"Tom", "Kim", "Lee", "Max", "Eva", "Roy", "Amy", "Sam",
}

var streetStems = []string{
	"Tree Ave.", "Elm Str.", "Oak Ave.", "High St.", "Main St.",
	"Lake Rd.", "Hill Blvd.", "Park Ln.", "Mill Rd.", "Bay St.",
}

// State is one state's reference record.
type State struct {
	Code      string
	Cities    []string
	AreaCodes []string
	ZipLo     int // inclusive index into the global zip universe
	ZipHi     int // exclusive
	// Rates[b] is the tax rate for salary bracket b, as a decimal string.
	Rates [4]relation.Value
	// Exemptions, keyed by marital status and dependents.
	ExSingle  relation.Value
	ExMarried relation.Value
	ExChild   relation.Value
}

var statesCache []State

// States returns the 50-state reference table (built once).
func States() []State {
	if statesCache != nil {
		return statesCache
	}
	out := make([]State, NumStates)
	for i := range out {
		s := &out[i]
		s.Code = stateCodes[i]
		s.ZipLo = i * ZipsPerState
		s.ZipHi = (i + 1) * ZipsPerState
		for c := 0; c < CitiesPerState; c++ {
			// City names are unique per state, so [CT] → [ST] holds on the
			// reference universe (many real states share city names; see
			// DESIGN.md for why this simplification preserves the
			// experiments).
			s.Cities = append(s.Cities, fmt.Sprintf("%s %s", cityStems[(i+c)%len(cityStems)], s.Code))
		}
		for a := 0; a < AreaCodesPerState; a++ {
			s.AreaCodes = append(s.AreaCodes, fmt.Sprintf("%03d", 200+i*AreaCodesPerState+a))
		}
		for b := range s.Rates {
			// Rate grows with the bracket and varies by state.
			rate := 20*(b+1) + (i % 10)
			s.Rates[b] = fmt.Sprintf("%d.%d", rate/10, rate%10)
		}
		s.ExSingle = fmt.Sprintf("%d", 1000+i*50)
		s.ExMarried = fmt.Sprintf("%d", 2000+i*80)
		s.ExChild = fmt.Sprintf("%d", 500+i*20)
	}
	statesCache = out
	return statesCache
}

// Zip formats the i-th zip of the universe.
func Zip(i int) relation.Value {
	return fmt.Sprintf("%05d", 10000+i)
}

// ZipState returns the state owning the i-th zip.
func ZipState(i int) *State {
	st := States()
	return &st[i/ZipsPerState]
}

// StateByCode returns the state with the given code, or nil.
func StateByCode(code string) *State {
	st := States()
	for i := range st {
		if st[i].Code == code {
			return &st[i]
		}
	}
	return nil
}

// BracketIndex maps a salary value to its bracket index, or -1.
func BracketIndex(sa relation.Value) int {
	for i, b := range SalaryBrackets {
		if b == sa {
			return i
		}
	}
	return -1
}

// TaxSchema is the 15-attribute tax-records schema of Section 5: the cust
// attributes of Figure 1 plus state, marital status, dependents, salary,
// tax rate and the three exemption attributes.
func TaxSchema() *relation.Schema {
	return relation.MustSchema("taxrecords",
		relation.Attr("CC"),
		relation.Attr("AC"),
		relation.Attr("PN"),
		relation.Attr("NM"),
		relation.Attr("STR"),
		relation.Attr("CT"),
		relation.Attr("ZIP"),
		relation.Attr("ST"),
		relation.Attribute{Name: "MR", Domain: relation.Enum("marital", "S", "M")},
		relation.Attribute{Name: "CH", Domain: relation.Enum("dependents", "N", "Y")},
		relation.Attr("SA"),
		relation.Attr("TX"),
		relation.Attr("EXS"),
		relation.Attr("EXM"),
		relation.Attr("EXC"),
	)
}
