package incremental

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/relation"
)

// This file is the batched mutation path: every change to a Monitor —
// including the single-op Insert/Delete/Update, which are one-element
// wrappers — flows through Apply as a ChangeSet. A batch is validated as
// a unit, journaled as one WAL record (one fsync in durable mode), and
// applied with one visit per affected tuple shard: ops are bucketed by
// shard, each shard's bucket runs under a single lock acquisition, and
// disjoint shards apply in parallel.

// OpKind distinguishes the three mutation kinds of a ChangeSet op. The
// values double as the WAL record op codes (see journal.go).
type OpKind uint8

const (
	// OpInsert adds Op.Tuple; Apply assigns Op.Key.
	OpInsert OpKind = opInsert
	// OpDelete removes the tuple with Op.Key.
	OpDelete OpKind = opDelete
	// OpUpdate sets attribute Op.Attr of tuple Op.Key to Op.Value.
	OpUpdate OpKind = opUpdate
)

// Op is one mutation within a ChangeSet.
type Op struct {
	Kind OpKind
	// Tuple is the inserted tuple (OpInsert). Apply does not retain it:
	// the stored copy is cloned and interned.
	Tuple relation.Tuple
	// Key targets an existing tuple (OpDelete, OpUpdate). For OpInsert it
	// is an output: Apply writes the assigned key back into the op, so
	// the caller reads inserted keys from the ChangeSet afterwards.
	Key int64
	// Attr and Value are the updated attribute and its new value
	// (OpUpdate).
	Attr  string
	Value relation.Value

	// ai is the resolved index of Attr and owned the monitor's private
	// clone of Tuple, both filled in by resolveOps. The clone stays
	// private: it is what the WAL records (strings, so the log format is
	// independent of process-local IDs) and what internOps resolves to
	// the ID vector the store keeps.
	ai    int
	owned relation.Tuple
	// keyed marks an insert whose Key was chosen by the caller
	// (InsertKeyed) instead of drawn from the monitor's allocator — the
	// routed-write form, where a router owns the key space. A keyed
	// insert is validated against collision with a live tuple, exactly
	// as a delete is validated for existence.
	keyed bool
	// ids is owned resolved to value IDs (OpInsert) and vid the new
	// value's ID (OpUpdate); both filled by internOps, after validation,
	// so a rejected batch never grows the pool.
	ids idTuple
	vid uint32
}

// ChangeSet is an ordered vector of mutations applied as one batch. Ops
// on the same key take effect in vector order (a batch may insert a
// tuple and update or delete it later in the same batch); ops on
// different keys commute — the net violation delta is the same under any
// interleaving.
//
// The zero value is an empty, ready-to-use ChangeSet.
type ChangeSet struct {
	Ops []Op
}

// Insert appends an insert op and returns the ChangeSet for chaining.
func (cs *ChangeSet) Insert(t relation.Tuple) *ChangeSet {
	cs.Ops = append(cs.Ops, Op{Kind: OpInsert, Tuple: t})
	return cs
}

// InsertKeyed appends an insert op with a caller-chosen key (≥ 0)
// instead of one drawn from the monitor's allocator. The batch is
// rejected if a live tuple already holds the key. The monitor's
// allocator advances past every keyed insert it accepts, so later plain
// Inserts never collide — but a caller that mixes both on one monitor
// owns the coordination; the intended user is a router that partitions
// the key space across shards (see internal/cluster) and allocates
// every key itself.
func (cs *ChangeSet) InsertKeyed(key int64, t relation.Tuple) *ChangeSet {
	cs.Ops = append(cs.Ops, Op{Kind: OpInsert, Tuple: t, Key: key, keyed: true})
	return cs
}

// Delete appends a delete op.
func (cs *ChangeSet) Delete(key int64) *ChangeSet {
	cs.Ops = append(cs.Ops, Op{Kind: OpDelete, Key: key})
	return cs
}

// Update appends a single-attribute update op.
func (cs *ChangeSet) Update(key int64, attr string, val relation.Value) *ChangeSet {
	cs.Ops = append(cs.Ops, Op{Kind: OpUpdate, Key: key, Attr: attr, Value: val})
	return cs
}

// Len returns the number of ops in the batch.
func (cs *ChangeSet) Len() int { return len(cs.Ops) }

// Keyed reports whether an insert op carries a caller-chosen key
// (InsertKeyed). A router uses this to honor pre-assigned keys when a
// sub-batch is retried instead of drawing fresh ones.
func (op *Op) Keyed() bool { return op.keyed }

// Apply runs the whole ChangeSet as one batch and returns the combined
// net violation delta. The batch is all-or-nothing: every op is
// validated (arity, domains, attribute names, and key existence — a key
// inserted earlier in the batch counts as existing) before any op is
// applied, and an invalid op rejects the entire ChangeSet. On a durable
// monitor the batch is journaled as a single WAL record before the
// in-memory apply — one fsync per batch when Options.Fsync is set — so a
// crash mid-batch replays as all of the batch or none of it.
//
// Inserted keys are written back into cs.Ops[i].Key. Unlike the
// single-op Update, a same-value update inside an explicit batch is
// journaled (it still applies, and replays, as a no-op).
func (m *Monitor) Apply(cs *ChangeSet) (*Delta, error) {
	if cs == nil || len(cs.Ops) == 0 {
		return &Delta{}, nil
	}
	met := m.met
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	reject := func(err error) (*Delta, error) {
		if met != nil {
			met.rejected.Inc()
		}
		return nil, err
	}
	if m.readOnly.Load() {
		// A follower only changes through the primary's shipped records;
		// local writes would fork its state from the stream it applies.
		return reject(ErrReadOnly)
	}
	if m.Fenced() {
		// A deposed primary: a higher-epoch history exists, so accepting
		// this write would fork state that can never be replicated.
		if met != nil {
			met.fencedRejected.Inc()
		}
		return reject(ErrFenced)
	}
	if m.j != nil && m.gc == nil {
		// Early poisoned/closed check so a refusing journal rejects
		// before resolveOps burns keys or clones tuples; the
		// authoritative check re-runs under journal.mu in applyBatch.
		// The group-commit path skips it: taking journal.mu here would
		// serialize writers behind the in-flight fsync BEFORE they can
		// enqueue, collapsing every commit window to one op. It relies
		// on the same authoritative re-check inside the window.
		if err := m.j.usableNow(); err != nil {
			return reject(err)
		}
	}
	if err := m.resolveOps(cs.Ops); err != nil {
		return reject(err)
	}
	var d *Delta
	var err error
	if m.j != nil {
		if m.gc != nil {
			d, err = m.gc.apply(m, cs.Ops)
		} else {
			d, err = m.j.applyBatch(m, cs.Ops)
		}
	} else {
		d, err = m.applyOpsMemory(cs.Ops)
		if err == nil {
			d = d.normalize()
		}
	}
	if err != nil {
		return reject(err)
	}
	// Fold the applied delta into the maintained violation view (O(Δ);
	// see view.go). Each group-commit writer folds its own delta, so a
	// window's changes are folded exactly once across its writers.
	m.foldView(d)
	if met != nil {
		met.batches.Inc()
		met.countOps(cs.Ops)
		met.violationsAdded.Add(uint64(len(d.Added)))
		met.violationsRemoved.Add(uint64(len(d.Removed)))
		met.applySeconds.ObserveSince(start)
	}
	return d, nil
}

// opErr tags a validation error with its op position — only for real
// batches, so the single-op wrappers surface the bare message.
func opErr(nops, i int, err error) error {
	if nops == 1 {
		return err
	}
	return fmt.Errorf("incremental: changeset op %d: %s", i, strings.TrimPrefix(err.Error(), "incremental: "))
}

// resolveOps performs the stateless half of validation and resolution:
// arity and domain checks, attribute-name resolution, cloning of
// inserted tuples, and insert-key assignment. It mutates the ops in
// place (owned tuples, resolved indexes, assigned keys). Interning is
// deliberately NOT here — it happens in internOps, after existence
// validation, so a rejected batch never grows the pools.
func (m *Monitor) resolveOps(ops []Op) error {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpInsert:
			if err := m.checkTuple(op.Tuple); err != nil {
				return opErr(len(ops), i, err)
			}
			op.owned = op.Tuple.Clone()
			if op.keyed {
				if op.Key < 0 {
					return opErr(len(ops), i, fmt.Errorf("incremental: keyed insert with negative key %d", op.Key))
				}
				// Advance the allocator past the caller's key (CAS-max),
				// so a later unkeyed insert can never be handed a key a
				// keyed one already claimed.
				for {
					cur := m.nextKey.Load()
					if op.Key < cur || m.nextKey.CompareAndSwap(cur, op.Key+1) {
						break
					}
				}
			} else {
				op.Key = m.nextKey.Add(1) - 1
			}
		case OpDelete:
			// Existence is stateful; checked in validateOps.
		case OpUpdate:
			ai, ok := m.schema.Index(op.Attr)
			if !ok {
				return opErr(len(ops), i, fmt.Errorf("incremental: schema %q has no attribute %q", m.schema.Name, op.Attr))
			}
			if !m.schema.Attrs[ai].Domain.Contains(op.Value) {
				return opErr(len(ops), i, fmt.Errorf("incremental: %q.%s: value %q outside domain %s",
					m.schema.Name, op.Attr, op.Value, m.schema.Attrs[ai].Domain.Name))
			}
			op.ai = ai
		default:
			return fmt.Errorf("incremental: changeset op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// internOps resolves op values to dense IDs through the monitor's value
// pool — the form the store keeps. It runs only on ops that passed
// validation and WILL apply — including replayed records — so the pool
// grows with applied state, never with rejected requests. Inserted
// tuples share one ID arena per batch, so a million-op seed costs one
// allocation for all its ID vectors.
func (m *Monitor) internOps(ops []Op) {
	nattrs := m.schema.Len()
	inserts := 0
	for i := range ops {
		if ops[i].Kind == OpInsert {
			inserts++
		}
	}
	var arena []uint32
	if inserts > 0 {
		arena = make([]uint32, 0, inserts*nattrs)
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpInsert:
			start := len(arena)
			arena = m.vals.AppendIDs(arena, op.owned)
			op.ids = arena[start:len(arena):len(arena)]
		case OpUpdate:
			op.vid = m.vals.ID(op.Value)
		}
	}
}

// bucketOps groups op indexes by tuple shard, preserving vector order
// within each bucket, and returns the affected shard list in ascending
// order (the lock-acquisition order).
func (m *Monitor) bucketOps(ops []Op) (perShard [][]int32, shards []int) {
	perShard = make([][]int32, m.shards)
	for i := range ops {
		si := shardOfTuple(ops[i].Key, m.shards)
		if perShard[si] == nil {
			shards = append(shards, si)
		}
		perShard[si] = append(perShard[si], int32(i))
	}
	// shards accumulated in first-touch order; sort ascending.
	for i := 1; i < len(shards); i++ {
		for j := i; j > 0 && shards[j] < shards[j-1]; j-- {
			shards[j], shards[j-1] = shards[j-1], shards[j]
		}
	}
	return perShard, shards
}

// validateBucket simulates one shard's ops against its live store: every
// delete and update must target a key that exists at that point in the
// batch. The caller holds at least a read lock on the shard.
func (m *Monitor) validateBucket(ops []Op, idxs []int32, sh *tupleShard) error {
	// Allocator-keyed inserts need no existence check (their keys are
	// fresh by construction), so a pure-insert bucket (the whole of a
	// seed load) validates in one scan with no overlay at all. Keyed
	// inserts DO check — a caller-chosen key may collide with a live
	// tuple, and insertLocked would silently overwrite it.
	hasRef := false
	for _, oi := range idxs {
		if ops[oi].Kind != OpInsert || ops[oi].keyed {
			hasRef = true
			break
		}
	}
	if !hasRef {
		return nil
	}
	// Lazily allocated: the overlay only exists once something writes it.
	var overlay map[int64]bool
	exists := func(key int64) bool {
		if v, ok := overlay[key]; ok {
			return v
		}
		_, ok := sh.m[key]
		return ok
	}
	set := func(key int64, live bool) {
		if overlay == nil {
			overlay = make(map[int64]bool, 4)
		}
		overlay[key] = live
	}
	for n, oi := range idxs {
		// The overlay only matters to later ops in the bucket; the final
		// op never writes it, so a single-op bucket stays allocation-free.
		last := n == len(idxs)-1
		op := &ops[oi]
		switch op.Kind {
		case OpInsert:
			if op.keyed && exists(op.Key) {
				return opErr(len(ops), int(oi), fmt.Errorf("incremental: tuple with key %d already exists", op.Key))
			}
			if !last {
				set(op.Key, true)
			}
		case OpDelete:
			if !exists(op.Key) {
				return opErr(len(ops), int(oi), fmt.Errorf("incremental: no tuple with key %d", op.Key))
			}
			if !last {
				set(op.Key, false)
			}
		case OpUpdate:
			if !exists(op.Key) {
				return opErr(len(ops), int(oi), fmt.Errorf("incremental: no tuple with key %d", op.Key))
			}
		}
	}
	return nil
}

// applyBucket applies one shard's ops in vector order. The caller holds
// the shard write lock; the ops were validated, so failures cannot
// happen and would indicate a torn invariant.
func (m *Monitor) applyBucket(ops []Op, idxs []int32, sh *tupleShard, d *Delta, sc *opScratch) error {
	for _, oi := range idxs {
		op := &ops[oi]
		switch op.Kind {
		case OpInsert:
			m.insertLocked(sh, op.Key, op.ids, d, sc)
		case OpDelete:
			if err := m.deleteLocked(sh, op.Key, d, sc); err != nil {
				return err
			}
		case OpUpdate:
			if err := m.updateLocked(sh, op.Key, op.ai, op.vid, d, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// parallelApplyMin is the batch size below which shard-parallel apply is
// not worth the goroutine dispatch.
const parallelApplyMin = 64

// applyBuckets runs every shard bucket — sequentially for small batches,
// one goroutine per affected shard for large ones — and merges the
// per-shard deltas in ascending shard order. locked reports whether the
// caller already holds the shard write locks (the memory path locks all
// affected shards up front for batch atomicity; the journaled path
// serializes writers on journal.mu instead and lets each bucket take its
// own shard lock for just its apply pass).
func (m *Monitor) applyBuckets(ops []Op, perShard [][]int32, shards []int, locked bool) (*Delta, error) {
	if len(shards) == 1 || len(ops) < parallelApplyMin {
		d := &Delta{}
		sc := getScratch()
		defer putScratch(sc)
		for _, si := range shards {
			sh := &m.tuples[si]
			if !locked {
				sh.mu.Lock()
			}
			err := m.applyBucket(ops, perShard[si], sh, d, sc)
			if !locked {
				sh.mu.Unlock()
			}
			if err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	deltas := make([]Delta, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for wi, si := range shards {
		wg.Add(1)
		go func(wi, si int) {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			sh := &m.tuples[si]
			if !locked {
				sh.mu.Lock()
			}
			errs[wi] = m.applyBucket(ops, perShard[si], sh, &deltas[wi], sc)
			if !locked {
				sh.mu.Unlock()
			}
		}(wi, si)
	}
	wg.Wait()
	d := &Delta{}
	for wi := range deltas {
		if errs[wi] != nil {
			return nil, errs[wi]
		}
		d.Added = append(d.Added, deltas[wi].Added...)
		d.Removed = append(d.Removed, deltas[wi].Removed...)
	}
	return d, nil
}

// singleIdx is the bucket index vector of every one-op batch.
var singleIdx = [1]int32{0}

// applySingle is the fast path shared by the one-element wrappers and
// replay: one shard, one lock, no bucketing allocations. validate is
// false only on the journaled path, where validateOps already ran under
// journal.mu and nothing can have interleaved since.
func (m *Monitor) applySingle(ops []Op, validate bool) (*Delta, error) {
	sh := &m.tuples[shardOfTuple(ops[0].Key, m.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if validate {
		if err := m.validateBucket(ops, singleIdx[:], sh); err != nil {
			return nil, err
		}
	}
	m.internOps(ops)
	d := &Delta{}
	sc := getScratch()
	defer putScratch(sc)
	if err := m.applyBucket(ops, singleIdx[:], sh, d, sc); err != nil {
		return nil, err
	}
	return d, nil
}

// applyOpsMemory is the non-durable batch path: write-lock every
// affected shard in ascending order, validate the whole batch, apply it
// shard-parallel, and only then release — so a concurrent writer sees
// either none of the batch or all of it on the shards they share, and a
// validation failure applies nothing at all.
func (m *Monitor) applyOpsMemory(ops []Op) (*Delta, error) {
	if len(ops) == 1 {
		return m.applySingle(ops, true)
	}
	met := m.met
	perShard, shards := m.bucketOps(ops)
	for _, si := range shards {
		m.tuples[si].mu.Lock()
	}
	defer func() {
		for _, si := range shards {
			m.tuples[si].mu.Unlock()
		}
	}()
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	for _, si := range shards {
		if err := m.validateBucket(ops, perShard[si], &m.tuples[si]); err != nil {
			return nil, err
		}
	}
	if met != nil {
		t1 := time.Now()
		met.validateSeconds.ObserveDuration(t1.Sub(t0))
		t0 = t1
	}
	m.internOps(ops)
	d, err := m.applyBuckets(ops, perShard, shards, true)
	if met != nil {
		met.shardApplySeconds.ObserveSince(t0)
	}
	return d, err
}

// validateOps is the journaled single-op pre-append validation: an
// existence check under a brief read lock. It runs under journal.mu, so
// the outcome cannot be invalidated before the apply.
func (m *Monitor) validateOps(ops []Op) error {
	sh := &m.tuples[shardOfTuple(ops[0].Key, m.shards)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return m.validateBucket(ops, singleIdx[:], sh)
}

// validateShards is the batched equivalent, over buckets the caller
// already computed (and shares with the apply pass): existence checks
// for every bucket under brief read locks, under journal.mu.
func (m *Monitor) validateShards(ops []Op, perShard [][]int32, shards []int) error {
	for _, si := range shards {
		sh := &m.tuples[si]
		sh.mu.RLock()
		err := m.validateBucket(ops, perShard[si], sh)
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// --- scratch pool ---

// opScratch holds the reusable buffers of one apply worker: encoded-key,
// projection and tableau-match scratch. Pooled so the single-op wrappers
// don't pay an allocation per mutation.
type opScratch struct {
	key  []byte
	ykey []byte
	x, y []uint32
	rows []int
}

var scratchPool = sync.Pool{New: func() any { return &opScratch{} }}

func getScratch() *opScratch   { return scratchPool.Get().(*opScratch) }
func putScratch(sc *opScratch) { scratchPool.Put(sc) }
