package incremental

import (
	"errors"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/relation"
)

// TestApplyRejectsPoisonedJournal: after a failed append the journal is
// poisoned — the record may or may not be on disk — and every ChangeSet
// (and single-op wrapper) must be refused until a snapshot resolves the
// uncertainty. A successful snapshot heals the journal and Apply works
// again.
func TestApplyRejectsPoisonedJournal(t *testing.T) {
	schema := relation.MustSchema("T", relation.Attr("A"), relation.Attr("B"))
	cfd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	m, err := New(schema, []*core.CFD{cfd}, Options{Durable: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Insert(relation.Tuple{"a", "b"}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk went away")
	m.j.mu.Lock()
	m.j.appendErr = boom
	m.j.mu.Unlock()

	poolBefore := m.vals.Len()
	cs := (&ChangeSet{}).Insert(relation.Tuple{"a2", "b2"}).Update(0, "B", "b3")
	if _, err := m.Apply(cs); err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "journal failed") {
		t.Fatalf("poisoned journal accepted a ChangeSet: %v", err)
	}
	if _, _, err := m.Insert(relation.Tuple{"a2", "b2"}); err == nil {
		t.Fatal("poisoned journal accepted a single insert")
	}
	if m.Len() != 1 {
		t.Fatalf("refused batch leaked state: Len = %d", m.Len())
	}
	// Refused mutations must not grow the intern pools: only applied
	// state does.
	if got := m.vals.Len(); got != poolBefore {
		t.Fatalf("rejected ops grew the value pool: %d -> %d", poolBefore, got)
	}

	// ForceSnapshot starts a fresh segment from the in-memory state,
	// resolving the uncertainty; mutations flow again.
	if err := m.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(cs); err != nil {
		t.Fatalf("healed journal still refuses batches: %v", err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

// TestBatchKeysInterned: the mutation path dedups tuple values and
// projection keys through the monitor's intern pools — N tuples sharing
// categorical values must not grow the pools past the distinct-value
// count.
func TestBatchKeysInterned(t *testing.T) {
	schema := relation.MustSchema("T", relation.Attr("A"), relation.Attr("B"))
	cfd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	m, err := New(schema, []*core.CFD{cfd}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var cs ChangeSet
	for i := 0; i < 200; i++ {
		// 2 distinct A values, 2 distinct B values.
		cs.Insert(relation.Tuple{string(rune('a' + i%2)), string(rune('x' + i%2))})
	}
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	if got := m.vals.Len(); got != 4 {
		t.Fatalf("value pool holds %d entries, want 4", got)
	}
	// Keys: 2 Y-projections (X-projection keys are packed-ID map keys
	// built in place, not pooled).
	if got := m.keys.Len(); got != 2 {
		t.Fatalf("key pool holds %d entries, want 2", got)
	}
	// The stored tuples really share backing bytes with the pool.
	t0, _ := m.Get(0)
	t2, _ := m.Get(2)
	if unsafe.StringData(t0[0]) != unsafe.StringData(t2[0]) {
		t.Fatal("equal values do not share backing storage")
	}
}
