package incremental_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// TestApplyBatchBasics: a mixed batch applies atomically, assigns insert
// keys in vector order, and returns the combined net delta.
func TestApplyBatchBasics(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	var cs incremental.ChangeSet
	cs.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}) // breaks 908→MH and the phone group
	cs.Update(2, "CT", "MH")                                                              // breaks 212→NYC for Joe
	cs.Delete(4)
	d, err := m.Apply(&cs)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Ops[0].Key != int64(rel.Len()) {
		t.Fatalf("insert key = %d, want %d", cs.Ops[0].Key, rel.Len())
	}
	if m.Len() != rel.Len() { // +1 insert, -1 delete
		t.Fatalf("Len = %d, want %d", m.Len(), rel.Len())
	}
	// The combined delta must replay exactly onto the pre-batch oracle:
	// final live set == batch oracle over the surviving tuples.
	want := oracleState(t, m.Snapshot(), sigma, m.Keys())
	if got := m.Violations(); !got.Equal(want) {
		t.Fatalf("after batch:\ngot:\n%s\nwant:\n%s", describe(got), describe(want))
	}
	if d.Empty() {
		t.Fatal("dirty batch produced an empty delta")
	}
	// Apply does not retain the caller's tuple OR hand back its own
	// copy: mutating the ChangeSet afterwards must not reach the store.
	cs.Ops[0].Tuple[5] = "CORRUPTED"
	if got, ok := m.Get(cs.Ops[0].Key); !ok || got[5] != "NYC" {
		t.Fatalf("post-Apply ChangeSet mutation reached the monitor: %v", got)
	}
}

// TestApplyEmptyAndNil: degenerate ChangeSets are no-ops.
func TestApplyEmptyAndNil(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := m.Apply(nil); err != nil || !d.Empty() {
		t.Fatalf("Apply(nil) = %+v, %v", d, err)
	}
	if d, err := m.Apply(&incremental.ChangeSet{}); err != nil || !d.Empty() {
		t.Fatalf("Apply(empty) = %+v, %v", d, err)
	}
}

// TestApplyBatchSelfContained: a batch may insert a tuple and update or
// delete it later in the same batch — existence is simulated through the
// batch prefix.
func TestApplyBatchSelfContained(t *testing.T) {
	rel, sigma := custFixture(t)
	for _, durable := range []bool{false, true} {
		opts := incremental.Options{Shards: 4}
		if durable {
			opts.Durable = t.TempDir()
		}
		m, err := incremental.Load(rel, sigma, opts)
		if err != nil {
			t.Fatal(err)
		}
		var cs incremental.ChangeSet
		cs.Insert(relation.Tuple{"01", "908", "7770001", "A", "S", "MH", "07974"})
		cs.Insert(relation.Tuple{"01", "908", "7770002", "B", "S", "MH", "07974"})
		next := int64(rel.Len())
		cs.Update(next, "CT", "NYC") // breaks the first insert's 908→MH binding
		cs.Delete(next + 1)          // the second insert vanishes within the batch
		if _, err := m.Apply(&cs); err != nil {
			t.Fatalf("durable=%v: %v", durable, err)
		}
		if m.Len() != rel.Len()+1 {
			t.Fatalf("durable=%v: Len = %d, want %d", durable, m.Len(), rel.Len()+1)
		}
		if _, ok := m.Get(next + 1); ok {
			t.Fatalf("durable=%v: tuple inserted and deleted in one batch survived", durable)
		}
		want := oracleState(t, m.Snapshot(), sigma, m.Keys())
		if got := m.Violations(); !got.Equal(want) {
			t.Fatalf("durable=%v: live set diverges:\ngot:\n%s\nwant:\n%s", durable, describe(got), describe(want))
		}
		if durable {
			// The whole batch must round-trip recovery as a unit.
			wantState := m.Violations()
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			m2, err := incremental.Load(rel, sigma, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !m2.Recovered() || !m2.Violations().Equal(wantState) || m2.Len() != rel.Len()+1 {
				t.Fatalf("batch did not survive recovery: recovered=%v len=%d", m2.Recovered(), m2.Len())
			}
			// Replay seeds the segment counter in MUTATIONS, the same
			// unit afterAppend counts, so the snapshot cadence does not
			// drift across a crash: the 4-op batch is 4, not 1 record.
			if got := m2.JournalStats().SegmentRecords; got != 4 {
				t.Fatalf("recovered SegmentRecords = %d, want 4 ops", got)
			}
			m2.Close()
		}
	}
}

// TestApplyBatchAllOrNothing: an invalid op anywhere in the vector
// rejects the whole ChangeSet — nothing is applied, nothing journaled.
func TestApplyBatchAllOrNothing(t *testing.T) {
	rel, sigma := custFixture(t)
	for _, durable := range []bool{false, true} {
		opts := incremental.Options{Shards: 4}
		if durable {
			opts.Durable = t.TempDir()
		}
		m, err := incremental.Load(rel, sigma, opts)
		if err != nil {
			t.Fatal(err)
		}
		before := m.Violations()
		records := m.JournalStats().SegmentRecords
		cases := map[string]*incremental.ChangeSet{
			"unknown key":       (&incremental.ChangeSet{}).Insert(rel.Tuples[0].Clone()).Delete(999),
			"deleted twice":     (&incremental.ChangeSet{}).Delete(0).Delete(0),
			"update after del":  (&incremental.ChangeSet{}).Delete(1).Update(1, "CT", "MH"),
			"unknown attribute": (&incremental.ChangeSet{}).Insert(rel.Tuples[0].Clone()).Update(0, "NOPE", "x"),
			"bad arity":         (&incremental.ChangeSet{}).Update(0, "CT", "MH").Insert(relation.Tuple{"just-one"}),
		}
		for name, cs := range cases {
			if _, err := m.Apply(cs); err == nil {
				t.Errorf("durable=%v %s: batch accepted", durable, name)
			} else if !strings.Contains(err.Error(), "changeset op") {
				t.Errorf("durable=%v %s: error %q lacks op position", durable, name, err)
			}
		}
		if m.Len() != rel.Len() || !m.Violations().Equal(before) {
			t.Fatalf("durable=%v: rejected batches leaked state", durable)
		}
		if durable && m.JournalStats().SegmentRecords != records {
			t.Fatalf("durable=%v: rejected batch reached the journal", durable)
		}
		m.Close()
	}
}

// TestApplyBatchNoOpUpdateJournaled: inside an explicit batch a
// same-value update is journaled and replays as a no-op (unlike the
// single-op Update, which skips the journal entirely).
func TestApplyBatchNoOpUpdateJournaled(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	before := m.JournalStats().SegmentRecords
	if d, err := m.Update(0, "CT", rel.Tuples[0][5]); err != nil || !d.Empty() {
		t.Fatalf("single no-op update: %+v, %v", d, err)
	}
	if got := m.JournalStats().SegmentRecords; got != before {
		t.Fatalf("single no-op update journaled: %d records, want %d", got, before)
	}
	cs := (&incremental.ChangeSet{}).Update(0, "CT", rel.Tuples[0][5]).Update(1, "CT", rel.Tuples[1][5])
	if d, err := m.Apply(cs); err != nil || !d.Empty() {
		t.Fatalf("batched no-op updates: %+v, %v", d, err)
	}
	if got := m.JournalStats().SegmentRecords; got != before+2 {
		t.Fatalf("batched no-op updates: %d records, want %d", got, before+2)
	}
	want := m.Violations()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err) // the journaled no-ops must replay cleanly
	}
	defer m2.Close()
	if !m2.Violations().Equal(want) {
		t.Fatal("no-op records changed state on replay")
	}
}

// TestUpdateErrorPaths pins down Monitor.Update's rejection surface on
// both memory-only and durable monitors: unknown attribute, unknown key
// and type-invalid (outside-domain) values must error with stable
// messages, leave no state behind, and journal nothing.
func TestUpdateErrorPaths(t *testing.T) {
	schema := relation.MustSchema("T",
		relation.Attribute{Name: "A", Domain: relation.Bool()}, relation.Attr("B"))
	sigma, err := core.ParseSet("[A] -> [B]")
	if err != nil {
		t.Fatal(err)
	}
	for _, durable := range []bool{false, true} {
		opts := incremental.Options{}
		if durable {
			opts.Durable = t.TempDir()
		}
		m, err := incremental.New(schema, sigma, opts)
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := m.Insert(relation.Tuple{"true", "b"})
		if err != nil {
			t.Fatal(err)
		}
		records := m.JournalStats().SegmentRecords
		cases := []struct {
			name       string
			key        int64
			attr, val  string
			wantSubstr string
		}{
			{"unknown attribute", key, "NOPE", "x", `has no attribute "NOPE"`},
			{"unknown key", 99, "B", "x", "no tuple with key 99"},
			{"type-invalid value", key, "A", "maybe", `value "maybe" outside domain bool`},
		}
		for _, tc := range cases {
			d, err := m.Update(tc.key, tc.attr, tc.val)
			if err == nil || !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Errorf("durable=%v %s: err = %v, want %q", durable, tc.name, err, tc.wantSubstr)
			}
			if d != nil {
				t.Errorf("durable=%v %s: non-nil delta on error", durable, tc.name)
			}
		}
		if got, _ := m.Get(key); !got.Equal(relation.Tuple{"true", "b"}) {
			t.Errorf("durable=%v: failed updates modified the tuple: %v", durable, got)
		}
		if durable {
			if got := m.JournalStats().SegmentRecords; got != records {
				t.Errorf("failed updates reached the journal: %d records, want %d", got, records)
			}
		}
		// The same rejections hold inside a ChangeSet, tagged with the op
		// position.
		cs := (&incremental.ChangeSet{}).Delete(key).Update(key, "B", "x")
		if _, err := m.Apply(cs); err == nil || !strings.Contains(err.Error(), "changeset op 1") {
			t.Errorf("durable=%v: update-after-delete in batch: %v", durable, err)
		}
		m.Close()
	}
}

// TestRandomBatchesMatchOracle is the batched property test: random
// ChangeSets (1–24 ops, mixed kinds, self-referencing inserts) against
// the same three scenarios as the single-op stream test, oracle-checked
// after every batch — and, per scenario, a durable twin fed the same
// batches is killed into recovery at the end and must agree.
func TestRandomBatchesMatchOracle(t *testing.T) {
	for _, cfg := range streamConfigs(t) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed + 7))
			dir := t.TempDir()
			m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			md, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4, Durable: dir})
			if err != nil {
				t.Fatal(err)
			}
			mr := &mirror{m: make(map[int64]relation.Tuple)}
			randomTuple := func() relation.Tuple {
				tp := make(relation.Tuple, cfg.schema.Len())
				for i := range tp {
					pool := cfg.pools[i]
					tp[i] = pool[rng.Intn(len(pool))]
				}
				return tp
			}
			const batches = 60
			nextKey := int64(0) // tracks the monitors' key counter exactly
			for step := 0; step < batches; step++ {
				var cs, csd incremental.ChangeSet
				// The mirror tracks the batch prefix so deletes/updates can
				// target keys inserted earlier in the same batch.
				type pend struct {
					key int64
					tp  relation.Tuple
				}
				var pending []pend
				indexOfKey := func(key int64) int {
					for i := range pending {
						if pending[i].key == key {
							return i
						}
					}
					return -1
				}
				live := func() []int64 {
					keys := append([]int64(nil), mr.order...)
					for _, p := range pending {
						keys = append(keys, p.key)
					}
					return keys
				}
				nops := 1 + rng.Intn(24)
				for o := 0; o < nops; o++ {
					keys := live()
					op := rng.Float64()
					switch {
					case len(keys) == 0 || (op < 0.45 && len(keys) < 90):
						tp := randomTuple()
						cs.Insert(tp)
						csd.Insert(tp.Clone())
						pending = append(pending, pend{key: nextKey, tp: tp.Clone()})
						nextKey++
					case op < 0.70 || len(keys) >= 90:
						key := keys[rng.Intn(len(keys))]
						cs.Delete(key)
						csd.Delete(key)
						// Remove from mirror-to-be.
						if i := indexOfKey(key); i >= 0 {
							pending = append(pending[:i], pending[i+1:]...)
						} else {
							mr.delete(key)
						}
					default:
						key := keys[rng.Intn(len(keys))]
						ai := rng.Intn(cfg.schema.Len())
						val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
						cs.Update(key, cfg.schema.Attrs[ai].Name, val)
						csd.Update(key, cfg.schema.Attrs[ai].Name, val)
						if i := indexOfKey(key); i >= 0 {
							pending[i].tp[ai] = val
						} else {
							mr.m[key][ai] = val
						}
					}
				}
				for _, p := range pending {
					mr.m[p.key] = p.tp
					mr.order = append(mr.order, p.key)
				}
				if _, err := m.Apply(&cs); err != nil {
					t.Fatalf("batch %d: %v", step, err)
				}
				if _, err := md.Apply(&csd); err != nil {
					t.Fatalf("batch %d (durable): %v", step, err)
				}
				// Both monitors assigned the same insert keys.
				for i := range cs.Ops {
					if cs.Ops[i].Kind == incremental.OpInsert && cs.Ops[i].Key != csd.Ops[i].Key {
						t.Fatalf("batch %d: key divergence at op %d: %d vs %d", step, i, cs.Ops[i].Key, csd.Ops[i].Key)
					}
				}
				rel, keys := mr.relation(cfg.schema)
				want := oracleState(t, rel, cfg.sigma, keys)
				if got := m.Violations(); !got.Equal(want) {
					t.Fatalf("batch %d: live set diverges from batch oracle:\ngot:\n%s\nwant:\n%s",
						step, describe(got), describe(want))
				}
				if got := md.Violations(); !got.Equal(want) {
					t.Fatalf("batch %d: durable twin diverges:\ngot:\n%s\nwant:\n%s",
						step, describe(got), describe(want))
				}
			}
			want := m.Violations()
			if err := md.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4, Durable: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if !rec.Recovered() || !rec.Violations().Equal(want) || rec.Len() != m.Len() {
				t.Fatalf("batched journal did not recover: recovered=%v len=%d want %d",
					rec.Recovered(), rec.Len(), m.Len())
			}
		})
	}
}
