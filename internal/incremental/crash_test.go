package incremental_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/incremental"
	"repro/internal/relation"
	"repro/internal/wal"
)

// The kill-and-recover property test: drive a durable monitor through a
// random mutation stream (with a mid-stream snapshot, so recovery crosses
// a generation boundary), then simulate crashes by truncating the live
// log segment at arbitrary byte offsets — exact record boundaries and
// torn mid-record writes alike. After every simulated crash the recovered
// monitor must
//
//  1. agree byte-for-byte with the batch Direct detector run over the
//     surviving tuples (internal-consistency: the rebuilt indexes are
//     exactly what full re-evaluation would produce), and
//  2. equal the mirror state as of the last record boundary at or before
//     the cut (no lost acknowledged prefix, no phantom tail).

// copyDir clones a WAL directory into a fresh crash image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashRecoveryMatchesBatchDetector(t *testing.T) {
	cfg := streamConfigs(t)[0] // the cust / Figure 2 scenario
	rng := rand.New(rand.NewSource(777))
	dir := t.TempDir()

	// Fsync per record keeps the on-disk segment exact after every op, so
	// the file size after op k IS the k'th record boundary.
	m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{
		Shards: 4, Durable: dir, Fsync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mr := &mirror{m: make(map[int64]relation.Tuple)}
	randomTuple := func() relation.Tuple {
		tp := make(relation.Tuple, cfg.schema.Len())
		for i := range tp {
			pool := cfg.pools[i]
			tp[i] = pool[rng.Intn(len(pool))]
		}
		return tp
	}
	step := func() {
		op := rng.Float64()
		switch {
		case len(mr.order) == 0 || (op < 0.5 && len(mr.order) < 60):
			tp := randomTuple()
			key, _, err := m.Insert(tp)
			if err != nil {
				t.Fatal(err)
			}
			mr.m[key] = tp.Clone()
			mr.order = append(mr.order, key)
		case op < 0.75 || len(mr.order) >= 60:
			key := mr.order[rng.Intn(len(mr.order))]
			if _, err := m.Delete(key); err != nil {
				t.Fatal(err)
			}
			mr.delete(key)
		default:
			key := mr.order[rng.Intn(len(mr.order))]
			ai := rng.Intn(cfg.schema.Len())
			val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
			if _, err := m.Update(key, cfg.schema.Attrs[ai].Name, val); err != nil {
				t.Fatal(err)
			}
			mr.m[key][ai] = val
		}
	}

	// Phase 1: 50 ops against the fresh generation-0 log, then a forced
	// snapshot so the crash images exercise snapshot + log-tail recovery.
	for i := 0; i < 50; i++ {
		step()
	}
	if err := m.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	segment := wal.LogPath(dir, m.JournalStats().Generation)
	if _, err := os.Stat(segment); err != nil {
		t.Fatal(err)
	}

	// Phase 2: 80 more ops; after each, record the segment size (a record
	// boundary — no-op updates append nothing, which the size dedups) and
	// the mirror image of the moment.
	type boundary struct {
		size int64
		rel  *relation.Relation
		keys []int64
	}
	snapRel, snapKeys := mr.relation(cfg.schema)
	bounds := []boundary{{size: 0, rel: snapRel.Clone(), keys: append([]int64(nil), snapKeys...)}}
	for i := 0; i < 80; i++ {
		step()
		fi, err := os.Stat(segment)
		if err != nil {
			t.Fatal(err)
		}
		rel, keys := mr.relation(cfg.schema)
		bounds = append(bounds, boundary{size: fi.Size(), rel: rel.Clone(), keys: append([]int64(nil), keys...)})
	}
	finalSize := bounds[len(bounds)-1].size
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash images: every exact record boundary, plus random mid-record
	// offsets.
	var cuts []int64
	for _, b := range bounds {
		cuts = append(cuts, b.size)
	}
	for i := 0; i < 40; i++ {
		cuts = append(cuts, rng.Int63n(finalSize+1))
	}
	for _, cut := range cuts {
		img := t.TempDir()
		copyDir(t, dir, img)
		if err := os.Truncate(filepath.Join(img, filepath.Base(segment)), cut); err != nil {
			t.Fatal(err)
		}
		rec, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4, Durable: img})
		if err != nil {
			t.Fatalf("cut@%d: recovery failed: %v", cut, err)
		}
		if !rec.Recovered() {
			t.Fatalf("cut@%d: image not recognized as existing state", cut)
		}

		// (1) Internal consistency: live set == batch Direct over the
		// surviving tuples.
		oracle := oracleState(t, rec.Snapshot(), cfg.sigma, rec.Keys())
		if got := rec.Violations(); !got.Equal(oracle) {
			t.Fatalf("cut@%d: recovered live set diverges from batch detector:\ngot:\n%s\nwant:\n%s",
				cut, describe(got), describe(oracle))
		}

		// (2) Exact prefix: state equals the mirror at the last record
		// boundary at or before the cut.
		want := bounds[0]
		for _, b := range bounds {
			if b.size <= cut {
				want = b
			}
		}
		if rec.Len() != want.rel.Len() {
			t.Fatalf("cut@%d: recovered %d tuples, want %d", cut, rec.Len(), want.rel.Len())
		}
		wantState := oracleState(t, want.rel, cfg.sigma, want.keys)
		if got := rec.Violations(); !got.Equal(wantState) {
			t.Fatalf("cut@%d: recovered live set is not the boundary prefix:\ngot:\n%s\nwant:\n%s",
				cut, describe(got), describe(wantState))
		}
		for i, k := range want.keys {
			tp, ok := rec.Get(k)
			if !ok || !tp.Equal(want.rel.Tuples[i]) {
				t.Fatalf("cut@%d: tuple %d = %v, want %v", cut, k, tp, want.rel.Tuples[i])
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryBatchAllOrNothing kills the journal inside batch
// records: a ChangeSet journals as ONE framed record, so a crash
// mid-batch must replay as the whole batch or none of it — recovery can
// only ever land on a batch boundary, never between two ops of one
// ChangeSet. Every recovered image is additionally cross-checked against
// the batch Direct detector.
func TestCrashRecoveryBatchAllOrNothing(t *testing.T) {
	cfg := streamConfigs(t)[0] // the cust / Figure 2 scenario
	rng := rand.New(rand.NewSource(888))
	dir := t.TempDir()

	m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{
		Shards: 4, Durable: dir, Fsync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mr := &mirror{m: make(map[int64]relation.Tuple)}
	randomTuple := func() relation.Tuple {
		tp := make(relation.Tuple, cfg.schema.Len())
		for i := range tp {
			pool := cfg.pools[i]
			tp[i] = pool[rng.Intn(len(pool))]
		}
		return tp
	}

	// Phase 1: seed through single ops, then snapshot so the crash images
	// exercise snapshot + batched-log-tail recovery.
	for i := 0; i < 30; i++ {
		tp := randomTuple()
		key, _, err := m.Insert(tp)
		if err != nil {
			t.Fatal(err)
		}
		mr.m[key] = tp.Clone()
		mr.order = append(mr.order, key)
	}
	if err := m.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	segment := wal.LogPath(dir, m.JournalStats().Generation)

	// Phase 2: 25 multi-op ChangeSets (4–12 ops each, inserts mutated or
	// deleted later in their own batch included); every Apply with Fsync
	// lands exactly one record, so the segment size after it IS the batch
	// boundary.
	type boundary struct {
		size int64
		rel  *relation.Relation
		keys []int64
	}
	nextKey := int64(30)
	snapRel, snapKeys := mr.relation(cfg.schema)
	bounds := []boundary{{size: 0, rel: snapRel.Clone(), keys: append([]int64(nil), snapKeys...)}}
	for b := 0; b < 25; b++ {
		var cs incremental.ChangeSet
		type pend struct {
			key int64
			tp  relation.Tuple
		}
		var pending []pend
		indexOfKey := func(key int64) int {
			for i := range pending {
				if pending[i].key == key {
					return i
				}
			}
			return -1
		}
		live := func() []int64 {
			keys := append([]int64(nil), mr.order...)
			for _, p := range pending {
				keys = append(keys, p.key)
			}
			return keys
		}
		for o, nops := 0, 4+rng.Intn(9); o < nops; o++ {
			keys := live()
			op := rng.Float64()
			switch {
			case len(keys) == 0 || (op < 0.45 && len(keys) < 70):
				tp := randomTuple()
				cs.Insert(tp)
				pending = append(pending, pend{key: nextKey, tp: tp.Clone()})
				nextKey++
			case op < 0.70 || len(keys) >= 70:
				key := keys[rng.Intn(len(keys))]
				cs.Delete(key)
				if i := indexOfKey(key); i >= 0 {
					pending = append(pending[:i], pending[i+1:]...)
				} else {
					mr.delete(key)
				}
			default:
				key := keys[rng.Intn(len(keys))]
				ai := rng.Intn(cfg.schema.Len())
				val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
				cs.Update(key, cfg.schema.Attrs[ai].Name, val)
				if i := indexOfKey(key); i >= 0 {
					pending[i].tp[ai] = val
				} else {
					mr.m[key][ai] = val
				}
			}
		}
		for _, p := range pending {
			mr.m[p.key] = p.tp
			mr.order = append(mr.order, p.key)
		}
		if _, err := m.Apply(&cs); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		fi, err := os.Stat(segment)
		if err != nil {
			t.Fatal(err)
		}
		rel, keys := mr.relation(cfg.schema)
		bounds = append(bounds, boundary{size: fi.Size(), rel: rel.Clone(), keys: append([]int64(nil), keys...)})
	}
	finalSize := bounds[len(bounds)-1].size
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash images: every batch boundary plus random offsets — most land
	// INSIDE a batch record, the case this test exists for.
	var cuts []int64
	for _, b := range bounds {
		cuts = append(cuts, b.size)
	}
	for i := 0; i < 60; i++ {
		cuts = append(cuts, rng.Int63n(finalSize+1))
	}
	for _, cut := range cuts {
		img := t.TempDir()
		copyDir(t, dir, img)
		if err := os.Truncate(filepath.Join(img, filepath.Base(segment)), cut); err != nil {
			t.Fatal(err)
		}
		rec, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4, Durable: img})
		if err != nil {
			t.Fatalf("cut@%d: recovery failed: %v", cut, err)
		}

		// All-or-nothing: the recovered state must be EXACTLY the mirror
		// at the last batch boundary at or before the cut — a partially
		// applied batch would land between boundaries and diverge.
		want := bounds[0]
		for _, b := range bounds {
			if b.size <= cut {
				want = b
			}
		}
		if rec.Len() != want.rel.Len() {
			t.Fatalf("cut@%d: recovered %d tuples, want %d (torn batch partially applied?)",
				cut, rec.Len(), want.rel.Len())
		}
		for i, k := range want.keys {
			tp, ok := rec.Get(k)
			if !ok || !tp.Equal(want.rel.Tuples[i]) {
				t.Fatalf("cut@%d: tuple %d = %v, want %v", cut, k, tp, want.rel.Tuples[i])
			}
		}
		wantState := oracleState(t, want.rel, cfg.sigma, want.keys)
		if got := rec.Violations(); !got.Equal(wantState) {
			t.Fatalf("cut@%d: recovered live set is not the batch-boundary prefix:\ngot:\n%s\nwant:\n%s",
				cut, describe(got), describe(wantState))
		}
		// Internal consistency against the batch detector.
		oracle := oracleState(t, rec.Snapshot(), cfg.sigma, rec.Keys())
		if got := rec.Violations(); !got.Equal(oracle) {
			t.Fatalf("cut@%d: recovered live set diverges from batch detector:\ngot:\n%s\nwant:\n%s",
				cut, describe(got), describe(oracle))
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
