package incremental

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// Change is one element of a violation delta: a violation that appeared in
// (or disappeared from) the live violation set as a consequence of a single
// Insert/Delete/Update operation. It identifies a violation the same way
// detect.CFDViolations does — constant violations by the offending tuple,
// variable violations by the shared X-projection of the conflicting group —
// except that tuples are named by their stable Monitor key rather than a
// positional row id.
type Change struct {
	// CFD is the index of the violated CFD within the monitored Σ.
	CFD int
	// Kind distinguishes constant from variable violations.
	Kind core.ViolationKind
	// Tuple is the offending tuple's key (ConstViolation only).
	Tuple int64
	// Key is the shared X-projection of the conflicting group
	// (VariableViolation only).
	Key []relation.Value
}

// String renders the change for logs and the CLI surfaces.
func (c Change) String() string {
	if c.Kind == core.ConstViolation {
		return fmt.Sprintf("cfd %d const tuple %d", c.CFD, c.Tuple)
	}
	return fmt.Sprintf("cfd %d variable key (%s)", c.CFD, strings.Join(c.Key, ", "))
}

// Delta is the net effect of one operation on the live violation set:
// violations that appeared (Added) and violations that were retired
// (Removed). A violation that merely changes its witnessing tableau row —
// present both before and after the operation — does not appear in either
// list.
type Delta struct {
	Added   []Change
	Removed []Change
}

// Empty reports whether the operation changed the violation set at all.
func (d *Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// changeKey is the identity of a Change for cancellation purposes.
type changeKey struct {
	cfd   int
	kind  core.ViolationKind
	tuple int64
	key   string
}

func ckOf(c Change) changeKey {
	k := changeKey{cfd: c.CFD, kind: c.Kind}
	if c.Kind == core.ConstViolation {
		k.tuple = c.Tuple
	} else {
		k.key = relation.EncodeKey(c.Key)
	}
	return k
}

// normalize cancels changes listed as both added and removed (an Update
// that removes the old tuple's violation and re-adds the same violation
// for the new value is a net no-op) and returns the receiver.
func (d *Delta) normalize() *Delta {
	if len(d.Added) == 0 || len(d.Removed) == 0 {
		return d
	}
	remain := make(map[changeKey]int, len(d.Removed))
	for _, c := range d.Removed {
		remain[ckOf(c)]++
	}
	added := d.Added[:0]
	for _, c := range d.Added {
		k := ckOf(c)
		if remain[k] > 0 {
			remain[k]--
			continue
		}
		added = append(added, c)
	}
	removed := d.Removed[:0]
	for _, c := range d.Removed {
		k := ckOf(c)
		if remain[k] > 0 {
			remain[k]--
			removed = append(removed, c)
		}
	}
	d.Added, d.Removed = added, removed
	return d
}

// CFDViolations is one CFD's live violation set, in the same canonical
// shape detect.CFDViolations uses: sorted constant-violating tuple keys
// plus the distinct X-projections of conflicting groups, sorted by encoded
// key.
type CFDViolations struct {
	ConstTuples  []int64
	VariableKeys [][]relation.Value
}

// Total returns the number of live violations of this CFD.
func (v CFDViolations) Total() int { return len(v.ConstTuples) + len(v.VariableKeys) }

// State is a point-in-time snapshot of the full violation set, one entry
// per monitored CFD, positionally aligned with Σ.
type State struct {
	PerCFD []CFDViolations
}

// Clean reports whether the snapshot contains no violations.
func (s *State) Clean() bool {
	for _, v := range s.PerCFD {
		if v.Total() > 0 {
			return false
		}
	}
	return true
}

// Total returns the number of violations across all CFDs.
func (s *State) Total() int {
	n := 0
	for _, v := range s.PerCFD {
		n += v.Total()
	}
	return n
}

// Equal compares two snapshots structurally.
func (s *State) Equal(o *State) bool {
	if len(s.PerCFD) != len(o.PerCFD) {
		return false
	}
	for i := range s.PerCFD {
		a, b := s.PerCFD[i], o.PerCFD[i]
		if len(a.ConstTuples) != len(b.ConstTuples) || len(a.VariableKeys) != len(b.VariableKeys) {
			return false
		}
		for j := range a.ConstTuples {
			if a.ConstTuples[j] != b.ConstTuples[j] {
				return false
			}
		}
		for j := range a.VariableKeys {
			if relation.EncodeKey(a.VariableKeys[j]) != relation.EncodeKey(b.VariableKeys[j]) {
				return false
			}
		}
	}
	return true
}

// canonicalizeState sorts the accumulated per-CFD sets into canonical order.
func canonicalizeState(consts []int64, vars map[string][]relation.Value) CFDViolations {
	out := CFDViolations{ConstTuples: consts}
	sort.Slice(out.ConstTuples, func(i, j int) bool { return out.ConstTuples[i] < out.ConstTuples[j] })
	encoded := make([]string, 0, len(vars))
	for k := range vars {
		encoded = append(encoded, k)
	}
	sort.Strings(encoded)
	for _, k := range encoded {
		out.VariableKeys = append(out.VariableKeys, vars[k])
	}
	return out
}
