package incremental_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/incremental"
	"repro/internal/relation"
	"repro/internal/wal"
)

// The failover property test: a primary is driven through a random
// mutation stream (singles, multi-op ChangeSets, generation rolls) while
// a follower tails it through a deliberately flaky chunk source that
// dies after a random number of chunks — so the "kill the primary"
// moment lands at a random record boundary of a random segment, with the
// follower an arbitrary distance behind. The follower is then promoted
// and must:
//
//  1. sit on an exact record boundary of the primary's journaled stream
//     (never between the ops of a batch, never mid-record), and
//  2. hold exactly the state of that boundary — cross-checked against
//     the single-node oracle (the batch Direct detector over the
//     mirror's prefix image), and
//  3. accept writes as a primary afterwards, with the oracle tracking.

// soakFactor scales the randomized property workloads: the nightly CI
// soak sets CFD_SOAK to run many more rounds than the PR gate pays for.
func soakFactor() int {
	if s := os.Getenv("CFD_SOAK"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// flakySource serves a bounded number of chunks, then fails every call —
// the in-process stand-in for a primary that died mid-stream.
type flakySource struct {
	inner  incremental.ChunkSource
	budget int
}

func (s *flakySource) Snapshot(ctx context.Context) (uint64, io.ReadCloser, error) {
	return s.inner.Snapshot(ctx)
}

func (s *flakySource) Chunk(ctx context.Context, seq uint64, offset int64, maxBytes int) (incremental.ShipChunk, error) {
	if s.budget <= 0 {
		return incremental.ShipChunk{}, fmt.Errorf("flaky: primary is down")
	}
	s.budget--
	return s.inner.Chunk(ctx, seq, offset, maxBytes)
}

func TestFailoverPromotedMatchesOracle(t *testing.T) {
	cfg := streamConfigs(t)[0] // the cust / Figure 2 scenario
	rounds := 5 * soakFactor()
	stepsPerRound := 60 * soakFactor()
	if stepsPerRound > 400 {
		stepsPerRound = 400
	}
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round-%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9000 + int64(round)))
			ctx := context.Background()
			pdir, fdir := t.TempDir(), t.TempDir()

			// Fsync per record keeps the segment size exact after every
			// apply, so file sizes ARE record boundaries.
			p, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{
				Shards: 4, Durable: pdir, Fsync: true, RetainSegments: 16,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Seed a little, then attach the follower (its snapshot fetch
			// rolls the primary to a snapshotted generation).
			mr := &mirror{m: make(map[int64]relation.Tuple)}
			nextKey := int64(0)
			randomTuple := func() relation.Tuple {
				tp := make(relation.Tuple, cfg.schema.Len())
				for i := range tp {
					pool := cfg.pools[i]
					tp[i] = pool[rng.Intn(len(pool))]
				}
				return tp
			}
			for i := 0; i < 10; i++ {
				tp := randomTuple()
				key, _, err := p.Insert(tp)
				if err != nil {
					t.Fatal(err)
				}
				mr.m[key] = tp.Clone()
				mr.order = append(mr.order, key)
				nextKey = key + 1
			}

			budget := 1 + rng.Intn(25)
			src := &flakySource{inner: incremental.NewMonitorSource(p), budget: budget}
			f, err := incremental.NewFollower(ctx, cfg.sigma,
				incremental.Options{Shards: 4, Durable: fdir},
				incremental.FollowOptions{Source: src, MaxChunk: 1 + rng.Intn(256)})
			if err != nil {
				t.Fatal(err)
			}

			// Record boundaries: after every journaled record (and every
			// roll) remember (generation, segment size) plus the mirror
			// image of the moment. The base boundary is the snapshot the
			// follower fetched.
			type boundary struct {
				seq  uint64
				size int64
				rel  *relation.Relation
				keys []int64
			}
			mark := func() boundary {
				gen := p.JournalStats().Generation
				fi, err := os.Stat(wal.LogPath(pdir, gen))
				if err != nil {
					t.Fatal(err)
				}
				rel, keys := mr.relation(cfg.schema)
				return boundary{seq: gen, size: fi.Size(), rel: rel.Clone(), keys: append([]int64(nil), keys...)}
			}
			bounds := []boundary{mark()}

			// The mutation stream: singles, batches (one record each), and
			// occasional generation rolls; the follower syncs along, dying
			// partway through its chunk budget.
			syncsLeft := 3
			for step := 0; step < stepsPerRound; step++ {
				switch r := rng.Float64(); {
				case r < 0.06:
					if err := p.ForceSnapshot(); err != nil {
						t.Fatal(err)
					}
				case r < 0.30 && len(mr.order) > 0:
					// A multi-op ChangeSet: one record.
					var cs incremental.ChangeSet
					n := 2 + rng.Intn(5)
					pendingKeys := []int64{}
					for o := 0; o < n; o++ {
						switch q := rng.Float64(); {
						case q < 0.5 || len(mr.order)+len(pendingKeys) == 0:
							tp := randomTuple()
							cs.Insert(tp)
							mr.m[nextKey] = tp.Clone()
							pendingKeys = append(pendingKeys, nextKey)
							nextKey++
						default:
							key := mr.order[rng.Intn(len(mr.order))]
							dup := false
							// Keep batch targets distinct from earlier
							// deletes in the same batch for mirror
							// simplicity.
							for _, op := range cs.Ops {
								if op.Kind != incremental.OpInsert && op.Key == key {
									dup = true
								}
							}
							if dup {
								continue
							}
							if q < 0.75 {
								ai := rng.Intn(cfg.schema.Len())
								val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
								cs.Update(key, cfg.schema.Attrs[ai].Name, val)
								mr.m[key][ai] = val
							} else {
								cs.Delete(key)
								mr.delete(key)
							}
						}
					}
					mr.order = append(mr.order, pendingKeys...)
					if cs.Len() == 0 {
						continue
					}
					if _, err := p.Apply(&cs); err != nil {
						t.Fatal(err)
					}
				case r < 0.60 || len(mr.order) == 0:
					tp := randomTuple()
					key, _, err := p.Insert(tp)
					if err != nil {
						t.Fatal(err)
					}
					mr.m[key] = tp.Clone()
					mr.order = append(mr.order, key)
					nextKey = key + 1
				case r < 0.80:
					key := mr.order[rng.Intn(len(mr.order))]
					ai := rng.Intn(cfg.schema.Len())
					val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
					if _, err := p.Update(key, cfg.schema.Attrs[ai].Name, val); err != nil {
						t.Fatal(err)
					}
					mr.m[key][ai] = val
				default:
					key := mr.order[rng.Intn(len(mr.order))]
					if _, err := p.Delete(key); err != nil {
						t.Fatal(err)
					}
					mr.delete(key)
				}
				bounds = append(bounds, mark())
				if syncsLeft > 0 && rng.Float64() < 0.1 {
					syncsLeft--
					_, _ = f.Sync(ctx) // may die mid-stream: that's the point
				}
			}
			_, _ = f.Sync(ctx) // drain whatever budget remains

			// Kill the primary, promote the follower.
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if err := f.Promote(); err != nil {
				t.Fatal(err)
			}
			fm := f.Monitor()
			st := f.Status()

			// (1) The promoted cursor is an exact record boundary.
			var at *boundary
			for i := range bounds {
				if bounds[i].seq == st.Seq && bounds[i].size == st.Offset {
					at = &bounds[i]
				}
			}
			if at == nil {
				t.Fatalf("promoted cursor (%d,%d) is not a record boundary (budget %d)", st.Seq, st.Offset, budget)
			}

			// (2) The promoted state is exactly that boundary's prefix,
			// and internally consistent against the batch detector.
			if fm.Len() != at.rel.Len() {
				t.Fatalf("promoted node has %d tuples, boundary has %d", fm.Len(), at.rel.Len())
			}
			want := oracleState(t, at.rel, cfg.sigma, at.keys)
			if got := fm.Violations(); !got.Equal(want) {
				t.Fatalf("promoted violations diverge from oracle prefix:\ngot:\n%s\nwant:\n%s", describe(got), describe(want))
			}
			self := oracleState(t, fm.Snapshot(), cfg.sigma, fm.Keys())
			if got := fm.Violations(); !got.Equal(self) {
				t.Fatalf("promoted live set diverges from batch detector:\ngot:\n%s\nwant:\n%s", describe(got), describe(self))
			}

			// (3) The promoted node serves writes; the oracle keeps
			// agreeing over the continued stream.
			pmr := &mirror{m: make(map[int64]relation.Tuple)}
			for i, k := range at.keys {
				pmr.m[k] = at.rel.Tuples[i].Clone()
				pmr.order = append(pmr.order, k)
			}
			for i := 0; i < 15; i++ {
				if len(pmr.order) == 0 || rng.Float64() < 0.5 {
					tp := randomTuple()
					key, _, err := fm.Insert(tp)
					if err != nil {
						t.Fatalf("promoted write %d: %v", i, err)
					}
					pmr.m[key] = tp.Clone()
					pmr.order = append(pmr.order, key)
				} else {
					key := pmr.order[rng.Intn(len(pmr.order))]
					ai := rng.Intn(cfg.schema.Len())
					val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
					if _, err := fm.Update(key, cfg.schema.Attrs[ai].Name, val); err != nil {
						t.Fatalf("promoted update %d: %v", i, err)
					}
					pmr.m[key][ai] = val
				}
			}
			prel, pkeys := pmr.relation(cfg.schema)
			pwant := oracleState(t, prel, cfg.sigma, pkeys)
			if got := fm.Violations(); !got.Equal(pwant) {
				t.Fatalf("post-promotion stream diverges from oracle:\ngot:\n%s\nwant:\n%s", describe(got), describe(pwant))
			}
			if err := fm.Close(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		})
	}
}
