package incremental

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the fencing layer: a monotonic epoch (a term number) that
// names which primary's history a node is writing. Every promotion bumps
// the epoch and journals it durably BEFORE the read-only gate lifts, so
// the new primary's segment carries proof of its term; followers refuse
// chunks from a source whose epoch is below their own, so a deposed
// primary's divergent tail can never propagate through replication; and
// routed writers (cfdrouter) carry the epoch they believe current, so a
// write addressed to a deposed primary is refused instead of forking
// history.
//
// The guarantee is layered. Replication-side fencing is absolute: the
// epoch travels inside the WAL (an opEpoch record) and in every ship
// chunk, so a follower at epoch e simply never applies bytes from an
// e'<e history. Node-side fencing (Fence, ApplyAt) is cooperative: a
// partitioned primary that nobody reaches cannot learn it was deposed,
// and will keep accepting direct Apply calls until the first fenced
// exchange tells it otherwise — at which point Fenced() latches and
// every further mutation is refused. A router that stamps each write
// with its epoch (ApplyAt) closes that window for routed traffic: the
// deposed primary learns the higher epoch from the very write that
// would have forked it.

// ErrFenced reports a mutation refused because a higher-epoch primary
// exists: this node was deposed by a promotion it has since learned of.
var ErrFenced = errors.New("incremental: monitor is fenced (a higher-epoch primary exists)")

// Epoch returns the fencing epoch this monitor's history is written
// under. 0 is the implicit epoch of a never-promoted primary.
func (m *Monitor) Epoch() uint64 { return m.epoch.Load() }

// Fenced reports whether the monitor has learned of a higher epoch than
// its own — i.e. that it was deposed. A fenced monitor refuses every
// mutation with ErrFenced; it un-fences only by being promoted to an
// epoch at or above the one it was fenced at.
func (m *Monitor) Fenced() bool { return m.fencedAt.Load() > m.epoch.Load() }

// Fence tells the monitor that a primary at the given epoch exists. If
// that epoch exceeds the monitor's own, further mutations are refused
// with ErrFenced. Fencing is monotonic (the highest epoch ever seen
// wins) and idempotent; fencing at or below the monitor's own epoch is
// a no-op.
func (m *Monitor) Fence(epoch uint64) {
	for {
		cur := m.fencedAt.Load()
		if epoch <= cur || m.fencedAt.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// ApplyAt applies a ChangeSet stamped with the epoch the caller believes
// current — the routed-write form of Apply. A caller whose epoch is
// behind the monitor's is stale (it missed a promotion) and is refused.
// A caller whose epoch is AHEAD proves this monitor was deposed: the
// monitor fences itself off the stamp and refuses — the write that
// would have forked history is what delivers the fencing. Epochs equal,
// the write proceeds as a plain Apply. (A promotion racing the equality
// check can still let one same-epoch write through; that write lands in
// the pre-promotion prefix both histories share, so it is ordered, not
// forked.)
func (m *Monitor) ApplyAt(cs *ChangeSet, epoch uint64) (*Delta, error) {
	cur := m.epoch.Load()
	if epoch != cur {
		if epoch > cur {
			m.Fence(epoch)
		}
		if m.met != nil {
			m.met.fencedRejected.Inc()
			m.met.rejected.Inc()
		}
		return nil, fmt.Errorf("incremental: write stamped epoch %d, monitor at epoch %d: %w", epoch, cur, ErrFenced)
	}
	return m.Apply(cs)
}

// encodeEpoch encodes an epoch-marker WAL record: the promotion's term
// number, journaled before the promoted monitor accepts its first write
// so the segment itself names the history it extends.
func encodeEpoch(epoch uint64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, opEpoch)
	return binary.AppendUvarint(buf, epoch)
}
