package incremental_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/incremental"
	"repro/internal/relation"
)

// TestPromotionBumpsEpochDurably: promoting a follower journals a fresh
// epoch before the gate lifts, the epoch survives restart (log replay)
// and snapshot rolls, and chains across successive promotions.
func TestPromotionBumpsEpochDurably(t *testing.T) {
	p, f, _, fdir := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	defer p.Close()
	ctx := context.Background()

	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := f.Monitor().Epoch(); got != 0 {
		t.Fatalf("follower epoch before promotion = %d, want 0", got)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	m1 := f.Monitor()
	if got := m1.Epoch(); got != 1 {
		t.Fatalf("promoted epoch = %d, want 1", got)
	}
	if p.Epoch() != 0 {
		t.Fatalf("old primary epoch = %d, want 0", p.Epoch())
	}
	// The promoted node accepts writes, and a second Promote is a no-op.
	if _, err := m1.Update(0, "CT", "XX"); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := m1.Epoch(); got != 1 {
		t.Fatalf("epoch after repeated Promote = %d, want 1", got)
	}

	// Restart from the directory alone: the epoch record replays.
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Open(m1.Sigma(), incremental.Options{Shards: 4, Durable: fdir})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Epoch(); got != 1 {
		t.Fatalf("recovered epoch = %d, want 1", got)
	}
	// A snapshot roll carries the epoch into the image; restart again.
	if err := m2.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := incremental.Open(m1.Sigma(), incremental.Options{Shards: 4, Durable: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if got := m3.Epoch(); got != 1 {
		t.Fatalf("epoch recovered from snapshot = %d, want 1", got)
	}

	// A follower of the promoted node inherits the epoch and a further
	// promotion moves past it.
	f2, err := incremental.NewFollower(ctx, m1.Sigma(),
		incremental.Options{Shards: 4, Durable: t.TempDir()},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(m3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := f2.Monitor().Epoch(); got != 1 {
		t.Fatalf("second-generation follower epoch = %d, want 1", got)
	}
	if err := f2.Promote(); err != nil {
		t.Fatal(err)
	}
	defer f2.Monitor().Close()
	if got := f2.Monitor().Epoch(); got != 2 {
		t.Fatalf("second promotion epoch = %d, want 2", got)
	}
}

// TestFencedAppendsRefused: a deposed primary that learns of the higher
// epoch — from a routed write's stamp — latches Fenced and refuses every
// further mutation, while stamped writes at the current epoch pass.
func TestFencedAppendsRefused(t *testing.T) {
	rel, sigma := custFixture(t)
	p, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4, Durable: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Stamped at the node's own epoch: a plain apply.
	var cs incremental.ChangeSet
	cs.Update(0, "CT", "MH")
	if _, err := p.ApplyAt(&cs, 0); err != nil {
		t.Fatal(err)
	}
	// A stale stamp (below the node's epoch) is the caller's problem,
	// not the node's: refused, but the node stays writable.
	var cs2 incremental.ChangeSet
	cs2.Update(0, "CT", "NYC")
	// Fence at the node's own epoch first — a no-op.
	p.Fence(0)
	if p.Fenced() {
		t.Fatal("Fence at own epoch must not fence the node")
	}
	// A higher stamp proves a promotion happened elsewhere: the node
	// fences itself off the very write that would have forked it.
	if _, err := p.ApplyAt(&cs2, 1); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("ApplyAt(epoch 1) error = %v, want ErrFenced", err)
	}
	if !p.Fenced() {
		t.Fatal("node did not latch Fenced after a higher-epoch stamp")
	}
	if _, err := p.Apply(&cs2); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("Apply on fenced node error = %v, want ErrFenced", err)
	}
	if _, _, err := p.Insert(relation.Tuple{"01", "908", "1111111", "X", "Y", "Z", "0"}); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("Insert on fenced node error = %v, want ErrFenced", err)
	}
	// Stale stamps now refuse too, without disturbing the latch.
	if _, err := p.ApplyAt(&cs2, 0); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("ApplyAt(stale epoch) error = %v, want ErrFenced", err)
	}
}

// TestFollowerRefusesDeposedSource: after a failover, both the new
// primary and the partitioned old one can serve byte-valid chunks for
// the same generation numbers — only the epoch tells the histories
// apart. A follower that served the new history must refuse the old
// one's stream with ErrFenced (permanently: Run returns, never retries
// or auto-promotes).
func TestFollowerRefusesDeposedSource(t *testing.T) {
	p, fA, _, _ := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	defer p.Close()
	ctx := context.Background()

	// Failover: fA becomes the epoch-1 primary and rolls a snapshot, so
	// its image carries the epoch.
	if _, err := fA.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fA.Promote(); err != nil {
		t.Fatal(err)
	}
	mA := fA.Monitor()
	defer mA.Close()
	if _, err := mA.Update(1, "CT", "XX"); err != nil {
		t.Fatal(err)
	}
	if err := mA.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}

	// The partitioned old primary never learned: it keeps writing its
	// own fork and rolls to the same generation number.
	if _, err := p.Update(1, "CT", "YY"); err != nil {
		t.Fatal(err)
	}
	if err := p.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}

	// A standby seeded from the new primary holds epoch 1.
	fbDir := t.TempDir()
	fB, err := incremental.NewFollower(ctx, mA.Sigma(),
		incremental.Options{Shards: 4, Durable: fbDir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(mA)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fB.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fB.Monitor().Epoch(); got != 1 {
		t.Fatalf("standby epoch = %d, want 1", got)
	}
	if err := fB.Close(); err != nil {
		t.Fatal(err)
	}

	// Mis-pointed at the deposed primary (a flapping load balancer, a
	// stale config): generations line up, the chunk fetch succeeds — and
	// the epoch check refuses it before one forked byte applies.
	fB2, err := incremental.NewFollower(ctx, mA.Sigma(),
		incremental.Options{Shards: 4, Durable: fbDir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer fB2.Close()
	before := fB2.Monitor().Len()
	if _, err := fB2.Sync(ctx); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("Sync against deposed primary error = %v, want ErrFenced", err)
	}
	if err := fB2.Run(ctx); !errors.Is(err, incremental.ErrFenced) {
		t.Fatalf("Run against deposed primary error = %v, want ErrFenced", err)
	}
	if got := fB2.Monitor().Len(); got != before {
		t.Fatalf("fenced follower applied records: %d tuples, had %d", got, before)
	}
	if st := fB2.Status(); st.LastError == "" {
		t.Fatal("fenced follower reports no LastError")
	}
}

// TestInsertKeyed: caller-chosen keys apply, collide loudly, advance the
// allocator, and survive journal replay.
func TestInsertKeyed(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4, Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	tup := relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}

	var cs incremental.ChangeSet
	cs.InsertKeyed(100, tup)
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(100); !ok {
		t.Fatal("keyed insert did not land at key 100")
	}
	if got := m.NextKey(); got != 101 {
		t.Fatalf("NextKey after keyed insert = %d, want 101", got)
	}
	// The allocator now hands out keys past the keyed one.
	k, _, err := m.Insert(tup)
	if err != nil {
		t.Fatal(err)
	}
	if k != 101 {
		t.Fatalf("allocator key after keyed insert = %d, want 101", k)
	}

	// A colliding keyed insert rejects the batch — silent overwrite
	// would corrupt the size and index bookkeeping.
	var dup incremental.ChangeSet
	dup.InsertKeyed(100, tup)
	if _, err := m.Apply(&dup); err == nil {
		t.Fatal("keyed insert onto a live key did not error")
	}
	if got := m.Len(); got != rel.Len()+2 {
		t.Fatalf("Len after rejected duplicate = %d, want %d", got, rel.Len()+2)
	}
	// ... but a batch that deletes the holder first is fine (vector
	// order), and a negative key never validates.
	var swap incremental.ChangeSet
	swap.Delete(100).InsertKeyed(100, tup)
	if _, err := m.Apply(&swap); err != nil {
		t.Fatalf("delete-then-reinsert at one key: %v", err)
	}
	var neg incremental.ChangeSet
	neg.InsertKeyed(-1, tup)
	if _, err := m.Apply(&neg); err == nil {
		t.Fatal("negative keyed insert did not error")
	}

	// Replay: the keyed rows and the allocator position survive restart.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Open(sigma, incremental.Options{Shards: 4, Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, ok := m2.Get(100); !ok {
		t.Fatal("keyed insert lost on replay")
	}
	if got := m2.NextKey(); got != 102 {
		t.Fatalf("NextKey after replay = %d, want 102", got)
	}
}

// TestInsertKeyedGroupCommit: the commit-window validation rejects a
// keyed collision inside the window without failing its cohabitants.
func TestInsertKeyedGroupCommit(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{
		Shards: 4, Durable: t.TempDir(),
		GroupCommit: incremental.GroupCommit{MaxOps: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tup := relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}

	var cs incremental.ChangeSet
	cs.InsertKeyed(200, tup)
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	var dup incremental.ChangeSet
	dup.InsertKeyed(200, tup)
	if _, err := m.Apply(&dup); err == nil {
		t.Fatal("keyed collision accepted through the commit window")
	}
	var ok incremental.ChangeSet
	ok.InsertKeyed(201, tup)
	if _, err := m.Apply(&ok); err != nil {
		t.Fatal(err)
	}
	if _, found := m.Get(201); !found {
		t.Fatal("keyed insert after rejected collision did not land")
	}
}
