package incremental

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// A Follower is a hot standby: a read-only Monitor that tails a
// primary's WAL stream — snapshot first when its own directory is empty,
// then segment chunks at record granularity — into its own WAL
// directory, applying each record through the same replay path recovery
// uses. At every instant the follower's state is some record-boundary
// prefix of the primary's journaled stream, its local directory is a
// valid single-node recovery image of exactly that prefix (segment
// numbers mirror the primary's, torn tails truncate on restart like any
// crash), and Promote turns it into a writable primary at the boundary
// it has applied. Queries (Violations, Stat, discovery miners) serve
// throughout; only mutations are gated.

// ErrReadOnly reports a mutation against a monitor that is following a
// primary. Promote the follower (Follower.Promote) to accept writes.
var ErrReadOnly = errors.New("incremental: monitor is read-only (following a primary)")

// ErrPrimaryResponded marks a ChunkSource error in which the primary
// was reached and answered — an HTTP error status, a refused request.
// Such errors are proof of liveness: a ChunkSource should wrap them
// (errors.Is-visible) so the follower retries without ever arming
// auto-promotion on them — promoting against a primary that is
// demonstrably alive would fork history without a partition.
var ErrPrimaryResponded = errors.New("incremental: primary responded with an error")

// ChunkSource abstracts the primary's shipping surface: the cfdserve
// HTTP endpoints in production, a direct Monitor in tests and benches.
type ChunkSource interface {
	// Snapshot streams the primary's newest snapshot image and reports
	// the generation it bases.
	Snapshot(ctx context.Context) (seq uint64, rc io.ReadCloser, err error)
	// Chunk fetches record-aligned bytes from (seq, offset); maxBytes
	// bounds the chunk. A cursor below the primary's retention window
	// returns an error wrapping ErrSegmentGone.
	Chunk(ctx context.Context, seq uint64, offset int64, maxBytes int) (ShipChunk, error)
}

// monitorSource adapts a local durable Monitor into a ChunkSource — the
// in-process form of the wire protocol, used by tests and benchmarks.
type monitorSource struct{ m *Monitor }

// NewMonitorSource exposes a durable monitor's WAL stream as a
// ChunkSource, the same surface cfdserve serves over HTTP.
func NewMonitorSource(m *Monitor) ChunkSource { return monitorSource{m} }

func (s monitorSource) Snapshot(ctx context.Context) (uint64, io.ReadCloser, error) {
	seq, rc, _, err := s.m.ShipSnapshot()
	return seq, rc, err
}

func (s monitorSource) Chunk(ctx context.Context, seq uint64, offset int64, maxBytes int) (ShipChunk, error) {
	return s.m.WALChunk(seq, offset, maxBytes)
}

// FollowOptions configures a Follower beyond the monitor Options it
// shares with a primary.
type FollowOptions struct {
	// Source is the primary's shipping surface (required).
	Source ChunkSource

	// PollInterval is the idle wait between tail polls once caught up;
	// 0 means 200ms.
	PollInterval time.Duration

	// MaxChunk bounds one chunk request in bytes; 0 means 1MiB.
	MaxChunk int

	// PromoteAfter, when positive, auto-promotes the follower once the
	// primary has been unreachable for this long — Run then returns nil
	// with the monitor writable. 0 means promotion is manual.
	PromoteAfter time.Duration

	// Resync discards the follower's local WAL state and re-seeds from
	// the primary's current snapshot. Set it when a previous Run ended
	// with ErrSegmentGone: the local cursor fell below the primary's
	// retention window, so the tail can no longer be resumed.
	Resync bool
}

// ReplicaStatus describes a follower's replication position.
type ReplicaStatus struct {
	// Following is true while the read-only gate is up; Promoted flips
	// when the monitor became writable.
	Following bool
	Promoted  bool
	// Seq and Offset are the applied cursor: every record of segment
	// Seq below Offset (and every earlier segment) is in the state.
	Seq    uint64
	Offset int64
	// AppliedRecords counts records applied since this follower started
	// (local recovery not included).
	AppliedRecords int64
	// PrimarySeq and PrimaryOffset are the primary's position as of the
	// last successful exchange; LagBytes is the byte distance when both
	// sit in the same segment (-1 when the follower is segments behind,
	// see LagSegments).
	PrimarySeq    uint64
	PrimaryOffset int64
	LagBytes      int64
	LagSegments   uint64
	// LastSync is the time of the last successful exchange with the
	// primary; LastError the most recent fetch/apply failure, cleared on
	// the next success.
	LastSync  time.Time
	LastError string
}

// Follower tails a primary's WAL stream into a local read-only Monitor.
// Methods are safe for concurrent use; Run is the long-lived tail loop,
// Sync one bounded catch-up pass.
type Follower struct {
	m    *Monitor
	src  ChunkSource
	poll time.Duration
	max  int
	auto time.Duration

	stopOnce sync.Once
	stopc    chan struct{}

	// syncMu serializes whole catch-up passes: the cursor read, chunk
	// fetch, apply and cursor advance of one pass must not interleave
	// with another's, or the same chunk could be fetched and applied
	// twice (Run's tail loop and a caller's explicit Sync are allowed to
	// coexist — this is what makes that safe).
	syncMu sync.Mutex

	// met holds the replication metric handles; nil when the monitor's
	// instrumentation is disabled.
	met *followerMetrics

	mu         sync.Mutex
	seq        uint64
	off        int64
	applied    int64
	primarySeq uint64
	primaryOff int64
	lastSync   time.Time
	lastErr    error
	promoted   bool
	closed     bool
	// srcEpoch is the highest fencing epoch any chunk from the source has
	// carried; Promote bumps past max(srcEpoch, local epoch) so the new
	// term exceeds every history this follower has heard of.
	srcEpoch uint64
}

// NewFollower boots a follower: local WAL state (opts.Durable, required)
// is recovered and resumed when present — the fast path a restarted
// standby takes, seeding from its own snapshot + log tail instead of
// re-shipping everything — otherwise the primary's current snapshot is
// fetched, written as the local base generation, and recovered from
// disk. Either way the monitor comes up read-only with its cursor at the
// exact record boundary the local directory holds; Run (or Sync) then
// tails the primary from there.
func NewFollower(ctx context.Context, sigma []*core.CFD, opts Options, fo FollowOptions) (*Follower, error) {
	if opts.Durable == "" {
		return nil, errors.New("incremental: follower requires Options.Durable (its own WAL directory)")
	}
	if fo.Source == nil {
		return nil, errors.New("incremental: follower requires FollowOptions.Source")
	}
	if fo.Resync {
		if err := wipeWALDir(opts.Durable); err != nil {
			return nil, fmt.Errorf("incremental: resync wipe: %w", err)
		}
	}
	m, err := Open(sigma, opts)
	if errors.Is(err, ErrNoState) {
		if err := fetchSnapshot(ctx, fo.Source, opts.Durable); err != nil {
			return nil, err
		}
		m, err = Open(sigma, opts)
	}
	if err != nil {
		return nil, err
	}
	m.readOnly.Store(true)
	seq, off, err := m.walCursor()
	if err != nil {
		m.Close()
		return nil, err
	}
	f := &Follower{
		m:     m,
		src:   fo.Source,
		poll:  fo.PollInterval,
		max:   fo.MaxChunk,
		auto:  fo.PromoteAfter,
		stopc: make(chan struct{}),
		seq:   seq,
		off:   off,
	}
	if m.met != nil {
		f.met = newFollowerMetrics(m.met.reg)
	}
	if f.poll <= 0 {
		f.poll = 200 * time.Millisecond
	}
	if f.max <= 0 {
		f.max = 1 << 20
	}
	return f, nil
}

// wipeWALDir removes the snapshots and segments of a follower's local
// directory so a resync re-seeds from the primary. Derived state only:
// everything here is a prefix of what the primary re-ships.
func wipeWALDir(dir string) error {
	snaps, logs, err := wal.Generations(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, s := range snaps {
		if err := os.Remove(wal.SnapshotPath(dir, s)); err != nil {
			return err
		}
	}
	for _, l := range logs {
		if err := os.Remove(wal.LogPath(dir, l)); err != nil {
			return err
		}
	}
	return nil
}

// fetchSnapshot streams the primary's snapshot into dir as the local
// base generation, durably (temp file, fsync, rename — wal.WriteSnapshot).
func fetchSnapshot(ctx context.Context, src ChunkSource, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	seq, rc, err := src.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("incremental: fetching primary snapshot: %w", err)
	}
	defer rc.Close()
	if err := wal.WriteSnapshot(dir, seq, func(w io.Writer) error {
		_, err := io.Copy(w, rc)
		return err
	}); err != nil {
		return fmt.Errorf("incremental: writing primary snapshot: %w", err)
	}
	return nil
}

// Monitor returns the follower's monitor: fully queryable, mutation-
// gated until promotion.
func (f *Follower) Monitor() *Monitor { return f.m }

// fetchFailure marks an error from the ChunkSource — the primary being
// unreachable — as opposed to a local apply failure. Only fetch
// failures may arm auto-promotion: promoting on a local failure (full
// disk, poisoned journal) would raise a writable primary on broken
// storage while the real primary is still alive.
type fetchFailure struct{ err error }

func (e *fetchFailure) Error() string { return e.err.Error() }
func (e *fetchFailure) Unwrap() error { return e.err }

// Sync runs one catch-up pass: chunks are fetched and applied until the
// cursor reaches the primary's live tail (or ctx/Promote stops it). It
// returns the number of records applied. An error wrapping
// ErrSegmentGone means the local cursor fell below the primary's
// retention window — rebuild with FollowOptions.Resync.
func (f *Follower) Sync(ctx context.Context) (int, error) {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	applied := 0
	for {
		select {
		case <-ctx.Done():
			return applied, ctx.Err()
		case <-f.stopc:
			return applied, nil
		default:
		}
		f.mu.Lock()
		seq, off := f.seq, f.off
		f.mu.Unlock()
		ch, err := f.src.Chunk(ctx, seq, off, f.max)
		if err != nil {
			if f.met != nil {
				f.met.fetchErrors.Inc()
			}
			err = &fetchFailure{err}
			f.note(err)
			return applied, err
		}
		if f.met != nil {
			f.met.chunks.Inc()
		}
		// Fencing: a source whose epoch is below ours is a deposed
		// history — this follower already serves (or replicated from) a
		// higher term, and applying the lower-term tail would fork its
		// state. Permanent for this stream: not a fetchFailure, so Run
		// returns instead of retrying or arming auto-promotion.
		if e := f.m.epoch.Load(); ch.Epoch < e {
			err := fmt.Errorf("incremental: source serves epoch %d, follower at epoch %d: %w", ch.Epoch, e, ErrFenced)
			f.note(err)
			return applied, err
		}
		f.mu.Lock()
		if ch.Epoch > f.srcEpoch {
			f.srcEpoch = ch.Epoch
		}
		f.mu.Unlock()
		if len(ch.Data) > 0 {
			var applyStart time.Time
			if f.met != nil {
				applyStart = time.Now()
			}
			n, consumed, err := f.m.replicate(ch.Data)
			if f.met != nil {
				f.met.applySeconds.ObserveSince(applyStart)
				f.met.records.Add(uint64(n))
				f.met.bytes.Add(uint64(consumed))
			}
			if n > 0 {
				f.advance(off+consumed, int64(n), ch)
				applied += n
			}
			if errors.Is(err, errNotFollowing) {
				// Promotion won the race against this chunk: not a
				// failure — the pass simply ends, and the dropped
				// records belong to a stream we no longer follow.
				return applied, nil
			}
			if err != nil {
				f.note(err)
				return applied, err
			}
			continue
		}
		if ch.Closed {
			// Segment exhausted: mirror the primary's roll, locally.
			if err := f.m.rollTo(ch.NextSeq); err != nil {
				if errors.Is(err, errNotFollowing) {
					return applied, nil
				}
				f.note(err)
				return applied, err
			}
			f.mu.Lock()
			f.seq, f.off = ch.NextSeq, 0
			f.mu.Unlock()
			continue
		}
		// Caught up with the live tail.
		f.advance(off, 0, ch)
		return applied, nil
	}
}

// advance records a successful exchange: cursor, counters, primary
// position, sync time, and the replication-lag gauges.
func (f *Follower) advance(off, applied int64, ch ShipChunk) {
	f.mu.Lock()
	f.off = off
	f.applied += applied
	f.primarySeq, f.primaryOff = ch.EndSeq, ch.EndOffset
	f.lastSync = time.Now()
	f.lastErr = nil
	if f.met != nil {
		// Mirrors the Status lag computation: byte lag is only defined
		// while follower and primary share a segment.
		lagBytes := int64(-1)
		var lagSegs uint64
		if f.primarySeq >= f.seq {
			lagSegs = f.primarySeq - f.seq
		}
		if f.primarySeq == f.seq {
			lagBytes = f.primaryOff - f.off
			if lagBytes < 0 {
				lagBytes = 0
			}
		}
		f.met.lagBytes.Set(lagBytes)
		f.met.lagSegments.Set(int64(lagSegs))
	}
	f.mu.Unlock()
}

func (f *Follower) note(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// Run tails the primary until ctx is cancelled, Close/Promote is called,
// or the stream is lost. Fetch failures — the primary unreachable —
// retry at the poll interval and, with PromoteAfter set, promote the
// follower once the primary has been continuously unreachable for that
// long (any replicated progress restarts the clock: a flapping link
// that still ships records is a live primary, not a dead one). An error
// wrapping ErrSegmentGone returns (rebuild with Resync); a local apply
// failure (full disk, poisoned journal) also returns — promoting onto
// broken storage while the primary may be alive would fork history.
func (f *Follower) Run(ctx context.Context) error {
	var downSince time.Time
	for {
		applied, err := f.Sync(ctx)
		var fetch *fetchFailure
		switch {
		case err == nil:
			downSince = time.Time{}
		case ctx.Err() != nil:
			// Our context, not a per-request deadline inside the source
			// (which must read as a fetch failure and retry).
			return nil
		case errors.Is(err, ErrSegmentGone):
			return err
		case errors.Is(err, ErrFenced):
			// The source is a deposed primary; tailing it further could
			// only replicate a forked history. The operator re-points the
			// follower at the current primary (Resync if needed).
			return err
		case errors.As(err, &fetch):
			if errors.Is(err, ErrPrimaryResponded) {
				// The primary answered: reachable and alive, whatever
				// it refused. Retry, but never arm failover on it.
				downSince = time.Time{}
				break
			}
			if applied > 0 || downSince.IsZero() {
				downSince = time.Now()
			}
			if f.auto > 0 && time.Since(downSince) >= f.auto {
				return f.Promote()
			}
		default:
			return err
		}
		if f.isStopped() {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-f.stopc:
			return nil
		case <-time.After(f.poll):
		}
	}
}

func (f *Follower) isStopped() bool {
	select {
	case <-f.stopc:
		return true
	default:
		return false
	}
}

// Promote flips the follower into a writable primary at the record
// boundary it has applied: the tail loop is stopped, any in-flight chunk
// finishes under the journal mutex, and the read-only gate lifts — from
// then on the monitor journals its own mutations into the same local
// directory, which already holds exactly the applied prefix. The new
// primary takes a fresh fencing epoch — one past the highest term it has
// heard of, from the source's chunks or its own recovered state — and
// journals it durably before the gate lifts, so the old primary's
// further appends are refusable everywhere the epoch travels. Safe to
// call more than once; a closed follower (its journal is gone — e.g. a
// retention-window resync is rebuilding it) refuses rather than
// acknowledge a promotion that could not serve a single write, and a
// promotion whose epoch record cannot be journaled (full disk, poisoned
// journal) errors without flipping the gate.
func (f *Follower) Promote() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return errors.New("incremental: follower is closed (resync in progress?)")
	}
	if f.promoted {
		return nil
	}
	f.stopOnce.Do(func() { close(f.stopc) })
	target := f.srcEpoch
	if e := f.m.epoch.Load(); e > target {
		target = e
	}
	// f.mu is held across the journaled bump: Sync's apply path takes
	// j.mu without f.mu (and releases it before advance takes f.mu), so
	// the order f.mu → j.mu is acyclic — and holding it means a failed
	// bump leaves the follower un-promoted, never half-promoted.
	if err := f.m.promoteTo(target + 1); err != nil {
		return err
	}
	f.promoted = true
	return nil
}

// Close stops the tail loop and closes the monitor's journal. A closed
// follower cannot be promoted; a promoted follower's monitor is owned by
// the caller and Close only stops the (already stopped) loop.
func (f *Follower) Close() error {
	f.stopOnce.Do(func() { close(f.stopc) })
	f.mu.Lock()
	promoted := f.promoted
	f.closed = true
	f.mu.Unlock()
	if promoted {
		return nil
	}
	return f.m.Close()
}

// Status reports the replication position.
func (f *Follower) Status() ReplicaStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := ReplicaStatus{
		Following:      !f.promoted,
		Promoted:       f.promoted,
		Seq:            f.seq,
		Offset:         f.off,
		AppliedRecords: f.applied,
		PrimarySeq:     f.primarySeq,
		PrimaryOffset:  f.primaryOff,
		LastSync:       f.lastSync,
		LagBytes:       -1,
	}
	if f.primarySeq >= f.seq {
		st.LagSegments = f.primarySeq - f.seq
	}
	if f.primarySeq == f.seq {
		st.LagBytes = f.primaryOff - f.off
		if st.LagBytes < 0 {
			st.LagBytes = 0
		}
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}
