package incremental_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/incremental"
	"repro/internal/relation"
	"repro/internal/wal"
)

// followerFixture builds a durable primary seeded with the Figure 1
// instance and a follower synced to it over the in-process ChunkSource.
func followerFixture(t *testing.T, popts incremental.Options) (p *incremental.Monitor, f *incremental.Follower, pdir, fdir string) {
	t.Helper()
	rel, sigma := custFixture(t)
	pdir, fdir = t.TempDir(), t.TempDir()
	popts.Durable = pdir
	p, err := incremental.Load(rel, sigma, popts)
	if err != nil {
		t.Fatal(err)
	}
	f, err = incremental.NewFollower(context.Background(), sigma,
		incremental.Options{Shards: 4, Durable: fdir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	return p, f, pdir, fdir
}

// sameState fails unless the follower's monitor mirrors the primary's
// live state exactly: tuples, violation set, and batch-detector
// consistency of its own snapshot.
func sameState(t *testing.T, p, f *incremental.Monitor) {
	t.Helper()
	if f.Len() != p.Len() {
		t.Fatalf("follower has %d tuples, primary %d", f.Len(), p.Len())
	}
	for _, k := range p.Keys() {
		pt, _ := p.Get(k)
		ft, ok := f.Get(k)
		if !ok || !ft.Equal(pt) {
			t.Fatalf("tuple %d: follower %v, primary %v", k, ft, pt)
		}
	}
	if got, want := f.Violations(), p.Violations(); !got.Equal(want) {
		t.Fatalf("follower violations diverge:\ngot:\n%s\nwant:\n%s", describe(got), describe(want))
	}
	oracle := oracleState(t, f.Snapshot(), f.Sigma(), f.Keys())
	if got := f.Violations(); !got.Equal(oracle) {
		t.Fatalf("follower live set diverges from batch detector:\ngot:\n%s\nwant:\n%s", describe(got), describe(oracle))
	}
}

func TestFollowerTailsPrimary(t *testing.T) {
	p, f, _, fdir := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	defer p.Close()
	defer f.Close()
	ctx := context.Background()

	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	fm := f.Monitor()
	if !fm.ReadOnly() {
		t.Fatal("follower monitor is not read-only")
	}
	sameState(t, p, fm)

	// Writes land on the primary, ship on Sync.
	if _, _, err := p.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}); err != nil {
		t.Fatal(err)
	}
	var cs incremental.ChangeSet
	cs.Update(0, "CT", "MH").Update(1, "CT", "MH").Delete(3)
	if _, err := p.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	sameState(t, p, fm)
	st := f.Status()
	if !st.Following || st.Promoted {
		t.Fatalf("status = %+v, want following", st)
	}
	if st.LagBytes != 0 || st.LagSegments != 0 {
		t.Fatalf("caught-up follower reports lag: %+v", st)
	}

	// The primary rolls a generation; the follower mirrors it: same
	// segment number locally, state carried across the boundary.
	if err := p.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Update(2, "CT", "LA"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	sameState(t, p, fm)
	pgen := p.JournalStats().Generation
	if got := fm.JournalStats().Generation; got != pgen {
		t.Fatalf("follower generation %d, primary %d", got, pgen)
	}
	snaps, logs, err := wal.Generations(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 || snaps[len(snaps)-1] != pgen || len(logs) == 0 || logs[len(logs)-1] != pgen {
		t.Fatalf("follower dir generations snaps=%v logs=%v, want tail %d", snaps, logs, pgen)
	}

	// Mutations and snapshot rolls are refused while following.
	if _, _, err := fm.Insert(relation.Tuple{"01", "908", "1111111", "X", "Y", "Z", "0"}); !errors.Is(err, incremental.ErrReadOnly) {
		t.Fatalf("follower insert error = %v, want ErrReadOnly", err)
	}
	if _, err := fm.Update(0, "CT", "XX"); !errors.Is(err, incremental.ErrReadOnly) {
		t.Fatalf("follower update error = %v, want ErrReadOnly", err)
	}
	if err := fm.ForceSnapshot(); !errors.Is(err, incremental.ErrReadOnly) {
		t.Fatalf("follower ForceSnapshot error = %v, want ErrReadOnly", err)
	}
}

// TestFollowerRestartResumes: a restarted follower recovers from its own
// snapshot + log tail and resumes the stream at its local cursor — the
// catch-up path E12 measures against a CSV re-seed.
func TestFollowerRestartResumes(t *testing.T) {
	p, f, _, fdir := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	defer p.Close()
	ctx := context.Background()
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the follower is down.
	for i := 0; i < 10; i++ {
		if _, err := p.Update(int64(i%3), "CT", fmt.Sprintf("C%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := incremental.NewFollower(ctx, p.Sigma(),
		incremental.Options{Shards: 4, Durable: fdir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if !f2.Monitor().Recovered() {
		t.Fatal("restarted follower did not recover local state")
	}
	applied, err := f2.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Only the tail ships: local recovery covered everything before it.
	if applied != 10 {
		t.Fatalf("restart applied %d records, want the 10-record tail", applied)
	}
	sameState(t, p, f2.Monitor())
}

// TestFollowerResync: a cursor below the primary's retention window is
// unrecoverable from the tail — Sync reports ErrSegmentGone and a
// Resync rebuild re-seeds from the current snapshot.
func TestFollowerResync(t *testing.T) {
	p, f, _, fdir := followerFixture(t, incremental.Options{Shards: 4}) // retain nothing
	defer p.Close()
	ctx := context.Background()
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Two rolls with zero retention: the follower's segment is gone.
	for i := 0; i < 2; i++ {
		if _, err := p.Update(int64(i), "CT", fmt.Sprintf("R%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := p.ForceSnapshot(); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := incremental.NewFollower(ctx, p.Sigma(),
		incremental.Options{Shards: 4, Durable: fdir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Sync(ctx); !errors.Is(err, incremental.ErrSegmentGone) {
		t.Fatalf("stale cursor Sync error = %v, want ErrSegmentGone", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	f3, err := incremental.NewFollower(ctx, p.Sigma(),
		incremental.Options{Shards: 4, Durable: fdir},
		incremental.FollowOptions{Source: incremental.NewMonitorSource(p), Resync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if _, err := f3.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	sameState(t, p, f3.Monitor())
}

// TestFollowerPromote: promotion flips the monitor writable at the
// applied boundary; the promoted node journals its own writes and a
// restart of its directory recovers them.
func TestFollowerPromote(t *testing.T) {
	p, f, _, fdir := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	ctx := context.Background()
	if _, err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	// Primary dies.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	fm := f.Monitor()
	if fm.ReadOnly() {
		t.Fatal("promoted monitor still read-only")
	}
	st := f.Status()
	if st.Following || !st.Promoted {
		t.Fatalf("status after promote: %+v", st)
	}

	key, _, err := fm.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	if err := fm.ForceSnapshot(); err != nil {
		t.Fatalf("promoted node refused a snapshot: %v", err)
	}
	wantLen := fm.Len()
	wantState := fm.Violations()
	if err := fm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The promoted directory is a normal primary directory now.
	reborn, err := incremental.New(fm.Schema(), fm.Sigma(), incremental.Options{Shards: 4, Durable: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer reborn.Close()
	if !reborn.Recovered() || reborn.Len() != wantLen {
		t.Fatalf("reborn: recovered=%v len=%d want %d", reborn.Recovered(), reborn.Len(), wantLen)
	}
	if got := reborn.Violations(); !got.Equal(wantState) {
		t.Fatalf("reborn violations diverge:\ngot:\n%s\nwant:\n%s", describe(got), describe(wantState))
	}
	if _, ok := reborn.Get(key); !ok {
		t.Fatalf("post-promotion insert %d lost across restart", key)
	}
}

// TestFollowerClosedRefusesPromote: a closed follower (its journal is
// gone — what a retention-window resync looks like from outside) must
// refuse promotion rather than acknowledge a flip that cannot serve a
// single write.
func TestFollowerClosedRefusesPromote(t *testing.T) {
	p, f, _, _ := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 4})
	defer p.Close()
	if _, err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err == nil {
		t.Fatal("closed follower accepted a promotion")
	}
	if st := f.Status(); st.Promoted {
		t.Fatalf("closed follower reports promoted: %+v", st)
	}
}

// TestFollowerAutoPromote: with PromoteAfter set, a dead primary turns
// the follower writable from Run itself.
func TestFollowerAutoPromote(t *testing.T) {
	ctx := context.Background()
	rel, sigma := custFixture(t)
	p, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4, Durable: t.TempDir(), RetainSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := incremental.NewFollower(ctx, sigma,
		incremental.Options{Shards: 4, Durable: t.TempDir()},
		incremental.FollowOptions{
			Source:       incremental.NewMonitorSource(p),
			PollInterval: 5 * time.Millisecond,
			PromoteAfter: 20 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // chunk fetches now fail
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v, want nil after auto-promotion", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not auto-promote")
	}
	if g.Monitor().ReadOnly() {
		t.Fatal("auto-promoted monitor still read-only")
	}
	if _, _, err := g.Monitor().Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}); err != nil {
		t.Fatalf("auto-promoted node refused a write: %v", err)
	}
	g.Monitor().Close()
	g.Close()
}

// respondingSource always errors, but wraps ErrPrimaryResponded — a
// live primary refusing the request (an HTTP 500, a bad cursor).
type respondingSource struct{ inner incremental.ChunkSource }

func (s respondingSource) Snapshot(ctx context.Context) (uint64, io.ReadCloser, error) {
	return s.inner.Snapshot(ctx)
}

func (s respondingSource) Chunk(ctx context.Context, seq uint64, offset int64, maxBytes int) (incremental.ShipChunk, error) {
	return incremental.ShipChunk{}, fmt.Errorf("primary: boom (500): %w", incremental.ErrPrimaryResponded)
}

// TestFollowerNoAutoPromoteOnLivePrimary: errors that prove the primary
// is alive (it responded) must never arm auto-promotion — promoting
// against a live primary forks history without a partition.
func TestFollowerNoAutoPromoteOnLivePrimary(t *testing.T) {
	ctx := context.Background()
	rel, sigma := custFixture(t)
	p, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4, Durable: t.TempDir(), RetainSegments: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g, err := incremental.NewFollower(ctx, sigma,
		incremental.Options{Shards: 4, Durable: t.TempDir()},
		incremental.FollowOptions{
			Source:       respondingSource{inner: incremental.NewMonitorSource(p)},
			PollInterval: time.Millisecond,
			PromoteAfter: 5 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	rctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	if err := g.Run(rctx); err != nil {
		t.Fatalf("Run = %v", err)
	}
	if st := g.Status(); st.Promoted || !g.Monitor().ReadOnly() {
		t.Fatalf("follower promoted against a responding primary: %+v", st)
	}
}

// TestFollowerConcurrentStream races a writing primary, a follower Run
// loop and follower-side readers; after the writers quiesce the follower
// must converge to the primary's exact state.
func TestFollowerConcurrentStream(t *testing.T) {
	p, f, _, _ := followerFixture(t, incremental.Options{Shards: 4, RetainSegments: 8, SnapshotEvery: 50})
	defer p.Close()
	defer f.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	runDone := make(chan error, 1)
	go func() { runDone <- f.Run(ctx) }()

	// Concurrent readers on the follower while it applies chunks.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
				f.Monitor().Violations()
				f.Monitor().Len()
				f.Status()
			}
		}
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := p.Update(int64((w*2+i)%6), "CT", fmt.Sprintf("W%d-%d", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Let the writers finish, then quiesce.
	wgWait := make(chan struct{})
	go func() { wg.Wait(); close(wgWait) }()
	select {
	case <-wgWait:
	case <-time.After(30 * time.Second):
		t.Fatal("writers wedged")
	}
	close(stopRead)
	readWG.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := f.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		st := f.Status()
		if st.LagBytes == 0 && st.LagSegments == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	sameState(t, p, f.Monitor())
}

// TestFollowerEnvGuard keeps the soak knob honest: CFD_SOAK must parse.
func TestFollowerEnvGuard(t *testing.T) {
	if v := os.Getenv("CFD_SOAK"); v != "" && soakFactor() < 1 {
		t.Fatalf("CFD_SOAK=%q parsed to %d", v, soakFactor())
	}
}
