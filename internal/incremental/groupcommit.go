package incremental

import (
	"fmt"
	"sync"
	"time"
)

// This file is the group-commit window: the write-path answer to
// unbatched traffic. A journaled ChangeSet pays one WAL append — and,
// with Options.Fsync, one disk sync — so a 1000-op batch amortizes the
// sync a thousand ways while a single-op writer pays it whole (the ~27×
// gap E10 measures). Group commit closes that gap without asking callers
// to batch: concurrent writers are coalesced into shared commit windows,
// journaled as ONE combined WAL record with ONE fsync.
//
// The protocol is a writer queue (the LevelDB/RocksDB shape). Every
// arriving request enqueues; the queue front is the window leader,
// everyone behind it blocks. The leader (optionally after a bounded
// grace period, GroupCommit.MaxDelay) acquires journal.mu — which may
// mean waiting out the previous window's fsync — and only then removes
// its window from the queue: everything that arrived while the journal
// was busy rides this window. Requests keep enqueueing during the
// commit itself, and the leader hands off by waking the whole queue at
// the end, so the next leader finds those arrivals already waiting.
// That makes the window self-tuning with MaxDelay = 0: its size tracks
// how many writers showed up during one sync, which is exactly the
// coalescing a mechanical group commit wants.
//
// Windows keep per-writer semantics. Each request is validated
// separately against the live store plus the effects of the requests
// accepted before it in the window — one writer's invalid op rejects
// that writer, never the window. Only accepted requests are concatenated
// into the WAL record (in window order, so log order still equals apply
// order), and each accepted request is applied as its own unit so every
// writer gets its own violation delta. Followers of the window return
// after the leader's append+fsync: they share its durability.

// GroupCommit configures the commit window (Options.GroupCommit). The
// zero value disables group commit. Setting either field enables it:
//
//   - MaxOps alone (say 512) gives the pure self-tuning window — the
//     leader commits as soon as the journal is free, closing the window
//     early only if MaxOps ops pile up first.
//   - MaxDelay adds a deliberate grace period before the leader goes to
//     the journal, trading per-op latency for larger windows on slow
//     devices where the fsync alone doesn't gather enough company.
type GroupCommit struct {
	// MaxDelay is how long a window leader waits for more writers before
	// committing. 0 means no deliberate wait (the time the journal is
	// busy with the previous window still coalesces arrivals).
	MaxDelay time.Duration
	// MaxOps closes the window early once this many ops are queued
	// behind it. 0 means no op bound.
	MaxOps int
}

// enabled reports whether the options ask for group commit at all.
func (g GroupCommit) enabled() bool { return g.MaxDelay > 0 || g.MaxOps > 0 }

// gcReq is one writer's pending request in the writer queue.
type gcReq struct {
	ops []Op
	d   *Delta
	err error
	// finished is set (under committer.mu) by the leader once the
	// request's outcome (d, err) is final.
	finished bool
}

// committer is the writer-queue state attached to a Monitor (Monitor.gc).
type committer struct {
	opts GroupCommit

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on every window handoff
	queue []*gcReq
	qops  int // total ops queued
	// full wakes a delaying leader early when MaxOps is reached;
	// buffered so a follower's nudge never blocks.
	full chan struct{}
}

func newCommitter(opts GroupCommit) *committer {
	c := &committer{opts: opts, full: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// apply routes one resolved ChangeSet through the commit window. Called
// from Monitor.Apply on the journaled path when group commit is enabled.
func (c *committer) apply(m *Monitor, ops []Op) (*Delta, error) {
	req := &gcReq{ops: ops}
	met := m.met
	c.mu.Lock()
	c.queue = append(c.queue, req)
	c.qops += len(ops)
	if c.queue[0] != req {
		// Behind another writer: nudge a delaying leader if the op bound
		// is hit, then wait for a window to carry this request.
		if c.opts.MaxDelay > 0 && c.opts.MaxOps > 0 && c.qops >= c.opts.MaxOps {
			select {
			case c.full <- struct{}{}:
			default:
			}
		}
		var wait time.Time
		if met != nil {
			wait = time.Now()
		}
		// The empty-queue guard matters: the next window's leader can
		// take the queue (it only needs journal.mu) before this window's
		// delayed handoff broadcast lands, so a woken waiter may find
		// itself already removed but not yet finished.
		for !req.finished && (len(c.queue) == 0 || c.queue[0] != req) {
			c.cond.Wait()
		}
		if req.finished {
			c.mu.Unlock()
			if met != nil {
				met.gcWaitSeconds.ObserveSince(wait)
			}
			return req.d, req.err
		}
		// The previous window closed (MaxOps) without this request, which
		// is now the queue front: promoted to leader of the next window.
	}
	c.mu.Unlock()
	if d := c.opts.MaxDelay; d > 0 && (c.opts.MaxOps <= 0 || len(ops) < c.opts.MaxOps) {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-c.full:
			t.Stop()
		}
	}
	// Acquiring journal.mu may mean waiting out the previous window's
	// fsync; writers keep enqueueing meanwhile, and the window is taken
	// from the queue only once the journal is ours — the self-tuning
	// coalescing.
	m.j.mu.Lock()
	c.mu.Lock()
	batch := c.take()
	c.mu.Unlock()
	// Clear a stale early-close nudge so it cannot instantly close the
	// next window. (A nudge sent between the takeover above and this
	// drain survives and shortens the next window — benign.)
	select {
	case <-c.full:
	default:
	}
	m.j.commitWindowLocked(m, batch)
	m.j.mu.Unlock()
	// Handoff: finalize the window and wake the whole queue — the
	// window's followers return, and the new queue front (requests that
	// arrived during the commit) leads the next window.
	c.mu.Lock()
	for _, r := range batch {
		r.finished = true
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	return req.d, req.err
}

// take removes the next window from the queue front: always the leading
// request, then as many more as the op bound allows. Caller holds c.mu.
func (c *committer) take() []*gcReq {
	n, ops := 1, len(c.queue[0].ops)
	for n < len(c.queue) {
		if c.opts.MaxOps > 0 && ops+len(c.queue[n].ops) > c.opts.MaxOps {
			break
		}
		ops += len(c.queue[n].ops)
		n++
	}
	batch := c.queue[:n:n]
	if n == len(c.queue) {
		c.queue = nil
	} else {
		c.queue = c.queue[n:]
	}
	c.qops -= ops
	return batch
}

// commitWindowLocked validates, journals and applies one commit window.
// The caller holds j.mu; outcomes land in each request's (d, err).
func (j *journal) commitWindowLocked(m *Monitor, reqs []*gcReq) {
	if err := j.usable(); err != nil {
		for _, r := range reqs {
			r.err = err
		}
		return
	}
	met := m.met
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	// Per-request validation against the live store plus the effects of
	// the requests accepted before it: requests are independent writers,
	// so one writer's bad op rejects that writer, not the window.
	overlay := make(map[int64]bool)
	accepted := make([]*gcReq, 0, len(reqs))
	total := 0
	for _, r := range reqs {
		if err := m.validateWindowReq(r.ops, overlay); err != nil {
			r.err = err
			continue
		}
		accepted = append(accepted, r)
		total += len(r.ops)
	}
	if met != nil {
		t1 := time.Now()
		met.validateSeconds.ObserveDuration(t1.Sub(t0))
		t0 = t1
	}
	if len(accepted) == 0 {
		return
	}
	// One combined record, one fsync, shared by every accepted writer —
	// in window order, so log order equals apply order.
	var allOps []Op
	if len(accepted) == 1 {
		allOps = accepted[0].ops
	} else {
		allOps = make([]Op, 0, total)
		for _, r := range accepted {
			allOps = append(allOps, r.ops...)
		}
	}
	if err := j.log.Append(encodeOps(allOps)); err != nil {
		j.appendErr = err
		for _, r := range accepted {
			r.err = err
		}
		return
	}
	if met != nil {
		t1 := time.Now()
		met.walAppendSeconds.ObserveDuration(t1.Sub(t0))
		t0 = t1
		met.gcWindowOps.Observe(uint64(total))
		met.gcWindowWriters.Observe(uint64(len(accepted)))
	}
	// Apply per request, in window order, so each writer receives its
	// own normalized delta.
	for _, r := range accepted {
		var d *Delta
		var err error
		if len(r.ops) == 1 {
			d, err = m.applySingle(r.ops, false)
		} else {
			m.internOps(r.ops)
			perShard, shards := m.bucketOps(r.ops)
			d, err = m.applyBuckets(r.ops, perShard, shards, false)
		}
		if err != nil {
			// Unreachable after validation; if the invariant tears, the
			// in-memory state no longer matches the log — poison the
			// journal rather than serve the divergence (see applyBatch).
			j.appendErr = err
			r.err = err
			continue
		}
		r.d = d.normalize()
	}
	if met != nil {
		met.shardApplySeconds.ObserveSince(t0)
	}
	j.afterAppend(m, total)
}

// validateWindowReq validates one window request's key existence against
// the live store overlaid with the effects of previously accepted
// requests. Effects are staged locally and merged into the shared
// overlay only on success, so a rejected request leaves no trace. Runs
// under j.mu; store reads take brief shard read locks.
func (m *Monitor) validateWindowReq(ops []Op, overlay map[int64]bool) error {
	var staged map[int64]bool
	exists := func(key int64) bool {
		if v, ok := staged[key]; ok {
			return v
		}
		if v, ok := overlay[key]; ok {
			return v
		}
		sh := &m.tuples[shardOfTuple(key, m.shards)]
		sh.mu.RLock()
		_, ok := sh.m[key]
		sh.mu.RUnlock()
		return ok
	}
	set := func(key int64, live bool) {
		if staged == nil {
			staged = make(map[int64]bool, 4)
		}
		staged[key] = live
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpInsert:
			if op.keyed && exists(op.Key) {
				return opErr(len(ops), i, fmt.Errorf("incremental: tuple with key %d already exists", op.Key))
			}
			set(op.Key, true)
		case OpDelete:
			if !exists(op.Key) {
				return opErr(len(ops), i, fmt.Errorf("incremental: no tuple with key %d", op.Key))
			}
			set(op.Key, false)
		case OpUpdate:
			if !exists(op.Key) {
				return opErr(len(ops), i, fmt.Errorf("incremental: no tuple with key %d", op.Key))
			}
		}
	}
	for k, v := range staged {
		overlay[k] = v
	}
	return nil
}
