package incremental_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incremental"
	"repro/internal/relation"
)

// gcOptions returns durable options with group commit enabled in the
// self-tuning configuration (no deliberate delay, op-bounded windows).
func gcOptions(dir string) incremental.Options {
	return incremental.Options{
		Durable:     dir,
		Fsync:       true,
		GroupCommit: incremental.GroupCommit{MaxOps: 8},
	}
}

// TestGroupCommitSingleWriter: with no concurrency a window holds one
// writer, and the monitor must behave exactly like the plain journaled
// path — same deltas, same state, same recovery.
func TestGroupCommitSingleWriter(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, gcOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := m.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(key, "CT", "MH"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(2); err != nil {
		t.Fatal(err)
	}
	// Batches flow through the same window path.
	var cs incremental.ChangeSet
	cs.Insert(relation.Tuple{"44", "131", "5555555", "Ann", "High St.", "EDI", "EH4 1DT"})
	cs.Delete(key)
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	want := m.Violations()
	wantLen := m.Len()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Open(sigma, gcOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", m2.Len(), wantLen)
	}
	if !m2.Violations().Equal(want) {
		t.Fatalf("recovered state diverged:\n got %v\nwant %v", describe(m2.Violations()), describe(want))
	}
}

// TestGroupCommitConcurrentOracle is the randomized oracle property test
// for the commit window: concurrent single-op writers (the workload
// group commit exists for) race through shared windows; afterwards the
// live violation set must equal a batch-detector run over the surviving
// tuples, and a recovery from the WAL directory must reproduce the
// monitor byte for byte — proving the combined records preserved
// log-order == apply-order across windows.
func TestGroupCommitConcurrentOracle(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	opts := gcOptions(dir)
	opts.Fsync = false // fsync is orthogonal to the window protocol; keep CI fast
	m, err := incremental.Load(rel, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	pools := [][]relation.Value{
		{"01", "44"},
		{"908", "212", "215", "141"},
		{"1111111", "2222222"},
		{"Mike", "Rick", "Joe"},
		{"Tree Ave.", "Elm Str."},
		{"MH", "NYC", "PHI", "GLA"},
		{"07974", "01202"},
	}
	const writers = 8
	const opsPer = 60
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var mine []int64 // keys this writer inserted and still owns
			for i := 0; i < opsPer; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(4) == 0:
					k := mine[rng.Intn(len(mine))]
					if _, err := m.Delete(k); err != nil {
						errs <- fmt.Errorf("writer %d delete: %w", w, err)
						return
					}
					for j, v := range mine {
						if v == k {
							mine = append(mine[:j], mine[j+1:]...)
							break
						}
					}
				case len(mine) > 0 && rng.Intn(3) == 0:
					k := mine[rng.Intn(len(mine))]
					if _, err := m.Update(k, "CT", pools[5][rng.Intn(len(pools[5]))]); err != nil {
						errs <- fmt.Errorf("writer %d update: %w", w, err)
						return
					}
				default:
					tp := make(relation.Tuple, len(pools))
					for j, p := range pools {
						tp[j] = p[rng.Intn(len(p))]
					}
					k, _, err := m.Insert(tp)
					if err != nil {
						errs <- fmt.Errorf("writer %d insert: %w", w, err)
						return
					}
					mine = append(mine, k)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Oracle 1: batch detector over a mirror of the surviving tuples.
	keys := m.Keys()
	mirror := relation.New(rel.Schema)
	for _, k := range keys {
		tp, ok := m.Get(k)
		if !ok {
			t.Fatalf("Keys() returned %d but Get missed", k)
		}
		mirror.MustInsert(tp...)
	}
	if want := oracleState(t, mirror, sigma, keys); !m.Violations().Equal(want) {
		t.Fatalf("live state diverged from batch oracle:\n got %v\nwant %v",
			describe(m.Violations()), describe(want))
	}

	// Oracle 2: recovery. The WAL holds one combined record per window;
	// replaying them must land on the identical state.
	want := m.Violations()
	wantLen := m.Len()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Open(sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", m2.Len(), wantLen)
	}
	if !m2.Violations().Equal(want) {
		t.Fatalf("recovered state diverged:\n got %v\nwant %v", describe(m2.Violations()), describe(want))
	}
}

// TestGroupCommitPerWriterRejection: a window rejects an invalid writer
// without taking down the window's other requests, and the rejected ops
// never reach the WAL.
func TestGroupCommitPerWriterRejection(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	opts := gcOptions(dir)
	opts.Fsync = false
	// A deliberate delay widens the windows so valid and invalid writers
	// actually share them.
	opts.GroupCommit = incremental.GroupCommit{MaxDelay: 2 * time.Millisecond, MaxOps: 64}
	m, err := incremental.Load(rel, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseLen := m.Len()
	const writers = 8
	var wg sync.WaitGroup
	inserted := make([]int, writers)
	rejected := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					// Invalid: delete a key that never existed.
					if _, err := m.Delete(int64(1_000_000 + w*100 + i)); err == nil {
						return // counted below as a missing rejection
					}
					rejected[w]++
				} else {
					tp := relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}
					if _, _, err := m.Insert(tp); err != nil {
						return
					}
					inserted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	wantInserts, wantRejects := 0, 0
	for w := 0; w < writers; w++ {
		if w%2 == 0 {
			if rejected[w] != 20 {
				t.Fatalf("writer %d: %d rejections, want 20 (a phantom delete succeeded)", w, rejected[w])
			}
			wantRejects += rejected[w]
		} else {
			if inserted[w] != 20 {
				t.Fatalf("writer %d: %d inserts succeeded, want 20", w, inserted[w])
			}
			wantInserts += inserted[w]
		}
	}
	if m.Len() != baseLen+wantInserts {
		t.Fatalf("Len = %d, want %d", m.Len(), baseLen+wantInserts)
	}
	// Rejected ops must not have been journaled: recovery sees only the
	// accepted inserts.
	want := m.Violations()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Open(sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != baseLen+wantInserts {
		t.Fatalf("recovered Len = %d, want %d", m2.Len(), baseLen+wantInserts)
	}
	if !m2.Violations().Equal(want) {
		t.Fatalf("recovered state diverged:\n got %v\nwant %v", describe(m2.Violations()), describe(want))
	}
}
