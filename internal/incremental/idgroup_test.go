package incremental_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// TestIDGroupingMatchesStringGrouping cross-checks the monitor's
// packed-ID group index against an independent string-keyed grouping
// computed here with relation.EncodeKey. The value pool is built from
// prefix-sharing fragments ("", "a", "ab", "b", ...) so that adjacent
// attributes produce concatenation collisions at the byte level — e.g.
// X = ("a","bc") vs ("ab","c") — which both encodings must keep apart
// for the violating-group sets to agree.
func TestIDGroupingMatchesStringGrouping(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("X1"), relation.Attr("X2"), relation.Attr("Y"))
	// One wildcard FD over a two-attribute LHS: a group violates exactly
	// when its members disagree on Y, so the variable-violation set IS
	// the grouping, observable through Violations().
	sigma := []*core.CFD{core.MustCFD([]string{"X1", "X2"}, []string{"Y"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}})}
	pool := []relation.Value{"", "a", "b", "c", "ab", "bc", "abc", "a\x00", "\x00b", "aa"}

	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, err := incremental.New(schema, sigma, incremental.Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Independent string-keyed mirror: EncodeKey(X) → set of Y values.
		groups := make(map[string]map[relation.Value]int)
		live := make(map[int64]relation.Tuple)
		for step := 0; step < 300; step++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				// Delete a random live tuple.
				var victim int64 = -1
				for k := range live {
					victim = k
					break
				}
				tp := live[victim]
				if _, err := m.Delete(victim); err != nil {
					t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
				}
				xk := relation.EncodeKey(tp[:2])
				g := groups[xk]
				if g[tp[2]]--; g[tp[2]] == 0 {
					delete(g, tp[2])
				}
				if len(g) == 0 {
					delete(groups, xk)
				}
				delete(live, victim)
				continue
			}
			tp := relation.Tuple{
				pool[rng.Intn(len(pool))],
				pool[rng.Intn(len(pool))],
				pool[rng.Intn(len(pool))],
			}
			key, _, err := m.Insert(tp)
			if err != nil {
				t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
			}
			xk := relation.EncodeKey(tp[:2])
			if groups[xk] == nil {
				groups[xk] = make(map[relation.Value]int)
			}
			groups[xk][tp[2]]++
			live[key] = tp
		}

		// Expected violating groups under string keys.
		var want []string
		for xk, ys := range groups {
			if len(ys) > 1 {
				want = append(want, xk)
			}
		}
		sort.Strings(want)
		// The monitor's view, re-encoded from the materialized X values.
		var got []string
		for _, x := range m.Violations().PerCFD[0].VariableKeys {
			got = append(got, relation.EncodeKey(x))
		}
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: ID grouping disagrees with string grouping\n got: %q\nwant: %q", seed, got, want)
		}
	}
}
