package incremental

import (
	"sync"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file holds the persistent index structures behind the Monitor: the
// static tableau-row index (the inverse of detect/direct.go's constant-mask
// bucketing — pattern rows are indexed once and probed per tuple, instead
// of the data being indexed per detection run) and the lock-sharded live
// group and constant-violation stores. The tableau-free generalization of
// the group index — per-X-group support and Y-value distributions for
// arbitrary attribute pairs, feeding the streaming CFD miner — lives in
// stats.go on the same sharding substrate.
//
// Everything here speaks value IDs (relation.Interner.ID): tuples are
// stored as []uint32 columns, tableau constants are resolved to IDs once
// at build time, and group keys are the packed 4-byte-per-ID encoding of
// relation.AppendIDKey. Strings only reappear at the API boundary
// (Violations, Get, deltas), materialized through the interner.

// idTuple is a stored tuple: one value ID per attribute, positionally
// aligned with the schema.
type idTuple = []uint32

// rowBucket groups the tableau rows of one CFD that share a constant-
// position mask, indexed by the packed IDs of those constant cells.
// Probing with a tuple's X-projection returns exactly the rows whose X
// pattern the tuple matches, in O(1) per mask instead of O(|Tp|).
type rowBucket struct {
	// constPos are the LHS positions holding constants under this mask.
	constPos []int
	// rows maps the packed constant IDs at constPos to tableau row
	// indexes. The all-wildcard mask uses the empty key.
	rows map[string][]int
}

// rowIndex is the full static index of one CFD's pattern tableau.
type rowIndex struct {
	buckets []*rowBucket
}

// buildRowIndex resolves the tableau's X constants through the value
// pool — interning a constant the data never contains costs one pool
// entry and makes every probe an integer comparison.
func buildRowIndex(cfd *core.CFD, vals *relation.Interner) *rowIndex {
	ix := &rowIndex{}
	byMask := make(map[string]*rowBucket)
	for ri, row := range cfd.Tableau {
		maskKey := make([]byte, len(row.X))
		var constPos []int
		for i, p := range row.X {
			if p.Kind == core.Const {
				constPos = append(constPos, i)
				maskKey[i] = '1'
			} else {
				maskKey[i] = '0'
			}
		}
		b, ok := byMask[string(maskKey)]
		if !ok {
			b = &rowBucket{constPos: constPos, rows: make(map[string][]int)}
			byMask[string(maskKey)] = b
			ix.buckets = append(ix.buckets, b)
		}
		ids := make([]uint32, len(b.constPos))
		for i, p := range b.constPos {
			ids[i] = vals.ID(row.X[p].Val)
		}
		k := string(relation.AppendIDKey(nil, ids))
		b.rows[k] = append(b.rows[k], ri)
	}
	return ix
}

// match returns the tableau rows whose X pattern matches the X-projection x.
func (ix *rowIndex) match(x []uint32) []int {
	return ix.matchInto(nil, x)
}

// matchInto appends the matching rows to dst. The probe key is packed
// into a stack buffer and looked up as string(buf), so a match on the
// mutation hot path allocates nothing.
func (ix *rowIndex) matchInto(dst []int, x []uint32) []int {
	var stack [64]byte
	for _, b := range ix.buckets {
		key := stack[:0]
		for _, p := range b.constPos {
			key = relation.AppendIDKey(key, x[p:p+1])
		}
		dst = append(dst, b.rows[string(key)]...)
	}
	return dst
}

// yCell is one pre-resolved Y-pattern cell: a tableau constant's value
// ID, or a match-anything cell ('_' / '@'). Resolving the tableau once
// at build time turns constViolates into a branch-light integer loop.
type yCell struct {
	isConst bool
	id      uint32
}

// buildYPatterns resolves every tableau row's Y cells to ID patterns.
func buildYPatterns(cfd *core.CFD, vals *relation.Interner) [][]yCell {
	out := make([][]yCell, len(cfd.Tableau))
	for ri, row := range cfd.Tableau {
		cells := make([]yCell, len(row.Y))
		for i, p := range row.Y {
			if p.Kind == core.Const {
				cells[i] = yCell{isConst: true, id: vals.ID(p.Val)}
			}
		}
		out[ri] = cells
	}
	return out
}

// group is the live state of one distinct X-projection under one CFD. A
// group is in variable violation when at least one tableau row selects it
// and its members disagree on Y. The membership multiset itself lives in
// the shard-level yCounts map (one flat map per shard instead of one or
// two small maps per group — the dominant allocation cost of both the hot
// write path and snapshot recovery at 100K-tuple scale); the group only
// carries the counters those entries maintain.
type group struct {
	// xids is the shared X-projection as value IDs (owned by the group;
	// treated as immutable once stored). Materialize through the
	// monitor's interner at API boundaries.
	xids []uint32
	// selected reports whether some tableau row's X pattern matches x.
	// The tableau is static, so this is computed once at group creation.
	selected bool
	// size is the number of member tuples.
	size int
	// distinct is the number of distinct Y-projections over the members
	// (the number of live yCounts entries with this group's xk).
	distinct int
}

func (g *group) violating() bool { return g.selected && g.distinct > 1 }

// ykKey identifies one distinct Y-projection of one group within a shard.
// The group is referenced by identity: pointer hashing is cheaper than
// re-hashing the packed X-projection on every membership change, and the
// snapshot codec can reference groups by arena index instead of repeating
// their keys. yk is the packed-ID Y-projection, canonicalized through the
// monitor's key pool so the struct-literal probe never allocates.
type ykKey struct {
	g  *group
	yk string
}

// groupShard is one lock shard of a CFD's group index: the groups keyed by
// the packed-ID X-projection, plus the flat Y-projection multiset over all
// of the shard's groups.
type groupShard struct {
	mu sync.RWMutex
	m  map[string]*group
	// yCounts is the multiset of member Y-projections, keyed per group.
	// An entry appearing (count 0→1) raises its group's distinct counter;
	// an entry vanishing lowers it. Removal recomputes the member's
	// Y-projection from the departing tuple, so no per-member index is
	// needed at all.
	yCounts map[ykKey]int
}

// constShard is one lock shard of a CFD's constant-violation set.
type constShard struct {
	mu sync.RWMutex
	m  map[int64]bool
}

// tupleShard is one lock shard of the monitor's tuple store. Tuples are
// ID columns: 4 bytes per value instead of a 16-byte string header —
// the resident-memory headline E13 measures.
type tupleShard struct {
	mu sync.RWMutex
	m  map[int64]idTuple
}

// shardOfKey maps a packed group key to a shard index. It MUST agree
// with relation.HashIDs over the unpacked vector (see the invariant in
// relation/idcol.go): the hot path routes on HashIDs of the projection,
// while snapshot recovery re-derives the shard from the packed key here.
func shardOfKey(s string, n int) int {
	return int(relation.Hash(s) % uint32(n))
}

// shardOfTuple maps a tuple key to a shard index.
func shardOfTuple(key int64, n int) int {
	return int(uint64(key) % uint64(n))
}
