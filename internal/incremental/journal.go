package incremental

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/wal"
)

// This file is the durable mode of the Monitor: every mutation appends a
// write-ahead record (internal/wal framing) before the in-memory apply, a
// background snapshotter rolls the generation when the log grows past
// Options.SnapshotEvery records, and startup recovers the latest snapshot
// plus the log tail instead of re-evaluating Σ over every tuple.
//
// The journal serializes batches with one mutex — the invariant is that
// WAL log order equals apply order, so replaying the log rebuilds the
// exact pre-crash state; see the locking notes in monitor.go. The
// critical section is as narrow as that invariant allows: validation and
// the single append run strictly ordered under journal.mu, and the
// in-memory apply of the batch then fans out shard-parallel while still
// inside it (per-key ordering is preserved because a key's ops land in
// one shard bucket, applied in vector order). Readers (Violations,
// Satisfied, Get, ...) are untouched: they still run against the
// lock-sharded indexes concurrently with a journaled writer, and never
// wait on the append or the fsync. The write path gives up cross-batch
// multi-writer parallelism for durability; the WAL append (and fsync,
// when enabled) dominates the cost of a journaled write anyway, as E9
// and E10 measure — which is exactly why a ChangeSet, journaled as ONE
// record with ONE fsync, beats the same ops applied one at a time.

// errClosed reports a mutation against a closed durable monitor.
var errClosed = errors.New("incremental: monitor journal is closed")

// gcPause refcounts the process-global GC toggle used by recovery, so
// concurrent recoveries (a server hosting several WAL-backed monitors)
// compose: the collector is re-enabled with the original setting only
// when the last recovery finishes, never left off for the process's life.
var gcPause struct {
	mu    sync.Mutex
	depth int
	prev  int
}

// pauseGC disables GC until the returned release function is called.
func pauseGC() func() {
	gcPause.mu.Lock()
	if gcPause.depth == 0 {
		gcPause.prev = debug.SetGCPercent(-1)
	}
	gcPause.depth++
	gcPause.mu.Unlock()
	return func() {
		gcPause.mu.Lock()
		gcPause.depth--
		if gcPause.depth == 0 {
			debug.SetGCPercent(gcPause.prev)
		}
		gcPause.mu.Unlock()
	}
}

// WAL record op codes. opBatch frames a whole ChangeSet as one record:
// a wal.EncodeBatch vector of single-op payloads. opEpoch is the
// fencing marker a promotion journals before its first write (see
// fence.go); it carries no mutation, so replay and the snapshot cadence
// count it as zero ops. Replay stays backward-compatible — logs written
// before batches or fencing existed contain only codes 1–3 and replay
// unchanged.
const (
	opInsert = 1
	opDelete = 2
	opUpdate = 3
	opBatch  = 4
	opEpoch  = 5
)

// journal is the durable state attached to a Monitor.
type journal struct {
	// mu serializes append+apply pairs; index shard locks nest under it.
	mu        sync.Mutex
	dir       string
	fsync     bool
	snapEvery int
	// retain is the number of closed segments kept behind the current
	// generation for WAL shipping (Options.RetainSegments); snapshots
	// below the current generation are collected regardless.
	retain int

	log  *wal.Log
	lock *wal.DirLock
	seq  uint64 // current generation (snap-seq is the base of wal-seq)
	// appendErr poisons the journal after a failed append: the record may
	// or may not be on disk, so the in-memory state and the log can no
	// longer be trusted to agree. Further mutations are refused until a
	// successful snapshot (which starts a fresh segment from the
	// in-memory state, resolving the uncertainty) or a restart (which
	// resolves it the other way, by replaying whatever reached the disk).
	appendErr error
	records   int // records appended to the current segment
	// retryAt, after a failed snapshot, is the segment length at which
	// the background trigger may fire again — one full snapEvery later,
	// so a wedged directory (ENOSPC, permissions) costs one failed
	// full-state serialization per interval, not one per mutation.
	retryAt int

	snapping    atomic.Bool // single-flight guard for background snapshots
	lastSnapErr error       // outcome of the last background snapshot
	recovered   bool
	closed      bool
}

// attachJournal puts m into durable mode against opts.Durable. A directory
// with existing state wins over the seed: the snapshot + log tail are
// recovered and seed is ignored. A fresh directory seeds from seed (nil
// means start empty) and, when seeded, writes the initial snapshot so the
// CSV is never needed again.
func attachJournal(m *Monitor, opts Options, seed *relation.Relation) error {
	dir := opts.Durable
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lock, err := wal.LockDir(dir)
	if err != nil {
		return err
	}
	attached := false
	defer func() {
		if !attached {
			lock.Unlock()
		}
	}()
	retain := opts.RetainSegments
	if retain < 0 {
		// A negative count would wrap in segmentFloor's uint64 math and
		// silently disable segment GC forever; treat it as "retain none".
		retain = 0
	}
	j := &journal{dir: dir, fsync: opts.Fsync, snapEvery: opts.SnapshotEvery, retain: retain, lock: lock}
	snaps, logs, err := wal.Generations(dir)
	if err != nil {
		return err
	}

	if len(snaps) == 0 && len(logs) == 0 {
		// Fresh directory. The journal is not attached yet, so the seed
		// batch applies without journaling; the snapshot below captures it.
		if seed != nil {
			if err := m.seed(seed); err != nil {
				return err
			}
			j.seq = 1
			if err := wal.WriteSnapshot(dir, j.seq, m.writeSnapshot); err != nil {
				return err
			}
		}
		log, err := wal.Create(wal.LogPath(dir, j.seq), j.fsync)
		if err != nil {
			return err
		}
		if m.met != nil {
			log.SetStats(m.met.logStats)
		}
		j.log = log
		m.j = j
		attached = true
		return nil
	}

	// Existing state: recover it, ignoring any seed. Recovery is one
	// bounded allocation burst that immediately becomes the node's
	// resident state (image, tuple arena, index maps); letting the
	// collector run mid-burst only re-scans what is about to be live
	// anyway, so GC is parked until the state is up — the same discipline
	// storage engines apply to their restore paths.
	defer pauseGC()()
	j.recovered = true
	if len(snaps) > 0 {
		j.seq = snaps[len(snaps)-1]
		f, err := os.Open(wal.SnapshotPath(dir, j.seq))
		if err != nil {
			return err
		}
		var size int64
		if fi, err := f.Stat(); err == nil {
			size = fi.Size()
		}
		err = m.readSnapshot(f, size)
		f.Close()
		if err != nil {
			return err
		}
	} else if logs[len(logs)-1] != 0 {
		// A log segment without its snapshot is only recoverable at
		// generation 0, whose base is the empty monitor.
		return fmt.Errorf("incremental: wal dir %s: segment %d has no snapshot", dir, logs[len(logs)-1])
	}
	logPath := wal.LogPath(dir, j.seq)
	if _, err := os.Stat(logPath); err == nil {
		// j.records counts MUTATIONS (a batch record is its op count, as
		// afterAppend counts it), so the snapshot cadence survives a
		// crash-recovery cycle: replay accumulates ops, not records.
		ops := 0
		_, validLen, torn, err := wal.Replay(logPath, func(p []byte) error {
			n, err := m.applyRecordN(p)
			ops += n
			return err
		})
		if err != nil {
			return err
		}
		if torn {
			// The tail of a crashed append is garbage; cut it so new
			// records start at the last intact boundary.
			if err := os.Truncate(logPath, validLen); err != nil {
				return err
			}
		}
		j.records = ops
	} else if !os.IsNotExist(err) {
		return err
	}
	log, err := wal.OpenAppend(logPath, j.fsync)
	if err != nil {
		return err
	}
	if m.met != nil {
		log.SetStats(m.met.logStats)
	}
	j.log = log
	_ = wal.RemoveBelow(dir, j.seq, j.segmentFloor(j.seq)) // leftovers of an interrupted rotation
	m.j = j
	attached = true
	return nil
}

// --- the write path ---

// usable errors a mutation when the journal is closed or poisoned; it
// runs under j.mu.
func (j *journal) usable() error {
	if j.closed {
		return errClosed
	}
	if j.appendErr != nil {
		return fmt.Errorf("incremental: journal failed, snapshot or restart to recover: %w", j.appendErr)
	}
	return nil
}

// usableNow is the pre-resolution fast reject: a poisoned or closed
// journal refuses a ChangeSet before any keys are burned or tuples
// cloned. Advisory only — applyBatch re-checks under the same mutex it
// appends under.
func (j *journal) usableNow() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.usable()
}

// applyBatch journals a resolved ChangeSet as one record and applies it.
// Validation (key existence, simulated through the batch prefix) runs
// under j.mu before the append, so only applicable records reach the
// log; the in-memory apply then fans out shard-parallel — still under
// j.mu, preserving log order == apply order against other batches.
func (j *journal) applyBatch(m *Monitor, ops []Op) (*Delta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return nil, err
	}
	met := m.met
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	// Buckets are computed once and shared by validation and apply; the
	// one-element wrappers skip bucketing entirely.
	var perShard [][]int32
	var shards []int
	if len(ops) == 1 {
		if err := m.validateOps(ops); err != nil {
			return nil, err
		}
	} else {
		perShard, shards = m.bucketOps(ops)
		if err := m.validateShards(ops, perShard, shards); err != nil {
			return nil, err
		}
	}
	if met != nil {
		t1 := time.Now()
		met.validateSeconds.ObserveDuration(t1.Sub(t0))
		t0 = t1
	}
	if err := j.log.Append(encodeOps(ops)); err != nil {
		j.appendErr = err
		return nil, err
	}
	if met != nil {
		t1 := time.Now()
		met.walAppendSeconds.ObserveDuration(t1.Sub(t0))
		t0 = t1
	}
	var d *Delta
	var err error
	if len(ops) == 1 {
		d, err = m.applySingle(ops, false)
	} else {
		m.internOps(ops)
		d, err = m.applyBuckets(ops, perShard, shards, false)
	}
	if met != nil {
		met.shardApplySeconds.ObserveSince(t0)
	}
	if err != nil {
		// Unreachable after validation; if the invariant ever tears, the
		// in-memory state no longer matches the log — poison the journal
		// rather than serve the divergence.
		j.appendErr = err
		return nil, err
	}
	j.afterAppend(m, len(ops))
	return d.normalize(), nil
}

// encodeOps encodes a batch as one WAL payload: single ops keep the
// legacy one-op record layout, larger batches nest every op payload in
// one opBatch record (torn mid-write, the whole vector vanishes on
// replay — batch atomicity under crash).
func encodeOps(ops []Op) []byte {
	if len(ops) == 1 {
		return encodeOp(ops[0])
	}
	subs := make([][]byte, len(ops))
	for i := range ops {
		subs[i] = encodeOp(ops[i])
	}
	return wal.EncodeBatch([]byte{opBatch}, subs)
}

func encodeOp(op Op) []byte {
	switch op.Kind {
	case OpInsert:
		// The owned clone, not the caller's slice: what lands in the log
		// is byte-for-byte what the in-memory apply below will index.
		return encodeInsert(op.Key, op.owned)
	case OpDelete:
		return encodeDelete(op.Key)
	default:
		return encodeUpdate(op.Key, op.ai, op.Value)
	}
}

// afterAppend runs under j.mu: counts the journaled ops and kicks the
// background snapshotter once the segment outgrows the threshold (the
// cadence counts mutations, so a 1000-op batch advances it by 1000, not
// by one record). The snapshot runs in its own goroutine (single-flight)
// and takes j.mu itself, so it briefly quiesces writers while the state
// image is serialized.
func (j *journal) afterAppend(m *Monitor, n int) {
	j.records += n
	if j.snapEvery > 0 && j.records >= j.snapEvery && j.records >= j.retryAt &&
		j.snapping.CompareAndSwap(false, true) {
		go func() {
			defer j.snapping.Store(false)
			_ = j.snapshot(m) // outcome lands in lastSnapErr
		}()
	}
}

// snapshot rolls the journal to a new generation: write snap-(seq+1),
// start the empty wal-(seq+1), then garbage-collect the old generation.
// At every crash point the directory still holds one complete recovery
// path. The outcome — of every trigger path: record count, wall clock,
// ForceSnapshot — is recorded in lastSnapErr for JournalStats, so a
// stale failure never outlives a later successful snapshot.
func (j *journal) snapshot(m *Monitor) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	err := j.snapshotLocked(m)
	j.lastSnapErr = err
	if err != nil {
		j.retryAt = j.records + j.snapEvery
	} else {
		j.retryAt = 0
		// A fresh segment now starts from the in-memory state, so a
		// poisoned journal (uncertain trailing record in the old, now
		// garbage-collected segment) is whole again.
		j.appendErr = nil
	}
	return err
}

func (j *journal) snapshotLocked(m *Monitor) error {
	return j.rollLocked(m, j.seq+1)
}

// rollLocked advances the journal to an explicit generation: snap-newSeq
// is the full state image, wal-newSeq the fresh segment, and generations
// below the retention window are collected. The snapshot trigger always
// rolls to seq+1; a follower rolls to the primary's segment numbers so
// its directory mirrors the stream it applies (see follower.go).
func (j *journal) rollLocked(m *Monitor, newSeq uint64) error {
	if newSeq <= j.seq {
		return fmt.Errorf("incremental: roll to generation %d at generation %d", newSeq, j.seq)
	}
	met := m.met
	var rollStart time.Time
	if met != nil {
		rollStart = time.Now()
	}
	// The outgoing segment must be durably complete BEFORE the snapshot
	// that supersedes it exists: the snapshot embodies every record the
	// segment holds (including a buffered, unsynced tail under
	// Fsync=off), and with retention a crash between the snapshot write
	// and the segment's close would otherwise leave a short wal-N on
	// disk that a follower reads to the end and trusts — silently
	// missing the lost tail, with no CRC error to catch it.
	if err := j.log.Sync(); err != nil {
		return err
	}
	var snapStart time.Time
	if met != nil {
		snapStart = time.Now()
	}
	if err := wal.WriteSnapshot(j.dir, newSeq, m.writeSnapshot); err != nil {
		return err
	}
	if met != nil {
		met.snapshotSeconds.ObserveSince(snapStart)
	}
	newLog, err := wal.Create(wal.LogPath(j.dir, newSeq), j.fsync)
	if err != nil {
		// Without its log segment the new snapshot must not become the
		// recovery base: ops would keep landing in the old segment.
		os.Remove(wal.SnapshotPath(j.dir, newSeq))
		return err
	}
	if met != nil {
		newLog.SetStats(met.logStats)
	}
	old := j.log
	j.log, j.seq, j.records = newLog, newSeq, 0
	old.Close()
	_ = wal.RemoveBelow(j.dir, newSeq, j.segmentFloor(newSeq))
	if met != nil {
		met.rollSeconds.ObserveSince(rollStart)
		met.snapshots.Inc()
	}
	return nil
}

// segmentFloor is the oldest log segment retention keeps at generation
// seq: RetainSegments closed segments behind the current one.
func (j *journal) segmentFloor(seq uint64) uint64 {
	if uint64(j.retain) >= seq {
		return 0
	}
	return seq - uint64(j.retain)
}

// --- record codec ---

func encodeInsert(key int64, t relation.Tuple) []byte {
	n := 1 + binary.MaxVarintLen64
	for _, v := range t {
		n += binary.MaxVarintLen64 + len(v)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, opInsert)
	buf = binary.AppendUvarint(buf, uint64(key))
	for _, v := range t {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func encodeDelete(key int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, opDelete)
	return binary.AppendUvarint(buf, uint64(key))
}

func encodeUpdate(key int64, ai int, val relation.Value) []byte {
	buf := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(val))
	buf = append(buf, opUpdate)
	buf = binary.AppendUvarint(buf, uint64(key))
	buf = binary.AppendUvarint(buf, uint64(ai))
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	return append(buf, val...)
}

// applyRecordN replays one WAL record onto the monitor, returning how
// many mutations it carried (1, or a batch's op count). Records were
// validated before they were appended, so application errors mean the
// directory does not belong to this schema/Σ. A batch record recurses
// over its sub-payloads — the record CRC already guarantees the vector
// is whole, so replay never sees part of a batch.
func (m *Monitor) applyRecordN(payload []byte) (int, error) {
	if len(payload) > 0 && payload[0] == opBatch {
		total := 0
		err := wal.DecodeBatch(payload[1:], func(sub []byte) error {
			n, err := m.applyRecordN(sub)
			total += n
			return err
		})
		return total, err
	}
	if len(payload) > 0 && payload[0] == opEpoch {
		// Fencing marker: no mutation, just the term the rest of the
		// segment is written under. Epochs only grow along a log, but
		// max-store anyway so a replayed prefix can never lower one.
		d := &dec{s: string(payload[1:])}
		e := d.uvarint()
		if d.err != nil {
			return 0, fmt.Errorf("incremental: replaying epoch record: %w", d.err)
		}
		if e > m.epoch.Load() {
			m.epoch.Store(e)
		}
		return 0, nil
	}
	return 1, m.applyRecord(payload)
}

// applyRecord replays one single-op record.
func (m *Monitor) applyRecord(payload []byte) error {
	d := &dec{s: string(payload)}
	op := d.byte()
	key := int64(d.uvarint())
	switch op {
	case opInsert:
		vals := d.strs(m.schema.Len())
		if d.err != nil {
			return d.err
		}
		if err := m.replayOp(Op{Kind: OpInsert, Key: key, owned: relation.Tuple(vals)}); err != nil {
			return fmt.Errorf("incremental: replaying insert: %w", err)
		}
		if nk := key + 1; nk > m.nextKey.Load() {
			m.nextKey.Store(nk)
		}
	case opDelete:
		if d.err != nil {
			return d.err
		}
		if err := m.replayOp(Op{Kind: OpDelete, Key: key}); err != nil {
			return fmt.Errorf("incremental: replaying delete: %w", err)
		}
	case opUpdate:
		ai := int(d.uvarint())
		val := d.str()
		if d.err != nil {
			return d.err
		}
		if ai >= m.schema.Len() {
			return fmt.Errorf("incremental: replaying update: attribute index %d out of range", ai)
		}
		if err := m.replayOp(Op{Kind: OpUpdate, Key: key, ai: ai, Value: val}); err != nil {
			return fmt.Errorf("incremental: replaying update: %w", err)
		}
	default:
		return fmt.Errorf("incremental: unknown WAL op %d", op)
	}
	return nil
}

// replayOp applies one already-decoded record op through the same
// validated batch path live mutations use, folding its delta into the
// maintained view — this covers both recovery replay and the follower's
// replication apply, which bypass the public Apply.
func (m *Monitor) replayOp(op Op) error {
	d, err := m.applyOpsMemory([]Op{op})
	if err == nil {
		m.foldView(d)
	}
	return err
}

// --- surface ---

// Recovered reports whether this monitor's state was rebuilt from an
// existing WAL directory (as opposed to a fresh seed or empty start).
func (m *Monitor) Recovered() bool { return m.j != nil && m.j.recovered }

// ForceSnapshot synchronously rolls the durable monitor to a new
// generation: full state image, fresh log segment, old generation
// garbage-collected. It errors on a monitor without a WAL directory, and
// on a follower — a read-only monitor's generations must keep mirroring
// the primary's segment numbers, so only the replication loop may roll.
func (m *Monitor) ForceSnapshot() error {
	if m.j == nil {
		return errors.New("incremental: monitor is not durable")
	}
	if m.readOnly.Load() {
		return ErrReadOnly
	}
	return m.j.snapshot(m)
}

// Close flushes and syncs the journal; further mutations error. It is a
// no-op for a non-durable monitor. Close does not snapshot — callers that
// want the fastest next boot call ForceSnapshot first.
func (m *Monitor) Close() error {
	if m.j == nil {
		return nil
	}
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.log.Close()
	if uerr := j.lock.Unlock(); err == nil {
		err = uerr
	}
	return err
}

// JournalStats describes the durable state of a monitor.
type JournalStats struct {
	// Durable reports whether the monitor journals at all.
	Durable bool
	// Dir is the WAL directory.
	Dir string
	// Generation is the current snapshot/segment sequence number.
	Generation uint64
	// SegmentRecords counts records in the current log segment.
	SegmentRecords int
	// Recovered reports whether startup restored existing state.
	Recovered bool
	// LastSnapshotErr is the error of the most recent background
	// snapshot, empty when it succeeded.
	LastSnapshotErr string
}

// JournalStats returns the durable-state counters (zero values for a
// non-durable monitor).
func (m *Monitor) JournalStats() JournalStats {
	if m.j == nil {
		return JournalStats{}
	}
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Durable:        true,
		Dir:            j.dir,
		Generation:     j.seq,
		SegmentRecords: j.records,
		Recovered:      j.recovered,
	}
	if j.lastSnapErr != nil {
		st.LastSnapshotErr = j.lastSnapErr.Error()
	}
	return st
}
