package incremental

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/wal"
)

// This file is the durable mode of the Monitor: every mutation appends a
// write-ahead record (internal/wal framing) before the in-memory apply, a
// background snapshotter rolls the generation when the log grows past
// Options.SnapshotEvery records, and startup recovers the latest snapshot
// plus the log tail instead of re-evaluating Σ over every tuple.
//
// The journal serializes mutations with one mutex so the log order always
// equals the apply order — replaying the log is then guaranteed to rebuild
// the exact pre-crash state. Readers (Violations, Satisfied, Get, ...) are
// untouched: they still run against the lock-sharded indexes concurrently
// with a journaled writer. The write path gives up multi-writer
// parallelism for durability; the WAL append (and fsync, when enabled)
// dominates the cost of a journaled write anyway, as E9 measures.

// errClosed reports a mutation against a closed durable monitor.
var errClosed = errors.New("incremental: monitor journal is closed")

// gcPause refcounts the process-global GC toggle used by recovery, so
// concurrent recoveries (a server hosting several WAL-backed monitors)
// compose: the collector is re-enabled with the original setting only
// when the last recovery finishes, never left off for the process's life.
var gcPause struct {
	mu    sync.Mutex
	depth int
	prev  int
}

// pauseGC disables GC until the returned release function is called.
func pauseGC() func() {
	gcPause.mu.Lock()
	if gcPause.depth == 0 {
		gcPause.prev = debug.SetGCPercent(-1)
	}
	gcPause.depth++
	gcPause.mu.Unlock()
	return func() {
		gcPause.mu.Lock()
		gcPause.depth--
		if gcPause.depth == 0 {
			debug.SetGCPercent(gcPause.prev)
		}
		gcPause.mu.Unlock()
	}
}

// WAL record op codes.
const (
	opInsert = 1
	opDelete = 2
	opUpdate = 3
)

// journal is the durable state attached to a Monitor.
type journal struct {
	// mu serializes append+apply pairs; index shard locks nest under it.
	mu        sync.Mutex
	dir       string
	fsync     bool
	snapEvery int

	log  *wal.Log
	lock *wal.DirLock
	seq  uint64 // current generation (snap-seq is the base of wal-seq)
	// appendErr poisons the journal after a failed append: the record may
	// or may not be on disk, so the in-memory state and the log can no
	// longer be trusted to agree. Further mutations are refused until a
	// successful snapshot (which starts a fresh segment from the
	// in-memory state, resolving the uncertainty) or a restart (which
	// resolves it the other way, by replaying whatever reached the disk).
	appendErr error
	records   int // records appended to the current segment
	// retryAt, after a failed snapshot, is the segment length at which
	// the background trigger may fire again — one full snapEvery later,
	// so a wedged directory (ENOSPC, permissions) costs one failed
	// full-state serialization per interval, not one per mutation.
	retryAt int

	snapping    atomic.Bool // single-flight guard for background snapshots
	lastSnapErr error       // outcome of the last background snapshot
	recovered   bool
	closed      bool
}

// attachJournal puts m into durable mode against opts.Durable. A directory
// with existing state wins over the seed: the snapshot + log tail are
// recovered and seed is ignored. A fresh directory seeds from seed (nil
// means start empty) and, when seeded, writes the initial snapshot so the
// CSV is never needed again.
func attachJournal(m *Monitor, opts Options, seed *relation.Relation) error {
	dir := opts.Durable
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lock, err := wal.LockDir(dir)
	if err != nil {
		return err
	}
	attached := false
	defer func() {
		if !attached {
			lock.Unlock()
		}
	}()
	j := &journal{dir: dir, fsync: opts.Fsync, snapEvery: opts.SnapshotEvery, lock: lock}
	snaps, logs, err := wal.Generations(dir)
	if err != nil {
		return err
	}

	if len(snaps) == 0 && len(logs) == 0 {
		// Fresh directory.
		if seed != nil {
			for i, t := range seed.Tuples {
				if err := m.checkTuple(t); err != nil {
					return fmt.Errorf("incremental: loading row %d: %w", i, err)
				}
				key := m.nextKey.Add(1) - 1
				m.applyInsert(key, t.Clone())
			}
			j.seq = 1
			if err := wal.WriteSnapshot(dir, j.seq, m.writeSnapshot); err != nil {
				return err
			}
		}
		log, err := wal.Create(wal.LogPath(dir, j.seq), j.fsync)
		if err != nil {
			return err
		}
		j.log = log
		m.j = j
		attached = true
		return nil
	}

	// Existing state: recover it, ignoring any seed. Recovery is one
	// bounded allocation burst that immediately becomes the node's
	// resident state (image, tuple arena, index maps); letting the
	// collector run mid-burst only re-scans what is about to be live
	// anyway, so GC is parked until the state is up — the same discipline
	// storage engines apply to their restore paths.
	defer pauseGC()()
	j.recovered = true
	if len(snaps) > 0 {
		j.seq = snaps[len(snaps)-1]
		f, err := os.Open(wal.SnapshotPath(dir, j.seq))
		if err != nil {
			return err
		}
		var size int64
		if fi, err := f.Stat(); err == nil {
			size = fi.Size()
		}
		err = m.readSnapshot(f, size)
		f.Close()
		if err != nil {
			return err
		}
	} else if logs[len(logs)-1] != 0 {
		// A log segment without its snapshot is only recoverable at
		// generation 0, whose base is the empty monitor.
		return fmt.Errorf("incremental: wal dir %s: segment %d has no snapshot", dir, logs[len(logs)-1])
	}
	logPath := wal.LogPath(dir, j.seq)
	if _, err := os.Stat(logPath); err == nil {
		records, validLen, torn, err := wal.Replay(logPath, m.applyRecord)
		if err != nil {
			return err
		}
		if torn {
			// The tail of a crashed append is garbage; cut it so new
			// records start at the last intact boundary.
			if err := os.Truncate(logPath, validLen); err != nil {
				return err
			}
		}
		j.records = records
	} else if !os.IsNotExist(err) {
		return err
	}
	log, err := wal.OpenAppend(logPath, j.fsync)
	if err != nil {
		return err
	}
	j.log = log
	_ = wal.RemoveBelow(dir, j.seq) // leftovers of an interrupted rotation
	m.j = j
	attached = true
	return nil
}

// --- the write path ---

// usable errors a mutation when the journal is closed or poisoned; it
// runs under j.mu.
func (j *journal) usable() error {
	if j.closed {
		return errClosed
	}
	if j.appendErr != nil {
		return fmt.Errorf("incremental: journal failed, snapshot or restart to recover: %w", j.appendErr)
	}
	return nil
}

func (j *journal) insert(m *Monitor, owned relation.Tuple) (int64, *Delta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return 0, nil, err
	}
	key := m.nextKey.Add(1) - 1
	if err := j.log.Append(encodeInsert(key, owned)); err != nil {
		j.appendErr = err
		return 0, nil, err
	}
	d := m.applyInsert(key, owned)
	j.afterAppend(m)
	return key, d.normalize(), nil
}

func (j *journal) delete(m *Monitor, key int64) (*Delta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return nil, err
	}
	// Validate before journaling: only applicable records reach the log.
	sh := &m.tuples[shardOfTuple(key, m.shards)]
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("incremental: no tuple with key %d", key)
	}
	if err := j.log.Append(encodeDelete(key)); err != nil {
		j.appendErr = err
		return nil, err
	}
	d, err := m.applyDelete(key)
	if err != nil {
		return nil, err
	}
	j.afterAppend(m)
	return d.normalize(), nil
}

func (j *journal) update(m *Monitor, key int64, ai int, attr string, val relation.Value) (*Delta, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return nil, err
	}
	sh := &m.tuples[shardOfTuple(key, m.shards)]
	sh.mu.RLock()
	old, ok := sh.m[key]
	same := ok && old[ai] == val
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("incremental: no tuple with key %d", key)
	}
	if same {
		return &Delta{}, nil // no-ops are not journaled
	}
	if err := j.log.Append(encodeUpdate(key, ai, val)); err != nil {
		j.appendErr = err
		return nil, err
	}
	d, err := m.applyUpdate(key, ai, attr, val)
	if err != nil {
		return nil, err
	}
	j.afterAppend(m)
	return d, nil
}

// afterAppend runs under j.mu: counts the record and kicks the background
// snapshotter once the segment outgrows the threshold. The snapshot runs
// in its own goroutine (single-flight) and takes j.mu itself, so it
// briefly quiesces writers while the state image is serialized.
func (j *journal) afterAppend(m *Monitor) {
	j.records++
	if j.snapEvery > 0 && j.records >= j.snapEvery && j.records >= j.retryAt &&
		j.snapping.CompareAndSwap(false, true) {
		go func() {
			defer j.snapping.Store(false)
			_ = j.snapshot(m) // outcome lands in lastSnapErr
		}()
	}
}

// snapshot rolls the journal to a new generation: write snap-(seq+1),
// start the empty wal-(seq+1), then garbage-collect the old generation.
// At every crash point the directory still holds one complete recovery
// path. The outcome — of every trigger path: record count, wall clock,
// ForceSnapshot — is recorded in lastSnapErr for JournalStats, so a
// stale failure never outlives a later successful snapshot.
func (j *journal) snapshot(m *Monitor) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errClosed
	}
	err := j.snapshotLocked(m)
	j.lastSnapErr = err
	if err != nil {
		j.retryAt = j.records + j.snapEvery
	} else {
		j.retryAt = 0
		// A fresh segment now starts from the in-memory state, so a
		// poisoned journal (uncertain trailing record in the old, now
		// garbage-collected segment) is whole again.
		j.appendErr = nil
	}
	return err
}

func (j *journal) snapshotLocked(m *Monitor) error {
	newSeq := j.seq + 1
	if err := wal.WriteSnapshot(j.dir, newSeq, m.writeSnapshot); err != nil {
		return err
	}
	newLog, err := wal.Create(wal.LogPath(j.dir, newSeq), j.fsync)
	if err != nil {
		// Without its log segment the new snapshot must not become the
		// recovery base: ops would keep landing in the old segment.
		os.Remove(wal.SnapshotPath(j.dir, newSeq))
		return err
	}
	old := j.log
	j.log, j.seq, j.records = newLog, newSeq, 0
	old.Close()
	_ = wal.RemoveBelow(j.dir, newSeq)
	return nil
}

// --- record codec ---

func encodeInsert(key int64, t relation.Tuple) []byte {
	n := 1 + binary.MaxVarintLen64
	for _, v := range t {
		n += binary.MaxVarintLen64 + len(v)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, opInsert)
	buf = binary.AppendUvarint(buf, uint64(key))
	for _, v := range t {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func encodeDelete(key int64) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, opDelete)
	return binary.AppendUvarint(buf, uint64(key))
}

func encodeUpdate(key int64, ai int, val relation.Value) []byte {
	buf := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(val))
	buf = append(buf, opUpdate)
	buf = binary.AppendUvarint(buf, uint64(key))
	buf = binary.AppendUvarint(buf, uint64(ai))
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	return append(buf, val...)
}

// applyRecord replays one WAL record onto the monitor. Records were
// validated before they were appended, so application errors mean the
// directory does not belong to this schema/Σ.
func (m *Monitor) applyRecord(payload []byte) error {
	d := &dec{s: string(payload)}
	op := d.byte()
	key := int64(d.uvarint())
	switch op {
	case opInsert:
		vals := d.strs(m.schema.Len())
		if d.err != nil {
			return d.err
		}
		m.applyInsert(key, relation.Tuple(vals))
		if nk := key + 1; nk > m.nextKey.Load() {
			m.nextKey.Store(nk)
		}
	case opDelete:
		if d.err != nil {
			return d.err
		}
		if _, err := m.applyDelete(key); err != nil {
			return fmt.Errorf("incremental: replaying delete: %w", err)
		}
	case opUpdate:
		ai := int(d.uvarint())
		val := d.str()
		if d.err != nil {
			return d.err
		}
		if ai >= m.schema.Len() {
			return fmt.Errorf("incremental: replaying update: attribute index %d out of range", ai)
		}
		if _, err := m.applyUpdate(key, ai, m.schema.Attrs[ai].Name, val); err != nil {
			return fmt.Errorf("incremental: replaying update: %w", err)
		}
	default:
		return fmt.Errorf("incremental: unknown WAL op %d", op)
	}
	return nil
}

// --- surface ---

// Recovered reports whether this monitor's state was rebuilt from an
// existing WAL directory (as opposed to a fresh seed or empty start).
func (m *Monitor) Recovered() bool { return m.j != nil && m.j.recovered }

// ForceSnapshot synchronously rolls the durable monitor to a new
// generation: full state image, fresh log segment, old generation
// garbage-collected. It errors on a monitor without a WAL directory.
func (m *Monitor) ForceSnapshot() error {
	if m.j == nil {
		return errors.New("incremental: monitor is not durable")
	}
	return m.j.snapshot(m)
}

// Close flushes and syncs the journal; further mutations error. It is a
// no-op for a non-durable monitor. Close does not snapshot — callers that
// want the fastest next boot call ForceSnapshot first.
func (m *Monitor) Close() error {
	if m.j == nil {
		return nil
	}
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.log.Close()
	if uerr := j.lock.Unlock(); err == nil {
		err = uerr
	}
	return err
}

// JournalStats describes the durable state of a monitor.
type JournalStats struct {
	// Durable reports whether the monitor journals at all.
	Durable bool
	// Dir is the WAL directory.
	Dir string
	// Generation is the current snapshot/segment sequence number.
	Generation uint64
	// SegmentRecords counts records in the current log segment.
	SegmentRecords int
	// Recovered reports whether startup restored existing state.
	Recovered bool
	// LastSnapshotErr is the error of the most recent background
	// snapshot, empty when it succeeded.
	LastSnapshotErr string
}

// JournalStats returns the durable-state counters (zero values for a
// non-durable monitor).
func (m *Monitor) JournalStats() JournalStats {
	if m.j == nil {
		return JournalStats{}
	}
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Durable:        true,
		Dir:            j.dir,
		Generation:     j.seq,
		SegmentRecords: j.records,
		Recovered:      j.recovered,
	}
	if j.lastSnapErr != nil {
		st.LastSnapshotErr = j.lastSnapErr.Error()
	}
	return st
}
