package incremental_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// walFiles lists the snap-*/wal-* names in a WAL directory.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if e.Name() == "lock" { // the permanent advisory-lock file
			continue
		}
		out = append(out, e.Name())
	}
	return out
}

// TestDurableRestartResume is the headline flow: seed from an instance,
// mutate, close, reopen — the monitor resumes with the same tuples, keys
// and live violation set, without touching the seed again.
func TestDurableRestartResume(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	opts := incremental.Options{Durable: dir}

	m, err := incremental.Load(rel, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recovered() {
		t.Fatal("fresh directory must not report recovered")
	}
	// Seeding writes the initial snapshot so the next boot skips the seed.
	names := strings.Join(walFiles(t, dir), " ")
	if !strings.Contains(names, "snap-00000001") || !strings.Contains(names, "wal-00000001") {
		t.Fatalf("after seeded load, dir = %s", names)
	}

	key, _, err := m.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(2, "CT", "MH"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(5); err != nil {
		t.Fatal(err)
	}
	wantState := m.Violations()
	wantKeys := m.Keys()
	wantLen := m.Len()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT seed: the directory must win.
	otherSeed := relation.New(rel.Schema)
	m2, err := incremental.Load(otherSeed, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Recovered() {
		t.Fatal("existing directory must report recovered")
	}
	if m2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", m2.Len(), wantLen)
	}
	gotKeys := m2.Keys()
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("recovered keys = %v, want %v", gotKeys, wantKeys)
		}
	}
	if !m2.Violations().Equal(wantState) {
		t.Fatalf("recovered violations diverge:\ngot:\n%s\nwant:\n%s",
			describe(m2.Violations()), describe(wantState))
	}
	// The batch detector agrees with the recovered live set.
	want := oracleState(t, m2.Snapshot(), sigma, gotKeys)
	if !m2.Violations().Equal(want) {
		t.Fatalf("recovered set diverges from batch oracle:\ngot:\n%s\nwant:\n%s",
			describe(m2.Violations()), describe(want))
	}
	// Key allocation resumes after the journaled insert.
	k2, _, err := m2.Insert(relation.Tuple{"01", "212", "2222222", "Ann", "Elm Str.", "NYC", "01202"})
	if err != nil {
		t.Fatal(err)
	}
	if k2 <= key {
		t.Fatalf("resumed key = %d, want > %d", k2, key)
	}
}

// TestDurableEmptyStart: New with a fresh directory journals from empty.
func TestDurableEmptyStart(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	opts := incremental.Options{Durable: dir}
	m, err := incremental.New(rel.Schema, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range rel.Tuples {
		if _, _, err := m.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Violations()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.New(rel.Schema, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Recovered() || !m2.Violations().Equal(st) {
		t.Fatalf("empty-start recovery: recovered=%v", m2.Recovered())
	}
}

// TestAutoSnapshotRotation: the background snapshotter rolls generations
// and truncates the log once SnapshotEvery records accumulate.
func TestAutoSnapshotRotation(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, _, err := m.Insert(relation.Tuple{"01", "908", "1111111", "Eve", "Tree Ave.", "NYC", "07974"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.JournalStats()
		if st.LastSnapshotErr != "" {
			t.Fatalf("background snapshot failed: %s", st.LastSnapshotErr)
		}
		if st.Generation > 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background snapshot after 25 inserts: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stVio := m.Violations()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Old generations are garbage-collected; the survivor recovers fully.
	names := walFiles(t, dir)
	if len(names) > 2 {
		t.Fatalf("stale generations not collected: %v", names)
	}
	m2, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != rel.Len()+25 || !m2.Violations().Equal(stVio) {
		t.Fatalf("recovery after rotation: Len = %d, want %d", m2.Len(), rel.Len()+25)
	}
}

// TestForceSnapshotAndClose covers the synchronous admin path and the
// closed-journal guardrails.
func TestForceSnapshotAndClose(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ForceSnapshot(); err == nil {
		t.Fatal("ForceSnapshot on a memory-only monitor must error")
	}
	if err := m.Close(); err != nil {
		t.Fatal("Close on a memory-only monitor must be a no-op")
	}
	st := m.JournalStats()
	if st.Durable {
		t.Fatal("memory-only monitor reports durable stats")
	}

	dir := t.TempDir()
	md, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := md.Insert(rel.Tuples[0].Clone()); err != nil {
		t.Fatal(err)
	}
	if err := md.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	st = md.JournalStats()
	if !st.Durable || st.Generation != 2 || st.SegmentRecords != 0 {
		t.Fatalf("after ForceSnapshot: %+v", st)
	}
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := md.Insert(rel.Tuples[0].Clone()); err == nil {
		t.Fatal("insert after Close must error")
	}
	if _, err := md.Delete(0); err == nil {
		t.Fatal("delete after Close must error")
	}
	if _, err := md.Update(0, "CT", "MH"); err == nil {
		t.Fatal("update after Close must error")
	}
	if err := md.ForceSnapshot(); err == nil {
		t.Fatal("snapshot after Close must error")
	}
	if err := md.Close(); err != nil {
		t.Fatal("double Close must be a no-op")
	}
}

// TestDurableRejectsChangedSigma: a WAL directory can never be reopened
// under different constraints.
func TestDurableRejectsChangedSigma(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	other, err := core.ParseSet("[CC] -> [CT]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incremental.Load(rel, other, incremental.Options{Durable: dir}); err == nil {
		t.Fatal("recovery under a different Σ must error")
	}
}

// TestDurableConcurrentWriters: journaled writers from many goroutines,
// then recovery — the journal serializes append+apply, so the recovered
// state must match both the pre-crash live set and the batch oracle.
// (Run under -race in CI.)
func TestDurableConcurrentWriters(t *testing.T) {
	rel, sigma := custFixture(t)
	dir := t.TempDir()
	m, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir, SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch i % 3 {
				case 0:
					if _, _, err := m.Insert(relation.Tuple{"01", "908", "1111111", "W", "Tree Ave.", "NYC", "07974"}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					// Reads race against journaled writers.
					m.Violations()
					m.Satisfied()
				case 2:
					if _, err := m.Update(int64(w%6), "CT", "MH"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	want := m.Violations()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !m2.Violations().Equal(want) {
		t.Fatalf("recovered set diverges from pre-close set")
	}
	oracle := oracleState(t, m2.Snapshot(), sigma, m2.Keys())
	if !m2.Violations().Equal(oracle) {
		t.Fatalf("recovered set diverges from batch oracle:\ngot:\n%s\nwant:\n%s",
			describe(m2.Violations()), describe(oracle))
	}
}

// TestDurableSegmentWithoutSnapshot: wal-N without snap-N (N > 0) is
// unrecoverable and must be reported, not silently emptied.
func TestDurableSegmentWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000003"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rel, sigma := custFixture(t)
	if _, err := incremental.Load(rel, sigma, incremental.Options{Durable: dir}); err == nil {
		t.Fatal("orphan segment must fail recovery")
	}
}
