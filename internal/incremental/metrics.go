package incremental

import (
	"repro/internal/obs"
	"repro/internal/wal"
)

// This file binds the Monitor's hot paths to the obs metrics core. A
// monitor always carries a registry — a private one by default, so
// tests stay hermetic; a process daemon passes obs.Default() through
// Options.Metrics so one scrape covers every component; obs.Disabled()
// switches instrumentation off entirely (m.met == nil), which is the
// baseline BenchmarkObsOverhead compares against.
//
// The discipline on the hot path: updating a handle is a few atomic
// adds (never an allocation, never a lock), and the time.Now() calls
// that feed the stage timers only run when metrics are enabled — every
// timing site guards on `m.met != nil` before touching the clock.

// monMetrics holds the Monitor's metric handles, registered once at
// build time so the apply path never goes through the registry map.
type monMetrics struct {
	reg *obs.Registry

	// Apply pipeline (changeset.go, journal.go).
	opsInsert, opsDelete, opsUpdate *obs.Counter
	batches, rejected               *obs.Counter
	fencedRejected                  *obs.Counter
	applySeconds                    *obs.Histogram // whole Apply, all modes
	validateSeconds                 *obs.Histogram // batch validation stage
	walAppendSeconds                *obs.Histogram // journal append incl. fsync
	shardApplySeconds               *obs.Histogram // sharded in-memory apply
	violationsAdded                 *obs.Counter
	violationsRemoved               *obs.Counter

	// Maintained violation view (view.go).
	viewRebuilds *obs.Counter

	// Group commit (groupcommit.go).
	gcWindowOps     *obs.Histogram // ops journaled per commit window
	gcWindowWriters *obs.Histogram // writers coalesced per commit window
	gcWaitSeconds   *obs.Histogram // follower wait for the leader's fsync

	// Journal rotation (journal.go).
	snapshotSeconds *obs.Histogram // WriteSnapshot alone
	rollSeconds     *obs.Histogram // whole generation roll
	snapshots       *obs.Counter

	// WAL segment internals, observed by wal.Log itself.
	logStats wal.LogStats
}

func newMonMetrics(reg *obs.Registry) *monMetrics {
	mm := &monMetrics{reg: reg}
	const opsHelp = "Mutations applied through Monitor.Apply, by op kind."
	mm.opsInsert = reg.Counter("cfd_apply_ops_total", opsHelp, obs.L("op", "insert"))
	mm.opsDelete = reg.Counter("cfd_apply_ops_total", opsHelp, obs.L("op", "delete"))
	mm.opsUpdate = reg.Counter("cfd_apply_ops_total", opsHelp, obs.L("op", "update"))
	mm.batches = reg.Counter("cfd_apply_batches_total", "ChangeSets applied through Monitor.Apply.")
	mm.rejected = reg.Counter("cfd_apply_rejected_total", "ChangeSets refused before applying (validation failure, read-only follower, poisoned journal).")
	mm.fencedRejected = reg.Counter("cfd_fenced_appends_total", "Mutations refused because the node is fenced (a higher-epoch primary exists).")
	mm.applySeconds = reg.DurationHistogram("cfd_apply_seconds", "End-to-end Monitor.Apply latency per ChangeSet.")
	mm.validateSeconds = reg.DurationHistogram("cfd_apply_validate_seconds", "Batch validation stage: arity/domain/key-existence checks.")
	mm.walAppendSeconds = reg.DurationHistogram("cfd_apply_wal_append_seconds", "WAL append stage per batch, including the fsync when enabled.")
	mm.shardApplySeconds = reg.DurationHistogram("cfd_apply_shard_seconds", "Sharded in-memory apply stage per batch.")
	mm.violationsAdded = reg.Counter("cfd_violations_added_total", "Violations that appeared, summed over apply deltas.")
	mm.violationsRemoved = reg.Counter("cfd_violations_removed_total", "Violations that were retired, summed over apply deltas.")
	mm.viewRebuilds = reg.Counter("cfd_violations_view_rebuilds_total", "Lazy materializations of the violation view (at most one per view version).")
	mm.gcWindowOps = reg.Histogram("cfd_group_commit_window_ops", "Ops journaled per group-commit window (one WAL record, one fsync).")
	mm.gcWindowWriters = reg.Histogram("cfd_group_commit_window_writers", "Concurrent writers coalesced per group-commit window.")
	mm.gcWaitSeconds = reg.DurationHistogram("cfd_group_commit_wait_seconds", "Time a window follower waits for its leader's append and fsync.")

	mm.snapshotSeconds = reg.DurationHistogram("cfd_wal_snapshot_seconds", "Time to serialize and durably write one full-state snapshot.")
	mm.rollSeconds = reg.DurationHistogram("cfd_wal_segment_roll_seconds", "Time for one whole generation roll: segment sync, snapshot, fresh segment, GC.")
	mm.snapshots = reg.Counter("cfd_wal_snapshots_total", "Completed generation rolls (snapshot + fresh segment).")

	mm.logStats = wal.LogStats{
		AppendSeconds: reg.DurationHistogram("cfd_wal_append_seconds", "Time to frame and buffer one WAL record (fsync excluded)."),
		SyncSeconds:   reg.DurationHistogram("cfd_wal_fsync_seconds", "Time to flush and fsync the WAL segment."),
		Records:       reg.Counter("cfd_wal_records_total", "Records appended to the WAL."),
		Bytes:         reg.Counter("cfd_wal_append_bytes_total", "Bytes appended to the WAL, framing included."),
	}
	return mm
}

// countOps bumps the per-kind op counters for one applied batch.
func (mm *monMetrics) countOps(ops []Op) {
	var ins, del, upd uint64
	for i := range ops {
		switch ops[i].Kind {
		case OpInsert:
			ins++
		case OpDelete:
			del++
		default:
			upd++
		}
	}
	if ins > 0 {
		mm.opsInsert.Add(ins)
	}
	if del > 0 {
		mm.opsDelete.Add(del)
	}
	if upd > 0 {
		mm.opsUpdate.Add(upd)
	}
}

// followerMetrics holds a Follower's replication handles; registered
// only when a follower exists, so a plain primary's scrape carries no
// replica series.
type followerMetrics struct {
	chunks       *obs.Counter
	records      *obs.Counter
	bytes        *obs.Counter
	fetchErrors  *obs.Counter
	applySeconds *obs.Histogram
	lagBytes     *obs.Gauge
	lagSegments  *obs.Gauge
}

func newFollowerMetrics(reg *obs.Registry) *followerMetrics {
	return &followerMetrics{
		chunks:       reg.Counter("cfd_replica_chunks_total", "WAL chunks fetched from the primary."),
		records:      reg.Counter("cfd_replica_records_total", "Shipped records applied by the follower."),
		bytes:        reg.Counter("cfd_replica_bytes_total", "Shipped WAL bytes applied by the follower."),
		fetchErrors:  reg.Counter("cfd_replica_fetch_errors_total", "Failed chunk/snapshot exchanges with the primary."),
		applySeconds: reg.DurationHistogram("cfd_replica_apply_seconds", "Time to apply one shipped chunk locally."),
		lagBytes:     reg.Gauge("cfd_replica_lag_bytes", "Byte distance to the primary's tail within the shared segment; -1 while segments behind."),
		lagSegments:  reg.Gauge("cfd_replica_lag_segments", "Whole segments the follower trails the primary by."),
	}
}

// Metrics returns the registry this monitor instruments itself into:
// the one passed via Options.Metrics, a private registry when none was
// given, or the disabled sentinel when instrumentation is off. Layers
// stacked on a monitor (discovery miners, servers) register their own
// series here so one scrape covers the whole node.
func (m *Monitor) Metrics() *obs.Registry {
	if m.met == nil {
		return obs.Disabled()
	}
	return m.met.reg
}
