package incremental

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
)

func metricsSchema(t *testing.T) (*relation.Schema, []*core.CFD) {
	t.Helper()
	schema, err := relation.NewSchema("r", relation.Attr("A"), relation.Attr("B"))
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := core.ParseCFD("[A] -> [B]")
	if err != nil {
		t.Fatal(err)
	}
	return schema, []*core.CFD{cfd}
}

func TestMonitorMetrics(t *testing.T) {
	schema, sigma := metricsSchema(t)
	reg := obs.NewRegistry()
	m, err := New(schema, sigma, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics() != reg {
		t.Fatal("Metrics() must return the registry passed in Options")
	}

	k1, _, err := m.Insert(relation.Tuple{"x", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Insert(relation.Tuple{"x", "2"}); err != nil {
		t.Fatal(err) // same A, different B: one variable violation
	}
	if _, err := m.Update(k1, "B", "2"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(k1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Delete(12345); err == nil {
		t.Fatal("expected missing-key rejection")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cfd_apply_ops_total{op="insert"} 2`,
		`cfd_apply_ops_total{op="update"} 1`,
		`cfd_apply_ops_total{op="delete"} 1`,
		`cfd_apply_batches_total 4`,
		`cfd_apply_rejected_total 1`,
		`cfd_violations_added_total 1`,
		`cfd_violations_removed_total 1`,
		`cfd_tuples 1`,
		`cfd_violations 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
	if !strings.Contains(out, "cfd_apply_seconds_count 4") {
		t.Errorf("apply histogram must count the four applied batches\n%s", out)
	}
}

func TestMonitorMetricsDisabled(t *testing.T) {
	schema, sigma := metricsSchema(t)
	m, err := New(schema, sigma, Options{Metrics: obs.Disabled()})
	if err != nil {
		t.Fatal(err)
	}
	if m.met != nil {
		t.Fatal("disabled metrics must leave m.met nil")
	}
	if !m.Metrics().IsDisabled() {
		t.Fatal("Metrics() of a disabled monitor must report disabled")
	}
	if _, _, err := m.Insert(relation.Tuple{"x", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorMetricsHermetic(t *testing.T) {
	schema, sigma := metricsSchema(t)
	a, err := New(schema, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(schema, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics() == b.Metrics() {
		t.Fatal("monitors without Options.Metrics must get private registries")
	}
}

func TestDurableMetrics(t *testing.T) {
	schema, sigma := metricsSchema(t)
	reg := obs.NewRegistry()
	m, err := New(schema, sigma, Options{Durable: t.TempDir(), Fsync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	cs := &ChangeSet{}
	cs.Insert(relation.Tuple{"x", "1"}).Insert(relation.Tuple{"y", "2"})
	if _, err := m.Apply(cs); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cfd_wal_records_total 1", // one batch = one WAL record
		"cfd_wal_snapshots_total 1",
		"cfd_apply_wal_append_seconds_count 1",
		"cfd_apply_validate_seconds_count 1",
		"cfd_apply_shard_seconds_count 1",
		"cfd_wal_snapshot_seconds_count 1",
		"cfd_wal_segment_roll_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
	if !strings.Contains(out, "cfd_wal_fsync_seconds_count") || strings.Contains(out, "cfd_wal_fsync_seconds_count 0\n") {
		t.Errorf("fsync timer must have observations\n%s", out)
	}
	if !strings.Contains(out, "cfd_wal_append_bytes_total") {
		t.Errorf("scrape missing WAL byte counter\n%s", out)
	}
}

func TestFollowerMetrics(t *testing.T) {
	schema, sigma := metricsSchema(t)
	preg := obs.NewRegistry()
	primary, err := New(schema, sigma, Options{Durable: t.TempDir(), SnapshotEvery: 0, RetainSegments: 4, Metrics: preg})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, _, err := primary.Insert(relation.Tuple{"x", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := primary.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.Insert(relation.Tuple{"x", "2"}); err != nil {
		t.Fatal(err)
	}

	freg := obs.NewRegistry()
	f, err := NewFollower(context.Background(), sigma,
		Options{Durable: t.TempDir(), Metrics: freg},
		FollowOptions{Source: NewMonitorSource(primary)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := freg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cfd_replica_records_total 1",
		"cfd_replica_lag_bytes 0",
		"cfd_replica_lag_segments 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("follower scrape missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "cfd_replica_chunks_total 0\n") {
		t.Errorf("chunk counter must have counted exchanges\n%s", out)
	}
	// A plain primary's registry must not carry replica series.
	sb.Reset()
	if err := preg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cfd_replica_") {
		t.Errorf("primary scrape must not contain replica series\n%s", sb.String())
	}
}
